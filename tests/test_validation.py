"""Tests for the internal argument-validation helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._validation import (
    as_2d_array,
    check_fractional_order,
    check_positive_float,
    check_positive_int,
    check_steps,
    is_sparse,
)
from repro.errors import ModelError, OperationalMatrixError


class TestPositiveInt:
    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "m") == 5

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "m")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "m")

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(0, "m")


class TestPositiveFloat:
    def test_accepts_int(self):
        assert check_positive_float(3, "h") == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.inf, np.nan])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        with pytest.raises(ValueError):
            check_positive_float(bad, "h")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_float("1.0", "h")


class TestFractionalOrder:
    def test_zero_needs_flag(self):
        assert check_fractional_order(0.0, allow_zero=True) == 0.0
        with pytest.raises(OperationalMatrixError):
            check_fractional_order(0.0)

    def test_rejects_negative(self):
        with pytest.raises(OperationalMatrixError):
            check_fractional_order(-0.1, allow_zero=True)

    def test_rejects_inf(self):
        with pytest.raises(OperationalMatrixError):
            check_fractional_order(np.inf)

    def test_accepts_numpy_float(self):
        assert check_fractional_order(np.float64(0.5)) == 0.5


class TestSteps:
    def test_returns_float_array(self):
        out = check_steps([1, 2, 3])
        assert out.dtype == float

    @pytest.mark.parametrize("bad", [[], [1.0, -1.0], [1.0, np.nan], [[1.0, 2.0]]])
    def test_rejects_bad_sequences(self, bad):
        with pytest.raises(ValueError):
            check_steps(bad)


class TestArrayHelpers:
    def test_is_sparse(self):
        assert is_sparse(sp.identity(2))
        assert not is_sparse(np.eye(2))

    def test_as_2d_from_sparse(self):
        out = as_2d_array(sp.identity(2), "M")
        assert isinstance(out, np.ndarray) and out.shape == (2, 2)

    def test_as_2d_promotes_1d(self):
        assert as_2d_array(np.array([1.0, 2.0]), "M").shape == (1, 2)

    def test_as_2d_rejects_3d(self):
        with pytest.raises(ModelError):
            as_2d_array(np.zeros((2, 2, 2)), "M")

    def test_as_2d_rejects_non_numeric(self):
        with pytest.raises(ModelError):
            as_2d_array(np.array([["a", "b"]]), "M")

    def test_as_2d_preserves_complex(self):
        out = as_2d_array(np.array([[1j]]), "M")
        assert out.dtype == complex

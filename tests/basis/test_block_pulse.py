"""Tests for the block-pulse basis (paper eqs. (1)-(2), (16))."""

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, TimeGrid
from repro.errors import BasisError


@pytest.fixture
def basis() -> BlockPulseBasis:
    return BlockPulseBasis(TimeGrid.uniform(1.0, 8))


class TestEvaluate:
    def test_indicator_structure(self, basis):
        vals = basis.evaluate([0.05, 0.3, 0.95])
        assert vals.shape == (8, 3)
        np.testing.assert_array_equal(vals.sum(axis=0), [1.0, 1.0, 1.0])
        assert vals[0, 0] == 1.0 and vals[2, 1] == 1.0 and vals[7, 2] == 1.0

    def test_eq1_support(self, basis):
        # phi_i is 1 exactly on [ih, (i+1)h)
        t = np.array([0.125, 0.1249999])
        vals = basis.evaluate(t)
        assert vals[1, 0] == 1.0  # left edge belongs to interval 1
        assert vals[0, 1] == 1.0


class TestProjection:
    def test_cell_average_definition(self, basis):
        # eq. (2): f_i = (1/h) integral over cell; for f = t^2 the exact
        # averages are mid^2 + h^2/12
        coeffs = basis.project(lambda t: t**2)
        mids = basis.grid.midpoints
        h = basis.grid.h
        np.testing.assert_allclose(coeffs, mids**2 + h**2 / 12.0, rtol=1e-12)

    def test_midpoint_rule(self):
        b = BlockPulseBasis(TimeGrid.uniform(1.0, 4), projection="midpoint")
        coeffs = b.project(lambda t: t**2)
        np.testing.assert_allclose(coeffs, b.grid.midpoints**2)

    def test_projection_synthesis_round_trip_piecewise_constant(self, basis):
        # any function already constant per cell projects exactly
        steps = np.arange(8, dtype=float)

        def f(t):
            return steps[np.minimum((np.asarray(t) * 8).astype(int), 7)]

        coeffs = basis.project(f)
        np.testing.assert_allclose(coeffs, steps, atol=1e-12)
        np.testing.assert_allclose(
            basis.synthesize(coeffs, basis.grid.midpoints), steps, atol=1e-12
        )

    def test_project_vector(self, basis):
        coeffs = basis.project_vector(lambda t: np.vstack([t, 2 * t]), 2)
        assert coeffs.shape == (2, 8)
        np.testing.assert_allclose(coeffs[1], 2 * coeffs[0])

    def test_project_samples_validates_size(self, basis):
        with pytest.raises(BasisError):
            basis.project_samples(np.zeros(5))

    def test_rejects_bad_projection_rule(self):
        with pytest.raises(BasisError, match="projection"):
            BlockPulseBasis(TimeGrid.uniform(1.0, 4), projection="simpson")

    def test_rejects_non_grid(self):
        with pytest.raises(TypeError):
            BlockPulseBasis(1.0)


class TestSynthesize:
    def test_matrix_coefficients(self, basis):
        X = np.vstack([np.arange(8.0), np.ones(8)])
        out = basis.synthesize(X, [0.05, 0.55])
        np.testing.assert_allclose(out, [[0.0, 4.0], [1.0, 1.0]])

    def test_rejects_wrong_length(self, basis):
        with pytest.raises(BasisError):
            basis.synthesize(np.zeros(5), [0.1])

    def test_rejects_3d(self, basis):
        with pytest.raises(BasisError):
            basis.synthesize(np.zeros((2, 2, 8)), [0.1])


class TestOperationalMatrices:
    def test_gram_is_diagonal(self, basis):
        G = basis.gram_matrix()
        np.testing.assert_allclose(G, np.eye(8) * basis.grid.h, atol=1e-12)

    def test_uniform_matrices_match_opmat(self, basis):
        from repro.opmat import differentiation_matrix, integration_matrix

        np.testing.assert_allclose(
            basis.integration_matrix(), integration_matrix(8, 0.125)
        )
        np.testing.assert_allclose(
            basis.differentiation_matrix(), differentiation_matrix(8, 0.125)
        )

    def test_adaptive_matrices_dispatch(self):
        g = TimeGrid.from_steps([0.1, 0.3, 0.2])
        b = BlockPulseBasis(g)
        from repro.opmat import integration_matrix_adaptive

        np.testing.assert_allclose(
            b.integration_matrix(), integration_matrix_adaptive(g.steps)
        )

    def test_fractional_integration_constructions(self, basis):
        tus = basis.fractional_integration_matrix(0.5, construction="tustin")
        rl = basis.fractional_integration_matrix(0.5, construction="rl")
        assert tus.shape == rl.shape == (8, 8)
        assert np.max(np.abs(tus - rl)) > 0.0  # distinct constructions

    def test_fractional_integration_rejects_unknown_construction(self, basis):
        with pytest.raises(BasisError, match="construction"):
            basis.fractional_integration_matrix(0.5, construction="pade")

    def test_fractional_integration_requires_uniform(self):
        b = BlockPulseBasis(TimeGrid.from_steps([0.1, 0.2]))
        with pytest.raises(BasisError, match="uniform"):
            b.fractional_integration_matrix(0.5)

    def test_fractional_differentiation_alpha_zero(self, basis):
        np.testing.assert_allclose(
            basis.fractional_differentiation_matrix(0.0), np.eye(8)
        )

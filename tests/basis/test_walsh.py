"""Tests for the Walsh basis."""

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, TimeGrid, WalshBasis, hadamard_matrix, sequency_order
from repro.errors import BasisError


class TestHadamard:
    def test_order_two(self):
        np.testing.assert_array_equal(hadamard_matrix(2), [[1, 1], [1, -1]])

    def test_orthogonality(self):
        h = hadamard_matrix(16)
        np.testing.assert_array_equal(h @ h.T, 16 * np.eye(16))

    def test_symmetric(self):
        h = hadamard_matrix(8)
        np.testing.assert_array_equal(h, h.T)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(BasisError):
            hadamard_matrix(6)

    def test_sequency_order_counts(self):
        w = sequency_order(hadamard_matrix(8))
        changes = np.count_nonzero(np.diff(w, axis=1), axis=1)
        np.testing.assert_array_equal(changes, np.arange(8))


class TestWalshBasis:
    def test_values_are_plus_minus_one(self):
        basis = WalshBasis(1.0, 8)
        vals = basis.evaluate(np.linspace(0.01, 0.99, 17))
        assert set(np.unique(vals)) <= {-1.0, 1.0}

    def test_orthogonality_on_interval(self):
        basis = WalshBasis(2.0, 8)
        G = basis.gram_matrix()
        np.testing.assert_allclose(G, 2.0 * np.eye(8), atol=1e-10)

    def test_projection_round_trip(self):
        basis = WalshBasis(1.0, 16)
        f = lambda t: np.sin(2 * np.pi * t) + 0.5 * t
        coeffs = basis.project(f)
        bpf = BlockPulseBasis(TimeGrid.uniform(1.0, 16))
        bpf_coeffs = bpf.project(f)
        # same piecewise-constant approximant in either representation
        t = np.linspace(0.01, 0.99, 31)
        np.testing.assert_allclose(
            basis.synthesize(coeffs, t), bpf.synthesize(bpf_coeffs, t), atol=1e-12
        )

    def test_to_block_pulse_coefficients(self):
        basis = WalshBasis(1.0, 8)
        coeffs = basis.project(lambda t: t)
        bpf_coeffs = basis.to_block_pulse_coefficients(coeffs)
        expected = BlockPulseBasis(TimeGrid.uniform(1.0, 8)).project(lambda t: t)
        np.testing.assert_allclose(bpf_coeffs, expected, atol=1e-12)

    def test_constant_function_uses_only_first_term(self):
        basis = WalshBasis(1.0, 8)
        coeffs = basis.project(lambda t: np.full_like(t, 3.0))
        np.testing.assert_allclose(coeffs, [3.0] + [0.0] * 7, atol=1e-12)

    def test_operational_matrix_conjugation(self):
        basis = WalshBasis(1.0, 8)
        bpf = basis.block_pulse
        w = basis.transform
        expected = w @ bpf.integration_matrix() @ w.T / 8
        np.testing.assert_allclose(basis.integration_matrix(), expected)

    def test_integration_operational_matrix_acts_correctly(self):
        basis = WalshBasis(1.0, 32)
        coeffs = basis.project(lambda t: np.full_like(t, 1.0))
        integrated = basis.integration_matrix().T @ coeffs
        t = np.linspace(0.015625, 0.984375, 8)
        np.testing.assert_allclose(basis.synthesize(integrated, t), t, atol=0.02)

    def test_differentiation_inverse_of_integration(self):
        basis = WalshBasis(1.0, 8)
        np.testing.assert_allclose(
            basis.integration_matrix() @ basis.differentiation_matrix(),
            np.eye(8),
            atol=1e-9,
        )

    def test_fractional_conjugation_semigroup(self):
        basis = WalshBasis(1.0, 8)
        half = basis.fractional_differentiation_matrix(0.5)
        one = basis.differentiation_matrix()
        np.testing.assert_allclose(half @ half, one, atol=1e-7)

    def test_hadamard_ordering_option(self):
        nat = WalshBasis(1.0, 8, ordering="hadamard")
        np.testing.assert_array_equal(nat.transform, hadamard_matrix(8))
        assert nat.ordering == "hadamard"
        assert "hadamard" in nat.name

    def test_rejects_bad_ordering(self):
        with pytest.raises(BasisError, match="ordering"):
            WalshBasis(1.0, 8, ordering="random")

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(BasisError, match="power of two"):
            WalshBasis(1.0, 12)

    def test_sequency_truncation_is_lowpass(self):
        # the paper's motivation: low-sequency terms capture the trend
        basis = WalshBasis(1.0, 32)
        f = lambda t: t  # smooth trend
        coeffs = basis.project(f)
        energy_low = np.sum(coeffs[:8] ** 2)
        energy_high = np.sum(coeffs[8:] ** 2)
        assert energy_low > 10.0 * energy_high

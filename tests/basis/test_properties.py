"""Property-based tests across basis families (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis import BlockPulseBasis, HaarBasis, TimeGrid, WalshBasis

log2_sizes = st.integers(min_value=1, max_value=5)
spans = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
poly_coeffs = st.lists(
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False), min_size=1, max_size=4
)


@given(k=log2_sizes, t_end=spans)
@settings(max_examples=30, deadline=None)
def test_walsh_haar_transforms_orthogonal(k, t_end):
    m = 2**k
    for basis in (WalshBasis(t_end, m), HaarBasis(t_end, m)):
        w = basis.transform
        np.testing.assert_allclose(w @ w.T, m * np.eye(m), atol=1e-9)


@given(k=log2_sizes, t_end=spans, coeffs=poly_coeffs)
@settings(max_examples=30, deadline=None)
def test_piecewise_families_represent_same_function(k, t_end, coeffs):
    """BPF, Walsh and Haar are the same span: identical reconstructions."""
    m = 2**k

    def f(t):
        out = np.zeros_like(t)
        for j, c in enumerate(coeffs):
            out = out + c * (t / t_end) ** j
        return out

    t = np.linspace(0.0, t_end * 0.999, 17)
    reference = None
    for basis in (
        BlockPulseBasis(TimeGrid.uniform(t_end, m)),
        WalshBasis(t_end, m),
        HaarBasis(t_end, m),
    ):
        values = basis.synthesize(basis.project(f), t)
        if reference is None:
            reference = values
        else:
            np.testing.assert_allclose(values, reference, atol=1e-9 * (1 + np.max(np.abs(reference))))


@given(
    m=st.integers(min_value=1, max_value=40),
    t_end=spans,
    level=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_block_pulse_constant_projection_exact(m, t_end, level):
    basis = BlockPulseBasis(TimeGrid.uniform(t_end, m))
    coeffs = basis.project(lambda t: np.full_like(t, level))
    np.testing.assert_allclose(coeffs, np.full(m, level), atol=1e-12 * (1 + abs(level)))


@given(k=log2_sizes)
@settings(max_examples=20, deadline=None)
def test_walsh_projection_is_transform_of_bpf(k):
    m = 2**k
    walsh = WalshBasis(1.0, m)
    bpf = BlockPulseBasis(TimeGrid.uniform(1.0, m))
    f = lambda t: np.sin(5 * t) + t**2
    cw = walsh.project(f)
    cb = bpf.project(f)
    np.testing.assert_allclose(walsh.transform.T @ cw, cb, atol=1e-10)


@given(
    steps=st.lists(
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
        min_size=2,
        max_size=10,
    )
)
@settings(max_examples=30, deadline=None)
def test_grid_locate_consistent_with_edges(steps):
    grid = TimeGrid.from_steps(steps)
    for i in range(grid.m):
        mid = grid.midpoints[i]
        assert grid.locate(mid) == i
        assert grid.locate(grid.edges[i]) == i

"""Tests for the Haar basis."""

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, HaarBasis, TimeGrid, haar_matrix
from repro.errors import BasisError


class TestHaarMatrix:
    def test_order_two(self):
        np.testing.assert_array_equal(haar_matrix(2), [[1, 1], [1, -1]])

    def test_orthogonality(self):
        for m in (4, 8, 16):
            w = haar_matrix(m)
            np.testing.assert_allclose(w @ w.T, m * np.eye(m), atol=1e-12)

    def test_wavelet_scaling(self):
        w = haar_matrix(8)
        # row 4 is the first scale-2 wavelet: amplitude 2^{2/2} = 2
        np.testing.assert_allclose(np.max(np.abs(w[4])), 2.0)

    def test_rows_have_compact_support(self):
        w = haar_matrix(8)
        # last-scale wavelets touch exactly 2 cells
        for row in range(4, 8):
            assert np.count_nonzero(w[row]) == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            haar_matrix(10)


class TestHaarBasis:
    def test_gram_identity(self):
        basis = HaarBasis(1.0, 16)
        np.testing.assert_allclose(basis.gram_matrix(), np.eye(16), atol=1e-10)

    def test_same_span_as_block_pulse(self):
        basis = HaarBasis(1.0, 16)
        bpf = BlockPulseBasis(TimeGrid.uniform(1.0, 16))
        f = lambda t: np.cos(3 * t) * t
        t = np.linspace(0.01, 0.99, 23)
        np.testing.assert_allclose(
            basis.synthesize(basis.project(f), t),
            bpf.synthesize(bpf.project(f), t),
            atol=1e-12,
        )

    def test_integration_differentiation_inverse(self):
        basis = HaarBasis(1.0, 8)
        np.testing.assert_allclose(
            basis.integration_matrix() @ basis.differentiation_matrix(),
            np.eye(8),
            atol=1e-9,
        )

    def test_fractional_semigroup(self):
        basis = HaarBasis(1.0, 8)
        half = basis.fractional_integration_matrix(0.5)
        one = basis.integration_matrix()
        np.testing.assert_allclose(half @ half, one, atol=1e-9)

    def test_multiresolution_localisation(self):
        # a sharp local feature excites only wavelets near it
        basis = HaarBasis(1.0, 32)
        f = lambda t: np.where((t > 0.4) & (t < 0.45), 1.0, 0.0)
        coeffs = basis.project(f)
        # finest-scale wavelets: indices 16..31 cover [k/16, (k+1)/16)
        fine = np.abs(coeffs[16:])
        assert np.argmax(fine) in (6, 7)  # near t ~ 0.4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(BasisError):
            HaarBasis(1.0, 6)

"""Tests for the Laguerre-function basis."""

import numpy as np
import pytest

from repro.basis import LaguerreBasis


@pytest.fixture
def basis() -> LaguerreBasis:
    return LaguerreBasis(1.5, 16)


class TestFamily:
    def test_orthonormal(self, basis):
        np.testing.assert_allclose(basis.gram_matrix(), np.eye(16), atol=1e-8)

    def test_phi0_is_scaled_exponential(self):
        b = LaguerreBasis(2.0, 4)
        t = np.linspace(0.0, 2.0, 9)
        np.testing.assert_allclose(
            b.evaluate(t)[0], np.sqrt(4.0) * np.exp(-2.0 * t), atol=1e-12
        )

    def test_semi_infinite_span(self, basis):
        assert basis.t_end == np.inf

    def test_projection_of_member_function(self):
        # phi_1(t) = sqrt(2a) e^{-at} L_1(2at); projecting it recovers e_1
        a = 1.0
        b = LaguerreBasis(a, 8)
        phi1 = lambda t: np.sqrt(2 * a) * np.exp(-a * t) * (1.0 - 2.0 * a * t)
        coeffs = b.project(phi1)
        expected = np.zeros(8)
        expected[1] = 1.0
        np.testing.assert_allclose(coeffs, expected, atol=1e-8)

    def test_decaying_function_expansion_converges(self):
        # pole mismatch (decay 1.3 vs family scale 2.0) forces a genuine
        # infinite expansion, so the truncation error must shrink with m
        f = lambda t: t * np.exp(-1.3 * t)
        t = np.linspace(0.0, 4.0, 21)
        errs = []
        for m in (4, 8, 16, 32):
            b = LaguerreBasis(2.0, m)
            errs.append(np.max(np.abs(b.synthesize(b.project(f), t) - f(t))))
        assert errs[-1] < 1e-6 and errs[-1] < errs[0]


class TestOperationalMatrices:
    def test_integration_on_decaying_function(self):
        # integral of (1-3t)e^{-3t} is t e^{-3t}, which decays -> in span
        b = LaguerreBasis(1.0, 24)
        f = lambda t: (1.0 - 3.0 * t) * np.exp(-3.0 * t)
        coeffs = b.integration_matrix().T @ b.project(f)
        t = np.linspace(0.0, 4.0, 13)
        np.testing.assert_allclose(b.synthesize(coeffs, t), t * np.exp(-3.0 * t), atol=1e-5)

    def test_differentiation_on_zero_start_function(self):
        b = LaguerreBasis(1.0, 24)
        g = lambda t: t * np.exp(-3.0 * t)  # g(0) = 0
        coeffs = b.differentiation_matrix().T @ b.project(g)
        t = np.linspace(0.2, 3.0, 9)
        expected = (1.0 - 3.0 * t) * np.exp(-3.0 * t)
        np.testing.assert_allclose(b.synthesize(coeffs, t), expected, atol=1e-4)

    def test_integration_differentiation_inverse(self, basis):
        np.testing.assert_allclose(
            basis.integration_matrix() @ basis.differentiation_matrix(),
            np.eye(16),
            atol=1e-10,
        )

    def test_fractional_semigroup_exact(self, basis):
        half = basis.fractional_differentiation_matrix(0.5)
        np.testing.assert_allclose(
            half @ half, basis.differentiation_matrix(), atol=1e-10
        )

    def test_fractional_integration_inverse(self, basis):
        fi = basis.fractional_integration_matrix(0.7)
        fd = basis.fractional_differentiation_matrix(0.7)
        np.testing.assert_allclose(fi @ fd, np.eye(16), atol=1e-9)

    def test_matrices_triangular_toeplitz(self, basis):
        from repro.opmat import toeplitz_coefficients

        # must not raise: both operational matrices are Toeplitz
        toeplitz_coefficients(basis.integration_matrix())
        toeplitz_coefficients(basis.differentiation_matrix())

"""Shared contract suite run against every basis family.

The engine treats bases interchangeably through
:class:`repro.engine.bundle.OperatorBundle`; this suite pins the
contract every family must satisfy for that to be sound:

* projection -> synthesis round-trips a smooth function;
* the integration operational matrix is consistent with projecting the
  antiderivative directly;
* the fractional integration matrix reproduces the analytic
  Riemann-Liouville integral ``I^alpha 1 = t^alpha / Gamma(alpha+1)``;
* operational matrices are cached per instance (zero rebuilds on
  repeated access) and returned read-only.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import gamma as gamma_fn

from repro.basis import (
    BlockPulseBasis,
    ChebyshevBasis,
    HaarBasis,
    LaguerreBasis,
    LegendreBasis,
    TimeGrid,
    WalshBasis,
)

T_END = 2.0

#: family name -> (constructor, round-trip tol, integration tol, fractional tol)
#: The fractional tolerance absorbs two very different error sources:
#: the Tustin-form operator error of the piecewise families (O(h)) and
#: the slow polynomial representation of the t^alpha singularity for
#: the spectral families (whose operators are exact in-span, see
#: test_operator_exact_in_span).
FAMILIES = {
    "block-pulse": (lambda: BlockPulseBasis(TimeGrid.uniform(T_END, 128)), 5e-4, 2e-2, 2e-2),
    "walsh": (lambda: WalshBasis(T_END, 128), 2e-2, 2e-2, 2e-2),
    "haar": (lambda: HaarBasis(T_END, 128), 2e-2, 2e-2, 2e-2),
    "legendre": (lambda: LegendreBasis(T_END, 16), 1e-10, 1e-8, 5e-3),
    "chebyshev": (lambda: ChebyshevBasis(T_END, 16), 1e-10, 1e-8, 5e-3),
    "laguerre": (lambda: LaguerreBasis(1.5, 48), 1e-8, 1e-5, 5e-3),
}


@pytest.fixture(params=sorted(FAMILIES))
def family(request):
    make, rt_tol, int_tol, frac_tol = FAMILIES[request.param]
    return request.param, make(), rt_tol, int_tol, frac_tol


def _smooth(t):
    # decaying so the Laguerre expansion converges fast too
    return np.exp(-1.2 * t) * (1.0 + 0.5 * np.sin(2.0 * t))


def _integrand(t):
    """``d/dt [t exp(-1.2 t)]`` -- decaying with a decaying antiderivative."""
    return np.exp(-1.2 * t) * (1.0 - 1.2 * t)


def _antiderivative(t):
    return t * np.exp(-1.2 * t)


def _sample_times(basis):
    upper = 6.0 if not np.isfinite(basis.t_end) else 0.95 * basis.t_end
    return np.linspace(0.05 * (upper / 0.95), upper, 23)


class TestProjectionRoundTrip:
    def test_round_trip(self, family):
        name, basis, rt_tol, _, _ = family
        coeffs = basis.project(_smooth)
        t = _sample_times(basis)
        if name == "block-pulse":
            t = basis.grid.midpoints  # averages match midpoints to O(h^2)
        np.testing.assert_allclose(
            basis.synthesize(coeffs, t), _smooth(t), atol=rt_tol
        )

    def test_project_vector_matches_rowwise(self, family):
        _, basis, _, _, _ = family
        func = lambda t: np.vstack([_smooth(t), np.exp(-t)])
        coeffs = basis.project_vector(func, 2)
        np.testing.assert_allclose(coeffs[0], basis.project(_smooth), atol=1e-12)
        np.testing.assert_allclose(
            coeffs[1], basis.project(lambda t: np.exp(-t)), atol=1e-12
        )


class TestIntegrationMatrix:
    def test_consistent_with_antiderivative(self, family):
        name, basis, _, int_tol, _ = family
        c = basis.project(_integrand)
        int_coeffs = c @ basis.integration_matrix()
        t = _sample_times(basis)
        np.testing.assert_allclose(
            basis.synthesize(int_coeffs, t), _antiderivative(t), atol=int_tol
        )


class TestFractionalIntegrationMatrix:
    @pytest.mark.parametrize("alpha", [0.5, 0.8])
    def test_power_law_of_constant(self, family, alpha):
        name, basis, _, _, frac_tol = family
        if name == "laguerre":
            pytest.skip("t^alpha does not decay; covered by the ring-inverse test")
        ones = basis.project(lambda t: np.ones_like(t))
        frac = ones @ basis.fractional_integration_matrix(alpha)
        t = _sample_times(basis)
        exact = t**alpha / gamma_fn(alpha + 1.0)
        np.testing.assert_allclose(basis.synthesize(frac, t), exact, atol=frac_tol)

    @pytest.mark.parametrize("name", ["legendre", "chebyshev"])
    def test_operator_exact_in_span(self, name):
        """The spectral RL operator agrees with direct projection exactly.

        Applying ``I^alpha`` in coefficient space must equal projecting
        the analytic fractional integral -- the pointwise error of the
        previous test is pure representation error, not operator error.
        """
        basis = FAMILIES[name][0]()
        alpha = 0.5
        ones = basis.project(lambda t: np.ones_like(t))
        op = ones @ basis.fractional_integration_matrix(alpha)
        proj = basis.project(lambda t: t**alpha / gamma_fn(alpha + 1.0))
        np.testing.assert_allclose(op, proj, atol=1e-12)

    def test_laguerre_ring_inverse(self):
        basis = LaguerreBasis(1.5, 32)
        fwd = basis.fractional_differentiation_matrix(0.5)
        inv = basis.fractional_integration_matrix(0.5)
        np.testing.assert_allclose(fwd @ inv, np.eye(32), atol=1e-10)


class TestOperatorCaching:
    def test_integration_matrix_cached(self, family):
        _, basis, _, _, _ = family
        first = basis.integration_matrix()
        builds = basis.operator_builds
        second = basis.integration_matrix()
        assert second is first
        assert basis.operator_builds == builds

    def test_fractional_matrices_cached_per_alpha(self, family):
        name, basis, _, _, _ = family
        a = basis.fractional_integration_matrix(0.5)
        assert basis.fractional_integration_matrix(0.5) is a
        b = basis.fractional_integration_matrix(0.75)
        assert b is not a

    def test_cached_arrays_are_read_only(self, family):
        _, basis, _, _, _ = family
        mat = basis.integration_matrix()
        with pytest.raises(ValueError):
            mat[0, 0] = 123.0

    def test_clear_operator_cache(self, family):
        _, basis, _, _, _ = family
        first = basis.integration_matrix()
        basis.clear_operator_cache()
        second = basis.integration_matrix()
        assert second is not first
        np.testing.assert_array_equal(first, second)

    def test_gram_matrix_cached(self, family):
        _, basis, _, _, _ = family
        assert basis.gram_matrix(64) is basis.gram_matrix(64)

"""Tests for the shifted-Legendre basis."""

import numpy as np
import pytest

from repro.basis import LegendreBasis
from repro.errors import BasisError


@pytest.fixture
def basis() -> LegendreBasis:
    return LegendreBasis(2.0, 8)


class TestProjection:
    def test_polynomials_project_exactly(self, basis):
        # degree < m polynomials are reproduced exactly
        f = lambda t: 1.0 - 2.0 * t + 0.5 * t**3
        coeffs = basis.project(f)
        t = np.linspace(0.0, 2.0, 17)
        np.testing.assert_allclose(basis.synthesize(coeffs, t), f(t), atol=1e-12)

    def test_orthogonality_norms(self, basis):
        G = basis.gram_matrix()
        expected = np.diag(2.0 / (2.0 * np.arange(8) + 1.0))
        np.testing.assert_allclose(G, expected, atol=1e-10)

    def test_smooth_function_spectral_convergence(self):
        f = lambda t: np.exp(-t) * np.sin(3 * t)
        t = np.linspace(0.0, 2.0, 40)
        errors = []
        for m in (4, 8, 16):
            b = LegendreBasis(2.0, m)
            errors.append(np.max(np.abs(b.synthesize(b.project(f), t) - f(t))))
        assert errors[1] < errors[0] / 10.0
        assert errors[2] < errors[1] / 100.0


class TestOperationalMatrices:
    def test_integration_exact_on_polynomials(self, basis):
        coeffs = basis.project(lambda t: t**2)
        integrated = basis.integration_matrix().T @ coeffs
        t = np.linspace(0.0, 2.0, 9)
        np.testing.assert_allclose(basis.synthesize(integrated, t), t**3 / 3.0, atol=1e-12)

    def test_integration_of_top_degree_truncates(self):
        # integral of Ps_{m-1} needs Ps_m, which is truncated: the matrix
        # stays consistent for all lower degrees (tau-method behaviour)
        m = 5
        b = LegendreBasis(1.0, m)
        P = b.integration_matrix()
        assert P.shape == (m, m)
        # last row has only the sub-diagonal entry
        assert np.count_nonzero(P[m - 1]) == 1

    def test_no_differentiation_matrix(self, basis):
        with pytest.raises(BasisError, match="differentiation"):
            basis.differentiation_matrix()

    def test_fractional_integration_alpha_one_matches(self, basis):
        np.testing.assert_allclose(
            basis.fractional_integration_matrix(1.0),
            basis.integration_matrix(),
            atol=1e-10,
        )

    def test_fractional_half_integral_of_constant(self):
        # I^{1/2} 1 = 2 sqrt(t/pi)
        b = LegendreBasis(1.0, 24)
        coeffs = b.project(lambda t: np.ones_like(t))
        frac = b.fractional_integration_matrix(0.5).T @ coeffs
        t = np.linspace(0.1, 0.95, 12)
        exact = 2.0 * np.sqrt(t / np.pi)
        np.testing.assert_allclose(b.synthesize(frac, t), exact, atol=2e-3)

    def test_fractional_semigroup_converges_with_m(self):
        errs = []
        for m in (6, 12, 24):
            b = LegendreBasis(2.0, m)
            F = b.fractional_integration_matrix(0.5)
            P = b.integration_matrix()
            errs.append(np.max(np.abs(F @ F - P)))
        assert errs[2] < errs[0]  # slow (algebraic) but monotone

    def test_fractional_alpha_zero_identity(self, basis):
        np.testing.assert_allclose(basis.fractional_integration_matrix(0.0), np.eye(8))

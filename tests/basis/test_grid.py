"""Tests for TimeGrid."""

import numpy as np
import pytest

from repro.basis import TimeGrid


class TestConstruction:
    def test_uniform(self):
        g = TimeGrid.uniform(2.0, 4)
        np.testing.assert_allclose(g.edges, [0.0, 0.5, 1.0, 1.5, 2.0])
        assert g.m == 4 and g.is_uniform and g.h == 0.5 and g.t_end == 2.0

    def test_from_steps(self):
        g = TimeGrid.from_steps([0.1, 0.3, 0.2])
        np.testing.assert_allclose(g.edges, [0.0, 0.1, 0.4, 0.6])
        assert not g.is_uniform

    def test_from_edges(self):
        g = TimeGrid.from_edges([0.0, 1.0, 3.0])
        np.testing.assert_allclose(g.steps, [1.0, 2.0])

    def test_geometric_ratio(self):
        g = TimeGrid.geometric(1.0, 5, 2.0)
        ratios = g.steps[1:] / g.steps[:-1]
        np.testing.assert_allclose(ratios, 2.0)
        assert abs(g.t_end - 1.0) < 1e-12

    def test_geometric_ratio_one_is_uniform(self):
        g = TimeGrid.geometric(1.0, 4, 1.0)
        assert g.is_uniform

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError, match="start at t = 0"):
            TimeGrid.from_edges([0.5, 1.0])

    def test_rejects_decreasing_edges(self):
        with pytest.raises(ValueError):
            TimeGrid.from_edges([0.0, 1.0, 0.5])

    def test_rejects_single_edge(self):
        with pytest.raises(ValueError):
            TimeGrid.from_edges([0.0])

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            TimeGrid.from_steps([0.1, -0.1])


class TestBehaviour:
    def test_midpoints(self):
        g = TimeGrid.uniform(1.0, 4)
        np.testing.assert_allclose(g.midpoints, [0.125, 0.375, 0.625, 0.875])

    def test_locate_interior(self):
        g = TimeGrid.uniform(1.0, 4)
        np.testing.assert_array_equal(g.locate([0.0, 0.3, 0.55, 0.99]), [0, 1, 2, 3])

    def test_locate_right_endpoint_maps_to_last(self):
        g = TimeGrid.uniform(1.0, 4)
        assert g.locate(1.0) == 3

    def test_locate_rejects_outside(self):
        g = TimeGrid.uniform(1.0, 4)
        with pytest.raises(ValueError):
            g.locate(-0.01)
        with pytest.raises(ValueError):
            g.locate(1.1)

    def test_h_raises_for_nonuniform(self):
        g = TimeGrid.from_steps([0.1, 0.2])
        with pytest.raises(ValueError, match="not uniform"):
            _ = g.h

    def test_refine(self):
        g = TimeGrid.uniform(1.0, 2).refine(2)
        np.testing.assert_allclose(g.edges, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_refine_identity(self):
        g = TimeGrid.uniform(1.0, 3)
        assert g.refine(1) is g

    def test_refine_nonuniform(self):
        g = TimeGrid.from_steps([0.2, 0.4]).refine(2)
        np.testing.assert_allclose(g.edges, [0.0, 0.1, 0.2, 0.4, 0.6])

    def test_equality_and_hash(self):
        a = TimeGrid.uniform(1.0, 4)
        b = TimeGrid.uniform(1.0, 4)
        c = TimeGrid.uniform(1.0, 5)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_edges_read_only(self):
        g = TimeGrid.uniform(1.0, 4)
        with pytest.raises(ValueError):
            g.edges[0] = 5.0

    def test_repr_mentions_kind(self):
        assert "uniform" in repr(TimeGrid.uniform(1.0, 4))
        assert "adaptive" in repr(TimeGrid.from_steps([0.1, 0.2]))

"""Tests for the shifted-Chebyshev basis."""

import numpy as np
import pytest

from repro.basis import ChebyshevBasis
from repro.errors import BasisError


@pytest.fixture
def basis() -> ChebyshevBasis:
    return ChebyshevBasis(2.0, 8)


class TestProjection:
    def test_polynomials_project_exactly(self, basis):
        f = lambda t: 2.0 + t - 0.25 * t**2
        coeffs = basis.project(f)
        t = np.linspace(0.0, 2.0, 15)
        np.testing.assert_allclose(basis.synthesize(coeffs, t), f(t), atol=1e-12)

    def test_linear_coefficients_known(self):
        # on [0, 2]: t = 1 + Ts_1(t)
        b = ChebyshevBasis(2.0, 4)
        np.testing.assert_allclose(b.project(lambda t: t), [1, 1, 0, 0], atol=1e-12)

    def test_smooth_spectral_convergence(self):
        f = lambda t: 1.0 / (1.0 + t**2)
        t = np.linspace(0.0, 2.0, 33)
        errs = [
            np.max(np.abs(ChebyshevBasis(2.0, m).synthesize(
                ChebyshevBasis(2.0, m).project(f), t) - f(t)))
            for m in (4, 8, 16)
        ]
        assert errs[1] < errs[0] / 5 and errs[2] < errs[1] / 5


class TestOperationalMatrices:
    def test_integration_exact_on_polynomials(self, basis):
        coeffs = basis.project(lambda t: 3.0 * t**2)
        integrated = basis.integration_matrix().T @ coeffs
        t = np.linspace(0.0, 2.0, 9)
        np.testing.assert_allclose(basis.synthesize(integrated, t), t**3, atol=1e-11)

    def test_integration_from_zero(self, basis):
        # the matrix encodes integration *from zero*: value at t=0 is 0
        # (polynomial input -> exact; no projection truncation)
        coeffs = basis.project(lambda t: 1.0 + t + t**2)
        integrated = basis.integration_matrix().T @ coeffs
        np.testing.assert_allclose(basis.synthesize(integrated, [0.0]), [0.0], atol=1e-11)

    def test_no_differentiation_matrix(self, basis):
        with pytest.raises(BasisError):
            basis.differentiation_matrix()

    def test_fractional_alpha_one_matches_integer(self, basis):
        np.testing.assert_allclose(
            basis.fractional_integration_matrix(1.0),
            basis.integration_matrix(),
            atol=1e-9,
        )

    def test_fractional_half_integral_of_constant(self):
        b = ChebyshevBasis(1.0, 24)
        coeffs = b.project(lambda t: np.ones_like(t))
        frac = b.fractional_integration_matrix(0.5).T @ coeffs
        t = np.linspace(0.1, 0.95, 10)
        np.testing.assert_allclose(
            b.synthesize(frac, t), 2.0 * np.sqrt(t / np.pi), atol=2e-3
        )

"""Tests for the blocked-FFT fractional history accumulation (extension).

The ``history='fft'`` mode must be *bit-compatible* (to round-off) with
the paper's direct ``O(n m^2)`` sweep -- it is a reorganisation of the
same arithmetic, not an approximation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FractionalDescriptorSystem,
    simulate_opm,
    solve_columns_toeplitz,
)
from repro.errors import SolverError
from repro.opmat import fractional_differentiation_coefficients


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 4),
    m=st.integers(9, 200),
    block=st.one_of(st.none(), st.integers(2, 64)),
    alpha=st.sampled_from([0.3, 0.5, 1.5, 2.0]),
)
@settings(max_examples=40, deadline=None)
def test_fft_history_matches_direct(seed, n, m, block, alpha):
    rng = np.random.default_rng(seed)
    E = np.eye(n) + 0.05 * rng.standard_normal((n, n))
    A = -np.eye(n) - 0.2 * rng.standard_normal((n, n))
    R = rng.standard_normal((n, m))
    coeffs = fractional_differentiation_coefficients(alpha, m, 0.1)
    direct, _ = solve_columns_toeplitz(E, A, R, coeffs, history="direct")
    fft, _ = solve_columns_toeplitz(E, A, R, coeffs, history="fft", block_size=block)
    # FFT round-off scales with the convolved magnitudes: for large
    # orders the tail coefficients reach (2/h)^alpha * 4k, so the
    # tolerance must carry the coefficient norm
    scale = (np.max(np.abs(direct)) + 1.0) * (np.max(np.abs(coeffs)) + 1.0)
    np.testing.assert_allclose(fft, direct, atol=1e-12 * scale)


class TestSimulateIntegration:
    def test_simulate_opm_history_flag(self, scalar_fde):
        direct = simulate_opm(scalar_fde, 1.0, (2.0, 300))
        fast = simulate_opm(scalar_fde, 1.0, (2.0, 300), history="fft")
        np.testing.assert_allclose(
            fast.coefficients, direct.coefficients, atol=1e-12
        )
        assert fast.info["method"] == "opm-toeplitz-fft"

    def test_first_order_ignores_history_flag(self, scalar_ode):
        res = simulate_opm(scalar_ode, 1.0, (1.0, 64), history="fft")
        assert res.info["method"] == "opm-alternating"

    def test_small_m_falls_back_to_direct(self, scalar_fde):
        # m <= 8: blocking overhead exceeds any gain; same answer either way
        direct = simulate_opm(scalar_fde, 1.0, (1.0, 8))
        fast = simulate_opm(scalar_fde, 1.0, (1.0, 8), history="fft")
        np.testing.assert_allclose(fast.coefficients, direct.coefficients)

    def test_mimo_fractional(self):
        system = FractionalDescriptorSystem(
            0.5, np.eye(3), -np.diag([1.0, 2.0, 3.0]), np.ones((3, 2))
        )
        u = lambda t: np.vstack([np.sin(t), np.cos(t)])
        direct = simulate_opm(system, u, (2.0, 200))
        fast = simulate_opm(system, u, (2.0, 200), history="fft")
        np.testing.assert_allclose(
            fast.coefficients, direct.coefficients, atol=1e-12
        )

    def test_rejects_unknown_history(self, scalar_fde):
        with pytest.raises(SolverError, match="history"):
            simulate_opm(scalar_fde, 1.0, (1.0, 32), history="wavelet")

    def test_faster_at_scale(self):
        import scipy.sparse as sp

        n, m = 100, 3000
        A = sp.diags(
            [np.ones(n - 1), -2.0 * np.ones(n), np.ones(n - 1)], [-1, 0, 1], format="csr"
        )
        system = FractionalDescriptorSystem(
            0.5, sp.identity(n, format="csr"), A, np.eye(n)[:, :1]
        )
        direct = simulate_opm(system, 1.0, (1.0, m))
        fast = simulate_opm(system, 1.0, (1.0, m), history="fft")
        np.testing.assert_allclose(
            fast.coefficients, direct.coefficients,
            atol=1e-10 * (np.max(np.abs(direct.coefficients)) + 1.0),
        )
        assert fast.wall_time < 0.7 * direct.wall_time

"""Cross-validation of the fast column sweep against the Kronecker form.

The paper presents eq. (15)/(27) as the defining linear system and the
column sweep as the efficient evaluation; these tests assert the two
agree to machine precision on randomised systems (hypothesis) for all
dispatch paths: first-order/fractional x uniform/adaptive x dense/sparse.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis import TimeGrid
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    MultiTermSystem,
    simulate_opm,
    simulate_opm_kron,
)
from repro.errors import SolverError


def random_system(seed: int, n: int, alpha: float = 1.0, sparse: bool = False):
    rng = np.random.default_rng(seed)
    E = np.eye(n) + 0.1 * rng.standard_normal((n, n))
    A = -np.eye(n) * (1.0 + rng.uniform(size=n)) + 0.1 * rng.standard_normal((n, n))
    B = rng.standard_normal((n, 1))
    if sparse:
        E, A = sp.csr_matrix(E), sp.csr_matrix(A)
    if alpha == 1.0:
        return DescriptorSystem(E, A, B)
    return FractionalDescriptorSystem(alpha, E, A, B)


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 6),
    m=st.integers(1, 12),
    alpha_key=st.sampled_from([1.0, 0.5, 0.25, 1.5, 2.0]),
)
@settings(max_examples=50, deadline=None)
def test_uniform_grid_agreement(seed, n, m, alpha_key):
    system = random_system(seed, n, alpha_key)
    fast = simulate_opm(system, 1.0, (1.0, m))
    ref = simulate_opm_kron(system, 1.0, (1.0, m))
    scale = np.max(np.abs(ref.coefficients)) + 1.0
    np.testing.assert_allclose(
        fast.coefficients, ref.coefficients, atol=1e-8 * scale
    )


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 5),
    ratio=st.floats(1.05, 1.6),
    alpha_key=st.sampled_from([1.0, 0.5, 1.5]),
)
@settings(max_examples=30, deadline=None)
def test_adaptive_grid_agreement(seed, n, ratio, alpha_key):
    system = random_system(seed, n, alpha_key)
    grid = TimeGrid.geometric(1.0, 8, ratio)
    fast = simulate_opm(system, 1.0, grid)
    ref = simulate_opm_kron(system, 1.0, grid)
    scale = np.max(np.abs(ref.coefficients)) + 1.0
    np.testing.assert_allclose(
        fast.coefficients, ref.coefficients, atol=1e-6 * scale
    )


@given(seed=st.integers(0, 2**31), n=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_sparse_dense_agreement(seed, n):
    dense = random_system(seed, n, sparse=False)
    sparse = random_system(seed, n, sparse=True)
    fast_d = simulate_opm(dense, 1.0, (1.0, 10))
    fast_s = simulate_opm(sparse, 1.0, (1.0, 10))
    scale = np.max(np.abs(fast_d.coefficients)) + 1.0
    np.testing.assert_allclose(
        fast_d.coefficients, fast_s.coefficients, atol=1e-9 * scale
    )


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 3),
    orders=st.sampled_from([(2.0, 1.0, 0.0), (2.0, 0.5, 0.0), (1.0, 0.5, 0.0), (2.5, 1.25, 0.0)]),
)
@settings(max_examples=25, deadline=None)
def test_multiterm_agreement(seed, n, orders):
    rng = np.random.default_rng(seed)
    terms = [
        (order, np.eye(n) * (1.0 + k) + 0.05 * rng.standard_normal((n, n)))
        for k, order in enumerate(orders)
    ]
    system = MultiTermSystem(terms, rng.standard_normal((n, 1)))
    fast = simulate_opm(system, 1.0, (1.0, 10))
    ref = simulate_opm_kron(system, 1.0, (1.0, 10))
    scale = np.max(np.abs(ref.coefficients)) + 1.0
    np.testing.assert_allclose(fast.coefficients, ref.coefficients, atol=1e-8 * scale)


def test_kron_size_guard():
    system = random_system(0, 20)
    with pytest.raises(SolverError, match="MAX_KRON_SIZE"):
        simulate_opm_kron(system, 1.0, (1.0, 1000))


def test_kron_x0_shift_agrees():
    system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[2.0])
    fast = simulate_opm(system, 1.0, (1.0, 12))
    ref = simulate_opm_kron(system, 1.0, (1.0, 12))
    np.testing.assert_allclose(fast.coefficients, ref.coefficients, atol=1e-10)

"""Edge-case sweeps across solvers: minimal sizes, degenerate shapes."""

import numpy as np
import pytest

from repro.basis import TimeGrid
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    MultiTermSystem,
    simulate_multiterm,
    simulate_opm,
    simulate_opm_kron,
)


class TestSingleCell:
    """m = 1: one block pulse -- every path must still be exact algebra."""

    def test_first_order_m1(self, scalar_ode):
        res = simulate_opm(scalar_ode, 1.0, (0.5, 1))
        # (2/h - a) x = b u -> x = 1/(4+1)... E=1, A=-1, h=0.5: (4+1)x=1
        assert res.coefficients[0, 0] == pytest.approx(0.2)

    def test_fractional_m1(self, scalar_fde):
        res = simulate_opm(scalar_fde, 1.0, (0.5, 1))
        expected = 1.0 / ((2.0 / 0.5) ** 0.5 + 1.0)
        assert res.coefficients[0, 0] == pytest.approx(expected)

    def test_m1_matches_kron(self, scalar_ode):
        fast = simulate_opm(scalar_ode, 1.0, (0.5, 1))
        ref = simulate_opm_kron(scalar_ode, 1.0, (0.5, 1))
        np.testing.assert_allclose(fast.coefficients, ref.coefficients)

    def test_multiterm_m1(self):
        msys = MultiTermSystem(
            [(2.0, np.eye(1)), (1.0, np.eye(1)), (0.0, np.eye(1))], [[1.0]]
        )
        res = simulate_multiterm(msys, 1.0, (1.0, 1))
        expected = 1.0 / (4.0 + 2.0 + 1.0)  # (2/h)^2 + (2/h) + 1 at h=1
        assert res.coefficients[0, 0] == pytest.approx(expected)


class TestDegenerateShapes:
    def test_zero_input_channels_handled(self):
        # B with p=1 but u = 0 scalar
        system = DescriptorSystem(np.eye(2), -np.eye(2), np.zeros((2, 1)), x0=[1.0, 2.0])
        res = simulate_opm(system, 0.0, (1.0, 50))
        t = res.grid.midpoints
        np.testing.assert_allclose(res.states(t)[0], np.exp(-t), atol=1e-3)

    def test_wide_b_many_inputs(self):
        p = 7
        system = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, p)))
        u = lambda t: np.vstack([np.sin((k + 1) * t) for k in range(p)])
        res = simulate_opm(system, u, (1.0, 32))
        assert res.input_coefficients.shape == (p, 32)

    def test_tall_c_many_outputs(self):
        q = 5
        system = DescriptorSystem(
            np.eye(2), -np.eye(2), np.ones((2, 1)), C=np.ones((q, 2))
        )
        res = simulate_opm(system, 1.0, (1.0, 16))
        assert res.output_coefficients.shape == (q, 16)

    def test_alpha_exactly_two_descriptor(self):
        # FractionalDescriptorSystem with integer alpha = 2 behaves like
        # the undamped oscillator x'' = -x + u
        system = FractionalDescriptorSystem(2.0, [[1.0]], [[-1.0]], [[1.0]])
        res = simulate_opm(system, 1.0, (12.6, 2500))
        t = res.grid.midpoints
        np.testing.assert_allclose(
            res.states_smooth(t)[0], 1.0 - np.cos(t), atol=2e-2
        )

    def test_very_small_alpha(self):
        # alpha -> 0+: d^alpha x ~ x, so E x ~ A x + B u: nearly algebraic
        system = FractionalDescriptorSystem(0.01, [[1.0]], [[-1.0]], [[1.0]])
        res = simulate_opm(system, 1.0, (1.0, 64))
        # solution ~ u/(1+1) = 0.5 almost immediately
        assert abs(res.coefficients[0, -1] - 0.5) < 0.05


class TestGridExtremes:
    def test_tiny_time_scale(self):
        # picosecond horizons: no scaling pathologies
        system = DescriptorSystem([[1e-12]], [[-1.0]], [[1.0]])  # tau = 1 ps
        res = simulate_opm(system, 1.0, (5e-12, 200))
        t = res.grid.midpoints
        np.testing.assert_allclose(
            res.states(t)[0], 1.0 - np.exp(-t / 1e-12), atol=1e-3
        )

    def test_huge_time_scale(self):
        system = DescriptorSystem([[1e6]], [[-1.0]], [[1.0]])  # tau = 1e6 s
        res = simulate_opm(system, 1.0, (5e6, 200))
        t = res.grid.midpoints
        np.testing.assert_allclose(
            res.states(t)[0], 1.0 - np.exp(-t / 1e6), atol=1e-3
        )

    def test_steeply_graded_grid(self, scalar_ode):
        grid = TimeGrid.geometric(1.0, 40, 1.3)  # 4 orders of magnitude
        res = simulate_opm(scalar_ode, 1.0, grid)
        ref = simulate_opm_kron(scalar_ode, 1.0, grid)
        np.testing.assert_allclose(
            res.coefficients, ref.coefficients, atol=1e-9
        )

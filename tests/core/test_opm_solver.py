"""Tests for the main OPM solver (paper sections III-IV)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.basis import TimeGrid, WalshBasis
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    simulate_opm,
    simulate_opm_transformed,
)
from repro.core.opm_solver import project_input, resolve_grid
from repro.basis import BlockPulseBasis
from repro.errors import ModelError
from repro.fractional import fde_step_response


class TestResolveGrid:
    def test_passthrough(self):
        g = TimeGrid.uniform(1.0, 4)
        assert resolve_grid(g) is g

    def test_tuple_convenience(self):
        g = resolve_grid((2.0, 8))
        assert g.t_end == 2.0 and g.m == 8

    def test_rejects_other(self):
        with pytest.raises(TypeError):
            resolve_grid([1.0, 2.0, 3.0])


class TestProjectInput:
    def test_scalar(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        U = project_input(2.5, basis, 3)
        np.testing.assert_array_equal(U, np.full((3, 4), 2.5))

    def test_scalar_callable_single_input(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        U = project_input(lambda t: t, basis, 1)
        np.testing.assert_allclose(U, [basis.grid.midpoints])

    def test_vector_callable(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        U = project_input(lambda t: np.vstack([t, -t]), basis, 2)
        np.testing.assert_allclose(U[0], -U[1])

    def test_coefficient_array_passthrough(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        coeffs = np.arange(8.0).reshape(2, 4)
        np.testing.assert_array_equal(project_input(coeffs, basis, 2), coeffs)

    def test_1d_coefficients_single_input(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        U = project_input(np.arange(4.0), basis, 1)
        assert U.shape == (1, 4)

    def test_rejects_1d_for_multi_input(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        with pytest.raises(ModelError):
            project_input(np.arange(4.0), basis, 2)

    def test_rejects_wrong_shape(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        with pytest.raises(ModelError):
            project_input(np.zeros((2, 5)), basis, 2)


class TestFirstOrderAccuracy:
    def test_step_response_converges_second_order(self, scalar_ode):
        # evaluate at the grid midpoints (the block-pulse representation
        # points); off-midpoint sampling adds an O(h) cell offset that
        # would mask the scheme's own second-order accuracy
        errors = []
        for m in (100, 200, 400):
            res = simulate_opm(scalar_ode, 1.0, (5.0, m))
            t = res.grid.midpoints
            errors.append(np.max(np.abs(res.states(t)[0] - (1.0 - np.exp(-t)))))
        rate01 = np.log2(errors[0] / errors[1])
        rate12 = np.log2(errors[1] / errors[2])
        assert 1.7 < rate01 < 2.3 and 1.7 < rate12 < 2.3

    def test_matches_trapezoidal_accuracy_class(self, scalar_ode):
        # paper claim: "similar performance to trapezoidal or Gear's"
        from repro.baselines import simulate_transient

        m = 200
        opm = simulate_opm(scalar_ode, 1.0, (5.0, m))
        t = opm.grid.midpoints  # representation points for both methods
        exact = 1.0 - np.exp(-t)
        opm_err = np.max(np.abs(opm.states(t)[0] - exact))
        trap_err = np.max(
            np.abs(simulate_transient(scalar_ode, 1.0, 5.0, m).states(t)[0] - exact)
        )
        be_err = np.max(
            np.abs(
                simulate_transient(scalar_ode, 1.0, 5.0, m, method="backward-euler")
                .states(t)[0] - exact
            )
        )
        assert opm_err < 10.0 * trap_err  # same order of magnitude
        assert opm_err < be_err / 5.0  # clearly better than first-order

    def test_sinusoidal_input(self, scalar_ode):
        # x' = -x + sin(t), x(0)=0 -> x = (sin t - cos t + e^{-t})/2
        res = simulate_opm(scalar_ode, lambda t: np.sin(t), (6.0, 600))
        t = res.grid.midpoints
        exact = 0.5 * (np.sin(t) - np.cos(t) + np.exp(-t))
        np.testing.assert_allclose(res.states(t)[0], exact, atol=2e-4)

    def test_dae_with_singular_e(self):
        # x1' = -x1 + u ; 0 = x2 - x1  (algebraic constraint)
        E = np.array([[1.0, 0.0], [0.0, 0.0]])
        A = np.array([[-1.0, 0.0], [-1.0, 1.0]])
        B = np.array([[1.0], [0.0]])
        system = DescriptorSystem(E, A, B)
        res = simulate_opm(system, 1.0, (5.0, 300))
        X = res.coefficients
        np.testing.assert_allclose(X[0], X[1], atol=1e-12)  # constraint holds

    def test_nonzero_initial_condition(self):
        system = DescriptorSystem([[1.0]], [[-2.0]], [[1.0]], x0=[3.0])
        res = simulate_opm(system, 0.0, (2.0, 400))
        t = res.grid.midpoints
        np.testing.assert_allclose(res.states(t)[0], 3.0 * np.exp(-2.0 * t), atol=1e-3)

    def test_factorisation_count_uniform(self, scalar_ode):
        res = simulate_opm(scalar_ode, 1.0, (1.0, 64))
        assert res.info["factorisations"] == 1
        assert res.info["method"] == "opm-alternating"

    def test_wall_time_recorded(self, scalar_ode):
        res = simulate_opm(scalar_ode, 1.0, (1.0, 16))
        assert res.wall_time is not None and res.wall_time >= 0.0


class TestFractionalAccuracy:
    def test_half_order_step_vs_mittag_leffler(self, scalar_fde):
        res = simulate_opm(scalar_fde, 1.0, (2.0, 1600))
        t = np.linspace(0.1, 1.9, 10)
        exact = fde_step_response(0.5, 1.0, t)
        np.testing.assert_allclose(res.states(t)[0], exact, atol=4e-3)

    def test_fractional_converges_with_m(self, scalar_fde):
        t = np.linspace(0.2, 1.8, 7)
        exact = fde_step_response(0.5, 1.0, t)
        errs = [
            np.max(np.abs(simulate_opm(scalar_fde, 1.0, (2.0, m)).states(t)[0] - exact))
            for m in (100, 400, 1600)
        ]
        assert errs[2] < errs[1] < errs[0]

    def test_alpha_order_three_halves(self):
        # d^{3/2} x = -x + u behaves like a damped oscillator
        system = FractionalDescriptorSystem(1.5, [[1.0]], [[-1.0]], [[1.0]])
        res = simulate_opm(system, 1.0, (20.0, 800))
        x = res.coefficients[0]
        assert np.max(x) > 1.05  # overshoot: fractional order > 1 rings
        assert abs(x[-1] - 1.0) < 0.1  # settles toward DC gain 1

    def test_fractional_method_label(self, scalar_fde):
        res = simulate_opm(scalar_fde, 1.0, (1.0, 32))
        assert res.info["method"] == "opm-toeplitz"
        assert res.info["alpha"] == 0.5

    def test_fractional_caputo_ic_shift(self):
        # d^0.5 x = -x with x(0) = 1: relaxation E_{0.5}(-t^0.5)
        from repro.fractional import fde_relaxation

        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]], x0=[1.0])
        res = simulate_opm(system, 0.0, (1.0, 2000))
        t = np.linspace(0.1, 0.9, 8)
        np.testing.assert_allclose(
            res.states(t)[0], fde_relaxation(0.5, 1.0, t), atol=2e-2
        )


class TestAdaptiveGrids:
    def test_geometric_grid_first_order(self, scalar_ode):
        grid = TimeGrid.geometric(5.0, 200, 1.02)
        res = simulate_opm(scalar_ode, 1.0, grid)
        t = grid.midpoints
        np.testing.assert_allclose(res.states(t)[0], 1.0 - np.exp(-t), atol=5e-4)

    def test_geometric_grid_fractional(self, scalar_fde):
        grid = TimeGrid.geometric(2.0, 64, 1.05)
        res = simulate_opm(scalar_fde, 1.0, grid)
        t = grid.midpoints[5:]
        exact = fde_step_response(0.5, 1.0, t)
        np.testing.assert_allclose(res.states(t)[0], exact, atol=5e-2)

    def test_method_label_general(self, scalar_ode):
        res = simulate_opm(scalar_ode, 1.0, TimeGrid.from_steps([0.1, 0.2, 0.3]))
        assert res.info["method"] == "opm-general"


class TestTransformedBases:
    def test_walsh_equals_block_pulse(self, scalar_ode):
        walsh = WalshBasis(2.0, 64)
        res_w = simulate_opm_transformed(scalar_ode, 1.0, walsh)
        res_b = simulate_opm(scalar_ode, 1.0, walsh.block_pulse.grid)
        t = np.linspace(0.1, 1.9, 13)
        np.testing.assert_allclose(res_w.states(t), res_b.states(t), atol=1e-10)

    def test_walsh_result_carries_walsh_basis(self, scalar_ode):
        walsh = WalshBasis(2.0, 16)
        res = simulate_opm_transformed(scalar_ode, 1.0, walsh)
        assert res.basis is walsh
        assert "Walsh" in res.info["method"]

    def test_rejects_non_piecewise_basis(self, scalar_ode):
        from repro.basis import LegendreBasis

        with pytest.raises(TypeError):
            simulate_opm_transformed(scalar_ode, 1.0, LegendreBasis(1.0, 8))


class TestSparseLargeSystem:
    def test_tridiagonal_chain(self):
        n = 500
        main = -2.0 * np.ones(n)
        off = np.ones(n - 1)
        A = sp.diags([off, main, off], [-1, 0, 1], format="csr")
        E = sp.identity(n, format="csr")
        B = np.zeros((n, 1))
        B[0, 0] = 1.0
        system = DescriptorSystem(E, A, B)
        res = simulate_opm(system, 1.0, (1.0, 40))
        assert res.coefficients.shape == (n, 40)
        assert res.info["factorisations"] == 1
        # diffusion: last node barely moves in short time
        assert abs(res.coefficients[-1, -1]) < 1e-10

    def test_rejects_unknown_system_type(self):
        with pytest.raises(TypeError):
            simulate_opm(object(), 1.0, (1.0, 8))

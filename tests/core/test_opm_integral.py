"""Tests for the integral-form OPM solver (basis-agnostic)."""

import numpy as np
import pytest

from repro.basis import (
    BlockPulseBasis,
    ChebyshevBasis,
    LegendreBasis,
    TimeGrid,
)
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    simulate_opm,
    simulate_opm_integral,
)
from repro.fractional import fde_step_response


class TestBlockPulseIntegralForm:
    def test_matches_differential_form(self, scalar_ode):
        basis = BlockPulseBasis(TimeGrid.uniform(5.0, 200))
        res_int = simulate_opm_integral(scalar_ode, 1.0, basis)
        res_diff = simulate_opm(scalar_ode, 1.0, basis.grid)
        np.testing.assert_allclose(
            res_int.coefficients, res_diff.coefficients, atol=1e-9
        )

    def test_fractional_tustin_matches_differential(self, scalar_fde):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 64))
        res_int = simulate_opm_integral(scalar_fde, 1.0, basis, construction="tustin")
        res_diff = simulate_opm(scalar_fde, 1.0, basis.grid)
        # same truncated-ring operator inverted -> identical solution
        np.testing.assert_allclose(
            res_int.coefficients, res_diff.coefficients, atol=1e-8
        )

    def test_fractional_rl_construction_accurate(self, scalar_fde):
        basis = BlockPulseBasis(TimeGrid.uniform(2.0, 800))
        res = simulate_opm_integral(scalar_fde, 1.0, basis, construction="rl")
        t = np.linspace(0.2, 1.8, 9)
        np.testing.assert_allclose(
            res.states(t)[0], fde_step_response(0.5, 1.0, t), atol=5e-3
        )

    def test_rl_and_tustin_converge_together(self, scalar_fde):
        t = np.linspace(0.2, 1.8, 9)
        exact = fde_step_response(0.5, 1.0, t)
        errs = {}
        for construction in ("tustin", "rl"):
            basis = BlockPulseBasis(TimeGrid.uniform(2.0, 1600))
            res = simulate_opm_integral(scalar_fde, 1.0, basis, construction=construction)
            errs[construction] = np.max(np.abs(res.states(t)[0] - exact))
        assert errs["tustin"] < 5e-3 and errs["rl"] < 5e-3


class TestSpectralBases:
    def test_legendre_exponential_accuracy(self, scalar_ode):
        # smooth problem: spectral basis reaches ~1e-12 with 16 terms
        res = simulate_opm_integral(scalar_ode, 1.0, LegendreBasis(5.0, 16))
        t = np.linspace(0.2, 4.8, 11)
        np.testing.assert_allclose(res.states(t)[0], 1.0 - np.exp(-t), atol=1e-10)

    def test_chebyshev_exponential_accuracy(self, scalar_ode):
        res = simulate_opm_integral(scalar_ode, 1.0, ChebyshevBasis(5.0, 16))
        t = np.linspace(0.2, 4.8, 11)
        np.testing.assert_allclose(res.states(t)[0], 1.0 - np.exp(-t), atol=1e-9)

    def test_legendre_beats_block_pulse_per_dof(self, scalar_ode):
        t = np.linspace(0.2, 4.8, 11)
        exact = 1.0 - np.exp(-t)
        spectral = simulate_opm_integral(scalar_ode, 1.0, LegendreBasis(5.0, 16))
        bpf = simulate_opm(scalar_ode, 1.0, (5.0, 16))
        err_spec = np.max(np.abs(spectral.states(t)[0] - exact))
        err_bpf = np.max(np.abs(bpf.states(t)[0] - exact))
        assert err_spec < err_bpf / 1e3

    def test_legendre_x0(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[2.0])
        res = simulate_opm_integral(system, 0.0, LegendreBasis(4.0, 16))
        t = np.linspace(0.0, 3.9, 9)
        np.testing.assert_allclose(res.states(t)[0], 2.0 * np.exp(-t), atol=1e-9)

    def test_legendre_fractional(self, scalar_fde):
        res = simulate_opm_integral(scalar_fde, 1.0, LegendreBasis(2.0, 24))
        t = np.linspace(0.3, 1.9, 7)
        np.testing.assert_allclose(
            res.states(t)[0], fde_step_response(0.5, 1.0, t), atol=5e-3
        )

    def test_mimo_system(self):
        system = DescriptorSystem(
            np.eye(2), -np.diag([1.0, 3.0]), np.eye(2), C=np.array([[1.0, 1.0]])
        )
        res = simulate_opm_integral(
            system, lambda t: np.vstack([np.ones_like(t), np.sin(t)]),
            LegendreBasis(3.0, 20),
        )
        assert res.output_coefficients.shape == (1, 20)


class TestLaguerreHorizon:
    def test_semi_infinite_solve(self):
        # x' = -x + e^{-2t}, x(0) = 0  ->  x = e^{-t} - e^{-2t}
        from repro.basis import LaguerreBasis

        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
        basis = LaguerreBasis(1.0, 32)
        res = simulate_opm_integral(
            system, lambda t: np.exp(-2.0 * t), basis
        )
        t = np.linspace(0.0, 6.0, 25)
        exact = np.exp(-t) - np.exp(-2.0 * t)
        np.testing.assert_allclose(res.states(t)[0], exact, atol=1e-5)

    def test_triangular_fast_path_used(self):
        from repro.basis import LaguerreBasis

        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
        res = simulate_opm_integral(
            system, lambda t: np.exp(-t) * np.sin(t), LaguerreBasis(1.0, 24)
        )
        # Laguerre integration matrix is upper-triangular Toeplitz, so
        # the column sweep (not the dense fallback) must be taken
        assert res.info["method"].startswith("opm-integral[")
        assert res.info["factorisations"] == 1

    def test_fractional_on_laguerre(self):
        # d^1/2 x = -x + e^{-t}: validate against a fine BPF solve
        from repro.basis import LaguerreBasis
        from repro.core import FractionalDescriptorSystem, simulate_opm

        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
        lag = simulate_opm_integral(
            system, lambda t: np.exp(-t), LaguerreBasis(1.0, 48)
        )
        bpf = simulate_opm(system, lambda t: np.exp(-t), (8.0, 4000))
        t = np.linspace(0.5, 7.0, 14)
        np.testing.assert_allclose(
            lag.states(t)[0], bpf.states_smooth(t)[0], atol=2e-3
        )


class TestValidation:
    def test_rejects_non_system(self):
        with pytest.raises(TypeError):
            simulate_opm_integral("x", 1.0, LegendreBasis(1.0, 4))

    def test_rejects_non_basis(self, scalar_ode):
        with pytest.raises(TypeError):
            simulate_opm_integral(scalar_ode, 1.0, "basis")

    def test_method_labels(self, scalar_ode):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 16))
        res = simulate_opm_integral(scalar_ode, 1.0, basis)
        assert res.info["method"].startswith("opm-integral")
        res2 = simulate_opm_integral(scalar_ode, 1.0, LegendreBasis(1.0, 8))
        assert res2.info["method"] == "opm-integral[spectral]"
        # Walsh/Haar stay on the dense integral-form Kronecker solve
        # (NOT the engine's differential-form pwconst plan)
        from repro.basis import WalshBasis

        res3 = simulate_opm_integral(scalar_ode, 1.0, WalshBasis(1.0, 8))
        assert res3.info["method"] == "opm-integral[dense]"

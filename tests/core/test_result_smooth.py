"""Tests for the smooth (midpoint-linear) reconstruction semantics."""

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, TimeGrid, WalshBasis
from repro.core import DescriptorSystem, SimulationResult, simulate_opm


@pytest.fixture
def ramp_result(scalar_ode):
    # x' = -x + t has a smooth, curving solution: good interp fodder
    return simulate_opm(scalar_ode, lambda t: t, (2.0, 64))


class TestSmoothSampling:
    def test_matches_coefficients_at_midpoints(self, ramp_result):
        mids = ramp_result.grid.midpoints
        np.testing.assert_allclose(
            ramp_result.states_smooth(mids)[0], ramp_result.coefficients[0]
        )

    def test_second_order_between_midpoints(self, scalar_ode):
        # smooth sampling at arbitrary times converges O(h^2), while raw
        # piecewise-constant sampling is O(h)
        t = np.linspace(0.37, 1.83, 11)  # incommensurate with any grid
        exact = lambda tt: 1.0 - np.exp(-tt)
        errs_smooth, errs_pwc = [], []
        for m in (64, 128, 256):
            res = simulate_opm(scalar_ode, 1.0, (2.0, m))
            errs_smooth.append(np.max(np.abs(res.states_smooth(t)[0] - exact(t))))
            errs_pwc.append(np.max(np.abs(res.states(t)[0] - exact(t))))
        rate_smooth = np.log2(errs_smooth[0] / errs_smooth[2]) / 2.0
        rate_pwc = np.log2(errs_pwc[0] / errs_pwc[2]) / 2.0
        assert rate_smooth > 1.6
        assert rate_pwc < 1.4

    def test_clamps_outside_midpoint_range(self, ramp_result):
        # times before the first midpoint / after the last take the
        # nearest coefficient (np.interp clamping)
        first = ramp_result.states_smooth([0.0])[0, 0]
        assert first == pytest.approx(ramp_result.coefficients[0, 0])

    def test_outputs_smooth_applies_c(self):
        system = DescriptorSystem(
            [[1.0]], [[-1.0]], [[1.0]], C=[[3.0]]
        )
        res = simulate_opm(system, 1.0, (1.0, 16))
        t = res.grid.midpoints
        np.testing.assert_allclose(
            res.outputs_smooth(t)[0], 3.0 * res.states_smooth(t)[0]
        )

    def test_non_bpf_basis_falls_back_to_synthesis(self, scalar_ode):
        basis = WalshBasis(1.0, 8)
        X = np.ones((1, 8))
        U = np.ones((1, 8))
        res = SimulationResult(basis, X, scalar_ode, U)
        t = np.array([0.3, 0.7])
        np.testing.assert_allclose(
            res.states_smooth(t), basis.synthesize(X, t)
        )

    def test_matrix_shape_preserved(self, ramp_result):
        t = np.linspace(0.1, 1.9, 5)
        assert ramp_result.states_smooth(t).shape == (1, 5)

"""Tests for system model classes."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    MultiTermSystem,
    SecondOrderSystem,
)
from repro.errors import ModelError


class TestDescriptorSystem:
    def test_shapes(self):
        system = DescriptorSystem(np.eye(3), -np.eye(3), np.ones((3, 2)))
        assert (system.n_states, system.n_inputs, system.n_outputs) == (3, 2, 3)
        assert system.alpha == 1.0

    def test_vector_b_promoted(self):
        system = DescriptorSystem(np.eye(2), -np.eye(2), [1.0, 0.0])
        assert system.B.shape == (2, 1)

    def test_sparse_storage(self):
        system = DescriptorSystem(
            sp.identity(4), -sp.identity(4), np.ones((4, 1))
        )
        assert system.is_sparse
        assert sp.issparse(system.E) and system.E.format == "csr"

    def test_output_map_identity_default(self):
        system = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)))
        X = np.arange(6.0).reshape(2, 3)
        U = np.ones((1, 3))
        np.testing.assert_array_equal(system.output_coefficients(X, U), X)

    def test_output_map_with_c_and_d(self):
        system = DescriptorSystem(
            np.eye(2), -np.eye(2), np.ones((2, 1)),
            C=[[1.0, -1.0]], D=[[2.0]],
        )
        X = np.array([[1.0, 2.0], [0.5, 1.0]])
        U = np.array([[10.0, 20.0]])
        np.testing.assert_allclose(
            system.output_coefficients(X, U), [[20.5, 41.0]]
        )

    def test_from_state_space(self):
        system = DescriptorSystem.from_state_space(-np.eye(2), np.ones((2, 1)))
        np.testing.assert_array_equal(np.asarray(system.E), np.eye(2))

    def test_zero_x0_treated_as_none(self):
        system = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), x0=[0.0, 0.0])
        assert system.x0 is None

    def test_shifted_input_offset(self):
        system = DescriptorSystem(np.eye(2), -2.0 * np.eye(2), np.ones((2, 1)), x0=[1.0, 3.0])
        np.testing.assert_allclose(system.shifted_input_offset(), [-2.0, -6.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ModelError):
            DescriptorSystem(np.eye(3), -np.eye(2), np.ones((3, 1)))

    def test_rejects_rectangular_e(self):
        with pytest.raises(ModelError):
            DescriptorSystem(np.ones((2, 3)), -np.eye(2), np.ones((2, 1)))

    def test_rejects_bad_b_rows(self):
        with pytest.raises(ModelError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((3, 1)))

    def test_rejects_bad_c_cols(self):
        with pytest.raises(ModelError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), C=np.ones((1, 3)))

    def test_rejects_bad_d(self):
        with pytest.raises(ModelError):
            DescriptorSystem(
                np.eye(2), -np.eye(2), np.ones((2, 1)), C=np.ones((1, 2)), D=np.ones((1, 2))
            )

    def test_rejects_bad_x0(self):
        with pytest.raises(ModelError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), x0=[1.0])


class TestFractionalDescriptorSystem:
    def test_alpha_stored(self):
        system = FractionalDescriptorSystem(0.5, np.eye(1), -np.eye(1), [[1.0]])
        assert system.alpha == 0.5

    def test_rejects_nonpositive_alpha(self):
        from repro.errors import OperationalMatrixError

        with pytest.raises(OperationalMatrixError):
            FractionalDescriptorSystem(0.0, np.eye(1), -np.eye(1), [[1.0]])

    def test_rejects_x0_for_high_order(self):
        with pytest.raises(ModelError, match="alpha <= 1"):
            FractionalDescriptorSystem(1.5, np.eye(1), -np.eye(1), [[1.0]], x0=[1.0])

    def test_allows_x0_at_or_below_one(self):
        system = FractionalDescriptorSystem(0.8, np.eye(1), -np.eye(1), [[1.0]], x0=[2.0])
        np.testing.assert_allclose(system.x0, [2.0])


class TestMultiTermSystem:
    def test_terms_sorted_descending(self):
        system = MultiTermSystem(
            [(0.0, np.eye(1)), (2.0, np.eye(1)), (0.5, np.eye(1))], [[1.0]]
        )
        assert [a for a, _ in system.terms] == [2.0, 0.5, 0.0]
        assert system.max_order == 2.0

    def test_rejects_duplicate_orders(self):
        with pytest.raises(ModelError, match="distinct"):
            MultiTermSystem([(1.0, np.eye(1)), (1.0, np.eye(1))], [[1.0]])

    def test_rejects_empty_terms(self):
        with pytest.raises(ModelError):
            MultiTermSystem([], [[1.0]])

    def test_rejects_mismatched_term_sizes(self):
        with pytest.raises(ModelError):
            MultiTermSystem([(1.0, np.eye(2)), (0.0, np.eye(3))], np.ones((2, 1)))

    def test_rejects_non_pair_terms(self):
        with pytest.raises(ModelError):
            MultiTermSystem([np.eye(2)], np.ones((2, 1)))

    def test_companion_form_second_order(self):
        msys = SecondOrderSystem([[2.0]], [[0.4]], [[1.0]], [[1.0]])
        first = msys.to_first_order()
        assert first.n_states == 2
        # E = diag(1, M), A = [[0, 1], [-K, -Cd]]
        np.testing.assert_allclose(np.asarray(first.E.todense() if hasattr(first.E, "todense") else first.E), [[1.0, 0.0], [0.0, 2.0]])
        np.testing.assert_allclose(np.asarray(first.A.todense() if hasattr(first.A, "todense") else first.A), [[0.0, 1.0], [-1.0, -0.4]])

    def test_companion_rejects_fractional(self):
        msys = MultiTermSystem([(0.5, np.eye(1)), (0.0, np.eye(1))], [[1.0]])
        with pytest.raises(ModelError, match="integer"):
            msys.to_first_order()

    def test_companion_output_selects_x(self):
        msys = SecondOrderSystem(np.eye(2), np.eye(2), np.eye(2), np.ones((2, 1)))
        first = msys.to_first_order()
        assert first.C.shape == (2, 4)
        np.testing.assert_array_equal(first.C[:, :2], np.eye(2))


class TestSecondOrderSystem:
    def test_accessors(self):
        m, cd, k = 2.0 * np.eye(1), 0.3 * np.eye(1), np.eye(1)
        so = SecondOrderSystem(m, cd, k, [[1.0]])
        np.testing.assert_array_equal(np.asarray(so.M), m)
        np.testing.assert_array_equal(np.asarray(so.Cd), cd)
        np.testing.assert_array_equal(np.asarray(so.K), k)

    def test_repr_mentions_orders(self):
        so = SecondOrderSystem(np.eye(1), np.eye(1), np.eye(1), [[1.0]])
        assert "orders=[2, 1, 0]" in repr(so)

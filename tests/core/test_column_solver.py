"""Tests for the column-by-column OPM equation solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import PencilCache, solve_columns_general, solve_columns_toeplitz
from repro.errors import SolverError
from repro.opmat import (
    differentiation_coefficients,
    differentiation_matrix,
    fractional_differentiation_coefficients,
    fractional_differentiation_matrix,
    upper_toeplitz,
)


def brute_force(E, A, R, D):
    """Dense Kronecker reference for E X D = A X + R."""
    n, m = R.shape
    big = np.kron(D.T, E) - np.kron(np.eye(m), A)
    return np.linalg.solve(big, R.T.reshape(-1)).reshape(m, n).T


@pytest.fixture
def small_system(rng):
    n, m = 4, 9
    E = np.eye(n) + 0.05 * rng.standard_normal((n, n))
    A = -np.eye(n) - 0.3 * rng.standard_normal((n, n))
    R = rng.standard_normal((n, m))
    return E, A, R


class TestToeplitzSolve:
    def test_matches_brute_force_first_order(self, small_system):
        E, A, R = small_system
        m, h = R.shape[1], 0.2
        coeffs = differentiation_coefficients(m, h)
        X, cache = solve_columns_toeplitz(E, A, R, coeffs, alternating_tail=True)
        np.testing.assert_allclose(
            X, brute_force(E, A, R, differentiation_matrix(m, h)), rtol=1e-9
        )
        assert cache.factorisations == 1

    def test_matches_brute_force_fractional(self, small_system):
        E, A, R = small_system
        m, h, alpha = R.shape[1], 0.2, 0.6
        coeffs = fractional_differentiation_coefficients(alpha, m, h)
        X, _ = solve_columns_toeplitz(E, A, R, coeffs)
        np.testing.assert_allclose(
            X,
            brute_force(E, A, R, fractional_differentiation_matrix(alpha, m, h)),
            rtol=1e-9,
        )

    def test_alternating_and_general_paths_agree(self, small_system):
        E, A, R = small_system
        coeffs = differentiation_coefficients(R.shape[1], 0.37)
        X_fast, _ = solve_columns_toeplitz(E, A, R, coeffs, alternating_tail=True)
        X_slow, _ = solve_columns_toeplitz(E, A, R, coeffs, alternating_tail=False)
        np.testing.assert_allclose(X_fast, X_slow, rtol=1e-10)

    def test_sparse_and_dense_agree(self, small_system):
        E, A, R = small_system
        coeffs = differentiation_coefficients(R.shape[1], 0.1)
        X_dense, _ = solve_columns_toeplitz(E, A, R, coeffs)
        X_sparse, _ = solve_columns_toeplitz(
            sp.csr_matrix(E), sp.csr_matrix(A), R, coeffs
        )
        np.testing.assert_allclose(X_dense, X_sparse, rtol=1e-9)

    def test_rejects_non_alternating_with_fast_tail(self, small_system):
        E, A, R = small_system
        coeffs = fractional_differentiation_coefficients(0.5, R.shape[1], 0.1)
        with pytest.raises(SolverError, match="alternat"):
            solve_columns_toeplitz(E, A, R, coeffs, alternating_tail=True)

    def test_rejects_rhs_shape(self, small_system):
        E, A, R = small_system
        with pytest.raises(SolverError):
            solve_columns_toeplitz(E, A, R[:, :3], differentiation_coefficients(9, 0.1))

    def test_singular_pencil_raises(self):
        E = np.zeros((2, 2))
        A = np.zeros((2, 2))
        R = np.ones((2, 3))
        with pytest.raises(SolverError, match="singular"):
            solve_columns_toeplitz(E, A, R, differentiation_coefficients(3, 0.1))

    def test_m_equals_one(self, small_system):
        E, A, _ = small_system
        R = np.ones((4, 1))
        coeffs = differentiation_coefficients(1, 0.5)
        X, _ = solve_columns_toeplitz(E, A, R, coeffs, alternating_tail=True)
        np.testing.assert_allclose(
            X[:, 0], np.linalg.solve(coeffs[0] * E - A, R[:, 0])
        )


class TestGeneralSolve:
    def test_matches_brute_force(self, small_system, rng):
        E, A, R = small_system
        m = R.shape[1]
        D = np.triu(rng.standard_normal((m, m))) + 5.0 * np.eye(m)
        X, _ = solve_columns_general(E, A, R, D)
        np.testing.assert_allclose(X, brute_force(E, A, R, D), rtol=1e-8)

    def test_caches_by_diagonal(self, small_system):
        E, A, R = small_system
        m = R.shape[1]
        diag = np.array([2.0, 3.0, 2.0, 3.0, 2.0, 3.0, 2.0, 3.0, 2.0])
        D = np.diag(diag) + np.triu(np.ones((m, m)), 1)
        _, cache = solve_columns_general(E, A, R, D)
        assert cache.factorisations == 2

    def test_rejects_lower_triangular(self, small_system):
        E, A, R = small_system
        m = R.shape[1]
        D = np.tril(np.ones((m, m)))
        with pytest.raises(SolverError, match="upper triangular"):
            solve_columns_general(E, A, R, D)

    def test_rejects_nonsquare_d(self, small_system):
        E, A, R = small_system
        with pytest.raises(SolverError):
            solve_columns_general(E, A, R, np.ones((3, 9)))


class TestPencilCache:
    def test_reuses_factorisation(self):
        E, A = np.eye(2), -np.eye(2)
        cache = PencilCache(E, A)
        cache.solve(1.0, np.ones(2))
        cache.solve(1.0, np.zeros(2))
        assert cache.factorisations == 1
        cache.solve(2.0, np.ones(2))
        assert cache.factorisations == 2

    def test_solution_correct(self):
        E = np.array([[2.0, 0.0], [0.0, 1.0]])
        A = np.array([[0.0, 1.0], [-1.0, 0.0]])
        cache = PencilCache(E, A)
        rhs = np.array([1.0, 2.0])
        x = cache.solve(3.0, rhs)
        np.testing.assert_allclose((3.0 * E - A) @ x, rhs)

    def test_sparse_mode(self):
        cache = PencilCache(sp.identity(3), -sp.identity(3))
        x = cache.solve(1.0, np.ones(3))
        np.testing.assert_allclose(x, 0.5 * np.ones(3))

"""Tests for the unified simulate() dispatcher."""

import numpy as np
import pytest

from repro.core import SIMULATION_METHODS, simulate
from repro.core.result import SampledResult, SimulationResult
from repro.errors import SolverError


class TestDispatch:
    def test_default_is_opm(self, scalar_ode):
        res = simulate(scalar_ode, 1.0, 5.0, 100)
        assert isinstance(res, SimulationResult)
        assert res.info["method"].startswith("opm")

    @pytest.mark.parametrize("method", ["backward-euler", "trapezoidal", "gear2", "expm"])
    def test_baseline_methods(self, scalar_ode, method):
        res = simulate(scalar_ode, 1.0, 5.0, 200, method=method)
        assert isinstance(res, SampledResult)
        assert abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0))) < 5e-3

    def test_adaptive_needs_no_steps(self, scalar_ode):
        res = simulate(scalar_ode, 1.0, 5.0, method="opm-adaptive", rtol=1e-4)
        assert res.info["method"] == "opm-adaptive"

    def test_fractional_methods(self, scalar_fde):
        from repro.fractional import fde_step_response

        t = np.linspace(0.3, 1.7, 5)
        exact = fde_step_response(0.5, 1.0, t)
        for method in ("opm", "grunwald-letnikov"):
            res = simulate(scalar_fde, 1.0, 2.0, 800, method=method)
            values = res.states(t)[0]
            np.testing.assert_allclose(values, exact, atol=5e-3)

    def test_fft_method(self, scalar_fde):
        res = simulate(
            scalar_fde, lambda t: np.sin(2 * np.pi * t / 4.0), 4.0, 64, method="fft"
        )
        assert res.info["method"] == "fft"

    def test_kron_method(self, scalar_ode):
        fast = simulate(scalar_ode, 1.0, 1.0, 16)
        ref = simulate(scalar_ode, 1.0, 1.0, 16, method="opm-kron")
        np.testing.assert_allclose(fast.coefficients, ref.coefficients, atol=1e-12)

    def test_unknown_method(self, scalar_ode):
        with pytest.raises(SolverError, match="unknown method"):
            simulate(scalar_ode, 1.0, 1.0, 8, method="rk45")

    def test_missing_steps(self, scalar_ode):
        with pytest.raises(SolverError, match="requires steps"):
            simulate(scalar_ode, 1.0, 1.0)

    def test_method_list_complete(self):
        assert set(SIMULATION_METHODS) == {
            "opm",
            "opm-windowed",
            "opm-adaptive",
            "opm-kron",
            "backward-euler",
            "trapezoidal",
            "gear2",
            "fft",
            "grunwald-letnikov",
            "expm",
            "gl",
            "oustaloup",
            "jacobi",
        }


class TestDispatchZooMethods:
    """The fractional method zoo through the one-shot dispatcher."""

    @pytest.mark.parametrize("method,steps,tol", [
        ("gl", 512, 5e-3), ("oustaloup", 512, 5e-2), ("jacobi", 24, 5e-3),
    ])
    def test_zoo_step_response(self, scalar_fde, method, steps, tol):
        from repro.fractional import fde_step_response

        t = np.linspace(0.3, 1.7, 5)
        res = simulate(scalar_fde, 1.0, 2.0, steps, method=method)
        np.testing.assert_allclose(
            res.states(t)[0], fde_step_response(0.5, 1.0, t), atol=tol
        )

    def test_zoo_method_label(self, scalar_fde):
        res = simulate(scalar_fde, 1.0, 1.0, 64, method="gl")
        assert res.info["method"] == "gl[BlockPulse]"

    def test_zoo_honours_basis_override(self, scalar_fde):
        res = simulate(scalar_fde, 1.0, 1.0, 64, method="gl", basis="walsh")
        assert res.info["method"].startswith("gl[Walsh")

    def test_zoo_typo_suggests(self, scalar_fde):
        with pytest.raises(SolverError, match="did you mean 'jacobi'"):
            simulate(scalar_fde, 1.0, 1.0, 16, method="jacobii")


class TestDispatchErrors:
    """Error paths of simulate(): bad methods, bad method/system pairs."""

    def test_unknown_method_suggests_closest(self, scalar_ode):
        with pytest.raises(SolverError, match="did you mean 'opm'"):
            simulate(scalar_ode, 1.0, 1.0, 8, method="opn")

    def test_unknown_method_without_suggestion(self, scalar_ode):
        with pytest.raises(SolverError, match="unknown method 'xyzzy'"):
            simulate(scalar_ode, 1.0, 1.0, 8, method="xyzzy")

    @pytest.mark.parametrize(
        "method", ["backward-euler", "trapezoidal", "gear2", "expm"]
    )
    def test_fractional_alpha_rejected_by_classical_schemes(self, scalar_fde, method):
        with pytest.raises(SolverError, match="first-order"):
            simulate(scalar_fde, 1.0, 1.0, 16, method=method)

    @pytest.mark.parametrize(
        "method",
        ["opm", "opm-kron", "backward-euler", "trapezoidal", "gear2", "fft",
         "grunwald-letnikov", "expm"],
    )
    def test_every_stepped_method_requires_steps(self, scalar_ode, method):
        with pytest.raises(SolverError, match="requires steps"):
            simulate(scalar_ode, 1.0, 1.0, method=method)

    def test_fractional_still_allowed_where_supported(self, scalar_fde):
        for method in ("opm", "fft", "grunwald-letnikov"):
            res = simulate(scalar_fde, 1.0, 1.0, 64, method=method)
            assert res is not None


class TestThirdOrder:
    def test_third_order_direct_vs_companion(self):
        """Integer order 3: direct multi-term OPM vs companion DAE."""
        from repro.core import MultiTermSystem

        # x''' + 2 x'' + 2 x' + x = u  (stable: roots -1, -0.5 +- j0.866)
        msys = MultiTermSystem(
            [(3.0, np.eye(1)), (2.0, 2 * np.eye(1)), (1.0, 2 * np.eye(1)), (0.0, np.eye(1))],
            [[1.0]],
        )
        direct = simulate(msys, 1.0, 15.0, 1500)
        companion = simulate(msys.to_first_order(), 1.0, 15.0, 1500)
        t = direct.grid.midpoints[::50]
        np.testing.assert_allclose(
            direct.states_smooth(t)[0],
            companion.outputs_smooth(t)[0],
            atol=2e-3,
        )
        # DC gain = 1
        assert direct.coefficients[0, -1] == pytest.approx(1.0, abs=2e-2)


class TestBasisArgument:
    def test_opm_with_spectral_basis(self, scalar_ode):
        res = simulate(scalar_ode, 1.0, 2.0, 24, basis="chebyshev")
        t = np.linspace(0.1, 1.9, 9)
        np.testing.assert_allclose(
            res.states(t)[0], 1.0 - np.exp(-t), atol=1e-9
        )
        assert res.info["method"] == "opm-spectral[Chebyshev]"

    def test_windowed_with_spectral_basis(self, scalar_ode):
        res = simulate(
            scalar_ode, 1.0, 4.0, 64, method="opm-windowed", windows=4,
            basis="legendre",
        )
        assert res.n_windows == 4
        t = np.linspace(0.2, 3.8, 9)
        np.testing.assert_allclose(
            res.states_smooth(t)[0], 1.0 - np.exp(-t), atol=1e-8
        )

    def test_basis_typo_suggests(self, scalar_ode):
        from repro.errors import BasisError

        with pytest.raises(BasisError, match="did you mean 'legendre'"):
            simulate(scalar_ode, 1.0, 1.0, 16, basis="legendr")

    def test_basis_rejected_for_baselines(self, scalar_ode):
        with pytest.raises(SolverError, match="does not take a basis"):
            simulate(scalar_ode, 1.0, 1.0, 100, method="trapezoidal", basis="legendre")

    def test_basis_instance_accepted(self, scalar_ode):
        from repro.basis import LegendreBasis

        res = simulate(scalar_ode, 1.0, 2.0, 16, basis=LegendreBasis(2.0, 16))
        assert res.basis.name == "Legendre"

    def test_default_is_block_pulse(self, scalar_ode):
        res = simulate(scalar_ode, 1.0, 1.0, 64)
        assert res.basis.name == "BlockPulse"

"""Tests for the adaptive-step OPM controller (paper section III-B)."""

import numpy as np
import pytest

from repro.basis import TimeGrid
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    equidistributed_steps,
    simulate_opm,
    simulate_opm_adaptive,
)
from repro.errors import ModelError, SolverError


class TestController:
    def test_accuracy_tracks_tolerance(self, scalar_ode):
        res = simulate_opm_adaptive(scalar_ode, 1.0, 5.0, rtol=1e-5)
        t = res.grid.midpoints
        err = np.max(np.abs(res.states(t)[0] - (1.0 - np.exp(-t))))
        assert err < 1e-3  # global error a modest multiple of local tol

    def test_tighter_tolerance_more_steps(self, scalar_ode):
        loose = simulate_opm_adaptive(scalar_ode, 1.0, 5.0, rtol=1e-3)
        tight = simulate_opm_adaptive(scalar_ode, 1.0, 5.0, rtol=1e-6)
        assert tight.m > loose.m

    def test_stiff_transient_concentrates_steps(self):
        # fast pole 100, slow pole 0.5: early steps must be much smaller
        E = np.eye(2)
        A = np.diag([-100.0, -0.5])
        B = np.array([[1.0], [1.0]])
        system = DescriptorSystem(E, A, B)
        res = simulate_opm_adaptive(system, 1.0, 10.0, rtol=1e-4)
        steps = res.grid.steps
        early = steps[: res.m // 10].mean()
        late = steps[-res.m // 10 :].mean()
        assert late > 5.0 * early

    def test_matches_fixed_grid_on_same_steps(self, scalar_ode):
        res = simulate_opm_adaptive(scalar_ode, 1.0, 5.0, rtol=1e-4)
        fixed = simulate_opm(scalar_ode, 1.0, res.grid)
        np.testing.assert_allclose(res.coefficients, fixed.coefficients, atol=1e-10)

    def test_grid_covers_horizon_exactly(self, scalar_ode):
        res = simulate_opm_adaptive(scalar_ode, 1.0, 3.7, rtol=1e-4)
        assert abs(res.grid.t_end - 3.7) < 1e-12

    def test_factorisation_ladder_is_small(self, scalar_ode):
        res = simulate_opm_adaptive(scalar_ode, 1.0, 5.0, rtol=1e-5)
        # halving/doubling ladder: factorisation count stays tiny even
        # for hundreds of accepted steps
        assert res.info["factorisations"] < 25
        assert res.info["accepted"] == res.m

    def test_callable_vector_input(self):
        system = DescriptorSystem(np.eye(2), -np.eye(2), np.eye(2))
        res = simulate_opm_adaptive(
            system, lambda t: np.vstack([np.sin(t), np.cos(t)]), 2.0, rtol=1e-4
        )
        assert res.coefficients.shape[0] == 2

    def test_x0_supported(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[2.0])
        res = simulate_opm_adaptive(system, 0.0, 3.0, rtol=1e-5)
        t = res.grid.midpoints
        np.testing.assert_allclose(res.states(t)[0], 2.0 * np.exp(-t), atol=1e-3)

    def test_rejects_fractional(self, scalar_fde):
        with pytest.raises(SolverError, match="first-order"):
            simulate_opm_adaptive(scalar_fde, 1.0, 1.0)

    def test_rejects_array_input(self, scalar_ode):
        with pytest.raises(ModelError):
            simulate_opm_adaptive(scalar_ode, np.ones(10), 1.0)

    def test_rejects_wrong_system(self):
        with pytest.raises(TypeError):
            simulate_opm_adaptive("not a system", 1.0, 1.0)


class TestEquidistributedSteps:
    def test_steps_sum_to_horizon(self, scalar_fde):
        pilot = simulate_opm(scalar_fde, 1.0, (2.0, 64))
        steps = equidistributed_steps(pilot, 32)
        assert abs(steps.sum() - 2.0) < 1e-9

    def test_steps_pairwise_distinct(self, scalar_fde):
        pilot = simulate_opm(scalar_fde, 1.0, (2.0, 64))
        steps = equidistributed_steps(pilot, 32)
        assert np.unique(steps).size == 32

    def test_concentrates_where_solution_moves(self, scalar_ode):
        # step response moves fastest near t=0
        pilot = simulate_opm(scalar_ode, 1.0, (10.0, 256))
        steps = equidistributed_steps(pilot, 40)
        assert steps[:10].mean() < steps[-10:].mean()

    def test_fractional_adaptive_pipeline(self, scalar_fde):
        from repro.fractional import fde_step_response

        pilot = simulate_opm(scalar_fde, 1.0, (2.0, 64))
        steps = equidistributed_steps(pilot, 48)
        res = simulate_opm(scalar_fde, 1.0, TimeGrid.from_steps(steps))
        t = np.linspace(0.3, 1.9, 8)
        np.testing.assert_allclose(
            res.states(t)[0], fde_step_response(0.5, 1.0, t), atol=4e-2
        )

    def test_rejects_tiny_m(self, scalar_ode):
        pilot = simulate_opm(scalar_ode, 1.0, (1.0, 16))
        with pytest.raises(ValueError):
            equidistributed_steps(pilot, 1)

"""Tests for Krylov model-order reduction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import dc_gain, sample_outputs, transfer_function
from repro.baselines import simulate_transient
from repro.circuits import Constant, assemble_mna, rc_ladder_netlist
from repro.core import DescriptorSystem, krylov_reduce, simulate_opm
from repro.errors import SolverError


def chain(n: int, n_out: int = 1) -> DescriptorSystem:
    A = sp.diags(
        [np.ones(n - 1), -2.0 * np.ones(n), np.ones(n - 1)], [-1, 0, 1], format="csc"
    )
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    C = np.zeros((n_out, n))
    C[:, :n_out] = np.eye(n_out)
    return DescriptorSystem(sp.identity(n), A, B, C=C)


class TestMomentMatching:
    def test_dc_gain_preserved(self):
        full = chain(80)
        red = krylov_reduce(full, 4)
        assert red.n_states <= 4
        np.testing.assert_allclose(dc_gain(red), dc_gain(full), rtol=1e-9)

    def test_transfer_function_near_expansion_point(self):
        full = chain(60)
        red = krylov_reduce(full, 8, expansion_point=1.0)
        for s in (0.5, 1.0, 2.0, 1.0 + 0.5j):
            h_full = transfer_function(full, s)[0, 0]
            h_red = transfer_function(red, s)[0, 0]
            assert h_red == pytest.approx(h_full, rel=1e-6)

    def test_accuracy_improves_with_moments(self):
        full = chain(60)
        s_test = 3.0  # away from the expansion point
        h_full = transfer_function(full, s_test)[0, 0]
        errs = []
        for q in (2, 4, 8):
            red = krylov_reduce(full, q, expansion_point=0.5)
            errs.append(abs(transfer_function(red, s_test)[0, 0] - h_full))
        assert errs[2] < errs[1] < errs[0]

    def test_deflation_stops_cleanly(self):
        # a 3-state reachable subspace: more moments cannot grow the basis
        A = np.diag([-1.0, -2.0, -3.0, -4.0])
        B = np.array([[1.0], [1.0], [1.0], [0.0]])  # state 4 unreachable
        full = DescriptorSystem(np.eye(4), A, B)
        red = krylov_reduce(full, 10)
        assert red.n_states == 3


class TestReducedSimulation:
    def test_waveform_matches_full_model(self):
        nl = rc_ladder_netlist(40, r=1.0, c=1e-3, drive_waveform=Constant(1.0))
        full = assemble_mna(nl, outputs=["v40"])
        red = krylov_reduce(full, 15, expansion_point=10.0)
        assert red.n_states <= 15 < full.n_states
        r_full = simulate_opm(full, nl.input_function(), (2.0, 500))
        r_red = simulate_opm(red, nl.input_function(), (2.0, 500))
        t = r_full.grid.midpoints
        y_full = r_full.outputs(t)[0]
        y_red = r_red.outputs(t)[0]
        scale = max(np.max(np.abs(y_full)), 1e-12)
        np.testing.assert_allclose(y_red, y_full, atol=1e-4 * scale)

    def test_identity_output_reconstruction(self):
        full = chain(30)
        full_states = DescriptorSystem(full.E, full.A, full.B)  # C = identity
        red = krylov_reduce(full_states, 8, expansion_point=1.0)
        assert red.n_outputs == 30  # reconstructs x ~= V x_r
        r_full = simulate_opm(full_states, 1.0, (5.0, 200))
        r_red = simulate_opm(red, 1.0, (5.0, 200))
        t = r_full.grid.midpoints[::20]
        np.testing.assert_allclose(
            r_red.outputs(t), r_full.states(t), atol=2e-3
        )

    def test_reduction_speeds_up_repeated_simulation(self):
        from repro.experiments import table2_workload

        bundle = table2_workload(8, 8, 3)
        full = bundle["mna"]
        red = krylov_reduce(full, 12, expansion_point=1e9)
        assert red.n_states <= 12
        r_full = simulate_opm(full, bundle["u"], (1e-9, 200))
        r_red = simulate_opm(red, bundle["u"], (1e-9, 200))
        t = r_full.grid.midpoints
        y_full = sample_outputs(r_full, t)
        y_red = sample_outputs(r_red, t)
        scale = max(np.max(np.abs(y_full)), 1e-15)
        np.testing.assert_allclose(y_red, y_full, atol=0.02 * scale)

    def test_reduced_model_works_with_baselines(self):
        full = chain(50)
        red = krylov_reduce(full, 6, expansion_point=1.0)
        res = simulate_transient(red, 1.0, 2.0, 200)
        assert res.state_values.shape[1] == 201


class TestValidation:
    def test_rejects_fractional(self, scalar_fde):
        with pytest.raises(SolverError, match="first-order"):
            krylov_reduce(scalar_fde, 4)

    def test_rejects_singular_expansion(self):
        # A singular at DC: s0=0 pencil is singular
        full = DescriptorSystem(np.eye(2), np.zeros((2, 2)), np.ones((2, 1)))
        with pytest.raises(SolverError, match="singular"):
            krylov_reduce(full, 2, expansion_point=0.0)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            krylov_reduce("sys", 4)

    def test_dense_and_sparse_agree(self):
        sparse_sys = chain(40)
        dense_sys = DescriptorSystem(
            np.eye(40), sparse_sys.A.toarray(), sparse_sys.B, C=sparse_sys.C
        )
        rs = krylov_reduce(sparse_sys, 5, expansion_point=1.0)
        rd = krylov_reduce(dense_sys, 5, expansion_point=1.0)
        for s in (0.5, 2.0):
            np.testing.assert_allclose(
                transfer_function(rs, s), transfer_function(rd, s), rtol=1e-8
            )

"""Tests for the multi-term / high-order OPM solver (paper section IV)."""

import numpy as np
import pytest

from repro.basis import TimeGrid
from repro.core import (
    MultiTermSystem,
    SecondOrderSystem,
    simulate_multiterm,
    simulate_opm,
)
from repro.errors import SolverError
from repro.fractional import second_order_step_response


class TestSecondOrder:
    def test_damped_oscillator_step_response(self):
        # x'' + 2 zeta wn x' + wn^2 x = wn^2 u
        wn, zeta = 2.0, 0.15
        system = SecondOrderSystem(
            [[1.0]], [[2.0 * zeta * wn]], [[wn**2]], [[wn**2]]
        )
        res = simulate_opm(system, 1.0, (15.0, 3000))
        # compare at grid midpoints, where the piecewise-constant
        # expansion represents the trajectory (avoids the O(h) cell-edge
        # sampling offset)
        t = res.grid.midpoints[::100]
        np.testing.assert_allclose(
            res.states(t)[0], second_order_step_response(wn, zeta, t), atol=3e-4
        )

    def test_direct_vs_companion_linearisation(self):
        system = SecondOrderSystem([[1.0]], [[0.4]], [[1.5]], [[1.0]])
        direct = simulate_opm(system, 1.0, (10.0, 1000))
        companion = simulate_opm(system.to_first_order(), 1.0, (10.0, 1000))
        t = np.linspace(0.2, 9.8, 17)
        np.testing.assert_allclose(
            direct.states(t)[0], companion.outputs(t)[0], atol=1e-4
        )

    def test_second_order_convergence(self):
        wn, zeta = 1.0, 0.3
        system = SecondOrderSystem([[1.0]], [[2 * zeta * wn]], [[wn**2]], [[wn**2]])
        t = np.linspace(1.0, 9.0, 9)
        exact = second_order_step_response(wn, zeta, t)
        errs = [
            np.max(np.abs(simulate_opm(system, 1.0, (10.0, m)).states(t)[0] - exact))
            for m in (250, 500, 1000)
        ]
        assert errs[2] < errs[1] < errs[0]


class TestMixedOrders:
    def test_fractional_oscillator_runs_and_settles(self):
        # x'' + 0.6 d^{1/2} x + x = u (Bagley-Torvik-style damping)
        system = MultiTermSystem(
            [(2.0, np.eye(1)), (0.5, 0.6 * np.eye(1)), (0.0, np.eye(1))], [[1.0]]
        )
        res = simulate_opm(system, 1.0, (40.0, 2000))
        x = res.coefficients[0]
        assert np.max(x) > 1.1  # rings
        # fractional damping settles with an algebraic (t^{-alpha}) tail,
        # so only loose settling can be asserted at finite horizon
        assert abs(x[-1] - 1.0) < 0.1

    def test_algebraic_only_system(self):
        # 0-order term only: pure algebraic solve K x = B u
        system = MultiTermSystem([(0.0, 2.0 * np.eye(1))], [[1.0]])
        res = simulate_opm(system, 1.0, (1.0, 8))
        np.testing.assert_allclose(res.coefficients, np.full((1, 8), 0.5))

    def test_first_order_term_only_matches_descriptor(self, scalar_ode):
        system = MultiTermSystem([(1.0, np.eye(1)), (0.0, np.eye(1))], [[1.0]])
        res_mt = simulate_opm(system, 1.0, (5.0, 100))
        res_ds = simulate_opm(scalar_ode, 1.0, (5.0, 100))
        np.testing.assert_allclose(res_mt.coefficients, res_ds.coefficients, atol=1e-10)


class TestValidation:
    def test_rejects_adaptive_grid(self):
        system = SecondOrderSystem([[1.0]], [[0.1]], [[1.0]], [[1.0]])
        with pytest.raises(SolverError, match="uniform"):
            simulate_multiterm(system, 1.0, TimeGrid.from_steps([0.1, 0.2]))

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            simulate_multiterm(np.eye(2), 1.0, (1.0, 8))

    def test_info_records_orders(self):
        system = SecondOrderSystem([[1.0]], [[0.1]], [[1.0]], [[1.0]])
        res = simulate_multiterm(system, 1.0, (1.0, 8))
        assert res.info["orders"] == [2.0, 1.0, 0.0]
        assert res.info["method"] == "opm-multiterm"
        assert res.info["factorisations"] == 1

"""Tests for result containers."""

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, TimeGrid, WalshBasis
from repro.core import DescriptorSystem, SimulationResult
from repro.core.result import SampledResult


@pytest.fixture
def system():
    return DescriptorSystem(
        np.eye(2), -np.eye(2), np.ones((2, 1)),
        C=np.array([[1.0, -1.0]]), D=np.array([[0.5]]),
    )


@pytest.fixture
def result(system):
    basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
    X = np.array([[1.0, 2.0, 3.0, 4.0], [0.0, 1.0, 1.0, 2.0]])
    U = np.ones((1, 4))
    return SimulationResult(basis, X, system, U)


class TestSimulationResult:
    def test_states_piecewise_constant(self, result):
        np.testing.assert_allclose(result.states([0.1, 0.6])[0], [1.0, 3.0])

    def test_outputs_apply_c_and_d(self, result):
        # y = x1 - x2 + 0.5 u
        np.testing.assert_allclose(result.outputs([0.1])[0], [1.0 + 0.5])

    def test_inputs_sampled(self, result):
        np.testing.assert_allclose(result.inputs([0.3])[0], [1.0])

    def test_grid_exposed_for_bpf(self, result):
        assert result.grid is not None and result.grid.m == 4

    def test_grid_none_for_other_bases(self, system):
        basis = WalshBasis(1.0, 4)
        res = SimulationResult(basis, np.zeros((2, 4)), system, np.zeros((1, 4)))
        assert res.grid is None

    def test_sample_times_default_midpoints(self, result):
        np.testing.assert_allclose(result.sample_times(), [0.125, 0.375, 0.625, 0.875])

    def test_sample_times_custom_count(self, result):
        times = result.sample_times(10)
        assert times.size == 10 and times[0] > 0.0 and times[-1] < 1.0

    def test_shape_validation(self, system):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
        with pytest.raises(ValueError):
            SimulationResult(basis, np.zeros((2, 5)), system, np.zeros((1, 4)))
        with pytest.raises(ValueError):
            SimulationResult(basis, np.zeros((2, 4)), system, np.zeros((1, 5)))

    def test_repr(self, result):
        assert "SimulationResult" in repr(result) and "m=4" in repr(result)


class TestSampledResult:
    def test_linear_interpolation(self, system):
        times = np.array([0.0, 1.0, 2.0])
        states = np.array([[0.0, 2.0, 4.0], [1.0, 1.0, 1.0]])
        res = SampledResult(times, states, system, input_values=np.ones((1, 3)))
        np.testing.assert_allclose(res.states([0.5, 1.5])[0], [1.0, 3.0])

    def test_outputs_with_feedthrough(self, system):
        times = np.array([0.0, 1.0])
        states = np.array([[1.0, 2.0], [0.0, 0.0]])
        res = SampledResult(times, states, system, input_values=np.ones((1, 2)))
        np.testing.assert_allclose(res.output_values[0], [1.5, 2.5])

    def test_outputs_without_inputs_raises_for_feedthrough(self, system):
        res = SampledResult([0.0, 1.0], np.zeros((2, 2)), system)
        with pytest.raises(ValueError, match="feedthrough"):
            _ = res.output_values

    def test_identity_outputs_without_inputs_ok(self):
        plain = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)))
        res = SampledResult([0.0, 1.0], np.arange(4.0).reshape(2, 2), plain)
        np.testing.assert_array_equal(res.output_values, res.state_values)

    def test_shape_validation(self, system):
        with pytest.raises(ValueError):
            SampledResult([0.0, 1.0], np.zeros((2, 3)), system)

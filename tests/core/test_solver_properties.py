"""Property-based solver validation against the matrix exponential.

Random stable ODE systems: OPM must converge to the expm reference
under refinement and satisfy structural invariants (linearity in the
input, time-invariance of autonomous decay).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import simulate_expm
from repro.core import DescriptorSystem, simulate_opm


def stable_system(seed: int, n: int) -> DescriptorSystem:
    rng = np.random.default_rng(seed)
    # symmetric negative-definite A: guaranteed stable, well-conditioned
    raw = rng.standard_normal((n, n))
    A = -(raw @ raw.T) - np.eye(n)
    B = rng.standard_normal((n, 1))
    return DescriptorSystem(np.eye(n), A, B)


@given(seed=st.integers(0, 2**31), n=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_opm_tracks_expm(seed, n):
    system = stable_system(seed, n)
    opm = simulate_opm(system, 1.0, (1.0, 400))
    ref = simulate_expm(system, 1.0, 1.0, 400)
    t = opm.grid.midpoints[::40]
    scale = float(np.max(np.abs(ref.states(ref.times)))) + 1e-12
    np.testing.assert_allclose(
        opm.states_smooth(t), ref.states(t), atol=5e-4 * scale
    )


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 4),
    a=st.floats(-3.0, 3.0),
    b=st.floats(-3.0, 3.0),
)
@settings(max_examples=25, deadline=None)
def test_linearity_in_input(seed, n, a, b):
    """response(a*u1 + b*u2) = a*response(u1) + b*response(u2)."""
    system = stable_system(seed, n)
    grid = (1.0, 32)
    u1 = lambda t: np.sin(3.0 * t)
    u2 = lambda t: np.exp(-t)
    r1 = simulate_opm(system, u1, grid).coefficients
    r2 = simulate_opm(system, u2, grid).coefficients
    combined = simulate_opm(
        system, lambda t: a * u1(t) + b * u2(t), grid
    ).coefficients
    scale = float(np.max(np.abs(combined))) + 1.0
    np.testing.assert_allclose(combined, a * r1 + b * r2, atol=1e-10 * scale)


@given(seed=st.integers(0, 2**31), n=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_autonomous_decay_monotone_energy(seed, n):
    """With A symmetric negative definite, ||x|| decays monotonically."""
    system = stable_system(seed, n)
    system = DescriptorSystem(system.E, system.A, system.B, x0=np.ones(n))
    res = simulate_opm(system, 0.0, (1.0, 200))
    norms = np.linalg.norm(res.coefficients, axis=0)
    assert np.all(np.diff(norms) <= 1e-9 * (norms[0] + 1.0))


@given(seed=st.integers(0, 2**31), n=st.integers(1, 4), m=st.integers(2, 40))
@settings(max_examples=25, deadline=None)
def test_zero_input_zero_ic_stays_zero(seed, n, m):
    system = stable_system(seed, n)
    res = simulate_opm(system, 0.0, (1.0, m))
    np.testing.assert_array_equal(res.coefficients, np.zeros((n, m)))


@given(seed=st.integers(0, 2**31), alpha=st.floats(0.2, 1.8))
@settings(max_examples=20, deadline=None)
def test_fractional_dc_gain_reached(seed, alpha):
    """Stable scalar FDE step response approaches the DC gain b/|a|.

    The fractional tail decays algebraically,
    ``|x(t) - x_inf| ~ x_inf / (|a| t^alpha Gamma(1-alpha))``, so the
    admissible band is alpha-dependent (tiny alpha settles very
    slowly).
    """
    from scipy.special import rgamma

    from repro.core import FractionalDescriptorSystem

    rng = np.random.default_rng(seed)
    a = -float(rng.uniform(0.5, 3.0))
    b = float(rng.uniform(0.5, 3.0))
    system = FractionalDescriptorSystem(alpha, [[1.0]], [[a]], [[b]])
    t_end = 200.0
    res = simulate_opm(system, 1.0, (t_end, 600))
    final = res.coefficients[0, -1]
    gain = b / abs(a)
    tail_bound = 3.0 * gain * abs(rgamma(1.0 - alpha)) / (abs(a) * t_end**alpha)
    assert abs(final - gain) < tail_bound + 0.05 * gain

"""Direct checks of the paper's quantitative claims and printed artifacts.

Each test cites the paper location it verifies.  These are the tests a
referee would run: the printed matrices, the claimed complexity
behaviour, the claimed accuracy relationships, and the evaluation
orderings of Tables I and II.
"""

import numpy as np
import pytest

from repro.analysis import average_relative_error_db, relative_error_db, sample_outputs
from repro.baselines import simulate_fft, simulate_transient
from repro.circuits import RaisedCosinePulse, fractional_line_model, power_grid_models
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    simulate_opm,
)
from repro.opmat import (
    differentiation_matrix,
    fractional_differentiation_matrix,
    integration_matrix,
    shift_matrix,
)


class TestPrintedArtifacts:
    def test_eq4_integral_matrix(self):
        """Paper eq. (4): H has h/2 diagonal and h above."""
        H = integration_matrix(4, 0.6)
        assert H[0, 0] == pytest.approx(0.3)
        assert H[0, 1] == H[0, 3] == pytest.approx(0.6)
        assert H[2, 1] == 0.0

    def test_eq5_closed_form(self):
        """Paper eq. (5): H = h(I/2 + Q + ... + Q^{m-1})."""
        m, h = 5, 0.2
        Q = shift_matrix(m)
        acc = 0.5 * np.eye(m)
        for k in range(1, m):
            acc += np.linalg.matrix_power(Q, k)
        np.testing.assert_allclose(integration_matrix(m, h), h * acc)

    def test_eq7_differential_matrix(self):
        """Paper eq. (7): D = (2/h)(I-Q)(I+Q)^{-1}."""
        m, h = 5, 0.4
        Q = shift_matrix(m)
        expected = (2.0 / h) * (np.eye(m) - Q) @ np.linalg.inv(np.eye(m) + Q)
        np.testing.assert_allclose(differentiation_matrix(m, h), expected)

    def test_eq23_eq24_order_three_halves(self):
        """Paper eqs. (23)-(24): rho_{3/2,4} = (2/h)^{3/2}(1,-3,9/2,-11/2)."""
        h = 1.0
        D = fractional_differentiation_matrix(1.5, 4, h)
        expected = (2.0) ** 1.5 * np.array(
            [
                [1.0, -3.0, 4.5, -5.5],
                [0.0, 1.0, -3.0, 4.5],
                [0.0, 0.0, 1.0, -3.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        np.testing.assert_allclose(D, expected)

    def test_below_eq24_erratum(self):
        """The text claims (D^{3/2})^2 = D^2; the truncated-ring algebra
        gives (D^{3/2})^2 = D^3 (semigroup).  Verify both directions."""
        m, h = 4, 1.0
        D = differentiation_matrix(m, h)
        D32 = fractional_differentiation_matrix(1.5, m, h)
        square = D32 @ D32
        np.testing.assert_allclose(square, np.linalg.matrix_power(D, 3))
        assert not np.allclose(square, np.linalg.matrix_power(D, 2))

    def test_eq19_model_shape_section5a(self):
        """Section V-A: 7 states, 2 inputs, 2 outputs, alpha = 1/2."""
        model = fractional_line_model()
        assert isinstance(model, FractionalDescriptorSystem)
        assert (model.n_states, model.n_inputs, model.n_outputs) == (7, 2, 2)
        assert model.alpha == 0.5


class TestStructuralEquivalence:
    """OPM-BPF *is* the trapezoidal rule up to input quadrature.

    The paper claims OPM "has roughly the same performance as advanced
    transient analysis methods (such as trapezoidal ...)"; for the
    block-pulse basis the relationship is in fact algebraic: the OPM
    cell averages equal the midpoint averages of the trapezoidal node
    sequence exactly whenever the input's cell average equals its
    endpoint average (e.g. piecewise-linear inputs).  These tests pin
    that equivalence -- the deepest form of the accuracy-parity claim.
    """

    def test_opm_equals_trapezoidal_on_ramp_input(self):
        from repro.circuits import Ramp, assemble_mna, rlc_ladder_netlist

        nl = rlc_ladder_netlist(4, r=1.0, l=1e-4, c=1e-3,
                                drive_waveform=Ramp(1.0, rise=5e-3))
        mna = assemble_mna(nl, outputs=["v4"])
        m = 400
        opm = simulate_opm(mna, nl.input_function(), (0.05, m))
        trap = simulate_transient(mna, nl.input_function(), 0.05, m)
        t = opm.grid.midpoints
        np.testing.assert_allclose(
            sample_outputs(opm, t), sample_outputs(trap, t), atol=1e-12
        )

    def test_na_opm_equals_mna_trapezoidal(self):
        # the NA route differentiates the input; projecting du onto cell
        # averages yields exactly the endpoint differences trapezoidal
        # uses, so OPM(NA, du) == trapezoidal(MNA, u) for ANY input
        from repro.circuits import (
            RaisedCosinePulse,
            assemble_mna,
            assemble_na,
            rlc_ladder_netlist,
        )

        nl = rlc_ladder_netlist(
            3, r=1.0, l=1e-4, c=1e-3,
            drive_waveform=RaisedCosinePulse(level=1.0, width=2e-2),
        )
        mna = assemble_mna(nl, outputs=["v3"])
        na = assemble_na(nl, outputs=["v3"])
        m = 300
        opm_na = simulate_opm(na, nl.input_function(derivative=True), (0.05, m))
        trap = simulate_transient(mna, nl.input_function(), 0.05, m)
        t = opm_na.grid.midpoints
        scale = float(np.max(np.abs(sample_outputs(trap, t))))
        np.testing.assert_allclose(
            sample_outputs(opm_na, t),
            sample_outputs(trap, t),
            atol=1e-9 * max(scale, 1.0),
        )


class TestComplexityClaims:
    def test_single_factorisation_first_order(self):
        """Section III: constant step -> one pencil factorisation,
        matching trapezoidal/Gear cost structure."""
        bundle = power_grid_models(4, 4, 2, via_pitch=2)
        res = simulate_opm(bundle["mna"], bundle["u"], (1e-9, 100))
        assert res.info["factorisations"] == 1

    def test_fractional_pays_history_term(self):
        """Section IV: fractional OPM costs O(n^beta m + n m^2); the
        first-order path avoids the n m^2 history accumulation entirely.
        Same system, same grid -- only the order differs."""
        import scipy.sparse as sp

        n, m = 400, 1200
        main = -2.0 * np.ones(n)
        off = np.ones(n - 1)
        A = sp.diags([off, main, off], [-1, 0, 1], format="csr")
        E = sp.identity(n, format="csr")
        B = np.zeros((n, 1))
        B[0, 0] = 1.0
        first = simulate_opm(DescriptorSystem(E, A, B), 1.0, (1.0, m))
        frac = simulate_opm(FractionalDescriptorSystem(0.5, E, A, B), 1.0, (1.0, m))
        assert frac.wall_time > 2.0 * first.wall_time

    def test_first_order_runtime_roughly_linear_in_m(self):
        """Section IV: alpha = 1 avoids the m^2 term entirely."""
        bundle = power_grid_models(6, 6, 3, via_pitch=2)
        times = {}
        for m in (200, 800):
            res = simulate_opm(bundle["mna"], bundle["u"], (1e-9, m))
            times[m] = res.wall_time
        # allow generous constant-factor noise; must stay well below
        # quadratic growth (16x)
        assert times[800] < 8.0 * times[200]


class TestTableIShape:
    """Table I: FFT-2 closer to OPM than FFT-1; OPM competitive in time."""

    @pytest.fixture(scope="class")
    def table1(self):
        from repro.experiments import table1_workload

        wl = table1_workload()
        opm = simulate_opm(wl["model"], wl["u"], (wl["t_end"], wl["m"]))
        fft1 = simulate_fft(wl["model"], wl["u"], wl["t_end"], wl["fft_points"][0])
        fft2 = simulate_fft(wl["model"], wl["u"], wl["t_end"], wl["fft_points"][1])
        t = wl["sample_times"]
        return {
            "y_opm": sample_outputs(opm, t),
            "y_fft1": sample_outputs(fft1, t),
            "y_fft2": sample_outputs(fft2, t),
        }

    def test_fft2_closer_than_fft1(self, table1):
        err1 = relative_error_db(table1["y_opm"], table1["y_fft1"])
        err2 = relative_error_db(table1["y_opm"], table1["y_fft2"])
        # same direction as the paper's -29.2 vs -46.5 dB; the magnitude
        # of the split depends on the unpublished line model (see
        # EXPERIMENTS.md)
        assert err2 < err1 - 2.0

    def test_errors_in_reasonable_band(self, table1):
        err1 = relative_error_db(table1["y_opm"], table1["y_fft1"])
        err2 = relative_error_db(table1["y_opm"], table1["y_fft2"])
        assert -45.0 < err1 < -8.0
        assert -75.0 < err2 < -12.0

    def test_fft_cost_scales_with_samples(self):
        # Table I's CPU-time column: the FFT method pays one complex
        # solve per (half-spectrum) frequency sample, OPM m real solves
        # with one factorisation; assert the structural counts
        from repro.experiments import table1_workload

        wl = table1_workload()
        opm = simulate_opm(wl["model"], wl["u"], (wl["t_end"], wl["m"]))
        fft1 = simulate_fft(wl["model"], wl["u"], wl["t_end"], 8)
        fft2 = simulate_fft(wl["model"], wl["u"], wl["t_end"], 100)
        assert opm.info["factorisations"] == 1
        assert fft1.info["complex_solves"] == 5
        assert fft2.info["complex_solves"] == 51


class TestTableIIShape:
    """Table II orderings: b-Euler improves with smaller h but stays far
    from trapezoidal/Gear at equal step; OPM is the reference."""

    @pytest.fixture(scope="class")
    def grid_runs(self):
        from repro.experiments import table2_workload

        bundle = table2_workload()
        opm = simulate_opm(bundle["mna"], bundle["u"], (bundle["t_end"], bundle["base_steps"]))
        t = bundle["sample_times"]
        y_ref = sample_outputs(opm, t)
        return {"opm": opm, "t": t, "y_ref": y_ref, "bundle": bundle}

    def _err(self, runs, method, steps):
        res = simulate_transient(
            runs["bundle"]["mna"],
            runs["bundle"]["u"],
            runs["bundle"]["t_end"],
            steps,
            method=method,
        )
        return average_relative_error_db(runs["y_ref"], sample_outputs(res, runs["t"]))

    def test_beuler_improves_with_step(self, grid_runs):
        e10 = self._err(grid_runs, "backward-euler", 100)
        e5 = self._err(grid_runs, "backward-euler", 200)
        e1 = self._err(grid_runs, "backward-euler", 1000)
        assert e1 < e5 < e10  # monotone improvement in dB, as in Table II

    def test_trap_and_gear_beat_beuler_at_same_step(self, grid_runs):
        e_be = self._err(grid_runs, "backward-euler", 100)
        e_tr = self._err(grid_runs, "trapezoidal", 100)
        e_ge = self._err(grid_runs, "gear2", 100)
        assert e_tr < e_be - 10.0
        assert e_ge < e_be - 10.0

    def test_trapezoidal_closest_to_opm(self, grid_runs):
        # paper Table II: trapezoidal has the lowest error vs OPM
        e_tr = self._err(grid_runs, "trapezoidal", 100)
        e_ge = self._err(grid_runs, "gear2", 100)
        assert e_tr <= e_ge + 1.0

    def test_opm_same_accuracy_class_as_trapezoidal(self, grid_runs):
        # the paper's headline claim for linear systems: OPM ~ advanced
        # transient analysis in accuracy; measured against a converged
        # fine-step trapezoidal reference
        bundle = grid_runs["bundle"]
        fine = simulate_transient(
            bundle["mna"], bundle["u"], bundle["t_end"], 20000, method="trapezoidal"
        )
        t = grid_runs["t"]
        y_true = sample_outputs(fine, t)
        e_opm = average_relative_error_db(y_true, sample_outputs(grid_runs["opm"], t))
        trap = simulate_transient(bundle["mna"], bundle["u"], bundle["t_end"], 100)
        e_tr = average_relative_error_db(y_true, sample_outputs(trap, t))
        be = simulate_transient(
            bundle["mna"], bundle["u"], bundle["t_end"], 100, method="backward-euler"
        )
        e_be = average_relative_error_db(y_true, sample_outputs(be, t))
        assert abs(e_opm - e_tr) < 25.0  # same class (both second order)
        assert e_opm < e_be - 10.0  # clearly better than first order

"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import run

RC_NETLIST = """
* rc lowpass
I1 0 n1 1m
R1 n1 0 1k
C1 n1 0 1u
"""

CPE_NETLIST = """
I1 0 a 1.0
R1 a 0 1.0
P1 a 0 1.0 0.5
"""


@pytest.fixture
def rc_file(tmp_path):
    path = tmp_path / "rc.sp"
    path.write_text(RC_NETLIST)
    return path


class TestCli:
    def test_basic_run(self, rc_file, capsys):
        code = run([str(rc_file), "--t-end", "5e-3", "--steps", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "v(n1)" in out
        assert "factorisation" in out

    def test_final_value_correct(self, rc_file, capsys):
        run([str(rc_file), "--t-end", "20e-3", "--steps", "400", "--points", "4"])
        out = capsys.readouterr().out
        last_value = float(out.strip().splitlines()[-1].split("|")[-1])
        assert last_value == pytest.approx(1.0, rel=1e-3)  # 1mA * 1k

    def test_output_selection(self, tmp_path, capsys):
        path = tmp_path / "two.sp"
        path.write_text("I1 0 a 1m\nR1 a b 1k\nR2 b 0 1k\nC1 b 0 1u\n")
        code = run([str(path), "--t-end", "1e-2", "--outputs", "b"])
        out = capsys.readouterr().out
        assert code == 0
        assert "v(b)" in out and "v(a)" not in out

    def test_csv_written(self, rc_file, tmp_path, capsys):
        csv_path = tmp_path / "wave.csv"
        code = run(
            [str(rc_file), "--t-end", "5e-3", "--steps", "50", "--csv", str(csv_path)]
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "t,n1"
        assert len(lines) == 51

    def test_fractional_netlist(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        code = run([str(path), "--t-end", "2.0", "--steps", "400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FractionalDescriptorSystem" in out

    def test_sweep_mode(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "20e-3", "--steps", "200",
             "--points", "5", "--sweep", "0.5", "1.0", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "swept 3 scaled inputs" in out
        assert "1 factorisation(s) shared" in out
        assert "v(n1)@x0.5" in out and "v(n1)@x2" in out
        # --points is honoured: 5 sampled rows; linear circuit: columns
        # scale with the input factor
        rows = [line for line in out.splitlines() if line.startswith("0.0")]
        assert len(rows) == 5
        _, v_half, v_one, v_two = (float(x) for x in rows[-1].split("|"))
        assert v_one == pytest.approx(2 * v_half, rel=1e-6)
        assert v_two == pytest.approx(4 * v_half, rel=1e-6)

    def test_sweep_csv(self, rc_file, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = run(
            [str(rc_file), "--t-end", "5e-3", "--steps", "50",
             "--sweep", "1.0", "3.0", "--csv", str(csv_path)]
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "t,n1@x1,n1@x3"
        assert len(lines) == 51
        _, v1, v3 = (float(x) for x in lines[25].split(","))
        assert v3 == pytest.approx(3 * v1, rel=1e-9)

    def test_sweep_fractional_netlist(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        code = run(
            [str(path), "--t-end", "2.0", "--steps", "100", "--sweep", "1.0", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "swept 2 scaled inputs" in out

    def test_method_flag_zoo(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        code = run(
            [str(path), "--t-end", "2.0", "--steps", "200", "--method", "gl"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "method gl[BlockPulse]" in out

    def test_method_flag_jacobi_binds_spectral_basis(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        code = run(
            [str(path), "--t-end", "2.0", "--steps", "24", "--method", "jacobi"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "method jacobi[Legendre]" in out

    def test_method_flag_sweeps(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        code = run(
            [str(path), "--t-end", "2.0", "--steps", "100",
             "--method", "oustaloup", "--sweep", "1.0", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "swept 2 scaled inputs" in out

    def test_method_flag_typo_suggests(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        code = run(
            [str(path), "--t-end", "2.0", "--steps", "100", "--method", "oustalop"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "did you mean 'oustaloup'" in err
        assert "choose from" in err

    def test_method_flag_overrides_deck_option(self, tmp_path, capsys):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST + ".options method=oustaloup\n.tran 10m 2\n")
        code = run([str(path), "--method", "gl"])
        out = capsys.readouterr().out
        assert code == 0
        assert "method gl[BlockPulse]" in out

    def test_windowed_march(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "20e-3", "--steps", "400",
             "--windows", "8", "--points", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "marched" in out and "8 windows" in out
        assert "1 factorisation(s)" in out
        # same steady state as the single-window run: 1mA * 1k
        last_value = float(out.strip().splitlines()[-1].split("|")[-1])
        assert last_value == pytest.approx(1.0, rel=1e-3)

    def test_windowed_march_matches_single(self, rc_file, tmp_path, capsys):
        csv_single = tmp_path / "single.csv"
        csv_march = tmp_path / "march.csv"
        run([str(rc_file), "--t-end", "20e-3", "--steps", "200",
             "--csv", str(csv_single)])
        run([str(rc_file), "--t-end", "20e-3", "--steps", "200",
             "--windows", "4", "--csv", str(csv_march)])
        single = np.loadtxt(csv_single, delimiter=",", skiprows=1)
        march = np.loadtxt(csv_march, delimiter=",", skiprows=1)
        np.testing.assert_allclose(march, single, atol=1e-10)

    def test_event_scale(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "40e-3", "--steps", "400",
             "--windows", "8", "--points", "4",
             "--event", "t=20e-3", "scale=3.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 event(s)" in out
        rows = [line for line in out.splitlines() if line.startswith("0.0")]
        before = float(rows[0].split("|")[-1])
        after = float(rows[-1].split("|")[-1])
        assert after == pytest.approx(3 * before, rel=1e-2)

    def test_event_restamp_from_file(self, rc_file, tmp_path, capsys):
        switched = tmp_path / "switched.sp"
        switched.write_text(RC_NETLIST + "R2 n1 0 500\n")
        code = run(
            [str(rc_file), "--t-end", "40e-3", "--steps", "400",
             "--windows", "8", "--points", "4",
             "--event", "t=20e-3", f"file={switched}"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 pencil stamp(s)" in out
        # switch closes 500 || 1k -> 333 mV steady state
        last_value = float(out.strip().splitlines()[-1].split("|")[-1])
        assert last_value == pytest.approx(1.0 / 3.0, rel=1e-2)

    def test_event_netlist_must_align_states(self, rc_file, tmp_path, capsys):
        # different node set -> would silently misalign the state vector
        other = tmp_path / "other.sp"
        other.write_text("I1 0 nX 1m\nR1 nX 0 1k\nC1 nX 0 1u\n")
        code = run(
            [str(rc_file), "--t-end", "20e-3", "--steps", "400",
             "--windows", "8", "--event", "t=10e-3", f"file={other}"]
        )
        assert code == 1
        assert "same nodes" in capsys.readouterr().err

    def test_event_without_windows_guides_user(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "1e-3", "--event", "t=0.5e-3", "scale=2.0"]
        )
        assert code == 1
        assert "--windows" in capsys.readouterr().err

    def test_event_requires_time(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "1e-3", "--windows", "2",
             "--event", "scale=2.0"]
        )
        assert code == 1
        assert "t=TIME" in capsys.readouterr().err

    def test_bad_event_token(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "1e-3", "--windows", "2",
             "--event", "t=0.5e-3", "bogus"]
        )
        assert code == 1
        assert "bad --event token" in capsys.readouterr().err

    def test_windows_must_divide_steps(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "1e-3", "--steps", "100", "--windows", "7"]
        )
        assert code == 1
        assert "divisible" in capsys.readouterr().err

    def test_sweep_and_windows_conflict(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "1e-3", "--windows", "2",
             "--sweep", "1.0", "2.0"]
        )
        assert code == 1
        assert "cannot be combined" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        code = run([str(tmp_path / "nope.sp"), "--t-end", "1.0"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_netlist(self, tmp_path, capsys):
        path = tmp_path / "bad.sp"
        path.write_text("X1 a b 1\n")
        code = run([str(path), "--t-end", "1.0"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCliMemory:
    """--memory soe: compressed fractional history through the CLI."""

    @pytest.fixture
    def cpe_file(self, tmp_path):
        path = tmp_path / "cpe.sp"
        path.write_text(CPE_NETLIST)
        return path

    def test_march_reports_compression(self, cpe_file, capsys):
        code = run(
            [str(cpe_file), "--t-end", "4.0", "--steps", "600",
             "--windows", "20", "--memory", "soe", "--points", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "compressed memory:" in out
        assert "exponential modes" in out and "certified bound" in out

    def test_soe_matches_exact_march(self, cpe_file, tmp_path, capsys):
        csv_exact = tmp_path / "exact.csv"
        csv_soe = tmp_path / "soe.csv"
        base = ["--t-end", "4.0", "--steps", "600", "--windows", "20"]
        run([str(cpe_file), *base, "--csv", str(csv_exact)])
        run([str(cpe_file), *base, "--memory", "soe", "--csv", str(csv_soe)])
        exact = np.loadtxt(csv_exact, delimiter=",", skiprows=1)
        soe = np.loadtxt(csv_soe, delimiter=",", skiprows=1)
        scale = np.max(np.abs(exact[:, 1]))
        assert np.max(np.abs(soe[:, 1] - exact[:, 1])) / scale < 1e-8

    def test_memory_rtol_implies_soe(self, cpe_file, capsys):
        code = run(
            [str(cpe_file), "--t-end", "4.0", "--steps", "600",
             "--windows", "20", "--memory-rtol", "1e-6", "--points", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rtol 1e-06" in out

    def test_deck_memory_card_drives_cli(self, tmp_path, capsys):
        path = tmp_path / "cpe_soe.sp"
        path.write_text(
            CPE_NETLIST
            + ".tran 1e-2 4.0\n.options windows=20 memory=soe\n"
        )
        code = run([str(path), "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "compressed memory:" in out

    def test_cli_exact_overrides_deck_card(self, tmp_path, capsys):
        path = tmp_path / "cpe_soe.sp"
        path.write_text(
            CPE_NETLIST
            + ".tran 1e-2 4.0\n"
            + ".options windows=20 memory=soe memory_rtol=1e-9\n"
        )
        code = run([str(path), "--memory", "exact", "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "compressed memory:" not in out

    def test_memory_rejected_for_foreign_method(self, tmp_path, capsys):
        path = tmp_path / "cpe_fft.sp"
        path.write_text(CPE_NETLIST + ".tran 1e-2 1.0\n.options method=fft\n")
        code = run([str(path), "--memory", "soe"])
        assert code == 1
        assert "no fractional memory tail" in capsys.readouterr().err

    def test_gl_method_supports_memory(self, tmp_path, capsys):
        path = tmp_path / "cpe_gl.sp"
        path.write_text(
            CPE_NETLIST
            + ".tran 2e-3 2.0\n.options method=grunwald-letnikov\n"
        )
        code = run([str(path), "--memory", "soe", "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "compressed memory:" in out


class TestCliBasis:
    @pytest.mark.parametrize("name", ["legendre", "chebyshev"])
    def test_spectral_round_trip(self, rc_file, capsys, name):
        """`--basis legendre` with m=24 matches the 1 V final value."""
        code = run(
            [
                str(rc_file),
                "--t-end",
                "20e-3",
                "--steps",
                "24",
                "--basis",
                name,
                "--points",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert name.capitalize() in out  # basis reported in the summary
        last_value = float(out.strip().splitlines()[-1].split("|")[-1])
        assert last_value == pytest.approx(1.0, rel=1e-3)

    def test_spectral_csv(self, rc_file, tmp_path, capsys):
        csv_path = tmp_path / "spec.csv"
        code = run(
            [
                str(rc_file),
                "--t-end",
                "5e-3",
                "--steps",
                "16",
                "--basis",
                "chebyshev",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "t,n1"
        assert len(lines) > 2

    def test_basis_with_sweep(self, rc_file, capsys):
        code = run(
            [
                str(rc_file),
                "--t-end",
                "20e-3",
                "--steps",
                "24",
                "--basis",
                "legendre",
                "--sweep",
                "1.0",
                "2.0",
                "--points",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Legendre basis" in out
        row = out.strip().splitlines()[-1].split("|")
        assert float(row[2]) == pytest.approx(2.0 * float(row[1]), rel=1e-6)

    def test_basis_with_windows(self, rc_file, capsys):
        code = run(
            [
                str(rc_file),
                "--t-end",
                "20e-3",
                "--steps",
                "48",
                "--windows",
                "4",
                "--basis",
                "chebyshev",
                "--points",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 windows" in out
        last_value = float(out.strip().splitlines()[-1].split("|")[-1])
        assert last_value == pytest.approx(1.0, rel=1e-3)

    def test_typo_lists_valid_names(self, rc_file, capsys):
        code = run([str(rc_file), "--t-end", "1e-3", "--basis", "chebishev"])
        err = capsys.readouterr().err
        assert code == 1
        assert "did you mean 'chebyshev'" in err
        for name in ("block-pulse", "legendre", "walsh", "haar"):
            assert name in err

    def test_walsh_matches_block_pulse(self, rc_file, capsys):
        run(
            [str(rc_file), "--t-end", "20e-3", "--steps", "256", "--points", "4"]
        )
        base = capsys.readouterr().out.strip().splitlines()[-1]
        run(
            [
                str(rc_file),
                "--t-end",
                "20e-3",
                "--steps",
                "256",
                "--basis",
                "walsh",
                "--points",
                "4",
            ]
        )
        walsh = capsys.readouterr().out.strip().splitlines()[-1]
        base_v = float(base.split("|")[-1])
        walsh_v = float(walsh.split("|")[-1])
        assert walsh_v == pytest.approx(base_v, rel=1e-9)

    def test_laguerre_excluded_with_clear_error(self, rc_file, capsys):
        code = run([str(rc_file), "--t-end", "1e-3", "--basis", "laguerre"])
        err = capsys.readouterr().err
        assert code == 1
        assert "LaguerreBasis" in err and "library API" in err


CIR_DECK = """
* rc lowpass with analysis cards
V1 in 0 DC 0 AC 1 SIN(0 1 100)
R1 in out 1kOhm
C1 out 0 1uF ; tau = 1 ms
.tran 100u 10m
.ac dec 5 10 10k
.end
"""


@pytest.fixture
def cir_file(tmp_path):
    path = tmp_path / "rc.cir"
    path.write_text(CIR_DECK)
    return path


class TestCliNetlistMode:
    """`python -m repro --netlist deck.cir`: cards drive the analysis."""

    def test_netlist_flag_no_t_end_needed(self, cir_file, capsys):
        code = run(["--netlist", str(cir_file), "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulated [0, 0.01) s with m=100" in out
        assert "AC sweep" in out and "|v(out)| [dB]" in out

    def test_flag_and_positional_conflict(self, cir_file, capsys):
        code = run(["--netlist", str(cir_file), str(cir_file)])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_no_netlist_at_all(self, capsys):
        code = run(["--t-end", "1.0"])
        assert code == 2
        assert "required" in capsys.readouterr().err

    def test_no_horizon_without_cards(self, rc_file, capsys):
        # classic deck (no .tran/.ac) still requires --t-end
        code = run([str(rc_file)])
        assert code == 1
        assert "--t-end" in capsys.readouterr().err

    def test_cli_flags_override_cards(self, cir_file, capsys):
        code = run(["--netlist", str(cir_file), "--t-end", "5e-3",
                    "--steps", "50", "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulated [0, 0.005) s with m=50" in out

    def test_tran_bit_identical_to_programmatic(self, cir_file, tmp_path, capsys):
        """Acceptance: the CLI transient equals the programmatic session."""
        import numpy as np

        from repro import Simulator
        from repro.circuits import Netlist, SpiceSin, assemble_mna

        csv_path = tmp_path / "deck.csv"
        code = run(["--netlist", str(cir_file), "--csv", str(csv_path)])
        assert code == 0
        rows = np.array([
            [float(cell) for cell in line.split(",")]
            for line in csv_path.read_text().splitlines()[1:]
        ])

        nl = Netlist("twin")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "out", 1e3)
        nl.add_capacitor("C1", "out", "0", 1e-6)
        system = assemble_mna(nl, outputs=["in", "out"])
        reference = Simulator(system, (10e-3, 100)).run(nl.input_function())
        t_all = reference.sample_times()
        v_all = reference.outputs(t_all)
        np.testing.assert_array_equal(rows[:, 0], t_all)
        np.testing.assert_array_equal(rows[:, 1:].T, v_all)

    def test_ac_csv(self, cir_file, tmp_path, capsys):
        ac_path = tmp_path / "sweep.csv"
        code = run(["--netlist", str(cir_file), "--ac-csv", str(ac_path),
                    "--points", "2"])
        assert code == 0
        lines = ac_path.read_text().splitlines()
        assert lines[0] == "f,mag_db(in),mag_db(out),phase_deg(in),phase_deg(out)"
        first = [float(x) for x in lines[1].split(",")]
        assert first[0] == pytest.approx(10.0)
        assert first[2] == pytest.approx(-0.0171, abs=1e-3)

    def test_ac_only_deck(self, tmp_path, capsys):
        path = tmp_path / "ac_only.cir"
        path.write_text("I1 0 a AC 1\nR1 a 0 1k\nC1 a 0 1u\n.ac dec 2 10 1k\n")
        code = run(["--netlist", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "AC sweep" in out and "simulated" not in out

    def test_ac_only_deck_rejects_transient_flags(self, tmp_path, capsys):
        """Transient-only flags must not be silently dropped."""
        path = tmp_path / "ac_only.cir"
        path.write_text("I1 0 a AC 1\nR1 a 0 1k\nC1 a 0 1u\n.ac dec 2 10 1k\n")
        for flags in (["--sweep", "1.0", "2.0"], ["--windows", "4"],
                      ["--csv", str(tmp_path / "w.csv")]):
            code = run(["--netlist", str(path)] + flags)
            err = capsys.readouterr().err
            assert code == 1, flags
            assert "no .tran card" in err, flags

    def test_ac_only_deck_allows_windows_card(self, tmp_path, capsys):
        """.options windows= on an AC-only deck is dormant, not an error."""
        path = tmp_path / "ac_only.cir"
        path.write_text(
            "I1 0 a AC 1\nR1 a 0 1k\nC1 a 0 1u\n.ac dec 2 10 1k\n"
            ".options windows=4\n"
        )
        code = run(["--netlist", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "AC sweep" in out

    def test_ac_csv_without_ac_card_rejected(self, rc_file, tmp_path, capsys):
        code = run([str(rc_file), "--t-end", "1e-3",
                    "--ac-csv", str(tmp_path / "bode.csv")])
        assert code == 1
        assert ".ac card" in capsys.readouterr().err

    def test_options_method_opm_windowed_marches(self, tmp_path, capsys):
        """method=opm-windowed routes to march, matching simulate_netlist."""
        path = tmp_path / "win.cir"
        path.write_text(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 100u 20m\n"
            ".options method=opm-windowed\n"
        )
        code = run(["--netlist", str(path), "--points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "marched" in out

    def test_options_card_defaults(self, tmp_path, capsys):
        path = tmp_path / "opt.cir"
        path.write_text(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 100u 10m\n"
            ".options basis=chebyshev m=24\n"
        )
        code = run(["--netlist", str(path), "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "m=24" in out and "Chebyshev" in out

    def test_options_windows_marches(self, tmp_path, capsys):
        path = tmp_path / "win.cir"
        path.write_text(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 100u 20m\n"
            ".options windows=4\n"
        )
        code = run(["--netlist", str(path), "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "marched" in out and "4 windows" in out

    def test_options_method_baseline(self, tmp_path, capsys):
        path = tmp_path / "meth.cir"
        path.write_text(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 100u 20m\n"
            ".options method=trapezoidal\n"
        )
        code = run(["--netlist", str(path), "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "method trapezoidal" in out
        last_value = float(out.strip().splitlines()[-1].split("|")[-1])
        assert last_value == pytest.approx(1.0, rel=1e-2)

    def test_options_method_conflicts_with_windows(self, tmp_path, capsys):
        """A baseline method + windowing must error, not silently pick one."""
        path = tmp_path / "conflict.cir"
        path.write_text(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 100u 20m\n"
            ".options method=trapezoidal windows=4\n"
        )
        code = run(["--netlist", str(path)])
        assert code == 1
        assert "plain transient" in capsys.readouterr().err

    def test_options_backend_honoured(self, tmp_path, capsys):
        path = tmp_path / "backend.cir"
        path.write_text(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 100u 10m\n"
            ".options backend=sparse\n"
        )
        code = run(["--netlist", str(path), "--sweep", "1.0", "2.0",
                    "--points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sparse backend" in out

    def test_options_bad_method(self, tmp_path, capsys):
        path = tmp_path / "bad.cir"
        path.write_text("I1 0 a 1m\nR1 a 0 1k\n.tran 1u 10u\n.options method=rk9\n")
        code = run(["--netlist", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown method 'rk9'" in err
        assert "'oustaloup'" in err  # every registered method is listed

    def test_ic_card_honoured(self, tmp_path, capsys):
        path = tmp_path / "ic.cir"
        path.write_text(
            "I1 0 a 0\nR1 a 0 1k\nC1 a 0 1u\n.tran 10u 1m\n.ic v(a)=1\n"
        )
        code = run(["--netlist", str(path), "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        first_value = float(
            [line for line in out.splitlines() if line.startswith("0.0")][0]
            .split("|")[-1]
        )
        assert first_value == pytest.approx(np.exp(-0.25), rel=5e-2)

    def test_sweep_flag_with_deck_cards(self, cir_file, capsys):
        code = run(["--netlist", str(cir_file), "--sweep", "1.0", "2.0",
                    "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "swept 2 scaled inputs" in out

    def test_example_decks_run(self, capsys):
        """Every shipped golden deck runs end to end through the CLI."""
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples"
        for deck in sorted(examples.glob("*.cir")):
            code = run(["--netlist", str(deck), "--points", "3"])
            out = capsys.readouterr().out
            assert code == 0, deck.name
            assert "simulated" in out or "marched" in out, deck.name


ENSEMBLE_SPEC = (
    '{"mode": "monte-carlo", "n": 5, "seed": 7,'
    ' "params": {"R1": 0.2, "C1": 0.1}}'
)


class TestEnsembleCli:
    """The --ensemble / --jobs / --parallel ensemble front door."""

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(ENSEMBLE_SPEC)
        return path

    def test_ensemble_run(self, rc_file, spec_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "5e-3", "--steps", "60",
             "--ensemble", str(spec_file), "--jobs", "2",
             "--parallel", "serial"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solved 5-member ensemble (monte-carlo)" in out
        assert "5 pencil group(s)" in out
        assert "2 serial worker(s)" in out
        assert out.count("R1=") == 5  # one table row per member

    def test_ensemble_csv(self, rc_file, spec_file, tmp_path, capsys):
        csv_path = tmp_path / "ens.csv"
        code = run(
            [str(rc_file), "--t-end", "5e-3", "--steps", "40",
             "--ensemble", str(spec_file), "--parallel", "serial",
             "--csv", str(csv_path)]
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 41  # header + one row per block pulse
        assert lines[0].count("n1@R1=") == 5

    def test_ensemble_deterministic_across_backends(
        self, rc_file, spec_file, capsys
    ):
        argv = [str(rc_file), "--t-end", "5e-3", "--steps", "40",
                "--ensemble", str(spec_file)]
        assert run(argv + ["--parallel", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert run(argv + ["--parallel", "process", "--jobs", "2"]) == 0
        process_out = capsys.readouterr().out
        # identical member tables (seeded draws + bit-identical solves)
        table = lambda text: [
            line for line in text.splitlines() if line.startswith("R1=")
        ]
        assert table(serial_out) == table(process_out)

    def test_ensemble_conflicts(self, rc_file, spec_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "1e-3", "--ensemble", str(spec_file),
             "--sweep", "1.0", "2.0"]
        )
        assert code == 1
        assert "--ensemble cannot be combined" in capsys.readouterr().err

    def test_jobs_requires_ensemble_or_sweep(self, rc_file, capsys):
        code = run([str(rc_file), "--t-end", "1e-3", "--jobs", "4"])
        assert code == 1
        assert "--jobs shards" in capsys.readouterr().err

    def test_bad_spec_reports_error(self, rc_file, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"params": {"R99": 0.2}, "mode": "monte-carlo", "n": 2}')
        code = run([str(rc_file), "--t-end", "1e-3",
                    "--ensemble", str(path), "--parallel", "serial"])
        assert code == 1
        assert "unknown element" in capsys.readouterr().err

    def test_sweep_jobs_sharding(self, rc_file, capsys):
        code = run(
            [str(rc_file), "--t-end", "20e-3", "--steps", "64", "--points", "3",
             "--sweep"] + [str(0.25 * k) for k in range(1, 17)]
            + ["--jobs", "2", "--parallel", "serial"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "swept 16 scaled inputs" in out
        assert "across 2 serial worker(s)" in out


class TestServiceCli:
    """Error paths of the serve/client subcommand front door."""

    def test_client_unreachable_service_reports_error(self, capsys):
        # nothing listens on the discard port; the client must say so
        code = run(["client", "--port", "9", "--ping"])
        assert code == 1
        assert "cannot reach the service" in capsys.readouterr().err

    def test_client_broken_stdout_pipe_exits_quietly(self, monkeypatch, capsys):
        """EPIPE on stdout (output piped into ``head``) is not a service
        failure: conventional SIGPIPE status, no misleading message."""
        import repro.__main__ as cli

        def raise_epipe(rest):
            raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(cli, "_run_client", raise_epipe)
        assert run(["client", "--ping"]) == 141
        assert "cannot reach" not in capsys.readouterr().err

"""Tests for the pinned experiment workloads (repro.experiments)."""

import numpy as np
import pytest

from repro.core import FractionalDescriptorSystem, SecondOrderSystem
from repro.experiments import (
    TABLE1_M,
    TABLE1_T,
    TABLE2_BASE_STEPS,
    TABLE2_T,
    table1_workload,
    table2_workload,
)


class TestTable1Workload:
    def test_paper_shape(self):
        wl = table1_workload()
        model = wl["model"]
        assert isinstance(model, FractionalDescriptorSystem)
        assert (model.n_states, model.n_inputs, model.n_outputs) == (7, 2, 2)
        assert model.alpha == 0.5
        assert wl["t_end"] == TABLE1_T == 2.7e-9
        assert wl["m"] == TABLE1_M == 8
        assert wl["fft_points"] == (8, 100)

    def test_input_drives_port_one_only(self):
        wl = table1_workload()
        values = wl["u"](np.linspace(0.0, 2.7e-9, 7))
        assert values.shape == (2, 7)
        assert np.max(np.abs(values[0])) > 0.0
        np.testing.assert_array_equal(values[1], 0.0)

    def test_input_settles_within_window(self):
        # the FFT baseline periodises; the workload is built so the
        # input vanishes well before t_end
        wl = table1_workload()
        late = wl["u"](np.array([0.6 * TABLE1_T, 0.9 * TABLE1_T]))
        np.testing.assert_array_equal(late, 0.0)

    def test_sample_times_are_opm_midpoints(self):
        wl = table1_workload()
        h = TABLE1_T / TABLE1_M
        np.testing.assert_allclose(wl["sample_times"], (np.arange(8) + 0.5) * h)

    def test_parameterised_sections(self):
        wl = table1_workload(n_sections=9)
        assert wl["model"].n_states == 9


class TestTable2Workload:
    def test_models_and_sizes(self):
        wl = table2_workload()
        assert isinstance(wl["na"], SecondOrderSystem)
        assert wl["na"].n_states < wl["mna"].n_states  # 75K < 110K relation
        assert wl["t_end"] == TABLE2_T
        assert wl["base_steps"] == TABLE2_BASE_STEPS
        assert wl["step_variants"] == {"10 ps": 100, "5 ps": 200, "1 ps": 1000}

    def test_deterministic(self):
        a = table2_workload(seed=3)
        b = table2_workload(seed=3)
        ua = a["u"](np.array([0.3e-9]))
        ub = b["u"](np.array([0.3e-9]))
        np.testing.assert_array_equal(ua, ub)
        # same load placement and scaling
        assert [e.scale for e in a["netlist"].current_sources] == [
            e.scale for e in b["netlist"].current_sources
        ]

    def test_derivative_input_consistent(self):
        wl = table2_workload()
        t = np.linspace(1e-11, 5e-10, 200)
        u = wl["u"](t)
        du = wl["du"](t)
        numeric = np.gradient(u[0], t)
        np.testing.assert_allclose(du[0], numeric, atol=0.05 * np.max(np.abs(du[0])))

    def test_scalable(self):
        small = table2_workload(4, 4, 2)
        large = table2_workload(6, 6, 3)
        assert large["na"].n_states > small["na"].n_states

"""Failure injection: every abuse raises a typed library exception."""

import numpy as np
import pytest

from repro import (
    BasisError,
    ConvergenceError,
    ModelError,
    NetlistError,
    OperationalMatrixError,
    ReproError,
    SolverError,
)
from repro.basis import BlockPulseBasis, TimeGrid, WalshBasis
from repro.circuits import Netlist
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    simulate_opm,
    simulate_opm_adaptive,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            BasisError,
            ConvergenceError,
            ModelError,
            NetlistError,
            OperationalMatrixError,
            SolverError,
        ):
            assert issubclass(exc, ReproError)

    def test_convergence_is_solver_error(self):
        assert issubclass(ConvergenceError, SolverError)


class TestSingularSystems:
    def test_singular_pencil_at_solve_time(self):
        # E = A = same rank-deficient matrix: sigma E - A singular at
        # every sigma except sigma = 1... choose E = A singular
        E = np.array([[1.0, 0.0], [0.0, 0.0]])
        A = np.array([[1.0, 0.0], [0.0, 0.0]])
        system = DescriptorSystem(E, A, np.ones((2, 1)))
        with pytest.raises(SolverError, match="singular"):
            simulate_opm(system, 1.0, (1.0, 4))

    def test_fft_rejects_dc_singular(self):
        from repro.baselines import simulate_fft

        system = FractionalDescriptorSystem(0.5, np.eye(2), np.zeros((2, 2)), np.ones((2, 1)))
        with pytest.raises(SolverError):
            simulate_fft(system, lambda t: np.ones((1, np.size(t))), 1.0, 8)

    def test_adaptive_underflow(self):
        # an input callable that misbehaves violently forces rejection
        # cascades; drive the controller into step underflow via an
        # impossible tolerance on a discontinuous oscillation
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])

        def nasty(t):
            t = np.atleast_1d(t)
            return np.sign(np.sin(1e9 * t)).reshape(1, -1)

        with pytest.raises(ConvergenceError):
            simulate_opm_adaptive(
                system, nasty, 1.0, rtol=1e-14, atol=1e-16, h_min=1e-6
            )


class TestDimensionAbuse:
    def test_wrong_input_width(self):
        system = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 2)))
        with pytest.raises(ModelError):
            simulate_opm(system, np.ones((3, 8)), (1.0, 8))

    def test_basis_size_mismatch_in_synthesis(self):
        basis = BlockPulseBasis(TimeGrid.uniform(1.0, 8))
        with pytest.raises(BasisError):
            basis.synthesize(np.ones(7), [0.5])

    def test_walsh_non_power_of_two(self):
        with pytest.raises(BasisError):
            WalshBasis(1.0, 24)


class TestBadOrders:
    def test_negative_alpha_model(self):
        with pytest.raises(OperationalMatrixError):
            FractionalDescriptorSystem(-0.5, np.eye(1), -np.eye(1), [[1.0]])

    def test_nan_alpha(self):
        with pytest.raises(OperationalMatrixError):
            FractionalDescriptorSystem(float("nan"), np.eye(1), -np.eye(1), [[1.0]])


class TestNetlistAbuse:
    def test_self_loop(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.add_resistor("R1", "a", "a", 1.0)

    def test_negative_value(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.add_capacitor("C1", "a", "0", -1.0)

    def test_assembling_source_free_grounded_cap(self):
        # no sources at all: models still assemble, with B all zero
        from repro.circuits import assemble_mna

        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_capacitor("C1", "a", "0", 1.0)
        system = assemble_mna(nl)
        res = simulate_opm(system, 0.0, (1.0, 8))
        np.testing.assert_array_equal(res.coefficients, np.zeros((1, 8)))

    def test_grid_time_outside_span(self):
        grid = TimeGrid.uniform(1.0, 4)
        with pytest.raises(ValueError):
            grid.locate([1.5])

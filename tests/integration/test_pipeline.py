"""End-to-end pipelines: netlist -> model -> OPM -> waveform vs references."""

import numpy as np
import pytest

from repro.analysis import relative_error_db, sample_outputs
from repro.baselines import simulate_expm, simulate_fft, simulate_transient
from repro.circuits import (
    Constant,
    Netlist,
    RaisedCosinePulse,
    Ramp,
    assemble_mna,
    assemble_na,
    fractional_line_model,
    power_grid_models,
    rc_ladder_netlist,
)
from repro.core import simulate_opm, simulate_opm_adaptive
from repro.fractional import simulate_grunwald_letnikov


class TestLinearPipelines:
    def test_spice_text_to_waveform(self):
        nl = Netlist.from_spice(
            """
            * RC lowpass driven by 1 mA
            I1 0 n1 1m
            R1 n1 0 1k
            C1 n1 0 1u
            """
        )
        system = assemble_mna(nl, outputs=["n1"])
        res = simulate_opm(system, nl.input_function(), (5e-3, 1000))
        t = res.grid.midpoints
        np.testing.assert_allclose(
            res.outputs(t)[0], 1.0 - np.exp(-t / 1e-3), atol=1e-4
        )

    def test_ladder_all_methods_agree(self):
        nl = rc_ladder_netlist(8, r=1.0, c=1e-3, drive_waveform=Constant(1.0))
        system = assemble_mna(nl, outputs=["v8"])
        u = nl.input_function()
        t = np.linspace(0.01, 0.09, 9)
        reference = simulate_expm(system, u, 0.1, 400)
        ref_y = sample_outputs(reference, t)
        for candidate in (
            simulate_opm(system, u, (0.1, 400)),
            simulate_transient(system, u, 0.1, 400, method="trapezoidal"),
            simulate_transient(system, u, 0.1, 400, method="gear2"),
            simulate_opm_adaptive(system, u, 0.1, rtol=1e-6),
        ):
            np.testing.assert_allclose(
                sample_outputs(candidate, t), ref_y, atol=1e-4
            )

    def test_power_grid_two_model_route(self):
        bundle = power_grid_models(4, 4, 2, via_pitch=2, pad_pitch=3, load_pitch=2)
        mna_res = simulate_opm(bundle["mna"], bundle["u"], (1e-9, 500))
        na_res = simulate_opm(bundle["na"], bundle["du"], (1e-9, 500))
        t = mna_res.grid.midpoints
        err_db = relative_error_db(mna_res.outputs(t)[0], na_res.outputs(t)[0])
        assert err_db < -35.0  # the two formulations agree to ~1.5%


class TestFractionalPipelines:
    def test_line_opm_vs_gl_vs_fft(self):
        from repro.experiments import table1_workload

        wl = table1_workload()
        model, u, T = wl["model"], wl["u"], wl["t_end"]
        opm = simulate_opm(model, u, (T, 512))
        gl = simulate_grunwald_letnikov(model, u, T, 512)
        fft = simulate_fft(model, u, T, 512)
        t = np.linspace(0.1e-9, 2.6e-9, 21)
        y_opm = sample_outputs(opm, t)
        y_gl = sample_outputs(gl, t)
        y_fft = sample_outputs(fft, t)
        # GL and OPM both solve the causal FDE: close agreement
        assert relative_error_db(y_opm, y_gl) < -30.0
        # FFT periodises: looser agreement, as the paper's Table I shows
        assert relative_error_db(y_opm, y_fft) < -10.0

    def test_cpe_netlist_full_route(self):
        from repro.fractional import fde_step_response

        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_cpe("P1", "a", "0", 1.0, 0.5)
        system = assemble_mna(nl, outputs=["a"])
        res = simulate_opm(system, nl.input_function(), (2.0, 1500))
        t = np.linspace(0.2, 1.8, 9)
        np.testing.assert_allclose(
            res.outputs(t)[0], fde_step_response(0.5, 1.0, t), atol=5e-3
        )

    def test_na_with_cpe_multiterm_route(self):
        # RLC + CPE netlist through nodal analysis -> multi-term OPM
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Ramp(1e-3, rise=1e-10))
        nl.add_resistor("R1", "a", "0", 10.0)
        nl.add_capacitor("C1", "a", "0", 1e-12)
        nl.add_inductor("L1", "a", "0", 1e-9)
        nl.add_cpe("P1", "a", "0", 1e-9, 0.5)
        na = assemble_na(nl, outputs=["a"])
        mna = assemble_mna(nl, outputs=["a"])
        res_na = simulate_opm(na, nl.input_function(derivative=True), (1e-9, 800))
        res_mna = simulate_opm(mna, nl.input_function(), (1e-9, 800))
        t = res_na.grid.midpoints[50:]
        y_na = res_na.outputs(t)[0]
        y_mna = res_mna.outputs(t)[0]
        scale = np.max(np.abs(y_mna))
        np.testing.assert_allclose(y_na, y_mna, atol=0.05 * scale)

"""Smoke tests: every shipped example runs cleanly via its main()."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs(path):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(path), run_name="__main__")
    output = buffer.getvalue()
    assert len(output) > 100  # produced a real report
    assert "Traceback" not in output


def test_example_inventory():
    """At least the three mandated examples plus quickstart exist."""
    names = {p.stem for p in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_docstring(path):
    text = path.read_text()
    assert text.lstrip().startswith('"""'), f"{path.name} lacks a module docstring"
    assert "Run:" in text, f"{path.name} lacks a Run: line"

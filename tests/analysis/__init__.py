"""Test package (enables duplicate test-module basenames across directories)."""

"""Tests for power-law fitting and sparsity statistics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import fit_power_law, predicted_cost, sparsity_stats


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        exponent, prefactor, r2 = fit_power_law([1, 2, 4, 8], [3, 12, 48, 192])
        assert exponent == pytest.approx(2.0)
        assert prefactor == pytest.approx(3.0)
        assert r2 == pytest.approx(1.0)

    def test_noisy_linear(self, rng):
        x = np.array([10.0, 40.0, 160.0, 640.0])
        y = 0.5 * x * rng.uniform(0.9, 1.1, size=4)
        exponent, _, r2 = fit_power_law(x, y)
        assert abs(exponent - 1.0) < 0.15 and r2 > 0.98

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])


class TestPredictedCost:
    def test_first_order_no_history_term(self):
        # doubling m doubles cost for alpha = 1
        c1 = predicted_cost(1000, 100, alpha=1.0)
        c2 = predicted_cost(1000, 200, alpha=1.0)
        assert c2 == pytest.approx(2.0 * c1)

    def test_fractional_history_dominates_large_m(self):
        # for alpha != 1 the n m^2 term makes cost superlinear in m
        c1 = predicted_cost(1000, 1000, alpha=0.5)
        c2 = predicted_cost(1000, 2000, alpha=0.5)
        assert c2 > 3.0 * c1

    def test_beta_exponent(self):
        c = predicted_cost(100, 1, alpha=1.0, beta=2.0)
        assert c == pytest.approx(100.0**2)


class TestSparsityStats:
    def test_dense_matrix(self):
        stats = sparsity_stats(np.eye(4))
        assert stats["nnz"] == 4
        assert stats["density"] == pytest.approx(0.25)
        assert stats["nnz_per_row"] == pytest.approx(1.0)

    def test_sparse_matrix(self):
        m = sp.diags([np.ones(99), np.ones(100), np.ones(99)], [-1, 0, 1])
        stats = sparsity_stats(m.tocsr())
        assert stats["nnz"] == 298
        assert stats["nnz_per_row"] < 3.0

    def test_power_grid_is_sparse(self):
        # the complexity model's O(n) nonzeros assumption holds
        from repro.circuits import power_grid_models

        bundle = power_grid_models(6, 6, 3, via_pitch=2)
        stats = sparsity_stats(bundle["mna"].A)
        assert stats["nnz_per_row"] < 8.0

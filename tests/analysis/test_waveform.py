"""Tests for waveform post-processing."""

import numpy as np
import pytest

from repro.analysis import overshoot, sample_outputs, settling_time
from repro.core import DescriptorSystem, simulate_opm
from repro.baselines import simulate_transient


class TestSampleOutputs:
    def test_mixed_result_types(self, scalar_ode):
        t = np.linspace(0.2, 4.8, 9)
        coeff_res = simulate_opm(scalar_ode, 1.0, (5.0, 500))
        node_res = simulate_transient(scalar_ode, 1.0, 5.0, 500)
        a = sample_outputs(coeff_res, t)
        b = sample_outputs(node_res, t)
        assert a.shape == b.shape == (1, 9)
        np.testing.assert_allclose(a, b, atol=5e-3)

    def test_rejects_non_result(self):
        with pytest.raises(TypeError):
            sample_outputs(np.zeros(4), [0.0])


class TestOvershoot:
    def test_monotone_no_overshoot(self):
        y = 1.0 - np.exp(-np.linspace(0, 5, 50))
        assert overshoot(y) == 0.0

    def test_known_overshoot(self):
        y = np.array([0.0, 1.4, 0.8, 1.1, 1.0])
        assert overshoot(y) == pytest.approx(0.4)

    def test_explicit_final_value(self):
        y = np.array([0.0, 1.5])
        assert overshoot(y, final_value=1.0) == pytest.approx(0.5)

    def test_negative_going_waveform(self):
        y = np.array([0.0, -1.3, -1.0])
        assert overshoot(y) == pytest.approx(0.3)

    def test_rejects_zero_final(self):
        with pytest.raises(ValueError):
            overshoot([1.0, 0.0])


class TestSettlingTime:
    def test_decaying_exponential(self):
        t = np.linspace(0.0, 10.0, 1001)
        y = 1.0 - np.exp(-t)
        ts = settling_time(t, y, tolerance=0.02)
        assert ts == pytest.approx(-np.log(0.02), abs=0.05)

    def test_always_settled(self):
        t = np.linspace(0.0, 1.0, 11)
        assert settling_time(t, np.ones(11)) == 0.0

    def test_never_settled(self):
        t = np.linspace(0.0, 1.0, 11)
        y = np.linspace(0.0, 1.0, 11)  # still moving at the end
        assert settling_time(t, y, tolerance=0.001) == 1.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            settling_time([0.0, 1.0], [1.0])

"""Tests for order estimation and refinement studies."""

import numpy as np
import pytest

from repro.analysis import estimate_order, refinement_errors


class TestEstimateOrder:
    def test_exact_second_order(self):
        h = np.array([0.1, 0.05, 0.025])
        assert estimate_order(h, h**2) == pytest.approx(2.0)

    def test_exact_first_order(self):
        h = np.array([0.2, 0.1, 0.05, 0.025])
        assert estimate_order(h, 3.0 * h) == pytest.approx(1.0)

    def test_noisy_data_close(self, rng):
        h = np.array([0.1, 0.05, 0.025, 0.0125])
        noise = rng.uniform(0.9, 1.1, size=4)
        order = estimate_order(h, h**1.5 * noise)
        assert abs(order - 1.5) < 0.25

    def test_rejects_zero_errors(self):
        with pytest.raises(ValueError):
            estimate_order([0.1, 0.05], [1e-3, 0.0])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            estimate_order([0.1], [1e-3, 1e-4])


class TestRefinementErrors:
    def test_opm_refinement_study(self, scalar_ode):
        from repro.core import simulate_opm

        times = np.linspace(0.5, 4.5, 9)

        def solve_at(m):
            # sample at fixed times via interval averages of the solution
            res = simulate_opm(scalar_ode, 1.0, (5.0, m))
            return res.states(times)[0]

        errors = refinement_errors(solve_at, lambda t: 1.0 - np.exp(-t), [50, 100, 200], times)
        assert errors.size == 3
        assert errors[2] < errors[1] < errors[0]

    def test_reference_as_array(self):
        times = np.array([0.0, 1.0])
        errors = refinement_errors(
            lambda m: np.array([0.0, 1.0 + 1.0 / m]), np.array([0.0, 1.0]), [10, 20], times
        )
        np.testing.assert_allclose(errors, [0.1, 0.05])

    def test_shape_mismatch_rejected(self):
        times = np.array([0.0, 1.0])
        with pytest.raises(ValueError):
            refinement_errors(lambda m: np.zeros(3), np.zeros(2), [4], times)

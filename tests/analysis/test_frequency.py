"""Tests for frequency-domain evaluation."""

import numpy as np
import pytest

from repro.analysis import dc_gain, frequency_response, transfer_function
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    SecondOrderSystem,
)
from repro.errors import SolverError


class TestTransferFunction:
    def test_first_order_lowpass(self, scalar_ode):
        # H(s) = 1/(s+1)
        for s in (0.0, 1j, 2.0 + 3j):
            expected = 1.0 / (s + 1.0)
            assert transfer_function(scalar_ode, s)[0, 0] == pytest.approx(expected)

    def test_fractional_half_order(self, scalar_fde):
        # H(s) = 1/(s^0.5 + 1)
        s = 4.0
        assert transfer_function(scalar_fde, s)[0, 0] == pytest.approx(1.0 / 3.0)

    def test_second_order_resonance(self):
        # H(s) = wn^2/(s^2 + 2 zeta wn s + wn^2)
        wn, zeta = 2.0, 0.1
        system = SecondOrderSystem(
            [[1.0]], [[2 * zeta * wn]], [[wn**2]], [[wn**2]]
        )
        s = 1j * wn  # at resonance: |H| = 1/(2 zeta)
        value = transfer_function(system, s)[0, 0]
        assert abs(value) == pytest.approx(1.0 / (2.0 * zeta))

    def test_c_and_d_applied(self):
        system = DescriptorSystem(
            [[1.0]], [[-1.0]], [[1.0]], C=[[2.0]], D=[[0.5]]
        )
        assert transfer_function(system, 0.0)[0, 0] == pytest.approx(2.5)

    def test_sparse_system(self):
        import scipy.sparse as sp

        system = DescriptorSystem(
            sp.identity(3), -sp.identity(3), np.ones((3, 1))
        )
        np.testing.assert_allclose(
            transfer_function(system, 1.0).real, 0.5 * np.ones((3, 1))
        )

    def test_singular_raises(self):
        system = DescriptorSystem(np.eye(2), np.zeros((2, 2)), np.ones((2, 1)))
        with pytest.raises(SolverError, match="singular"):
            transfer_function(system, 0.0)


class TestFrequencyResponse:
    def test_shape(self, scalar_ode):
        H = frequency_response(scalar_ode, np.logspace(-1, 2, 16))
        assert H.shape == (16, 1, 1)

    def test_fractional_magnitude_slope(self, scalar_fde):
        # half-order pole: -10 dB/decade high-frequency slope (vs -20
        # for an integer pole)
        w = np.array([1e3, 1e4])
        mags = 20.0 * np.log10(np.abs(frequency_response(scalar_fde, w)[:, 0, 0]))
        assert mags[0] - mags[1] == pytest.approx(10.0, abs=0.5)

    def test_matches_fft_baseline_internals(self, scalar_fde):
        # the FFT baseline is H(jw) evaluation + IFFT: cross-check one
        # frequency pencil against transfer_function
        from repro.baselines import simulate_fft

        T, N = 4.0, 64
        res = simulate_fft(scalar_fde, lambda t: np.sin(2 * np.pi * t / T), T, N)
        # reconstruct the spectrum of the states and compare the ratio
        u_f = np.fft.rfft(res.input_values[0])
        x_f = np.fft.rfft(res.state_values[0])
        k = 1  # the driven bin
        w = 2.0 * np.pi * k / T
        expected = transfer_function(scalar_fde, 1j * w)[0, 0]
        assert x_f[k] / u_f[k] == pytest.approx(expected, rel=1e-10)


class TestDCGain:
    def test_integer_system(self, scalar_ode):
        assert dc_gain(scalar_ode)[0, 0] == pytest.approx(1.0)

    def test_fractional_system(self, scalar_fde):
        assert dc_gain(scalar_fde)[0, 0] == pytest.approx(1.0)

    def test_matches_long_time_response(self):
        from repro.core import simulate_opm

        system = DescriptorSystem([[1.0]], [[-2.0]], [[3.0]])
        res = simulate_opm(system, 1.0, (20.0, 400))
        assert res.coefficients[0, -1] == pytest.approx(
            dc_gain(system)[0, 0], rel=1e-4
        )

    def test_transmission_line_port_gain(self):
        # terminated line: DC input current splits over the resistive
        # network; gain must be positive and below the termination value
        from repro.circuits import fractional_line_model

        model = fractional_line_model()
        g = dc_gain(model)
        assert g.shape == (2, 2)
        assert 0.0 < g[0, 0] < 50.0
        np.testing.assert_allclose(g, g.T, atol=1e-12)  # reciprocity

"""Tests for error metrics (paper eq. (30))."""

import numpy as np
import pytest

from repro.analysis import (
    average_relative_error_db,
    l2_norm,
    linf_error,
    relative_error_db,
)


class TestRelativeErrorDb:
    def test_ten_percent_is_minus_twenty(self):
        assert relative_error_db([1.0, 0.0], [1.1, 0.0]) == pytest.approx(-20.0)

    def test_equal_waveforms_minus_inf(self):
        assert relative_error_db([1.0, 2.0], [1.0, 2.0]) == -np.inf

    def test_one_percent_is_minus_forty(self):
        ref = np.ones(100)
        test = ref * 1.01
        assert relative_error_db(ref, test) == pytest.approx(-40.0)

    def test_reference_in_denominator(self):
        # asymmetric: the first argument normalises
        a = np.array([1.0])
        b = np.array([2.0])
        assert relative_error_db(a, b) == pytest.approx(0.0)  # |2-1|/|1|
        assert relative_error_db(b, a) == pytest.approx(-20.0 * np.log10(2.0))

    def test_matrix_input_flattened(self):
        ref = np.ones((2, 4))
        test = np.ones((2, 4)) * 1.1
        assert relative_error_db(ref, test) == pytest.approx(-20.0)

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError, match="zero"):
            relative_error_db([0.0, 0.0], [1.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error_db([1.0], [1.0, 2.0])


class TestAverageRelativeErrorDb:
    def test_averages_per_output(self):
        ref = np.array([[1.0, 1.0], [10.0, 10.0]])
        test = np.array([[1.1, 1.1], [10.1, 10.1]])  # 10% and 1%
        expected = (-20.0 + -40.0) / 2.0
        assert average_relative_error_db(ref, test) == pytest.approx(expected)

    def test_small_output_not_masked(self):
        # a tiny-but-wrong output dominates the average, unlike a
        # flattened norm where the big output would hide it
        ref = np.array([[1e-6, 1e-6], [1.0, 1.0]])
        test = np.array([[2e-6, 2e-6], [1.0 + 1e-9, 1.0]])
        avg = average_relative_error_db(ref, test)
        flat = relative_error_db(ref, test)
        assert avg > flat + 20.0  # the per-output view is much worse

    def test_1d_promoted(self):
        assert average_relative_error_db([1.0, 0.0], [1.1, 0.0]) == pytest.approx(-20.0)


class TestSimpleNorms:
    def test_l2(self):
        assert l2_norm([3.0, 4.0]) == pytest.approx(5.0)

    def test_linf(self):
        assert linf_error([1.0, 2.0], [1.5, 1.0]) == pytest.approx(1.0)

    def test_linf_shape_check(self):
        with pytest.raises(ValueError):
            linf_error([1.0], [1.0, 2.0])

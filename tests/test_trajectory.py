"""Tests for the perf-trajectory guard (``benchmarks/trajectory.py``).

The guard is a standalone stdlib script (CI runs it before trusting a
green benchmark step), so it is loaded here from its file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "trajectory.py"

spec = importlib.util.spec_from_file_location("trajectory", SCRIPT)
trajectory = importlib.util.module_from_spec(spec)
spec.loader.exec_module(trajectory)


def scaling_payload(**overrides) -> dict:
    metrics = {
        "warm_session_speedup": {"value": 9.0, "claim": ">= 5x"},
        "batched_sweep_speedup": {"value": 4.0, "claim": ">= 3x"},
        "windowed_march_speedup": {"value": 2.4, "claim": ">= 1.8x"},
        "parallel_ensemble_speedup": {
            "value": 3.2, "claim": ">= 2.5x", "enforced": True, "cores": 8,
        },
        "cross_basis_coefficient_ratio": {"value": 42.0, "claim": ">= 10x"},
        "mor_reduced_sweep": {"value": 5.7, "claim": ">= 5x"},
        "service_coalesced_throughput": {"value": 8.2, "claim": ">= 3x"},
        "soe_long_march": {"value": 4.7, "claim": ">= 3x"},
        "hierarchy_flatten_throughput": {
            "value": 30000.0, "claim": ">= 5,000 instances/s",
        },
        "method_zoo_opm_digits": {"value": 3.2, "claim": ">= 3 digits"},
        "method_zoo_gl_digits": {"value": 2.8, "claim": ">= 2.5 digits"},
        "method_zoo_jacobi_digits": {"value": 3.3, "claim": ">= 3 digits"},
        "method_zoo_oustaloup_digits": {"value": 1.7, "claim": ">= 1.5 digits"},
    }
    metrics.update(overrides)
    metrics = {k: v for k, v in metrics.items() if v is not None}
    return {"schema": 1, "metrics": metrics}


class TestBuildTrajectory:
    def test_merges_and_stamps(self):
        merged = trajectory.build_trajectory(
            scaling_payload(), {"entries": []}, sha="abc123", date="2026-07-26"
        )
        assert merged["commit"] == "abc123"
        assert merged["date"] == "2026-07-26"
        assert merged["bases"] == {"entries": []}
        names = [c["name"] for c in merged["claims"]]
        assert names == [name for name, _, _ in trajectory.REQUIRED_CLAIMS]
        assert all(c["present"] and c["meets_threshold"]
                   for c in merged["claims"])

    def test_missing_claim_detected(self):
        merged = trajectory.build_trajectory(
            scaling_payload(parallel_ensemble_speedup=None), None, sha="x"
        )
        failures = trajectory.check(merged, enforce=False)
        assert len(failures) == 1
        assert "parallel_ensemble_speedup" in failures[0]
        assert "missing" in failures[0]

    def test_below_floor_only_fails_with_enforce(self):
        merged = trajectory.build_trajectory(
            scaling_payload(batched_sweep_speedup={"value": 1.2}), None, sha="x"
        )
        assert trajectory.check(merged, enforce=False) == []
        failures = trajectory.check(merged, enforce=True)
        assert len(failures) == 1
        assert "batched_sweep_speedup" in failures[0]

    def test_windowed_floor_matches_its_bench_assertion(self):
        """The windowed bench asserts >= 1.8x over a 30x horizon (five
        measured runs span 2.33-2.50x); since the recalibration the
        trajectory target IS the enforced floor -- no aspirational
        gap."""
        merged = trajectory.build_trajectory(
            scaling_payload(windowed_march_speedup={"value": 1.8}), None, sha="x"
        )
        assert trajectory.check(merged, enforce=True) == []
        merged = trajectory.build_trajectory(
            scaling_payload(windowed_march_speedup={"value": 1.75}), None, sha="x"
        )
        assert len(trajectory.check(merged, enforce=True)) == 1

    def test_every_target_equals_its_floor(self):
        """A claimed number is an enforced number (windowed-march
        recalibration): no claim may advertise a target above what the
        guard actually enforces."""
        for name, threshold, floor in trajectory.REQUIRED_CLAIMS:
            assert threshold == floor, name

    def test_unenforced_environment_is_exempt(self):
        low = {"value": 0.7, "enforced": False, "cores": 1}
        merged = trajectory.build_trajectory(
            scaling_payload(parallel_ensemble_speedup=low), None, sha="x"
        )
        assert trajectory.check(merged, enforce=True) == []

    def test_method_zoo_claims_derive_from_methods_payload(self):
        """BENCH_methods.json alone satisfies the zoo claims."""
        scaling = scaling_payload(
            method_zoo_opm_digits=None,
            method_zoo_gl_digits=None,
            method_zoo_jacobi_digits=None,
            method_zoo_oustaloup_digits=None,
        )
        methods = {
            "summary": {
                name: {"digits": digits, "worst_case": "w", "fine_m": 512,
                       "cases_validated": 5}
                for name, digits in (
                    ("opm", 3.2), ("gl", 2.8), ("jacobi", 3.3),
                    ("oustaloup", 1.7),
                )
            }
        }
        merged = trajectory.build_trajectory(scaling, None, methods, sha="x")
        assert merged["methods"] is methods
        assert trajectory.check(merged, enforce=True) == []
        zoo = {c["name"]: c for c in merged["claims"]
               if c["name"].startswith("method_zoo_")}
        assert zoo["method_zoo_gl_digits"]["value"] == 2.8

    def test_scaling_metrics_win_over_methods_payload(self):
        """register_metric records (richer meta) take precedence."""
        methods = {"summary": {"gl": {"digits": 0.1}}}
        merged = trajectory.build_trajectory(
            scaling_payload(), None, methods, sha="x"
        )
        zoo = {c["name"]: c for c in merged["claims"]}
        assert zoo["method_zoo_gl_digits"]["value"] == 2.8

    def test_method_zoo_below_floor_fails_enforce(self):
        merged = trajectory.build_trajectory(
            scaling_payload(method_zoo_oustaloup_digits={"value": 1.2}),
            None, sha="x",
        )
        failures = trajectory.check(merged, enforce=True)
        assert len(failures) == 1
        assert "method_zoo_oustaloup_digits" in failures[0]


class TestMain:
    @pytest.fixture
    def out_dir(self, tmp_path):
        scaling = tmp_path / "BENCH_scaling.json"
        scaling.write_text(json.dumps(scaling_payload()))
        bases = tmp_path / "BENCH_bases.json"
        bases.write_text(json.dumps({"entries": [{"basis": "chebyshev"}]}))
        return tmp_path

    def argv(self, out_dir, *extra):
        return [
            "--scaling", str(out_dir / "BENCH_scaling.json"),
            "--bases", str(out_dir / "BENCH_bases.json"),
            "--methods", str(out_dir / "BENCH_methods.json"),
            "--out", str(out_dir / "BENCH_trajectory.json"),
            "--sha", "deadbeef", *extra,
        ]

    def test_green_run_writes_artifact(self, out_dir, capsys):
        assert trajectory.main(self.argv(out_dir, "--enforce")) == 0
        merged = json.loads((out_dir / "BENCH_trajectory.json").read_text())
        assert merged["commit"] == "deadbeef"
        assert merged["bases"]["entries"][0]["basis"] == "chebyshev"
        assert "warm_session_speedup" in capsys.readouterr().out

    def test_methods_artifact_merged_when_present(self, out_dir):
        payload = scaling_payload(method_zoo_gl_digits=None)
        (out_dir / "BENCH_scaling.json").write_text(json.dumps(payload))
        methods = {"schema": 1, "summary": {"gl": {"digits": 2.9}}}
        (out_dir / "BENCH_methods.json").write_text(json.dumps(methods))
        assert trajectory.main(self.argv(out_dir, "--enforce")) == 0
        merged = json.loads((out_dir / "BENCH_trajectory.json").read_text())
        assert merged["methods"]["summary"]["gl"]["digits"] == 2.9

    def test_missing_metric_fails(self, out_dir, capsys):
        payload = scaling_payload(warm_session_speedup=None)
        (out_dir / "BENCH_scaling.json").write_text(json.dumps(payload))
        assert trajectory.main(self.argv(out_dir)) == 1
        assert "missing" in capsys.readouterr().err

    def test_missing_scaling_file_fails(self, tmp_path, capsys):
        code = trajectory.main(
            ["--scaling", str(tmp_path / "nope.json"),
             "--out", str(tmp_path / "t.json")]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_enforce_fails_on_regression(self, out_dir, capsys):
        payload = scaling_payload(
            parallel_ensemble_speedup={"value": 1.1, "enforced": True}
        )
        (out_dir / "BENCH_scaling.json").write_text(json.dumps(payload))
        assert trajectory.main(self.argv(out_dir)) == 0  # presence only
        assert trajectory.main(self.argv(out_dir, "--enforce")) == 1
        assert "below its enforcement floor" in capsys.readouterr().err

"""Direct unit tests for the shared memory-tail machinery.

:mod:`repro.fractional.history` was previously exercised only through
the GL stepper and the marching engine; these tests pin its contracts
directly -- chunked evaluation, short histories, the empty-history
``None`` protocol, and non-contiguous (unequal-width) block appends.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.fractional.history import HistoryTail, history_dot, history_weights


def power_law_coeffs(n: int, alpha: float = 0.7) -> np.ndarray:
    """A GL-like kernel: unit head, power-law decaying lags."""
    lags = np.arange(1, n, dtype=float)
    return np.concatenate([[1.0], lags ** (-1.0 - alpha)])


def brute_force_tail(blocks, coeffs, count):
    """O(N * count) reference: every past column dotted per future column."""
    X = np.hstack(blocks)
    n, N = X.shape
    H = np.zeros((n, count))
    for j in range(count):
        for i in range(N):
            H[:, j] += coeffs[N + j - i] * X[:, i]
    return H


class TestHistoryWeights:
    def test_block_matches_coefficient_indexing(self):
        coeffs = power_law_coeffs(32)
        W = history_weights(coeffs, 5, 4)
        assert W.shape == (5, 4)
        for i in range(5):
            for j in range(4):
                assert W[i, j] == coeffs[5 + j - i]

    def test_rows_limit_is_a_prefix(self):
        coeffs = power_law_coeffs(64)
        full = history_weights(coeffs, 10, 6)
        part = history_weights(coeffs, 10, 6, rows=3)
        np.testing.assert_array_equal(part, full[:3])

    def test_rejects_short_coefficients(self):
        with pytest.raises(SolverError, match="full marching horizon"):
            history_weights(power_law_coeffs(8), 6, 4)

    def test_rejects_bad_shape(self):
        with pytest.raises(SolverError):
            history_weights(power_law_coeffs(8), -1, 4)
        with pytest.raises(SolverError):
            history_weights(power_law_coeffs(8), 2, 0)


class TestHistoryTail:
    def test_empty_history_returns_none(self):
        tail = HistoryTail(power_law_coeffs(16))
        assert tail.tail(4) is None
        assert tail.columns == 0

    def test_matches_brute_force(self, rng):
        coeffs = power_law_coeffs(80)
        blocks = [rng.standard_normal((3, 8)) for _ in range(5)]
        tail = HistoryTail(coeffs)
        for blk in blocks:
            tail.append(blk)
        np.testing.assert_allclose(
            tail.tail(8), brute_force_tail(blocks, coeffs, 8), rtol=1e-13
        )

    def test_chunked_equals_unchunked(self, rng):
        # chunking only repartitions the GEMM accumulation, so the two
        # evaluations agree to float round-off for every chunk size
        coeffs = power_law_coeffs(200)
        blocks = [rng.standard_normal((4, 10)) for _ in range(8)]
        whole = HistoryTail(coeffs)
        for blk in blocks:
            whole.append(blk)
        reference = whole.tail(10)
        for chunk in (1, 3, 7, 10, 64):
            chunked = HistoryTail(coeffs, block_columns=chunk)
            for blk in blocks:
                chunked.append(blk)
            np.testing.assert_allclose(
                chunked.tail(10), reference, rtol=0, atol=1e-14
            )

    def test_count_larger_than_history(self, rng):
        # only 6 solved columns but 20 requested future columns: the
        # weight block is wider than it is tall, never out of range
        coeffs = power_law_coeffs(40)
        block = rng.standard_normal((2, 6))
        tail = HistoryTail(coeffs)
        tail.append(block)
        np.testing.assert_allclose(
            tail.tail(20), brute_force_tail([block], coeffs, 20), rtol=1e-13
        )

    def test_non_contiguous_block_widths(self, rng):
        # marches append equal windows, but the contract allows any mix
        coeffs = power_law_coeffs(120)
        blocks = [
            rng.standard_normal((3, w)) for w in (1, 7, 2, 13, 5)
        ]
        tail = HistoryTail(coeffs, block_columns=4)
        for blk in blocks:
            tail.append(blk)
        assert tail.columns == 28
        np.testing.assert_allclose(
            tail.tail(9), brute_force_tail(blocks, coeffs, 9), rtol=1e-13
        )

    def test_agrees_with_history_dot(self, rng):
        # the marching block view and the GL per-step view are the same
        # convolution: column j of the block tail equals history_dot at
        # step N + j restricted to the first N solved columns
        coeffs = power_law_coeffs(64)
        X = rng.standard_normal((3, 12))
        tail = HistoryTail(coeffs)
        tail.append(X)
        H = tail.tail(4)
        for j in range(4):
            padded = np.hstack([X, np.zeros((3, j))])
            np.testing.assert_allclose(
                H[:, j], history_dot(padded, coeffs, 12 + j), rtol=1e-13
            )

    def test_rejects_bad_blocks(self):
        tail = HistoryTail(power_law_coeffs(8))
        with pytest.raises(SolverError):
            tail.append(np.zeros(3))
        with pytest.raises(SolverError):
            HistoryTail(np.zeros((2, 2)))
        with pytest.raises(SolverError):
            HistoryTail(np.array([]))

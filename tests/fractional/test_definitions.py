"""Tests and properties of the Grünwald-Letnikov weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fractional import gl_weights


class TestKnownValues:
    def test_alpha_one_finite_difference(self):
        np.testing.assert_allclose(gl_weights(1.0, 5), [1, -1, 0, 0, 0], atol=1e-15)

    def test_alpha_two_second_difference(self):
        np.testing.assert_allclose(gl_weights(2.0, 5), [1, -2, 1, 0, 0], atol=1e-15)

    def test_alpha_half_first_terms(self):
        w = gl_weights(0.5, 4)
        np.testing.assert_allclose(w, [1.0, -0.5, -0.125, -0.0625])

    def test_binomial_identity(self):
        from scipy.special import binom

        alpha, k = 0.7, np.arange(10)
        expected = (-1.0) ** k * binom(alpha, k)
        np.testing.assert_allclose(gl_weights(alpha, 10), expected, atol=1e-12)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            gl_weights(0.5, 0)


@given(alpha=st.floats(min_value=0.05, max_value=0.999))
@settings(max_examples=40, deadline=None)
def test_weights_signs_for_alpha_below_one(alpha):
    """w_0 = 1 > 0 and w_j < 0 for j >= 1 when 0 < alpha < 1."""
    w = gl_weights(alpha, 50)
    assert w[0] == 1.0
    assert np.all(w[1:] < 0.0)


@given(alpha=st.floats(min_value=0.05, max_value=0.999))
@settings(max_examples=40, deadline=None)
def test_weights_partial_sum_analytic_decay(alpha):
    """Partial sums stay positive and follow K^{-alpha}/Gamma(1-alpha).

    The exact identity is ``sum_{j<=K} w_j = (-1)^K binom(alpha-1, K)``,
    asymptotically ``K^{-alpha} / Gamma(1 - alpha)``.
    """
    from scipy.special import gamma

    K = 4000
    w = gl_weights(alpha, K)
    partial = np.cumsum(w)
    assert np.all(partial > -1e-12)
    assert partial[-1] < partial[100]
    expected_tail = K ** (-alpha) / gamma(1.0 - alpha)
    assert partial[-1] == pytest.approx(expected_tail, rel=0.2)


@given(
    alpha=st.floats(min_value=0.1, max_value=1.9),
    count=st.integers(min_value=2, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_weight_magnitudes_decay_eventually(alpha, count):
    w = np.abs(gl_weights(alpha, count))
    tail = w[max(3, count // 2) :]
    if tail.size >= 2:
        assert np.all(np.diff(tail) <= 1e-15)

"""Tests for the Grünwald-Letnikov baseline solver."""

import numpy as np
import pytest

from repro.core import DescriptorSystem, FractionalDescriptorSystem, simulate_opm
from repro.errors import ModelError
from repro.fractional import fde_step_response, simulate_grunwald_letnikov


class TestAccuracy:
    def test_half_order_step_response(self, scalar_fde):
        res = simulate_grunwald_letnikov(scalar_fde, 1.0, 2.0, 1000)
        t = np.linspace(0.2, 1.8, 9)
        np.testing.assert_allclose(
            res.states(t)[0], fde_step_response(0.5, 1.0, t), atol=3e-3
        )

    def test_first_order_convergence_rate(self, scalar_fde):
        t = np.linspace(0.2, 1.8, 9)
        exact = fde_step_response(0.5, 1.0, t)
        errs = [
            np.max(np.abs(simulate_grunwald_letnikov(scalar_fde, 1.0, 2.0, n).states(t)[0] - exact))
            for n in (200, 400, 800)
        ]
        rate = np.log2(errs[0] / errs[2]) / 2.0
        assert 0.6 < rate < 1.4  # GL is first-order accurate

    def test_alpha_one_equals_backward_euler(self, scalar_ode):
        from repro.baselines import simulate_transient

        gl = simulate_grunwald_letnikov(scalar_ode, 1.0, 3.0, 300)
        be = simulate_transient(scalar_ode, 1.0, 3.0, 300, method="backward-euler")
        np.testing.assert_allclose(gl.state_values, be.state_values, atol=1e-10)

    def test_agrees_with_opm(self, scalar_fde):
        gl = simulate_grunwald_letnikov(scalar_fde, 1.0, 2.0, 2000)
        opm = simulate_opm(scalar_fde, 1.0, (2.0, 2000))
        t = np.linspace(0.3, 1.7, 7)
        np.testing.assert_allclose(gl.states(t)[0], opm.states(t)[0], atol=3e-3)

    def test_mimo_fractional(self):
        system = FractionalDescriptorSystem(
            0.5, np.eye(2), -np.diag([1.0, 2.0]), np.eye(2)
        )
        res = simulate_grunwald_letnikov(
            system, lambda t: np.vstack([np.ones_like(t), np.sin(t)]), 1.0, 200
        )
        assert res.state_values.shape == (2, 201)

    def test_x0_shift(self):
        from repro.fractional import fde_relaxation

        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]], x0=[1.0])
        res = simulate_grunwald_letnikov(system, 0.0, 1.0, 2000)
        t = np.linspace(0.1, 0.9, 8)
        np.testing.assert_allclose(
            res.states(t)[0], fde_relaxation(0.5, 1.0, t), atol=2e-2
        )


class TestCaputoInitialState:
    """Regression: fractional nonzero-x0 handling is the *Caputo* scheme.

    The naive classical shift (solve with zero IC, add ``x0``) is
    invalid under the raw RL/GL convention -- the fractional derivative
    of the constant ``x0`` is nonzero -- so the solver must apply the GL
    operator to the deviation ``z = x - x0`` with the ``A x0`` forcing
    correction.  These tests pin that behaviour to the analytic
    Mittag-Leffler relaxation ``x(t) = x0 E_alpha(-lam t^alpha)``.
    """

    @pytest.mark.parametrize("alpha", [0.4, 0.6, 0.9])
    def test_relaxation_matches_mittag_leffler(self, alpha):
        from repro.fractional import fde_relaxation

        lam, x0 = 1.0, 2.0
        system = FractionalDescriptorSystem(
            alpha, [[1.0]], [[-lam]], [[0.0]], x0=[x0]
        )
        res = simulate_grunwald_letnikov(system, 0.0, 2.0, 4000)
        t = res.times[1:]
        exact = fde_relaxation(alpha, lam, t, x0=x0)
        err = np.abs(res.state_values[0, 1:] - exact)
        # the t^alpha solution singularity concentrates the error at the
        # first few nodes; away from the boundary layer the scheme is tight
        assert np.max(err) < 5e-2
        assert np.max(err[t >= 0.1]) < 2e-3

    def test_converges_to_mittag_leffler(self):
        """Errors shrink with h (ruling out an O(1) convention mismatch)."""
        from repro.fractional import fde_relaxation

        alpha, lam, x0 = 0.6, 1.0, 1.0
        system = FractionalDescriptorSystem(
            alpha, [[1.0]], [[-lam]], [[0.0]], x0=[x0]
        )
        errs = []
        for n in (200, 800, 3200):
            res = simulate_grunwald_letnikov(system, 0.0, 2.0, n)
            t = res.times[1:]
            errs.append(
                np.max(np.abs(res.state_values[0, 1:] - fde_relaxation(alpha, lam, t, x0=x0)))
            )
        # a wrong (raw-RL shift) scheme stalls at O(1); the Caputo scheme
        # converges ~O(h^alpha) near the t=0 singularity
        assert errs[2] < 0.5 * errs[0]
        rate = np.log(errs[0] / errs[2]) / np.log(16.0)
        assert 0.3 < rate < 1.3

    def test_opm_agrees_with_gl_for_nonzero_x0(self):
        """Both fractional paths use the same Caputo shift."""
        alpha, x0 = 0.7, 1.5
        system = FractionalDescriptorSystem(
            alpha, [[1.0]], [[-2.0]], [[1.0]], x0=[x0]
        )
        u = lambda t: np.sin(t)  # noqa: E731
        gl = simulate_grunwald_letnikov(system, u, 2.0, 4000)
        opm = simulate_opm(system, u, (2.0, 4000))
        t = np.linspace(0.2, 1.8, 9)
        np.testing.assert_allclose(
            gl.states(t)[0], opm.states_smooth(t)[0], atol=3e-3
        )

    def test_alpha_above_one_with_x0_rejected(self):
        with pytest.raises(ModelError):
            FractionalDescriptorSystem(1.5, [[1.0]], [[-1.0]], [[1.0]], x0=[1.0])


class TestBookkeeping:
    def test_node_zero_is_initial_state(self, scalar_fde):
        res = simulate_grunwald_letnikov(scalar_fde, 1.0, 1.0, 50)
        np.testing.assert_array_equal(res.state_values[:, 0], [0.0])

    def test_info_fields(self, scalar_fde):
        res = simulate_grunwald_letnikov(scalar_fde, 1.0, 1.0, 50)
        assert res.info["method"] == "grunwald-letnikov"
        assert res.info["alpha"] == 0.5
        assert res.info["h"] == pytest.approx(0.02)

    def test_rejects_bad_input_type(self, scalar_fde):
        with pytest.raises(ModelError):
            simulate_grunwald_letnikov(scalar_fde, np.zeros(3), 1.0, 10)

    def test_rejects_bad_t_end(self, scalar_fde):
        with pytest.raises(ValueError):
            simulate_grunwald_letnikov(scalar_fde, 1.0, -1.0, 10)

    def test_rejects_wrong_system(self):
        with pytest.raises(TypeError):
            simulate_grunwald_letnikov("sys", 1.0, 1.0, 10)

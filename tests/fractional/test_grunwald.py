"""Tests for the Grünwald-Letnikov baseline solver."""

import numpy as np
import pytest

from repro.core import DescriptorSystem, FractionalDescriptorSystem, simulate_opm
from repro.errors import ModelError
from repro.fractional import fde_step_response, simulate_grunwald_letnikov


class TestAccuracy:
    def test_half_order_step_response(self, scalar_fde):
        res = simulate_grunwald_letnikov(scalar_fde, 1.0, 2.0, 1000)
        t = np.linspace(0.2, 1.8, 9)
        np.testing.assert_allclose(
            res.states(t)[0], fde_step_response(0.5, 1.0, t), atol=3e-3
        )

    def test_first_order_convergence_rate(self, scalar_fde):
        t = np.linspace(0.2, 1.8, 9)
        exact = fde_step_response(0.5, 1.0, t)
        errs = [
            np.max(np.abs(simulate_grunwald_letnikov(scalar_fde, 1.0, 2.0, n).states(t)[0] - exact))
            for n in (200, 400, 800)
        ]
        rate = np.log2(errs[0] / errs[2]) / 2.0
        assert 0.6 < rate < 1.4  # GL is first-order accurate

    def test_alpha_one_equals_backward_euler(self, scalar_ode):
        from repro.baselines import simulate_transient

        gl = simulate_grunwald_letnikov(scalar_ode, 1.0, 3.0, 300)
        be = simulate_transient(scalar_ode, 1.0, 3.0, 300, method="backward-euler")
        np.testing.assert_allclose(gl.state_values, be.state_values, atol=1e-10)

    def test_agrees_with_opm(self, scalar_fde):
        gl = simulate_grunwald_letnikov(scalar_fde, 1.0, 2.0, 2000)
        opm = simulate_opm(scalar_fde, 1.0, (2.0, 2000))
        t = np.linspace(0.3, 1.7, 7)
        np.testing.assert_allclose(gl.states(t)[0], opm.states(t)[0], atol=3e-3)

    def test_mimo_fractional(self):
        system = FractionalDescriptorSystem(
            0.5, np.eye(2), -np.diag([1.0, 2.0]), np.eye(2)
        )
        res = simulate_grunwald_letnikov(
            system, lambda t: np.vstack([np.ones_like(t), np.sin(t)]), 1.0, 200
        )
        assert res.state_values.shape == (2, 201)

    def test_x0_shift(self):
        from repro.fractional import fde_relaxation

        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]], x0=[1.0])
        res = simulate_grunwald_letnikov(system, 0.0, 1.0, 2000)
        t = np.linspace(0.1, 0.9, 8)
        np.testing.assert_allclose(
            res.states(t)[0], fde_relaxation(0.5, 1.0, t), atol=2e-2
        )


class TestBookkeeping:
    def test_node_zero_is_initial_state(self, scalar_fde):
        res = simulate_grunwald_letnikov(scalar_fde, 1.0, 1.0, 50)
        np.testing.assert_array_equal(res.state_values[:, 0], [0.0])

    def test_info_fields(self, scalar_fde):
        res = simulate_grunwald_letnikov(scalar_fde, 1.0, 1.0, 50)
        assert res.info["method"] == "grunwald-letnikov"
        assert res.info["alpha"] == 0.5
        assert res.info["h"] == pytest.approx(0.02)

    def test_rejects_bad_input_type(self, scalar_fde):
        with pytest.raises(ModelError):
            simulate_grunwald_letnikov(scalar_fde, np.zeros(3), 1.0, 10)

    def test_rejects_bad_t_end(self, scalar_fde):
        with pytest.raises(ValueError):
            simulate_grunwald_letnikov(scalar_fde, 1.0, -1.0, 10)

    def test_rejects_wrong_system(self):
        with pytest.raises(TypeError):
            simulate_grunwald_letnikov("sys", 1.0, 1.0, 10)

"""Unit tests for certified sum-of-exponentials memory compression."""

import numpy as np
import pytest

from repro.errors import MemoryCompressionError, SolverError
from repro.fractional.definitions import (
    cached_gl_weights,
    clear_gl_weight_cache,
    gl_weight_cache_stats,
    gl_weights,
)
from repro.fractional.history import HistoryTail
from repro.fractional.soe import (
    DEFAULT_MEMORY_RTOL,
    SoeFit,
    SoePlan,
    SoeTail,
    clear_fit_cache,
    fit_cache_stats,
    fit_continuous_kernel,
    fit_discrete_kernel,
    require_certified,
    resolve_memory,
)


def gl_kernel(alpha: float, n: int) -> np.ndarray:
    """Negated GL binomial tail: the memory coefficients of the scheme."""
    return -gl_weights(alpha, n)


class TestResolveMemory:
    def test_exact_spellings(self):
        for memory in (None, "exact", "EXACT", "off", "none", "false", ""):
            assert resolve_memory(memory) is None

    def test_soe_default_plan(self):
        plan = resolve_memory("soe")
        assert isinstance(plan, SoePlan)
        assert plan.rtol == DEFAULT_MEMORY_RTOL

    def test_rtol_override_rebuilds_plan(self):
        plan = resolve_memory("soe", 1e-6)
        assert plan.rtol == 1e-6
        custom = SoePlan(rtol=1e-4, max_modes=50)
        again = resolve_memory(custom, 1e-5)
        assert again.rtol == 1e-5 and again.max_modes == 50

    def test_plan_passthrough(self):
        plan = SoePlan(rtol=1e-7)
        assert resolve_memory(plan) is plan

    def test_rtol_with_exact_rejected(self):
        with pytest.raises(SolverError, match="memory_rtol"):
            resolve_memory("exact", 1e-8)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SolverError, match="memory"):
            resolve_memory("fourier")
        with pytest.raises(SolverError):
            resolve_memory(3.5)

    def test_plan_validation(self):
        with pytest.raises(SolverError):
            SoePlan(rtol=2.0)
        with pytest.raises(SolverError):
            SoePlan(max_modes=1)
        with pytest.raises(SolverError):
            SoePlan(exact_lags=0)

    def test_fingerprints_distinguish_plans(self):
        assert SoePlan().fingerprint() != SoePlan(rtol=1e-6).fingerprint()
        assert SoePlan().fingerprint() != SoePlan(fallback=False).fingerprint()


class TestDiscreteFit:
    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.9])
    def test_gl_kernel_certifies(self, alpha):
        coeffs = gl_kernel(alpha, 4000)
        fit = fit_discrete_kernel(coeffs, 65, 3999)
        assert fit.certified
        assert fit.bound <= DEFAULT_MEMORY_RTOL
        # the certificate is exact: recompute it independently
        lags = np.arange(65, 4000)
        err = np.abs(fit.evaluate(lags) - coeffs[65:4000])
        bound = err.sum() / np.abs(coeffs[65:4000]).sum()
        assert bound == pytest.approx(fit.bound, rel=1e-9)

    def test_zero_kernel_short_circuits(self):
        fit = fit_discrete_kernel(np.zeros(100), 5, 99)
        assert fit.certified and fit.bound == 0.0
        np.testing.assert_array_equal(fit.evaluate(np.arange(5, 100)), 0.0)

    def test_uncertifiable_fit_reports_honestly(self):
        # a tiny dictionary cannot reach 1e-10 on a long power-law tail
        plan = SoePlan(max_modes=4)
        fit = fit_discrete_kernel(gl_kernel(0.5, 3000), 10, 2999, plan)
        assert not fit.certified
        assert fit.bound > plan.rtol

    def test_validates_lag_range(self):
        coeffs = gl_kernel(0.5, 50)
        with pytest.raises(SolverError):
            fit_discrete_kernel(coeffs, 0, 10)
        with pytest.raises(SolverError, match="full horizon"):
            fit_discrete_kernel(coeffs, 5, 200)

    def test_fit_cache_reuses(self):
        clear_fit_cache()
        coeffs = gl_kernel(0.5, 500)
        fit_discrete_kernel(coeffs, 10, 499)
        assert fit_cache_stats() == {"entries": 1, "reuses": 0}
        again = fit_discrete_kernel(coeffs, 10, 499)
        assert fit_cache_stats()["reuses"] == 1
        assert again is fit_discrete_kernel(coeffs, 10, 499)
        # a different plan is a different fit
        fit_discrete_kernel(coeffs, 10, 499, SoePlan(rtol=1e-6))
        assert fit_cache_stats()["entries"] == 2


class TestContinuousFit:
    @pytest.mark.parametrize("alpha", [0.4, 0.9])
    def test_riemann_liouville_kernel_certifies(self, alpha):
        import math

        window = 0.05
        fit = fit_continuous_kernel(alpha, 40, window)
        assert fit.certified and fit.kind == "continuous"
        t = np.linspace(window, 40 * window, 500)
        exact = t ** (alpha - 1.0) / math.gamma(alpha)
        rel = np.max(np.abs(fit.evaluate(t) - exact) / np.abs(exact))
        assert rel < 1e-7

    def test_window_rescaling_reuses_dimensionless_fit(self):
        clear_fit_cache()
        a = fit_continuous_kernel(0.5, 30, 0.1)
        b = fit_continuous_kernel(0.5, 30, 0.2)
        assert fit_cache_stats()["reuses"] == 1
        # same dimensionless core, different scaling
        np.testing.assert_allclose(a.rates * 0.1, b.rates * 0.2)

    def test_validates_arguments(self):
        with pytest.raises(SolverError):
            fit_continuous_kernel(0.5, 1, 0.1)
        with pytest.raises(SolverError):
            fit_continuous_kernel(0.5, 10, 0.0)


class TestRequireCertified:
    def _bad_fit(self) -> SoeFit:
        return SoeFit(
            weights=np.ones(1), rates=np.array([0.5]), bound=1e-2,
            rtol=1e-10, lag_start=1, lag_stop=10,
        )

    def test_certified_passes(self):
        fit = fit_discrete_kernel(gl_kernel(0.5, 500), 10, 499)
        assert require_certified(fit, SoePlan(), "test") is True

    def test_fallback_records(self):
        assert require_certified(self._bad_fit(), SoePlan(), "test") is False

    def test_no_fallback_raises(self):
        with pytest.raises(MemoryCompressionError, match="certified"):
            require_certified(
                self._bad_fit(), SoePlan(fallback=False), "test"
            )


class TestSoeTail:
    def test_matches_exact_tail(self, rng):
        coeffs = gl_kernel(0.7, 1000)
        m, n_windows = 25, 12
        fit = fit_discrete_kernel(coeffs, m + 1, n_windows * m - 1)
        assert fit.certified
        exact = HistoryTail(coeffs, block_columns=m)
        soe = SoeTail(coeffs, fit)
        for _ in range(n_windows - 1):
            block = rng.standard_normal((4, m))
            exact.append(block)
            soe.append(block)
            # absolute error <= bound * sum|w| * max|x| <= ~1e-9 here
            err = np.max(np.abs(soe.tail(m) - exact.tail(m)))
            assert err < 1e-8

    def test_single_block_is_exact(self, rng):
        # with only one appended block there is no compressed region yet
        coeffs = gl_kernel(0.5, 200)
        fit = fit_discrete_kernel(coeffs, 11, 199)
        block = rng.standard_normal((3, 10))
        soe = SoeTail(coeffs, fit)
        exact = HistoryTail(coeffs)
        assert soe.tail(10) is None and exact.tail(10) is None
        soe.append(block)
        exact.append(block)
        np.testing.assert_allclose(soe.tail(10), exact.tail(10), rtol=1e-13)

    def test_rejects_uncovered_lags(self, rng):
        coeffs = gl_kernel(0.5, 2000)
        fit = fit_discrete_kernel(coeffs, 11, 39)  # too short a range
        soe = SoeTail(coeffs, fit)
        for _ in range(4):
            soe.append(rng.standard_normal((2, 10)))
        with pytest.raises(SolverError, match="cannot serve"):
            soe.tail(10)

    def test_rejects_continuous_fit(self):
        fit = fit_continuous_kernel(0.5, 10, 0.1)
        with pytest.raises(SolverError, match="discrete"):
            SoeTail(gl_kernel(0.5, 100), fit)


class TestGlWeightCache:
    def test_prefix_reuse(self):
        clear_gl_weight_cache()
        w = cached_gl_weights(0.5, 200)
        assert gl_weight_cache_stats() == {"entries": 1, "reuses": 0}
        np.testing.assert_array_equal(w, gl_weights(0.5, 200))
        shorter = cached_gl_weights(0.5, 50)
        assert gl_weight_cache_stats()["reuses"] == 1
        np.testing.assert_array_equal(shorter, gl_weights(0.5, 50))

    def test_distinct_alpha_distinct_entry(self):
        clear_gl_weight_cache()
        cached_gl_weights(0.5, 100)
        cached_gl_weights(0.7, 100)
        assert gl_weight_cache_stats()["entries"] == 2

    def test_cached_arrays_are_readonly(self):
        clear_gl_weight_cache()
        w = cached_gl_weights(0.5, 64)
        with pytest.raises(ValueError):
            w[0] = 2.0

"""Tests for the Mittag-Leffler function against closed forms."""

import numpy as np
import pytest
from scipy.special import erfcx

from repro.errors import ConvergenceError
from repro.fractional import mittag_leffler


class TestClosedForms:
    def test_exponential_alpha_one(self):
        z = np.linspace(-16.0, 3.0, 77)
        np.testing.assert_allclose(mittag_leffler(1.0, 1.0, z), np.exp(z), atol=1e-7)

    def test_exponential_far_negative(self):
        z = np.array([-50.0, -300.0])
        np.testing.assert_allclose(mittag_leffler(1.0, 1.0, z), np.exp(z), atol=1e-12)

    def test_cosine_alpha_two(self):
        x = np.linspace(0.05, 9.0, 61)
        np.testing.assert_allclose(
            mittag_leffler(2.0, 1.0, -(x**2)), np.cos(x), atol=1e-10
        )

    def test_cosh_alpha_two_positive(self):
        x = np.linspace(0.0, 3.0, 13)
        np.testing.assert_allclose(
            mittag_leffler(2.0, 1.0, x**2), np.cosh(x), rtol=1e-12
        )

    def test_erfcx_alpha_half_global(self):
        # E_{1/2,1}(z) = exp(z^2) erfc(-z) = erfcx(-z) for z <= 0
        z = -np.logspace(-2.0, 4.0, 150)
        ml = mittag_leffler(0.5, 1.0, z)
        np.testing.assert_allclose(ml, erfcx(-z), atol=1e-7, rtol=1e-6)

    def test_beta_two_alpha_one(self):
        # E_{1,2}(z) = (e^z - 1) / z
        z = np.linspace(-10.0, 2.0, 25)
        z = z[np.abs(z) > 1e-6]
        np.testing.assert_allclose(
            mittag_leffler(1.0, 2.0, z), (np.exp(z) - 1.0) / z, atol=1e-9
        )

    def test_sinh_form(self):
        # E_{2,2}(z^2) = sinh(z)/z
        z = np.linspace(0.1, 3.0, 11)
        np.testing.assert_allclose(
            mittag_leffler(2.0, 2.0, z**2), np.sinh(z) / z, rtol=1e-12
        )

    def test_value_at_zero(self):
        from scipy.special import gamma

        for beta in (0.5, 1.0, 2.5):
            assert mittag_leffler(0.7, beta, 0.0) == pytest.approx(1.0 / gamma(beta))


class TestBranchConsistency:
    @pytest.mark.parametrize("alpha,beta", [(0.5, 1.0), (0.5, 1.5), (0.8, 1.0), (1.5, 1.0), (1.2, 2.0)])
    def test_series_asymptotic_crossover_smooth(self, alpha, beta):
        # sample densely across the crossover radius; adjacent values
        # must differ by at most the local slope (no branch jumps)
        radius = 17.0**alpha
        z = -np.linspace(0.8 * radius, 1.2 * radius, 400)
        values = mittag_leffler(alpha, beta, z)
        jumps = np.abs(np.diff(values))
        median_jump = np.median(jumps)
        assert np.max(jumps) < 20.0 * median_jump + 1e-6

    def test_monotone_decay_on_negative_axis(self):
        # E_alpha(-x) is completely monotone for 0 < alpha <= 1
        x = np.logspace(-2, 3, 200)
        values = mittag_leffler(0.6, 1.0, -x)
        assert np.all(np.diff(values) < 1e-12)
        assert np.all(values > 0.0)


class TestValidation:
    def test_rejects_alpha_above_two(self):
        with pytest.raises(ValueError):
            mittag_leffler(2.5, 1.0, -1.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            mittag_leffler(0.0, 1.0, -1.0)

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError):
            mittag_leffler(0.5, -1.0, -1.0)

    def test_rejects_large_positive(self):
        with pytest.raises(ValueError, match="growing branch"):
            mittag_leffler(0.5, 1.0, 100.0)

    def test_rejects_large_negative_near_alpha_two(self):
        with pytest.raises(ValueError, match="asymptotic sector"):
            mittag_leffler(1.9, 1.0, -1000.0)

    def test_scalar_in_scalar_out(self):
        out = mittag_leffler(0.5, 1.0, -1.0)
        assert isinstance(out, float)

    def test_shape_preserved(self):
        z = -np.ones((3, 4))
        assert mittag_leffler(0.5, 1.0, z).shape == (3, 4)

"""Extreme-parameter regressions for the Mittag-Leffler function.

Tolerance-tabled identities pin ``E_{alpha,beta}(z)`` at the edges of
its supported domain -- alpha near 0 and near 2, large ``|z|`` on the
negative axis, and multi-parameter mixes via the shift recurrence

.. math::  E_{\\alpha,\\beta}(z) = z\\,E_{\\alpha,\\alpha+\\beta}(z)
           + 1/\\Gamma(\\beta).

Each table row is ``(parameters, tolerance)``; loosening any tolerance
is a visible diff, which is the point.
"""

import numpy as np
import pytest
from scipy.special import erfcx, gamma

from repro.fractional import mittag_leffler


class TestSmallAlpha:
    """alpha -> 0: E_{alpha,1}(z) -> 1/(1-z) for |z| < 1."""

    #: (alpha, z, atol) -- the limit is approached at rate O(alpha),
    #: slower near the unit circle; tolerances pin the measured errors
    #: with a ~2x margin
    GEOMETRIC_TABLE = (
        (0.05, -0.5, 1.5e-2),
        (0.05, -0.2, 1e-2),
        (0.05, 0.2, 2e-2),
        (0.02, -0.5, 6e-3),
        (0.02, 0.3, 1.5e-2),
    )

    @pytest.mark.parametrize("alpha,z,atol", GEOMETRIC_TABLE)
    def test_geometric_limit(self, alpha, z, atol):
        assert mittag_leffler(alpha, 1.0, z) == pytest.approx(
            1.0 / (1.0 - z), abs=atol
        )

    def test_tiny_alpha_converges(self):
        # far inside the shrunken series radius 17**0.01 ~ 1.03
        value = mittag_leffler(0.01, 1.0, -0.5)
        assert value == pytest.approx(1.0 / 1.5, abs=3e-3)

    def test_small_alpha_large_negative_uses_asymptotics(self):
        # |z| far beyond the series radius 17**0.1 ~ 1.33:
        # E_{alpha,1}(z) ~ -1/(z Gamma(1-alpha)) for z -> -inf
        alpha = 0.1
        z = -50.0
        leading = -1.0 / (z * gamma(1.0 - alpha))
        assert mittag_leffler(alpha, 1.0, z) == pytest.approx(leading, rel=5e-2)


class TestAlphaNearTwo:
    """alpha -> 2: trigonometric / hyperbolic closed forms."""

    #: (x, atol) for E_{2,1}(-x^2) = cos(x)
    COSINE_TABLE = ((0.5, 1e-12), (3.0, 1e-11), (7.0, 1e-10), (9.0, 1e-9))

    @pytest.mark.parametrize("x,atol", COSINE_TABLE)
    def test_cosine(self, x, atol):
        assert mittag_leffler(2.0, 1.0, -(x**2)) == pytest.approx(
            np.cos(x), abs=atol
        )

    #: (z, rtol) for E_{2,2}(z) = sinh(sqrt(z))/sqrt(z)
    SINHC_TABLE = ((0.25, 1e-12), (4.0, 1e-12), (36.0, 1e-11), (81.0, 1e-10))

    @pytest.mark.parametrize("z,rtol", SINHC_TABLE)
    def test_sinhc(self, z, rtol):
        root = np.sqrt(z)
        assert mittag_leffler(2.0, 2.0, z) == pytest.approx(
            np.sinh(root) / root, rel=rtol
        )

    def test_sinc_negative_axis(self):
        x = np.linspace(0.3, 8.0, 11)
        np.testing.assert_allclose(
            mittag_leffler(2.0, 2.0, -(x**2)), np.sin(x) / x, atol=1e-10
        )

    def test_alpha_1_9_tracks_series_reference(self):
        # no closed form: pin against a high-precision direct series
        for z in (-4.0, -20.0, -60.0):
            assert mittag_leffler(1.9, 1.0, z) == pytest.approx(
                _longdouble_series(1.9, 1.0, z), abs=1e-9
            )


class TestLargeArguments:
    """Large |z| on the negative axis (the asymptotic branch)."""

    #: (z, atol) for E_{0.5,1}(z) = erfcx(-z)
    ERFCX_TABLE = ((-2.0, 1e-10), (-4.0, 2e-7), (-8.0, 2e-7), (-40.0, 1e-9))

    @pytest.mark.parametrize("z,atol", ERFCX_TABLE)
    def test_half_order_erfcx(self, z, atol):
        assert mittag_leffler(0.5, 1.0, z) == pytest.approx(erfcx(-z), abs=atol)

    def test_exponential_deep_negative(self):
        z = np.array([-100.0, -500.0, -2000.0])
        np.testing.assert_allclose(mittag_leffler(1.0, 1.0, z), np.exp(z), atol=1e-13)

    def test_leading_asymptotic_order(self):
        # E_{alpha,beta}(z) ~ -1/(z Gamma(beta - alpha)) as z -> -inf
        for alpha, beta in ((0.5, 1.5), (0.8, 1.0), (1.2, 1.0)):
            z = -1e4
            leading = -1.0 / (z * gamma(beta - alpha))
            assert mittag_leffler(alpha, beta, z) == pytest.approx(leading, rel=1e-2)

    def test_growing_branch_rejected(self):
        with pytest.raises(ValueError, match="growing branch"):
            mittag_leffler(0.5, 1.0, 100.0)

    def test_sector_closure_near_two_rejected(self):
        with pytest.raises(ValueError, match="asymptotic sector"):
            mittag_leffler(1.95, 1.0, -1e4)


def _longdouble_series(alpha, beta, z, terms=400):
    """Direct extended-precision series; reference for moderate |z|."""
    from scipy.special import gammaln

    k = np.arange(terms, dtype=np.longdouble)
    log_terms = k * np.log(np.longdouble(abs(z))) - gammaln(
        np.asarray(alpha * k + beta, dtype=float)
    ).astype(np.longdouble)
    signs = np.where((z < 0) & (k % 2 == 1), -1.0, 1.0).astype(np.longdouble)
    if z == 0:
        return float(1.0 / gamma(beta))
    return float(np.sum(signs * np.exp(log_terms)))


class TestMultiTermMixes:
    """Shift recurrence ties (alpha, beta) mixes to their neighbours."""

    #: (alpha, beta, z, atol) -- E_{a,b}(z) = z E_{a,a+b}(z) + 1/Gamma(b)
    RECURRENCE_TABLE = (
        (0.3, 1.0, -2.0, 1e-10),
        (0.5, 0.5, -5.0, 1e-6),
        (0.7, 1.3, -10.0, 1e-6),
        (1.5, 1.0, -30.0, 1e-8),
        (1.5, 2.5, -8.0, 1e-10),
    )

    @pytest.mark.parametrize("alpha,beta,z,atol", RECURRENCE_TABLE)
    def test_shift_recurrence(self, alpha, beta, z, atol):
        lhs = mittag_leffler(alpha, beta, z)
        rhs = z * mittag_leffler(alpha, alpha + beta, z) + 1.0 / gamma(beta)
        assert lhs == pytest.approx(rhs, abs=atol)

    #: (alpha, beta, z, atol) against the extended-precision series
    SERIES_TABLE = (
        (0.25, 1.0, -1.2, 1e-10),
        (0.6, 2.0, -6.0, 1e-6),  # just past the crossover radius 17**0.6
        (0.9, 0.9, -9.0, 1e-9),
        (1.1, 1.0, -12.0, 1e-9),
        (1.75, 1.5, -25.0, 1e-9),
    )

    @pytest.mark.parametrize("alpha,beta,z,atol", SERIES_TABLE)
    def test_against_extended_precision_series(self, alpha, beta, z, atol):
        assert mittag_leffler(alpha, beta, z) == pytest.approx(
            _longdouble_series(alpha, beta, z), abs=atol
        )

    def test_two_term_relaxation_mix(self):
        # x(t) = (E_{a,1} + t^a E_{a,a+1})(-t^a): a step + decay blend
        a = 0.5
        t = np.linspace(0.2, 3.0, 7)
        z = -(t**a)
        mix = mittag_leffler(a, 1.0, z) + t**a * mittag_leffler(a, a + 1.0, z)
        ref = np.array(
            [
                _longdouble_series(a, 1.0, zi) + ti**a * _longdouble_series(a, a + 1.0, zi)
                for ti, zi in zip(t, z)
            ]
        )
        np.testing.assert_allclose(mix, ref, atol=1e-8)

"""Tests for closed-form FDE reference solutions."""

import numpy as np
import pytest

from repro.fractional import (
    fde_impulse_response,
    fde_relaxation,
    fde_step_response,
    second_order_step_response,
)


class TestRelaxation:
    def test_reduces_to_exponential(self):
        t = np.linspace(0.0, 5.0, 21)
        np.testing.assert_allclose(
            fde_relaxation(1.0, 2.0, t), np.exp(-2.0 * t), atol=1e-7
        )

    def test_starts_at_x0(self):
        np.testing.assert_allclose(fde_relaxation(0.5, 1.0, [0.0], x0=3.0), [3.0])

    def test_slower_than_exponential(self):
        # fractional relaxation has heavy algebraic tails
        t = np.array([10.0, 50.0])
        frac = fde_relaxation(0.5, 1.0, t)
        expo = np.exp(-t)
        assert np.all(frac > 10.0 * expo)

    def test_monotone_decay(self):
        t = np.linspace(0.0, 20.0, 300)
        x = fde_relaxation(0.7, 1.5, t)
        assert np.all(np.diff(x) <= 1e-12)


class TestStepResponse:
    def test_reduces_to_first_order(self):
        t = np.linspace(0.01, 5.0, 17)
        np.testing.assert_allclose(
            fde_step_response(1.0, 2.0, t, b=3.0),
            1.5 * (1.0 - np.exp(-2.0 * t)),
            atol=1e-7,
        )

    def test_starts_at_zero(self):
        assert fde_step_response(0.5, 1.0, np.array([0.0]))[0] == 0.0

    def test_dc_gain(self):
        # final value b/lam (approached algebraically)
        value = fde_step_response(0.5, 2.0, np.array([1e6]), b=3.0)[0]
        assert value == pytest.approx(1.5, rel=2e-3)

    def test_derivative_relation_to_impulse(self):
        # step response derivative ~ impulse response (numerically)
        t = np.linspace(0.5, 3.0, 400)
        step = fde_step_response(0.5, 1.0, t)
        impulse = fde_impulse_response(0.5, 1.0, t)
        numeric = np.gradient(step, t)
        np.testing.assert_allclose(numeric, impulse, atol=5e-3)


class TestImpulseResponse:
    def test_reduces_to_exponential(self):
        t = np.linspace(0.1, 4.0, 15)
        np.testing.assert_allclose(
            fde_impulse_response(1.0, 2.0, t), np.exp(-2.0 * t), atol=1e-7
        )

    def test_singular_at_origin_for_small_alpha(self):
        small_t = fde_impulse_response(0.5, 1.0, np.array([1e-8]))
        assert small_t[0] > 1e3


class TestSecondOrderStep:
    def test_undamped_peaks_at_two(self):
        value = second_order_step_response(1.0, 1e-12, np.array([np.pi]))[0]
        assert value == pytest.approx(2.0, abs=1e-6)

    def test_final_value_one(self):
        value = second_order_step_response(2.0, 0.5, np.array([50.0]))[0]
        assert value == pytest.approx(1.0, abs=1e-8)

    def test_overshoot_formula(self):
        # peak overshoot exp(-pi zeta / sqrt(1 - zeta^2)) at t = pi/wd
        zeta, wn = 0.3, 1.5
        wd = wn * np.sqrt(1 - zeta**2)
        peak = second_order_step_response(wn, zeta, np.array([np.pi / wd]))[0]
        expected = 1.0 + np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert peak == pytest.approx(expected, rel=1e-9)

    def test_rejects_overdamped(self):
        with pytest.raises(ValueError, match="zeta"):
            second_order_step_response(1.0, 1.2, np.array([1.0]))

"""Tests for the cross-method Mittag-Leffler validation battery."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.fractional import (
    ReferenceCase,
    evaluate_method,
    reference_battery,
    run_method_battery,
)
from repro.fractional.battery import DEFAULT_RESOLUTIONS, _sample_times


class TestReferenceCase:
    def test_step_exact_matches_series(self):
        from repro.fractional import fde_step_response

        case = ReferenceCase("c", 0.5, (1.0,))
        t = np.linspace(0.1, 0.9, 9)
        np.testing.assert_allclose(
            case.exact(t)[0], fde_step_response(0.5, 1.0, t), atol=1e-10
        )

    def test_decay_exact_matches_relaxation(self):
        from repro.fractional import fde_relaxation

        case = ReferenceCase("c", 0.5, (1.0,), drive="decay")
        t = np.linspace(0.1, 0.9, 9)
        np.testing.assert_allclose(
            case.exact(t)[0], fde_relaxation(0.5, 1.0, t), atol=1e-10
        )

    def test_system_shape_and_drive(self):
        case = ReferenceCase("pair", 0.6, (1.0, 50.0))
        system = case.build_system()
        assert system.n_states == 2
        assert case.input() == 1.0

    def test_decay_has_initial_state_and_zero_input(self):
        case = ReferenceCase("c", 0.5, (1.0,), drive="decay")
        system = case.build_system()
        np.testing.assert_allclose(system.x0, np.ones(1))
        assert case.input() == 0.0

    def test_bad_drive_rejected(self):
        with pytest.raises(SolverError, match="drive"):
            ReferenceCase("c", 0.5, (1.0,), drive="ramp")

    def test_decay_needs_caputo_order(self):
        with pytest.raises(SolverError, match="alpha <= 1"):
            ReferenceCase("c", 1.5, (1.0,), drive="decay")

    def test_sample_times_avoid_endpoints(self):
        case = ReferenceCase("c", 0.5, (1.0,), t_end=2.0)
        t = _sample_times(case)
        assert t[0] == pytest.approx(0.2)
        assert t[-1] == pytest.approx(1.9)


class TestBatteryContents:
    def test_smoke_battery(self):
        cases = reference_battery(1)
        assert len(cases) == 5
        assert all(isinstance(c, ReferenceCase) for c in cases)

    def test_nightly_battery_is_superset(self):
        smoke = {c.name for c in reference_battery(1)}
        nightly = {c.name for c in reference_battery(2)}
        assert smoke < nightly
        alphas = {c.alpha for c in reference_battery(2)}
        assert min(alphas) <= 0.3 and max(alphas) >= 1.5

    def test_resolutions_cover_every_method(self):
        from repro.fractional import method_names

        assert set(DEFAULT_RESOLUTIONS) == set(method_names())


class TestEvaluateMethod:
    def test_record_fields(self):
        case = ReferenceCase("half-order-step", 0.5, (1.0,))
        record = evaluate_method("gl", case, 128)
        assert record["supported"] is True
        assert record["digits"] > 2.0
        assert record["coefficients"] == 128
        assert record["wall_s"] >= 0.0
        assert record["basis"] == "BlockPulse"

    def test_unsupported_case_is_reported_not_dropped(self):
        # jacobi refuses Caputo initial data through the Simulator seam
        case = ReferenceCase("decay", 0.5, (1.0,), drive="decay")
        record = evaluate_method("jacobi", case, 12)
        if not record["supported"]:
            assert "reason" in record
        else:  # pragma: no cover - depends on engine support growth
            assert record["digits"] > 0.0

    def test_native_route_participates(self):
        case = ReferenceCase("half-order-step", 0.5, (1.0,))
        record = evaluate_method("opm", case, 128)
        assert record["supported"] and record["digits"] > 2.5


class TestRunBattery:
    @pytest.fixture(scope="class")
    def payload(self):
        # tiny custom battery keeps this a unit test, not a benchmark
        cases = (
            ReferenceCase("half-order-step", 0.5, (1.0,)),
            ReferenceCase("classical-step", 1.0, (1.0,)),
        )
        return run_method_battery(
            cases=cases,
            resolutions={
                "opm": (32, 64),
                "gl": (32, 64),
                "oustaloup": (32, 64),
                "jacobi": (8, 12),
            },
        )

    def test_payload_shape(self, payload):
        assert payload["schema"] == 1
        assert set(payload["summary"]) == {"opm", "gl", "jacobi", "oustaloup"}
        assert payload["methods"][0] == "opm"

    def test_summary_tracks_worst_fine_case(self, payload):
        for name, row in payload["summary"].items():
            fine = row["fine_m"]
            fine_records = [
                r
                for r in payload["records"]
                if r["method"] == name and r["supported"] and r["m"] == fine
            ]
            worst = max(fine_records, key=lambda r: r["rel_rms"])
            assert row["digits"] == pytest.approx(worst["digits"])
            assert row["worst_case"] == worst["case"]
            assert row["cases_validated"] == len(fine_records)

    def test_every_run_recorded(self, payload):
        # 4 methods x 2 cases x 2 resolutions
        assert len(payload["records"]) == 16

    def test_json_serialisable(self, payload):
        import json

        json.dumps(payload)

    def test_zero_validated_cases_raises(self, monkeypatch):
        import repro.fractional.battery as battery_mod

        def always_unsupported(name, case, m, **kwargs):
            return {
                "method": name,
                "case": case.name,
                "m": m,
                "supported": False,
                "reason": "forced",
            }

        monkeypatch.setattr(battery_mod, "evaluate_method", always_unsupported)
        cases = (ReferenceCase("c", 0.5, (1.0,)),)
        with pytest.raises(SolverError, match="vouch"):
            run_method_battery(methods=("gl",), cases=cases, resolutions={"gl": (8, 16)})

"""Tests for the pluggable fractional method zoo.

Covers the registry / naming layer, the operator constructions (with
integer-order exactness checks), the Simulator front door for every
registered method, the guards that fence zoo sessions off from
unsupported engine features, and the batched-sweep consistency the
cached-pencil route promises.
"""

import numpy as np
import pytest

from repro.core import FractionalDescriptorSystem
from repro.engine import Simulator
from repro.engine.bundle import OperatorBundle, resolve_basis
from repro.errors import SolverError
from repro.fractional import (
    FRACTIONAL_METHODS,
    FractionalMethod,
    GrunwaldLetnikovMethod,
    JacobiMethod,
    OustaloupMethod,
    describe_methods,
    fde_step_response,
    method_names,
    resolve_method,
    validate_method_name,
)
from repro.fractional.methods import (
    gl_integration_weights,
    normalise_method_name,
    unknown_method_message,
)


def make_bundle(basis="block-pulse", m=64, t_end=1.0):
    from repro.basis.grid import TimeGrid

    return OperatorBundle(resolve_basis(basis, TimeGrid.uniform(t_end, m)))


class TestRegistry:
    def test_registered_names(self):
        assert set(FRACTIONAL_METHODS) == {"gl", "oustaloup", "jacobi"}

    def test_method_names_puts_native_first(self):
        names = method_names()
        assert names[0] == "opm"
        assert set(names[1:]) == set(FRACTIONAL_METHODS)

    def test_method_names_zoo_only(self):
        assert "opm" not in method_names(include_native=False)

    def test_describe_methods_has_one_row_per_method(self):
        rows = describe_methods()
        assert [row["name"] for row in rows] == ["opm", "gl", "jacobi", "oustaloup"]
        for row in rows:
            assert row["summary"] and row["citation"] and row["basis"]

    def test_registry_instances_are_methods(self):
        for method in FRACTIONAL_METHODS.values():
            assert isinstance(method, FractionalMethod)
            assert method.name and method.summary

    def test_fingerprints_distinguish_parameterisations(self):
        assert OustaloupMethod(8).fingerprint() != OustaloupMethod(12).fingerprint()
        assert JacobiMethod(0.5, 0.5).fingerprint() != JacobiMethod().fingerprint()
        assert GrunwaldLetnikovMethod().fingerprint() == ("gl",)

    def test_repr_shows_params(self):
        assert "8" in repr(OustaloupMethod(8))


class TestNameValidation:
    def test_normalise(self):
        assert normalise_method_name("  GL ") == "gl"
        assert normalise_method_name("Oustaloup") == "oustaloup"
        assert normalise_method_name("opm_windowed") == "opm-windowed"

    def test_validate_accepts_case_variants(self):
        assert validate_method_name("GL") == "gl"
        assert validate_method_name("opm") == "opm"

    def test_validate_unknown_lists_everything(self):
        with pytest.raises(SolverError, match="choose from"):
            validate_method_name("rk45")

    def test_validate_suggests_closest(self):
        with pytest.raises(SolverError, match="did you mean 'oustaloup'"):
            validate_method_name("oustalop")

    def test_validate_custom_error_type(self):
        with pytest.raises(ValueError, match="unknown method"):
            validate_method_name("nope", error=ValueError)

    def test_unknown_message_context(self):
        msg = unknown_method_message("xyz", ("opm", "gl"), context="solver")
        assert "unknown solver 'xyz'" in msg

    def test_resolve_native_is_none(self):
        assert resolve_method(None) is None
        assert resolve_method("opm") is None

    def test_resolve_name_and_instance(self):
        assert resolve_method("gl") is FRACTIONAL_METHODS["gl"]
        custom = OustaloupMethod(6)
        assert resolve_method(custom) is custom

    def test_resolve_unknown(self):
        with pytest.raises(SolverError, match="unknown method"):
            resolve_method("chebyshev")


class TestGlWeights:
    def test_alpha_one_is_plain_summation(self):
        np.testing.assert_allclose(gl_integration_weights(1.0, 6), np.ones(6))

    def test_recurrence(self):
        alpha = 0.5
        w = gl_integration_weights(alpha, 10)
        for k in range(1, 10):
            assert w[k] == pytest.approx(w[k - 1] * (alpha + k - 1) / k)

    def test_needs_positive_m(self):
        with pytest.raises(SolverError, match="at least one"):
            gl_integration_weights(0.5, 0)


class TestOperators:
    def test_gl_operator_is_upper_toeplitz(self):
        bundle = make_bundle(m=16)
        F = GrunwaldLetnikovMethod().integration_operator(bundle, 0.5)
        assert np.allclose(F, np.triu(F))
        np.testing.assert_allclose(np.diag(F, 1), np.full(15, F[0, 1]))

    def test_gl_alpha_one_is_rectangle_rule(self):
        bundle = make_bundle(m=16)
        F = GrunwaldLetnikovMethod().integration_operator(bundle, 1.0)
        h = 1.0 / 16
        expected = h * np.triu(np.ones((16, 16)))
        np.testing.assert_allclose(F, expected)

    def test_oustaloup_integer_order_is_exact(self):
        bundle = make_bundle(m=16)
        F = OustaloupMethod().integration_operator(bundle, 1.0)
        np.testing.assert_allclose(F, bundle.integration_matrix())

    def test_oustaloup_splits_integer_part(self):
        bundle = make_bundle(m=32)
        method = OustaloupMethod()
        F_half = method.integration_operator(bundle, 0.5)
        F_three_half = method.integration_operator(bundle, 1.5)
        M = np.asarray(bundle.integration_matrix(), dtype=float)
        np.testing.assert_allclose(F_three_half, F_half @ M, atol=1e-12)

    def test_oustaloup_band_validation(self):
        with pytest.raises(SolverError, match="0 < w_b < w_h"):
            OustaloupMethod(band=(10.0, 1.0))
        with pytest.raises(SolverError, match="at least one section"):
            OustaloupMethod(sections=0)

    def test_jacobi_rejects_nonspectral_bundle(self):
        bundle = make_bundle("block-pulse", m=8)
        with pytest.raises(SolverError, match="spectral"):
            JacobiMethod().integration_operator(bundle, 0.5)

    def test_jacobi_param_validation(self):
        with pytest.raises(SolverError, match="exceed -1"):
            JacobiMethod(jacobi_a=-1.5)

    def test_jacobi_alpha_validation(self):
        bundle = make_bundle("legendre", m=8)
        with pytest.raises(SolverError, match="alpha must be positive"):
            JacobiMethod().integration_operator(bundle, 0.0)

    def test_jacobi_integer_order_integrates_polynomials(self):
        # I^1 of the monomials is exact for a degree-(m-1) nodal map
        bundle = make_bundle("legendre", m=10)
        F = JacobiMethod().integration_operator(bundle, 1.0)
        basis = bundle.basis
        t = np.linspace(0.05, 0.95, 17)
        for degree in range(5):
            coeffs = basis.project(lambda s, d=degree: s**d)
            integ = np.atleast_2d(coeffs) @ F
            exact = t ** (degree + 1) / (degree + 1)
            approx = (integ @ basis.evaluate(t))[0]
            np.testing.assert_allclose(approx, exact, atol=1e-8)

    def test_toeplitz_methods_require_uniform_grid(self):
        from repro.basis.grid import TimeGrid

        edges = np.r_[0.0, np.cumsum(np.linspace(0.5, 1.5, 8))]
        grid = TimeGrid(edges / edges[-1])
        bundle = OperatorBundle(resolve_basis("block-pulse", grid))
        with pytest.raises(SolverError, match="uniform grid"):
            GrunwaldLetnikovMethod().integration_operator(bundle, 0.5)


class TestSimulatorFrontDoor:
    @pytest.mark.parametrize(
        "method,resolution,tol",
        [("gl", 512, 5e-3), ("oustaloup", 512, 5e-2), ("jacobi", 24, 5e-3)],
    )
    def test_step_response_matches_analytic(self, scalar_fde, method, resolution, tol):
        sim = Simulator(scalar_fde, (2.0, resolution), method=method)
        res = sim.run(1.0)
        t = np.linspace(0.3, 1.7, 7)
        exact = fde_step_response(0.5, 1.0, t)
        np.testing.assert_allclose(res.states(t)[0], exact, atol=tol)

    def test_info_reports_method_label(self, scalar_fde):
        res = Simulator(scalar_fde, (1.0, 64), method="gl").run(1.0)
        assert res.info["method"] == "gl[BlockPulse]"

    def test_jacobi_binds_legendre_by_default(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 16), method="jacobi")
        res = sim.run(1.0)
        assert res.info["method"] == "jacobi[Legendre]"

    def test_method_instance_accepted(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 128), method=OustaloupMethod(8))
        assert sim.method.sections == 8
        sim.run(1.0)

    def test_triangular_sweep_reuses_one_factorisation(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 96), method="gl")
        sim.run(1.0)
        res = sim.run(0.5)
        assert res.info["factorisations"] == 1
        assert res.info["warm"] is True
        assert res.info["triangular_sweep"] is True

    def test_sweep_matches_individual_runs(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 64), method="gl")
        batch = sim.sweep([0.25, 1.0, lambda t: np.sin(t)])
        singles = [sim.run(u) for u in [0.25, 1.0, lambda t: np.sin(t)]]
        for got, want in zip(batch, singles):
            np.testing.assert_allclose(
                got.coefficients, want.coefficients, rtol=1e-13, atol=1e-15
            )

    def test_fingerprint_carries_method(self, scalar_fde):
        native = Simulator(scalar_fde, (1.0, 32)).fingerprint
        gl = Simulator(scalar_fde, (1.0, 32), method="gl").fingerprint
        oust = Simulator(scalar_fde, (1.0, 32), method=OustaloupMethod(7)).fingerprint
        assert ("method", "native") in native
        assert ("method", "gl") in gl
        assert ("method", "oustaloup", 7, None) in oust
        assert len({native, gl, oust}) == 3

    def test_typo_raises_with_suggestion(self, scalar_fde):
        with pytest.raises(SolverError, match="did you mean 'gl'"):
            Simulator(scalar_fde, (1.0, 32), method="g l")
        with pytest.raises(SolverError, match="choose from"):
            Simulator(scalar_fde, (1.0, 32), method="rk45")

    def test_nonzero_initial_state(self):
        system = FractionalDescriptorSystem(
            0.5, [[1.0]], [[-1.0]], [[1.0]], x0=[2.0]
        )
        res = Simulator(system, (1.0, 256), method="gl").run(0.0)
        from repro.fractional import fde_relaxation

        t = np.linspace(0.2, 0.9, 5)
        np.testing.assert_allclose(
            res.states(t)[0], 2.0 * fde_relaxation(0.5, 1.0, t), atol=5e-3
        )


class TestGuards:
    def test_reduce_rejected(self, scalar_fde):
        with pytest.raises(SolverError, match="reduce="):
            Simulator(scalar_fde, (1.0, 32), method="gl", reduce="auto")

    def test_memory_compression_rejected(self, scalar_fde):
        with pytest.raises(SolverError, match="memory compression"):
            Simulator(scalar_fde, (1.0, 32), method="gl", memory="soe")

    def test_march_rejected(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 32), method="gl")
        with pytest.raises(SolverError, match="march"):
            sim.march(1.0, 4.0)

    def test_ensemble_rejected(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 32), method="gl")
        with pytest.raises(SolverError, match="ensemble"):
            sim.run_ensemble([1.0, 0.5])

    def test_wrong_basis_for_toeplitz_method(self, scalar_fde):
        with pytest.raises(SolverError, match="block-pulse"):
            Simulator(scalar_fde, (1.0, 16), basis="legendre", method="gl").run(1.0)

    def test_wrong_basis_for_jacobi(self, scalar_fde):
        with pytest.raises(SolverError, match="spectral"):
            Simulator(
                scalar_fde, (1.0, 16), basis="block-pulse", method="jacobi"
            ).run(1.0)

    def test_walsh_route_works_for_gl(self, scalar_fde):
        res = Simulator(scalar_fde, (1.0, 64), basis="walsh", method="gl").run(1.0)
        assert res.info["method"].startswith("gl[Walsh")

"""Tests for the parallel ensemble executor (`repro.engine.executor`).

The deterministic-seeding and bit-identity tests here are the
regression suite for the executor's central guarantee: a seeded
ensemble produces *identical* member lists and *bit-identical* results
regardless of ``jobs`` and backend.  The nightly CI workflow re-runs
this module with ``REPRO_TEST_JOBS`` raised on both the process and
thread backends.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.circuits import Netlist, assemble_mna, assemble_mna_restamp
from repro.core import DescriptorSystem, Simulator, simulate
from repro.engine.executor import (
    Ensemble,
    EnsembleMember,
    ParallelExecutor,
    SHM_MIN_BYTES,
)
from repro.errors import EnsembleError, NetlistError, SolverError

#: worker count used by the parallel tests (the nightly workflow runs
#: with REPRO_TEST_JOBS=2 explicitly on both backends)
JOBS = max(2, int(os.environ.get("REPRO_TEST_JOBS", "2")))

#: pool backends exercised by the parametrised tests; the nightly
#: workflow narrows this to one backend per step via
#: REPRO_TEST_EXECUTOR_BACKENDS=process|thread
_BACKENDS_ENV = os.environ.get("REPRO_TEST_EXECUTOR_BACKENDS", "")
PARALLEL_BACKENDS = [
    backend.strip() for backend in _BACKENDS_ENV.split(",") if backend.strip()
] or ["thread", "process"]

RC_DECK = """
I1 0 n1 1m
R1 n1 0 1k
C1 n1 0 1u
"""

GRID = (5e-3, 48)


@pytest.fixture
def rc_netlist() -> Netlist:
    return Netlist.from_spice(RC_DECK)


def rc_system(tau: float = 1.0) -> DescriptorSystem:
    return DescriptorSystem([[1.0]], [[-tau]], [[1.0]])


# ----------------------------------------------------------------------
# Netlist.with_values / element_values
# ----------------------------------------------------------------------
class TestWithValues:
    def test_override_replaces_value_and_keeps_base(self, rc_netlist):
        varied = rc_netlist.with_values({"R1": 1.2e3})
        assert varied.resistors[0].resistance == 1200.0
        assert rc_netlist.resistors[0].resistance == 1000.0

    def test_layout_and_waveforms_preserved(self, rc_netlist):
        varied = rc_netlist.with_values({"C1": 2e-6})
        assert varied.nodes == rc_netlist.nodes
        assert varied.n_channels == rc_netlist.n_channels
        u = varied.input_function()
        assert u(np.array([1.0]))[0, 0] == pytest.approx(1e-3)
        # restamp compatibility is exactly what variations relies on
        system = assemble_mna_restamp(varied, rc_netlist)
        assert system.n_states == assemble_mna(rc_netlist).n_states

    def test_unknown_element_raises(self, rc_netlist):
        with pytest.raises(NetlistError, match="R99"):
            rc_netlist.with_values({"R99": 1.0})

    def test_element_values_lists_all(self, rc_netlist):
        values = rc_netlist.element_values()
        assert values == {"I1": 1.0, "R1": 1000.0, "C1": 1e-6}

    def test_vccs_node_registration_order(self):
        nl = Netlist()
        nl.add_vccs("G1", "out", "0", "cp", "cm", 2.0)
        nl.add_resistor("R1", "out", "0", 1.0)
        nl.add_resistor("R2", "cp", "cm", 1.0)
        nl.add_current_source("I1", "0", "cp", waveform=None)
        nl.set_channel_waveform(0, lambda t: np.ones_like(t))
        varied = nl.with_values({"G1": 3.0})
        assert varied.nodes == nl.nodes
        assert varied.of_type(type(nl.elements[0]))[0].gm == 3.0

    def test_coupling_override(self):
        nl = Netlist.from_spice(
            "V1 in 0 1\nL1 in n1 1m\nL2 n1 0 1m\nK1 L1 L2 0.5\nR1 n1 0 1\n"
        )
        varied = nl.with_values({"K1": 0.25})
        assert varied.couplings[0].coupling == 0.25
        assert nl.couplings[0].coupling == 0.5


# ----------------------------------------------------------------------
# Ensemble construction
# ----------------------------------------------------------------------
class TestEnsembleSpec:
    def test_cartesian_product_order(self, rc_netlist):
        ens = Ensemble.variations(
            rc_netlist, {"R1": [900.0, 1100.0], "C1": [1e-6, 2e-6]}
        )
        assert len(ens) == 4
        assert [m.params["R1"] for m in ens] == [900.0, 900.0, 1100.0, 1100.0]
        assert [m.params["C1"] for m in ens] == [1e-6, 2e-6, 1e-6, 2e-6]
        assert ens[0].label == "R1=900,C1=1e-06"

    def test_monte_carlo_seeded_is_deterministic(self, rc_netlist):
        kwargs = dict(mode="monte-carlo", n=8, seed=123)
        a = Ensemble.variations(rc_netlist, {"R1": 0.2}, **kwargs)
        b = Ensemble.variations(rc_netlist, {"R1": 0.2}, **kwargs)
        assert [m.params for m in a] == [m.params for m in b]
        c = Ensemble.variations(rc_netlist, {"R1": 0.2}, mode="monte-carlo",
                                n=8, seed=124)
        assert [m.params for m in a] != [m.params for m in c]

    def test_monte_carlo_relative_spread_brackets_nominal(self, rc_netlist):
        ens = Ensemble.variations(
            rc_netlist, {"R1": 0.1}, mode="monte-carlo", n=32, seed=0
        )
        values = np.array([m.params["R1"] for m in ens])
        assert np.all((values >= 900.0) & (values <= 1100.0))

    def test_monte_carlo_absolute_range(self, rc_netlist):
        ens = Ensemble.variations(
            rc_netlist, {"C1": (1e-6, 3e-6)}, mode="monte-carlo", n=16, seed=5
        )
        values = np.array([m.params["C1"] for m in ens])
        assert np.all((values >= 1e-6) & (values <= 3e-6))

    def test_invalid_specs_raise(self, rc_netlist):
        with pytest.raises(EnsembleError, match="n >= 1"):
            Ensemble.variations(rc_netlist, {"R1": 0.1}, mode="monte-carlo")
        with pytest.raises(EnsembleError, match="unknown element"):
            Ensemble.variations(rc_netlist, {"Rx": 0.1}, mode="monte-carlo", n=2)
        with pytest.raises(EnsembleError, match="spread must lie"):
            Ensemble.variations(rc_netlist, {"R1": 1.5}, mode="monte-carlo", n=2)
        with pytest.raises(EnsembleError, match="must be a sequence"):
            Ensemble.variations(rc_netlist, {"R1": 0.1})
        with pytest.raises(EnsembleError, match="cartesian"):
            Ensemble.variations(rc_netlist, {"R1": [1.0]}, mode="corner")
        with pytest.raises(EnsembleError, match="at least one member"):
            Ensemble([])

    def test_from_spec(self, rc_netlist):
        ens = Ensemble.from_spec(
            rc_netlist,
            {"mode": "monte-carlo", "n": 4, "seed": 9, "params": {"R1": 0.1}},
        )
        assert len(ens) == 4
        with pytest.raises(EnsembleError, match="unknown ensemble spec keys"):
            Ensemble.from_spec(rc_netlist, {"params": {"R1": 0.1}, "jobs": 4})
        with pytest.raises(EnsembleError, match="'params' mapping"):
            Ensemble.from_spec(rc_netlist, {"mode": "cartesian"})

    def test_pairs_and_members(self):
        ens = Ensemble([(rc_system(), 1.0), EnsembleMember(rc_system(2.0), 2.0)])
        assert len(ens) == 2
        with pytest.raises(EnsembleError, match="EnsembleMember"):
            Ensemble([rc_system()])


# ----------------------------------------------------------------------
# execution correctness across backends
# ----------------------------------------------------------------------
def mc_ensemble(netlist, n=6, seed=7) -> Ensemble:
    return Ensemble.variations(
        netlist, {"R1": 0.2, "C1": 0.1}, mode="monte-carlo", n=n, seed=seed
    )


class TestExecutorCorrectness:
    def test_serial_matches_direct_runs(self, rc_netlist):
        ens = mc_ensemble(rc_netlist)
        result = ParallelExecutor("serial", jobs=JOBS).run(ens, GRID)
        for member, res in zip(ens, result):
            ref = Simulator(member.system, GRID).run(member.u)
            assert np.array_equal(ref.coefficients, res.coefficients)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parallel_bit_identical_to_serial(self, rc_netlist, backend):
        ens = mc_ensemble(rc_netlist, n=8, seed=11)
        serial = ParallelExecutor("serial", jobs=JOBS).run(ens, GRID)
        parallel = ParallelExecutor(backend, jobs=JOBS).run(ens, GRID)
        assert np.array_equal(serial.coefficients, parallel.coefficients)
        assert serial.labels == parallel.labels

    def test_fingerprint_grouping_batches_shared_pencils(self):
        fast, slow = rc_system(2.0), rc_system(0.5)
        ens = Ensemble([(fast, 1.0), (fast, 2.0), (slow, 1.0), (fast, 0.5)])
        result = ParallelExecutor("serial", jobs=1).run(ens, GRID)
        assert result.info["n_groups"] == 2
        assert result.info["n_tasks"] == 2
        # one factorisation per distinct pencil, shared by its members
        assert result.info["factorisations"] == 2
        chunk_indices = sorted(chunk.indices for chunk in result.chunks)
        assert chunk_indices == [(0, 1, 3), (2,)]

    def test_equal_value_members_share_a_pencil(self, rc_netlist):
        ens = Ensemble.variations(rc_netlist, {"R1": [1e3, 1e3, 2e3]})
        result = ParallelExecutor("serial", jobs=1).run(ens, GRID)
        assert result.info["n_groups"] == 2
        assert result.info["factorisations"] == 2

    def test_members_differing_only_in_B_do_not_share_results(self, rc_netlist):
        """Regression: varying a source scale changes B but not E/A; the
        grouping key must split such members, not hand every one the
        first member's solution."""
        # a current source's variable value is its scale factor on the
        # 1 mA deck waveform: x1 and x2 drive 1 mA and 2 mA
        ens = Ensemble.variations(rc_netlist, {"I1": [1.0, 2.0]})
        result = ParallelExecutor("serial", jobs=1).run(ens, (20e-3, 64))
        assert result.info["n_groups"] == 2
        finals = result.states([19.9e-3])[:, 0, 0]
        assert finals[0] == pytest.approx(1.0, rel=1e-3)  # 1 mA * 1 kOhm
        assert finals[1] == pytest.approx(2.0, rel=1e-3)  # 2 mA * 1 kOhm

    def test_members_differing_only_in_x0_do_not_share_results(self):
        base = rc_system()
        shifted = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[5.0])
        ens = Ensemble([(base, 1.0), (shifted, 1.0)])
        result = ParallelExecutor("serial", jobs=1).run(ens, GRID)
        assert result.info["n_groups"] == 2
        first = result.states([1e-6])[:, 0, 0]
        assert abs(first[0]) < 0.1 and first[1] == pytest.approx(5.0, abs=0.1)

    def test_oversized_group_is_sharded(self):
        system = rc_system()
        ens = Ensemble([(system, float(k)) for k in range(1, 9)])
        result = ParallelExecutor("serial", jobs=4).run(ens, GRID)
        assert result.info["n_groups"] == 1
        assert result.info["n_tasks"] == 4  # ceil(8 / 4) members per shard
        assert result.info["factorisations"] == 4  # one per shard worker

    def test_default_input_and_missing_input(self):
        ens = Ensemble([EnsembleMember(rc_system()), (rc_system(2.0), 2.0)])
        result = ParallelExecutor("serial").run(ens, GRID, u=1.0)
        assert result.n_members == 2
        with pytest.raises(EnsembleError, match="member 0 has no input"):
            ParallelExecutor("serial").run(
                Ensemble([EnsembleMember(rc_system())]), GRID
            )

    def test_iter_chunks_covers_all_members(self, rc_netlist):
        ens = mc_ensemble(rc_netlist, n=5)
        executor = ParallelExecutor("serial", jobs=2)
        seen: list[int] = []
        for chunk in executor.iter_chunks(ens, GRID):
            seen.extend(chunk.indices)
        assert sorted(seen) == list(range(5))

    def test_member_results_have_outputs(self, rc_netlist):
        ens = Ensemble.variations(
            rc_netlist, {"R1": [800.0, 1200.0]}, outputs=["n1"]
        )
        result = ParallelExecutor("serial").run(ens, GRID)
        finals = result.outputs([4.9e-3])
        assert finals.shape == (2, 1, 1)
        # v(n1) ~ I * R at steady state
        assert finals[0, 0, 0] == pytest.approx(0.8, rel=5e-2)
        assert finals[1, 0, 0] == pytest.approx(1.2, rel=5e-2)
        assert result[1].info["ensemble_index"] == 1
        assert "R1=1200" in result[1].info["label"]

    def test_invalid_backend_and_jobs(self):
        with pytest.raises(EnsembleError, match="backend must be one of"):
            ParallelExecutor("gpu")
        with pytest.raises(EnsembleError, match="jobs must be >= 1"):
            ParallelExecutor("serial", jobs=0)


class TestSessionIntegration:
    def test_run_ensemble_uses_session_settings(self, rc_netlist):
        ens = mc_ensemble(rc_netlist, n=4)
        member_system = ens[0].system
        sim = Simulator(member_system, GRID)
        result = sim.run_ensemble(ens, parallel="serial", jobs=2)
        ref = ParallelExecutor("serial", jobs=2).run(ens, GRID)
        assert np.array_equal(result.coefficients, ref.coefficients)

    def test_run_ensemble_basis_generic(self, rc_netlist):
        ens = mc_ensemble(rc_netlist, n=3)
        sim = Simulator(ens[0].system, (5e-3, 16), basis="chebyshev")
        result = sim.run_ensemble(ens, parallel="serial")
        assert result.info["basis"] == "Chebyshev"
        ref = Simulator(ens[1].system, (5e-3, 16), basis="chebyshev").run(ens[1].u)
        assert np.allclose(result[1].coefficients, ref.coefficients)

    def test_sweep_sharding_bit_identical(self):
        system = rc_system()
        sim = Simulator(system, GRID)
        amps = np.linspace(0.5, 2.0, 12)
        plain = sim.sweep(amps)
        sharded = sim.sweep(amps, jobs=3, parallel="serial", min_columns=4)
        assert np.array_equal(plain.coefficients, sharded.coefficients)
        assert np.array_equal(
            plain.input_coefficients, sharded.input_coefficients
        )
        assert sharded.info["jobs"] == 3
        assert sharded.info["n_tasks"] == 3
        assert sharded.info["batch"] == 12

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_sweep_sharding_parallel_backends(self, backend):
        system = rc_system()
        sim = Simulator(system, GRID)
        amps = np.linspace(0.5, 2.0, 8)
        plain = sim.sweep(amps)
        sharded = sim.sweep(amps, jobs=JOBS, parallel=backend, min_columns=4)
        assert np.array_equal(plain.coefficients, sharded.coefficients)

    def test_sweep_below_threshold_stays_serial(self):
        sim = Simulator(rc_system(), GRID)
        result = sim.sweep([1.0, 2.0], jobs=4)  # < PARALLEL_SWEEP_MIN_COLUMNS
        assert "jobs" not in result.info

    def test_sweep_result_members_unchanged(self):
        sim = Simulator(rc_system(), GRID)
        amps = [0.5, 1.0, 1.5, 2.0]
        sharded = sim.sweep(amps, jobs=2, min_columns=2, parallel="serial")
        assert sharded.n_runs == 4
        single = sharded[2]
        ref = sim.run(1.5)
        # batched multi-RHS arithmetic rounds like the serial sweep, not
        # like a lone run (same long-standing engine contract as
        # Simulator.sweep): round-off-close, sharding adds no drift
        assert np.allclose(single.coefficients, ref.coefficients,
                           rtol=0.0, atol=1e-12)


class TestDispatchIntegration:
    def test_simulate_ensemble(self, rc_netlist):
        ens = mc_ensemble(rc_netlist, n=4)
        result = simulate(ens, None, 5e-3, 48, jobs=2, parallel="serial")
        ref = ParallelExecutor("serial", jobs=2).run(ens, GRID)
        assert np.array_equal(result.coefficients, ref.coefficients)

    def test_jobs_without_ensemble_raises(self):
        with pytest.raises(SolverError, match="only meaningful"):
            simulate(rc_system(), 1.0, 5e-3, 48, jobs=2)

    def test_ensemble_requires_opm_and_steps(self, rc_netlist):
        ens = mc_ensemble(rc_netlist, n=2)
        with pytest.raises(SolverError, match="method='opm'"):
            simulate(ens, None, 5e-3, 48, method="trapezoidal")
        with pytest.raises(SolverError, match="requires steps"):
            simulate(ens, None, 5e-3)


# ----------------------------------------------------------------------
# deterministic seeding across jobs / backends (regression suite)
# ----------------------------------------------------------------------
class TestDeterministicSeeding:
    def test_member_lists_independent_of_jobs_and_backend(self, rc_netlist):
        spec = dict(mode="monte-carlo", n=10, seed=2012)
        reference = Ensemble.variations(rc_netlist, {"R1": 0.2, "C1": 0.1}, **spec)
        for _ in range(3):  # rebuilding never drifts
            again = Ensemble.variations(rc_netlist, {"R1": 0.2, "C1": 0.1}, **spec)
            assert [m.params for m in again] == [m.params for m in reference]

    def test_serial_vs_process_bit_identical(self, rc_netlist):
        """Acceptance regression: seeded MC ensembles are bit-identical
        between the serial baseline and the process executor."""
        ens = mc_ensemble(rc_netlist, n=8, seed=2012)
        serial = ParallelExecutor("serial", jobs=JOBS).run(ens, GRID)
        process = ParallelExecutor("process", jobs=JOBS).run(ens, GRID)
        assert np.array_equal(serial.coefficients, process.coefficients)
        assert np.array_equal(
            serial.input_coefficients, process.input_coefficients
        )


# ----------------------------------------------------------------------
# failure paths and shared-memory hygiene
# ----------------------------------------------------------------------
def singular_system() -> DescriptorSystem:
    """A pencil that is singular at every shift (E = A = 0)."""
    return DescriptorSystem([[0.0]], [[0.0]], [[1.0]])


def big_dense_system(n: int = 80) -> DescriptorSystem:
    """Dense system big enough to cross the shared-memory threshold."""
    rng = np.random.default_rng(0)
    A = -np.eye(n) + 0.01 * rng.standard_normal((n, n))
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    assert 2 * n * n * 8 >= SHM_MIN_BYTES
    return DescriptorSystem(np.eye(n), A, B)


class TestFailurePaths:
    @pytest.mark.parametrize("backend", ["serial"] + PARALLEL_BACKENDS)
    def test_failure_surfaces_index_and_original_error(self, backend):
        members = [
            (rc_system(1.0), 1.0),
            (singular_system(), 1.0),
            (rc_system(2.0), 1.0),
        ]
        executor = ParallelExecutor(backend, jobs=JOBS)
        with pytest.raises(EnsembleError, match="member 1") as excinfo:
            executor.run(Ensemble(members), GRID)
        error = excinfo.value
        assert error.member_index == 1
        assert error.member_indices == (1,)
        assert isinstance(error.__cause__, SolverError)
        assert "singular" in str(error.__cause__)
        # the healthy members' chunks were not discarded
        assert sorted(i for c in error.chunks for i in c.indices) == [0, 2]

    def test_iter_chunks_streams_remaining_chunks_before_raising(self):
        members = [
            (rc_system(1.0), 1.0),
            (singular_system(), 1.0),
            (rc_system(2.0), 1.0),
        ]
        executor = ParallelExecutor("serial", jobs=1)
        streamed: list[int] = []
        with pytest.raises(EnsembleError, match="member 1"):
            for chunk in executor.iter_chunks(Ensemble(members), GRID):
                streamed.extend(chunk.indices)
        assert sorted(streamed) == [0, 2]

    def test_sharded_failure_reports_every_member_of_the_unit(self):
        """Regression: a failing batched unit accounts for ALL of its
        members, not just the first index of the shard."""
        bad = singular_system()
        ens = Ensemble(
            [(bad, 1.0), (bad, 2.0), (bad, 3.0), (rc_system(), 1.0)]
        )
        executor = ParallelExecutor("serial", jobs=1)  # one 3-member unit
        with pytest.raises(EnsembleError) as excinfo:
            executor.run(ens, GRID)
        error = excinfo.value
        assert error.member_indices == (0, 1, 2)
        assert sorted(i for c in error.chunks for i in c.indices) == [3]

    def test_failed_label_in_message(self, rc_netlist):
        ens = Ensemble(
            [EnsembleMember(singular_system(), 1.0, label="corner-7")]
        )
        with pytest.raises(EnsembleError, match="corner-7"):
            ParallelExecutor("serial").run(ens, GRID)

    def test_shm_used_and_cleaned_up_on_success(self):
        systems = [big_dense_system(80), big_dense_system(81)]
        ens = Ensemble([(s, 1.0) for s in systems])
        executor = ParallelExecutor("process", jobs=2)
        result = executor.run(ens, (1.0, 32))
        assert result.info["shm_bytes"] > 0
        assert executor.shm_names_created, "expected shared-memory shipping"
        for name in executor.shm_names_created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shm_cleaned_up_on_failure(self):
        n = 80
        bad = DescriptorSystem(np.zeros((n, n)), np.zeros((n, n)), np.ones((n, 1)))
        ens = Ensemble([(big_dense_system(n), 1.0), (bad, 1.0)])
        executor = ParallelExecutor("process", jobs=2)
        with pytest.raises(EnsembleError):
            executor.run(ens, (1.0, 32))
        assert executor.shm_names_created
        for name in executor.shm_names_created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_serial_results_match_shm_shipped_results(self):
        """Shipping through shared memory must not change a single bit."""
        systems = [big_dense_system(80), big_dense_system(81)]
        ens = Ensemble([(s, 1.0) for s in systems])
        serial = ParallelExecutor("serial", jobs=2).run(ens, (1.0, 32))
        process = ParallelExecutor("process", jobs=2).run(ens, (1.0, 32))
        # members have different state dims: compare member-wise
        for s_res, p_res in zip(serial, process):
            assert np.array_equal(s_res.coefficients, p_res.coefficients)

"""Contract tests for the array-API backend seam (engine.array_api).

The numpy namespace implements the same array-API standard the CuPy
and torch device paths target, so these tests drive the *device* code
path (``prepare_rhs`` staging, in-namespace sweeps, ``to_host``
transfer, host-only gates) on CI machines without a GPU.  Accelerator
libraries are optional: when absent, requesting them must fail with
the engine's typed error, never an ImportError.
"""

import importlib.util

import numpy as np
import pytest

from repro.core import DescriptorSystem, MultiTermSystem, Simulator
from repro.engine.array_api import (
    ARRAY_BACKEND_ENV,
    KNOWN_ARRAY_BACKENDS,
    env_backend,
    resolve_namespace,
    to_host,
)
from repro.engine.backends import (
    ArrayApiBackend,
    DenseBackend,
    SparseBackend,
    select_backend,
)
from repro.errors import SolverError

GRID = (5.0, 48)


def rc_system(n: int = 12) -> DescriptorSystem:
    main = -2.0 * np.ones(n)
    off = np.ones(n - 1)
    A = np.diag(main) + np.diag(off, 1) + np.diag(off, -1)
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    return DescriptorSystem(np.eye(n), A, B)


class TestResolveNamespace:
    def test_numpy_always_available(self):
        module, name = resolve_namespace("numpy")
        assert module is np and name == "numpy"

    def test_prefix_and_case_normalised(self):
        assert resolve_namespace("array-api:numpy")[1] == "numpy"
        assert resolve_namespace(" NumPy ")[1] == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError, match="unknown array backend"):
            resolve_namespace("jax")

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_absent_accelerator_is_typed_error(self, name):
        if importlib.util.find_spec(name) is not None:
            pytest.skip(f"{name} is installed here")
        with pytest.raises(SolverError, match="not installed"):
            resolve_namespace(name)


class TestEnvBackend:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        assert env_backend() is None

    @pytest.mark.parametrize("value", ["", "off", "none", "0", "false", " OFF "])
    def test_disable_spellings(self, monkeypatch, value):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, value)
        assert env_backend() is None

    def test_name_normalised(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, " NumPy ")
        assert env_backend() == "numpy"


class TestToHost:
    def test_ndarray_passes_through_without_copy(self):
        x = np.arange(4.0)
        assert to_host(x) is x

    def test_cupy_style_get(self):
        class FakeDevice:
            def get(self):
                return np.ones(3)

        np.testing.assert_array_equal(to_host(FakeDevice()), np.ones(3))

    def test_torch_style_detach_chain(self):
        class FakeTensor:
            def detach(self):
                return self

            def cpu(self):
                return self

            def numpy(self):
                return np.full(2, 7.0)

        np.testing.assert_array_equal(to_host(FakeTensor()), [7.0, 7.0])


class TestArrayApiBackend:
    def test_solve_matches_dense_lu(self, rng):
        n = 10
        E = np.eye(n) + 0.1 * rng.standard_normal((n, n))
        A = -np.eye(n) - 0.1 * rng.standard_normal((n, n))
        rhs = rng.standard_normal((n, 5))
        api = ArrayApiBackend(E, A, namespace="numpy")
        lu = DenseBackend(E, A)
        x_api = api.solve(api.factorize(2.0), api.prepare_rhs(rhs))
        x_lu = lu.solve(lu.factorize(2.0), rhs)
        np.testing.assert_allclose(api.to_host(x_api), x_lu, atol=1e-10)

    def test_singular_pencil_raises(self):
        backend = ArrayApiBackend(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(SolverError, match="singular"):
            backend.factorize(1.0)

    def test_nonfinite_inverse_is_singular(self):
        # near-singular pencils may "invert" to inf/nan on devices
        backend = ArrayApiBackend(np.eye(2), np.eye(2))
        assert not backend.all_finite(np.array([1.0, np.inf]))
        with pytest.raises(SolverError, match="singular"):
            backend.factorize(1.0)

    def test_select_backend_forced_modes(self):
        for mode in ("numpy", "array-api:numpy"):
            backend = select_backend(np.eye(4), -np.eye(4), mode=mode)
            assert isinstance(backend, ArrayApiBackend)
            assert backend.name == "array-api[numpy]"
            assert backend.is_host  # numpy namespace stays host-side

    def test_env_opt_in_under_auto(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "numpy")
        backend = select_backend(np.eye(4), -np.eye(4), mode="auto")
        assert isinstance(backend, ArrayApiBackend)
        # host-only callers opt out regardless of the environment
        backend = select_backend(
            np.eye(4), -np.eye(4), mode="auto", allow_env=False
        )
        assert isinstance(backend, DenseBackend)
        # explicit classic modes win over the env opt-in
        backend = select_backend(np.eye(4), -np.eye(4), mode="sparse")
        assert isinstance(backend, SparseBackend)


class TestSessionRoutes:
    """End-to-end solves through the array-API (device) code path."""

    def test_run_matches_dense_backend(self):
        system = rc_system()
        host = Simulator(system, GRID, backend="dense").run(np.sin)
        api = Simulator(system, GRID, backend="numpy").run(np.sin)
        np.testing.assert_allclose(
            api.coefficients, host.coefficients, atol=1e-10
        )

    def test_sweep_matches_dense_backend(self):
        system = rc_system()
        host = Simulator(system, GRID, backend="dense").sweep([0.5, 2.0])
        api = Simulator(system, GRID, backend="numpy").sweep([0.5, 2.0])
        np.testing.assert_allclose(
            api.coefficients, host.coefficients, atol=1e-10
        )

    def test_forced_device_path_matches_host(self, monkeypatch):
        """With ``is_host`` forced off, the session must stage the RHS
        through ``prepare_rhs`` and transfer results back -- under the
        numpy namespace both paths perform identical arithmetic."""
        original = ArrayApiBackend.__init__

        def device_init(self, E, A, *, namespace="numpy"):
            original(self, E, A, namespace=namespace)
            self.is_host = False

        system = rc_system()
        host = Simulator(system, GRID, backend="numpy").run(np.sin)
        monkeypatch.setattr(ArrayApiBackend, "__init__", device_init)
        device = Simulator(system, GRID, backend="numpy").run(np.sin)
        np.testing.assert_array_equal(device.coefficients, host.coefficients)

    def test_march_is_host_only(self, monkeypatch):
        original = ArrayApiBackend.__init__

        def device_init(self, E, A, *, namespace="numpy"):
            original(self, E, A, namespace=namespace)
            self.is_host = False

        monkeypatch.setattr(ArrayApiBackend, "__init__", device_init)
        sim = Simulator(rc_system(), (1.0, 16), backend="numpy")
        with pytest.raises(SolverError, match="host-only"):
            sim.march(np.sin, 2.0)

    @pytest.mark.parametrize("mode", KNOWN_ARRAY_BACKENDS)
    def test_spectral_plans_refuse_array_backends(self, mode):
        with pytest.raises(SolverError, match="host-only"):
            Simulator(rc_system(), (5.0, 16), basis="chebyshev", backend=mode)

    def test_multiterm_plans_refuse_array_backends(self):
        system = MultiTermSystem(
            [(1.0, np.eye(2)), (0.5, 0.1 * np.eye(2)), (0.0, np.eye(2))],
            np.ones((2, 1)),
        )
        with pytest.raises(SolverError, match="host-only"):
            Simulator(system, (1.0, 16), backend="numpy")

    def test_env_opt_in_never_hijacks_spectral(self, monkeypatch):
        """REPRO_ARRAY_BACKEND steers only the dense first-order route;
        spectral sessions must keep working under the opt-in."""
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "numpy")
        res = Simulator(rc_system(), (5.0, 16), basis="chebyshev").run(1.0)
        assert np.all(np.isfinite(res.coefficients))

"""Tests for the cached Simulator session."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.basis import TimeGrid
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    MultiTermSystem,
    Simulator,
    simulate_multiterm,
    simulate_opm,
)
from repro.errors import SolverError

from ..conftest import stable_dense_system


class TestSessionBasics:
    def test_matches_one_shot_solver(self, scalar_ode):
        sim = Simulator(scalar_ode, (5.0, 200))
        res = sim.run(1.0)
        ref = simulate_opm(scalar_ode, 1.0, (5.0, 200))
        np.testing.assert_allclose(res.coefficients, ref.coefficients, atol=1e-14)
        assert res.info["method"] == ref.info["method"] == "opm-alternating"

    def test_warm_run_reuses_factorisation(self, scalar_ode):
        sim = Simulator(scalar_ode, (5.0, 100))
        first = sim.run(1.0)
        second = sim.run(lambda t: np.sin(t))
        assert sim.factorisations == 1
        assert first.info["warm"] is False
        assert second.info["warm"] is True
        assert sim.runs == 2

    def test_fractional_session(self, scalar_fde):
        sim = Simulator(scalar_fde, (2.0, 300))
        res = sim.run(1.0)
        ref = simulate_opm(scalar_fde, 1.0, (2.0, 300))
        np.testing.assert_allclose(res.coefficients, ref.coefficients, atol=1e-14)
        assert res.info["method"] == "opm-toeplitz"
        sim.run(2.0)
        assert sim.factorisations == 1

    def test_fft_history_session(self, scalar_fde):
        sim = Simulator(scalar_fde, (2.0, 128), history="fft")
        ref = Simulator(scalar_fde, (2.0, 128)).run(1.0)
        res = sim.run(1.0)
        assert res.info["method"] == "opm-toeplitz-fft"
        np.testing.assert_allclose(res.coefficients, ref.coefficients, atol=1e-9)

    def test_adaptive_grid_session(self, rng):
        system = stable_dense_system(rng, 4)
        grid = TimeGrid.geometric(2.0, 64, 1.05)
        sim = Simulator(system, grid)
        res = sim.run(1.0)
        ref = simulate_opm(system, 1.0, grid)
        np.testing.assert_allclose(res.coefficients, ref.coefficients, atol=1e-14)
        assert res.info["method"] == "opm-general"
        # revisiting the same grid reuses all per-step factorisations
        count = sim.factorisations
        sim.run(2.0)
        assert sim.factorisations == count

    def test_multiterm_session(self):
        msys = MultiTermSystem(
            [(2.0, np.eye(1)), (0.5, 0.5 * np.eye(1)), (0.0, np.eye(1))],
            [[1.0]],
        )
        sim = Simulator(msys, (10.0, 128))
        res = sim.run(1.0)
        ref = simulate_multiterm(msys, 1.0, (10.0, 128))
        np.testing.assert_allclose(res.coefficients, ref.coefficients, atol=1e-14)
        assert res.info["method"] == "opm-multiterm"
        sim.run(0.5)
        assert sim.factorisations == 1

    def test_multiterm_rejects_adaptive_grid(self):
        msys = MultiTermSystem([(2.0, np.eye(1)), (0.0, np.eye(1))], [[1.0]])
        with pytest.raises(SolverError, match="uniform"):
            Simulator(msys, TimeGrid.geometric(1.0, 16, 1.1))

    def test_nonzero_initial_state(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[2.0])
        sim = Simulator(system, (5.0, 400))
        res = sim.run(0.0)
        # free decay from x0=2: x(t) = 2 e^{-t}
        t = np.array([1.0, 3.0])
        np.testing.assert_allclose(
            res.states_smooth(t)[0], 2.0 * np.exp(-t), atol=2e-3
        )

    def test_rejects_bad_system(self):
        with pytest.raises(TypeError, match="DescriptorSystem"):
            Simulator("not a system", (1.0, 8))

    def test_rejects_bad_grid(self, scalar_ode):
        with pytest.raises(TypeError, match="grid"):
            Simulator(scalar_ode, 5.0)

    def test_rejects_bad_history(self, scalar_ode):
        with pytest.raises(SolverError, match="history"):
            Simulator(scalar_ode, (1.0, 8), history="magic")


class TestBackendChoice:
    def test_small_system_uses_dense(self, scalar_ode):
        assert Simulator(scalar_ode, (1.0, 8)).backend == "dense"

    def test_large_sparse_system_uses_sparse(self):
        n = 400
        A = sp.diags(
            [np.ones(n - 1), -2.0 * np.ones(n), np.ones(n - 1)], [-1, 0, 1]
        ).tocsr()
        system = DescriptorSystem(sp.identity(n, format="csr"), A, np.ones((n, 1)))
        sim = Simulator(system, (1.0, 16))
        assert sim.backend == "sparse"
        res = sim.run(1.0)
        assert res.info["backend"] == "sparse"

    def test_multiterm_sparse_pencil_stays_sparse(self):
        # explicit zeros in the pencil-sum pattern must not inflate the
        # density estimate used for auto backend selection
        n = 300
        M2 = sp.identity(n, format="csr")
        M0 = sp.diags(
            [np.ones(n - 1), 2.0 * np.ones(n), np.ones(n - 1)], [-1, 0, 1]
        ).tocsr()
        msys = MultiTermSystem([(2.0, M2), (0.0, M0)], np.ones((n, 1)))
        assert Simulator(msys, (1.0, 8)).backend == "sparse"

    def test_forced_backends_agree(self, rng):
        system = stable_dense_system(rng, 5)
        dense = Simulator(system, (2.0, 64), backend="dense").run(1.0)
        sparse = Simulator(system, (2.0, 64), backend="sparse").run(1.0)
        np.testing.assert_allclose(
            dense.coefficients, sparse.coefficients, rtol=1e-9, atol=1e-12
        )

"""Multi-component decks: parallel sub-pencil solve and lint gating.

A deck whose circuit graph has several connected components is a
permuted block-diagonal pencil, so solving each component as its own
sub-pencil through the :class:`ParallelExecutor` and re-stitching the
coefficient rows must reproduce the monolithic solve **bit for bit**
-- partial-pivoted LU performs identical per-block arithmetic either
way.  The same graph layer gates every entry point (library, CLI,
service) so structurally singular decks fail *before* factorisation
with named nodes, not inside LAPACK.
"""

import threading

import numpy as np
import pytest

from repro.__main__ import run
from repro.circuits import CircuitGraph, Netlist
from repro.circuits.netlist import NetlistError
from repro.engine.netlist_session import simulate_netlist
from repro.engine.service import ServiceClient, serve
from repro.errors import ServiceError

PAIR_DECK = """
* two galvanically isolated stages
I1 0 a1 SIN(0 1m 500)
R1 a1 0 1k
C1 a1 0 1u
V2 b1 0 PULSE(0 1 1e-4 1e-5 1e-5 5e-4 2m)
R2 b1 b2 50
L2 b2 b3 1m
C2 b3 0 2u
.tran 10u 2m
"""

TRIO_DECK = """
I1 0 a1 SIN(0 1m 500)
R1 a1 0 1k
C1 a1 0 1u
I2 0 b1 SIN(0 2m 300)
R2 b1 0 2k
C2 b1 0 2u
V3 c1 0 SIN(0 1 1k)
R3 c1 c2 100
C3 c2 0 1u
.tran 10u 2m
"""

FLOATING_DECK = """
V1 in 0 SIN(0 1 1k)
R1 in stub 1k
.tran 10u 1m
"""

NO_DC_DECK = """
V1 in 0 SIN(0 1 1k)
R1 in 0 1k
C2 x1 x2 1u
R2 x2 x1 1k
.tran 10u 1m
"""


def _assert_bit_identical(got, ref):
    np.testing.assert_array_equal(got.coefficients, ref.coefficients)
    np.testing.assert_array_equal(
        got.input_coefficients, ref.input_coefficients
    )
    t = ref.sample_times()
    np.testing.assert_array_equal(got.outputs(t), ref.outputs(t))


class TestSplitSolve:
    def test_thread_split_bit_identical_to_serial(self):
        ref = simulate_netlist(PAIR_DECK).tran
        got = simulate_netlist(PAIR_DECK, jobs=2, parallel="thread").tran
        split = got.info.get("split")
        assert split is not None and split["components"] == 2
        assert ref.info.get("split") is None
        _assert_bit_identical(got, ref)

    def test_process_split_bit_identical_to_serial(self):
        ref = simulate_netlist(PAIR_DECK).tran
        got = simulate_netlist(PAIR_DECK, jobs=2, parallel="process").tran
        assert got.info.get("split", {}).get("executor") == "process"
        _assert_bit_identical(got, ref)

    def test_three_components_two_workers(self):
        ref = simulate_netlist(TRIO_DECK).tran
        got = simulate_netlist(TRIO_DECK, jobs=2, parallel="thread").tran
        assert got.info["split"]["components"] == 3
        _assert_bit_identical(got, ref)

    def test_single_component_stays_monolithic(self):
        deck = "I1 0 n1 SIN(0 1m 500)\nR1 n1 0 1k\nC1 n1 0 1u\n.tran 10u 2m\n"
        got = simulate_netlist(deck, jobs=2, parallel="thread").tran
        assert got.info.get("split") is None

    def test_windowed_march_stays_monolithic(self):
        got = simulate_netlist(
            PAIR_DECK, jobs=2, windows=4, parallel="thread"
        ).tran
        assert got.info.get("split") is None

    def test_stitched_result_evaluates_like_monolithic(self):
        ref = simulate_netlist(PAIR_DECK).tran
        got = simulate_netlist(PAIR_DECK, jobs=2, parallel="thread").tran
        t = got.sample_times()
        np.testing.assert_array_equal(t, ref.sample_times())
        np.testing.assert_array_equal(
            got.outputs_smooth(t), ref.outputs_smooth(t)
        )


class TestLintGatesEveryEntryPoint:
    @pytest.mark.parametrize("deck", [FLOATING_DECK, NO_DC_DECK])
    def test_library_fails_before_factorisation(self, deck):
        with pytest.raises(NetlistError, match="structural defect"):
            simulate_netlist(deck)

    def test_cli_lint_flag_reports_and_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.cir"
        path.write_text(FLOATING_DECK)
        code = run([str(path), "--lint"])
        out = capsys.readouterr().out
        assert code == 1
        assert "floating-node" in out and "stub" in out

    def test_cli_lint_flag_clean_deck_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.cir"
        path.write_text("I1 0 n1 1m\nR1 n1 0 1k\nC1 n1 0 1u\n.tran 50u 5m\n")
        code = run([str(path), "--lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint: clean" in out

    def test_cli_solve_of_defective_deck_fails_fast(self, tmp_path, capsys):
        path = tmp_path / "bad.cir"
        path.write_text(NO_DC_DECK)
        code = run([str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "no-dc-path" in err or "conductive" in err

    def test_service_lint_op_and_simulate_gate(self):
        started = threading.Event()
        box = {}

        def announce(svc):
            box["svc"] = svc
            started.set()

        thread = threading.Thread(
            target=serve, kwargs={"announce": announce, "port": 0},
            daemon=True,
        )
        thread.start()
        assert started.wait(15), "service failed to start"
        try:
            with ServiceClient("127.0.0.1", box["svc"].port) as client:
                out = client.lint(FLOATING_DECK)
                assert out["report"]["ok"] is False
                codes = [i["code"] for i in out["report"]["issues"]]
                assert codes == ["floating-node"]
                assert out["summary"]["components"] == 1
                clean = client.lint(PAIR_DECK)
                assert clean["report"]["ok"] is True
                assert clean["summary"]["components"] == 2
                with pytest.raises(ServiceError, match="structural defect"):
                    client.simulate(netlist=FLOATING_DECK)
        finally:
            try:
                with ServiceClient("127.0.0.1", box["svc"].port) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass
            thread.join(timeout=15)


class TestCliSplit:
    def test_jobs_on_multi_component_deck(self, tmp_path, capsys):
        path = tmp_path / "pair.cir"
        path.write_text(PAIR_DECK)
        code = run([str(path), "--jobs", "2", "--parallel", "thread",
                    "--points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "component split: 2 independent sub-pencils" in out

    def test_jobs_on_single_component_deck_still_guided(
        self, tmp_path, capsys
    ):
        path = tmp_path / "one.cir"
        path.write_text(
            "I1 0 n1 1m\nR1 n1 0 1k\nC1 n1 0 1u\n.tran 50u 5m\n"
        )
        code = run([str(path), "--jobs", "2"])
        err = capsys.readouterr().err
        assert code == 1
        assert "--jobs" in err and "connected component" in err

    def test_cli_split_matches_serial_csv(self, tmp_path, capsys):
        path = tmp_path / "pair.cir"
        path.write_text(PAIR_DECK)
        serial_csv = tmp_path / "serial.csv"
        split_csv = tmp_path / "split.csv"
        assert run([str(path), "--csv", str(serial_csv)]) == 0
        assert run([str(path), "--jobs", "2", "--parallel", "thread",
                    "--csv", str(split_csv)]) == 0
        capsys.readouterr()
        assert split_csv.read_text() == serial_csv.read_text()

"""Tests for the windowed time-marching engine (engine.marching)."""

import numpy as np
import pytest

from repro.circuits import assemble_mna, power_grid
from repro.core import (
    DescriptorSystem,
    Event,
    FractionalDescriptorSystem,
    MultiTermSystem,
    Simulator,
    simulate,
    simulate_opm,
)
from repro.basis.grid import TimeGrid
from repro.errors import ModelError, SolverError
from repro.fractional import simulate_grunwald_letnikov
from repro.fractional.history import HistoryTail, history_dot, history_weights


def dense_system(n=6, seed=0, x0=False, alpha=None):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) - 3.0 * np.eye(n)
    E = np.eye(n) + 0.1 * rng.standard_normal((n, n))
    B = rng.standard_normal((n, 1))
    init = rng.standard_normal(n) if x0 else None
    if alpha is None:
        return DescriptorSystem(E, A, B, x0=init)
    return FractionalDescriptorSystem(alpha, E, A, B, x0=init)


def sine(t):
    return np.sin(3.0 * t)


class TestHistoryHelpers:
    def test_history_dot_matches_loop(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((4, 10))
        w = rng.standard_normal(11)
        k = 7
        expect = sum(w[j] * X[:, k - j] for j in range(1, k + 1))
        np.testing.assert_allclose(history_dot(X, w, k), expect)

    def test_history_dot_empty(self):
        assert np.all(history_dot(np.zeros((3, 5)), np.ones(6), 0) == 0.0)

    def test_history_weights_layout(self):
        c = np.arange(20.0)
        W = history_weights(c, start=4, count=3)
        assert W.shape == (4, 3)
        # W[i, j] = c[start + j - i]
        for i in range(4):
            np.testing.assert_array_equal(W[i], c[4 - i : 7 - i])

    def test_history_weights_needs_enough_coeffs(self):
        with pytest.raises(SolverError):
            history_weights(np.ones(5), start=4, count=3)

    def test_tail_matches_direct_convolution(self):
        rng = np.random.default_rng(5)
        c = rng.standard_normal(40)
        tail = HistoryTail(c, block_columns=4)
        blocks = [rng.standard_normal((3, 10)) for _ in range(2)]
        X = np.concatenate(blocks, axis=1)
        for b in blocks:
            tail.append(b)
        H = tail.tail(10)
        for j in range(10):
            expect = sum(c[20 + j - i] * X[:, i] for i in range(20))
            np.testing.assert_allclose(H[:, j], expect, atol=1e-12)

    def test_tail_none_before_any_append(self):
        assert HistoryTail(np.ones(8)).tail(4) is None


class TestClassicalMarch:
    """Windowed == single-window for first-order systems (exact restart)."""

    def test_matches_single_window_power_grid_10x_horizon(self):
        """Acceptance: >=100-state grid, 10x horizon, max-abs <= 1e-8."""
        netlist = power_grid(6, 6, nz=2)
        system = assemble_mna(netlist)
        assert system.n_states >= 100
        u = netlist.input_function()
        window, m, K = 1e-9, 40, 10

        sim = Simulator(system, (window, m))
        marched = sim.march(u, K * window)
        reference = simulate_opm(system, u, (K * window, K * m))
        drift = np.max(np.abs(marched.coefficients - reference.coefficients))
        assert drift <= 1e-8
        assert sim.factorisations == 1
        assert marched.n_windows == K

    def test_matches_single_window_with_x0(self):
        system = dense_system(x0=True)
        sim = Simulator(system, (0.5, 32))
        marched = sim.march(sine, 4.0)
        reference = simulate_opm(system, sine, (4.0, 8 * 32))
        np.testing.assert_allclose(
            marched.coefficients, reference.coefficients, atol=1e-10
        )

    def test_one_window_degenerates_to_run(self):
        system = dense_system()
        sim = Simulator(system, (1.0, 64))
        marched = sim.march(sine, 1.0)
        single = sim.run(sine)
        np.testing.assert_allclose(
            marched.coefficients, single.coefficients, atol=1e-12
        )

    def test_coefficient_array_input(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 16))
        U = np.linspace(0.0, 1.0, 8 * 16).reshape(1, -1)
        marched = sim.march(U, 4.0)
        reference = simulate_opm(system, U, (4.0, 8 * 16))
        np.testing.assert_allclose(
            marched.coefficients, reference.coefficients, atol=1e-10
        )

    def test_streaming_chunks_equal_global_callable(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 16))
        chunks = ((lambda tl, off=0.5 * k: sine(tl + off)) for k in range(8))
        streamed = sim.march(chunks, 4.0)
        direct = sim.march(sine, 4.0)
        np.testing.assert_allclose(
            streamed.coefficients, direct.coefficients, atol=1e-13
        )

    def test_exhausted_stream_raises(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 16))
        with pytest.raises(SolverError, match="stream exhausted"):
            sim.march(iter([1.0, 1.0]), 2.0)


class TestFractionalMarch:
    """Windowed fractional marching carries the full memory tail."""

    def test_matches_single_window_solve(self):
        system = dense_system(alpha=0.7)
        sim = Simulator(system, (0.5, 32))
        marched = sim.march(sine, 4.0)
        reference = simulate_opm(system, sine, (4.0, 8 * 32))
        np.testing.assert_allclose(
            marched.coefficients, reference.coefficients, atol=1e-10
        )
        assert sim.factorisations == 1

    def test_matches_single_window_with_x0(self):
        system = dense_system(x0=True, alpha=0.6)
        sim = Simulator(system, (0.5, 32))
        marched = sim.march(sine, 4.0)
        reference = simulate_opm(system, sine, (4.0, 8 * 32))
        np.testing.assert_allclose(
            marched.coefficients, reference.coefficients, atol=1e-10
        )

    def test_within_tolerance_of_gl_reference(self):
        """Acceptance: fractional march vs GL baseline with nonzero tail."""
        netlist = power_grid(6, 6, nz=2)
        mna = assemble_mna(netlist)
        assert mna.n_states >= 100
        # fractional power grid: same topology, alpha-order dynamics
        system = FractionalDescriptorSystem(0.9, mna.E, mna.A, mna.B)
        u = netlist.input_function()
        t_end, K, m = 10e-9, 10, 60

        sim = Simulator(system, (t_end / K, m))
        marched = sim.march(u, t_end)
        gl = simulate_grunwald_letnikov(system, u, t_end, K * m)
        t = np.linspace(0.3e-9, 9.7e-9, 25)
        diff = np.max(np.abs(marched.states_smooth(t) - gl.states(t)))
        assert diff <= 1e-4

    def test_fft_history_window_matches_direct(self):
        system = dense_system(alpha=0.5)
        direct = Simulator(system, (0.5, 64), history="direct").march(sine, 3.0)
        fft = Simulator(system, (0.5, 64), history="fft").march(sine, 3.0)
        np.testing.assert_allclose(
            direct.coefficients, fft.coefficients, atol=1e-9
        )


class TestEvents:
    def test_restamp_caches_both_pencils(self):
        """Acceptance: events re-stamp; the PencilBank caches both pencils."""
        system = dense_system()
        n = system.n_states
        A2 = system.A - 0.5 * np.eye(n)
        sim = Simulator(system, (0.5, 16))
        result = sim.march(sine, 4.0, events=[Event(t=2.0, A=A2, label="close")])
        bank = sim._plan.bank
        assert bank.stamps == 2
        assert sim.factorisations == 2
        assert result.info["restamps"] == 1
        assert result.info["events"][0]["label"] == "close"

    def test_toggling_back_reuses_cached_pencil(self):
        system = dense_system()
        A2 = system.A - 0.5 * np.eye(system.n_states)
        sim = Simulator(system, (0.5, 16))
        sim.march(
            sine,
            4.0,
            events=[Event(t=1.0, A=A2), Event(t=2.0, A=system.A), Event(t=3.0, A=A2)],
        )
        bank = sim._plan.bank
        assert bank.stamps == 2  # only two distinct configurations
        assert sim.factorisations == 2  # ... and no re-factorisation on toggle

    def test_piecewise_constant_A_matches_split_reference(self):
        """Event solve == two manual solves glued at the boundary."""
        system = dense_system()
        n = system.n_states
        A2 = system.A - 1.0 * np.eye(n)
        sim = Simulator(system, (0.5, 32))
        marched = sim.march(sine, 4.0, events=[Event(t=2.0, A=A2)])

        # manual reference: solve [0,2], then restart [2,4] on the new A
        # from the exact terminal flux E x(T) = h * sum_j (A x_j + B u_j)
        first = simulate_opm(system, sine, (2.0, 4 * 32))
        h = 2.0 / (4 * 32)
        U1 = first.input_coefficients
        w = h * (
            system.A @ first.coefficients.sum(axis=1) + system.B @ U1.sum(axis=1)
        )
        x0_equiv = np.linalg.solve(system.E, w)
        second_sys = DescriptorSystem(
            system.E, A2, system.B, x0=x0_equiv
        )
        second = simulate_opm(
            second_sys, lambda t: sine(t + 2.0), (2.0, 4 * 32)
        )
        np.testing.assert_allclose(
            marched.coefficients[:, : 4 * 32], first.coefficients, atol=1e-10
        )
        np.testing.assert_allclose(
            marched.coefficients[:, 4 * 32 :], second.coefficients, atol=1e-8
        )

    def test_scale_event_is_load_step(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 16))
        result = sim.march(1.0, 2.0, events=[Event(t=1.0, scale=2.0)])
        U = np.concatenate([w.input_coefficients for w in result.windows], axis=1)
        assert np.allclose(U[:, :32], 1.0) and np.allclose(U[:, 32:], 2.0)

    def test_event_swaps_input(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 16))
        result = sim.march(0.0, 2.0, events=[Event(t=1.5, u=1.0)])
        U = np.concatenate([w.input_coefficients for w in result.windows], axis=1)
        assert np.allclose(U[:, :48], 0.0) and np.allclose(U[:, 48:], 1.0)

    def test_session_pencil_restored_after_eventful_march(self):
        """Regression: an eventful march must not leave the session bound
        to the event pencil (later runs would silently use the wrong LU)."""
        system = dense_system()
        sim = Simulator(system, (0.5, 32))
        before = sim.run(sine).coefficients
        A2 = system.A - 2.0 * np.eye(system.n_states)
        sim.march(sine, 2.0, events=[Event(t=1.0, A=A2)])
        after = sim.run(sine).coefficients
        np.testing.assert_array_equal(before, after)
        # ... and a fresh event-free march still matches the reference
        marched = sim.march(sine, 2.0)
        reference = simulate_opm(system, sine, (2.0, 4 * 32))
        np.testing.assert_allclose(
            marched.coefficients, reference.coefficients, atol=1e-10
        )

    def test_event_validation(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 16))
        with pytest.raises(SolverError, match="changes nothing"):
            Event(t=1.0)
        with pytest.raises(SolverError, match="window boundary"):
            sim.march(sine, 2.0, events=[Event(t=0.7, scale=2.0)])
        with pytest.raises(SolverError, match="strictly inside"):
            sim.march(sine, 2.0, events=[Event(t=2.0, scale=2.0)])
        with pytest.raises(ModelError, match="dimensions"):
            sim.march(
                sine, 2.0, events=[Event(t=1.0, system=dense_system(n=4))]
            )
        with pytest.raises(ModelError, match="fractional order"):
            sim.march(
                sine,
                2.0,
                events=[Event(t=1.0, system=dense_system(alpha=0.5))],
            )


class TestMarchingResult:
    @pytest.fixture
    def marched(self):
        system = dense_system()
        sim = Simulator(system, (0.5, 32))
        return sim.march(sine, 4.0), simulate_opm(system, sine, (4.0, 8 * 32))

    def test_sampling_matches_reference(self, marched):
        result, reference = marched
        t = np.linspace(0.0, 4.0, 101)
        np.testing.assert_allclose(
            result.states(t), reference.states(t), atol=1e-12
        )
        np.testing.assert_allclose(
            result.outputs_smooth(t), reference.outputs_smooth(t), atol=1e-12
        )

    def test_shape_properties(self, marched):
        result, _ = marched
        assert result.n_windows == len(result) == 8
        assert result.window_m == 32
        assert result.m == 256
        assert result.t_end == pytest.approx(4.0)
        assert result.midpoints.size == 256
        np.testing.assert_allclose(
            result.sample_times(), result.midpoints
        )

    def test_window_indexing(self, marched):
        result, _ = marched
        window = result[3]
        assert window.info["window_index"] == 3
        assert window.info["t_offset"] == pytest.approx(1.5)
        assert window.m == 32
        np.testing.assert_array_equal(
            window.coefficients, result.coefficients[:, 96:128]
        )

    def test_terminal_state_estimate(self, marched):
        result, reference = marched
        # compare against the reference's own endpoint extrapolation
        X = reference.coefficients
        expect = 1.5 * X[:, -1] - 0.5 * X[:, -2]
        np.testing.assert_allclose(result.terminal_state(), expect, atol=1e-10)

    def test_out_of_range_times_rejected(self, marched):
        result, _ = marched
        with pytest.raises(ValueError):
            result.states([4.5])

    def test_empty_times(self, marched):
        result, _ = marched
        assert result.states(np.array([])).shape == (result.n_states, 0)
        assert result.outputs(np.array([])).shape[1] == 0

    def test_endpoint_roundoff_accepted(self, marched):
        """A global time just past t_end (within tolerance) must sample
        the last window instead of tripping the window-local bound."""
        result, reference = marched
        t = result.t_end * (1 + 0.9e-12)
        np.testing.assert_allclose(
            result.states([t]), reference.states([result.t_end]), atol=1e-12
        )

    def test_info(self, marched):
        result, _ = marched
        assert result.info["method"] == "opm-windowed"
        assert result.info["windows"] == 8
        assert result.info["stamps"] == 1


class TestGuards:
    def test_multiterm_rejected(self):
        msys = MultiTermSystem(
            [(2.0, np.eye(2)), (1.0, 0.2 * np.eye(2)), (0.0, np.eye(2))],
            np.ones((2, 1)),
        )
        sim = Simulator(msys, (1.0, 16))
        with pytest.raises(SolverError, match="descriptor"):
            sim.march(1.0, 4.0)

    def test_adaptive_grid_rejected(self):
        system = dense_system()
        sim = Simulator(system, TimeGrid.geometric(1.0, 16, 1.2))
        with pytest.raises(SolverError, match="uniform"):
            sim.march(1.0, 4.0)

    def test_misaligned_horizon_rejected(self):
        sim = Simulator(dense_system(), (0.5, 16))
        with pytest.raises(SolverError, match="window boundary"):
            sim.march(1.0, 4.2)

    def test_nonpositive_horizon_rejected(self):
        sim = Simulator(dense_system(), (0.5, 16))
        with pytest.raises(SolverError, match="positive"):
            sim.march(1.0, -1.0)

    def test_bad_input_type_rejected(self):
        sim = Simulator(dense_system(), (0.5, 16))
        with pytest.raises(ModelError, match="march input"):
            sim.march(object(), 2.0)

    def test_bad_coefficient_shape_rejected(self):
        sim = Simulator(dense_system(), (0.5, 16))
        with pytest.raises(ModelError, match="K \\* m"):
            sim.march(np.ones((1, 17)), 2.0)


class TestDispatch:
    def test_opm_windowed_method(self):
        system = dense_system()
        windowed = simulate(
            system, sine, 4.0, 128, method="opm-windowed", windows=8
        )
        reference = simulate(system, sine, 4.0, 128, method="opm")
        np.testing.assert_allclose(
            windowed.coefficients, reference.coefficients, atol=1e-10
        )
        assert windowed.info["windows"] == 8

    def test_indivisible_steps_rejected(self):
        with pytest.raises(SolverError, match="divisible"):
            simulate(
                dense_system(), sine, 4.0, 100, method="opm-windowed", windows=7
            )

    def test_bad_window_count_rejected(self):
        with pytest.raises(SolverError, match="windows"):
            simulate(
                dense_system(), sine, 4.0, 100, method="opm-windowed", windows=0
            )

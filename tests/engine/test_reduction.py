"""Tests for certified reduced-order engine plans (engine.reduction).

The contract under test: a bound :class:`ReductionPlan` must (a) hand
back results within its certified tolerance of the full solve on every
plan family (run / sweep / march, block-pulse and spectral bases),
(b) *refuse* -- loudly for explicit plans, silently with a recorded
reason for ``"auto"`` -- whenever the certificate cannot be issued,
and (c) fall back to bit-identical full-model arithmetic whenever a
certificate is violated.  Workload constants below were calibrated by
measurement: a 16-moment plan certifies the RC ladders on these grids
with bounds around ``1e-8``, while the default 12-moment auto plan
certifies the 600-state ladder only on the shorter ``(2.0, 32)`` grid.
"""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    Simulator,
)
from repro.engine.executor import Ensemble, ParallelExecutor
from repro.engine.reduction import (
    AUTO_MIN_STATES,
    OffsetDescriptorSystem,
    ReductionPlan,
    clear_model_cache,
    combine_reduce_options,
    equation_residual,
    reduced_model_for,
    resolve_reduce,
)
from repro.errors import SolverError

GRID = (5.0, 64)
#: 16 block moments certify the ladders on GRID (measured bounds
#: 5.9e-8 at n=600, tighter at n=80); the default 12-moment plan
#: does *not* certify there -- see TestAutoEligibility.
PLAN = ReductionPlan(n_moments=16)
RTOL = PLAN.rtol

PARALLEL_BACKENDS = [
    b
    for b in os.environ.get("REPRO_TEST_EXECUTOR_BACKENDS", "").split(",")
    if b
] or ["thread", "process"]


def ladder(n: int, x0=None) -> DescriptorSystem:
    """Tridiagonal RC ladder driven at the first node."""
    main = -2.0 * np.ones(n)
    off = np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    return DescriptorSystem(sp.identity(n, format="csr"), A, B, x0=x0)


def rel_dev(reduced, full, times) -> float:
    ref = full.states(times)
    return float(
        np.max(np.abs(reduced.states(times) - ref)) / np.max(np.abs(ref))
    )


@pytest.fixture(autouse=True)
def cold_cache():
    """Every test starts (and leaves) with an empty reduced-model cache."""
    clear_model_cache()
    yield
    clear_model_cache()


class TestResolveReduce:
    def test_disabled_spellings(self):
        for value in (None, False, "off", "none", "false", ""):
            assert resolve_reduce(value) == (None, False)

    def test_auto(self):
        plan, auto = resolve_reduce("auto")
        assert auto and plan == ReductionPlan()

    def test_integer_is_moment_count(self):
        plan, auto = resolve_reduce(9)
        assert not auto and plan.n_moments == 9

    def test_digit_string_is_moment_count(self):
        # CLI flags and netlist .options cards arrive as text
        plan, auto = resolve_reduce("8")
        assert not auto and plan.n_moments == 8

    def test_plan_passthrough(self):
        plan = ReductionPlan(n_moments=4, rtol=1e-4)
        assert resolve_reduce(plan) == (plan, False)

    @pytest.mark.parametrize("bad", ["fast", True, 3.5])
    def test_rejects_unknown(self, bad):
        with pytest.raises(SolverError, match="reduce must be"):
            resolve_reduce(bad)

    def test_plan_validation(self):
        with pytest.raises(SolverError, match="n_moments"):
            ReductionPlan(n_moments=0)
        with pytest.raises(SolverError, match="target_order"):
            ReductionPlan(target_order=0)
        with pytest.raises(SolverError, match="rtol"):
            ReductionPlan(rtol=0.0)


class TestCombineReduceOptions:
    def test_mor_order_implies_plan(self):
        plan = combine_reduce_options(None, 8)
        assert isinstance(plan, ReductionPlan) and plan.n_moments == 8
        plan = combine_reduce_options("auto", 8)
        assert plan.n_moments == 8

    def test_off_wins_over_mor_order(self):
        assert combine_reduce_options("off", 8) is None

    def test_bare_reduce_passes_through(self):
        assert combine_reduce_options("auto", None) == "auto"
        assert combine_reduce_options(None, None) is None


class TestOffsetDescriptorSystem:
    def test_offset_round_trip(self):
        g = np.array([1.0, -2.0])
        system = OffsetDescriptorSystem(
            np.eye(2), -np.eye(2), np.eye(2)[:, :1], offset=g
        )
        np.testing.assert_array_equal(system.shifted_input_offset(), g)

    def test_zero_offset_is_none(self):
        system = OffsetDescriptorSystem(
            np.eye(2), -np.eye(2), np.eye(2)[:, :1], offset=np.zeros(2)
        )
        assert system.shifted_input_offset() is None

    def test_wrong_length_raises(self):
        with pytest.raises(SolverError, match="offset must have length 2"):
            OffsetDescriptorSystem(
                np.eye(2), -np.eye(2), np.eye(2)[:, :1], offset=np.ones(3)
            )


class TestCertifiedAccuracy:
    """Reduced results stay within the certified tolerance of the full
    solve on every plan family and basis family."""

    times = np.linspace(0.1, 4.9, 17)

    @pytest.mark.parametrize(
        "basis,grid",
        [(None, GRID), ("chebyshev", (5.0, 24)), ("legendre", (5.0, 24))],
    )
    def test_run_within_rtol(self, basis, grid):
        system = ladder(80)
        full = Simulator(system, grid, basis=basis).run(np.sin)
        reduced = Simulator(system, grid, basis=basis, reduce=PLAN).run(np.sin)
        mor = reduced.info["mor"]
        assert mor["reduced"] and mor["certified"] and not mor["fallback"]
        assert mor["bound"] <= RTOL
        assert mor["order"] < mor["full_order"] == 80
        assert rel_dev(reduced, full, self.times) <= RTOL

    def test_sweep_within_rtol(self):
        system = ladder(80)
        amps = [0.5, 1.0, 2.0]
        full = Simulator(system, GRID).sweep(amps)
        reduced = Simulator(system, GRID, reduce=PLAN).sweep(amps)
        mor = reduced.info["mor"]
        assert mor["reduced"] and not mor["fallback"]
        for r, f in zip(reduced.results, full.results):
            assert rel_dev(r, f, self.times) <= RTOL

    def test_march_within_rtol(self):
        system = ladder(80)
        full = Simulator(system, (1.0, 32)).march(np.sin, 4.0)
        reduced = Simulator(system, (1.0, 32), reduce=PLAN).march(np.sin, 4.0)
        mor = reduced.info["mor"]
        assert mor["reduced"] and mor["bound"] <= RTOL
        assert rel_dev(reduced, full, np.linspace(0.1, 3.9, 13)) <= RTOL

    def test_nonzero_x0_within_rtol(self):
        x0 = np.zeros(80)
        x0[0], x0[40] = 1.0, -0.5
        system = ladder(80, x0=x0)
        full = Simulator(system, GRID).run(np.sin)
        reduced = Simulator(system, GRID, reduce=PLAN).run(np.sin)
        assert reduced.info["mor"]["reduced"]
        assert rel_dev(reduced, full, self.times) <= RTOL

    def test_run_residual_and_scale_recorded(self):
        reduced = Simulator(ladder(80), GRID, reduce=PLAN).run(np.sin)
        mor = reduced.info["mor"]
        assert mor["residual_scale"] >= 0.0
        assert mor["run_residual"] >= 0.0
        assert mor["reduce_seconds"] > 0.0


class TestRefusals:
    """Explicit plans raise where reduction is unsound; auto records
    its reason and runs the full model instead."""

    def fractional(self) -> FractionalDescriptorSystem:
        return FractionalDescriptorSystem(
            0.5, np.eye(3), -np.eye(3), np.ones((3, 1))
        )

    def test_fractional_explicit_raises(self):
        with pytest.raises(SolverError, match="alpha == 1"):
            Simulator(self.fractional(), GRID, reduce=PLAN)

    def test_fractional_auto_skips(self):
        result = Simulator(self.fractional(), GRID, reduce="auto").run(1.0)
        mor = result.info["mor"]
        assert not mor["reduced"] and mor["reason"] == "fractional-order"

    def test_auto_below_threshold_skips(self):
        result = Simulator(ladder(80), GRID, reduce="auto").run(np.sin)
        mor = result.info["mor"]
        assert not mor["reduced"]
        assert mor["reason"] == "below-auto-threshold"
        assert mor["threshold"] == AUTO_MIN_STATES

    def test_no_compression_skips(self):
        # a 4-state system cannot be compressed by a 16-moment basis
        result = Simulator(ladder(4), GRID, reduce=PLAN).run(np.sin)
        mor = result.info["mor"]
        assert not mor["reduced"] and mor["reason"] == "no-compression"


class TestFallbacks:
    """Certificate violations fall back to bit-identical full solves."""

    def test_bound_violation_falls_back(self):
        system = ladder(80)
        strict = ReductionPlan(n_moments=2, rtol=1e-14)
        full = Simulator(system, GRID).run(np.sin)
        reduced = Simulator(system, GRID, reduce=strict).run(np.sin)
        mor = reduced.info["mor"]
        assert not mor["reduced"]
        assert mor["reason"] == "bound-exceeded" and mor["fallback"]
        assert mor["bound"] > 1e-14
        np.testing.assert_array_equal(reduced.coefficients, full.coefficients)

    def test_drift_guard_falls_back(self):
        system = ladder(80)
        full = Simulator(system, GRID).run(np.sin)
        sim = Simulator(system, GRID, reduce=PLAN)
        # forge an impossible guard: any nonzero residual now exceeds it
        sim._mor_residual_scale = 0.0
        sim._mor_rtol = 1e-300
        result = sim.run(np.sin)
        mor = result.info["mor"]
        assert mor["reduced"] and mor["fallback"]
        np.testing.assert_array_equal(result.coefficients, full.coefficients)


class TestAutoEligibility:
    def test_auto_reduces_large_certifiable_system(self):
        # the default 12-moment plan certifies n=600 on this grid
        result = Simulator(ladder(600), (2.0, 32), reduce="auto").run(np.sin)
        mor = result.info["mor"]
        assert mor["reduced"] and mor["certified"]
        assert mor["order"] < 600

    def test_auto_honest_when_bound_exceeded(self):
        # same system, longer grid: the default plan cannot certify --
        # auto must run the full model and say why, not silently degrade
        result = Simulator(ladder(600), (10.0, 64), reduce="auto").run(np.sin)
        mor = result.info["mor"]
        assert not mor["reduced"]
        assert mor["reason"] == "bound-exceeded" and mor["fallback"]


class TestModelCache:
    def test_sessions_share_one_model(self):
        a = Simulator(ladder(80), GRID, reduce=PLAN)
        b = Simulator(ladder(80), GRID, reduce=PLAN)
        assert a.reduction is not None
        assert a.reduction is b.reduction

    def test_clear_forces_rebuild(self):
        a = Simulator(ladder(80), GRID, reduce=PLAN)
        clear_model_cache()
        b = Simulator(ladder(80), GRID, reduce=PLAN)
        assert a.reduction is not b.reduction


class TestEquationResidual:
    def test_projected_pencil_matches_lifted(self, rng):
        """The drift guard evaluated from reduced coordinates through
        ``(E V, A V)`` equals the lifted full-order evaluation."""
        n, r, m = 30, 6, 16
        E = np.eye(n) + 0.1 * rng.standard_normal((n, n))
        A = -np.eye(n) - 0.1 * rng.standard_normal((n, n))
        V = np.linalg.qr(rng.standard_normal((n, r)))[0]
        Z = rng.standard_normal((r, m))
        R = rng.standard_normal((n, m))
        coeffs = rng.standard_normal(m)
        lifted = equation_residual(E, A, V @ Z, R, coeffs=coeffs)
        projected = equation_residual(E @ V, A @ V, Z, R, coeffs=coeffs)
        assert lifted == pytest.approx(projected, rel=1e-12)

    def test_exact_solution_scores_zero(self):
        model = reduced_model_for(ladder(80), PLAN, t_end=5.0, m=64)
        assert model.bound <= RTOL
        EV, AV = model.projected_pencil
        assert EV.shape == (80, model.order)
        assert np.shares_memory(model.projected_pencil[0], EV)


class TestExecutorReduce:
    """Reduced ensemble runs are bit-stable across executor backends."""

    def ensemble(self) -> Ensemble:
        return Ensemble([(ladder(80), a) for a in (0.5, 1.0, 2.0)])

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_backends_bit_identical(self, backend):
        serial = ParallelExecutor("serial", jobs=2).run(
            self.ensemble(), GRID, reduce=PLAN
        )
        parallel = ParallelExecutor(backend, jobs=2).run(
            self.ensemble(), GRID, reduce=PLAN
        )
        assert serial.info["mor"]["reduced_units"] >= 1
        np.testing.assert_array_equal(
            serial.coefficients, parallel.coefficients
        )

    def test_reduced_matches_full_within_rtol(self):
        times = np.linspace(0.1, 4.9, 17)
        full = ParallelExecutor("serial").run(self.ensemble(), GRID)
        reduced = ParallelExecutor("serial").run(
            self.ensemble(), GRID, reduce=PLAN
        )
        for r, f in zip(reduced.results, full.results):
            assert rel_dev(r, f, times) <= RTOL

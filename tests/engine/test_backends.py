"""Tests for the engine's linear-algebra backends and pencil bank."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine import (
    DenseBackend,
    PencilBank,
    SparseBackend,
    matrix_density,
    pencil_fingerprint,
    select_backend,
)
from repro.engine.backends import SPARSE_SIZE_THRESHOLD, handle_nbytes
from repro.errors import SolverError


def tridiag(n: int) -> sp.csr_matrix:
    main = -2.0 * np.ones(n)
    off = np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


class TestMatrixDensity:
    def test_dense(self):
        assert matrix_density(np.eye(4)) == pytest.approx(0.25)

    def test_sparse(self):
        assert matrix_density(sp.identity(10, format="csr")) == pytest.approx(0.1)

    def test_stored_zeros_are_not_fill(self):
        # nnz counts stored entries; density must count actual nonzeros
        M = sp.coo_matrix(
            (np.array([1.0, 0.0, 0.0]), ([0, 1, 2], [0, 1, 2])), shape=(4, 4)
        )
        assert M.nnz == 3
        assert matrix_density(M) == pytest.approx(1 / 16)

    def test_cancelling_duplicates_are_not_fill(self):
        M = sp.coo_matrix(
            (np.array([2.0, -2.0]), ([0, 0], [1, 1])), shape=(3, 3)
        )
        assert matrix_density(M) == 0.0

    def test_stored_zeros_do_not_flip_auto_decision(self):
        # regression: at the size boundary, a pencil whose sparse
        # storage is padded with explicit zeros must select the same
        # backend as its pruned twin -- fill is content, not storage
        n = SPARSE_SIZE_THRESHOLD
        A = tridiag(n).tocoo()
        rng = np.random.default_rng(1)
        extra = n * n // 3  # naive nnz-density would exceed 25% fill
        rows = rng.integers(0, n, size=extra)
        cols = rng.integers(0, n, size=extra)
        padded = sp.coo_matrix(
            (
                np.concatenate([A.data, np.zeros(extra)]),
                (np.concatenate([A.row, rows]), np.concatenate([A.col, cols])),
            ),
            shape=(n, n),
        )
        assert matrix_density(padded) == pytest.approx(matrix_density(A))
        backend = select_backend(sp.identity(n, format="csr"), padded)
        assert isinstance(backend, SparseBackend)
        # and symmetrically when the padding sits in E
        backend = select_backend(padded, tridiag(n))
        assert isinstance(backend, SparseBackend)


class TestSelectBackend:
    def test_small_dense_system(self):
        backend = select_backend(np.eye(4), -np.eye(4))
        assert isinstance(backend, DenseBackend)

    def test_small_sparse_input_densified(self):
        # below the size threshold, dense LAPACK wins even for sparse input
        backend = select_backend(sp.identity(8), -sp.identity(8))
        assert isinstance(backend, DenseBackend)

    def test_large_sparse_system_stays_sparse(self):
        n = SPARSE_SIZE_THRESHOLD
        backend = select_backend(sp.identity(n, format="csr"), tridiag(n))
        assert isinstance(backend, SparseBackend)
        assert sp.issparse(backend.E) and sp.issparse(backend.A)

    def test_large_sparse_content_in_dense_storage(self):
        # sparsity is judged from fill, not from the storage the caller used
        n = SPARSE_SIZE_THRESHOLD
        backend = select_backend(np.eye(n), tridiag(n).toarray())
        assert isinstance(backend, SparseBackend)

    def test_large_but_full_system_stays_dense(self):
        n = SPARSE_SIZE_THRESHOLD
        rng = np.random.default_rng(0)
        backend = select_backend(rng.standard_normal((n, n)), np.eye(n))
        assert isinstance(backend, DenseBackend)

    def test_forced_modes(self):
        assert isinstance(select_backend(np.eye(2), np.eye(2), mode="sparse"), SparseBackend)
        assert isinstance(
            select_backend(sp.identity(500), sp.identity(500), mode="dense"),
            DenseBackend,
        )

    def test_invalid_mode(self):
        with pytest.raises(SolverError, match="backend mode"):
            select_backend(np.eye(2), np.eye(2), mode="gpu")


class TestPencilBank:
    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_solve_correct(self, mode):
        E = np.diag([2.0, 1.0])
        A = np.array([[0.0, 1.0], [-1.0, 0.0]])
        bank = PencilBank(select_backend(E, A, mode=mode))
        rhs = np.array([1.0, 2.0])
        x = bank.solve(3.0, rhs)
        np.testing.assert_allclose((3.0 * E - A) @ x, rhs, atol=1e-12)

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_multi_rhs_matches_columnwise(self, mode, rng):
        n, k = 6, 5
        E = np.eye(n) + 0.1 * rng.standard_normal((n, n))
        A = -np.eye(n) - 0.2 * rng.standard_normal((n, n))
        bank = PencilBank(select_backend(E, A, mode=mode))
        rhs = rng.standard_normal((n, k))
        block = bank.solve(2.0, rhs)
        assert block.shape == (n, k)
        for j in range(k):
            np.testing.assert_allclose(
                block[:, j], bank.solve(2.0, rhs[:, j]), atol=1e-12
            )
        assert bank.factorisations == 1

    def test_warm_flag_and_count(self):
        bank = PencilBank(select_backend(np.eye(2), -np.eye(2)))
        assert not bank.is_warm
        bank.solve(1.0, np.ones(2))
        assert bank.is_warm and bank.factorisations == 1
        bank.solve(1.0, np.zeros(2))
        assert bank.factorisations == 1
        bank.solve(2.0, np.ones(2))
        assert bank.factorisations == 2

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_singular_pencil_raises(self, mode):
        bank = PencilBank(select_backend(np.zeros((2, 2)), np.zeros((2, 2)), mode=mode))
        with pytest.raises(SolverError, match="singular"):
            bank.solve(1.0, np.ones(2))

    def test_apply_e(self):
        E = np.diag([2.0, 3.0])
        bank = PencilBank(select_backend(E, -np.eye(2)))
        np.testing.assert_allclose(bank.apply_E(np.ones(2)), [2.0, 3.0])


class TestPencilBankLRU:
    """Bounded-cache behaviour: eviction order, byte accounting, counters."""

    @staticmethod
    def make_bank(**bounds) -> PencilBank:
        return PencilBank(select_backend(np.eye(2), -np.eye(2)), **bounds)

    def test_unbounded_by_default(self):
        bank = self.make_bank()
        for sigma in range(1, 9):
            bank.solve(float(sigma), np.ones(2))
        assert bank.entries == 8
        assert bank.evictions == 0
        assert bank.max_entries is None and bank.max_bytes is None

    def test_evicts_least_recently_used_first(self):
        bank = self.make_bank(max_entries=2)
        bank.solve(1.0, np.ones(2))
        bank.solve(2.0, np.ones(2))
        bank.solve(3.0, np.ones(2))  # evicts sigma=1
        assert bank.cached_shifts == [(0, 2.0), (0, 3.0)]
        assert bank.evictions == 1
        bank.solve(1.0, np.ones(2))  # re-factorise; evicts sigma=2
        assert bank.cached_shifts == [(0, 3.0), (0, 1.0)]
        assert bank.evictions == 2

    def test_hit_refreshes_recency(self):
        bank = self.make_bank(max_entries=2)
        bank.solve(1.0, np.ones(2))
        bank.solve(2.0, np.ones(2))
        bank.solve(1.0, np.ones(2))  # hit: sigma=1 becomes most recent
        bank.solve(3.0, np.ones(2))  # evicts sigma=2, not sigma=1
        assert bank.cached_shifts == [(0, 1.0), (0, 3.0)]

    def test_factorisation_count_is_monotone_across_eviction(self):
        bank = self.make_bank(max_entries=1)
        bank.solve(1.0, np.ones(2))
        bank.solve(2.0, np.ones(2))
        bank.solve(1.0, np.ones(2))  # evicted earlier: counts again
        assert bank.factorisations == 3
        assert bank.entries == 1

    def test_hit_miss_counters(self):
        bank = self.make_bank(max_entries=1)
        bank.solve(1.0, np.ones(2))
        bank.solve(1.0, np.ones(2))
        bank.solve(2.0, np.ones(2))
        bank.solve(1.0, np.ones(2))  # was evicted: a miss again
        assert (bank.hits, bank.misses, bank.evictions) == (1, 3, 2)

    @pytest.mark.parametrize("mode", ["dense", "sparse", "numpy"])
    def test_nbytes_tracks_handle_estimates(self, mode):
        n = 16
        bank = PencilBank(select_backend(np.eye(n), -tridiag(n).toarray(), mode=mode))
        assert bank.nbytes == 0
        bank.solve(1.0, np.ones(n))
        first = bank.nbytes
        assert first > 0
        bank.solve(2.0, np.ones(n))
        assert bank.nbytes > first
        bank.limit(max_entries=1)
        assert bank.nbytes < 2 * first + 1  # one handle's worth remains

    def test_max_bytes_bound_evicts(self):
        n = 8
        backend = select_backend(np.eye(n), -np.eye(n), mode="dense")
        one_handle = handle_nbytes(backend.factorize(1.0), n)
        bank = PencilBank(backend, max_bytes=int(1.5 * one_handle))
        bank.solve(1.0, np.ones(n))
        assert bank.entries == 1
        bank.solve(2.0, np.ones(n))  # two handles exceed the budget
        assert bank.entries == 1
        assert bank.cached_shifts == [(0, 2.0)]
        assert bank.evictions == 1
        assert bank.nbytes <= bank.max_bytes

    def test_in_flight_handle_survives_tight_byte_budget(self):
        # a bound tighter than a single handle shrinks the cache to that
        # one handle but never refuses the solve in flight
        bank = self.make_bank(max_bytes=1)
        x = bank.solve(1.0, np.ones(2))
        np.testing.assert_allclose(x, 0.5 * np.ones(2))
        assert bank.entries == 1
        bank.solve(2.0, np.ones(2))
        assert bank.entries == 1
        assert bank.cached_shifts == [(0, 2.0)]

    def test_limit_rebounds_populated_bank(self):
        bank = self.make_bank()
        for sigma in range(1, 6):
            bank.solve(float(sigma), np.ones(2))
        assert bank.entries == 5
        bank.limit(max_entries=2)
        assert bank.entries == 2
        assert bank.cached_shifts == [(0, 4.0), (0, 5.0)]
        assert bank.evictions == 3

    def test_limit_validates(self):
        with pytest.raises(SolverError, match="max_entries"):
            self.make_bank(max_entries=0)
        with pytest.raises(SolverError, match="max_bytes"):
            self.make_bank().limit(max_bytes=-1)

    def test_eviction_spans_stamps(self):
        # LRU order is global across stamps, not per stamp
        E = np.eye(2)
        bank = PencilBank(select_backend(E, -np.eye(2)), max_entries=2)
        bank.solve(1.0, np.ones(2))
        bank.restamp(select_backend(E, -3.0 * np.eye(2)))
        bank.solve(1.0, np.ones(2))
        bank.solve(2.0, np.ones(2))  # evicts (stamp 0, sigma 1)
        assert bank.cached_shifts == [(1, 1.0), (1, 2.0)]
        # revisiting the evicted stamp-0 shift re-factorises correctly
        bank.use(0)
        np.testing.assert_allclose(bank.solve(1.0, np.ones(2)), 0.5 * np.ones(2))
        assert bank.factorisations == 4

    def test_stats_dict(self):
        bank = self.make_bank(max_entries=4)
        bank.solve(1.0, np.ones(2))
        bank.solve(1.0, np.ones(2))
        stats = bank.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["factorisations"] == 1
        assert stats["stamps"] == 1
        assert stats["max_entries"] == 4 and stats["max_bytes"] is None
        assert stats["nbytes"] == bank.nbytes > 0


class TestHandleNbytes:
    def test_dense_lu_pair(self):
        backend = DenseBackend(np.eye(8), -np.eye(8))
        handle = backend.factorize(1.0)
        expected = handle[0].nbytes + handle[1].nbytes
        assert handle_nbytes(handle, 8) == expected

    def test_superlu_counts_factors_and_permutations(self):
        n = 32
        backend = SparseBackend(sp.identity(n, format="csc"), tridiag(n))
        handle = backend.factorize(1.0)
        nbytes = handle_nbytes(handle, n)
        csc_parts = sum(
            factor.data.nbytes + factor.indices.nbytes + factor.indptr.nbytes
            for factor in (handle.L, handle.U)
        )
        assert nbytes == csc_parts + 2 * n * np.dtype(np.intc).itemsize

    def test_array_api_inverse(self):
        backend = select_backend(np.eye(4), -np.eye(4), mode="numpy")
        handle = backend.factorize(1.0)
        assert handle_nbytes(handle, 4) == 4 * 4 * 8

    def test_unknown_handle_falls_back_dense(self):
        assert handle_nbytes(object(), 10) == 10 * 10 * 8


class TestPencilFingerprint:
    def test_equal_dense_matrices_match(self):
        assert pencil_fingerprint(np.eye(3), -np.eye(3)) == pencil_fingerprint(
            np.eye(3), -np.eye(3)
        )
        assert pencil_fingerprint(np.eye(3)) != pencil_fingerprint(2 * np.eye(3))

    def test_sparse_content_keyed_by_values(self):
        a = tridiag(16)
        b = tridiag(16).copy()
        assert pencil_fingerprint(a) == pencil_fingerprint(b)
        b[0, 0] = -5.0
        assert pencil_fingerprint(a) != pencil_fingerprint(b)


class TestRestamp:
    """Mid-run pencil re-stamping (events) with per-stamp caching."""

    def test_restamp_switches_pencil(self):
        E = np.eye(2)
        A1, A2 = -np.eye(2), -3.0 * np.eye(2)
        bank = PencilBank(select_backend(E, A1))
        x1 = bank.solve(1.0, np.ones(2))
        bank.restamp(select_backend(E, A2))
        x2 = bank.solve(1.0, np.ones(2))
        np.testing.assert_allclose(x1, 0.5 * np.ones(2))
        np.testing.assert_allclose(x2, 0.25 * np.ones(2))
        assert bank.stamps == 2
        assert bank.factorisations == 2

    def test_restamp_caches_both_pencils(self):
        E = np.eye(2)
        A1, A2 = -np.eye(2), -3.0 * np.eye(2)
        bank = PencilBank(select_backend(E, A1))
        bank.solve(1.0, np.ones(2))
        bank.restamp(select_backend(E, A2))
        bank.solve(1.0, np.ones(2))
        # toggle back and forth: fingerprint-matched stamps reuse their LUs
        bank.restamp(select_backend(E, A1))
        assert bank.stamp == 0
        bank.solve(1.0, np.ones(2))
        bank.restamp(select_backend(E, A2))
        bank.solve(1.0, np.ones(2))
        assert bank.stamps == 2
        assert bank.factorisations == 2

    def test_restamp_same_matrices_is_noop(self):
        E, A = np.eye(2), -np.eye(2)
        bank = PencilBank(select_backend(E, A))
        bank.solve(1.0, np.ones(2))
        stamp = bank.restamp(select_backend(E.copy(), A.copy()))
        assert stamp == 0 and bank.stamps == 1
        bank.solve(1.0, np.ones(2))
        assert bank.factorisations == 1

    def test_per_stamp_sigma_caches_are_independent(self):
        E = np.eye(2)
        bank = PencilBank(select_backend(E, -np.eye(2)))
        bank.solve(1.0, np.ones(2))
        bank.solve(2.0, np.ones(2))
        bank.restamp(select_backend(E, -3.0 * np.eye(2)))
        bank.solve(1.0, np.ones(2))
        assert bank.factorisations == 3

    def test_use_restores_a_stamp(self):
        E = np.eye(2)
        bank = PencilBank(select_backend(E, -np.eye(2)))
        bank.restamp(select_backend(E, -3.0 * np.eye(2)))
        bank.use(0)
        np.testing.assert_allclose(bank.solve(1.0, np.ones(2)), 0.5 * np.ones(2))
        with pytest.raises(SolverError, match="unknown pencil stamp"):
            bank.use(5)

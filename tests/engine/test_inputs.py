"""Regression tests for input-dialect normalisation (project_input hardening).

The historical implementation probed callables at ``t = 0`` and
special-cased the probe's return shape, which misrouted vector-valued
callables that broadcast and crashed on callables undefined at the
origin.  These tests pin the hardened behaviour: shape decisions happen
at evaluation time, and the callable is only ever evaluated at the
projection quadrature nodes (all interior).
"""

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, TimeGrid, WalshBasis
from repro.core import DescriptorSystem, project_input, simulate_opm
from repro.engine import normalise_input_callable
from repro.errors import ModelError


@pytest.fixture
def basis():
    return BlockPulseBasis(TimeGrid.uniform(1.0, 8))


class TestNormaliseCallable:
    def test_scalar_return_broadcasts(self):
        wrapped = normalise_input_callable(lambda t: 3.0, 2)
        np.testing.assert_allclose(
            wrapped(np.array([0.1, 0.2])), np.full((2, 2), 3.0)
        )

    def test_1d_return_single_channel(self):
        wrapped = normalise_input_callable(np.sin, 1)
        t = np.linspace(0.1, 1.0, 5)
        np.testing.assert_allclose(wrapped(t), np.sin(t)[None, :])

    def test_1d_return_broadcast_to_channels(self):
        wrapped = normalise_input_callable(np.cos, 3)
        t = np.array([0.2, 0.4])
        out = wrapped(t)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out[2], np.cos(t))

    def test_row_vector_return_single_channel(self):
        wrapped = normalise_input_callable(lambda t: np.sin(t)[None, :], 1)
        t = np.array([0.3, 0.6, 0.9])
        np.testing.assert_allclose(wrapped(t), np.sin(t)[None, :])

    def test_full_matrix_return(self):
        wrapped = normalise_input_callable(lambda t: np.vstack([t, -t]), 2)
        t = np.array([0.1, 0.5])
        np.testing.assert_allclose(wrapped(t), [[0.1, 0.5], [-0.1, -0.5]])

    def test_wrong_length_raises(self):
        wrapped = normalise_input_callable(lambda t: np.ones(3), 1)
        with pytest.raises(ModelError, match="returned 3 values for 5 times"):
            wrapped(np.linspace(0.1, 0.9, 5))

    def test_wrong_row_count_raises(self):
        wrapped = normalise_input_callable(lambda t: np.vstack([t, t, t]), 2)
        with pytest.raises(ModelError, match="must return"):
            wrapped(np.array([0.1, 0.2]))

    def test_3d_return_raises(self):
        wrapped = normalise_input_callable(lambda t: np.ones((1, 1, t.size)), 1)
        with pytest.raises(ModelError, match="3-D"):
            wrapped(np.array([0.1]))

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            normalise_input_callable(1.0, 1)


class TestProjectInputRegressions:
    def test_constant_callable_no_longer_crashes(self, basis):
        # regression: `lambda t: 1.0` returned a 0-d probe of shape (1, 1)
        # and then crashed reshaping to the full time array
        U = project_input(lambda t: 1.0, basis, 1)
        np.testing.assert_allclose(U, np.ones((1, 8)))

    def test_callable_undefined_at_zero(self, basis):
        # regression: the t=0 probe evaluated sin(t)/t at the origin
        def u(t):
            assert np.all(t > 0.0), "callable evaluated at t = 0"
            return np.sin(t) / t

        U = project_input(u, basis, 1)
        assert np.all(np.isfinite(U))
        assert U.shape == (1, 8)

    def test_row_vector_callable_single_input(self, basis):
        U_row = project_input(lambda t: np.sin(t)[None, :], basis, 1)
        U_flat = project_input(np.sin, basis, 1)
        np.testing.assert_allclose(U_row, U_flat, atol=1e-14)

    def test_broadcast_callable_multi_input(self, basis):
        U = project_input(np.sin, basis, 3)
        assert U.shape == (3, 8)
        np.testing.assert_allclose(U[0], U[2], atol=1e-15)

    def test_midpoint_projection_dialects(self):
        mid_basis = BlockPulseBasis(TimeGrid.uniform(1.0, 8), projection="midpoint")
        U = project_input(lambda t: 2.0, mid_basis, 2)
        np.testing.assert_allclose(U, np.full((2, 8), 2.0))

    def test_walsh_basis_still_supported(self):
        walsh = WalshBasis(1.0, 8)
        U = project_input(lambda t: 1.0, walsh, 1)
        # constant: only the first Walsh coefficient is nonzero
        assert abs(U[0, 0] - 1.0) < 1e-12
        np.testing.assert_allclose(U[0, 1:], 0.0, atol=1e-12)

    def test_end_to_end_simulation_with_hardened_input(self, scalar_ode):
        def u(t):
            assert np.all(t > 0.0)
            return 1.0  # constant step, scalar dialect

        res = simulate_opm(scalar_ode, u, (5.0, 200))
        assert abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0))) < 1e-3

    def test_array_and_scalar_forms_unchanged(self, basis):
        np.testing.assert_allclose(
            project_input(2.0, basis, 2), np.full((2, 8), 2.0)
        )
        coeffs = np.arange(8.0)
        np.testing.assert_allclose(
            project_input(coeffs, basis, 1), coeffs[None, :]
        )
        with pytest.raises(ModelError, match="single-input"):
            project_input(coeffs, basis, 2)
        with pytest.raises(ModelError, match="shape"):
            project_input(np.ones((2, 5)), basis, 2)

"""Tests for the simulation service daemon and its client.

Each test boots a real :class:`SimulationService` on an ephemeral port
in a background thread and talks to it over TCP through
:class:`ServiceClient` -- the protocol, the coalescing scheduler, the
session LRU, and the stats endpoint are all exercised end to end.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine import Simulator
from repro.engine.service import ServiceClient, SimulationService, serve
from repro.errors import ServiceError

DECK = """
I1 0 n1 1m
R1 n1 0 1k
C1 n1 0 1u
.tran 50u 5m
"""

DECK_FAST = """
I1 0 n1 1m
R1 n1 0 1k
C1 n1 0 100n
.tran 50u 5m
"""

SYSTEM_SPEC = {"E": [[1.0]], "A": [[-1.0]], "B": [[1.0]]}


class ServiceHandle:
    """A live daemon in a background thread plus cleanup."""

    def __init__(self, **kwargs):
        self._started = threading.Event()
        self.service = None

        def announce(svc):
            self.service = svc
            self._started.set()

        self.thread = threading.Thread(
            target=serve, kwargs={"announce": announce, "port": 0, **kwargs},
            daemon=True,
        )
        self.thread.start()
        assert self._started.wait(15), "service failed to start"

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def stop(self):
        try:
            with self.client(timeout=10) as c:
                c.shutdown()
        except (OSError, ServiceError):
            pass
        self.thread.join(timeout=15)


@pytest.fixture
def daemon():
    handle = ServiceHandle(coalesce_ms=1.0)
    yield handle
    handle.stop()


def direct_values(deck=DECK, scale=1.0, samples=None):
    """The same request computed directly, for bit-identity checks."""
    sim = Simulator.from_netlist(deck)
    u = sim.bound_input
    if scale != 1.0:
        base = u
        u = lambda t: scale * np.asarray(base(t))
    res = sim.run(u)
    t = res.sample_times(samples) if samples else res.sample_times()
    return t, res.outputs(t)


class TestProtocol:
    def test_ping_and_stats(self, daemon):
        with daemon.client() as c:
            assert c.ping()
            stats = c.stats()
        assert stats["requests"] == 0
        assert stats["sessions"]["entries"] == 0
        assert {"p50", "p99", "mean", "count"} <= set(stats["latency_ms"])

    def test_netlist_simulate_bit_identical_to_direct(self, daemon):
        with daemon.client() as c:
            out = c.simulate(netlist=DECK)
        t_direct, v_direct = direct_values()
        assert out["info"]["coalesced"] is False
        np.testing.assert_array_equal(np.asarray(out["t"]), t_direct)
        np.testing.assert_array_equal(np.asarray(out["values"]), v_direct)

    def test_warm_request_bit_identical_to_cold(self, daemon):
        with daemon.client() as c:
            cold = c.simulate(netlist=DECK, scale=2.0)
            warm = c.simulate(netlist=DECK, scale=2.0)
            stats = c.stats()
        assert cold["info"]["warm"] is False
        assert warm["info"]["warm"] is True
        np.testing.assert_array_equal(
            np.asarray(cold["values"]), np.asarray(warm["values"])
        )
        assert stats["sessions"]["hits"] >= 1
        assert stats["sessions"]["misses"] == 1
        assert stats["bank"]["hits"] >= 1

    def test_system_spec_request(self, daemon):
        with daemon.client() as c:
            out = c.simulate(system=SYSTEM_SPEC, grid=[5.0, 100], input=1.0)
        from repro.core import DescriptorSystem

        sim = Simulator(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]), (5.0, 100))
        res = sim.run(1.0)
        t = res.sample_times()
        np.testing.assert_array_equal(np.asarray(out["values"]), res.outputs(t))

    def test_sweep_request_many_scales(self, daemon):
        scales = [0.5, 1.0, 2.0]
        with daemon.client() as c:
            out = c.simulate(netlist=DECK, scales=scales, samples=16)
        assert len(out["runs"]) == 3
        for scale, run in zip(scales, out["runs"]):
            t_direct, v_direct = direct_values(scale=scale, samples=16)
            np.testing.assert_allclose(
                np.asarray(run["values"]), v_direct, rtol=1e-12, atol=1e-15
            )
        # linearity sanity: the x2 run is exactly 4x the x0.5 run
        np.testing.assert_allclose(
            np.asarray(out["runs"][2]["values"]),
            4.0 * np.asarray(out["runs"][0]["values"]),
            rtol=1e-12,
        )

    def test_csv_format(self, daemon):
        with daemon.client() as c:
            out = c.simulate(netlist=DECK, samples=8, format="csv")
        lines = out["csv"].strip().splitlines()
        assert lines[0].startswith("t,")
        assert len(lines) == 1 + 8
        t_direct, v_direct = direct_values(samples=8)
        first = [float(x) for x in lines[1].split(",")]
        assert first[0] == t_direct[0]
        assert first[1] == v_direct[0, 0]

    def test_outputs_selector_narrows_columns(self, daemon):
        deck = """
        I1 0 n1 1m
        R1 n1 n2 1k
        C1 n1 0 1u
        R2 n2 0 1k
        C2 n2 0 1u
        .tran 50u 5m
        """
        with daemon.client() as c:
            both = c.simulate(netlist=deck, samples=8)
            only_n2 = c.simulate(netlist=deck, outputs=["n2"], samples=8)
            stats = c.stats()
        assert both["cols"] == 2
        assert only_n2["cols"] == 1
        # different output maps must never share a session: the C
        # matrix is part of the session fingerprint
        assert stats["sessions"]["entries"] == 2
        sim = Simulator.from_netlist(deck, outputs=["n2"])
        res = sim.run(sim.bound_input)
        t = res.sample_times(8)
        np.testing.assert_array_equal(
            np.asarray(only_n2["values"]), res.outputs(t)
        )

    def test_bad_requests_fail_cleanly(self, daemon):
        with daemon.client() as c:
            with pytest.raises(ServiceError, match="exactly one of"):
                c.simulate(scale=1.0)
            with pytest.raises(ServiceError, match="grid"):
                c.simulate(system=SYSTEM_SPEC, input=1.0)
            with pytest.raises(ServiceError, match="format"):
                c.simulate(netlist=DECK, format="xml")
            with pytest.raises(ServiceError, match="unknown op"):
                c._round_trip({"op": "explode"})
            with pytest.raises(ServiceError, match="netlist requests only"):
                c.simulate(
                    system=SYSTEM_SPEC, grid=[5.0, 100], input=1.0,
                    outputs=["n1"],
                )
            # the connection survives an error line
            assert c.ping()
            assert c.stats()["errors"] == 5


FRACTIONAL_SPEC = {"alpha": 0.5, "E": [[1.0]], "A": [[-1.0]], "B": [[1.0]]}


class TestMethodRequests:
    """The ``method`` field of the request schema."""

    def test_system_request_with_zoo_method(self, daemon):
        from repro.core import FractionalDescriptorSystem

        with daemon.client() as c:
            out = c.simulate(
                system=FRACTIONAL_SPEC, grid=[1.0, 64], input=1.0, method="gl"
            )
        sim = Simulator(
            FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]]),
            (1.0, 64),
            method="gl",
        )
        res = sim.run(1.0)
        t = res.sample_times()
        np.testing.assert_allclose(
            np.asarray(out["values"]), res.outputs(t), rtol=1e-12, atol=1e-14
        )

    def test_opm_method_unifies_with_default_session(self, daemon):
        with daemon.client() as c:
            c.simulate(netlist=DECK)
            c.simulate(netlist=DECK, method="opm")
            stats = c.stats()
        # method='opm' normalises away: same cached session, no miss
        assert stats["sessions"]["misses"] == 1
        assert stats["sessions"]["hits"] >= 1

    def test_distinct_methods_key_distinct_sessions(self, daemon):
        with daemon.client() as c:
            c.simulate(system=FRACTIONAL_SPEC, grid=[1.0, 64], input=1.0)
            c.simulate(
                system=FRACTIONAL_SPEC, grid=[1.0, 64], input=1.0, method="gl"
            )
            stats = c.stats()
        assert stats["sessions"]["misses"] == 2

    def test_unknown_method_lists_and_suggests(self, daemon):
        with daemon.client() as c:
            with pytest.raises(ServiceError, match="did you mean 'gl'"):
                c.simulate(
                    system=FRACTIONAL_SPEC, grid=[1.0, 64], input=1.0, method="g l"
                )
            with pytest.raises(ServiceError, match="choose from"):
                c.simulate(
                    system=FRACTIONAL_SPEC, grid=[1.0, 64], input=1.0, method="rk45"
                )
            assert c.ping()  # connection survives the error lines


class TestCoalescing:
    def test_concurrent_same_deck_requests_coalesce(self):
        handle = ServiceHandle(coalesce_ms=150.0, max_batch=64)
        try:
            scales = [0.5 + 0.25 * i for i in range(8)]

            def one(scale):
                with handle.client() as c:
                    return scale, c.simulate(netlist=DECK, scale=scale, samples=16)

            # prime the session cache so the batch isn't serialised
            # behind the parse/assemble of a cold session
            with handle.client() as c:
                c.simulate(netlist=DECK, samples=4)
            with ThreadPoolExecutor(max_workers=len(scales)) as pool:
                outs = list(pool.map(one, scales))
            with handle.client() as c:
                stats = c.stats()
        finally:
            handle.stop()
        assert stats["coalesced_batches"] >= 1
        assert stats["largest_batch"] >= 2
        assert stats["coalesce_ratio"] > 1.0
        for scale, out in outs:
            t_direct, v_direct = direct_values(scale=scale, samples=16)
            np.testing.assert_allclose(
                np.asarray(out["values"]), v_direct, rtol=1e-12, atol=1e-15
            )

    def test_max_batch_dispatches_early(self):
        handle = ServiceHandle(coalesce_ms=10_000.0, max_batch=4)
        try:
            # a sweep request alone carries max_batch columns: the
            # window must not wait 10 s before dispatching
            with handle.client() as c:
                out = c.simulate(netlist=DECK, scales=[1.0, 2.0, 3.0, 4.0],
                                 samples=4)
                stats = c.stats()
        finally:
            handle.stop()
        assert len(out["runs"]) == 4
        assert stats["batches"] == 1


class TestSessionLRU:
    def test_distinct_decks_get_distinct_sessions(self, daemon):
        with daemon.client() as c:
            c.simulate(netlist=DECK, samples=4)
            c.simulate(netlist=DECK_FAST, samples=4)
            stats = c.stats()
        assert stats["sessions"]["entries"] == 2
        assert stats["sessions"]["misses"] == 2

    def test_memory_mode_keys_distinct_sessions(self, daemon):
        # compressed and exact sessions differ arithmetically, so the
        # cache must never unify them under one key
        with daemon.client() as c:
            c.simulate(netlist=DECK, samples=4)
            c.simulate(netlist=DECK, samples=4, memory="soe")
            c.simulate(netlist=DECK, samples=4, memory="soe",
                       memory_rtol=1e-6)
            stats = c.stats()
        assert stats["sessions"]["entries"] == 3
        assert stats["sessions"]["misses"] == 3

    def test_bad_memory_request_fails_cleanly(self, daemon):
        with daemon.client() as c:
            with pytest.raises(ServiceError, match="memory"):
                c.simulate(netlist=DECK, samples=4, memory=7)
            with pytest.raises(ServiceError, match="memory_rtol"):
                c.simulate(netlist=DECK, samples=4, memory="soe",
                           memory_rtol="tight")
            assert c.ping()

    def test_lru_eviction_of_cold_sessions(self):
        handle = ServiceHandle(coalesce_ms=1.0, max_sessions=1)
        try:
            with handle.client() as c:
                c.simulate(netlist=DECK, samples=4)
                c.simulate(netlist=DECK_FAST, samples=4)  # evicts DECK
                stats_mid = c.stats()
                out = c.simulate(netlist=DECK, samples=4)  # rebuilt, cold
                stats_end = c.stats()
        finally:
            handle.stop()
        assert stats_mid["sessions"]["entries"] == 1
        assert stats_mid["sessions"]["evictions"] == 1
        assert out["info"]["warm"] is False
        assert stats_end["sessions"]["misses"] == 3

    def test_bank_bytes_bound_applied(self):
        handle = ServiceHandle(coalesce_ms=1.0, bank_entries=1)
        try:
            with handle.client() as c:
                c.simulate(netlist=DECK, samples=4)
                stats = c.stats()
        finally:
            handle.stop()
        assert stats["bank"]["entries"] <= 1


class TestServiceConstruction:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServiceError, match="max_batch"):
            SimulationService(max_batch=0)
        with pytest.raises(ServiceError, match="max_sessions"):
            SimulationService(max_sessions=0)

"""Tests for batched multi-input sweeps and the SweepResult container."""

import numpy as np
import pytest

from repro.analysis import sample_outputs
from repro.basis import TimeGrid
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    MultiTermSystem,
    SimulationResult,
    Simulator,
)
from repro.errors import SolverError

from ..conftest import stable_dense_system


def sweep_vs_loop(system, grid, inputs, **session_kwargs):
    """Run a batched sweep and the equivalent loop; return both."""
    sim = Simulator(system, grid, **session_kwargs)
    sweep = sim.sweep(inputs)
    loop = [Simulator(system, grid, **session_kwargs).run(u) for u in inputs]
    return sweep, loop


INPUT_FAMILY = [
    1.0,
    0.25,
    lambda t: np.sin(2.0 * t),
    lambda t: np.exp(-t),
]


class TestSweepMatchesLoop:
    def test_first_order_alternating(self, scalar_ode):
        sweep, loop = sweep_vs_loop(scalar_ode, (5.0, 150), INPUT_FAMILY)
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )

    def test_fractional_toeplitz(self, scalar_fde):
        sweep, loop = sweep_vs_loop(scalar_fde, (2.0, 120), INPUT_FAMILY)
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )

    def test_fractional_fft_history(self, scalar_fde):
        sweep, loop = sweep_vs_loop(
            scalar_fde, (2.0, 96), INPUT_FAMILY, history="fft"
        )
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )

    def test_adaptive_general(self, rng):
        system = stable_dense_system(rng, 3)
        grid = TimeGrid.geometric(2.0, 48, 1.04)
        sweep, loop = sweep_vs_loop(system, grid, INPUT_FAMILY)
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )

    def test_multiterm(self):
        msys = MultiTermSystem(
            [(2.0, np.eye(2)), (1.0, 0.3 * np.eye(2)), (0.5, 0.1 * np.eye(2)), (0.0, np.eye(2))],
            np.ones((2, 1)),
        )
        sweep, loop = sweep_vs_loop(msys, (5.0, 100), INPUT_FAMILY)
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )

    def test_multi_input_system(self, rng):
        system = stable_dense_system(rng, 4, p=2)
        inputs = [
            lambda t: np.vstack([np.sin(t), np.cos(t)]),
            np.ones((2, 60)),
            2.5,
        ]
        sweep, loop = sweep_vs_loop(system, (3.0, 60), inputs)
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )

    def test_nonzero_x0_sweep(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[1.5])
        sweep, loop = sweep_vs_loop(system, (4.0, 80), [0.0, 1.0, 2.0])
        for got, ref in zip(sweep, loop):
            np.testing.assert_allclose(
                got.coefficients, ref.coefficients, atol=1e-12
            )


class TestSweepEfficiency:
    def test_single_factorisation_for_whole_batch(self, scalar_fde):
        sim = Simulator(scalar_fde, (1.0, 64))
        sweep = sim.sweep([0.5, 1.0, 1.5, 2.0])
        assert sweep.info["factorisations"] == 1
        assert sweep.info["batch"] == 4


class TestSweepResult:
    @pytest.fixture
    def sweep(self, scalar_ode):
        return Simulator(scalar_ode, (5.0, 100)).sweep([0.5, 1.0, 2.0])

    def test_len_and_indexing(self, sweep):
        assert len(sweep) == 3
        item = sweep[1]
        assert isinstance(item, SimulationResult)
        assert item.info["sweep_index"] == 1
        assert sweep[-1].info["sweep_index"] == 2
        with pytest.raises(IndexError):
            sweep[3]

    def test_iteration_order(self, sweep):
        assert [r.info["sweep_index"] for r in sweep] == [0, 1, 2]
        assert len(sweep.results) == 3

    def test_slicing_returns_sub_sweep(self, sweep):
        sub = sweep[1:]
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.coefficients, sweep.coefficients[1:])
        np.testing.assert_allclose(
            sub[0].coefficients, sweep[1].coefficients, atol=0.0
        )
        assert len(sweep[::2]) == 2

    def test_scaling_linearity(self, sweep):
        # linear system: the 2.0-input response is 4x the 0.5-input one
        np.testing.assert_allclose(
            sweep.coefficients[2], 4.0 * sweep.coefficients[0], atol=1e-12
        )

    def test_vectorised_sampling_shapes(self, sweep):
        t = np.linspace(0.1, 4.9, 7)
        assert sweep.states(t).shape == (3, 1, 7)
        assert sweep.outputs(t).shape == (3, 1, 7)
        assert sweep.output_coefficients.shape == (3, 1, 100)

    def test_vectorised_matches_item_sampling(self, sweep):
        t = np.linspace(0.1, 4.9, 5)
        np.testing.assert_allclose(
            sweep.outputs(t)[1], sweep[1].outputs(t), atol=1e-14
        )
        np.testing.assert_allclose(
            sweep.outputs_smooth(t)[1], sweep[1].outputs_smooth(t), atol=1e-14
        )
        np.testing.assert_allclose(
            sweep.states_smooth(t)[2], sweep[2].states_smooth(t), atol=1e-14
        )

    def test_feeds_analysis_layer(self, sweep):
        t = np.linspace(0.1, 4.9, 9)
        values = sample_outputs(sweep[0], t)
        assert values.shape == (1, 9)

    def test_grid_property(self, sweep):
        assert sweep.grid is not None
        assert sweep.grid.m == 100

    def test_empty_sweep_rejected(self, scalar_ode):
        with pytest.raises(SolverError, match="at least one"):
            Simulator(scalar_ode, (1.0, 8)).sweep([])

    def test_repr(self, sweep):
        assert "SweepResult(k=3" in repr(sweep)

"""Unit tests for the OperatorBundle layer (engine/bundle.py)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import gamma as gamma_fn

from repro.basis import (
    BlockPulseBasis,
    ChebyshevBasis,
    HaarBasis,
    LaguerreBasis,
    LegendreBasis,
    TimeGrid,
    WalshBasis,
)
from repro.engine.bundle import (
    OperatorBundle,
    basis_names,
    resolve_basis,
    validate_basis_name,
)
from repro.errors import BasisError


class TestResolveBasis:
    def test_default_is_block_pulse(self):
        grid = TimeGrid.uniform(1.0, 32)
        basis = resolve_basis(None, grid)
        assert isinstance(basis, BlockPulseBasis)
        assert basis.grid is grid

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("block-pulse", BlockPulseBasis),
            ("bpf", BlockPulseBasis),
            ("walsh", WalshBasis),
            ("haar", HaarBasis),
            ("legendre", LegendreBasis),
            ("chebyshev", ChebyshevBasis),
        ],
    )
    def test_named_families(self, name, cls):
        basis = resolve_basis(name, TimeGrid.uniform(2.0, 16))
        assert isinstance(basis, cls)
        assert basis.size == 16
        assert basis.t_end == 2.0

    def test_name_normalisation(self):
        grid = TimeGrid.uniform(1.0, 16)
        assert isinstance(resolve_basis("Block_Pulse", grid), BlockPulseBasis)
        assert isinstance(resolve_basis("  CHEBYSHEV ", grid), ChebyshevBasis)

    def test_instance_passthrough(self):
        basis = LegendreBasis(1.0, 8)
        assert resolve_basis(basis) is basis

    def test_typo_suggestion(self):
        with pytest.raises(BasisError, match="did you mean 'legendre'"):
            validate_basis_name("legnedre")

    def test_unknown_name_lists_families(self):
        with pytest.raises(BasisError) as err:
            validate_basis_name("fourier")
        for name in basis_names():
            assert name in str(err.value)

    def test_laguerre_by_name_explains_instance_requirement(self):
        with pytest.raises(BasisError, match="LaguerreBasis"):
            resolve_basis("laguerre", TimeGrid.uniform(1.0, 16))

    def test_walsh_rejects_adaptive_grid(self):
        grid = TimeGrid.geometric(1.0, 16, 1.2)
        with pytest.raises(BasisError, match="uniform"):
            resolve_basis("walsh", grid)


class TestBundleKinds:
    def test_kind_classification(self):
        grid = TimeGrid.uniform(1.0, 16)
        assert OperatorBundle(BlockPulseBasis(grid)).kind == "block-pulse"
        assert OperatorBundle(WalshBasis(1.0, 16)).kind == "pwconst"
        assert OperatorBundle(HaarBasis(1.0, 16)).kind == "pwconst"
        assert OperatorBundle(LaguerreBasis(1.0, 16)).kind == "toeplitz"
        assert OperatorBundle(LegendreBasis(1.0, 16)).kind == "spectral"
        assert OperatorBundle(ChebyshevBasis(1.0, 16)).kind == "spectral"

    def test_solver_bundle_of_pwconst_is_block_pulse(self):
        bundle = OperatorBundle(WalshBasis(1.0, 16))
        solver = bundle.solver_bundle
        assert solver.kind == "block-pulse"
        assert solver.basis is bundle.basis.block_pulse
        assert bundle.solver_bundle is solver  # cached
        assert bundle.transform is bundle.basis.transform

    def test_supports_march(self):
        assert OperatorBundle(LegendreBasis(1.0, 8)).supports_march
        assert not OperatorBundle(LaguerreBasis(1.0, 8)).supports_march

    def test_fingerprints_distinguish_families_and_sizes(self):
        grid = TimeGrid.uniform(1.0, 16)
        prints = {
            OperatorBundle(BlockPulseBasis(grid)).fingerprint(),
            OperatorBundle(WalshBasis(1.0, 16)).fingerprint(),
            OperatorBundle(LegendreBasis(1.0, 16)).fingerprint(),
            OperatorBundle(LegendreBasis(1.0, 8)).fingerprint(),
            OperatorBundle(LaguerreBasis(1.0, 16)).fingerprint(),
        }
        assert len(prints) == 5

    def test_equal_block_pulse_bases_share_fingerprint(self):
        a = OperatorBundle(BlockPulseBasis(TimeGrid.uniform(1.0, 16)))
        b = OperatorBundle(BlockPulseBasis(TimeGrid.uniform(1.0, 16)))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_covers_projection_and_quadrature(self):
        avg = OperatorBundle(WalshBasis(1.0, 16))
        mid = OperatorBundle(WalshBasis(1.0, 16, projection="midpoint"))
        assert avg.fingerprint() != mid.fingerprint()
        coarse = OperatorBundle(ChebyshevBasis(1.0, 8, n_quad=16))
        fine = OperatorBundle(ChebyshevBasis(1.0, 8, n_quad=256))
        assert coarse.fingerprint() != fine.fingerprint()


class TestBundleOperators:
    def test_toeplitz_coefficients_block_pulse(self):
        bundle = OperatorBundle(BlockPulseBasis(TimeGrid.uniform(1.0, 16)))
        coeffs = bundle.toeplitz_coefficients(1.0)
        full = bundle.basis.differentiation_matrix()
        np.testing.assert_allclose(coeffs, full[0], atol=1e-12)

    def test_toeplitz_coefficients_laguerre_cached(self):
        bundle = OperatorBundle(LaguerreBasis(2.0, 16))
        coeffs = bundle.toeplitz_coefficients(0.5)
        assert bundle.toeplitz_coefficients(0.5) is coeffs
        full = bundle.basis.fractional_differentiation_matrix(0.5)
        np.testing.assert_allclose(coeffs, full[0], atol=1e-12)

    def test_spectral_has_no_toeplitz_coefficients(self):
        with pytest.raises(BasisError, match="integral formulation"):
            OperatorBundle(LegendreBasis(1.0, 8)).toeplitz_coefficients(1.0)

    def test_ones_coefficients(self):
        grid = TimeGrid.uniform(1.0, 16)
        np.testing.assert_array_equal(
            OperatorBundle(BlockPulseBasis(grid)).ones_coefficients(), np.ones(16)
        )
        leg = OperatorBundle(LegendreBasis(1.0, 8))
        ones = leg.ones_coefficients()
        np.testing.assert_allclose(ones, np.eye(8)[0], atol=1e-12)
        assert leg.ones_coefficients() is ones  # cached

    def test_terminal_vector_evaluates_at_window_edge(self):
        bundle = OperatorBundle(ChebyshevBasis(2.0, 8))
        coeffs = bundle.basis.project(lambda t: t**2)
        assert abs(coeffs @ bundle.terminal_vector() - 4.0) < 1e-10


class TestHistoryMatrices:
    @pytest.mark.parametrize("cls", [LegendreBasis, ChebyshevBasis])
    @pytest.mark.parametrize("lag", [1, 2, 3])
    def test_history_of_constant_matches_analytic(self, cls, lag):
        """History of the constant 1 is the analytic RL lag integral.

        ``I^alpha`` of 1 restricted to the contribution of the interval
        ``[(k-lag)W, (k-lag+1)W]`` evaluated at local time tau is
        ``((lag W + tau)^alpha - ((lag-1) W + tau)^alpha) / Gamma(alpha+1)``.
        """
        alpha = 0.6
        W = 0.5
        basis = cls(W, 12)
        bundle = OperatorBundle(basis)
        H = bundle.history_matrix(alpha, lag)
        ones = bundle.ones_coefficients()
        hist = ones @ H
        exact = lambda tau: (
            (lag * W + tau) ** alpha - ((lag - 1) * W + tau) ** alpha
        ) / gamma_fn(alpha + 1.0)
        # compare in coefficient space against the projection of the
        # analytic lag integral: isolates the quadrature error from the
        # (for lag 1, tau^alpha-limited) polynomial representation error
        np.testing.assert_allclose(hist, basis.project(exact), atol=1e-8)
        tau = np.linspace(0.02, 0.48, 9)
        np.testing.assert_allclose(
            basis.synthesize(hist, tau), exact(tau), atol=5e-3 if lag == 1 else 5e-5
        )

    def test_history_matrix_cached(self):
        bundle = OperatorBundle(LegendreBasis(0.5, 8))
        assert bundle.history_matrix(0.6, 1) is bundle.history_matrix(0.6, 1)
        assert bundle.history_matrix(0.6, 2) is not bundle.history_matrix(0.6, 1)

    def test_block_pulse_has_no_history_matrices(self):
        bundle = OperatorBundle(BlockPulseBasis(TimeGrid.uniform(1.0, 8)))
        with pytest.raises(BasisError):
            bundle.history_matrix(0.5, 1)

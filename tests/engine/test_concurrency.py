"""Concurrent-session safety: shared simulators and pencil banks.

The service daemon hands one warm :class:`Simulator` to a pool of
solve threads, so a session object and its :class:`PencilBank` must
tolerate concurrent use: results bit-identical to the sequential
ones, cache counters consistent, bounds respected -- no torn
factorisations, no corrupted LRU order.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine import PencilBank, Simulator, select_backend

DECK = """
I1 0 n1 SIN(0 1m 2k)
R1 n1 n2 1k
C1 n1 0 1u
R2 n2 0 1k
C2 n2 0 1u
.tran 20u 2m
"""

SCALES = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5]


def scaled(u, s):
    return lambda t, _u=u, _s=s: _s * np.asarray(_u(t))


class TestSharedSimulator:
    def test_concurrent_runs_bit_identical_to_sequential(self):
        sim = Simulator.from_netlist(DECK)
        u = sim.bound_input

        reference = {}
        for s in SCALES:
            res = sim.run(scaled(u, s))
            t = res.sample_times(32)
            reference[s] = res.outputs(t)

        def run_one(s):
            res = sim.run(scaled(u, s))
            return s, res.outputs(res.sample_times(32))

        # several passes so thread interleavings actually overlap
        for _ in range(3):
            with ThreadPoolExecutor(max_workers=4) as pool:
                outs = dict(pool.map(run_one, SCALES))
            for s in SCALES:
                np.testing.assert_array_equal(outs[s], reference[s])
        assert sim.factorisations == 1, "shared session re-factorised its pencil"

    def test_concurrent_sweep_and_run_agree(self):
        sim = Simulator.from_netlist(DECK)
        u = sim.bound_input
        inputs = [scaled(u, s) for s in SCALES]

        ref_sweep = [
            r.outputs(r.sample_times(16)) for r in sim.sweep(inputs)
        ]
        ref_run = sim.run(u)
        ref_run_values = ref_run.outputs(ref_run.sample_times(16))

        results = {}
        barrier = threading.Barrier(2)

        def do_sweep():
            barrier.wait()
            results["sweep"] = [
                r.outputs(r.sample_times(16)) for r in sim.sweep(inputs)
            ]

        def do_run():
            barrier.wait()
            res = sim.run(u)
            results["run"] = res.outputs(res.sample_times(16))

        threads = [
            threading.Thread(target=do_sweep),
            threading.Thread(target=do_run),
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=60)
        assert set(results) == {"sweep", "run"}
        np.testing.assert_array_equal(results["run"], ref_run_values)
        for got, want in zip(results["sweep"], ref_sweep):
            np.testing.assert_array_equal(got, want)


class TestSharedBank:
    def test_bounded_bank_concurrent_solves_stay_consistent(self):
        rng = np.random.default_rng(7)
        n = 24
        E = np.eye(n)
        A = -(np.diag(2.0 * np.ones(n)) - np.diag(np.ones(n - 1), 1))
        rhs = rng.standard_normal((n, 3))
        sigmas = [1.0, 2.0, 3.0, 4.0]

        reference_bank = PencilBank(select_backend(E, A))
        reference = {s: reference_bank.solve(s, rhs) for s in sigmas}

        bank = PencilBank(select_backend(E, A), max_entries=2)
        calls_per_thread = 50
        mismatches = []

        def pound(seed):
            for k in range(calls_per_thread):
                s = sigmas[(seed + k) % len(sigmas)]
                got = bank.solve(s, rhs)
                if not np.array_equal(got, reference[s]):
                    mismatches.append(s)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(pound, range(8)))

        assert not mismatches, f"corrupted solves for sigmas {set(mismatches)}"
        stats = bank.stats()
        total = 8 * calls_per_thread
        assert stats["hits"] + stats["misses"] == total
        assert stats["entries"] <= 2
        assert stats["evictions"] == stats["factorisations"] - stats["entries"]

    def test_unbounded_bank_concurrent_distinct_sigmas(self):
        n = 16
        E = np.eye(n)
        A = -np.eye(n)
        rhs = np.ones(n)
        bank = PencilBank(select_backend(E, A))

        def solve_many(base):
            # four threads share four sigmas: every pencil is fought over
            for k in range(40):
                s = 1.0 + (base + k) % 4
                x = bank.solve(s, rhs)
                expected = 1.0 / (s + 1.0)
                assert np.allclose(x, expected)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(solve_many, range(4)))

        stats = bank.stats()
        assert stats["entries"] == 4
        # each distinct sigma factorised exactly once: concurrent
        # misses must not duplicate factorisations
        assert stats["factorisations"] == 4
        assert stats["hits"] + stats["misses"] == 160

"""Tests for the netlist-native session layer (the SPICE front door)."""

import numpy as np
import pytest

from repro import Simulator
from repro.circuits import Netlist, assemble_mna
from repro.core.dispatch import simulate
from repro.engine.netlist_session import (
    AcScan,
    NetlistRun,
    ac_scan,
    build_system,
    from_netlist,
    simulate_netlist,
)
from repro.errors import NetlistError, SolverError

RC_DECK = """
* rc lowpass with full analysis cards
I1 0 n1 1m
R1 n1 0 1k
C1 n1 0 1u
.tran 50u 5m
.ac dec 5 10 10k
"""

CPE_DECK = """
I1 0 a 1.0
R1 a 0 1.0
P1 a 0 1.0 0.5
.tran 10m 2
"""


class TestBuildSystem:
    def test_ic_becomes_x0(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.ic v(a)=0.25\n")
        system = build_system(nl)
        np.testing.assert_allclose(system.x0, [0.25])

    def test_ic_can_be_disabled(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.ic v(a)=0.25\n")
        assert build_system(nl, use_ic=False).x0 is None

    def test_ic_only_touches_named_nodes(self):
        nl = Netlist.from_spice(
            "I1 0 a 1m\nR1 a b 1k\nC1 b 0 1u\nL1 b 0 1m\n.ic v(b)=2\n"
        )
        system = build_system(nl)
        # state layout: node voltages first, inductor current after
        assert system.x0[nl.node_index("b")] == pytest.approx(2.0)
        assert system.x0[nl.node_index("a")] == 0.0
        assert system.x0[-1] == 0.0

    def test_mixed_order_ic_rejected(self):
        nl = Netlist.from_spice(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\nP1 a 0 1u 0.5\n.ic v(a)=1\n"
        )
        with pytest.raises(NetlistError, match="mixed-order"):
            build_system(nl)

    def test_ic_transient_starts_at_initial_voltage(self):
        nl = Netlist.from_spice(
            "I1 0 a 0\nR1 a 0 1k\nC1 a 0 1u\n.tran 10u 5m\n.ic v(a)=1\n"
        )
        run = simulate_netlist(nl)
        v = run.tran.states(np.array([5e-6, 5e-3]))[0]
        assert v[0] == pytest.approx(1.0, rel=2e-2)   # starts charged
        assert abs(v[1]) < 0.05                        # decays to zero


class TestFromNetlist:
    def test_grid_and_input_from_deck(self):
        sim = from_netlist(RC_DECK)
        assert isinstance(sim, Simulator)
        assert sim.grid.m == 100
        assert sim.grid.t_end == pytest.approx(5e-3)
        result = sim.run()  # bound input: no argument needed
        assert result.states([5e-3])[0, 0] == pytest.approx(1.0, rel=1e-2)

    def test_classmethod_alias(self):
        sim = Simulator.from_netlist(RC_DECK)
        assert sim.run().info["basis"] == "BlockPulse"

    def test_options_basis_honoured(self):
        sim = from_netlist(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 1m 10m\n"
            ".options basis=chebyshev m=16\n"
        )
        assert sim.basis.size == 16
        assert sim.run().info["basis"] == "Chebyshev"

    def test_explicit_grid_overrides_deck(self):
        sim = from_netlist(RC_DECK, grid=(1e-3, 64))
        assert sim.grid.m == 64

    def test_missing_tran_card_rejected(self):
        with pytest.raises(NetlistError, match=r"\.tran"):
            from_netlist("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n")

    def test_march_with_bound_input(self):
        sim = from_netlist(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 20u 1m\n"
        )
        result = sim.march(None, 5e-3)
        assert result.n_windows == 5
        assert result.states([5e-3])[0, 0] == pytest.approx(1.0, rel=1e-2)

    def test_unbound_session_still_requires_input(self):
        system = build_system(Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n"))
        sim = Simulator(system, (1e-3, 10))
        with pytest.raises(SolverError, match="bind_input"):
            sim.run()


CPE_MARCH_DECK = """
* fractional march with deck-level memory compression
I1 0 n1 SIN(0 1m 3)
R1 n1 0 1k
P1 n1 0 1u 0.7
.tran 1e-2 1.0
.options windows=20 m=600 memory=soe memory_rtol=1e-9
"""


class TestMemoryOptions:
    def test_deck_memory_card_reaches_session(self):
        sim = from_netlist(CPE_MARCH_DECK)
        assert sim.memory_plan is not None
        assert sim.memory_plan.rtol == 1e-9

    def test_caller_override_wins(self):
        sim = from_netlist(CPE_MARCH_DECK, memory="exact")
        assert sim.memory_plan is None

    def test_simulate_netlist_marches_with_soe(self):
        run = simulate_netlist(CPE_MARCH_DECK)
        mem = run.tran.info["memory"]
        assert mem["mode"] == "soe" and mem["certified"]

    def test_exact_override_matches_soe_to_tolerance(self):
        soe = simulate_netlist(CPE_MARCH_DECK)
        exact = simulate_netlist(CPE_MARCH_DECK, memory="exact")
        assert exact.tran.info["memory"] == {"mode": "exact"}
        t = np.linspace(0.05, 0.99, 9)
        scale = np.max(np.abs(exact.tran.outputs(t)))
        err = np.max(np.abs(soe.tran.outputs(t) - exact.tran.outputs(t)))
        assert err / scale < 1e-8

    def test_gl_method_accepts_memory(self):
        deck = (
            "I1 0 a 1.0\nR1 a 0 1.0\nP1 a 0 1.0 0.5\n.tran 1m 2\n"
            ".options method=grunwald-letnikov m=2000 memory=soe\n"
        )
        run = simulate_netlist(deck)
        assert run.tran.info["memory"]["mode"] == "soe"


class TestSimulateNetlist:
    def test_runs_all_deck_analyses(self):
        run = simulate_netlist(RC_DECK)
        assert isinstance(run, NetlistRun)
        assert run.tran is not None and isinstance(run.ac, AcScan)
        assert run.outputs == ("n1",)

    def test_fractional_deck(self):
        run = simulate_netlist(CPE_DECK, steps=200)
        assert "Fractional" in type(run.system).__name__
        assert run.tran.coefficients.shape[1] == 200

    def test_tran_only_when_no_ac_card(self):
        run = simulate_netlist("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 50u 5m\n")
        assert run.tran is not None and run.ac is None

    def test_ac_only_deck_skips_transient(self):
        run = simulate_netlist(
            "I1 0 a AC 1\nR1 a 0 1k\nC1 a 0 1u\n.ac dec 2 10 1k\n"
        )
        assert run.tran is None and run.ac is not None

    def test_no_analysis_requested(self):
        run = simulate_netlist("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n")
        assert run.tran is None and run.ac is None

    def test_t_end_override_runs_transient(self):
        run = simulate_netlist(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n", t_end=5e-3, steps=50
        )
        assert run.tran.states([5e-3])[0, 0] == pytest.approx(1.0, rel=2e-2)

    def test_steps_without_tran_card_rejected(self):
        with pytest.raises(NetlistError, match="term count"):
            simulate_netlist("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n", t_end=1e-3)

    def test_windows_march(self):
        run = simulate_netlist(RC_DECK, windows=4)
        assert run.tran.n_windows == 4
        single = simulate_netlist(RC_DECK)
        np.testing.assert_allclose(
            run.tran.states([4.9e-3]), single.tran.states([4.9e-3]), rtol=1e-9
        )

    def test_windows_from_options_card(self):
        run = simulate_netlist(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 50u 5m\n.options windows=5\n"
        )
        assert run.tran.n_windows == 5

    def test_windows_divisibility_checked(self):
        with pytest.raises(NetlistError, match="divisible"):
            simulate_netlist(RC_DECK, windows=7)

    def test_baseline_method_routes_through_dispatch(self):
        run = simulate_netlist(RC_DECK, method="trapezoidal")
        assert run.tran.info["method"] == "trapezoidal"
        assert run.tran.outputs([5e-3])[0, 0] == pytest.approx(1.0, rel=1e-2)

    def test_baseline_method_with_windows_rejected(self):
        """A baseline method cannot silently drop (or hijack) windowing."""
        with pytest.raises(NetlistError, match="plain transient"):
            simulate_netlist(RC_DECK, method="trapezoidal", windows=4)

    def test_method_from_options_card(self):
        run = simulate_netlist(
            "I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n.tran 50u 5m\n"
            ".options method=backward-euler\n"
        )
        assert run.tran.info["method"] == "backward-euler"

    def test_path_source(self, tmp_path):
        path = tmp_path / "rc.cir"
        path.write_text(RC_DECK)
        run = simulate_netlist(path)
        assert run.netlist.title == "rc"
        assert run.tran is not None


class TestZooMethods:
    """The fractional method zoo through the SPICE front door."""

    def test_zoo_method_kwarg(self):
        run = simulate_netlist(CPE_DECK, steps=200, method="gl")
        assert run.tran.info["method"] == "gl[BlockPulse]"
        native = simulate_netlist(CPE_DECK, steps=200)
        t = np.array([0.5, 1.5])
        np.testing.assert_allclose(
            run.tran.states(t), native.tran.states(t), atol=5e-2
        )

    def test_zoo_method_from_options_card(self):
        deck = CPE_DECK + ".options method=oustaloup\n"
        run = simulate_netlist(deck, steps=200)
        assert run.tran.info["method"] == "oustaloup[BlockPulse]"

    def test_kwarg_overrides_options_card(self):
        deck = CPE_DECK + ".options method=oustaloup\n"
        run = simulate_netlist(deck, steps=200, method="gl")
        assert run.tran.info["method"] == "gl[BlockPulse]"

    def test_from_netlist_threads_deck_method(self):
        deck = CPE_DECK + ".options method=gl\n"
        sim = from_netlist(deck)
        assert sim.method is not None and sim.method.name == "gl"

    def test_warm_session_accepts_zoo_but_not_baselines(self):
        sim = from_netlist(CPE_DECK, method="gl")
        sim.run(sim.bound_input)
        with pytest.raises(NetlistError, match="one-shot baseline"):
            from_netlist(CPE_DECK, method="fft")

    def test_typo_lists_and_suggests_everywhere(self):
        with pytest.raises(NetlistError, match="did you mean 'oustaloup'"):
            simulate_netlist(CPE_DECK, steps=100, method="oustalop")
        deck = CPE_DECK + ".options method=jacobii\n"
        with pytest.raises(NetlistError, match="did you mean 'jacobi'"):
            simulate_netlist(deck, steps=100)
        with pytest.raises(NetlistError, match="choose from"):
            from_netlist(CPE_DECK, method="rk45")

    def test_zoo_method_with_windows_rejected(self):
        with pytest.raises(NetlistError, match="windows"):
            simulate_netlist(CPE_DECK, steps=200, method="gl", windows=4)


class TestAcScan:
    def test_rc_corner(self):
        scan = ac_scan(
            "I1 0 a AC 1\nR1 a 0 1k\nC1 a 0 1u\n.ac lin 3 100 1k\n"
        )
        assert scan.n_points == 3
        # |Z| = R / sqrt(1 + (wRC)^2)
        f = scan.frequencies
        expected = 1e3 / np.sqrt(1.0 + (2 * np.pi * f * 1e-3) ** 2)
        np.testing.assert_allclose(scan.magnitude()[:, 0], expected, rtol=1e-9)

    def test_phase_sign(self):
        scan = ac_scan(
            "I1 0 a AC 1\nR1 a 0 1k\nC1 a 0 1u\n.ac lin 1 159.1549 159.1549\n"
        )
        assert scan.phase_deg()[0, 0] == pytest.approx(-45.0, abs=0.1)

    def test_missing_ac_card_rejected(self):
        with pytest.raises(NetlistError, match=r"\.ac card"):
            ac_scan("I1 0 a 1m\nR1 a 0 1k\n")

    def test_ac_magnitude_scales_response(self):
        base = ac_scan("I1 0 a AC 1\nR1 a 0 1k\n.ac lin 1 100 100\n")
        doubled = ac_scan("I1 0 a AC 2\nR1 a 0 1k\n.ac lin 1 100 100\n")
        np.testing.assert_allclose(
            doubled.response, 2.0 * base.response, rtol=1e-12
        )


class TestDispatchNetlist:
    def test_simulate_accepts_netlist(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n")
        result = simulate(nl, None, 5e-3, 100)
        assert result.states([5e-3])[0, 0] == pytest.approx(1.0, rel=1e-2)

    def test_simulate_netlist_honours_ic(self):
        nl = Netlist.from_spice(
            "I1 0 a 0\nR1 a 0 1k\nC1 a 0 1u\n.ic v(a)=1\n"
        )
        result = simulate(nl, None, 1e-4, 50)
        assert result.states([1e-6])[0, 0] == pytest.approx(1.0, rel=5e-2)

    def test_simulate_netlist_explicit_input_wins(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n")
        result = simulate(nl, 2e-3, 5e-3, 100)
        assert result.states([5e-3])[0, 0] == pytest.approx(2.0, rel=1e-2)

    def test_u_none_without_netlist_rejected(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u\n")
        system = assemble_mna(nl)
        with pytest.raises(SolverError, match="u=None"):
            simulate(system, None, 1e-3, 10)

    def test_plain_simulate_does_not_import_circuits(self):
        """Core dispatch must stay usable without the circuits layer."""
        import os
        import subprocess
        import sys as _sys
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src"
        code = (
            "import sys\n"
            "from repro.core import DescriptorSystem\n"
            "from repro.core.dispatch import simulate\n"
            "simulate(DescriptorSystem([[1.0]], [[-1.0]], [[1.0]]), 1.0, 1.0, 8)\n"
            "assert 'repro.circuits' not in sys.modules, 'circuits leaked in'\n"
        )
        proc = subprocess.run(
            [_sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        assert proc.returncode == 0, proc.stderr

"""Engine contract suite: every basis family through one Simulator API.

The tentpole guarantee of the basis-generic engine: ``Simulator(system,
grid, basis=...)`` supports ``run`` / ``sweep`` / ``march`` with the
same warm-cache semantics for every registered family.  This suite
drives each family through the same scenarios:

* classical run against the analytic RC response;
* fractional run against the Mittag-Leffler step response;
* batched ``sweep`` consistency with per-input ``run``;
* warm sessions performing zero pencil factorisations *and* zero
  operational-matrix rebuilds (the caching regression test);
* windowed ``march`` -- exact state carry-over for the piecewise
  families, hybrid-function marching (terminal-state / memory-operator
  carry) for the spectral ones -- including fractional memory-tail
  transfer and input events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import LaguerreBasis
from repro.core import DescriptorSystem, FractionalDescriptorSystem, MultiTermSystem
from repro.engine import Event, Simulator
from repro.errors import SolverError
from repro.fractional.analytic import fde_step_response

T_END = 2.0

#: family -> (basis kwarg, m, classical tol, fractional tol, march tol)
ENGINE_FAMILIES = {
    "block-pulse": (None, 256, 5e-3, 5e-3, 5e-3),
    "walsh": ("walsh", 256, 5e-3, 5e-3, 5e-3),
    "haar": ("haar", 256, 5e-3, 5e-3, 5e-3),
    "chebyshev": ("chebyshev", 24, 1e-10, 5e-3, 1e-9),
    "legendre": ("legendre", 24, 1e-10, 5e-3, 1e-9),
}

MARCHING_FAMILIES = sorted(ENGINE_FAMILIES)


@pytest.fixture
def rc():
    """Scalar RC: ``x' = -x + u``; step response ``1 - exp(-t)``."""
    return DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])


@pytest.fixture
def frac():
    """Scalar FDE of order 0.6 with known Mittag-Leffler step response."""
    return FractionalDescriptorSystem(0.6, [[1.0]], [[-1.0]], [[1.0]])


def make_session(system, name, *, m=None, t_end=T_END, **kwargs):
    basis, default_m, _, _, _ = ENGINE_FAMILIES[name]
    return Simulator(system, (t_end, m or default_m), basis=basis, **kwargs)


def sample_times(t_end=T_END):
    return np.linspace(0.06 * t_end, 0.94 * t_end, 19)


class TestClassicalRun:
    @pytest.mark.parametrize("name", sorted(ENGINE_FAMILIES))
    def test_step_response(self, rc, name):
        tol = ENGINE_FAMILIES[name][2]
        sim = make_session(rc, name)
        res = sim.run(1.0)
        t = sample_times()
        sampler = res.states_smooth if name == "block-pulse" else res.states
        np.testing.assert_allclose(sampler(t)[0], 1.0 - np.exp(-t), atol=tol)
        assert res.info["basis"] == sim.basis.name

    @pytest.mark.parametrize("name", sorted(ENGINE_FAMILIES))
    def test_nonzero_initial_state(self, name):
        tol = ENGINE_FAMILIES[name][2]
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[2.0])
        res = make_session(system, name).run(0.0)
        t = sample_times()
        sampler = res.states if name in ("chebyshev", "legendre") else res.states_smooth
        np.testing.assert_allclose(sampler(t)[0], 2.0 * np.exp(-t), atol=max(tol, 1e-3))


class TestFractionalRun:
    @pytest.mark.parametrize("name", sorted(ENGINE_FAMILIES))
    def test_mittag_leffler_step(self, frac, name):
        tol = ENGINE_FAMILIES[name][3]
        sim = make_session(frac, name)
        res = sim.run(1.0)
        t = sample_times()
        exact = fde_step_response(0.6, 1.0, t)
        sampler = res.states_smooth if name == "block-pulse" else res.states
        np.testing.assert_allclose(sampler(t)[0], exact, atol=tol)


class TestSweep:
    @pytest.mark.parametrize("name", sorted(ENGINE_FAMILIES))
    def test_sweep_equals_runs(self, rc, name):
        sim = make_session(rc, name)
        inputs = [0.5, 1.0, lambda t: np.sin(t)]
        batch = sim.sweep(inputs)
        assert batch.n_runs == 3
        t = sample_times()
        for i, u in enumerate(inputs):
            single = sim.run(u)
            np.testing.assert_allclose(
                batch[i].states(t), single.states(t), atol=1e-12
            )

    @pytest.mark.parametrize("name", sorted(ENGINE_FAMILIES))
    def test_sweep_shares_one_factorisation(self, rc, name):
        sim = make_session(rc, name)
        sim.sweep([0.5, 1.0, 2.0, 4.0])
        assert sim.factorisations == 1


class TestWarmSessionCaching:
    @pytest.mark.parametrize("name", sorted(ENGINE_FAMILIES))
    def test_zero_rebuilds_when_warm(self, rc, name):
        """A warm session rebuilds neither pencils nor operational matrices."""
        sim = make_session(rc, name)
        sim.run(1.0)  # cold call: builds everything
        factorisations = sim.factorisations
        operator_builds = sim.basis.operator_builds + sim._solve_basis.operator_builds
        for u in (0.5, lambda t: np.sin(3.0 * t), 2.0):
            sim.run(u)
        sim.sweep([1.0, 2.0])
        assert sim.factorisations == factorisations
        assert (
            sim.basis.operator_builds + sim._solve_basis.operator_builds
            == operator_builds
        )
        assert sim.is_warm

    @pytest.mark.parametrize("name", MARCHING_FAMILIES)
    def test_march_reuses_the_run_factorisation(self, rc, name):
        sim = make_session(rc, name, t_end=0.5, m=ENGINE_FAMILIES[name][1] // 4)
        sim.run(1.0)
        before = sim.factorisations
        sim.march(1.0, 2.0)
        assert sim.factorisations == before


class TestClassicalMarch:
    @pytest.mark.parametrize("name", MARCHING_FAMILIES)
    def test_march_matches_analytic(self, rc, name):
        tol = ENGINE_FAMILIES[name][4]
        sim = make_session(rc, name, t_end=0.5, m=ENGINE_FAMILIES[name][1] // 4)
        res = sim.march(1.0, 4.0)
        assert res.n_windows == 8
        t = np.linspace(0.1, 3.9, 21)
        np.testing.assert_allclose(
            res.states_smooth(t)[0], 1.0 - np.exp(-t), atol=max(tol, 2e-3)
        )
        assert sim.factorisations == 1

    @pytest.mark.parametrize("name", MARCHING_FAMILIES)
    def test_march_with_input_event(self, rc, name):
        sim = make_session(rc, name, t_end=0.5, m=ENGINE_FAMILIES[name][1] // 4)
        res = sim.march(1.0, 2.0, events=[Event(t=1.0, scale=0.0, label="off")])
        # input switched off at t=1: from there the state decays
        x1 = res.states_smooth([1.0])[0, 0]
        x2 = res.states_smooth([1.9])[0, 0]
        assert x2 < x1
        np.testing.assert_allclose(
            x2, x1 * np.exp(-0.9), rtol=0.05
        )
        assert len(res.info["events"]) == 1

    @pytest.mark.parametrize("name", ["chebyshev", "legendre"])
    def test_spectral_pencil_event_restamps(self, rc, name):
        sim = make_session(rc, name, t_end=0.5, m=12)
        # halve the time constant from t = 1
        res = sim.march(
            1.0, 2.0, events=[Event(t=1.0, A=[[-2.0]], label="switch")]
        )
        t = np.linspace(1.3, 1.9, 5)
        # closed form after the switch: x -> 0.5 + (x1 - 0.5) e^{-2 (t-1)}
        x1 = res.states([1.0])[0, 0]
        exact = 0.5 + (x1 - 0.5) * np.exp(-2.0 * (t - 1.0))
        np.testing.assert_allclose(res.states(t)[0], exact, atol=1e-4)
        assert res.info["restamps"] == 1
        # the session solves against the base pencil again afterwards
        r = sim.run(1.0)
        t_win = np.linspace(0.03, 0.47, 15)  # inside the session window
        np.testing.assert_allclose(
            r.states(t_win)[0], 1.0 - np.exp(-t_win), atol=1e-8
        )


class TestFractionalMarch:
    @pytest.mark.parametrize("name", MARCHING_FAMILIES)
    def test_memory_tail_carry_over(self, frac, name):
        """Marched fractional windows carry the full RL memory."""
        m = ENGINE_FAMILIES[name][1] // 4
        sim = make_session(frac, name, t_end=0.5, m=m)
        res = sim.march(1.0, 2.0)
        t = np.linspace(0.15, 1.9, 17)
        exact = fde_step_response(0.6, 1.0, t)
        np.testing.assert_allclose(res.states_smooth(t)[0], exact, atol=1.5e-2)
        assert sim.factorisations == 1

    def test_block_pulse_march_bit_equals_single_solve(self, frac):
        sim = make_session(frac, "block-pulse", t_end=0.5, m=64)
        res = sim.march(1.0, 2.0)
        single = make_session(frac, "block-pulse", t_end=2.0, m=256).run(1.0)
        np.testing.assert_allclose(
            res.coefficients, single.coefficients, rtol=0.0, atol=1e-13
        )

    @pytest.mark.parametrize("name", ["chebyshev", "legendre"])
    def test_spectral_rejects_fractional_pencil_events(self, frac, name):
        sim = make_session(frac, name, t_end=0.5, m=12)
        with pytest.raises(SolverError, match="input events only"):
            sim.march(1.0, 2.0, events=[Event(t=1.0, A=[[-2.0]])])

    @pytest.mark.parametrize("name", ["chebyshev", "legendre"])
    def test_spectral_fractional_input_event(self, frac, name):
        sim = make_session(frac, name, t_end=0.5, m=16)
        res = sim.march(1.0, 2.0, events=[Event(t=1.0, scale=0.0)])
        x1 = res.states([0.95])[0, 0]
        x2 = res.states([1.9])[0, 0]
        assert x2 < x1  # relaxes once the drive is removed


class TestLaguerreSessions:
    def test_run_on_semi_infinite_horizon(self, rc):
        sim = Simulator(rc, LaguerreBasis(1.0, 40))
        res = sim.run(lambda t: np.exp(-2.0 * t))
        t = np.linspace(0.2, 6.0, 25)
        exact = np.exp(-t) - np.exp(-2.0 * t)
        np.testing.assert_allclose(res.states(t)[0], exact, atol=1e-10)
        assert res.info["method"] == "opm-toeplitz[laguerre]"
        res2 = sim.run(lambda t: 2.0 * np.exp(-2.0 * t))
        assert sim.factorisations == 1
        np.testing.assert_allclose(res2.states(t)[0], 2.0 * exact, atol=1e-9)

    def test_march_rejected(self, rc):
        sim = Simulator(rc, LaguerreBasis(1.0, 16))
        with pytest.raises(SolverError, match="infinite horizon"):
            sim.march(1.0, 4.0)

    def test_high_order_projection_is_finite_and_accurate(self, rc):
        """m ~ 128 must not overflow (scaled recurrence + capped rule)."""
        sim = Simulator(rc, LaguerreBasis(1.0, 128))
        res = sim.run(lambda t: np.exp(-2.0 * t))
        assert np.all(np.isfinite(res.coefficients))
        t = np.linspace(0.2, 6.0, 25)
        exact = np.exp(-t) - np.exp(-2.0 * t)
        np.testing.assert_allclose(res.states(t)[0], exact, atol=1e-10)

    def test_unavailable_quadrature_order_raises_typed(self):
        from repro.errors import BasisError

        with pytest.raises(BasisError, match="n_quad"):
            LaguerreBasis(1.0, 8, n_quad=512)

    def test_grid_is_none(self, rc):
        sim = Simulator(rc, LaguerreBasis(1.0, 16))
        assert sim.grid is None


class TestSessionConstruction:
    def test_unknown_basis_name_suggests(self, rc):
        from repro.errors import BasisError

        with pytest.raises(BasisError, match="did you mean 'chebyshev'"):
            Simulator(rc, (1.0, 16), basis="chebishev")

    def test_basis_instance_and_grid_must_agree(self, rc):
        from repro.basis import LegendreBasis

        with pytest.raises(SolverError, match="does not match"):
            Simulator(rc, (1.0, 16), basis=LegendreBasis(2.0, 16))

    def test_block_pulse_instance_grid_spacing_must_match(self, rc):
        from repro.basis import BlockPulseBasis, TimeGrid

        uniform = BlockPulseBasis(TimeGrid.uniform(1.0, 16))
        adaptive = TimeGrid.geometric(1.0, 16, 1.3)  # same m, t_end
        with pytest.raises(SolverError, match="does not match"):
            Simulator(rc, adaptive, basis=uniform)

    def test_grid_free_basis_rejects_adaptive_grid(self, rc):
        from repro.basis import LegendreBasis, TimeGrid

        adaptive = TimeGrid.geometric(1.0, 16, 1.3)
        with pytest.raises(SolverError, match="adaptive"):
            Simulator(rc, adaptive, basis=LegendreBasis(1.0, 16))
        from repro.errors import BasisError

        with pytest.raises(BasisError, match="adaptive"):
            Simulator(rc, adaptive, basis="legendre")

    def test_basis_instance_in_grid_position_excludes_kwarg(self, rc):
        from repro.basis import LegendreBasis

        with pytest.raises(TypeError, match="not both"):
            Simulator(rc, LegendreBasis(1.0, 8), basis="chebyshev")

    def test_multiterm_requires_piecewise_basis(self):
        system = MultiTermSystem(
            [(2.0, np.eye(2)), (0.0, np.eye(2))], np.ones((2, 1))
        )
        with pytest.raises(SolverError, match="piecewise-constant"):
            Simulator(system, (1.0, 16), basis="legendre")

    def test_multiterm_through_walsh(self):
        system = MultiTermSystem(
            [(2.0, np.eye(1)), (1.0, 0.4 * np.eye(1)), (0.0, np.eye(1))],
            np.ones((1, 1)),
        )
        res = Simulator(system, (1.0, 64), basis="walsh").run(1.0)
        ref = Simulator(system, (1.0, 64)).run(1.0)
        t = np.linspace(0.05, 0.95, 11)
        np.testing.assert_allclose(res.states(t), ref.states(t), atol=1e-10)

    def test_dense_kron_guard_fires_before_densification(self):
        """backend='dense' on a huge spectral operator raises cleanly.

        The refusal must happen before the (n m)^2 dense operator is
        materialised -- a 24000-row kron pair would be ~9 GB dense.
        """
        import scipy.sparse as sp

        n = 300
        A = sp.diags([-2.0 * np.ones(n)], [0], format="csr")
        system = DescriptorSystem(sp.identity(n, format="csr"), A, np.ones((n, 1)))
        with pytest.raises(SolverError, match="exceeds"):
            Simulator(system, (1.0, 80), basis="chebyshev", backend="dense")
        # auto mode falls back to the sparse backend instead of raising
        sim = Simulator(system, (1.0, 80), basis="chebyshev")
        assert sim.backend == "sparse"

    def test_instance_projection_survives_default_wrappers(self, rc):
        """A midpoint-projection Walsh instance keeps its rule by default."""
        from repro.basis import WalshBasis
        from repro.core import simulate_opm_transformed

        basis = WalshBasis(T_END, 32, projection="midpoint")
        res = simulate_opm_transformed(rc, lambda t: np.sin(t), basis)
        assert res.basis is basis
        assert res.basis.projection == "midpoint"
        sim = Simulator(rc, basis)
        assert sim.basis is basis

    def test_projection_honoured_for_transformed_bases(self, rc):
        """projection='midpoint' must reach the Walsh session's block pulses."""
        from repro.basis import WalshBasis

        mid = Simulator(
            rc, WalshBasis(T_END, 64), projection="midpoint"
        ).run(lambda t: np.sin(t))
        avg = Simulator(rc, WalshBasis(T_END, 64)).run(lambda t: np.sin(t))
        assert np.max(np.abs(mid.coefficients - avg.coefficients)) > 0.0
        ref = Simulator(rc, (T_END, 64), projection="midpoint").run(
            lambda t: np.sin(t)
        )
        np.testing.assert_allclose(
            mid.basis.to_block_pulse_coefficients(mid.coefficients),
            ref.coefficients,
            atol=1e-12,
        )

    def test_walsh_march_smooth_sampling_is_second_order(self, rc):
        """Transformed marches sample through the block-pulse smooth path."""
        walsh = make_session(rc, "walsh", t_end=1.0, m=64).march(1.0, 3.0)
        bpf = make_session(rc, "block-pulse", t_end=1.0, m=64).march(1.0, 3.0)
        t = np.linspace(0.1, 2.9, 17)
        np.testing.assert_allclose(
            walsh.states_smooth(t), bpf.states_smooth(t), atol=1e-10
        )
        np.testing.assert_allclose(
            walsh.terminal_state(), bpf.terminal_state(), atol=1e-10
        )

    def test_march_reads_coefficient_arrays_in_session_basis(self, rc):
        """march() interprets coefficient chunks exactly like run()."""
        from repro.basis import WalshBasis

        sim = Simulator(rc, WalshBasis(1.0, 8))
        U = sim.project(1.0)  # Walsh coefficients of the unit step
        single = sim.run(U)
        marched = sim.march(np.tile(U, (1, 2)), 2.0)
        t = np.linspace(0.05, 0.95, 7)
        np.testing.assert_allclose(
            marched.states(t), single.states(t), atol=1e-12
        )

    def test_walsh_sweep_decodes_every_member(self, rc):
        sim = make_session(rc, "walsh")
        batch = sim.sweep([1.0, 2.0])
        assert batch.basis is sim.basis
        t = sample_times()
        np.testing.assert_allclose(
            batch[1].states(t), 2.0 * batch[0].states(t), atol=1e-10
        )

"""Engine integration tests for compressed fractional memory (``memory='soe'``).

The compression contract mirrors PR 6's MOR: certified at bind, gated
on the exact bound, recorded fallback to exact memory, and the
``memory='exact'`` default bit-identical to the pre-SOE engine.
"""

import numpy as np
import pytest

from repro.core import FractionalDescriptorSystem, Simulator, simulate_opm
from repro.errors import MemoryCompressionError, SolverError
from repro.fractional import SoePlan, simulate_grunwald_letnikov
from repro.fractional.soe import clear_fit_cache, fit_cache_stats


def fractional_system(n=6, seed=0, alpha=0.7):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) - 3.0 * np.eye(n)
    E = np.eye(n) + 0.1 * rng.standard_normal((n, n))
    B = rng.standard_normal((n, 1))
    return FractionalDescriptorSystem(alpha, E, A, B)


def sine(t):
    return np.sin(3.0 * t)


class TestSessionKnob:
    def test_default_is_exact(self):
        sim = Simulator(fractional_system(), (0.5, 16))
        assert sim.memory_plan is None

    def test_soe_resolves_to_plan(self):
        sim = Simulator(fractional_system(), (0.5, 16), memory="soe")
        assert isinstance(sim.memory_plan, SoePlan)

    def test_rtol_override(self):
        sim = Simulator(
            fractional_system(), (0.5, 16), memory="soe", memory_rtol=1e-6
        )
        assert sim.memory_plan.rtol == 1e-6

    def test_bad_mode_rejected_at_bind(self):
        with pytest.raises(SolverError, match="memory"):
            Simulator(fractional_system(), (0.5, 16), memory="wavelet")
        with pytest.raises(SolverError, match="memory_rtol"):
            Simulator(fractional_system(), (0.5, 16), memory_rtol=1e-8)

    def test_fingerprint_distinguishes_memory_modes(self):
        system = fractional_system()
        exact = Simulator(system, (0.5, 16))
        soe = Simulator(system, (0.5, 16), memory="soe")
        loose = Simulator(system, (0.5, 16), memory="soe", memory_rtol=1e-6)
        prints = {exact.fingerprint, soe.fingerprint, loose.fingerprint}
        assert len(prints) == 3


class TestTriangularMarch:
    def test_exact_mode_is_bit_identical(self):
        """The default path must not change at all with SOE available."""
        system = fractional_system()
        base = Simulator(system, (0.4, 24)).march(sine, 4.0)
        explicit = Simulator(system, (0.4, 24), memory="exact").march(sine, 4.0)
        np.testing.assert_array_equal(
            base.coefficients, explicit.coefficients
        )
        assert base.info["memory"] == {"mode": "exact"}

    def test_soe_matches_exact_within_tolerance(self):
        system = fractional_system()
        exact = Simulator(system, (0.4, 24)).march(sine, 8.0)
        soe_sim = Simulator(system, (0.4, 24), memory="soe")
        soe = soe_sim.march(sine, 8.0)
        mem = soe.info["memory"]
        assert mem["mode"] == "soe" and mem["certified"]
        assert mem["fallback"] is False
        scale = np.max(np.abs(exact.coefficients))
        err = np.max(np.abs(soe.coefficients - exact.coefficients)) / scale
        assert err < 1e-8

    def test_single_window_records_reason(self):
        sim = Simulator(fractional_system(), (0.5, 24), memory="soe")
        res = sim.march(sine, 0.5)
        assert res.info["memory"] == {
            "mode": "exact", "reason": "single-window",
        }

    def test_uncertified_fit_falls_back_and_records(self):
        """Regression for the certified-bound fallback path."""
        system = fractional_system()
        plan = SoePlan(rtol=1e-14, max_modes=4)  # cannot certify
        exact = Simulator(system, (0.4, 24)).march(sine, 4.0)
        fb = Simulator(system, (0.4, 24), memory=plan).march(sine, 4.0)
        mem = fb.info["memory"]
        assert mem["mode"] == "exact" and mem["fallback"] is True
        assert mem["certified"] is False and mem["bound"] > plan.rtol
        # the fallback really runs the exact tail: bit-identical results
        np.testing.assert_array_equal(fb.coefficients, exact.coefficients)

    def test_no_fallback_plan_raises(self):
        plan = SoePlan(rtol=1e-14, max_modes=4, fallback=False)
        sim = Simulator(fractional_system(), (0.4, 24), memory=plan)
        with pytest.raises(MemoryCompressionError, match="windowed-march"):
            sim.march(sine, 4.0)

    def test_first_order_march_ignores_memory(self):
        from repro.core import DescriptorSystem

        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
        res = Simulator(system, (0.5, 16), memory="soe").march(sine, 2.0)
        assert "memory" not in res.info

    def test_warm_session_reuses_fit(self):
        clear_fit_cache()
        sim = Simulator(fractional_system(), (0.4, 24), memory="soe")
        sim.march(sine, 4.0)
        before = fit_cache_stats()["reuses"]
        sim.march(sine, 4.0)
        assert fit_cache_stats()["reuses"] > before


class TestGlStepper:
    def test_exact_mode_is_bit_identical(self):
        system = fractional_system(alpha=0.5)
        base = simulate_grunwald_letnikov(system, 1.0, 2.0, 400)
        explicit = simulate_grunwald_letnikov(
            system, 1.0, 2.0, 400, memory="exact"
        )
        np.testing.assert_array_equal(
            base.state_values, explicit.state_values
        )
        assert base.info["memory"] == {"mode": "exact"}

    def test_soe_matches_exact(self):
        system = fractional_system(alpha=0.5)
        exact = simulate_grunwald_letnikov(system, 1.0, 2.0, 2000)
        soe = simulate_grunwald_letnikov(
            system, 1.0, 2.0, 2000, memory="soe"
        )
        mem = soe.info["memory"]
        assert mem["mode"] == "soe" and mem["certified"]
        scale = np.max(np.abs(exact.state_values))
        err = np.max(np.abs(soe.state_values - exact.state_values)) / scale
        assert err < 1e-8

    def test_short_run_records_reason(self):
        res = simulate_grunwald_letnikov(
            fractional_system(), 1.0, 1.0, 50, memory="soe"
        )
        assert res.info["memory"]["reason"] == "short-horizon"

    def test_no_fallback_plan_raises(self):
        plan = SoePlan(rtol=1e-15, max_modes=4, fallback=False)
        with pytest.raises(MemoryCompressionError):
            simulate_grunwald_letnikov(
                fractional_system(), 1.0, 2.0, 2000, memory=plan
            )


class TestSpectralMarch:
    def test_soe_matches_exact_within_tolerance(self):
        system = fractional_system(alpha=0.6)
        exact = Simulator(system, (0.4, 20), basis="chebyshev").march(sine, 8.0)
        soe = Simulator(
            system, (0.4, 20), basis="chebyshev", memory="soe"
        ).march(sine, 8.0)
        mem = soe.info["memory"]
        assert mem["mode"] == "soe" and mem["certified"]
        scale = np.max(np.abs(exact.coefficients))
        err = np.max(np.abs(soe.coefficients - exact.coefficients)) / scale
        assert err < 1e-8

    def test_exact_mode_is_bit_identical(self):
        system = fractional_system(alpha=0.6)
        base = Simulator(system, (0.4, 20), basis="legendre").march(sine, 4.0)
        explicit = Simulator(
            system, (0.4, 20), basis="legendre", memory="exact"
        ).march(sine, 4.0)
        np.testing.assert_array_equal(base.coefficients, explicit.coefficients)

    def test_short_horizon_records_reason(self):
        sim = Simulator(
            fractional_system(), (0.5, 20), basis="chebyshev", memory="soe"
        )
        res = sim.march(sine, 1.0)  # 2 windows: nothing to compress
        assert res.info["memory"]["mode"] == "exact"
        assert "reason" in res.info["memory"]


class TestExecutorPlumbing:
    def test_sweep_workers_inherit_memory(self):
        system = fractional_system()
        sim = Simulator(system, (2.0, 64), memory="soe")
        scales = [0.5, 1.0, 2.0]
        inputs = [
            (lambda t, s=s: s * sine(t)) for s in scales
        ]
        sweep = sim.sweep(inputs, jobs=2, parallel="thread")
        singles = [sim.run(u) for u in inputs]
        for k in range(len(scales)):
            np.testing.assert_allclose(
                sweep.coefficients[k], singles[k].coefficients, atol=1e-12
            )

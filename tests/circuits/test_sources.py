"""Tests for waveform sources and their derivatives."""

import numpy as np
import pytest

from repro.circuits import (
    Constant,
    ExpPulse,
    PiecewiseLinear,
    RaisedCosinePulse,
    Ramp,
    Sine,
    SpiceExp,
    SpicePulse,
    SpiceSin,
    Step,
)


def check_derivative_numerically(wf, t, atol):
    """Central-difference check of the analytic derivative."""
    d = wf.derivative()
    eps = 1e-7
    numeric = (wf(t + eps) - wf(t - eps)) / (2 * eps)
    np.testing.assert_allclose(d(t), numeric, atol=atol)


class TestBasicWaveforms:
    def test_constant(self):
        np.testing.assert_array_equal(Constant(3.0)(np.zeros(4)), np.full(4, 3.0))
        np.testing.assert_array_equal(Constant(3.0).derivative()(np.zeros(4)), np.zeros(4))

    def test_step(self):
        s = Step(level=2.0, t0=1.0)
        np.testing.assert_array_equal(s(np.array([0.5, 1.0, 2.0])), [0.0, 2.0, 2.0])

    def test_step_has_no_derivative(self):
        with pytest.raises(NotImplementedError):
            Step().derivative()

    def test_ramp_profile(self):
        r = Ramp(level=2.0, rise=1.0, t0=0.5)
        np.testing.assert_allclose(r(np.array([0.0, 1.0, 2.0])), [0.0, 1.0, 2.0])

    def test_ramp_derivative(self):
        r = Ramp(level=2.0, rise=0.5)
        check_derivative_numerically(r, np.array([0.1, 0.3, 0.7]), atol=1e-6)

    def test_sine_and_derivative(self):
        s = Sine(amplitude=2.0, freq=0.5)
        check_derivative_numerically(s, np.array([0.3, 0.8, 1.7]), atol=1e-5)

    def test_sine_zero_before_t0(self):
        s = Sine(freq=1.0, t0=1.0)
        assert s(np.array([0.5]))[0] == 0.0


class TestPulses:
    def test_exp_pulse_shape(self):
        p = ExpPulse(level=1.0, tau_rise=0.1, tau_fall=1.0)
        t = np.linspace(0.0, 5.0, 100)
        v = p(t)
        assert v[0] == 0.0 and np.max(v) > 0.5 and v[-1] < 0.05

    def test_exp_pulse_derivative(self):
        p = ExpPulse(level=2.0, tau_rise=0.2, tau_fall=1.5)
        check_derivative_numerically(p, np.array([0.1, 0.5, 2.0]), atol=1e-5)

    def test_exp_pulse_rejects_bad_taus(self):
        with pytest.raises(ValueError, match="tau_rise"):
            ExpPulse(tau_rise=1.0, tau_fall=0.5)

    def test_raised_cosine_support(self):
        p = RaisedCosinePulse(level=1.0, width=2.0, t0=1.0)
        t = np.array([0.5, 2.0, 3.5])
        np.testing.assert_allclose(p(t), [0.0, 1.0, 0.0])

    def test_raised_cosine_smooth(self):
        p = RaisedCosinePulse(level=3.0, width=1.0)
        check_derivative_numerically(p, np.array([0.2, 0.5, 0.8]), atol=1e-4)

    def test_raised_cosine_derivative_zero_outside(self):
        d = RaisedCosinePulse(width=1.0).derivative()
        np.testing.assert_array_equal(d(np.array([-0.5, 1.5])), [0.0, 0.0])


class TestPWL:
    def test_interpolation(self):
        p = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        np.testing.assert_allclose(p(np.array([0.5, 1.5])), [1.0, 1.0])

    def test_constant_extrapolation(self):
        p = PiecewiseLinear([0.0, 1.0], [1.0, 3.0])
        np.testing.assert_allclose(p(np.array([-1.0, 2.0])), [1.0, 3.0])

    def test_derivative_slopes(self):
        p = PiecewiseLinear([0.0, 1.0, 3.0], [0.0, 2.0, 0.0])
        d = p.derivative()
        np.testing.assert_allclose(d(np.array([0.5, 2.0])), [2.0, -1.0])

    def test_derivative_zero_outside(self):
        p = PiecewiseLinear([0.0, 1.0], [0.0, 1.0])
        d = p.derivative()
        np.testing.assert_allclose(d(np.array([-0.5, 1.5])), [0.0, 0.0])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 0.0, 1.0], [0.0, 1.0, 2.0])


class TestSpiceSin:
    def test_basic_sine(self):
        wf = SpiceSin(0.0, 2.0, 1.0)
        t = np.array([0.0, 0.25, 0.5])
        np.testing.assert_allclose(wf(t), [0.0, 2.0, 0.0], atol=1e-12)

    def test_offset_and_delay_hold(self):
        wf = SpiceSin(1.0, 2.0, 1.0, td=0.5, phase=90.0)
        # before the delay: vo + va * sin(phase)
        np.testing.assert_allclose(wf(np.array([0.0, 0.4])), [3.0, 3.0])
        # at the delay the same value continues the waveform
        np.testing.assert_allclose(wf(np.array([0.5])), [3.0])

    def test_damping(self):
        wf = SpiceSin(0.0, 1.0, 1.0, theta=2.0)
        t = np.array([1.25])  # sin peak of the second cycle
        expected = np.exp(-2.0 * 1.25) * np.sin(2 * np.pi * 1.25)
        np.testing.assert_allclose(wf(t), [expected], rtol=1e-12)

    def test_derivative_numeric(self):
        wf = SpiceSin(0.5, 2.0, 3.0, td=0.1, theta=1.5, phase=30.0)
        check_derivative_numerically(wf, np.array([0.3, 0.7, 1.1]), 1e-4)

    def test_derivative_zero_before_delay(self):
        d = SpiceSin(0.0, 1.0, 1.0, td=1.0).derivative()
        np.testing.assert_allclose(d(np.array([0.5])), [0.0])


class TestSpicePulse:
    def test_trapezoid_shape(self):
        wf = SpicePulse(0.0, 1.0, td=1.0, tr=1.0, tf=2.0, pw=1.0)
        t = np.array([0.5, 1.5, 2.5, 4.0, 10.0])
        np.testing.assert_allclose(wf(t), [0.0, 0.5, 1.0, 0.5, 0.0])

    def test_periodicity(self):
        wf = SpicePulse(0.0, 1.0, tr=0.1, tf=0.1, pw=0.3, per=1.0)
        t = np.array([0.2, 1.2, 7.2])
        np.testing.assert_allclose(wf(t), wf(t - np.floor(t)), atol=1e-12)

    def test_ideal_edges_jump(self):
        wf = SpicePulse(0.0, 1.0, td=1.0, pw=2.0)
        np.testing.assert_allclose(wf(np.array([0.99, 1.0, 2.9, 3.1])),
                                   [0.0, 1.0, 1.0, 0.0])

    def test_ideal_edges_have_no_derivative(self):
        with pytest.raises(NotImplementedError, match="ideal-edge"):
            SpicePulse(0.0, 1.0).derivative()

    def test_derivative_numeric(self):
        wf = SpicePulse(0.0, 2.0, td=0.1, tr=0.5, tf=0.25, pw=0.5, per=3.0)
        check_derivative_numerically(wf, np.array([0.3, 0.8, 1.2, 2.0]), 1e-4)

    def test_default_pulse_never_returns(self):
        wf = SpicePulse(0.0, 1.0, tr=0.1)
        np.testing.assert_allclose(wf(np.array([100.0])), [1.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            SpicePulse(0.0, 1.0, tr=-1.0)
        with pytest.raises(ValueError, match="cover"):
            SpicePulse(0.0, 1.0, tr=0.5, tf=0.5, pw=0.5, per=1.0)


class TestSpiceExp:
    def test_rise_and_fall(self):
        wf = SpiceExp(0.0, 1.0, td1=0.0, tau1=1.0, td2=10.0, tau2=2.0)
        np.testing.assert_allclose(wf(np.array([1.0])), [1 - np.exp(-1)])
        # far past td2 the second exponential cancels the first
        np.testing.assert_allclose(wf(np.array([100.0])), [0.0], atol=1e-10)

    def test_holds_before_delay(self):
        wf = SpiceExp(0.5, 1.5, td1=1.0, tau1=0.5)
        np.testing.assert_allclose(wf(np.array([0.0, 0.99])), [0.5, 0.5])

    def test_defaults(self):
        wf = SpiceExp(0.0, 1.0, td1=0.5, tau1=0.25)
        assert wf.td2 == pytest.approx(0.75)
        assert wf.tau2 == pytest.approx(0.25)

    def test_derivative_numeric(self):
        wf = SpiceExp(0.0, 2.0, td1=0.1, tau1=0.4, td2=1.0, tau2=0.3)
        check_derivative_numerically(wf, np.array([0.3, 0.8, 1.5]), 1e-4)

    def test_validation(self):
        with pytest.raises(ValueError, match="precede"):
            SpiceExp(0.0, 1.0, td1=1.0, tau1=0.5, td2=0.5)


class TestAlgebra:
    def test_sum(self):
        total = Constant(1.0) + Sine(amplitude=1.0, freq=1.0)
        t = np.array([0.25])
        np.testing.assert_allclose(total(t), 1.0 + np.sin(np.pi / 2.0))

    def test_sum_derivative(self):
        total = Ramp(level=1.0, rise=1.0) + Constant(5.0)
        np.testing.assert_allclose(total.derivative()(np.array([0.5])), [1.0])

    def test_scaling(self):
        wf = 3.0 * Ramp(level=1.0, rise=1.0)
        np.testing.assert_allclose(wf(np.array([0.5])), [1.5])
        np.testing.assert_allclose(wf.derivative()(np.array([0.5])), [3.0])

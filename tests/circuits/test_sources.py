"""Tests for waveform sources and their derivatives."""

import numpy as np
import pytest

from repro.circuits import (
    Constant,
    ExpPulse,
    PiecewiseLinear,
    RaisedCosinePulse,
    Ramp,
    Sine,
    Step,
)


def check_derivative_numerically(wf, t, atol):
    """Central-difference check of the analytic derivative."""
    d = wf.derivative()
    eps = 1e-7
    numeric = (wf(t + eps) - wf(t - eps)) / (2 * eps)
    np.testing.assert_allclose(d(t), numeric, atol=atol)


class TestBasicWaveforms:
    def test_constant(self):
        np.testing.assert_array_equal(Constant(3.0)(np.zeros(4)), np.full(4, 3.0))
        np.testing.assert_array_equal(Constant(3.0).derivative()(np.zeros(4)), np.zeros(4))

    def test_step(self):
        s = Step(level=2.0, t0=1.0)
        np.testing.assert_array_equal(s(np.array([0.5, 1.0, 2.0])), [0.0, 2.0, 2.0])

    def test_step_has_no_derivative(self):
        with pytest.raises(NotImplementedError):
            Step().derivative()

    def test_ramp_profile(self):
        r = Ramp(level=2.0, rise=1.0, t0=0.5)
        np.testing.assert_allclose(r(np.array([0.0, 1.0, 2.0])), [0.0, 1.0, 2.0])

    def test_ramp_derivative(self):
        r = Ramp(level=2.0, rise=0.5)
        check_derivative_numerically(r, np.array([0.1, 0.3, 0.7]), atol=1e-6)

    def test_sine_and_derivative(self):
        s = Sine(amplitude=2.0, freq=0.5)
        check_derivative_numerically(s, np.array([0.3, 0.8, 1.7]), atol=1e-5)

    def test_sine_zero_before_t0(self):
        s = Sine(freq=1.0, t0=1.0)
        assert s(np.array([0.5]))[0] == 0.0


class TestPulses:
    def test_exp_pulse_shape(self):
        p = ExpPulse(level=1.0, tau_rise=0.1, tau_fall=1.0)
        t = np.linspace(0.0, 5.0, 100)
        v = p(t)
        assert v[0] == 0.0 and np.max(v) > 0.5 and v[-1] < 0.05

    def test_exp_pulse_derivative(self):
        p = ExpPulse(level=2.0, tau_rise=0.2, tau_fall=1.5)
        check_derivative_numerically(p, np.array([0.1, 0.5, 2.0]), atol=1e-5)

    def test_exp_pulse_rejects_bad_taus(self):
        with pytest.raises(ValueError, match="tau_rise"):
            ExpPulse(tau_rise=1.0, tau_fall=0.5)

    def test_raised_cosine_support(self):
        p = RaisedCosinePulse(level=1.0, width=2.0, t0=1.0)
        t = np.array([0.5, 2.0, 3.5])
        np.testing.assert_allclose(p(t), [0.0, 1.0, 0.0])

    def test_raised_cosine_smooth(self):
        p = RaisedCosinePulse(level=3.0, width=1.0)
        check_derivative_numerically(p, np.array([0.2, 0.5, 0.8]), atol=1e-4)

    def test_raised_cosine_derivative_zero_outside(self):
        d = RaisedCosinePulse(width=1.0).derivative()
        np.testing.assert_array_equal(d(np.array([-0.5, 1.5])), [0.0, 0.0])


class TestPWL:
    def test_interpolation(self):
        p = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        np.testing.assert_allclose(p(np.array([0.5, 1.5])), [1.0, 1.0])

    def test_constant_extrapolation(self):
        p = PiecewiseLinear([0.0, 1.0], [1.0, 3.0])
        np.testing.assert_allclose(p(np.array([-1.0, 2.0])), [1.0, 3.0])

    def test_derivative_slopes(self):
        p = PiecewiseLinear([0.0, 1.0, 3.0], [0.0, 2.0, 0.0])
        d = p.derivative()
        np.testing.assert_allclose(d(np.array([0.5, 2.0])), [2.0, -1.0])

    def test_derivative_zero_outside(self):
        p = PiecewiseLinear([0.0, 1.0], [0.0, 1.0])
        d = p.derivative()
        np.testing.assert_allclose(d(np.array([-0.5, 1.5])), [0.0, 0.0])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 0.0, 1.0], [0.0, 1.0, 2.0])


class TestAlgebra:
    def test_sum(self):
        total = Constant(1.0) + Sine(amplitude=1.0, freq=1.0)
        t = np.array([0.25])
        np.testing.assert_allclose(total(t), 1.0 + np.sin(np.pi / 2.0))

    def test_sum_derivative(self):
        total = Ramp(level=1.0, rise=1.0) + Constant(5.0)
        np.testing.assert_allclose(total.derivative()(np.array([0.5])), [1.0])

    def test_scaling(self):
        wf = 3.0 * Ramp(level=1.0, rise=1.0)
        np.testing.assert_allclose(wf(np.array([0.5])), [1.5])
        np.testing.assert_allclose(wf.derivative()(np.array([0.5])), [3.0])

"""Tests for the fractional transmission-line workload (section V-A)."""

import numpy as np
import pytest

from repro.circuits import fractional_line_model, fractional_line_netlist
from repro.core import FractionalDescriptorSystem, simulate_opm


class TestModelShape:
    def test_paper_dimensions(self):
        model = fractional_line_model()
        assert model.n_states == 7  # x in R^7
        assert model.n_inputs == 2  # u in R^2
        assert model.n_outputs == 2  # y in R^2
        assert model.alpha == 0.5  # d^{1/2}/dt^{1/2}

    def test_netlist_structure(self):
        nl = fractional_line_netlist()
        s = nl.summary()
        # 6 series + 2 termination resistors
        assert s["cpes"] == 7 and s["resistors"] == 8 and s["channels"] == 2

    def test_unterminated_option(self):
        nl = fractional_line_netlist(r_termination=None)
        assert nl.summary()["resistors"] == 6

    def test_parameterised_sections(self):
        model = fractional_line_model(n_sections=11)
        assert model.n_states == 11

    def test_matrices_structure(self):
        import scipy.sparse as sp

        model = fractional_line_model()
        E = model.E.toarray() if sp.issparse(model.E) else model.E
        A = model.A.toarray() if sp.issparse(model.A) else model.A
        # E diagonal (CPE pseudo-capacitances), A tridiagonal Laplacian
        np.testing.assert_allclose(E, np.diag(np.diag(E)))
        assert np.count_nonzero(np.triu(A, 2)) == 0
        # Laplacian rows of interior (unterminated) nodes sum to zero
        np.testing.assert_allclose(A[3].sum(), 0.0, atol=1e-12)

    def test_rejects_single_section(self):
        with pytest.raises(ValueError):
            fractional_line_model(n_sections=1)


class TestBehaviour:
    def test_diffusive_propagation(self):
        # drive port 1; the near-end responds first and strongest
        model = fractional_line_model()
        u = lambda t: np.vstack([np.ones_like(t), np.zeros_like(t)])
        res = simulate_opm(model, u, (2.7e-9, 256))
        y = res.output_coefficients
        near, far = y[0], y[1]
        assert np.max(np.abs(near)) > np.max(np.abs(far))
        assert np.max(np.abs(near)) > 0.0

    def test_symmetry_port_swap(self):
        # the line is symmetric: driving port 2 mirrors driving port 1
        model = fractional_line_model()
        u1 = lambda t: np.vstack([np.ones_like(t), np.zeros_like(t)])
        u2 = lambda t: np.vstack([np.zeros_like(t), np.ones_like(t)])
        r1 = simulate_opm(model, u1, (2.7e-9, 128))
        r2 = simulate_opm(model, u2, (2.7e-9, 128))
        np.testing.assert_allclose(
            r1.output_coefficients[0], r2.output_coefficients[1], atol=1e-12
        )
        np.testing.assert_allclose(
            r1.output_coefficients[1], r2.output_coefficients[0], atol=1e-12
        )

    def test_half_order_memory_tail(self):
        # fractional line: after a pulse, relaxation is algebraic, much
        # slower than any RC exponential fit to the early decay
        from repro.circuits import RaisedCosinePulse

        model = fractional_line_model()
        pulse = RaisedCosinePulse(level=1.0, width=0.5e-9)
        u = lambda t: np.vstack([pulse(t), np.zeros_like(t)])
        res = simulate_opm(model, u, (2.7e-9, 512))
        v = res.output_coefficients[0]
        peak = np.max(np.abs(v))
        late = np.abs(v[-1])
        assert late > 0.02 * peak  # heavy tail persists

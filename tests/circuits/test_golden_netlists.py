"""Golden-netlist suite: one ``.cir`` per paper workload.

Each deck in ``examples/`` is parsed, assembled, and simulated through
the netlist front door, then the *same* circuit is rebuilt
programmatically card by card.  Assembly must produce identical
matrices and the transient must be **bit-identical** -- the SPICE path
is a front end, not an approximation.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import Simulator
from repro.circuits import (
    Netlist,
    PiecewiseLinear,
    SpiceExp,
    SpicePulse,
    SpiceSin,
    assemble_mna,
)
from repro.engine.netlist_session import simulate_netlist

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def rc_lowpass_twin() -> Netlist:
    nl = Netlist("rc_lowpass")
    nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
    nl.add_resistor("R1", "in", "out", 1e3)
    nl.add_capacitor("C1", "out", "0", 1e-6)
    return nl


def rlc_ladder_twin() -> Netlist:
    nl = Netlist("rlc_ladder")
    previous = "0"
    for k in range(1, 4):
        nl.add_resistor(f"R{k}", previous, f"m{k}", 1.0)
        nl.add_inductor(f"L{k}", f"m{k}", f"v{k}", 1e-3)
        nl.add_capacitor(f"C{k}", f"v{k}", "0", 1e-6)
        previous = f"v{k}"
    nl.add_current_source(
        "Idrive", "0", "v1",
        SpicePulse(0.0, 1e-3, td=1e-5, tr=2e-5, tf=2e-5, pw=2e-4, per=5e-4),
    )
    return nl


def cpe_cell_twin() -> Netlist:
    nl = Netlist("cpe_cell")
    nl.add_current_source(
        "I1", "0", "a", SpiceExp(0.0, 1e-3, 0.0, 1e-3, 5e-3, 2e-3)
    )
    nl.add_resistor("R1", "a", "0", 100.0)
    nl.add_cpe("P1", "a", "0", 1e-6, 0.5)
    return nl


def vccs_amp_twin() -> Netlist:
    nl = Netlist("vccs_amp")
    nl.add_current_source(
        "I1", "0", "in",
        PiecewiseLinear([0.0, 1e-3, 3e-3, 4e-3], [0.0, 1.0, 1.0, 0.0]),
    )
    nl.add_resistor("R1", "in", "0", 1e3)
    nl.add_capacitor("C1", "in", "0", 1e-6)
    nl.add_vccs("G1", "0", "out", "in", "0", 2e-3)
    nl.add_resistor("R2", "out", "0", 1e3)
    nl.add_capacitor("C2", "out", "0", 1e-6)
    return nl


def coupled_inductors_twin() -> Netlist:
    nl = Netlist("coupled_inductors")
    nl.add_voltage_source("V1", "p", "0", SpiceSin(0.0, 1.0, 1e3))
    nl.add_resistor("R1", "p", "a", 10.0)
    nl.add_inductor("L1", "a", "0", 1e-3)
    nl.add_inductor("L2", "b", "0", 1e-3)
    nl.add_mutual("K1", "L1", "L2", 0.9)
    nl.add_resistor("R2", "b", "0", 50.0)
    return nl


WORKLOADS = {
    "rc_lowpass": rc_lowpass_twin,
    "rlc_ladder": rlc_ladder_twin,
    "cpe_cell": cpe_cell_twin,
    "vccs_amp": vccs_amp_twin,
    "coupled_inductors": coupled_inductors_twin,
}


def _dense(matrix) -> np.ndarray:
    return matrix.toarray() if hasattr(matrix, "toarray") else np.asarray(matrix)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestGoldenNetlists:
    def _load(self, name):
        path = EXAMPLES / f"{name}.cir"
        parsed = Netlist.from_spice_file(path)
        twin = WORKLOADS[name]()
        return path, parsed, twin

    def test_deck_exists_with_tran_card(self, name):
        path, parsed, _ = self._load(name)
        assert path.is_file()
        assert parsed.analysis.tran is not None

    def test_structure_matches_programmatic(self, name):
        _, parsed, twin = self._load(name)
        assert parsed.summary() == twin.summary()
        assert parsed.nodes == twin.nodes

    def test_assembly_bit_identical(self, name):
        _, parsed, twin = self._load(name)
        parsed_sys = assemble_mna(parsed, outputs=parsed.nodes)
        twin_sys = assemble_mna(twin, outputs=twin.nodes)
        assert type(parsed_sys) is type(twin_sys)
        np.testing.assert_array_equal(_dense(parsed_sys.E), _dense(twin_sys.E))
        np.testing.assert_array_equal(_dense(parsed_sys.A), _dense(twin_sys.A))
        np.testing.assert_array_equal(_dense(parsed_sys.B), _dense(twin_sys.B))

    def test_waveforms_bit_identical(self, name):
        _, parsed, twin = self._load(name)
        t = np.linspace(0.0, parsed.analysis.tran.tstop, 257)
        np.testing.assert_array_equal(
            parsed.input_function()(t), twin.input_function()(t)
        )

    def test_transient_bit_identical(self, name):
        """from_spice -> assembly -> run equals the programmatic path."""
        path, parsed, twin = self._load(name)
        card = parsed.analysis.tran
        front_door = simulate_netlist(path)
        twin_sys = assemble_mna(twin, outputs=twin.nodes)
        sim = Simulator(twin_sys, (card.tstop, card.steps))
        reference = sim.run(twin.input_function())
        np.testing.assert_array_equal(
            front_door.tran.coefficients, reference.coefficients
        )
        np.testing.assert_array_equal(
            front_door.tran.input_coefficients, reference.input_coefficients
        )


def test_rc_lowpass_ac_sweep_runs():
    """The rc deck also carries an .ac card; the sweep must be physical."""
    run = simulate_netlist(EXAMPLES / "rc_lowpass.cir")
    assert run.ac is not None
    mag = run.ac.magnitude()[:, 1]  # v(out)
    assert mag[0] == pytest.approx(1.0, abs=0.05)   # passband ~ unity
    assert mag[-1] < 0.05                            # stopband rolled off
    corner = 1.0 / (2.0 * np.pi * 1e3 * 1e-6)
    k = int(np.argmin(np.abs(run.ac.frequencies - corner)))
    assert mag[k] == pytest.approx(1.0 / np.sqrt(2.0), abs=0.12)


def test_golden_inventory_matches_examples_dir():
    """Every golden workload ships a deck next to the examples."""
    for name in WORKLOADS:
        assert (EXAMPLES / f"{name}.cir").is_file(), name

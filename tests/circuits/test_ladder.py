"""Tests for ladder generators."""

import numpy as np
import pytest

from repro.circuits import Constant, assemble_mna, rc_ladder_netlist, rlc_ladder_netlist
from repro.core import simulate_opm


class TestRCLadder:
    def test_structure(self):
        nl = rc_ladder_netlist(6)
        s = nl.summary()
        assert s["resistors"] == 6 and s["capacitors"] == 6 and s["nodes"] == 6

    def test_dc_steady_state(self):
        # current drive I into first node; at DC all current flows
        # through the chain of resistors to ground via R1 only (shunt
        # caps block): v1 = I * R1
        nl = rc_ladder_netlist(4, r=2.0, c=1e-3, drive_waveform=Constant(1.0))
        system = assemble_mna(nl, outputs=["v1", "v4"])
        res = simulate_opm(system, nl.input_function(), (60.0, 3000))
        y_final = res.output_coefficients[:, -1]
        assert y_final[0] == pytest.approx(2.0, rel=1e-2)
        assert y_final[1] == pytest.approx(2.0, rel=1e-2)  # no current past v1

    def test_scales_with_n(self):
        for n in (1, 10, 50):
            nl = rc_ladder_netlist(n)
            assert assemble_mna(nl).n_states == n

    def test_elmore_delay_ordering(self):
        # deeper nodes respond later: v1 reaches half-value before v5
        nl = rc_ladder_netlist(5, r=1.0, c=1.0, drive_waveform=Constant(1.0))
        system = assemble_mna(nl, outputs=["v1", "v5"])
        res = simulate_opm(system, nl.input_function(), (100.0, 2000))
        y = res.output_coefficients
        final = y[:, -1]
        t_half_1 = np.argmax(y[0] > 0.5 * final[0])
        t_half_5 = np.argmax(y[1] > 0.5 * final[1])
        assert t_half_5 > t_half_1


class TestRLCLadder:
    def test_structure(self):
        nl = rlc_ladder_netlist(3)
        s = nl.summary()
        assert s["inductors"] == 3 and s["capacitors"] == 3 and s["nodes"] == 6

    def test_mna_state_count(self):
        nl = rlc_ladder_netlist(4)
        assert assemble_mna(nl).n_states == 8 + 4  # nodes + inductor currents

    def test_underdamped_ringing(self):
        # small R, large L/C ratio: step response must overshoot
        nl = rlc_ladder_netlist(1, r=0.1, l=1.0, c=1.0, drive_waveform=Constant(1.0))
        system = assemble_mna(nl, outputs=["v1"])
        res = simulate_opm(system, nl.input_function(), (20.0, 4000))
        y = res.output_coefficients[0]
        final = y[-1]
        assert np.max(y) > 1.2 * final

"""Tests for nodal-analysis second-order assembly (paper section V-B)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits import Constant, Netlist, Ramp, assemble_mna, assemble_na, rlc_ladder_netlist
from repro.core import MultiTermSystem, SecondOrderSystem, simulate_opm
from repro.errors import NetlistError


def dense(x):
    return x.toarray() if sp.issparse(x) else np.asarray(x)


class TestAssembly:
    def test_gamma_from_inductor(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "n", Ramp(1.0, rise=1.0))
        nl.add_inductor("L1", "n", "0", 2.0)
        nl.add_capacitor("C1", "n", "0", 3.0)
        nl.add_resistor("R1", "n", "0", 4.0)
        system = assemble_na(nl)
        assert isinstance(system, SecondOrderSystem)
        np.testing.assert_allclose(dense(system.M), [[3.0]])
        np.testing.assert_allclose(dense(system.Cd), [[0.25]])
        np.testing.assert_allclose(dense(system.K), [[0.5]])  # 1/L

    def test_na_size_is_node_count(self):
        nl = rlc_ladder_netlist(5, drive_waveform=Ramp(1.0, rise=0.01))
        na = assemble_na(nl)
        mna = assemble_mna(nl)
        assert na.n_states == nl.n_nodes
        assert mna.n_states == nl.n_nodes + len(nl.inductors)
        assert na.n_states < mna.n_states  # the paper's 75K < 110K

    def test_floating_inductor_gamma_pattern(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Ramp(1.0, rise=1.0))
        nl.add_inductor("L1", "a", "b", 0.5)
        nl.add_resistor("Ra", "a", "0", 1.0)
        nl.add_resistor("Rb", "b", "0", 1.0)
        system = assemble_na(nl)
        np.testing.assert_allclose(dense(system.K), [[2.0, -2.0], [-2.0, 2.0]])

    def test_cpe_adds_shifted_order(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Ramp(1.0, rise=1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_capacitor("C1", "a", "0", 1.0)
        nl.add_inductor("L1", "a", "0", 1.0)
        nl.add_cpe("P1", "a", "0", 1.0, 0.5)
        system = assemble_na(nl)
        assert isinstance(system, MultiTermSystem)
        assert [o for o, _ in system.terms] == [2.0, 1.5, 1.0, 0.0]

    def test_rejects_voltage_sources(self):
        nl = Netlist()
        nl.add_voltage_source("V1", "a", "0", Constant(1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="voltage sources"):
            assemble_na(nl)

    def test_rejects_empty(self):
        with pytest.raises(NetlistError):
            assemble_na(Netlist())


class TestEquivalenceWithMNA:
    def test_rlc_ladder_waveform_match(self):
        nl = rlc_ladder_netlist(
            4, r=1.0, l=1e-4, c=1e-3, drive_waveform=Ramp(1.0, rise=5e-3)
        )
        mna = assemble_mna(nl, outputs=["v4"])
        na = assemble_na(nl, outputs=["v4"])
        res_mna = simulate_opm(mna, nl.input_function(), (0.05, 1500))
        res_na = simulate_opm(na, nl.input_function(derivative=True), (0.05, 1500))
        t = res_mna.grid.midpoints
        np.testing.assert_allclose(
            res_mna.outputs(t)[0], res_na.outputs(t)[0], atol=2e-6
        )

    def test_na_refinement_converges_to_mna(self):
        nl = rlc_ladder_netlist(
            3, r=1.0, l=1e-4, c=1e-3, drive_waveform=Ramp(1.0, rise=5e-3)
        )
        mna = assemble_mna(nl, outputs=["v3"])
        na = assemble_na(nl, outputs=["v3"])
        ref = simulate_opm(mna, nl.input_function(), (0.05, 4000))
        t = np.linspace(0.003, 0.047, 15)
        ref_y = ref.outputs(t)[0]
        errs = []
        for m in (500, 2000):
            res = simulate_opm(na, nl.input_function(derivative=True), (0.05, m))
            errs.append(np.max(np.abs(res.outputs(t)[0] - ref_y)))
        assert errs[1] < errs[0]

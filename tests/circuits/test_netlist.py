"""Tests for the netlist container and SPICE parser."""

import numpy as np
import pytest

from repro.circuits import (
    Constant,
    Netlist,
    PiecewiseLinear,
    Ramp,
    SpiceExp,
    SpicePulse,
    SpiceSin,
)
from repro.circuits.netlist import parse_source_spec, parse_value
from repro.errors import NetlistError


class TestNodeBookkeeping:
    def test_ground_aliases(self):
        for name in ("0", "gnd", "GND", "ground"):
            assert Netlist.is_ground(name)

    @pytest.mark.parametrize("name", ["Gnd", "GROUND", "Ground", "gND"])
    def test_ground_aliases_case_insensitive(self, name):
        """Regression: mixed-case ground must not register as a live node."""
        assert Netlist.is_ground(name)
        nl = Netlist()
        nl.add_resistor("R1", "a", name, 1.0)
        assert nl.nodes == ["a"]

    def test_mixed_case_ground_assembles_same_system(self):
        from repro.circuits import assemble_mna

        reference = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u")
        cased = Netlist.from_spice("I1 Gnd a 1m\nR1 a GROUND 1k\nC1 a Ground 1u")
        ref_sys = assemble_mna(reference)
        cased_sys = assemble_mna(cased)
        np.testing.assert_array_equal(ref_sys.A, cased_sys.A)
        np.testing.assert_array_equal(ref_sys.E, cased_sys.E)
        np.testing.assert_array_equal(ref_sys.B, cased_sys.B)

    def test_node_registration_order(self):
        nl = Netlist()
        nl.add_resistor("R1", "b", "a", 1.0)
        nl.add_resistor("R2", "a", "c", 1.0)
        assert nl.nodes == ["b", "a", "c"]
        assert nl.node_index("a") == 1

    def test_ground_not_registered(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        assert nl.nodes == ["a"] and nl.n_nodes == 1

    def test_node_index_rejects_ground(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="ground"):
            nl.node_index("0")

    def test_node_index_rejects_unknown(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="unknown"):
            nl.node_index("zz")


class TestElementManagement:
    def test_duplicate_names_rejected(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="duplicate"):
            nl.add_capacitor("R1", "a", "0", 1.0)

    def test_typed_queries(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_capacitor("C1", "a", "0", 1.0)
        nl.add_inductor("L1", "a", "b", 1.0)
        nl.add_cpe("P1", "b", "0", 1.0, 0.5)
        assert len(nl.resistors) == 1 and len(nl.capacitors) == 1
        assert len(nl.inductors) == 1 and len(nl.cpes) == 1

    def test_summary_counts(self):
        nl = Netlist("t")
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        s = nl.summary()
        assert s["resistors"] == 1 and s["current_sources"] == 1 and s["channels"] == 1


class TestChannels:
    def test_auto_allocation(self):
        nl = Netlist()
        ch0 = nl.add_current_source("I1", "0", "a", Constant(1.0))
        ch1 = nl.add_current_source("I2", "0", "a2", Constant(2.0))
        assert (ch0, ch1) == (0, 1) and nl.n_channels == 2

    def test_shared_channel(self):
        nl = Netlist()
        ch = nl.add_current_source("I1", "0", "a", Constant(1.0))
        same = nl.add_current_source("I2", "0", "b", channel=ch, scale=2.0)
        assert same == ch and nl.n_channels == 1

    def test_conflicting_waveform_rejected(self):
        nl = Netlist()
        ch = nl.add_current_source("I1", "0", "a", Constant(1.0))
        with pytest.raises(NetlistError, match="already has waveform"):
            nl.add_current_source("I2", "0", "b", Constant(2.0), channel=ch)

    def test_input_function_stacks_channels(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(2.0))
        nl.add_current_source("I2", "0", "b", Ramp(level=1.0, rise=1.0))
        u = nl.input_function()
        values = u(np.array([0.5]))
        np.testing.assert_allclose(values, [[2.0], [0.5]])

    def test_input_function_derivative(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Ramp(level=2.0, rise=1.0))
        du = nl.input_function(derivative=True)
        np.testing.assert_allclose(du(np.array([0.5])), [[2.0]])

    def test_input_function_missing_waveform(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", channel=0)
        with pytest.raises(NetlistError, match="no attached waveform"):
            nl.input_function()

    def test_set_channel_waveform(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", channel=0)
        nl.set_channel_waveform(0, Constant(5.0))
        np.testing.assert_allclose(nl.input_function()(np.array([0.0])), [[5.0]])

    def test_set_channel_waveform_range_check(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", channel=0)
        with pytest.raises(NetlistError, match="out of range"):
            nl.set_channel_waveform(3, Constant(1.0))


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("1", 1.0),
            ("1.5", 1.5),
            ("-2", -2.0),
            ("1e-9", 1e-9),
            ("1k", 1e3),
            ("3meg", 3e6),
            ("2m", 2e-3),
            ("5u", 5e-6),
            ("7n", 7e-9),
            ("4p", 4e-12),
            ("1f", 1e-15),
            ("2G", 2e9),
            ("1T", 1e12),
            # regression: trailing decimal point is valid SPICE
            ("3.", 3.0),
            (".5", 0.5),
            ("-2.e3", -2000.0),
            # regression: trailing unit letters are ignored
            ("1kOhm", 1e3),
            ("10uF", 1e-5),
            ("100nH", 1e-7),
            ("2.5V", 2.5),
            ("1megHz", 1e6),
            ("1x", 1.0),
            # the mil suffix (1/1000 inch)
            ("1mil", 25.4e-6),
            ("5MIL", 5 * 25.4e-6),
        ],
    )
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_mil_is_not_milli(self):
        """``mil`` must win over the ``m`` suffix with trailing 'il'."""
        assert parse_value("1mil") != pytest.approx(1e-3)

    @pytest.mark.parametrize("bad", ["", "abc", "--1", "1 k", "1k5", "."])
    def test_rejects_garbage(self, bad):
        with pytest.raises(NetlistError):
            parse_value(bad)


class TestSpiceParser:
    def test_full_example(self):
        nl = Netlist.from_spice(
            """
            * rc with sources
            I1 0 n1 1m
            R1 n1 n2 1k
            C1 n2 0 1u
            L1 n2 n3 1n
            V1 n3 0 1.0
            P1 n1 0 1u 0.5
            .end
            """
        )
        s = nl.summary()
        assert s == {
            "nodes": 3,
            "resistors": 1,
            "capacitors": 1,
            "inductors": 1,
            "cpes": 1,
            "couplings": 0,
            "current_sources": 1,
            "voltage_sources": 1,
            "channels": 2,
        }

    def test_sources_get_constant_waveforms(self):
        nl = Netlist.from_spice("I1 0 a 2m\nR1 a 0 1k")
        u = nl.input_function()
        np.testing.assert_allclose(u(np.array([0.0])), [[2e-3]])

    def test_stops_at_end_card(self):
        nl = Netlist.from_spice("R1 a 0 1\n.end\nR2 b 0 1")
        assert len(nl.resistors) == 1

    def test_ignores_comments_and_dot_cards(self):
        nl = Netlist.from_spice("* hi\n.tran 1n 10n\nR1 a 0 1")
        assert len(nl.resistors) == 1

    def test_rejects_wrong_field_count(self):
        with pytest.raises(NetlistError, match="expected 4 fields"):
            Netlist.from_spice("R1 a 0")

    def test_rejects_cpe_wrong_fields(self):
        with pytest.raises(NetlistError, match="expected 5 fields"):
            Netlist.from_spice("P1 a 0 1u")

    def test_rejects_unknown_card(self):
        # D (diode) is outside the supported linear subset; X is a real
        # card now, routed to the hierarchy expander instead
        with pytest.raises(NetlistError, match="unsupported"):
            Netlist.from_spice("D1 a b dmodel")

    def test_rejects_empty(self):
        with pytest.raises(NetlistError, match="no elements"):
            Netlist.from_spice("* nothing\n")

    def test_from_spice_file(self, tmp_path):
        path = tmp_path / "deck.cir"
        path.write_text("I1 0 a 1m\nR1 a 0 1k\n")
        nl = Netlist.from_spice_file(path)
        assert nl.title == "deck" and len(nl.resistors) == 1

    def test_from_spice_file_missing(self, tmp_path):
        with pytest.raises(NetlistError, match="cannot read"):
            Netlist.from_spice_file(tmp_path / "missing.cir")


class TestLineContinuationAndComments:
    """Regression: ``+`` continuations and ``;`` / ``$`` inline comments."""

    def test_plus_continuation_joins_cards(self):
        nl = Netlist.from_spice(
            "I1 0 n1 PULSE(0 1m 0 1u\n+ 1u 2m 4m)\nR1 n1 0 1k\n"
        )
        (source,) = nl.current_sources
        wf = nl.input_function()
        np.testing.assert_allclose(wf(np.array([1e-3]))[0], [1e-3])

    def test_continuation_without_card_rejected(self):
        with pytest.raises(NetlistError, match="continuation"):
            Netlist.from_spice("+ R1 a 0 1k\n")

    def test_inline_semicolon_comment_stripped(self):
        nl = Netlist.from_spice("R1 a 0 1k ; load resistor\nI1 0 a 1m\n")
        assert nl.resistors[0].resistance == pytest.approx(1e3)
        assert nl.nodes == ["a"]

    def test_inline_dollar_comment_stripped(self):
        """A comment token must never parse as a node or value field."""
        nl = Netlist.from_spice("C1 a 0 1u $ decoupling cap\nI1 0 a 1m\n")
        assert nl.capacitors[0].capacitance == pytest.approx(1e-6)
        assert nl.nodes == ["a"]

    def test_dollar_inside_token_is_not_a_comment(self):
        """Hierarchical '$' node names survive comment stripping."""
        nl = Netlist.from_spice("R1 n$1 0 1k\nI1 0 n$1 1m\n")
        assert nl.nodes == ["n$1"]
        assert nl.resistors[0].resistance == pytest.approx(1e3)

    def test_commented_continuation(self):
        nl = Netlist.from_spice(
            "I1 0 n1 PWL(0 0 ; breakpoints follow\n+ 1m 2) ; done\nR1 n1 0 1\n"
        )
        u = nl.input_function()
        np.testing.assert_allclose(u(np.array([0.5e-3]))[0], [1.0])

    def test_comment_only_lines_between_continuations(self):
        nl = Netlist.from_spice(
            "I1 0 n1 SIN(0 1\n* interior comment\n+ 1k)\nR1 n1 0 1\n"
        )
        u = nl.input_function()
        np.testing.assert_allclose(u(np.array([0.25e-3]))[0], [1.0])


class TestSourceSpecs:
    def test_bare_dc_value(self):
        wf, ac = parse_source_spec("2m", "I1")
        assert isinstance(wf, Constant) and wf.level == pytest.approx(2e-3)
        assert ac is None

    def test_dc_keyword(self):
        wf, _ = parse_source_spec("DC 5", "V1")
        assert isinstance(wf, Constant) and wf.level == pytest.approx(5.0)

    def test_ac_magnitude_and_phase(self):
        _, ac = parse_source_spec("AC 2 90", "V1")
        assert ac == pytest.approx(2j)

    def test_sin_function(self):
        wf, _ = parse_source_spec("SIN(1 2 1k 1u 100 45)", "V1")
        assert isinstance(wf, SpiceSin)
        assert (wf.vo, wf.va, wf.freq) == (1.0, 2.0, 1e3)
        assert (wf.td, wf.theta, wf.phase) == (1e-6, 100.0, 45.0)

    def test_pulse_function_with_commas(self):
        wf, _ = parse_source_spec("PULSE(0, 1, 1u, 2u, 2u, 5u, 20u)", "V1")
        assert isinstance(wf, SpicePulse)
        assert (wf.td, wf.tr, wf.pw, wf.per) == pytest.approx(
            (1e-6, 2e-6, 5e-6, 2e-5)
        )

    def test_exp_function(self):
        wf, _ = parse_source_spec("EXP(0 1 0 1m 5m 2m)", "I1")
        assert isinstance(wf, SpiceExp)
        assert (wf.td2, wf.tau2) == (5e-3, 2e-3)

    def test_pwl_function(self):
        wf, _ = parse_source_spec("PWL(0 0 1m 1 2m 0)", "I1")
        assert isinstance(wf, PiecewiseLinear)
        np.testing.assert_allclose(wf(np.array([0.5e-3]))[0], 0.5)

    def test_dc_and_ac_and_transient_together(self):
        wf, ac = parse_source_spec("DC 1 AC 1 SIN(0 2 50)", "V1")
        assert isinstance(wf, SpiceSin) and ac == pytest.approx(1.0 + 0j)

    def test_bare_dc_value_alongside_transient_function(self):
        """The classic 'V1 in 0 0 SIN(...)' form must parse."""
        wf, ac = parse_source_spec("0 SIN(0 1 1k)", "V1")
        assert isinstance(wf, SpiceSin) and wf.freq == pytest.approx(1e3)
        nl = Netlist.from_spice("V1 in 0 0 SIN(0 1 1k)\nR1 in 0 1k\n")
        u = nl.input_function()
        np.testing.assert_allclose(u(np.array([0.25e-3]))[0], [1.0])

    def test_pwl_odd_args_rejected(self):
        with pytest.raises(NetlistError, match="pairs"):
            parse_source_spec("PWL(0 0 1m 1 2m)", "I1")

    def test_sin_arity_rejected(self):
        with pytest.raises(NetlistError, match="arguments"):
            parse_source_spec("SIN(1)", "V1")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(NetlistError, match="cannot parse source spec"):
            parse_source_spec("SIN(0 1 1k", "V1")

    def test_junk_token_rejected(self):
        with pytest.raises(NetlistError, match="unexpected token"):
            parse_source_spec("1 bogus", "I1")

    def test_sources_in_cards(self):
        nl = Netlist.from_spice(
            """
            V1 in 0 SIN(0 1 1k)
            I1 0 out PULSE(0 1m 0 1u 1u 1m 2m)
            R1 in out 1k
            """
        )
        u = nl.input_function()
        values = u(np.array([0.25e-3]))
        np.testing.assert_allclose(values[:, 0], [1.0, 1e-3])

    def test_ac_magnitudes_from_cards(self):
        nl = Netlist.from_spice(
            "V1 in 0 DC 0 AC 2\nI1 0 out 1m\nR1 in out 1k\n"
        )
        np.testing.assert_allclose(nl.ac_vector(), [2.0 + 0j, 0.0 + 0j])

    def test_ac_vector_defaults_to_unit_excitation(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\n")
        np.testing.assert_allclose(nl.ac_vector(), [1.0 + 0j])

    def test_ac_vector_multi_channel_needs_declaration(self):
        """Multi-source decks must say which sources excite the sweep."""
        nl = Netlist.from_spice("I1 0 a 1m\nV1 b 0 SIN(0 1 100)\nR1 a b 1k\n")
        with pytest.raises(NetlistError, match="AC magnitude"):
            nl.ac_vector()

    def test_sin_requires_freq(self):
        """SPICE defaults FREQ from .tran; parse time cannot, so require it."""
        with pytest.raises(NetlistError, match="arguments"):
            parse_source_spec("SIN(0 1)", "V1")

    def test_exp_requires_tau1(self):
        with pytest.raises(NetlistError, match="arguments"):
            parse_source_spec("EXP(0 1)", "V1")


class TestDotCards:
    def test_tran_card(self):
        nl = Netlist.from_spice("R1 a 0 1\nI1 0 a 1\n.tran 10u 5m\n")
        tran = nl.analysis.tran
        assert tran.tstep == pytest.approx(1e-5)
        assert tran.tstop == pytest.approx(5e-3)
        assert tran.steps == 500 and not tran.uic

    def test_tran_card_uic_and_tstart(self):
        nl = Netlist.from_spice("R1 a 0 1\nI1 0 a 1\n.tran 1u 1m 0 2u uic\n")
        assert nl.analysis.tran.uic
        assert nl.analysis.tran.tmax == pytest.approx(2e-6)

    def test_tran_bad_arity(self):
        with pytest.raises(NetlistError, match=r"\.tran expects"):
            Netlist.from_spice("R1 a 0 1\n.tran 1u\n")

    def test_ac_card(self):
        nl = Netlist.from_spice("R1 a 0 1\nI1 0 a 1\n.ac dec 10 1 1meg\n")
        ac = nl.analysis.ac
        assert (ac.variation, ac.n) == ("dec", 10)
        assert ac.f_stop == pytest.approx(1e6)
        assert ac.frequencies()[0] == pytest.approx(1.0)

    def test_ac_lin_frequencies(self):
        nl = Netlist.from_spice("R1 a 0 1\nI1 0 a 1\n.ac lin 5 10 50\n")
        np.testing.assert_allclose(
            nl.analysis.ac.frequencies(), [10, 20, 30, 40, 50]
        )

    def test_ac_bad_variation(self):
        with pytest.raises(NetlistError, match="variation"):
            Netlist.from_spice("R1 a 0 1\n.ac log 10 1 1k\n")

    def test_ic_card(self):
        nl = Netlist.from_spice("R1 a 0 1\nC1 a 0 1\n.ic v(a)=2.5\n")
        assert nl.analysis.ic == {"a": pytest.approx(2.5)}

    def test_ic_card_spaces_around_equals(self):
        nl = Netlist.from_spice("R1 a 0 1\nC1 a 0 1\n.ic v(a) = 0.5\n")
        assert nl.analysis.ic == {"a": pytest.approx(0.5)}

    def test_ic_unknown_node_rejected(self):
        with pytest.raises(NetlistError, match="unknown node"):
            Netlist.from_spice("R1 a 0 1\n.ic v(zz)=1\n")

    def test_ic_ground_rejected(self):
        with pytest.raises(NetlistError, match="ground"):
            Netlist.from_spice("R1 a 0 1\n.ic v(GND)=1\n")

    def test_ic_bad_entry_rejected(self):
        with pytest.raises(NetlistError, match=r"v\(node\)=value"):
            Netlist.from_spice("R1 a 0 1\n.ic a=1\n")

    def test_options_card(self):
        nl = Netlist.from_spice(
            "R1 a 0 1\nI1 0 a 1\n.options basis=chebyshev m=32 windows=4 "
            "method=opm backend=dense reltol=1e-6\n"
        )
        spec = nl.analysis
        assert spec.basis == "chebyshev" and spec.m == 32
        assert spec.windows == 4 and spec.method == "opm"
        assert spec.backend == "dense"
        assert spec.extra_options == {"reltol": "1e-6"}

    def test_options_bad_integer(self):
        with pytest.raises(NetlistError, match="integer"):
            Netlist.from_spice("R1 a 0 1\n.options m=many\n")

    def test_options_bad_entry(self):
        with pytest.raises(NetlistError, match="key=value"):
            Netlist.from_spice("R1 a 0 1\n.options basis\n")

    def test_unknown_dot_cards_still_ignored(self):
        nl = Netlist.from_spice("R1 a 0 1\n.print tran v(a)\n.temp 27\n")
        assert len(nl.resistors) == 1
        assert not nl.analysis.has_analyses

"""Tests for the netlist container and SPICE parser."""

import numpy as np
import pytest

from repro.circuits import Constant, Netlist, Ramp
from repro.circuits.netlist import parse_value
from repro.errors import NetlistError


class TestNodeBookkeeping:
    def test_ground_aliases(self):
        for name in ("0", "gnd", "GND", "ground"):
            assert Netlist.is_ground(name)

    def test_node_registration_order(self):
        nl = Netlist()
        nl.add_resistor("R1", "b", "a", 1.0)
        nl.add_resistor("R2", "a", "c", 1.0)
        assert nl.nodes == ["b", "a", "c"]
        assert nl.node_index("a") == 1

    def test_ground_not_registered(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        assert nl.nodes == ["a"] and nl.n_nodes == 1

    def test_node_index_rejects_ground(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="ground"):
            nl.node_index("0")

    def test_node_index_rejects_unknown(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="unknown"):
            nl.node_index("zz")


class TestElementManagement:
    def test_duplicate_names_rejected(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="duplicate"):
            nl.add_capacitor("R1", "a", "0", 1.0)

    def test_typed_queries(self):
        nl = Netlist()
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_capacitor("C1", "a", "0", 1.0)
        nl.add_inductor("L1", "a", "b", 1.0)
        nl.add_cpe("P1", "b", "0", 1.0, 0.5)
        assert len(nl.resistors) == 1 and len(nl.capacitors) == 1
        assert len(nl.inductors) == 1 and len(nl.cpes) == 1

    def test_summary_counts(self):
        nl = Netlist("t")
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        s = nl.summary()
        assert s["resistors"] == 1 and s["current_sources"] == 1 and s["channels"] == 1


class TestChannels:
    def test_auto_allocation(self):
        nl = Netlist()
        ch0 = nl.add_current_source("I1", "0", "a", Constant(1.0))
        ch1 = nl.add_current_source("I2", "0", "a2", Constant(2.0))
        assert (ch0, ch1) == (0, 1) and nl.n_channels == 2

    def test_shared_channel(self):
        nl = Netlist()
        ch = nl.add_current_source("I1", "0", "a", Constant(1.0))
        same = nl.add_current_source("I2", "0", "b", channel=ch, scale=2.0)
        assert same == ch and nl.n_channels == 1

    def test_conflicting_waveform_rejected(self):
        nl = Netlist()
        ch = nl.add_current_source("I1", "0", "a", Constant(1.0))
        with pytest.raises(NetlistError, match="already has waveform"):
            nl.add_current_source("I2", "0", "b", Constant(2.0), channel=ch)

    def test_input_function_stacks_channels(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(2.0))
        nl.add_current_source("I2", "0", "b", Ramp(level=1.0, rise=1.0))
        u = nl.input_function()
        values = u(np.array([0.5]))
        np.testing.assert_allclose(values, [[2.0], [0.5]])

    def test_input_function_derivative(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Ramp(level=2.0, rise=1.0))
        du = nl.input_function(derivative=True)
        np.testing.assert_allclose(du(np.array([0.5])), [[2.0]])

    def test_input_function_missing_waveform(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", channel=0)
        with pytest.raises(NetlistError, match="no attached waveform"):
            nl.input_function()

    def test_set_channel_waveform(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", channel=0)
        nl.set_channel_waveform(0, Constant(5.0))
        np.testing.assert_allclose(nl.input_function()(np.array([0.0])), [[5.0]])

    def test_set_channel_waveform_range_check(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", channel=0)
        with pytest.raises(NetlistError, match="out of range"):
            nl.set_channel_waveform(3, Constant(1.0))


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("1", 1.0),
            ("1.5", 1.5),
            ("-2", -2.0),
            ("1e-9", 1e-9),
            ("1k", 1e3),
            ("3meg", 3e6),
            ("2m", 2e-3),
            ("5u", 5e-6),
            ("7n", 7e-9),
            ("4p", 4e-12),
            ("1f", 1e-15),
            ("2G", 2e9),
            ("1T", 1e12),
        ],
    )
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    @pytest.mark.parametrize("bad", ["", "abc", "1x", "--1", "1 k"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(NetlistError):
            parse_value(bad)


class TestSpiceParser:
    def test_full_example(self):
        nl = Netlist.from_spice(
            """
            * rc with sources
            I1 0 n1 1m
            R1 n1 n2 1k
            C1 n2 0 1u
            L1 n2 n3 1n
            V1 n3 0 1.0
            P1 n1 0 1u 0.5
            .end
            """
        )
        s = nl.summary()
        assert s == {
            "nodes": 3,
            "resistors": 1,
            "capacitors": 1,
            "inductors": 1,
            "cpes": 1,
            "couplings": 0,
            "current_sources": 1,
            "voltage_sources": 1,
            "channels": 2,
        }

    def test_sources_get_constant_waveforms(self):
        nl = Netlist.from_spice("I1 0 a 2m\nR1 a 0 1k")
        u = nl.input_function()
        np.testing.assert_allclose(u(np.array([0.0])), [[2e-3]])

    def test_stops_at_end_card(self):
        nl = Netlist.from_spice("R1 a 0 1\n.end\nR2 b 0 1")
        assert len(nl.resistors) == 1

    def test_ignores_comments_and_dot_cards(self):
        nl = Netlist.from_spice("* hi\n.tran 1n 10n\nR1 a 0 1")
        assert len(nl.resistors) == 1

    def test_rejects_wrong_field_count(self):
        with pytest.raises(NetlistError, match="expected 4 fields"):
            Netlist.from_spice("R1 a 0")

    def test_rejects_cpe_wrong_fields(self):
        with pytest.raises(NetlistError, match="expected 5 fields"):
            Netlist.from_spice("P1 a 0 1u")

    def test_rejects_unknown_card(self):
        with pytest.raises(NetlistError, match="unsupported"):
            Netlist.from_spice("X1 a b 1")

    def test_rejects_empty(self):
        with pytest.raises(NetlistError, match="no elements"):
            Netlist.from_spice("* nothing\n")

"""Tests for the voltage-controlled current source (VCCS, SPICE G element)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits import Constant, Netlist, Ramp, assemble_mna, assemble_na
from repro.core import simulate_opm
from repro.errors import NetlistError


def dense(x):
    return x.toarray() if sp.issparse(x) else np.asarray(x)


class TestElement:
    def test_rejects_equal_control_nodes(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="control"):
            nl.add_vccs("G1", "a", "b", "c", "c", 1.0)

    def test_rejects_zero_gm(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="gm"):
            nl.add_vccs("G1", "a", "b", "c", "0", 0.0)

    def test_control_nodes_registered(self):
        nl = Netlist()
        nl.add_vccs("G1", "a", "0", "c", "0", 1e-3)
        assert "c" in nl.nodes


class TestMnaStamp:
    def test_transconductance_amplifier_dc(self):
        # input divider sets v_in; G converts to current into load R:
        # gain = -gm * R_load (inverting: current pulled out of out node)
        nl = Netlist()
        nl.add_voltage_source("V1", "in", "0", Constant(1.0))
        nl.add_vccs("G1", "out", "0", "in", "0", gm=2e-3)  # i(out->0)=gm*v_in
        nl.add_resistor("RL", "out", "0", 1e3)
        system = assemble_mna(nl, outputs=["out"])
        res = simulate_opm(system, nl.input_function(), (1.0, 4))
        # current gm*v_in leaves node 'out' -> v_out = -gm*R*v_in = -2.0
        np.testing.assert_allclose(res.output_coefficients, -2.0, atol=1e-12)

    def test_stamp_pattern(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "c", Constant(1.0))
        nl.add_resistor("Rc", "c", "0", 1.0)
        nl.add_vccs("G1", "a", "0", "c", "0", gm=5.0)
        nl.add_resistor("Ra", "a", "0", 1.0)
        system = assemble_mna(nl)
        A = dense(system.A)
        ia, ic = nl.node_index("a"), nl.node_index("c")
        assert A[ia, ic] == -5.0  # current 5*v_c leaves node a

    def test_spice_g_card(self):
        nl = Netlist.from_spice(
            """
            V1 in 0 1.0
            G1 out 0 in 0 2m
            RL out 0 1k
            """
        )
        system = assemble_mna(nl, outputs=["out"])
        res = simulate_opm(system, nl.input_function(), (1.0, 4))
        np.testing.assert_allclose(res.output_coefficients, -2.0, atol=1e-12)

    def test_g_card_field_count(self):
        with pytest.raises(NetlistError, match="6 fields"):
            Netlist.from_spice("G1 a 0 c 0")


class TestNaStamp:
    def test_na_matches_mna_with_vccs(self):
        # RC circuit with a feedback transconductance; NA and MNA must
        # produce the same node waveform
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Ramp(1e-3, rise=1e-3))
        nl.add_resistor("R1", "a", "0", 1e3)
        nl.add_capacitor("C1", "a", "0", 1e-6)
        nl.add_vccs("G1", "b", "0", "a", "0", gm=1e-3)
        nl.add_resistor("R2", "b", "0", 1e3)
        nl.add_capacitor("C2", "b", "0", 1e-6)
        nl.add_inductor("L1", "b", "0", 1e-3)
        mna = assemble_mna(nl, outputs=["b"])
        na = assemble_na(nl, outputs=["b"])
        r_mna = simulate_opm(mna, nl.input_function(), (5e-3, 2000))
        r_na = simulate_opm(na, nl.input_function(derivative=True), (5e-3, 2000))
        t = r_mna.grid.midpoints
        ym, yn = r_mna.outputs(t)[0], r_na.outputs(t)[0]
        scale = max(np.max(np.abs(ym)), 1e-12)
        np.testing.assert_allclose(ym, yn, atol=5e-3 * scale)

    def test_active_damping(self):
        # negative transconductance feedback damps an LC tank
        def build(gm):
            nl = Netlist()
            nl.add_current_source("I1", "0", "a", Ramp(1e-3, rise=1e-6))
            nl.add_inductor("L1", "a", "0", 1e-3)
            nl.add_capacitor("C1", "a", "0", 1e-6)
            nl.add_resistor("R1", "a", "0", 1e5)
            if gm:
                nl.add_vccs("G1", "a", "0", "a", "0", gm=gm)
            return nl

        responses = {}
        for gm in (None, 5e-3):
            nl = build(gm)
            system = assemble_mna(nl, outputs=["a"])
            res = simulate_opm(system, nl.input_function(), (2e-3, 4000))
            responses[gm] = res.output_coefficients[0]
        # with feedback the ringing amplitude decays much faster
        undamped_late = np.max(np.abs(responses[None][3000:]))
        damped_late = np.max(np.abs(responses[5e-3][3000:]))
        assert damped_late < 0.2 * undamped_late

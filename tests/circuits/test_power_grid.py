"""Tests for the 3-D power-grid generator (section V-B workload)."""

import numpy as np
import pytest

from repro.circuits import (
    RaisedCosinePulse,
    assemble_mna,
    assemble_na,
    grid_node_name,
    power_grid,
    power_grid_models,
)
from repro.core import DescriptorSystem, SecondOrderSystem, simulate_opm
from repro.errors import NetlistError


class TestGeneration:
    def test_counts(self):
        nl = power_grid(4, 4, 3, via_pitch=2, pad_pitch=3, load_pitch=2)
        s = nl.summary()
        assert s["nodes"] == 48
        assert s["capacitors"] == 48
        # mesh resistors: per layer 2 * 4*3 = 24 -> 72, plus pads
        assert s["resistors"] == 72 + 4
        # vias: 2 interfaces x 2x2 placements
        assert s["inductors"] == 8
        assert s["channels"] == 1

    def test_load_scales_deterministic(self):
        nl1 = power_grid(4, 4, 2, seed=7)
        nl2 = power_grid(4, 4, 2, seed=7)
        s1 = [el.scale for el in nl1.current_sources]
        s2 = [el.scale for el in nl2.current_sources]
        np.testing.assert_array_equal(s1, s2)

    def test_different_seed_different_loads(self):
        s1 = [el.scale for el in power_grid(4, 4, 2, seed=1).current_sources]
        s2 = [el.scale for el in power_grid(4, 4, 2, seed=2).current_sources]
        assert s1 != s2

    def test_via_pitch_controls_inductors(self):
        dense_vias = power_grid(4, 4, 2, via_pitch=1).summary()["inductors"]
        sparse_vias = power_grid(4, 4, 2, via_pitch=2).summary()["inductors"]
        assert dense_vias == 16 and sparse_vias == 4

    def test_node_naming(self):
        assert grid_node_name(1, 2, 3) == "n1_2_3"

    def test_rejects_degenerate(self):
        with pytest.raises(NetlistError):
            power_grid(1, 1, 1)


class TestModels:
    def test_bundle_types_and_sizes(self):
        bundle = power_grid_models(4, 4, 2, via_pitch=2)
        assert isinstance(bundle["na"], SecondOrderSystem)
        assert isinstance(bundle["mna"], DescriptorSystem)
        assert bundle["na"].n_states == 32
        assert bundle["mna"].n_states == 32 + 4
        assert bundle["outputs"] == [grid_node_name(0, 2, 2)]

    def test_mna_size_ratio_close_to_paper(self):
        # paper: MNA/NA = 110/75 ~ 1.47; dense vias give 5/3 ~ 1.67,
        # pitch-2 vias give lower; both bracket the paper's ratio
        b1 = power_grid_models(8, 8, 3, via_pitch=1)
        ratio = b1["mna"].n_states / b1["na"].n_states
        assert 1.3 < ratio < 1.8

    def test_ir_drop_waveform_sane(self):
        bundle = power_grid_models(5, 5, 2, via_pitch=2, pad_pitch=4, load_pitch=2)
        res = simulate_opm(bundle["mna"], bundle["u"], (1e-9, 400))
        y = res.output_coefficients[0]
        # drop is negative (below rail), peaks during the load pulse,
        # and recovers toward zero afterwards
        assert np.min(y) < -1e-6
        assert abs(y[-1]) < 0.2 * abs(np.min(y))

    def test_na_and_mna_agree(self):
        bundle = power_grid_models(4, 4, 2, via_pitch=2, pad_pitch=3, load_pitch=2)
        rm = simulate_opm(bundle["mna"], bundle["u"], (1e-9, 800))
        rn = simulate_opm(bundle["na"], bundle["du"], (1e-9, 800))
        t = rm.grid.midpoints
        ym, yn = rm.outputs(t)[0], rn.outputs(t)[0]
        scale = np.max(np.abs(ym))
        np.testing.assert_allclose(ym, yn, atol=0.02 * scale)

    def test_custom_observation_nodes(self):
        nodes = [grid_node_name(0, 0, 0), grid_node_name(1, 1, 1)]
        bundle = power_grid_models(3, 3, 2, observe=nodes)
        assert bundle["na"].n_outputs == 2

    def test_custom_load_waveform(self):
        wf = RaisedCosinePulse(level=2.0, width=5e-10)
        nl = power_grid(3, 3, 2, load_waveform=wf)
        u = nl.input_function()
        np.testing.assert_allclose(u(np.array([2.5e-10]))[0], [2.0])

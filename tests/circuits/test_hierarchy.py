"""Hierarchical ``.subckt``/``X`` decks flatten to exact golden twins.

The filter-bank example is hand-flattened card by card; parsing the
hierarchical deck must produce the identical netlist -- same node
order, same dotted element names, bit-identical assembly, transient
(plain run *and* windowed march) and ``.ac`` sweep.  The rest of the
suite pins the parser's error contract: duplicate names and
definitions are reported with both source lines, parameter and port
mistakes fail fast, and every ground alias (``0``/``gnd``/``vss``/
``ground``) collapses to the same reference node.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.circuits import Netlist, SpiceSin, assemble_mna
from repro.circuits.netlist import NetlistError
from repro.engine.netlist_session import ac_scan, simulate_netlist

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
FILTER_BANK = EXAMPLES / "filter_bank.cir"


def filter_bank_twin() -> Netlist:
    """``filter_bank.cir`` flattened by hand, in deck order."""
    nl = Netlist("filter_bank")
    ch = nl.add_voltage_source("V1", "drive", "0", SpiceSin(0.0, 1.0, 200.0))
    nl.set_ac_magnitude(ch, 1.0)
    nl.add_resistor("xa.R1", "drive", "mid", 2e3)
    nl.add_capacitor("xa.C1", "mid", "0", 1e-6)
    nl.add_resistor("xb.R1", "mid", "tap", 1e3)
    nl.add_capacitor("xb.C1", "tap", "0", 2e-6)
    nl.add_resistor("xfast.R1", "drive", "fast", 100.0)
    # 100n parses as 100 * 1e-9; reproduce that arithmetic exactly so
    # the assembled pencil is bit-identical, not just close
    nl.add_capacitor("xfast.C1", "fast", "0", 100 * 1e-9)
    return nl


class TestFilterBankGolden:
    def _load(self):
        parsed = Netlist.from_spice_file(FILTER_BANK)
        return parsed, filter_bank_twin()

    def test_structure_matches_hand_flattened(self):
        parsed, twin = self._load()
        assert parsed.nodes == ["drive", "mid", "tap", "fast"]
        assert parsed.nodes == twin.nodes
        assert parsed.summary() == twin.summary()
        assert [e.name for e in parsed.elements] == [e.name for e in twin.elements]
        assert parsed.n_instances == 3

    def test_assembly_bit_identical(self):
        parsed, twin = self._load()
        a = assemble_mna(parsed, outputs=parsed.nodes)
        b = assemble_mna(twin, outputs=twin.nodes)
        np.testing.assert_array_equal(np.asarray(a.E), np.asarray(b.E))
        np.testing.assert_array_equal(np.asarray(a.A), np.asarray(b.A))
        np.testing.assert_array_equal(np.asarray(a.B), np.asarray(b.B))

    def test_transient_run_bit_identical(self):
        parsed, twin = self._load()
        got = simulate_netlist(parsed, t_end=2e-3, steps=64)
        ref = simulate_netlist(twin, t_end=2e-3, steps=64)
        np.testing.assert_array_equal(
            got.tran.coefficients, ref.tran.coefficients
        )
        np.testing.assert_array_equal(
            got.tran.input_coefficients, ref.tran.input_coefficients
        )

    def test_windowed_march_bit_identical(self):
        parsed, twin = self._load()
        got = simulate_netlist(parsed, t_end=2e-3, steps=64, windows=4)
        ref = simulate_netlist(twin, t_end=2e-3, steps=64, windows=4)
        np.testing.assert_array_equal(
            got.tran.coefficients, ref.tran.coefficients
        )

    def test_ac_sweep_bit_identical(self):
        parsed, twin = self._load()
        card = parsed.analysis.ac
        assert card is not None
        got = ac_scan(parsed, card=card)
        ref = ac_scan(twin, card=card)
        np.testing.assert_array_equal(got.frequencies, ref.frequencies)
        np.testing.assert_array_equal(got.response, ref.response)


class TestHierarchyExpansion:
    def test_nested_instances_get_dotted_prefixes(self):
        deck = """
        * nested hierarchy
        .subckt leaf a b
        R1 a b 1k
        C1 b 0 1u
        .ends
        .subckt branch p q
        Xl p inner leaf
        R2 inner q 2k
        .ends
        V1 top 0 SIN(0 1 1k)
        Xo top out branch
        .tran 1u 1m
        .end
        """
        nl = Netlist.from_spice(deck)
        names = [e.name for e in nl.elements]
        assert names == ["V1", "xo.xl.R1", "xo.xl.C1", "xo.R2"]
        assert nl.nodes == ["top", "xo.inner", "out"]
        assert nl.n_instances == 2

    def test_param_override_beats_default(self):
        deck = """
        .subckt sec a r=1k
        R1 a 0 {r}
        .ends
        I1 0 n1 SIN(0 1 1k)
        Xd n1 sec
        Xov n1 sec r=5k
        .tran 1u 1m
        .end
        """
        nl = Netlist.from_spice(deck)
        values = {e.name: e.resistance for e in nl.elements if e.name.endswith("R1")}
        assert values == {"xd.R1": 1e3, "xov.R1": 5e3}

    def test_unknown_param_placeholder_raises(self):
        deck = """
        .subckt sec a
        R1 a 0 {rload}
        .ends
        Xa n1 sec
        .end
        """
        with pytest.raises(NetlistError, match="rload"):
            Netlist.from_spice(deck)

    def test_unknown_override_raises(self):
        deck = """
        .subckt sec a r=1k
        R1 a 0 {r}
        .ends
        Xa n1 sec q=2
        .end
        """
        with pytest.raises(NetlistError, match="q"):
            Netlist.from_spice(deck)

    def test_connection_count_mismatch_raises(self):
        deck = """
        .subckt sec a b
        R1 a b 1k
        .ends
        Xa n1 sec
        .end
        """
        with pytest.raises(NetlistError, match="2 port"):
            Netlist.from_spice(deck)

    def test_recursive_instantiation_raises(self):
        deck = """
        .subckt loop a
        Xself a loop
        .ends
        Xtop n1 loop
        .end
        """
        with pytest.raises(NetlistError, match="recursi"):
            Netlist.from_spice(deck)

    def test_missing_ends_raises(self):
        deck = """
        .subckt sec a
        R1 a 0 1k
        .end
        """
        with pytest.raises(NetlistError, match=r"\.ends"):
            Netlist.from_spice(deck)

    def test_unknown_subckt_raises(self):
        with pytest.raises(NetlistError, match="nosuch"):
            Netlist.from_spice("Xa n1 nosuch\n.end\n")


class TestGroundAliases:
    def test_all_aliases_unify_to_reference(self):
        deck = """
        V1 n1 gnd SIN(0 1 1k)
        R1 n1 vss 1k
        C1 n1 ground 1u
        R2 n1 0 2k
        .tran 1u 1m
        .end
        """
        nl = Netlist.from_spice(deck)
        assert nl.nodes == ["n1"]
        for e in nl.elements:
            assert Netlist.is_ground(e.b)

    def test_vss_connection_into_subckt_port_is_ground(self):
        deck = """
        .subckt sec a b
        R1 a b 1k
        .ends
        I1 0 n1 SIN(0 1 1k)
        Xa n1 vss sec
        .tran 1u 1m
        .end
        """
        nl = Netlist.from_spice(deck)
        (r,) = [e for e in nl.elements if e.name == "xa.R1"]
        assert (r.a, r.b) == ("n1", "0")


class TestDuplicateDiagnostics:
    def test_duplicate_element_names_both_lines(self):
        deck = "R1 a 0 1k\nC7 a 0 1u\nR1 a 0 2k\n.end\n"
        with pytest.raises(NetlistError, match="line 1.*line 3"):
            Netlist.from_spice(deck)

    def test_duplicate_subckt_definition_both_lines(self):
        deck = (
            ".subckt sec a\nR1 a 0 1k\n.ends\n"
            ".subckt sec a\nR1 a 0 2k\n.ends\n"
            ".end\n"
        )
        with pytest.raises(NetlistError, match="line 1.*line 4"):
            Netlist.from_spice(deck)

    def test_duplicate_instance_names_raise(self):
        deck = """
        .subckt sec a
        R1 a 0 1k
        .ends
        Xa n1 sec
        Xa n2 sec
        .end
        """
        with pytest.raises(NetlistError, match="[Xx]a"):
            Netlist.from_spice(deck)

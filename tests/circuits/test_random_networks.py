"""Property-based validation: random RC networks vs the expm reference.

Hypothesis generates random connected RC topologies; assembled MNA
models simulated with OPM must track the matrix-exponential reference.
This closes the loop netlist -> stamps -> solver on inputs no human
picked.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import sample_outputs
from repro.baselines import simulate_expm
from repro.circuits import Constant, Netlist, assemble_mna
from repro.core import simulate_opm


@st.composite
def random_rc_network(draw):
    """A connected RC network: tree backbone + random extra edges."""
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{k}" for k in range(n_nodes)]
    netlist = Netlist("random rc")
    netlist.add_current_source("Isrc", "0", nodes[0], Constant(1.0))
    # spanning tree to ground: every node gets an R to a previous node
    for k, node in enumerate(nodes):
        parent = "0" if k == 0 else nodes[draw(st.integers(0, k - 1))]
        r = draw(st.floats(min_value=0.5, max_value=5.0))
        netlist.add_resistor(f"Rt{k}", node, parent, r)
        c = draw(st.floats(min_value=0.1, max_value=2.0))
        netlist.add_capacitor(f"Ct{k}", node, "0", c)
    # a few extra cross edges
    n_extra = draw(st.integers(min_value=0, max_value=3))
    for j in range(n_extra):
        a = draw(st.integers(0, n_nodes - 1))
        b = draw(st.integers(0, n_nodes - 1))
        if a == b:
            continue
        r = draw(st.floats(min_value=0.5, max_value=5.0))
        netlist.add_resistor(f"Rx{j}", nodes[a], nodes[b], r)
    return netlist


@given(netlist=random_rc_network())
@settings(max_examples=25, deadline=None)
def test_random_rc_matches_expm(netlist):
    system = assemble_mna(netlist)
    opm = simulate_opm(system, netlist.input_function(), (5.0, 400))
    ref = simulate_expm(system, netlist.input_function(), 5.0, 400)
    # skip the first cell: the step input's initial transient maximises
    # the O(h^2) cell-average constant right at t=0
    t = opm.grid.midpoints[20::40]
    y_opm = sample_outputs(opm, t)
    y_ref = sample_outputs(ref, t)
    scale = float(np.max(np.abs(y_ref))) + 1e-9
    np.testing.assert_allclose(y_opm, y_ref, atol=2e-3 * scale)


@given(netlist=random_rc_network())
@settings(max_examples=15, deadline=None)
def test_random_rc_passive_dc(netlist):
    """Driven passive RC network: every node voltage is bounded by the
    worst-case DC drop and non-negative at steady state."""
    system = assemble_mna(netlist)
    res = simulate_opm(system, netlist.input_function(), (50.0, 400))
    final = res.coefficients[:, -1]
    assert np.all(final > -1e-6)
    # 1 A through resistances <= 5 ohm each, <= 10 hops
    assert np.max(final) < 50.0 + 1e-6

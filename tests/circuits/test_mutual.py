"""Tests for mutual inductance (SPICE K element)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits import Constant, Netlist, RaisedCosinePulse, assemble_mna, assemble_na
from repro.core import simulate_opm
from repro.errors import NetlistError


def dense(x):
    return x.toarray() if sp.issparse(x) else np.asarray(x)


def coupled_tanks(k: float | None, l=1e-3, c=1e-6) -> Netlist:
    """Two identical LC tanks, optionally magnetically coupled."""
    nl = Netlist("coupled tanks")
    nl.add_current_source("I1", "0", "a", RaisedCosinePulse(1e-3, width=2e-5))
    for node, suffix in (("a", "1"), ("b", "2")):
        nl.add_inductor(f"L{suffix}", node, "0", l)
        nl.add_capacitor(f"C{suffix}", node, "0", c)
        nl.add_resistor(f"R{suffix}", node, "0", 1e4)
    if k is not None:
        nl.add_mutual("K1", "L1", "L2", k)
    return nl


class TestValidation:
    def test_requires_existing_inductors(self):
        nl = Netlist()
        nl.add_inductor("L1", "a", "0", 1e-3)
        with pytest.raises(NetlistError, match="must be added before"):
            nl.add_mutual("K1", "L1", "L9", 0.5)

    def test_rejects_self_coupling(self):
        nl = Netlist()
        nl.add_inductor("L1", "a", "0", 1e-3)
        with pytest.raises(NetlistError, match="itself"):
            nl.add_mutual("K1", "L1", "L1", 0.5)

    @pytest.mark.parametrize("bad_k", [0.0, 1.0, -1.0, 1.5])
    def test_rejects_out_of_range_coupling(self, bad_k):
        nl = Netlist()
        nl.add_inductor("L1", "a", "0", 1e-3)
        nl.add_inductor("L2", "b", "0", 1e-3)
        with pytest.raises(NetlistError, match="coupling"):
            nl.add_mutual("K1", "L1", "L2", bad_k)

    def test_duplicate_name_rejected(self):
        nl = Netlist()
        nl.add_inductor("L1", "a", "0", 1e-3)
        nl.add_inductor("L2", "b", "0", 1e-3)
        nl.add_mutual("K1", "L1", "L2", 0.5)
        with pytest.raises(NetlistError, match="duplicate"):
            nl.add_mutual("K1", "L1", "L2", 0.3)


class TestMnaStamp:
    def test_inductance_matrix_off_diagonal(self):
        nl = coupled_tanks(0.5)
        system = assemble_mna(nl)
        E = dense(system.E)
        rows = [nl.n_nodes, nl.n_nodes + 1]  # inductor current rows
        mutual = 0.5 * 1e-3
        assert E[rows[0], rows[1]] == pytest.approx(mutual)
        assert E[rows[1], rows[0]] == pytest.approx(mutual)

    def test_mode_splitting_eigenfrequencies(self):
        # coupled identical tanks: modes at w = 1/sqrt((L +- M) C)
        l, c, k = 1e-3, 1e-6, 0.4
        nl = coupled_tanks(k, l=l, c=c)
        # remove loss for clean modes: rebuild with huge R already (1e4)
        system = assemble_mna(nl)
        E, A = dense(system.E), dense(system.A)
        eigvals = np.linalg.eigvals(np.linalg.solve(E, A))
        freqs = np.sort(np.abs(eigvals.imag))
        freqs = freqs[freqs > 1.0]  # drop near-zero real modes
        expected = sorted(
            [1.0 / np.sqrt((l + k * l) * c), 1.0 / np.sqrt((l - k * l) * c)]
        )
        np.testing.assert_allclose(
            [freqs[0], freqs[-1]], expected, rtol=1e-3
        )

    def test_energy_transfer_between_tanks(self):
        # drive tank 1; with coupling, tank 2 rings; without, it stays quiet
        quiet = simulate_opm(
            assemble_mna(coupled_tanks(None), outputs=["b"]),
            coupled_tanks(None).input_function(),
            (2e-3, 2000),
        )
        coupled = simulate_opm(
            assemble_mna(coupled_tanks(0.5), outputs=["b"]),
            coupled_tanks(0.5).input_function(),
            (2e-3, 2000),
        )
        assert np.max(np.abs(coupled.output_coefficients)) > 100.0 * np.max(
            np.abs(quiet.output_coefficients)
        )

    def test_spice_k_card(self):
        nl = Netlist.from_spice(
            """
            I1 0 a 1m
            L1 a 0 1m
            C1 a 0 1u
            L2 b 0 1m
            C2 b 0 1u
            R2 b 0 1k
            K1 L1 L2 0.3
            """
        )
        assert len(nl.couplings) == 1
        assert nl.couplings[0].coupling == 0.3

    def test_k_card_field_count(self):
        with pytest.raises(NetlistError, match="4 fields"):
            Netlist.from_spice("L1 a 0 1m\nL2 b 0 1m\nK1 L1 L2")


class TestNaWithCoupling:
    def test_na_matches_mna(self):
        nl = coupled_tanks(0.6)
        mna = assemble_mna(nl, outputs=["b"])
        na = assemble_na(nl, outputs=["b"])
        r_mna = simulate_opm(mna, nl.input_function(), (1e-3, 3000))
        r_na = simulate_opm(na, nl.input_function(derivative=True), (1e-3, 3000))
        t = r_mna.grid.midpoints
        ym, yn = r_mna.outputs(t)[0], r_na.outputs(t)[0]
        scale = max(np.max(np.abs(ym)), 1e-12)
        np.testing.assert_allclose(ym, yn, atol=0.03 * scale)

    def test_gamma_uncoupled_reduces_to_pair_stamps(self):
        nl = coupled_tanks(None)
        na = assemble_na(nl)
        K = dense(na.K)
        # two grounded inductors: diagonal 1/L entries on their nodes
        np.testing.assert_allclose(np.diag(K), [1e3, 1e3])
        assert np.count_nonzero(K - np.diag(np.diag(K))) == 0

    def test_gamma_coupled_has_cross_terms(self):
        nl = coupled_tanks(0.5)
        na = assemble_na(nl)
        K = dense(na.K)
        assert K[0, 1] != 0.0
        # L_mat^{-1} of [[L, M], [M, L]]: off-diagonal -M/(L^2 - M^2)
        l, m = 1e-3, 0.5e-3
        np.testing.assert_allclose(K[0, 1], -m / (l**2 - m**2), rtol=1e-12)

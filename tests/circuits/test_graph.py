"""Circuit-graph layer: connectivity, lint, and component split.

The lint must flag exactly the two structural defects that make the
MNA pencil singular -- floating nodes (all-zero KCL rows) and
connected components with no conductive path to ground -- and stay
silent on every well-formed deck, including every shipped example.
``split()`` must partition a multi-component netlist into
sub-netlists whose per-component structure matches the monolithic
deck exactly.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.circuits import CircuitGraph, Netlist, SpiceSin
from repro.circuits.netlist import NetlistError
from repro.engine.netlist_session import build_system, lint_netlist

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def two_component_netlist() -> Netlist:
    nl = Netlist("pair")
    nl.add_current_source("I1", "0", "a1", SpiceSin(0.0, 1e-3, 500.0))
    nl.add_resistor("R1", "a1", "0", 1e3)
    nl.add_capacitor("C1", "a1", "0", 1e-6)
    nl.add_voltage_source("V2", "b1", "0", SpiceSin(0.0, 1.0, 1e3))
    nl.add_resistor("R2", "b1", "b2", 50.0)
    nl.add_inductor("L2", "b2", "0", 1e-3)
    return nl


class TestConnectivity:
    def test_single_component_rc(self):
        nl = Netlist("rc")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "out", 1e3)
        nl.add_capacitor("C1", "out", "0", 1e-6)
        graph = CircuitGraph(nl)
        assert graph.n_components == 1
        assert graph.degree("in") == 2
        assert graph.degree("out") == 2
        assert graph.summary()["grounded_components"] == 1
        assert not graph.lint()

    def test_two_components_and_membership(self):
        graph = CircuitGraph(two_component_netlist())
        assert graph.n_components == 2
        assert graph.component_of("a1") is not graph.component_of("b1")
        assert graph.component_of("b1") is graph.component_of("b2")
        assert graph.orphan_elements == ()

    def test_ground_does_not_merge_components(self):
        # both components touch node 0, yet stay distinct
        graph = CircuitGraph(two_component_netlist())
        assert graph.n_components == 2

    def test_vccs_control_refs_merge_components(self):
        nl = Netlist("bridged")
        nl.add_current_source("I1", "0", "in", SpiceSin(0.0, 1.0, 1e3))
        nl.add_resistor("R1", "in", "0", 1e3)
        nl.add_vccs("G1", "0", "out", "in", "0", 1e-3)
        nl.add_resistor("R2", "out", "0", 1e3)
        graph = CircuitGraph(nl)
        assert graph.n_components == 1

    def test_mutual_coupling_merges_components(self):
        nl = Netlist("transformer")
        nl.add_voltage_source("V1", "p", "0", SpiceSin(0.0, 1.0, 1e3))
        nl.add_inductor("L1", "p", "0", 1e-3)
        nl.add_inductor("L2", "s", "0", 1e-3)
        nl.add_resistor("R2", "s", "0", 50.0)
        graph = CircuitGraph(nl)
        assert graph.n_components == 2
        nl.add_mutual("K1", "L1", "L2", 0.9)
        assert CircuitGraph(nl).n_components == 1

    def test_ground_aliases_unify(self):
        nl = Netlist.from_spice(
            "V1 n1 gnd SIN(0 1 1k)\nR1 n1 vss 1k\nR2 n1 ground 2k\n.end\n"
        )
        graph = CircuitGraph(nl)
        assert graph.n_components == 1
        assert graph.degree("n1") == 3
        assert not graph.lint()


class TestLint:
    def test_dangling_node_flagged(self):
        nl = Netlist("dangling")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "stub", 1e3)
        report = CircuitGraph(nl).lint()
        assert report.codes == ("floating-node",)
        assert "stub" in report[0].message
        assert "R1" in report[0].elements

    def test_control_only_node_flagged(self):
        nl = Netlist("ctrl")
        nl.add_current_source("I1", "0", "out", SpiceSin(0.0, 1.0, 1e3))
        nl.add_resistor("R1", "out", "0", 1e3)
        nl.add_vccs("G1", "0", "out", "phantom", "0", 1e-3)
        report = CircuitGraph(nl).lint()
        assert report.codes == ("floating-node",)
        assert "phantom" in report[0].message
        assert "control reference" in report[0].message

    def test_no_dc_path_flagged(self):
        nl = Netlist("adrift")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "0", 1e3)
        nl.add_resistor("R2", "x1", "x2", 1e3)
        nl.add_capacitor("C2", "x2", "x1", 1e-6)
        report = CircuitGraph(nl).lint()
        assert report.codes == ("no-dc-path",)
        assert set(report[0].nodes) == {"x1", "x2"}

    def test_current_source_does_not_pin(self):
        # a current source to ground stamps only B: still no DC path
        nl = Netlist("pumped")
        nl.add_current_source("I1", "0", "x1", SpiceSin(0.0, 1.0, 1e3))
        nl.add_capacitor("C1", "x1", "x2", 1e-6)
        nl.add_resistor("R1", "x2", "x1", 1e3)
        report = CircuitGraph(nl).lint()
        assert "no-dc-path" in report.codes

    def test_check_raises_with_names_and_hint(self):
        nl = Netlist("dangling")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "stub", 1e3)
        with pytest.raises(NetlistError, match="stub") as excinfo:
            CircuitGraph(nl).check()
        assert "fix:" in str(excinfo.value)

    def test_build_system_gates_on_lint(self):
        nl = Netlist("adrift")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "0", 1e3)
        nl.add_capacitor("C2", "x1", "x2", 1e-6)
        nl.add_resistor("R2", "x2", "x1", 1e3)
        with pytest.raises(NetlistError, match="no-dc-path|conductive"):
            build_system(nl)
        # the escape hatch still assembles the (singular) pencil
        system = build_system(nl, lint=False)
        assert system.n_states >= 4

    def test_lint_netlist_accepts_deck_text(self):
        report = lint_netlist("V1 in 0 SIN(0 1 1k)\nR1 in stub 1k\n.end\n")
        assert report.codes == ("floating-node",)
        payload = report.as_dict()
        assert payload["ok"] is False
        assert payload["issues"][0]["code"] == "floating-node"

    @pytest.mark.parametrize("deck", sorted(EXAMPLES.glob("*.cir")))
    def test_every_example_deck_is_clean(self, deck):
        assert not lint_netlist(deck.read_text(), title=deck.stem)


class TestSplit:
    def test_split_preserves_component_structure(self):
        nl = two_component_netlist()
        subs = CircuitGraph(nl).split()
        assert len(subs) == 2
        assert subs[0].nodes == ["a1"]
        assert subs[1].nodes == ["b1", "b2"]
        assert [e.name for e in subs[0].elements] == ["I1", "R1", "C1"]
        assert [e.name for e in subs[1].elements] == ["V2", "R2", "L2"]

    def test_split_renumbers_channels_and_keeps_waveforms(self):
        nl = two_component_netlist()
        subs = CircuitGraph(nl).split()
        t = np.linspace(0.0, 1e-3, 33)
        u = nl.input_function()(t)
        np.testing.assert_array_equal(subs[0].input_function()(t), u[:1])
        np.testing.assert_array_equal(subs[1].input_function()(t), u[1:])

    def test_single_component_returns_original(self):
        nl = Netlist("rc")
        nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
        nl.add_resistor("R1", "in", "0", 1e3)
        (only,) = CircuitGraph(nl).split()
        assert only is nl

"""Tests for MNA assembly: stamps checked against hand analysis."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits import (
    Constant,
    Netlist,
    assemble_mna,
    assemble_mna_restamp,
    output_matrix,
)
from repro.core import DescriptorSystem, FractionalDescriptorSystem, MultiTermSystem, simulate_opm
from repro.errors import NetlistError


def dense(x):
    return x.toarray() if sp.issparse(x) else np.asarray(x)


class TestStamps:
    def test_resistor_divider_dc(self):
        # 1V source, R1=1k to mid, R2=1k to ground: v_mid = 0.5
        nl = Netlist.from_spice(
            """
            V1 in 0 1.0
            R1 in mid 1k
            R2 mid 0 1k
            """
        )
        system = assemble_mna(nl, outputs=["mid"])
        res = simulate_opm(system, 1.0, (1.0, 4))
        np.testing.assert_allclose(res.output_coefficients, np.full((1, 4), 0.5), atol=1e-12)

    def test_rc_charging_hand_computed(self):
        # I = 1mA into R||C (1k, 1uF): v = 1 * (1 - e^{-t/1ms})
        nl = Netlist()
        nl.add_current_source("I1", "0", "n", Constant(1e-3))
        nl.add_resistor("R1", "n", "0", 1e3)
        nl.add_capacitor("C1", "n", "0", 1e-6)
        system = assemble_mna(nl, outputs=["n"])
        # stamp values: E = [[C]], A = [[-G]]; B carries the source
        # *scale* (+1 into node n) -- the 1 mA amplitude lives in the
        # channel waveform, not in B
        np.testing.assert_allclose(dense(system.E), [[1e-6]])
        np.testing.assert_allclose(dense(system.A), [[-1e-3]])
        np.testing.assert_allclose(system.B, [[1.0]])

    def test_inductor_branch_stamps(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_inductor("L1", "a", "0", 2e-9)
        nl.add_resistor("R1", "a", "0", 1.0)
        system = assemble_mna(nl)
        E, A = dense(system.E), dense(system.A)
        # states: [v_a, i_L]
        np.testing.assert_allclose(E, [[0.0, 0.0], [0.0, 2e-9]])
        np.testing.assert_allclose(A, [[-1.0, -1.0], [1.0, 0.0]])

    def test_voltage_source_row(self):
        nl = Netlist()
        nl.add_voltage_source("V1", "p", "0", Constant(1.0))
        nl.add_resistor("R1", "p", "0", 2.0)
        system = assemble_mna(nl)
        A = dense(system.A)
        # states [v_p, i_V]: KCL at p: -0.5 v_p - i_V...; branch: v_p = u
        np.testing.assert_allclose(A, [[-0.5, -1.0], [1.0, 0.0]])
        np.testing.assert_allclose(system.B, [[0.0], [-1.0]])

    def test_current_direction_convention(self):
        # I1 a->b drives current out of a into b
        nl = Netlist()
        nl.add_current_source("I1", "a", "b", Constant(1.0))
        nl.add_resistor("Ra", "a", "0", 1.0)
        nl.add_resistor("Rb", "b", "0", 1.0)
        system = assemble_mna(nl, outputs=["a", "b"])
        res = simulate_opm(system, 1.0, (1.0, 2))
        y = res.output_coefficients[:, 0]
        assert y[0] == pytest.approx(-1.0) and y[1] == pytest.approx(1.0)

    def test_floating_capacitor_stamp(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_capacitor("C1", "a", "b", 3e-6)
        nl.add_resistor("R1", "b", "0", 1.0)
        nl.add_resistor("R2", "a", "0", 1.0)
        system = assemble_mna(nl)
        E = dense(system.E)
        np.testing.assert_allclose(
            E, [[3e-6, -3e-6], [-3e-6, 3e-6]]
        )


class TestModelDispatch:
    def test_rc_gives_descriptor(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a 0 1k\nC1 a 0 1u")
        assert type(assemble_mna(nl)) is DescriptorSystem

    def test_pure_cpe_gives_fractional(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_cpe("P1", "a", "0", 2.0, 0.5)
        system = assemble_mna(nl)
        assert isinstance(system, FractionalDescriptorSystem)
        assert system.alpha == 0.5
        np.testing.assert_allclose(dense(system.E), [[2.0]])

    def test_cpe_alpha_one_degenerates_to_descriptor(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_cpe("P1", "a", "0", 2.0, 1.0)
        system = assemble_mna(nl)
        assert type(system) is DescriptorSystem

    def test_mixed_c_and_cpe_gives_multiterm(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_capacitor("C1", "a", "0", 1.0)
        nl.add_cpe("P1", "a", "0", 1.0, 0.5)
        system = assemble_mna(nl)
        assert isinstance(system, MultiTermSystem)
        assert [o for o, _ in system.terms] == [1.0, 0.5, 0.0]

    def test_two_cpe_orders_multiterm(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "a", Constant(1.0))
        nl.add_resistor("R1", "a", "0", 1.0)
        nl.add_cpe("P1", "a", "0", 1.0, 0.3)
        nl.add_cpe("P2", "a", "0", 1.0, 0.7)
        system = assemble_mna(nl)
        assert isinstance(system, MultiTermSystem)
        assert [o for o, _ in system.terms] == [0.7, 0.3, 0.0]

    def test_output_matrix_selector(self):
        nl = Netlist.from_spice("I1 0 a 1m\nR1 a b 1k\nR2 b 0 1k")
        C = output_matrix(nl, ["b"], 2)
        np.testing.assert_array_equal(C, [[0.0, 1.0]])

    def test_rejects_empty_netlist(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            assemble_mna(nl)


class TestSimulationConsistency:
    def test_rc_charging_waveform(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "n", Constant(1e-3))
        nl.add_resistor("R1", "n", "0", 1e3)
        nl.add_capacitor("C1", "n", "0", 1e-6)
        system = assemble_mna(nl, outputs=["n"])
        res = simulate_opm(system, nl.input_function(), (5e-3, 500))
        t = res.grid.midpoints
        np.testing.assert_allclose(
            res.outputs(t)[0], 1.0 - np.exp(-t / 1e-3), atol=2e-4
        )

    def test_lc_oscillation_frequency(self):
        # parallel LC driven by a brief pulse: rings at 1/sqrt(LC)
        from repro.circuits import RaisedCosinePulse

        L, Cv = 1e-9, 1e-12  # w0 = 1/sqrt(LC) ~ 3.16e10 rad/s
        nl = Netlist()
        nl.add_current_source("I1", "0", "n", RaisedCosinePulse(1e-3, width=2e-11))
        nl.add_inductor("L1", "n", "0", L)
        nl.add_capacitor("C1", "n", "0", Cv)
        nl.add_resistor("R1", "n", "0", 1e6)  # tiny loss for DC path
        system = assemble_mna(nl, outputs=["n"])
        res = simulate_opm(system, nl.input_function(), (2e-9, 4000))
        v = res.output_coefficients[0]
        # count zero crossings after the pulse -> period ~ 2 pi sqrt(LC)
        tail = v[200:]
        crossings = np.sum(np.diff(np.sign(tail)) != 0)
        period = 2.0 * np.pi * np.sqrt(L * Cv)
        expected = 2.0 * (2e-9 * (3800 / 4000)) / period
        assert abs(crossings - expected) < 0.15 * expected


class TestSparseMode:
    """Storage of the emitted E/A matrices (engine sparse-aware path)."""

    def small_rc(self):
        nl = Netlist()
        nl.add_current_source("I1", "0", "n", Constant(1e-3))
        nl.add_resistor("R1", "n", "0", 1e3)
        nl.add_capacitor("C1", "n", "0", 1e-6)
        return nl

    def big_ladder(self):
        from repro.circuits import rc_ladder_netlist

        return rc_ladder_netlist(200)

    def test_small_model_emitted_dense(self):
        system = assemble_mna(self.small_rc())
        assert not sp.issparse(system.E) and not sp.issparse(system.A)
        assert not system.is_sparse

    def test_large_model_stays_sparse(self):
        system = assemble_mna(self.big_ladder())
        assert sp.issparse(system.E) and sp.issparse(system.A)
        assert system.is_sparse

    def test_forced_modes(self):
        always = assemble_mna(self.small_rc(), sparse="always")
        assert sp.issparse(always.E)
        never = assemble_mna(self.big_ladder(), sparse="never")
        assert not sp.issparse(never.E)

    def test_storage_does_not_change_solution(self):
        nl = self.big_ladder()
        res_sp = simulate_opm(assemble_mna(nl, sparse="always"), 1.0, (1.0, 64))
        res_de = simulate_opm(assemble_mna(nl, sparse="never"), 1.0, (1.0, 64))
        np.testing.assert_allclose(
            res_sp.coefficients, res_de.coefficients, rtol=1e-9, atol=1e-12
        )

    def test_fractional_model_respects_mode(self):
        nl = Netlist.from_spice(
            """
            I1 0 a 1.0
            R1 a 0 1.0
            P1 a 0 1.0 0.5
            """
        )
        system = assemble_mna(nl, sparse="always")
        assert isinstance(system, FractionalDescriptorSystem)
        assert sp.issparse(system.E)
        system_d = assemble_mna(nl)  # 1 state < threshold -> dense
        assert not sp.issparse(system_d.E)

    def test_invalid_mode_rejected(self):
        with pytest.raises(NetlistError, match="sparse"):
            assemble_mna(self.small_rc(), sparse="maybe")


class TestRestamp:
    """State-layout checks for mid-run pencil re-stamps (event netlists)."""

    BASE = """
    I1 0 a 1m
    R1 a b 1k
    C1 b 0 1u
    L1 a 0 1m
    """

    def base(self):
        return Netlist.from_spice(self.BASE)

    def test_extra_resistor_is_compatible(self):
        closed = Netlist.from_spice(self.BASE + "R2 b 0 500\n")
        base_sys = assemble_mna(self.base())
        new_sys = assemble_mna_restamp(closed, self.base())
        assert new_sys.n_states == base_sys.n_states
        # only the conductance stamp changed
        assert not np.allclose(dense(new_sys.A), dense(base_sys.A))
        np.testing.assert_array_equal(dense(new_sys.E), dense(base_sys.E))

    def test_node_order_mismatch_rejected(self):
        # same elements, nodes declared in a different order -> the state
        # vectors would silently permute
        reordered = Netlist.from_spice(
            """
            C1 b 0 1u
            I1 0 a 1m
            R1 a b 1k
            L1 a 0 1m
            """
        )
        with pytest.raises(NetlistError, match="same nodes in the same order"):
            assemble_mna_restamp(reordered, self.base())

    def test_missing_inductor_rejected(self):
        no_l = Netlist.from_spice(
            """
            I1 0 a 1m
            R1 a b 1k
            C1 b 0 1u
            """
        )
        with pytest.raises(NetlistError, match="inductor"):
            assemble_mna_restamp(no_l, self.base())

    def test_extra_channel_rejected(self):
        extra = Netlist.from_spice(self.BASE + "I2 0 b 1m\n")
        with pytest.raises(NetlistError, match="channels"):
            assemble_mna_restamp(extra, self.base())

    def test_restamped_march_is_continuous(self):
        """End-to-end: marched event solve keeps E x continuous."""
        from repro import Event, Simulator

        base_sys = assemble_mna(self.base())
        closed = Netlist.from_spice(self.BASE + "R2 b 0 500\n")
        closed_sys = assemble_mna_restamp(closed, self.base())
        sim = Simulator(base_sys, (1e-3, 32))
        result = sim.march(
            self.base().input_function(),
            4e-3,
            events=[Event(t=2e-3, system=closed_sys, label="close")],
        )
        assert result.info["stamps"] == 2
        # E x is continuous at the boundary: compare the last pre-event
        # and first post-event coefficients (within one-interval slew)
        pre = result[1].coefficients[:, -1]
        post = result[2].coefficients[:, 0]
        E = dense(base_sys.E)
        assert np.linalg.norm(E @ (post - pre)) < 1e-2 * max(
            np.linalg.norm(E @ pre), 1e-12
        )

"""Tests for the typed analysis cards (.tran / .ac / .ic / .options)."""

import numpy as np
import pytest

from repro.circuits import AcCard, AnalysisSpec, TranCard
from repro.errors import NetlistError


class TestTranCard:
    def test_steps_rounding(self):
        assert TranCard(tstep=1e-5, tstop=5e-3).steps == 500
        assert TranCard(tstep=3e-4, tstop=1e-3).steps == 3

    def test_steps_never_zero(self):
        assert TranCard(tstep=1e-3, tstop=1e-3).steps == 1

    def test_validation(self):
        with pytest.raises(NetlistError, match="positive"):
            TranCard(tstep=-1.0, tstop=1.0)
        with pytest.raises(NetlistError, match="exceeds"):
            TranCard(tstep=2.0, tstop=1.0)
        with pytest.raises(NetlistError, match="tstart"):
            TranCard(tstep=0.1, tstop=1.0, tstart=2.0)


class TestAcCard:
    def test_dec_grid(self):
        freqs = AcCard("dec", 2, 1.0, 100.0).frequencies()
        np.testing.assert_allclose(
            freqs, [1.0, 10**0.5, 10.0, 10**1.5, 100.0]
        )

    def test_dec_grid_clamped_to_fstop(self):
        freqs = AcCard("dec", 3, 1.0, 50.0).frequencies()
        assert freqs[-1] == pytest.approx(50.0)
        assert np.all(np.diff(freqs) > 0)

    def test_oct_grid(self):
        freqs = AcCard("oct", 1, 1.0, 8.0).frequencies()
        np.testing.assert_allclose(freqs, [1.0, 2.0, 4.0, 8.0])

    def test_lin_grid(self):
        np.testing.assert_allclose(
            AcCard("lin", 5, 0.5, 2.5).frequencies(), [0.5, 1.0, 1.5, 2.0, 2.5]
        )

    def test_omegas(self):
        card = AcCard("lin", 2, 1.0, 2.0)
        np.testing.assert_allclose(card.omegas(), 2 * np.pi * card.frequencies())

    def test_validation(self):
        with pytest.raises(NetlistError, match="variation"):
            AcCard("log", 10, 1.0, 10.0)
        with pytest.raises(NetlistError, match="point"):
            AcCard("dec", 0, 1.0, 10.0)
        with pytest.raises(NetlistError, match="fstart"):
            AcCard("dec", 10, 0.0, 10.0)
        with pytest.raises(NetlistError, match="fstart"):
            AcCard("dec", 10, 100.0, 10.0)


class TestAnalysisSpec:
    def test_typed_option_accessors(self):
        spec = AnalysisSpec()
        spec.set_option("basis", "Legendre")
        spec.set_option("m", "64")
        spec.set_option("windows", "4")
        spec.set_option("method", "OPM")
        spec.set_option("backend", "sparse")
        assert spec.basis == "legendre" and spec.m == 64
        assert spec.windows == 4 and spec.method == "opm"
        assert spec.backend == "sparse"

    def test_unknown_options_retained(self):
        spec = AnalysisSpec()
        spec.set_option("reltol", "1e-6")
        assert spec.extra_options == {"reltol": "1e-6"}
        assert spec.options == {}

    def test_integer_validation(self):
        spec = AnalysisSpec()
        with pytest.raises(NetlistError, match="integer"):
            spec.set_option("m", "lots")
        with pytest.raises(NetlistError, match=">= 1"):
            spec.set_option("windows", "0")

    def test_memory_options(self):
        spec = AnalysisSpec()
        spec.set_option("memory", "SOE")
        spec.set_option("memory_rtol", "1e-8")
        assert spec.memory == "soe"
        assert spec.memory_rtol == 1e-8

    def test_memory_rtol_validation(self):
        spec = AnalysisSpec()
        with pytest.raises(NetlistError, match="number"):
            spec.set_option("memory_rtol", "tight")
        with pytest.raises(NetlistError, match=r"\(0, 1\)"):
            spec.set_option("memory_rtol", "2.0")

    def test_memory_defaults_to_none(self):
        spec = AnalysisSpec()
        assert spec.memory is None and spec.memory_rtol is None

    def test_has_analyses(self):
        spec = AnalysisSpec()
        assert not spec.has_analyses
        spec.tran = TranCard(tstep=1e-3, tstop=1.0)
        assert spec.has_analyses

    def test_repr_summarises(self):
        spec = AnalysisSpec()
        assert "empty" in repr(spec)
        spec.tran = TranCard(tstep=1e-3, tstop=1.0)
        spec.ic["a"] = 1.0
        text = repr(spec)
        assert "tran=1s/1000" in text and "ic(1)" in text

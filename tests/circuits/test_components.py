"""Tests for circuit element records."""

import pytest

from repro.circuits import CPE, Capacitor, CurrentSource, Inductor, Resistor, VoltageSource
from repro.errors import NetlistError


class TestResistor:
    def test_conductance(self):
        assert Resistor("R1", "a", "b", resistance=4.0).conductance == 0.25

    def test_rejects_nonpositive(self):
        with pytest.raises(NetlistError, match="positive"):
            Resistor("R1", "a", "b", resistance=0.0)

    def test_rejects_same_node(self):
        with pytest.raises(NetlistError, match="both terminals"):
            Resistor("R1", "a", "a", resistance=1.0)

    def test_rejects_non_string_nodes(self):
        with pytest.raises(NetlistError):
            Resistor("R1", 1, 2, resistance=1.0)

    def test_frozen(self):
        r = Resistor("R1", "a", "b", resistance=1.0)
        with pytest.raises(AttributeError):
            r.resistance = 2.0


class TestDynamicElements:
    def test_capacitor_validation(self):
        assert Capacitor("C1", "a", "0", capacitance=1e-12).capacitance == 1e-12
        with pytest.raises(NetlistError):
            Capacitor("C1", "a", "0", capacitance=-1e-12)

    def test_inductor_validation(self):
        assert Inductor("L1", "a", "b", inductance=1e-9).inductance == 1e-9
        with pytest.raises(NetlistError):
            Inductor("L1", "a", "b", inductance=0.0)


class TestCPE:
    def test_valid_range(self):
        cpe = CPE("P1", "a", "0", q=1e-6, alpha=0.5)
        assert cpe.alpha == 0.5 and cpe.q == 1e-6

    def test_alpha_one_allowed(self):
        assert CPE("P1", "a", "0", q=1.0, alpha=1.0).alpha == 1.0

    @pytest.mark.parametrize("bad_alpha", [0.0, -0.5, 1.5])
    def test_rejects_alpha_outside_unit(self, bad_alpha):
        with pytest.raises(NetlistError, match="alpha"):
            CPE("P1", "a", "0", q=1.0, alpha=bad_alpha)

    def test_rejects_nonpositive_q(self):
        with pytest.raises(NetlistError):
            CPE("P1", "a", "0", q=0.0, alpha=0.5)


class TestSources:
    def test_current_source_channel(self):
        src = CurrentSource("I1", "0", "n1", channel=2, scale=1e-3)
        assert src.channel == 2 and src.scale == 1e-3

    def test_rejects_negative_channel(self):
        with pytest.raises(NetlistError):
            CurrentSource("I1", "0", "n1", channel=-1)

    def test_voltage_source(self):
        src = VoltageSource("V1", "vdd", "0", channel=0, scale=1.8)
        assert src.scale == 1.8

    def test_voltage_rejects_negative_channel(self):
        with pytest.raises(NetlistError):
            VoltageSource("V1", "a", "0", channel=-2)

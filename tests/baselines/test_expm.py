"""Tests for the matrix-exponential reference solver."""

import numpy as np
import pytest

from repro.baselines import simulate_expm
from repro.core import DescriptorSystem
from repro.errors import SolverError


class TestExactness:
    def test_constant_input_machine_precision(self, scalar_ode):
        res = simulate_expm(scalar_ode, 1.0, 5.0, 37)
        exact = 1.0 - np.exp(-res.times)
        np.testing.assert_allclose(res.state_values[0], exact, atol=1e-13)

    def test_descriptor_with_invertible_e(self):
        system = DescriptorSystem([[2.0]], [[-2.0]], [[2.0]])  # tau = 1
        res = simulate_expm(system, 1.0, 3.0, 10)
        np.testing.assert_allclose(
            res.state_values[0], 1.0 - np.exp(-res.times), atol=1e-13
        )

    def test_oscillator_energy_exact(self):
        # undamped oscillator with zero input: rotation matrix steps
        A = np.array([[0.0, 1.0], [-1.0, 0.0]])
        system = DescriptorSystem(np.eye(2), A, np.zeros((2, 1)), x0=[1.0, 0.0])
        res = simulate_expm(system, 0.0, 10.0, 100)
        energy = np.sum(res.state_values**2, axis=0)
        np.testing.assert_allclose(energy, 1.0, atol=1e-12)

    def test_time_varying_input_second_order(self, scalar_ode):
        t_probe = np.linspace(0.5, 5.5, 7)
        exact = 0.5 * (np.sin(t_probe) - np.cos(t_probe) + np.exp(-t_probe))
        errs = [
            np.max(np.abs(
                simulate_expm(scalar_ode, lambda t: np.sin(t), 6.0, n).states(t_probe)[0]
                - exact))
            for n in (50, 100)
        ]
        assert errs[1] < errs[0] / 3.0  # O(h^2) from input averaging

    def test_x0(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[4.0])
        res = simulate_expm(system, 0.0, 2.0, 16)
        np.testing.assert_allclose(
            res.state_values[0], 4.0 * np.exp(-res.times), atol=1e-13
        )


class TestValidation:
    def test_rejects_singular_e(self):
        E = np.array([[1.0, 0.0], [0.0, 0.0]])
        system = DescriptorSystem(E, -np.eye(2), np.ones((2, 1)))
        with pytest.raises(SolverError, match="invertible E"):
            simulate_expm(system, 1.0, 1.0, 10)

    def test_rejects_fractional(self, scalar_fde):
        with pytest.raises(SolverError):
            simulate_expm(scalar_fde, 1.0, 1.0, 10)

    def test_rejects_large_systems(self):
        n = 700
        system = DescriptorSystem(np.eye(n), -np.eye(n), np.ones((n, 1)))
        with pytest.raises(SolverError, match="dense reference"):
            simulate_expm(system, 1.0, 1.0, 4)

    def test_constant_input_detection(self, scalar_ode):
        res = simulate_expm(scalar_ode, 2.5, 1.0, 8)
        assert res.info["constant_input"] is True
        res2 = simulate_expm(scalar_ode, lambda t: np.sin(t), 1.0, 8)
        assert res2.info["constant_input"] is False

"""Tests for the frequency-domain FFT baseline (Table I method)."""

import numpy as np
import pytest

from repro.baselines import simulate_fft
from repro.core import DescriptorSystem, FractionalDescriptorSystem, simulate_opm
from repro.circuits import fractional_line_model
from repro.errors import SolverError


def pulse(t):
    """Smooth compactly-supported input (periodisation-friendly)."""
    t = np.asarray(t)
    return np.where((t > 0) & (t < 2.0), 0.5 * (1 - np.cos(np.pi * t)), 0.0)


class TestFractionalAccuracy:
    def test_converges_to_opm_with_more_samples(self):
        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-4.0]], [[4.0]])
        opm = simulate_opm(system, pulse, (8.0, 2048))
        t = np.linspace(0.3, 7.5, 25)
        errs = []
        for n in (8, 100, 512):
            fft_res = simulate_fft(system, pulse, 8.0, n)
            errs.append(np.max(np.abs(fft_res.states(t)[0] - opm.states(t)[0])))
        assert errs[1] < errs[0] / 3.0  # paper's FFT-1 vs FFT-2 ordering
        assert errs[2] <= errs[1]

    def test_integer_order_special_case(self, scalar_ode):
        # alpha=1 with a periodic-friendly decaying pulse
        system = DescriptorSystem([[1.0]], [[-4.0]], [[4.0]])
        fft_res = simulate_fft(system, pulse, 8.0, 1024)
        opm = simulate_opm(system, pulse, (8.0, 2048))
        t = np.linspace(0.5, 7.0, 17)
        np.testing.assert_allclose(fft_res.states(t)[0], opm.states(t)[0], atol=2e-2)

    def test_mimo_transmission_line(self):
        model = fractional_line_model()
        u = lambda t: np.vstack([pulse(t / 1e-9), np.zeros_like(t)])
        res = simulate_fft(model, u, 2.7e-9, 64)
        assert res.state_values.shape == (7, 64)
        y = res.output_values
        assert y.shape == (2, 64)

    def test_output_is_real(self):
        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
        res = simulate_fft(system, pulse, 4.0, 32)
        assert res.state_values.dtype.kind == "f"


class TestBookkeeping:
    def test_complex_solve_count(self):
        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
        res = simulate_fft(system, pulse, 4.0, 100)
        assert res.info["complex_solves"] == 51  # N/2 + 1

    def test_rejects_singular_dc(self):
        # A singular at DC: (j0)^alpha E - A = -A not invertible
        system = FractionalDescriptorSystem(
            0.5, np.eye(2), np.zeros((2, 2)), np.ones((2, 1))
        )
        with pytest.raises(SolverError, match="singular"):
            simulate_fft(system, pulse, 1.0, 8)

    def test_rejects_x0(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[1.0])
        with pytest.raises(SolverError, match="initial"):
            simulate_fft(system, pulse, 1.0, 8)

    def test_sample_times_layout(self):
        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
        res = simulate_fft(system, pulse, 4.0, 8)
        np.testing.assert_allclose(res.times, np.arange(8) * 0.5)

    def test_scalar_input(self):
        # constant input on a nonsingular-at-DC system: response constant
        system = FractionalDescriptorSystem(0.5, [[1.0]], [[-2.0]], [[2.0]])
        res = simulate_fft(system, 1.0, 4.0, 16)
        np.testing.assert_allclose(res.state_values, np.ones((1, 16)), atol=1e-10)

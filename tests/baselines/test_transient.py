"""Tests for the classical transient-analysis baselines (Table II methods)."""

import numpy as np
import pytest

from repro.baselines import simulate_transient
from repro.core import DescriptorSystem
from repro.errors import ModelError, SolverError


class TestAccuracyOrders:
    @pytest.mark.parametrize(
        "method,expected_order", [("backward-euler", 1.0), ("trapezoidal", 2.0), ("gear2", 2.0)]
    )
    def test_convergence_order(self, scalar_ode, method, expected_order):
        t = np.linspace(0.5, 4.5, 9)
        exact = 1.0 - np.exp(-t)
        errs = [
            np.max(np.abs(simulate_transient(scalar_ode, 1.0, 5.0, n, method=method).states(t)[0] - exact))
            for n in (100, 200, 400)
        ]
        rate = np.log2(errs[0] / errs[2]) / 2.0
        assert abs(rate - expected_order) < 0.35

    def test_trapezoidal_beats_backward_euler(self, scalar_ode):
        t = np.linspace(0.5, 4.5, 9)
        exact = 1.0 - np.exp(-t)
        be = simulate_transient(scalar_ode, 1.0, 5.0, 200, method="backward-euler")
        tr = simulate_transient(scalar_ode, 1.0, 5.0, 200, method="trapezoidal")
        err_be = np.max(np.abs(be.states(t)[0] - exact))
        err_tr = np.max(np.abs(tr.states(t)[0] - exact))
        assert err_tr < err_be / 50.0

    def test_sinusoidal_input(self, scalar_ode):
        res = simulate_transient(scalar_ode, lambda t: np.sin(t), 6.0, 1200)
        t = np.linspace(0.5, 5.5, 9)
        exact = 0.5 * (np.sin(t) - np.cos(t) + np.exp(-t))
        np.testing.assert_allclose(res.states(t)[0], exact, atol=1e-5)


class TestDAE:
    def test_algebraic_constraint_enforced(self):
        E = np.array([[1.0, 0.0], [0.0, 0.0]])
        A = np.array([[-1.0, 0.0], [-1.0, 1.0]])
        B = np.array([[1.0], [0.0]])
        system = DescriptorSystem(E, A, B)
        for method in ("backward-euler", "trapezoidal", "gear2"):
            res = simulate_transient(system, 1.0, 2.0, 100, method=method)
            # x2 = x1 at all nodes after the start
            np.testing.assert_allclose(
                res.state_values[0, 1:], res.state_values[1, 1:], atol=1e-9
            )

    def test_x0_honoured(self):
        system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]], x0=[5.0])
        res = simulate_transient(system, 0.0, 1.0, 100)
        assert res.state_values[0, 0] == 5.0
        np.testing.assert_allclose(
            res.states([1.0])[0], 5.0 * np.exp(-1.0), atol=1e-4
        )


class TestBookkeeping:
    def test_single_factorisation(self, scalar_ode):
        for method in ("backward-euler", "trapezoidal"):
            res = simulate_transient(scalar_ode, 1.0, 1.0, 50, method=method)
            assert res.info["factorisations"] == 1

    def test_gear_two_factorisations(self, scalar_ode):
        # bootstrap BE step + BDF2 steps
        res = simulate_transient(scalar_ode, 1.0, 1.0, 50, method="gear2")
        assert res.info["factorisations"] == 2

    def test_rejects_unknown_method(self, scalar_ode):
        with pytest.raises(SolverError, match="method"):
            simulate_transient(scalar_ode, 1.0, 1.0, 10, method="rk4")

    def test_rejects_fractional(self, scalar_fde):
        with pytest.raises(SolverError, match="first-order"):
            simulate_transient(scalar_fde, 1.0, 1.0, 10)

    def test_rejects_bad_input(self, scalar_ode):
        with pytest.raises(ModelError):
            simulate_transient(scalar_ode, np.zeros(11), 1.0, 10)

    def test_rejects_wrong_system_type(self):
        with pytest.raises(TypeError):
            simulate_transient(123, 1.0, 1.0, 10)

    def test_nodes_include_origin(self, scalar_ode):
        res = simulate_transient(scalar_ode, 1.0, 1.0, 10)
        assert res.times[0] == 0.0 and res.times[-1] == 1.0
        assert res.times.size == 11

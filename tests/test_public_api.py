"""Public-API contract tests: exports resolve, docstrings exist."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.opmat",
    "repro.basis",
    "repro.core",
    "repro.engine",
    "repro.fractional",
    "repro.baselines",
    "repro.circuits",
    "repro.analysis",
    "repro.io",
    "repro.experiments",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_every_public_item_documented(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.ismodule(obj):
                continue
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if not (inspect.getdoc(meth) or "").strip():
                        missing.append(f"{module_name}.{name}.{meth_name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_top_level_docstring_mentions_paper(self):
        assert "DATE 2012" in repro.__doc__


class TestErrorTaxonomy:
    def test_every_error_exported_top_level(self):
        from repro import errors

        for name in errors.__all__:
            assert hasattr(repro, name), name

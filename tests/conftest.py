"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DescriptorSystem, FractionalDescriptorSystem


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that draw random matrices."""
    return np.random.default_rng(20120312)  # DATE'12 conference date


@pytest.fixture
def scalar_ode() -> DescriptorSystem:
    """The workhorse scalar ODE ``x' = -x + u``."""
    return DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])


@pytest.fixture
def scalar_fde() -> FractionalDescriptorSystem:
    """Scalar half-order FDE ``d^1/2 x = -x + u``."""
    return FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])


def stable_dense_system(rng: np.random.Generator, n: int, p: int = 1) -> DescriptorSystem:
    """Random well-conditioned stable dense descriptor system."""
    e = np.eye(n) + 0.1 * rng.standard_normal((n, n))
    a = -np.eye(n) * (1.0 + rng.uniform(0.0, 2.0, size=n)) + 0.2 * rng.standard_normal((n, n))
    a = a - a.T - np.eye(n)  # push eigenvalues left
    b = rng.standard_normal((n, p))
    return DescriptorSystem(e, a, b)

"""Property-based tests for adaptive-grid operational matrices."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opmat import (
    differentiation_matrix_adaptive,
    fractional_differentiation_matrix_adaptive,
    integration_matrix_adaptive,
)

# well-separated random steps (eig route valid, conditioning bounded)
separated_steps = st.lists(
    st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=10
).map(lambda vals: np.cumsum(np.asarray(vals)) / sum(vals))


@given(steps=separated_steps)
@settings(max_examples=30, deadline=None)
def test_adaptive_fractional_semigroup_half(steps):
    """D~^{1/2} D~^{1/2} = D~ on random distinct grids."""
    half = fractional_differentiation_matrix_adaptive(0.5, steps, method="schur")
    one = differentiation_matrix_adaptive(steps)
    scale = np.max(np.abs(one))
    np.testing.assert_allclose(half @ half, one, atol=1e-8 * scale)


@given(steps=separated_steps, alpha=st.floats(0.2, 1.8))
@settings(max_examples=30, deadline=None)
def test_adaptive_fractional_diagonal(steps, alpha):
    """Diagonal of D~^alpha equals (2/h_j)^alpha (paper eq. (25))."""
    d = fractional_differentiation_matrix_adaptive(alpha, steps, method="schur")
    np.testing.assert_allclose(
        np.diag(d), (2.0 / steps) ** alpha, rtol=1e-6
    )


@given(steps=separated_steps, alpha=st.floats(0.3, 1.7))
@settings(max_examples=25, deadline=None)
def test_adaptive_fractional_inverse_pair(steps, alpha):
    """D~^alpha D~^{-...}: composing with the complementary power gives D~."""
    part = fractional_differentiation_matrix_adaptive(alpha, steps, method="schur")
    rest = fractional_differentiation_matrix_adaptive(2.0 - alpha, steps, method="schur")
    square = differentiation_matrix_adaptive(steps)
    scale = np.max(np.abs(square @ square))
    np.testing.assert_allclose(part @ rest, square @ square, atol=5e-7 * scale)


@given(steps=separated_steps)
@settings(max_examples=30, deadline=None)
def test_adaptive_pair_inverse(steps):
    H = integration_matrix_adaptive(steps)
    D = differentiation_matrix_adaptive(steps)
    np.testing.assert_allclose(D @ H, np.eye(steps.size), atol=1e-9)

"""Property-based tests of the operational-matrix algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opmat import (
    differentiation_matrix,
    fractional_differentiation_matrix,
    integration_matrix,
    integration_matrix_adaptive,
    differentiation_matrix_adaptive,
    toeplitz_inverse,
    toeplitz_multiply,
    tustin_power_coefficients,
    upper_toeplitz,
)

orders = st.floats(min_value=0.05, max_value=2.5, allow_nan=False, allow_infinity=False)
sizes = st.integers(min_value=1, max_value=24)
steps_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=10.0, allow_nan=False), min_size=1, max_size=12
)
coeff_lists = st.lists(
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False), min_size=1, max_size=12
)


@given(a=orders, b=orders, m=sizes)
@settings(max_examples=60, deadline=None)
def test_tustin_semigroup(a, b, m):
    """rho_a * rho_b = rho_{a+b} in the truncated ring."""
    left = np.convolve(tustin_power_coefficients(a, m), tustin_power_coefficients(b, m))[:m]
    right = tustin_power_coefficients(a + b, m)
    scale = np.max(np.abs(right)) + 1.0
    np.testing.assert_allclose(left, right, atol=1e-9 * scale)


@given(a=orders, m=sizes)
@settings(max_examples=40, deadline=None)
def test_tustin_inverse_pair(a, m):
    """rho_a * rho_{-a} = 1."""
    product = np.convolve(
        tustin_power_coefficients(a, m), tustin_power_coefficients(-a, m)
    )[:m]
    identity = np.zeros(m)
    identity[0] = 1.0
    scale = np.max(np.abs(tustin_power_coefficients(a, m))) + 1.0
    np.testing.assert_allclose(product, identity, atol=1e-9 * scale**2)


@given(m=sizes, h=st.floats(min_value=1e-3, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_integration_differentiation_inverse(m, h):
    """H D = I for every size and step."""
    np.testing.assert_allclose(
        integration_matrix(m, h) @ differentiation_matrix(m, h),
        np.eye(m),
        atol=1e-9,
    )


@given(steps=steps_strategy)
@settings(max_examples=40, deadline=None)
def test_adaptive_inverse(steps):
    """H~ D~ = I on arbitrary positive grids."""
    steps = np.asarray(steps)
    H = integration_matrix_adaptive(steps)
    D = differentiation_matrix_adaptive(steps)
    # conditioning degrades with extreme step ratios; scale tolerance
    ratio = float(steps.max() / steps.min())
    np.testing.assert_allclose(H @ D, np.eye(steps.size), atol=1e-9 * max(ratio, 1.0))


@given(coeffs=coeff_lists)
@settings(max_examples=60, deadline=None)
def test_toeplitz_multiply_matches_matrices(coeffs):
    """Ring multiplication = matrix multiplication."""
    a = np.asarray(coeffs)
    b = a[::-1].copy()
    np.testing.assert_allclose(
        upper_toeplitz(toeplitz_multiply(a, b)),
        upper_toeplitz(a) @ upper_toeplitz(b),
        atol=1e-9,
    )


@given(coeffs=coeff_lists)
@settings(max_examples=60, deadline=None)
def test_toeplitz_inverse_round_trip(coeffs):
    """inv(c) * c = 1 whenever c_0 is away from zero."""
    c = np.asarray(coeffs)
    c[0] = 2.0 + abs(c[0])  # keep well-conditioned
    inv = toeplitz_inverse(c)
    product = toeplitz_multiply(c, inv)
    identity = np.zeros(c.size)
    identity[0] = 1.0
    np.testing.assert_allclose(product, identity, atol=1e-7)


@given(a=st.floats(min_value=0.1, max_value=1.9), m=st.integers(2, 16))
@settings(max_examples=40, deadline=None)
def test_fractional_matrix_triangular_toeplitz(a, m):
    """D^alpha stays upper-triangular Toeplitz for every order."""
    D = fractional_differentiation_matrix(a, m, 0.5)
    assert np.all(D[np.tril_indices(m, -1)] == 0.0)
    for k in range(m):
        diag = np.diagonal(D, offset=k)
        np.testing.assert_allclose(diag, diag[0], rtol=1e-12)

"""Tests for differential operational matrices (paper eqs. (7)-(8), (17))."""

import numpy as np
import pytest

from repro.opmat import (
    differentiation_coefficients,
    differentiation_matrix,
    differentiation_matrix_adaptive,
    integration_matrix,
    integration_matrix_adaptive,
)


class TestDifferentiationMatrix:
    def test_matches_paper_eq7_pattern(self):
        h = 2.0  # so 2/h = 1 and entries show the raw pattern
        expected = np.array(
            [
                [1, -2, 2, -2],
                [0, 1, -2, 2],
                [0, 0, 1, -2],
                [0, 0, 0, 1],
            ],
            dtype=float,
        )
        np.testing.assert_allclose(differentiation_matrix(4, h), expected)

    def test_closed_form(self):
        from repro.opmat import shift_matrix

        m, h = 6, 0.7
        q = shift_matrix(m)
        closed = (2.0 / h) * (np.eye(m) - q) @ np.linalg.inv(np.eye(m) + q)
        np.testing.assert_allclose(differentiation_matrix(m, h), closed)

    def test_inverse_of_integration(self):
        m, h = 10, 0.05
        np.testing.assert_allclose(
            integration_matrix(m, h) @ differentiation_matrix(m, h),
            np.eye(m),
            atol=1e-12,
        )

    def test_coefficients_match_matrix_first_row(self):
        m, h = 7, 0.3
        np.testing.assert_allclose(
            differentiation_coefficients(m, h), differentiation_matrix(m, h)[0]
        )

    def test_differentiates_linear_ramp(self):
        # cell averages of t differentiate to the constant 1 (from-zero
        # derivative: exact for functions with f(0) = 0 in the span)
        m, h = 16, 0.125
        D = differentiation_matrix(m, h)
        mids = (np.arange(m) + 0.5) * h
        derivative = D.T @ mids
        np.testing.assert_allclose(derivative, np.ones(m), atol=1e-9)

    def test_eigenvalue_multiplicity(self):
        # the paper's warning: single eigenvalue 2/h with multiplicity m
        m, h = 5, 0.4
        eigvals = np.linalg.eigvals(differentiation_matrix(m, h))
        np.testing.assert_allclose(eigvals, np.full(m, 2.0 / h))


class TestAdaptiveDifferentiationMatrix:
    def test_reduces_to_uniform(self):
        m, h = 6, 0.2
        np.testing.assert_allclose(
            differentiation_matrix_adaptive([h] * m), differentiation_matrix(m, h)
        )

    def test_inverse_of_adaptive_integration(self):
        steps = np.array([0.3, 0.1, 0.45, 0.15, 0.2])
        H = integration_matrix_adaptive(steps)
        D = differentiation_matrix_adaptive(steps)
        np.testing.assert_allclose(H @ D, np.eye(5), atol=1e-12)

    def test_column_scaling(self):
        steps = np.array([0.5, 0.25])
        D = differentiation_matrix_adaptive(steps)
        expected = np.array(
            [
                [2.0 / 0.5, -2.0 * 2.0 / 0.25],
                [0.0, 2.0 / 0.25],
            ]
        )
        np.testing.assert_allclose(D, expected)

    def test_distinct_eigenvalues_on_distinct_steps(self):
        # the property paper eq. (25) relies on
        steps = np.array([0.1, 0.2, 0.4, 0.3])
        D = differentiation_matrix_adaptive(steps)
        eigvals = np.sort(np.linalg.eigvals(D).real)
        np.testing.assert_allclose(eigvals, np.sort(2.0 / steps))

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            differentiation_matrix_adaptive([0.1, 0.0])

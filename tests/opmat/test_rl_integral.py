"""Tests for the Riemann-Liouville block-pulse integration matrix."""

import numpy as np
import pytest
from scipy.special import gamma

from repro.errors import OperationalMatrixError
from repro.opmat import (
    integration_matrix,
    rl_integration_coefficients,
    rl_integration_matrix,
)


class TestRLIntegrationMatrix:
    def test_alpha_one_matches_integer_matrix(self):
        m, h = 9, 0.35
        np.testing.assert_allclose(
            rl_integration_matrix(1.0, m, h), integration_matrix(m, h), rtol=1e-12
        )

    def test_first_row_closed_form(self):
        alpha, m, h = 0.5, 5, 0.2
        k = np.arange(1.0, m)
        xi = (k + 1) ** (alpha + 1) - 2 * k ** (alpha + 1) + (k - 1) ** (alpha + 1)
        expected = h**alpha / gamma(alpha + 2) * np.concatenate([[1.0], xi])
        np.testing.assert_allclose(rl_integration_coefficients(alpha, m, h), expected)

    def test_exact_projection_of_constant(self):
        # I^alpha 1 = t^alpha / Gamma(alpha+1); row sums of F^alpha must
        # equal the exact cell averages of that function
        alpha, m, h = 0.5, 32, 1.0 / 32
        F = rl_integration_matrix(alpha, m, h)
        coeffs = F.T @ np.ones(m)
        edges = np.arange(m + 1) * h
        exact_avg = (edges[1:] ** (alpha + 1) - edges[:-1] ** (alpha + 1)) / (
            h * gamma(alpha + 2.0)
        )
        np.testing.assert_allclose(coeffs, exact_avg, rtol=1e-10)

    def test_upper_triangular_toeplitz(self):
        F = rl_integration_matrix(0.7, 6, 0.1)
        np.testing.assert_array_equal(F[np.tril_indices(6, -1)], 0.0)
        for k in range(6):
            diag = np.diagonal(F, offset=k)
            np.testing.assert_allclose(diag, diag[0])

    def test_differs_from_tustin_at_finite_m(self):
        # the two constructions agree only asymptotically -- they must
        # NOT be identical at small m (that's the ablation's point)
        from repro.opmat import fractional_integration_matrix

        m, h, alpha = 8, 0.25, 0.5
        rl = rl_integration_matrix(alpha, m, h)
        tus = fractional_integration_matrix(alpha, m, h)
        assert np.max(np.abs(rl - tus)) > 1e-4

    def test_rejects_zero_alpha(self):
        with pytest.raises(OperationalMatrixError):
            rl_integration_matrix(0.0, 4, 0.1)

    def test_approximates_half_integral_of_ramp(self):
        # I^{1/2} t = t^{3/2} * Gamma(2)/Gamma(5/2)
        alpha, m, h = 0.5, 128, 1.0 / 128
        F = rl_integration_matrix(alpha, m, h)
        mids = (np.arange(m) + 0.5) * h
        approx = F.T @ mids
        exact = mids**1.5 * gamma(2.0) / gamma(2.5)
        np.testing.assert_allclose(approx, exact, atol=2e-4)

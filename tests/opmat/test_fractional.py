"""Tests for fractional differential operational matrices (paper section IV)."""

import numpy as np
import pytest

from repro.errors import OperationalMatrixError
from repro.opmat import (
    differentiation_matrix,
    differentiation_matrix_adaptive,
    fractional_differentiation_coefficients,
    fractional_differentiation_matrix,
    fractional_differentiation_matrix_adaptive,
)


class TestUniformFractionalMatrix:
    def test_paper_eq24_digit_for_digit(self):
        # D^{3/2}_{(4)} = (2/h)^{3/2} * Toeplitz(1, -3, 4.5, -5.5)
        h = 0.1
        D = fractional_differentiation_matrix(1.5, 4, h)
        scale = (2.0 / h) ** 1.5
        expected = scale * np.array(
            [
                [1.0, -3.0, 4.5, -5.5],
                [0.0, 1.0, -3.0, 4.5],
                [0.0, 0.0, 1.0, -3.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        np.testing.assert_allclose(D, expected)

    def test_paper_erratum_semigroup(self):
        # The text below eq. (24) claims (D^{3/2})^2 = D^2; the correct
        # identity is (D^{3/2})^2 = D^3 (documented in DESIGN.md).
        m, h = 6, 0.4
        D = differentiation_matrix(m, h)
        D32 = fractional_differentiation_matrix(1.5, m, h)
        np.testing.assert_allclose(D32 @ D32, np.linalg.matrix_power(D, 3), rtol=1e-12)
        with pytest.raises(AssertionError):
            np.testing.assert_allclose(
                D32 @ D32, np.linalg.matrix_power(D, 2), rtol=1e-12
            )

    def test_alpha_one_matches_first_order(self):
        m, h = 8, 0.2
        np.testing.assert_allclose(
            fractional_differentiation_matrix(1.0, m, h), differentiation_matrix(m, h)
        )

    def test_alpha_zero_is_identity(self):
        np.testing.assert_allclose(
            fractional_differentiation_matrix(0.0, 5, 0.3), np.eye(5)
        )

    def test_integer_alpha_matches_matrix_power_truncated(self):
        # D^2 via series equals the ring-truncated square of D
        m, h = 7, 0.25
        D = differentiation_matrix(m, h)
        D2_series = fractional_differentiation_matrix(2.0, m, h)
        np.testing.assert_allclose(D2_series, D @ D, rtol=1e-12)

    @pytest.mark.parametrize("a,b", [(0.3, 0.7), (0.5, 0.5), (1.2, 0.8), (0.25, 1.75)])
    def test_semigroup_property(self, a, b):
        m, h = 10, 0.15
        Da = fractional_differentiation_matrix(a, m, h)
        Db = fractional_differentiation_matrix(b, m, h)
        Dab = fractional_differentiation_matrix(a + b, m, h)
        np.testing.assert_allclose(Da @ Db, Dab, rtol=1e-10, atol=1e-8)

    def test_coefficients_match_first_row(self):
        m, h, alpha = 6, 0.4, 0.7
        np.testing.assert_allclose(
            fractional_differentiation_coefficients(alpha, m, h),
            fractional_differentiation_matrix(alpha, m, h)[0],
        )

    def test_half_derivative_of_ramp_near_analytic(self):
        # D^{1/2} t = 2 sqrt(t / pi); compare on cell averages away from 0
        m, h = 256, 1.0 / 256
        D = fractional_differentiation_matrix(0.5, m, h)
        mids = (np.arange(m) + 0.5) * h
        approx = D.T @ mids
        exact = 2.0 * np.sqrt(mids / np.pi)
        # the Tustin construction converges slowly near the t=0 kink;
        # check the bulk of the interval
        np.testing.assert_allclose(approx[m // 4 :], exact[m // 4 :], rtol=2e-2)

    def test_rejects_negative_alpha(self):
        with pytest.raises(OperationalMatrixError):
            fractional_differentiation_matrix(-0.1, 4, 0.1)


class TestAdaptiveFractionalMatrix:
    def test_squares_to_first_order(self):
        steps = np.array([0.1, 0.22, 0.17, 0.31, 0.2])
        D_half = fractional_differentiation_matrix_adaptive(0.5, steps)
        D_one = differentiation_matrix_adaptive(steps)
        np.testing.assert_allclose(D_half @ D_half, D_one, rtol=1e-7, atol=1e-8)

    def test_diagonal_entries(self):
        # paper eq. (25): diagonal must be (2/h_j)^alpha
        steps = np.array([0.2, 0.4, 0.5])
        alpha = 0.7
        D = fractional_differentiation_matrix_adaptive(alpha, steps)
        np.testing.assert_allclose(np.diag(D), (2.0 / steps) ** alpha, rtol=1e-9)

    def test_upper_triangular(self):
        steps = np.array([0.15, 0.35, 0.25, 0.45])
        D = fractional_differentiation_matrix_adaptive(0.6, steps)
        np.testing.assert_array_equal(D[np.tril_indices(4, -1)], 0.0)

    def test_eig_and_schur_agree(self):
        steps = np.array([0.1, 0.2, 0.35, 0.5, 0.75])
        d_eig = fractional_differentiation_matrix_adaptive(0.5, steps, method="eig")
        d_schur = fractional_differentiation_matrix_adaptive(0.5, steps, method="schur")
        np.testing.assert_allclose(d_eig, d_schur, rtol=1e-7, atol=1e-8)

    def test_uniform_grid_schur_matches_series(self):
        from repro.opmat import fractional_differentiation_matrix

        m, h = 5, 0.3
        d_schur = fractional_differentiation_matrix_adaptive(
            0.5, [h] * m, method="schur"
        )
        d_series = fractional_differentiation_matrix(0.5, m, h)
        np.testing.assert_allclose(d_schur, d_series, rtol=1e-8, atol=1e-8)

    def test_eig_rejects_repeated_steps(self):
        with pytest.raises(OperationalMatrixError, match="distinct"):
            fractional_differentiation_matrix_adaptive(
                0.5, [0.2, 0.2, 0.3], method="eig"
            )

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            fractional_differentiation_matrix_adaptive(0.5, [0.1, 0.2], method="magic")

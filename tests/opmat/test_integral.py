"""Tests for integral operational matrices (paper eqs. (3)-(5), (17))."""

import numpy as np
import pytest

from repro.errors import OperationalMatrixError
from repro.opmat import (
    fractional_integration_matrix,
    integration_matrix,
    integration_matrix_adaptive,
)


class TestIntegrationMatrix:
    def test_matches_paper_eq4(self):
        h = 0.5
        expected = np.array(
            [
                [h / 2, h, h],
                [0, h / 2, h],
                [0, 0, h / 2],
            ]
        )
        np.testing.assert_allclose(integration_matrix(3, h), expected)

    def test_closed_form_eq5(self):
        # H = (h/2)(I + Q)(I - Q)^{-1}
        from repro.opmat import shift_matrix

        m, h = 6, 0.3
        q = shift_matrix(m)
        closed = (h / 2.0) * (np.eye(m) + q) @ np.linalg.inv(np.eye(m) - q)
        np.testing.assert_allclose(integration_matrix(m, h), closed)

    def test_integrates_constant_exactly(self):
        # coefficients of 1 are all ones; integral of 1 is t, whose cell
        # averages are (i + 1/2) h
        m, h = 8, 0.25
        H = integration_matrix(m, h)
        ones = np.ones(m)
        integral_coeffs = H.T @ ones
        expected = (np.arange(m) + 0.5) * h
        np.testing.assert_allclose(integral_coeffs, expected)

    def test_integrates_bpf_sample_function(self):
        # exact cell averages of t^2 integrate to approximately t^3/3
        m, h = 64, 1.0 / 64
        H = integration_matrix(m, h)
        mids = (np.arange(m) + 0.5) * h
        coeffs = mids**2 + h**2 / 12.0  # exact cell averages of t^2
        approx = H.T @ coeffs
        exact = (mids**3 + mids * h**2 / 4.0) / 3.0  # exact cell averages of t^3/3
        # H integrates the piecewise-constant *representation*, which
        # differs from t^2 by O(h^2) within each cell
        np.testing.assert_allclose(approx, exact, atol=5.0 * h**2)

    @pytest.mark.parametrize("bad_h", [0.0, -1.0, np.nan])
    def test_rejects_bad_step(self, bad_h):
        with pytest.raises(ValueError):
            integration_matrix(4, bad_h)


class TestAdaptiveIntegrationMatrix:
    def test_reduces_to_uniform(self):
        m, h = 5, 0.2
        np.testing.assert_allclose(
            integration_matrix_adaptive([h] * m), integration_matrix(m, h)
        )

    def test_row_scaling_structure(self):
        steps = np.array([0.1, 0.3, 0.2])
        H = integration_matrix_adaptive(steps)
        # row i: h_i/2 on diagonal, h_i to the right
        expected = np.array(
            [
                [0.05, 0.1, 0.1],
                [0.0, 0.15, 0.3],
                [0.0, 0.0, 0.1],
            ]
        )
        np.testing.assert_allclose(H, expected)

    def test_integrates_constant_on_nonuniform_grid(self):
        steps = np.array([0.1, 0.25, 0.15, 0.4])
        H = integration_matrix_adaptive(steps)
        integral_coeffs = H.T @ np.ones(4)
        edges = np.concatenate([[0.0], np.cumsum(steps)])
        expected = 0.5 * (edges[:-1] + edges[1:])  # cell averages of t
        np.testing.assert_allclose(integral_coeffs, expected)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            integration_matrix_adaptive([0.1, -0.2, 0.3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            integration_matrix_adaptive([])


class TestFractionalIntegrationMatrix:
    def test_order_one_matches_integer(self):
        m, h = 7, 0.4
        np.testing.assert_allclose(
            fractional_integration_matrix(1.0, m, h), integration_matrix(m, h)
        )

    def test_order_zero_is_identity(self):
        np.testing.assert_allclose(fractional_integration_matrix(0.0, 5, 0.1), np.eye(5))

    def test_inverse_of_differentiation(self):
        from repro.opmat import fractional_differentiation_matrix

        m, h, alpha = 9, 0.2, 0.6
        H_a = fractional_integration_matrix(alpha, m, h)
        D_a = fractional_differentiation_matrix(alpha, m, h)
        np.testing.assert_allclose(H_a @ D_a, np.eye(m), atol=1e-10)

    def test_half_order_squares_to_full(self):
        m, h = 8, 0.5
        half = fractional_integration_matrix(0.5, m, h)
        np.testing.assert_allclose(half @ half, integration_matrix(m, h), atol=1e-12)

    def test_rejects_negative_alpha(self):
        with pytest.raises(OperationalMatrixError):
            fractional_integration_matrix(-0.5, 4, 0.1)

"""Tests for binomial / Tustin-power series coefficients."""

import numpy as np
import pytest

from repro.opmat import binomial_series, tustin_power_coefficients


class TestBinomialSeries:
    def test_integer_exponent_matches_pascal(self):
        np.testing.assert_allclose(binomial_series(3.0, 6), [1, 3, 3, 1, 0, 0])

    def test_negative_exponent_geometric(self):
        # (1 + q)^{-1} = 1 - q + q^2 - ...
        np.testing.assert_allclose(binomial_series(-1.0, 5), [1, -1, 1, -1, 1])

    def test_minus_sign_geometric(self):
        # (1 - q)^{-1} = 1 + q + q^2 + ...
        np.testing.assert_allclose(binomial_series(-1.0, 5, sign=-1.0), [1, 1, 1, 1, 1])

    def test_half_power_squares_to_linear(self):
        # (1+q)^{1/2} * (1+q)^{1/2} = (1+q), in the truncated ring
        half = binomial_series(0.5, 8)
        product = np.convolve(half, half)[:8]
        np.testing.assert_allclose(product, binomial_series(1.0, 8), atol=1e-14)

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError, match="sign"):
            binomial_series(1.0, 4, sign=2.0)

    def test_rejects_non_real_alpha(self):
        with pytest.raises(TypeError):
            binomial_series("x", 4)

    def test_rejects_nonfinite_alpha(self):
        with pytest.raises(ValueError):
            binomial_series(np.inf, 4)


class TestTustinPowerCoefficients:
    def test_paper_eq23_order_3_2(self):
        # rho_{3/2,4} = (1, -3, 9/2, -11/2) -- digits from the paper
        np.testing.assert_allclose(
            tustin_power_coefficients(1.5, 4), [1.0, -3.0, 4.5, -5.5]
        )

    def test_first_order_alternating_pattern(self):
        # the D matrix pattern of eq. (7)
        np.testing.assert_allclose(
            tustin_power_coefficients(1.0, 6), [1, -2, 2, -2, 2, -2]
        )

    def test_inverse_order_integral_pattern(self):
        # ((1+q)/(1-q)) = 1 + 2q + 2q^2 + ... -- the H matrix pattern of eq. (4)
        np.testing.assert_allclose(
            tustin_power_coefficients(-1.0, 5), [1, 2, 2, 2, 2]
        )

    def test_zero_power_is_identity(self):
        np.testing.assert_allclose(tustin_power_coefficients(0.0, 4), [1, 0, 0, 0])

    def test_semigroup_under_convolution(self):
        m = 10
        a = tustin_power_coefficients(0.7, m)
        b = tustin_power_coefficients(0.9, m)
        ab = np.convolve(a, b)[:m]
        np.testing.assert_allclose(ab, tustin_power_coefficients(1.6, m), atol=1e-12)

    def test_integer_power_matches_repeated_convolution(self):
        m = 8
        one = tustin_power_coefficients(1.0, m)
        three = np.convolve(np.convolve(one, one)[:m], one)[:m]
        np.testing.assert_allclose(three, tustin_power_coefficients(3.0, m), atol=1e-12)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            tustin_power_coefficients(0.5, 0)

"""Tests for the nilpotent shift matrix and truncated polynomial ring."""

import numpy as np
import pytest

from repro.opmat import (
    shift_matrix,
    toeplitz_coefficients,
    toeplitz_inverse,
    toeplitz_multiply,
    upper_toeplitz,
)


class TestShiftMatrix:
    def test_matches_paper_eq6(self):
        q = shift_matrix(4)
        expected = np.array(
            [
                [0, 1, 0, 0],
                [0, 0, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 0],
            ],
            dtype=float,
        )
        np.testing.assert_array_equal(q, expected)

    def test_nilpotent_of_index_m(self):
        m = 5
        q = shift_matrix(m)
        power = np.linalg.matrix_power(q, m - 1)
        assert np.any(power != 0.0)
        np.testing.assert_array_equal(np.linalg.matrix_power(q, m), np.zeros((m, m)))

    def test_size_one(self):
        np.testing.assert_array_equal(shift_matrix(1), np.zeros((1, 1)))

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            shift_matrix(bad)

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            shift_matrix(2.5)


class TestUpperToeplitz:
    def test_equals_polynomial_in_q(self):
        coeffs = np.array([2.0, -1.0, 0.5, 3.0])
        q = shift_matrix(4)
        expected = sum(c * np.linalg.matrix_power(q, k) for k, c in enumerate(coeffs))
        np.testing.assert_allclose(upper_toeplitz(coeffs), expected)

    def test_first_row_preserved(self):
        coeffs = [1.0, 2.0, 3.0]
        np.testing.assert_array_equal(upper_toeplitz(coeffs)[0], coeffs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            upper_toeplitz([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            upper_toeplitz(np.eye(2))


class TestToeplitzCoefficients:
    def test_round_trip(self):
        coeffs = np.array([1.5, -2.0, 0.0, 4.0])
        np.testing.assert_array_equal(
            toeplitz_coefficients(upper_toeplitz(coeffs)), coeffs
        )

    def test_rejects_non_toeplitz(self):
        matrix = np.triu(np.arange(16, dtype=float).reshape(4, 4))
        with pytest.raises(ValueError, match="not upper-triangular Toeplitz"):
            toeplitz_coefficients(matrix)

    def test_rejects_lower_triangular_content(self):
        matrix = upper_toeplitz([1.0, 2.0]).T
        with pytest.raises(ValueError):
            toeplitz_coefficients(matrix)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            toeplitz_coefficients(np.ones((2, 3)))


class TestRingOperations:
    def test_multiply_matches_matrix_product(self):
        a = np.array([1.0, 2.0, -1.0, 0.5])
        b = np.array([3.0, 0.0, 1.0, -2.0])
        product = toeplitz_multiply(a, b)
        np.testing.assert_allclose(
            upper_toeplitz(product), upper_toeplitz(a) @ upper_toeplitz(b)
        )

    def test_multiply_commutes(self):
        a = np.array([1.0, 4.0, 2.0])
        b = np.array([0.5, -1.0, 3.0])
        np.testing.assert_allclose(toeplitz_multiply(a, b), toeplitz_multiply(b, a))

    def test_multiply_rejects_mismatched(self):
        with pytest.raises(ValueError):
            toeplitz_multiply([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_inverse_matches_matrix_inverse(self):
        coeffs = np.array([2.0, 1.0, -0.5, 0.25])
        inv = toeplitz_inverse(coeffs)
        np.testing.assert_allclose(
            upper_toeplitz(inv), np.linalg.inv(upper_toeplitz(coeffs))
        )

    def test_inverse_identity(self):
        coeffs = np.array([1.0, 0.0, 0.0])
        np.testing.assert_allclose(toeplitz_inverse(coeffs), coeffs)

    def test_inverse_rejects_singular(self):
        with pytest.raises(ValueError, match="singular"):
            toeplitz_inverse([0.0, 1.0, 2.0])

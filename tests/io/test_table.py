"""Tests for the ASCII table renderer."""

import pytest

from repro.io import Table


class TestRender:
    def test_alignment(self):
        t = Table(["Method", "Time"])
        t.add_row(["OPM", "3.56 ms"])
        t.add_row(["FFT-1", "6 ms"])
        lines = t.render().splitlines()
        assert lines[0].startswith("Method | Time")
        assert lines[1].startswith("------ | ----")
        assert lines[2].startswith("OPM    | 3.56 ms")

    def test_title(self):
        t = Table(["A"], title="TABLE I")
        t.add_row(["x"])
        assert t.render().splitlines()[0] == "TABLE I"

    def test_column_width_follows_longest_cell(self):
        t = Table(["A", "B"])
        t.add_row(["very-long-cell", "y"])
        line = t.render().splitlines()[2]
        assert line.startswith("very-long-cell | y")

    def test_markdown(self):
        t = Table(["Method", "Err"], title="T")
        t.add_row(["OPM", "-"])
        md = t.render_markdown()
        assert "| Method | Err |" in md
        assert "|---|---|" in md
        assert "| OPM | - |" in md

    def test_str_is_render(self):
        t = Table(["A"])
        t.add_row(["1"])
        assert str(t) == t.render()


class TestValidation:
    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_rejects_ragged_row(self):
        t = Table(["A", "B"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(["only-one"])

    def test_cells_stringified(self):
        t = Table(["A"])
        t.add_row([3.14159])
        assert "3.14159" in t.render()

"""Tests for CSV output."""

import pytest

from repro.io import write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["n", "t"], [[1, 0.5], [2, 0.25]])
        lines = path.read_text().splitlines()
        assert lines == ["n,t", "1,0.5", "2,0.25"]

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])

    def test_empty_rows_ok(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", ["a"], [])
        assert path.read_text().splitlines() == ["a"]

"""Netlist-native simulation: drive a ``.cir`` file end to end.

The SPICE front door turns a deck straight into engine work: the
``.tran`` card fixes the horizon and resolution, ``.ac`` adds a
small-signal sweep, and the source cards (``SIN``/``PULSE``/``PWL``/
``EXP``) become the input waveforms -- no hand-assembled systems.
This example runs ``examples/rc_lowpass.cir`` through
:func:`repro.engine.netlist_session.simulate_netlist`, then rebuilds
the same circuit programmatically and shows the two trajectories are
*bit-identical* (same parser-to-engine path, same floats).

Run:
    python examples/netlist_transient.py
"""

from pathlib import Path

import numpy as np

from repro import Simulator
from repro.circuits import Netlist, SpiceSin, assemble_mna
from repro.engine.netlist_session import simulate_netlist
from repro.io import Table

DECK = Path(__file__).resolve().parent / "rc_lowpass.cir"


def main() -> None:
    print(f"deck: {DECK.name}")
    print(DECK.read_text())

    # -- the front door: one call runs every analysis the deck requests
    run = simulate_netlist(DECK)
    tran, scan = run.tran, run.ac
    print(f"parsed:    {run.netlist!r}")
    print(f"model:     {run.system!r}")
    print(f"transient: m={tran.coefficients.shape[1]}, {tran.info['method']}, "
          f"{tran.wall_time * 1e3:.2f} ms")
    print(f"ac sweep:  {scan!r}\n")

    t_end = run.netlist.analysis.tran.tstop
    t_print = np.linspace(t_end / 8, t_end * 0.999, 8)
    values = tran.outputs_smooth(t_print)
    table = Table(["t [s]"] + [f"v({node})" for node in run.outputs])
    for k, t in enumerate(t_print):
        table.add_row(
            [f"{t:.4g}"] + [f"{values[j, k]:.6g}" for j in range(len(run.outputs))]
        )
    print(table.render())

    # -- the same circuit, hand-built: the netlist path adds nothing
    nl = Netlist("rc_lowpass (programmatic)")
    nl.add_voltage_source("V1", "in", "0", SpiceSin(0.0, 1.0, 100.0))
    nl.add_resistor("R1", "in", "out", 1e3)
    nl.add_capacitor("C1", "out", "0", 1e-6)
    system = assemble_mna(nl, outputs=["in", "out"])
    sim = Simulator(system, (t_end, tran.coefficients.shape[1]))
    reference = sim.run(nl.input_function())

    identical = np.array_equal(reference.coefficients, tran.coefficients)
    print(f"\nprogrammatic twin bit-identical: {identical}")
    if not identical:
        raise SystemExit("netlist and programmatic trajectories diverged")

    corner = 1.0 / (2.0 * np.pi * 1e3 * 1e-6)
    mag_db = scan.magnitude_db()[:, 1]
    print(f"corner frequency ~ {corner:.1f} Hz; "
          f"|v(out)| falls from {mag_db[0]:.2f} dB at "
          f"{scan.frequencies[0]:g} Hz to {mag_db[-1]:.2f} dB at "
          f"{scan.frequencies[-1]:g} Hz (-20 dB/decade past the corner)")


if __name__ == "__main__":
    main()

"""Section III-B scenario: adaptive time steps on a stiff circuit.

A two-time-scale RC network (10 us fast transient, 10 ms slow settle)
is simulated with fixed-step OPM and with the adaptive controller; the
example prints the accepted-step profile, showing how the controller
concentrates effort in the fast transient -- "a more flexible
simulation with low CPU time".

Run:  python examples/adaptive_time_step.py
"""

import numpy as np

from repro import DescriptorSystem, simulate_opm, simulate_opm_adaptive
from repro.io import Table


def main():
    # poles at 1e5 rad/s (tau = 10 us) and 1e2 rad/s (tau = 10 ms)
    system = DescriptorSystem(
        np.eye(2), np.diag([-1e5, -1e2]), np.array([[1e5], [1e2]])
    )
    t_end = 10e-3

    adaptive = simulate_opm_adaptive(system, 1.0, t_end, rtol=1e-5)
    fixed = simulate_opm(system, 1.0, (t_end, 20000))

    t = np.geomspace(1e-6, 0.95 * t_end, 40)
    exact = 1.0 - np.exp(np.outer([-1e5, -1e2], t))
    err_adaptive = np.max(np.abs(adaptive.states_smooth(t) - exact))
    err_fixed = np.max(np.abs(fixed.states_smooth(t) - exact))

    table = Table(["Run", "Steps", "Factorisations", "Wall time", "Max error"])
    table.add_row(
        ["fixed h = 0.5 us", fixed.m, fixed.info["factorisations"],
         f"{fixed.wall_time * 1e3:.1f} ms", f"{err_fixed:.2e}"]
    )
    table.add_row(
        ["adaptive rtol=1e-5", adaptive.m, adaptive.info["factorisations"],
         f"{adaptive.wall_time * 1e3:.1f} ms", f"{err_adaptive:.2e}"]
    )
    print(table.render())
    print(f"\nrejected trial steps: {adaptive.info['rejected']}")

    steps = adaptive.grid.steps
    edges = adaptive.grid.edges[:-1]
    print("\naccepted step size vs time (log-bins):")
    for lo, hi in [(0, 1e-5), (1e-5, 1e-4), (1e-4, 1e-3), (1e-3, 1e-2)]:
        mask = (edges >= lo) & (edges < hi)
        if np.any(mask):
            print(
                f"  t in [{lo:8.0e}, {hi:8.0e}) s : "
                f"{mask.sum():5d} steps, mean h = {steps[mask].mean():.2e} s"
            )
    print("\nsteps grow by orders of magnitude once the fast mode decays;")
    print("the LU ladder keeps factorisation count tiny despite ~hundreds")
    print("of distinct steps.")


if __name__ == "__main__":
    main()

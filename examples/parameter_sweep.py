"""Parameter sweep through one cached Simulator session.

The paper's cost claim -- one pencil factorisation reused by every
column -- extends across *calls* with the engine's
:class:`~repro.engine.session.Simulator`: bind a system + grid once,
then solve as many inputs as you like against the warm cache.  Two
regimes are demonstrated:

1. **Batched sweeps** (many waveforms, moderate model): a family of
   drive waveforms on an RC ladder is solved in a single multi-RHS
   column sweep -- one ``lu_solve`` per column for the entire family --
   instead of a loop of single-input runs.
2. **Session reuse** (large model, repeated single runs): on a dense
   power-grid MNA model the LU factorisation dominates each cold
   ``simulate_opm`` call; a warm session pays only the triangular
   sweep.

Run:  python examples/parameter_sweep.py
"""

import time

import numpy as np

from repro import Simulator, simulate_opm
from repro.circuits import assemble_mna, power_grid, rc_ladder_netlist
from repro.io import Table


def drive(amplitude: float, rise: float):
    """Saturating ramp input: amplitude * min(t / rise, 1)."""

    def u(times, _a=amplitude, _r=rise):
        return _a * np.minimum(np.asarray(times) / _r, 1.0)

    return u


def best_of(fn, repeats=3):
    """Minimum wall time over a few repeats."""
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def batched_sweep_demo():
    """Tier comparison: cold loop vs warm loop vs one batched sweep."""
    netlist = rc_ladder_netlist(100, r=1.0, c=1e-3)
    system = assemble_mna(netlist)
    grid = (0.5, 256)

    amplitudes = np.linspace(0.25, 2.0, 8)
    rises = np.array([0.01, 0.05, 0.2])
    family = [drive(a, r) for a in amplitudes for r in rises]
    print("== batched sweeps: 24 drive waveforms on a 100-state RC ladder ==")

    t_cold = best_of(lambda: [simulate_opm(system, u, grid) for u in family], 1)
    sim = Simulator(system, grid)
    sim.run(family[0])  # factorise once
    t_warm = best_of(lambda: [sim.run(u) for u in family], 1)
    t_batch = best_of(lambda: sim.sweep(family), 2)

    batch = sim.sweep(family)
    worst = max(
        float(np.max(np.abs(b.coefficients - c.coefficients)))
        for b, c in zip(batch, (simulate_opm(system, u, grid) for u in family))
    )
    table = Table(["strategy", "wall time", "speedup"])
    table.add_row(["cold simulate_opm loop", f"{t_cold * 1e3:.1f} ms", "1.0x"])
    table.add_row(
        ["warm Simulator.run loop", f"{t_warm * 1e3:.1f} ms", f"{t_cold / t_warm:.1f}x"]
    )
    table.add_row(
        ["batched Simulator.sweep", f"{t_batch * 1e3:.1f} ms", f"{t_cold / t_batch:.1f}x"]
    )
    print(table.render())
    print(
        f"  backend: {sim.backend}; factorisations across all session calls: "
        f"{sim.factorisations}"
    )
    print(f"  max |batched - cold| over the family: {worst:.2e}")
    assert worst < 1e-10, "batched sweep must reproduce the one-shot solutions"

    finals = batch.outputs([0.499])[:, -1, 0]  # last node at the horizon
    print(
        f"  final last-node voltage across the family: "
        f"min {finals.min():.3g} V, max {finals.max():.3g} V\n"
    )


def session_reuse_demo():
    """Large dense model: the factorisation dominates, the session keeps it."""
    system = assemble_mna(power_grid(20, 20, nz=2))  # 1200-state MNA DAE
    grid = (1e-9, 16)
    print(f"== session reuse: repeated runs on a {system.n_states}-state power grid ==")

    t_cold = best_of(lambda: simulate_opm(system, 1.0, grid, backend="dense"), 2)
    sim = Simulator(system, grid, backend="dense")
    sim.run(1.0)  # factorise once
    t_warm = best_of(lambda: sim.run(lambda t: np.sin(t / 1e-10)), 3)

    table = Table(["strategy", "wall time", "speedup"])
    table.add_row(["cold simulate_opm", f"{t_cold * 1e3:.1f} ms", "1.0x"])
    table.add_row(
        ["warm Simulator.run", f"{t_warm * 1e3:.1f} ms", f"{t_cold / t_warm:.1f}x"]
    )
    print(table.render())
    print(
        "  the warm run skips basis assembly, coefficient construction and\n"
        "  the dense LU -- it pays only input projection plus the triangular\n"
        "  column sweep."
    )


def main():
    batched_sweep_demo()
    session_reuse_demo()


if __name__ == "__main__":
    main()

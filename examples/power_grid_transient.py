"""Section V-B scenario: power-grid IR-drop analysis, NA vs MNA.

Generates a 3-D RLC power grid, assembles it both ways --

* nodal analysis (NA): second-order model, one unknown per node,
  simulated directly by high-order OPM;
* modified nodal analysis (MNA): first-order DAE with inductor
  currents as extra states, simulated by OPM and by the classical
  trapezoidal rule --

and reports the worst-case IR drop plus the cross-model agreement
(the paper's Table II setting).

Run:  python examples/power_grid_transient.py
"""

import numpy as np

from repro import simulate_opm, simulate_transient
from repro.analysis import relative_error_db, sample_outputs, settling_time
from repro.circuits import RaisedCosinePulse, power_grid_models
from repro.io import Table


def main():
    bundle = power_grid_models(
        8,
        8,
        3,
        via_pitch=2,
        pad_pitch=4,
        load_pitch=2,
        r_wire=0.2,
        c_node=1e-12,
        l_via=1e-8,
        load_waveform=RaisedCosinePulse(level=1.0, width=0.6e-9),
    )
    na, mna = bundle["na"], bundle["mna"]
    print(f"grid netlist: {bundle['netlist']}")
    print(f"NA model:  {na.n_states} unknowns (second order)")
    print(f"MNA model: {mna.n_states} unknowns (first-order DAE)")
    print(f"observed node: {bundle['outputs'][0]} (bottom-layer centre)\n")

    t_end, m = 1e-9, 200
    res_na = simulate_opm(na, bundle["du"], (t_end, m))
    res_mna = simulate_opm(mna, bundle["u"], (t_end, m))
    trap = simulate_transient(mna, bundle["u"], t_end, m, method="trapezoidal")

    t = res_na.grid.midpoints
    drop_na = res_na.outputs(t)[0]
    drop_mna = res_mna.outputs(t)[0]

    worst = np.min(drop_na)
    t_worst = t[np.argmin(drop_na)]
    print(f"worst-case IR drop: {worst * 1e3:.3f} mV at t = {t_worst * 1e9:.2f} ns")
    ts = settling_time(t, drop_na, tolerance=0.05, final_value=0.0)
    print(f"5% settling (recovery) time: {ts * 1e9:.2f} ns\n")

    table = Table(["Run", "Model", "Wall time", "vs OPM-NA (eq. 30)"])
    y_ref = sample_outputs(res_na, t)
    table.add_row(["OPM", f"NA (n={na.n_states})", f"{res_na.wall_time * 1e3:.2f} ms", "-"])
    for label, res, model in [
        ("OPM", res_mna, f"MNA (n={mna.n_states})"),
        ("Trapezoidal", trap, f"MNA (n={mna.n_states})"),
    ]:
        err = relative_error_db(y_ref, sample_outputs(res, t))
        table.add_row([label, model, f"{res.wall_time * 1e3:.2f} ms", f"{err:.1f} dB"])
    print(table.render())
    print("\nthe two formulations agree; OPM solves the *smaller* NA model")
    print("directly -- the paper's route to its Table II runtime advantage.")


if __name__ == "__main__":
    main()

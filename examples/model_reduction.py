"""Model-order reduction workflow: reduce once, simulate many times.

Power-integrity sign-off sweeps the same grid over many load patterns.
This example reduces the Table II power-grid MNA model with Krylov
moment matching (`krylov_reduce`, an extension built on the same
descriptor-model infrastructure OPM uses), verifies the reduced model
in both the frequency domain (transfer-function match) and the time
domain (OPM waveform match), and shows the amortised speedup over a
batch of load variants.

Run:  python examples/model_reduction.py
"""

import time

import numpy as np

from repro import krylov_reduce, simulate_opm
from repro.analysis import relative_error_db, sample_outputs, transfer_function
from repro.circuits import RaisedCosinePulse
from repro.experiments import table2_workload
from repro.io import Table


def main():
    wl = table2_workload(8, 8, 3)
    full = wl["mna"]
    print(f"full MNA model: {full.n_states} states")

    t0 = time.perf_counter()
    reduced = krylov_reduce(full, 12, expansion_point=1e9)
    build_time = time.perf_counter() - t0
    print(f"reduced model:  {reduced.n_states} states "
          f"(built in {build_time * 1e3:.1f} ms)\n")

    # frequency-domain check around the grid's operating band
    print("transfer-function match |H(jw)|:")
    for f_hz in (1e8, 1e9, 5e9):
        h_full = abs(transfer_function(full, 2j * np.pi * f_hz)[0, 0])
        h_red = abs(transfer_function(reduced, 2j * np.pi * f_hz)[0, 0])
        print(f"  f = {f_hz:8.0e} Hz   full {h_full:.6e}   reduced {h_red:.6e}")

    # time-domain check + amortised batch speedup
    t_end, m = wl["t_end"], wl["base_steps"]
    variants = [
        RaisedCosinePulse(level=lvl, width=w, t0=t0_)
        for lvl, w, t0_ in [
            (1.0, 0.6e-9, 0.0),
            (0.7, 0.3e-9, 0.1e-9),
            (1.4, 0.5e-9, 0.2e-9),
            (0.9, 0.8e-9, 0.0),
        ]
    ]

    table = Table(["Load variant", "Full-model time", "Reduced time", "Error (eq. 30)"])
    total_full = total_red = 0.0
    for k, wave in enumerate(variants):
        def u(times, _w=wave):
            times = np.atleast_1d(times)
            return _w(times).reshape(1, -1)

        r_full = simulate_opm(full, u, (t_end, m))
        r_red = simulate_opm(reduced, u, (t_end, m))
        total_full += r_full.wall_time
        total_red += r_red.wall_time
        t = r_full.grid.midpoints
        err = relative_error_db(sample_outputs(r_full, t), sample_outputs(r_red, t))
        table.add_row(
            [f"pulse {k + 1}", f"{r_full.wall_time * 1e3:.2f} ms",
             f"{r_red.wall_time * 1e3:.2f} ms", f"{err:.1f} dB"]
        )
    print("\n" + table.render())
    amortised = (build_time + total_red) / total_full
    print(f"\nbatch of {len(variants)}: reduced route costs "
          f"{100 * amortised:.0f}% of the full route (including the "
          f"one-off reduction); the advantage grows with every "
          f"additional load pattern and with grid size.")


if __name__ == "__main__":
    main()

"""Going big: certified model-order reduction inside the engine.

Repeated transient analysis of a large power grid (corner sweeps,
Monte-Carlo, what-if loads) spends almost all of its time re-solving
the same big pencil.  `Simulator(..., reduce=...)` reduces the bound
system ONCE at session bind (PRIMA-style block-Arnoldi moment
matching), certifies the reduction against a transfer-residual bound
over the band the session grid resolves, and then runs every
`run`/`sweep`/`march` on the small reduced pencil -- lifting
coefficients back to full order so downstream analysis code never
notices.  If the certificate cannot be issued (or a later input
drifts outside the certified subspace) the engine falls back to the
full model and says so in `result.info["mor"]`.

This script sweeps supply-pulse amplitudes over a multi-thousand-state
Table II grid, full engine vs reduced engine, and prints the honest
bind+run comparison: the reduced side's wall time *includes* the
Arnoldi build and certification.

Run:  python examples/reduced_power_grid.py
"""

import time

import numpy as np

from repro.core import Simulator
from repro.engine.reduction import ReductionPlan
from repro.experiments import table2_workload
from repro.io import Table


def main():
    wl = table2_workload(nx=16, ny=16, nz=3)
    mna = wl["mna"]
    grid = (wl["t_end"], wl["base_steps"])
    amps = np.linspace(0.25, 2.0, 24)
    print(f"power grid: {wl['netlist']}")
    print(f"MNA model:  {mna.n_states} states; "
          f"{amps.size}-corner amplitude sweep, m={wl['base_steps']}\n")

    start = time.perf_counter()
    full = Simulator(mna, grid).sweep(amps)
    full_wall = time.perf_counter() - start

    # 24 block moments comfortably certify this grid at rtol 1e-6;
    # reduce="auto" would pick the defaults and fall back when the
    # certificate fails -- an explicit plan documents the intent.
    plan = ReductionPlan(n_moments=24, rtol=1e-6)
    start = time.perf_counter()
    reduced = Simulator(mna, grid, reduce=plan).sweep(amps)
    reduced_wall = time.perf_counter() - start

    mor = reduced.info["mor"]
    worst = max(
        float(np.max(np.abs(r.coefficients - f.coefficients)))
        for r, f in zip(reduced, full)
    )
    scale = max(float(np.max(np.abs(f.coefficients))) for f in full)

    table = Table(["Engine", "States", "Wall time", "Certified bound"],
                  title="REDUCED vs FULL (bind + sweep)")
    table.add_row(["full", f"{mna.n_states}", f"{full_wall * 1e3:.1f} ms", "-"])
    table.add_row([
        "reduced",
        f"{mor['order']} (from {mor['full_order']})",
        f"{reduced_wall * 1e3:.1f} ms "
        f"(build {mor['reduce_seconds'] * 1e3:.1f} ms)",
        f"{mor['bound']:.2e} <= rtol {mor['rtol']:g}",
    ])
    print(table.render())
    print(f"\nspeedup (incl. Arnoldi build): {full_wall / reduced_wall:.1f}x")
    print(f"observed relative deviation:   {worst / scale:.2e}")
    print("\nthe same plan rides through march()/run_ensemble()/the CLI")
    print('(--reduce auto / .options reduce=auto) and falls back --')
    print('recorded in result.info["mor"] -- whenever certification fails.')


if __name__ == "__main__":
    main()

"""Basis gallery: the same circuit in five basis families (section I).

Solves one RC-ladder step response with block pulses, Walsh functions,
Haar wavelets (exact transforms of each other's span) and the Legendre
/ Chebyshev spectral families (integral-form OPM), then prints accuracy
per degree of freedom and the Walsh "trend extraction" the paper
mentions: keeping only low-sequency coefficients recovers the overall
waveform shape.

It closes with the basis-generic session API: ``Simulator(system,
grid, basis="chebyshev")`` binds a *spectral* session whose warm calls
reuse one cached Kronecker factorisation -- spectral accuracy at
session-cache speed.

Run:  python examples/basis_gallery.py
"""

import numpy as np

from repro import (
    ChebyshevBasis,
    HaarBasis,
    LegendreBasis,
    Simulator,
    WalshBasis,
    simulate_opm,
    simulate_opm_integral,
    simulate_opm_transformed,
)
from repro.circuits import Constant, assemble_mna, rc_ladder_netlist
from repro.io import Table


def main():
    nl = rc_ladder_netlist(6, r=1.0, c=1e-3, drive_waveform=Constant(1.0))
    system = assemble_mna(nl, outputs=["v6"])
    u = nl.input_function()
    t_end = 0.05

    reference = simulate_opm(system, u, (t_end, 8192))
    t = np.linspace(0.002, 0.048, 25)
    y_ref = reference.outputs_smooth(t)[0]

    table = Table(["Basis", "Terms", "Max error", "Wall time"])
    runs = {}

    bpf = simulate_opm(system, u, (t_end, 256))
    runs["block pulse"] = bpf
    table.add_row(
        ["Block pulse", 256,
         f"{np.max(np.abs(bpf.outputs_smooth(t)[0] - y_ref)):.2e}",
         f"{bpf.wall_time * 1e3:.2f} ms"]
    )

    walsh = simulate_opm_transformed(system, u, WalshBasis(t_end, 256))
    runs["walsh"] = walsh
    haar = simulate_opm_transformed(system, u, HaarBasis(t_end, 256))
    for label, res in [("Walsh (sequency)", walsh), ("Haar", haar)]:
        table.add_row(
            [label, 256,
             f"{np.max(np.abs(res.outputs(t)[0] - y_ref)):.2e}",
             f"{res.wall_time * 1e3:.2f} ms"]
        )

    for label, basis in [
        ("Legendre", LegendreBasis(t_end, 24)),
        ("Chebyshev", ChebyshevBasis(t_end, 24)),
    ]:
        res = simulate_opm_integral(system, u, basis)
        table.add_row(
            [label, 24,
             f"{np.max(np.abs(res.outputs(t)[0] - y_ref)):.2e}",
             f"{res.wall_time * 1e3:.2f} ms"]
        )
    print(table.render())

    # Walsh trend extraction: truncate the sequency spectrum
    print("\nWalsh low-pass (the paper's 'overall trend' use case):")
    coeffs = walsh.output_coefficients[0]
    for keep in (4, 16, 256):
        truncated = coeffs.copy()
        truncated[keep:] = 0.0
        y_trunc = walsh.basis.synthesize(truncated, t)
        err = np.max(np.abs(y_trunc - y_ref))
        print(f"  keep {keep:3d}/256 sequency terms -> max deviation {err:.2e}")
    print("a handful of low-sequency terms already track the waveform trend.")

    # Basis-generic sessions: warm spectral calls reuse one Kronecker LU
    print("\nWarm Chebyshev session (24 coefficients, one factorisation):")
    sim = Simulator(system, (t_end, 24), basis="chebyshev")
    sim.run(u)  # cold: builds the integral-form operator + LU
    warm = sim.run(u)
    err = np.max(np.abs(warm.outputs(t)[0] - y_ref))
    print(
        f"  factorisations={sim.factorisations}, warm run "
        f"{warm.wall_time * 1e3:.2f} ms, max error {err:.2e}"
    )
    batch = sim.sweep([1.0, 0.5, 2.0])
    print(f"  swept {batch.n_runs} step amplitudes in one batched solve")


if __name__ == "__main__":
    main()

"""Fractional circuit elements from a SPICE netlist: supercapacitor model.

Supercapacitors (and lossy dielectrics generally) are modelled with a
constant-phase element (CPE): ``i = q d^alpha v / dt^alpha`` with
``alpha ~ 0.5-0.9``.  This example parses a SPICE-subset netlist with
the ``P`` (CPE) extension card, assembles it -- note the *automatic*
model-class dispatch: resistors + CPE of one order give a pure
fractional descriptor system, adding an ideal capacitor produces a
multi-term system -- and simulates the charge / self-discharge cycle
that distinguishes a supercapacitor from an ideal one.

Run:  python examples/supercapacitor_cpe.py
"""

import numpy as np

from repro import simulate_opm
from repro.circuits import Netlist, PiecewiseLinear, assemble_mna


SUPERCAP_CARDS = """
* supercapacitor interface: series resistance + CPE storage
I1  0   top  1.0
R1  top cell 0.1
P1  cell 0  2.0 0.6
R2  cell 0  50
"""


def main():
    netlist = Netlist.from_spice(SUPERCAP_CARDS, title="supercap")
    print(f"parsed: {netlist}")

    # charge at 1 A for 10 s, then open-circuit (0 A) and watch the
    # characteristic fractional self-discharge / voltage rebound
    profile = PiecewiseLinear([0.0, 0.1, 10.0, 10.1, 60.0], [0.0, 1.0, 1.0, 0.0, 0.0])
    netlist.set_channel_waveform(0, profile)

    system = assemble_mna(netlist, outputs=["cell"])
    print(f"assembled model: {system} (CPE order 0.6 -> fractional)\n")

    result = simulate_opm(system, netlist.input_function(), (60.0, 3000))
    t = result.grid.midpoints
    v = result.outputs(t)[0]

    t_peak = t[np.argmax(v)]
    v_peak = np.max(v)
    v_end = v[-1]
    print(f"peak cell voltage : {v_peak:.3f} V at t = {t_peak:.1f} s")
    print(f"voltage at t = 60s: {v_end:.3f} V")

    # fractional storage signature: after the charge stops, the voltage
    # sags fast initially (interface redistribution) then very slowly
    # (algebraic memory tail) -- fit the two decay rates
    after = (t > 11.0) & (t < 20.0)
    late = t > 40.0
    early_rate = -np.polyfit(t[after], np.log(v[after]), 1)[0]
    late_rate = -np.polyfit(t[late], np.log(v[late]), 1)[0]
    print(f"\napparent decay rate 11-20 s : {early_rate:.4f} 1/s")
    print(f"apparent decay rate 40-60 s : {late_rate:.4f} 1/s")
    print("the decay *slows down* over time -- no single RC exponential")
    print("can do that; it is the d^0.6 memory kernel at work.")

    checkpoints = [5.0, 10.0, 12.0, 20.0, 40.0, 59.0]
    print("\n  t [s]   v_cell [V]")
    for tc in checkpoints:
        k = np.argmin(np.abs(t - tc))
        print(f"  {t[k]:5.1f}   {v[k]:8.4f}")


if __name__ == "__main__":
    main()

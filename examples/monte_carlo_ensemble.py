"""Monte-Carlo tolerance analysis of the power grid, across all cores.

Draws seeded variations of the 108-state two-layer power grid (every
mesh resistance within +/-20% of nominal), solves the whole ensemble
through the parallel executor — one pencil factorisation per member,
dense pencils shipped to worker processes via shared memory — and
reports the spread of the worst-case IR drop.

Run::

    OMP_NUM_THREADS=1 python examples/monte_carlo_ensemble.py
"""

from __future__ import annotations

import numpy as np

from repro import Ensemble, ParallelExecutor
from repro.circuits import power_grid
from repro.io import Table


def main() -> None:
    netlist = power_grid(6, 6, nz=2)  # 108-state MNA model
    center = "n1_2_2"  # bottom-layer center node: worst-case IR drop

    params = {el.name: 0.2 for el in netlist.resistors}
    ensemble = Ensemble.variations(
        netlist, params, mode="monte-carlo", n=32, seed=2012, outputs=[center]
    )

    executor = ParallelExecutor("process")  # jobs defaults to all cores
    result = executor.run(ensemble, (1e-9, 256))

    info = result.info
    print(
        f"solved {result.n_members} members in {result.wall_time * 1e3:.1f} ms "
        f"({info['jobs']} {info['executor']} workers, "
        f"{info['factorisations']} factorisations, "
        f"{info['shm_bytes'] / 1e6:.1f} MB via shared memory)"
    )

    # peak |v(center)| per member: the quantity a tolerance analysis bounds
    t = result[0].sample_times()
    peaks = np.max(np.abs(result.outputs(t)), axis=2)[:, 0]

    table = Table(["statistic", f"peak |v({center})|"])
    for name, value in [
        ("min", peaks.min()),
        ("mean", peaks.mean()),
        ("max", peaks.max()),
        ("spread (max/min)", peaks.max() / peaks.min()),
    ]:
        table.add_row([name, f"{value:.4g}"])
    print(table.render())

    worst = int(np.argmax(peaks))
    print(f"\nworst corner: member {worst} ({result.labels[worst][:60]}...)")


if __name__ == "__main__":
    main()

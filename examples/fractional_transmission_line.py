"""Section V-A scenario: the fractional transmission line, three ways.

Builds the 7-state, 2-port, alpha = 1/2 transmission-line model (the
paper's Table I workload), drives port 1 with a current pulse, and
solves with

* OPM (the paper's method),
* the FFT frequency-domain baseline at 8 and 100 sampling points, and
* Grünwald-Letnikov time stepping,

printing the Table I-style comparison (eq. (30) dB errors vs OPM).

Run:  python examples/fractional_transmission_line.py
"""

import numpy as np

from repro import simulate_fft, simulate_grunwald_letnikov, simulate_opm
from repro.analysis import relative_error_db, sample_outputs
from repro.circuits import RaisedCosinePulse, fractional_line_model
from repro.io import Table


def main():
    model = fractional_line_model()  # 7 states, 2 ports, alpha = 1/2
    print(f"model: {model}\n")

    pulse = RaisedCosinePulse(level=1e-3, width=1.2e-9)  # 1 mA, 1.2 ns

    def u(times):
        times = np.atleast_1d(times)
        return np.vstack([pulse(times), np.zeros_like(times)])

    t_end, m = 2.7e-9, 64
    opm = simulate_opm(model, u, (t_end, m))
    t = opm.grid.midpoints
    y_near, y_far = opm.outputs(t)

    print("near-end / far-end voltages at a few times:")
    for k in np.linspace(2, m - 2, 6).astype(int):
        print(
            f"  t = {t[k] * 1e9:5.2f} ns   v1 = {y_near[k] * 1e3:8.4f} mV"
            f"   v7 = {y_far[k] * 1e3:8.4f} mV"
        )
    print("  (diffusive propagation: the far end lags and is attenuated)\n")

    table = Table(
        ["Method", "CPU time", "Relative error vs OPM (eq. 30)"],
        title="Table I-style comparison",
    )
    table.add_row(["OPM (m=64)", f"{opm.wall_time * 1e3:.2f} ms", "-"])
    y_ref = sample_outputs(opm, t)
    for label, runner in [
        ("FFT-1 (8 pts)", lambda: simulate_fft(model, u, t_end, 8)),
        ("FFT-2 (100 pts)", lambda: simulate_fft(model, u, t_end, 100)),
        ("GL (m=64)", lambda: simulate_grunwald_letnikov(model, u, t_end, m)),
    ]:
        res = runner()
        err = relative_error_db(y_ref, sample_outputs(res, t))
        table.add_row([label, f"{res.wall_time * 1e3:.2f} ms", f"{err:.1f} dB"])
    print(table.render())
    print("\nshape as in the paper: FFT accuracy improves with sampling")
    print("points while its cost grows; OPM needs one real factorisation.")


if __name__ == "__main__":
    main()

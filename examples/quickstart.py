"""Quickstart: simulate an RC circuit and a fractional generalisation.

Demonstrates the three-line workflow (model -> simulate -> sample) on

1. the classic RC step response (an ODE), validated against the exact
   exponential, and
2. the same circuit with the capacitor replaced by a constant-phase
   element (a *fractional* capacitor, order 1/2), validated against the
   exact Mittag-Leffler solution -- the class of problems OPM handles
   that classical transient engines cannot.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    fde_step_response,
    simulate_opm,
)


def ascii_plot(times, values, *, width=64, label=""):
    """Tiny dependency-free waveform sketch."""
    lo, hi = float(np.min(values)), float(np.max(values))
    span = hi - lo or 1.0
    print(f"  {label}  [{lo:.3g} .. {hi:.3g}]")
    rows = 12
    cells = np.full((rows, width), " ")
    idx = np.linspace(0, len(times) - 1, width).astype(int)
    for col, i in enumerate(idx):
        row = int((values[i] - lo) / span * (rows - 1))
        cells[rows - 1 - row, col] = "*"
    for row in cells:
        print("  |" + "".join(row))
    print("  +" + "-" * width)


def main():
    # ------------------------------------------------------------------
    # 1. ordinary RC: x' = -x/tau + u/tau, unit step, tau = 1 ms
    # ------------------------------------------------------------------
    tau = 1e-3
    rc = DescriptorSystem([[tau]], [[-1.0]], [[1.0]])
    result = simulate_opm(rc, 1.0, (5e-3, 500))  # 5 ms, 500 block pulses

    t = result.grid.midpoints
    v = result.states(t)[0]
    exact = 1.0 - np.exp(-t / tau)
    print("== RC step response (alpha = 1) ==")
    ascii_plot(t * 1e3, v, label="v(t) vs t [ms]")
    print(f"  max |error| vs analytic: {np.max(np.abs(v - exact)):.2e}")
    print(f"  solver: {result.info['method']}, "
          f"{result.info['factorisations']} factorisation(s), "
          f"{result.wall_time * 1e3:.2f} ms wall time\n")

    # ------------------------------------------------------------------
    # 2. fractional RC: tau^alpha d^1/2 x/dt^1/2 = -x + u
    # ------------------------------------------------------------------
    alpha = 0.5
    frc = FractionalDescriptorSystem(alpha, [[tau**alpha]], [[-1.0]], [[1.0]])
    fresult = simulate_opm(frc, 1.0, (5e-3, 500))

    vf = fresult.states(t)[0]
    exact_f = fde_step_response(alpha, 1.0, t / tau)
    print("== fractional RC step response (alpha = 1/2) ==")
    ascii_plot(t * 1e3, vf, label="v(t) vs t [ms]")
    print(f"  max |error| vs Mittag-Leffler: {np.max(np.abs(vf - exact_f)):.2e}")
    print("  note the fast initial rise and slow algebraic settling --")
    print("  the signature of fractional (memory) dynamics.")


if __name__ == "__main__":
    main()

"""Long-horizon power-grid transient with a mid-run load step.

The paper's OPM solves one fixed interval: a 10x longer horizon at the
same resolution means a 10x larger ``m``, a 10x larger coefficient
problem, and no way to change the circuit mid-run.  The marching engine
(:meth:`repro.Simulator.march`) instead sweeps a sequence of short
windows on one cached session -- one pencil factorisation per circuit
configuration for the whole horizon -- and carries the flux/charge
vector ``E x`` across window boundaries, so the stitched trajectory
matches the single-window solve to machine precision.

This script builds a >=100-state 3-D power-grid MNA model and marches
a horizon of 10 windows with two events:

* at ``t = 4 ns`` the switching loads double (``scale=2`` load step);
* at ``t = 6 ns`` extra pad hookups close (a re-stamped pencil: the
  second configuration's LU joins the first in the session's
  PencilBank).

Run:  python examples/long_horizon_grid.py
"""

import time

import numpy as np

from repro import Event, Simulator, simulate_opm
from repro.circuits import assemble_mna, assemble_mna_restamp, power_grid
from repro.circuits.sources import Constant, Sine, Sum
from repro.io import Table

NX = NY = 6  # 6x6x2-layer grid -> >= 100 MNA states
T_WINDOW = 1e-9
M_WINDOW = 60
N_WINDOWS = 10


def build_models():
    """Base grid and a 'switched' variant with extra pad hookups.

    The loads switch at 1 GHz (a raised sine) so current is drawn over
    the whole 10 ns horizon, not just the first window.
    """
    # raised 1 GHz sine: sin^2(pi f t) = 0.5 - 0.5 cos(2 pi f t) >= 0
    clock = Sum(
        [Constant(0.5), Sine(amplitude=0.5, freq=1e9, phase=-np.pi / 2.0)]
    )
    base = power_grid(NX, NY, nz=2, load_waveform=clock)
    switched = power_grid(NX, NY, nz=2, pad_pitch=2, load_waveform=clock)
    outputs = [f"n0_{NX // 2}_{NY // 2}"]
    return (
        assemble_mna(base, outputs=outputs),
        # restamp-checked assembly: same node/branch layout guaranteed
        assemble_mna_restamp(switched, base, outputs=outputs),
        base.input_function(),
        outputs,
    )


def main():
    system, switched_system, u, outputs = build_models()
    t_end = N_WINDOWS * T_WINDOW
    print(f"model: {system!r}")
    print(f"horizon: [0, {t_end:g}) s as {N_WINDOWS} windows of m={M_WINDOW}\n")

    # 1. exactness: a plain march equals the single-window reference
    sim = Simulator(system, (T_WINDOW, M_WINDOW))
    t0 = time.perf_counter()
    marched = sim.march(u, t_end)
    t_march = time.perf_counter() - t0
    t0 = time.perf_counter()
    reference = simulate_opm(system, u, (t_end, N_WINDOWS * M_WINDOW))
    t_single = time.perf_counter() - t0
    drift = float(np.max(np.abs(marched.coefficients - reference.coefficients)))
    print(
        f"march vs single-window solve: max-abs {drift:.2e} "
        f"({sim.factorisations} factorisation(s) total)"
    )
    print(f"  march  {t_march * 1e3:7.1f} ms   single {t_single * 1e3:7.1f} ms\n")

    # 2. events: load step at 4 ns, pad switch closure at 6 ns
    sim_ev = Simulator(system, (T_WINDOW, M_WINDOW))
    events = [
        Event(t=4e-9, scale=2.0, label="load-step x2"),
        Event(t=6e-9, system=switched_system, label="pad switch closure"),
    ]
    result = sim_ev.march(u, t_end, events=events)
    print(
        f"eventful march: {result.n_windows} windows, "
        f"{result.info['stamps']} pencil stamp(s), "
        f"{result.info['factorisations']} factorisation(s), "
        f"{result.wall_time * 1e3:.1f} ms"
    )

    t_print = (np.arange(N_WINDOWS) + 0.5) * T_WINDOW
    v_plain = marched.outputs_smooth(t_print)[0]
    v_event = result.outputs_smooth(t_print)[0]
    table = Table(
        ["t [ns]", "IR drop (plain) [mV]", "IR drop (eventful) [mV]"],
        title="worst-case bottom-layer node",
    )
    for t, a, b in zip(t_print, v_plain, v_event):
        table.add_row([f"{t * 1e9:.1f}", f"{a * 1e3:+.4f}", f"{b * 1e3:+.4f}"])
    print()
    print(table.render())


if __name__ == "__main__":
    main()

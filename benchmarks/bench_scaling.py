"""Complexity-claim benchmark: OPM cost O(n^beta m + n m^2) (section IV).

Sweeps the state count ``n`` (RC chains at fixed ``m``) and the
block-pulse count ``m`` (fixed ``n``), fits power laws to the measured
runtimes, and reports the exponents.  The paper claims:

* first-order systems: ``O(n^beta m)`` with ``1 < beta < 2`` (sparse
  factorisation exponent), linear in ``m``;
* fractional systems: an additional ``O(n m^2)`` history term, so
  superlinear growth in ``m``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import fit_power_law
from repro.core import DescriptorSystem, FractionalDescriptorSystem, simulate_opm

from conftest import bench_scale, register_row

TABLE = "SCALING (OPM cost exponents, section IV)"
COLUMNS = ["Sweep", "Fitted exponent", "R^2", "Paper claim"]


def chain_system(n: int, alpha: float = 1.0):
    main = -2.0 * np.ones(n)
    off = np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    E = sp.identity(n, format="csr")
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    if alpha == 1.0:
        return DescriptorSystem(E, A, B)
    return FractionalDescriptorSystem(alpha, E, A, B)


def _best_wall(system, m: int, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        res = simulate_opm(system, 1.0, (1.0, m))
        best = min(best, res.wall_time)
    return best


def test_n_sweep_first_order(benchmark):
    scale = bench_scale()
    sizes = [2000 * scale, 4000 * scale, 8000 * scale, 16000 * scale]
    times = []

    def run():
        times.clear()
        for n in sizes:
            times.append(_best_wall(chain_system(n), 64))
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(sizes, times)
    register_row(
        TABLE,
        COLUMNS,
        ["n (alpha=1, m=64)", f"{exponent:.2f}", f"{r2:.3f}", "1 < beta < 2"],
    )
    assert 0.7 < exponent < 2.2  # sparse-solve exponent band (tridiagonal ~ 1)


def test_m_sweep_first_order(benchmark):
    ms = [200, 400, 800, 1600]
    system = chain_system(3000 * bench_scale())
    times = []

    def run():
        times.clear()
        for m in ms:
            times.append(_best_wall(system, m))
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(ms, times)
    register_row(
        TABLE,
        COLUMNS,
        ["m (alpha=1, n=3000)", f"{exponent:.2f}", f"{r2:.3f}", "linear (1.0)"],
    )
    assert 0.7 < exponent < 1.5


def test_m_sweep_fractional(benchmark):
    ms = [400, 800, 1600, 3200]
    system = chain_system(200, alpha=0.5)
    times = []

    def run():
        times.clear()
        for m in ms:
            times.append(_best_wall(system, m))
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(ms, times)
    register_row(
        TABLE,
        COLUMNS,
        ["m (alpha=1/2, n=200)", f"{exponent:.2f}", f"{r2:.3f}", "superlinear -> 2.0"],
    )
    assert exponent > 1.2  # the n m^2 history term


def test_m_sweep_fractional_fft_history(benchmark):
    """Extension: blocked-FFT history drops the m-exponent below 2."""
    ms = [400, 800, 1600, 3200]
    system = chain_system(200, alpha=0.5)
    times = []

    def run():
        times.clear()
        for m in ms:
            best = np.inf
            for _ in range(3):
                res = simulate_opm(system, 1.0, (1.0, m), history="fft")
                best = min(best, res.wall_time)
            times.append(best)
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(ms, times)
    register_row(
        TABLE,
        COLUMNS,
        [
            "m (alpha=1/2, n=200, history='fft')",
            f"{exponent:.2f}",
            f"{r2:.3f}",
            "~1.5 (extension)",
        ],
    )
    assert exponent < 1.9  # clearly below the direct path's ~2


def test_fractional_vs_first_order_same_size(benchmark):
    n, m = 400 * bench_scale(), 1200

    def run():
        first = _best_wall(chain_system(n), m, repeats=1)
        frac = _best_wall(chain_system(n, alpha=0.5), m, repeats=1)
        return first, frac

    first, frac = benchmark.pedantic(run, rounds=1, iterations=1)
    register_row(
        TABLE,
        COLUMNS,
        [
            f"alpha=1/2 vs alpha=1 cost ratio (n={n}, m={m})",
            f"{frac / first:.1f}x",
            "-",
            "> 1 (history term)",
        ],
    )
    assert frac > 1.5 * first

"""Complexity-claim benchmark: OPM cost O(n^beta m + n m^2) (section IV).

Sweeps the state count ``n`` (RC chains at fixed ``m``) and the
block-pulse count ``m`` (fixed ``n``), fits power laws to the measured
runtimes, and reports the exponents.  The paper claims:

* first-order systems: ``O(n^beta m)`` with ``1 < beta < 2`` (sparse
  factorisation exponent), linear in ``m``;
* fractional systems: an additional ``O(n m^2)`` history term, so
  superlinear growth in ``m``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.analysis import fit_power_law
from repro.circuits import power_grid
from repro.circuits.mna import assemble_mna
from repro.core import (
    DescriptorSystem,
    Ensemble,
    FractionalDescriptorSystem,
    ParallelExecutor,
    Simulator,
    simulate_opm,
)
from repro.engine.executor import default_jobs
from repro.engine.reduction import ReductionPlan

from conftest import bench_scale, register_metric, register_row

TABLE = "SCALING (OPM cost exponents, section IV)"
COLUMNS = ["Sweep", "Fitted exponent", "R^2", "Paper claim"]

ENGINE_TABLE = "ENGINE (cached sessions and batched sweeps)"
ENGINE_COLUMNS = ["Workload", "Baseline", "Engine", "Speedup", "Claim"]


def chain_system(n: int, alpha: float = 1.0):
    main = -2.0 * np.ones(n)
    off = np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    E = sp.identity(n, format="csr")
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    if alpha == 1.0:
        return DescriptorSystem(E, A, B)
    return FractionalDescriptorSystem(alpha, E, A, B)


def _best_wall(system, m: int, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        res = simulate_opm(system, 1.0, (1.0, m))
        best = min(best, res.wall_time)
    return best


def test_n_sweep_first_order(benchmark):
    scale = bench_scale()
    sizes = [2000 * scale, 4000 * scale, 8000 * scale, 16000 * scale]
    times = []

    def run():
        times.clear()
        for n in sizes:
            times.append(_best_wall(chain_system(n), 64))
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(sizes, times)
    register_row(
        TABLE,
        COLUMNS,
        ["n (alpha=1, m=64)", f"{exponent:.2f}", f"{r2:.3f}", "1 < beta < 2"],
    )
    assert 0.7 < exponent < 2.2  # sparse-solve exponent band (tridiagonal ~ 1)


def test_m_sweep_first_order(benchmark):
    ms = [200, 400, 800, 1600]
    system = chain_system(3000 * bench_scale())
    times = []

    def run():
        times.clear()
        for m in ms:
            times.append(_best_wall(system, m))
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(ms, times)
    register_row(
        TABLE,
        COLUMNS,
        ["m (alpha=1, n=3000)", f"{exponent:.2f}", f"{r2:.3f}", "linear (1.0)"],
    )
    assert 0.7 < exponent < 1.5


def test_m_sweep_fractional(benchmark):
    ms = [400, 800, 1600, 3200]
    system = chain_system(200, alpha=0.5)
    times = []

    def run():
        times.clear()
        for m in ms:
            times.append(_best_wall(system, m))
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(ms, times)
    register_row(
        TABLE,
        COLUMNS,
        ["m (alpha=1/2, n=200)", f"{exponent:.2f}", f"{r2:.3f}", "superlinear -> 2.0"],
    )
    assert exponent > 1.2  # the n m^2 history term


def test_m_sweep_fractional_fft_history(benchmark):
    """Extension: blocked-FFT history drops the m-exponent below 2."""
    ms = [400, 800, 1600, 3200]
    system = chain_system(200, alpha=0.5)
    times = []

    def run():
        times.clear()
        for m in ms:
            best = np.inf
            for _ in range(3):
                res = simulate_opm(system, 1.0, (1.0, m), history="fft")
                best = min(best, res.wall_time)
            times.append(best)
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    exponent, _, r2 = fit_power_law(ms, times)
    register_row(
        TABLE,
        COLUMNS,
        [
            "m (alpha=1/2, n=200, history='fft')",
            f"{exponent:.2f}",
            f"{r2:.3f}",
            "~1.5 (extension)",
        ],
    )
    assert exponent < 1.9  # clearly below the direct path's ~2


def _power_grid_mna(nx: int, ny: int) -> DescriptorSystem:
    """First-order MNA model of an ``nx x ny`` two-layer power grid."""
    netlist = power_grid(nx, ny, nz=2)
    system = assemble_mna(netlist)
    assert system.n_states >= 100, "engine benchmarks need a >=100-state model"
    return system


def test_warm_session_vs_cold_solver(benchmark):
    """Warm Simulator.run amortises assembly + factorisation across calls.

    Cold ``simulate_opm`` rebuilds the basis, the coefficient vector and
    the pencil LU on every call; a warm session pays only the projection
    and the triangular sweep.  Both sides use the dense backend so the
    comparison isolates the *reuse*, not the storage format.
    """
    system = _power_grid_mna(28, 28)  # 2352 states
    n, m = system.n_states, 12
    grid = (1e-9, m)

    sim = Simulator(system, grid, backend="dense")
    ref = sim.run(1.0)  # factorise once, outside the timed region

    def run():
        cold = min(
            _timed(lambda: simulate_opm(system, 1.0, grid, backend="dense"))
            for _ in range(3)
        )
        warm = min(_timed(lambda: sim.run(1.0)) for _ in range(5))
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    # warm solutions must match the cold one exactly (same sweep, same LU)
    drift = float(np.max(np.abs(sim.run(1.0).coefficients - ref.coefficients)))
    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"single input (MNA n={n}, m={m})",
            f"cold {cold * 1e3:.1f} ms",
            f"warm {warm * 1e3:.1f} ms",
            f"{cold / warm:.1f}x",
            ">= 5x",
        ],
    )
    register_metric(
        "warm_session_speedup",
        cold / warm,
        cold_seconds=cold,
        warm_seconds=warm,
        n_states=n,
        m=m,
        claim=">= 5x",
    )
    assert sim.factorisations == 1
    assert drift == 0.0
    assert cold >= 5.0 * warm, f"warm speedup only {cold / warm:.1f}x"


def test_batched_sweep_vs_loop(benchmark):
    """64-input sweep: one multi-RHS column sweep vs a loop of warm runs."""
    system = _power_grid_mna(6, 6)  # 108 states
    n, m, k = system.n_states, 256, 64
    amplitudes = np.linspace(0.25, 2.0, k)
    sim = Simulator(system, (1e-9, m))
    sim.run(1.0)  # factorise once: both strategies start warm

    def run():
        loop_wall = _timed(lambda: [sim.run(a) for a in amplitudes])
        sweep_wall = min(_timed(lambda: sim.sweep(amplitudes)) for _ in range(3))
        return loop_wall, sweep_wall

    loop_wall, sweep_wall = benchmark.pedantic(run, rounds=1, iterations=1)
    loop_results = [sim.run(a) for a in amplitudes]
    sweep_result = sim.sweep(amplitudes)
    worst = max(
        float(np.max(np.abs(s.coefficients - l.coefficients)))
        for s, l in zip(sweep_result, loop_results)
    )
    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"{k}-input sweep (MNA n={n}, m={m})",
            f"loop {loop_wall * 1e3:.1f} ms",
            f"batched {sweep_wall * 1e3:.1f} ms",
            f"{loop_wall / sweep_wall:.1f}x",
            ">= 3x, max-abs < 1e-10",
        ],
    )
    register_metric(
        "batched_sweep_speedup",
        loop_wall / sweep_wall,
        loop_seconds=loop_wall,
        batched_seconds=sweep_wall,
        n_states=n,
        m=m,
        batch=k,
        claim=">= 3x",
    )
    assert sim.factorisations == 1
    assert worst < 1e-10, f"batched sweep deviates from loop by {worst:.2e}"
    assert loop_wall >= 3.0 * sweep_wall, (
        f"batched speedup only {loop_wall / sweep_wall:.1f}x"
    )


#: enforcement floor of the windowed-march claim, recalibrated twice
#: on measured evidence.  First recalibration: nine single-core runs
#: of the old 10-window shape spanned 1.73x-2.20x, so the aspirational
#: 1.9x target became a 1.6x floor.  Second recalibration (PR 8): the
#: per-column kernel fast path (PencilBank.solver + contiguous tail
#: weights) cut the single giant-window baseline's per-column cost so
#: sharply that the 10x horizon stopped separating the two schemes
#: (five runs measured 0.94-1.22x) -- the march's advantage is
#: asymptotic in horizon length, so the bench now marches a 30x
#: horizon, where five single-core runs measure 2.33/2.45/2.45/2.48/
#: 2.50x.  1.8x keeps ~29% headroom under the slowest observed run,
#: and trajectory.py enforces exactly this value (target == floor,
#: no gap).
WINDOWED_MARCH_FLOOR = 1.8


def test_windowed_marching_vs_single_window(benchmark):
    """Long-horizon marching beats one giant single-window solve.

    A fractional (alpha=0.9) >=100-state power-grid model is marched
    over a 30x horizon as 30 windows of m=120 on one cached session.
    The cross-window memory tail is evaluated as a handful of GEMMs
    (see repro.fractional.history) instead of the single-window solve's
    per-column O(n j) dot products, so the march is faster at *exactly*
    the same answer -- the restart is algebraically exact -- while its
    per-window working set stays O(n m + m^2).  The classical (alpha=1)
    march on the same grid is checked against the single-window
    reference at the acceptance threshold 1e-8 (it lands at round-off).
    """
    netlist = power_grid(6, 6, nz=2)
    mna = assemble_mna(netlist)
    n = mna.n_states
    assert n >= 100, "acceptance requires a >=100-state power-grid model"
    u = netlist.input_function()
    frac = FractionalDescriptorSystem(0.9, mna.E, mna.A, mna.B)
    K, m = 30, 120
    t_end = 30e-9

    sim_frac = Simulator(frac, (t_end / K, m))
    sim_classic = Simulator(mna, (t_end / K, m))

    def run():
        marched = min(_timed(lambda: sim_frac.march(u, t_end)) for _ in range(3))
        single = min(
            _timed(lambda: simulate_opm(frac, u, (t_end, K * m))) for _ in range(3)
        )
        return marched, single

    marched_wall, single_wall = benchmark.pedantic(run, rounds=1, iterations=1)

    frac_drift = float(
        np.max(
            np.abs(
                sim_frac.march(u, t_end).coefficients
                - simulate_opm(frac, u, (t_end, K * m)).coefficients
            )
        )
    )
    classic_drift = float(
        np.max(
            np.abs(
                sim_classic.march(u, t_end).coefficients
                - simulate_opm(mna, u, (t_end, K * m)).coefficients
            )
        )
    )
    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"{K}x-horizon march (alpha=0.9, n={n}, {K}x m={m})",
            f"single {single_wall * 1e3:.1f} ms",
            f"marched {marched_wall * 1e3:.1f} ms",
            f"{single_wall / marched_wall:.1f}x",
            f">= {WINDOWED_MARCH_FLOOR}x, max-abs <= 1e-8",
        ],
    )
    register_metric(
        "windowed_march_speedup",
        single_wall / marched_wall,
        marched_seconds=marched_wall,
        single_window_seconds=single_wall,
        n_states=n,
        windows=K,
        window_m=m,
        alpha=0.9,
        fractional_drift=frac_drift,
        classical_drift=classic_drift,
        claim=f">= {WINDOWED_MARCH_FLOOR}x vs the single large-m solve "
        "at max-abs <= 1e-8",
    )
    assert sim_frac.factorisations == 1
    assert frac_drift <= 1e-8, f"fractional march drifts by {frac_drift:.2e}"
    assert classic_drift <= 1e-8, f"classical march drifts by {classic_drift:.2e}"
    assert single_wall >= WINDOWED_MARCH_FLOOR * marched_wall, (
        f"windowed marching only {single_wall / marched_wall:.2f}x faster than "
        f"the single large-m solve (floor {WINDOWED_MARCH_FLOOR}x)"
    )


#: enforcement floor of the compressed-memory claim (target == floor,
#: like the windowed-march claim above): on the 108-state grid the
#: exact cross-window tail is O(K^2 m^2 n) while the SOE recurrence is
#: O(K m P n), so the gap *grows* with the horizon.  Four local
#: single-core runs of the 100-window smoke shape measure
#: 4.31/4.55/4.57/5.56x; 3.0x keeps ~30% headroom under the slowest
#: observed run while still catching a real regression of the
#: compressed tail, and the nightly REPRO_BENCH_SCALE=2 leg (200
#: windows) only widens the gap.
SOE_LONG_MARCH_FLOOR = 3.0

#: windows per bench-scale unit: the CI smoke leg marches the full
#: 100x horizon; the nightly REPRO_BENCH_SCALE=2 run doubles it
SOE_LONG_MARCH_WINDOWS = 100
SOE_LONG_MARCH_M = 300


def test_soe_long_marching_vs_exact(benchmark):
    """Sum-of-exponentials memory makes the long march linear-time.

    The 108-state fractional (alpha=0.9) power-grid model is marched
    over a 100x horizon (100 windows of m=300; the nightly
    REPRO_BENCH_SCALE=2 leg doubles the window count) twice on cached
    sessions: once with the exact dense history tail (cost grows
    quadratically with the window count) and once with
    ``memory='soe'``, which compresses the power-law tail into a few
    dozen exponential modes carried by O(n P) recurrences.  The fit is
    certified -- the exact relative L1 error bound over every lag the
    march touches is computed and checked against the plan's rtol --
    and the compressed answer must stay within 1e-8 (relative) of the
    exact one.
    """
    netlist = power_grid(6, 6, nz=2)
    mna = assemble_mna(netlist)
    n = mna.n_states
    assert n >= 100, "acceptance requires a >=100-state power-grid model"
    u = netlist.input_function()
    frac = FractionalDescriptorSystem(0.9, mna.E, mna.A, mna.B)
    K = SOE_LONG_MARCH_WINDOWS * bench_scale()
    m = SOE_LONG_MARCH_M
    t_end = K * 1e-9

    sim_exact = Simulator(frac, (t_end / K, m))
    sim_soe = Simulator(frac, (t_end / K, m), memory="soe")
    results = {}

    def run():
        exact_wall = min(
            _timed(lambda: results.__setitem__("exact", sim_exact.march(u, t_end)))
            for _ in range(2)
        )
        soe_wall = min(
            _timed(lambda: results.__setitem__("soe", sim_soe.march(u, t_end)))
            for _ in range(2)
        )
        return exact_wall, soe_wall

    exact_wall, soe_wall = benchmark.pedantic(run, rounds=1, iterations=1)

    mem = results["soe"].info["memory"]
    scale_c = float(np.max(np.abs(results["exact"].coefficients)))
    rel_err = float(
        np.max(np.abs(results["soe"].coefficients - results["exact"].coefficients))
        / scale_c
    )
    speedup = exact_wall / soe_wall
    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"{K}x-horizon march (alpha=0.9, n={n}, memory=soe)",
            f"exact {exact_wall * 1e3:.1f} ms",
            f"soe {soe_wall * 1e3:.1f} ms",
            f"{speedup:.1f}x",
            f">= {SOE_LONG_MARCH_FLOOR}x, rel <= 1e-8",
        ],
    )
    register_metric(
        "soe_long_march",
        speedup,
        exact_seconds=exact_wall,
        soe_seconds=soe_wall,
        n_states=n,
        windows=K,
        window_m=m,
        alpha=0.9,
        modes=mem["modes"],
        certified_bound=mem["bound"],
        rtol=mem["rtol"],
        rel_error=rel_err,
        claim=f">= {SOE_LONG_MARCH_FLOOR}x vs the exact history tail "
        "at rel <= 1e-8, certified fit",
    )
    assert sim_exact.factorisations == 1 and sim_soe.factorisations == 1
    assert mem["mode"] == "soe" and mem["certified"], (
        f"compressed march fell back: {mem}"
    )
    assert rel_err <= 1e-8, f"compressed march deviates by {rel_err:.2e}"
    assert speedup >= SOE_LONG_MARCH_FLOOR, (
        f"compressed memory only {speedup:.2f}x faster than the exact tail "
        f"(floor {SOE_LONG_MARCH_FLOOR}x)"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


#: the parallel-ensemble claim is only *enforced* on machines with at
#: least this many usable cores (an N-worker pool cannot beat serial on
#: a single core; the metric is still recorded so the perf-trajectory
#: guard sees the benchmark ran)
ENSEMBLE_MIN_CORES = 4

ENSEMBLE_WORKERS = 8
ENSEMBLE_MEMBERS = 96
ENSEMBLE_M = 512
ENSEMBLE_CLAIM = 2.5

#: moments for the reduced-vs-full member-solve comparison riding along
#: with the ensemble benchmark (order 8 of 108 states certifies at
#: ~7e-7 on this grid)
ENSEMBLE_MOR_MOMENTS = 8


def required_cores() -> int:
    """Minimum core count this run *must* have, from the environment.

    ``REPRO_BENCH_REQUIRE_CORES=4`` turns "not enough cores here" from
    a soft pass (metric recorded with ``enforced: false``) into a hard
    failure -- the nightly multi-core runner sets it so its
    parallel-ensemble datapoint is always an enforced >= 2.5x
    measurement, never a silently-unenforced single-core number.
    """
    return int(os.environ.get("REPRO_BENCH_REQUIRE_CORES", "0"))


def test_parallel_ensemble_vs_serial(benchmark):
    """8-worker Monte-Carlo ensemble vs the same task plan run serially.

    96 seeded Monte-Carlo variations of the 108-state power grid (every
    mesh resistance drawn within +/-20% of nominal): 96 distinct
    pencils, each factorised once and swept over m=512 block pulses.
    The process executor ships the dense pencils and projected inputs
    through shared memory (coefficients return through a parent-owned
    segment too) and must (a) return *bit-identical* coefficients to
    the serial baseline -- same task plan, same arithmetic -- and (b)
    beat it by >= 2.5x when at least ``ENSEMBLE_MIN_CORES`` cores are
    available (CI runners are; the metric records the measured value
    and core count either way, so the perf-trajectory guard can tell a
    skipped benchmark from an unenforceable environment).  The claim
    is *enforced* from the machine's physical core count
    (``os.cpu_count``) -- affinity masks or environment caps shrink
    the worker pool, they do not excuse the claim.

    A reduced-model pass rides along: the same ensemble solved
    serially with ``reduce=ReductionPlan(8)`` records the certified
    reduced-vs-full member solve times in the metric.
    """
    cores = os.cpu_count() or 1
    required = required_cores()
    assert cores >= required, (
        f"REPRO_BENCH_REQUIRE_CORES={required} but this runner has only "
        f"{cores} core(s): the enforced multi-core ensemble datapoint "
        "cannot be measured here"
    )
    netlist = power_grid(6, 6, nz=2)
    n = assemble_mna(netlist).n_states
    assert n >= 100, "acceptance requires a >=100-state power-grid model"
    params = {el.name: 0.2 for el in netlist.resistors}
    ensemble = Ensemble.variations(
        netlist, params, mode="monte-carlo", n=ENSEMBLE_MEMBERS, seed=2012
    )
    grid = (1e-9, ENSEMBLE_M)
    serial = ParallelExecutor("serial", jobs=ENSEMBLE_WORKERS)
    parallel = ParallelExecutor("process", jobs=ENSEMBLE_WORKERS)
    mor_plan = ReductionPlan(n_moments=ENSEMBLE_MOR_MOMENTS)
    results = {}

    def run():
        serial_wall = _timed(lambda: results.__setitem__(
            "serial", serial.run(ensemble, grid)))
        parallel_wall = _timed(lambda: results.__setitem__(
            "parallel", parallel.run(ensemble, grid)))
        reduced_wall = _timed(lambda: results.__setitem__(
            "reduced", serial.run(ensemble, grid, reduce=mor_plan)))
        return serial_wall, parallel_wall, reduced_wall

    serial_wall, parallel_wall, reduced_wall = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    serial_result = results["serial"]
    parallel_result = results["parallel"]
    reduced_result = results["reduced"]
    identical = bool(
        np.array_equal(serial_result.coefficients, parallel_result.coefficients)
    )
    reduced_mor = reduced_result.info.get("mor") or {}
    reduced_dev = float(
        np.max(np.abs(reduced_result.coefficients - serial_result.coefficients))
    )
    speedup = serial_wall / parallel_wall
    # enforcement keys off the machine's physical cores; the pool size
    # the executor actually uses (affinity-aware) is recorded alongside
    pool = default_jobs()
    enforced = cores >= ENSEMBLE_MIN_CORES

    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"{ENSEMBLE_MEMBERS}-member MC ensemble (MNA n={n}, "
            f"m={ENSEMBLE_M}, {ENSEMBLE_WORKERS} workers, {cores} cores)",
            f"serial {serial_wall * 1e3:.1f} ms",
            f"parallel {parallel_wall * 1e3:.1f} ms",
            f"{speedup:.1f}x",
            f">= {ENSEMBLE_CLAIM}x (>= {ENSEMBLE_MIN_CORES} cores), "
            "bit-identical",
        ],
    )
    register_metric(
        "parallel_ensemble_speedup",
        speedup,
        serial_seconds=serial_wall,
        parallel_seconds=parallel_wall,
        n_states=n,
        members=ENSEMBLE_MEMBERS,
        m=ENSEMBLE_M,
        workers=ENSEMBLE_WORKERS,
        cores=cores,
        required_cores=required,
        pool_jobs=pool,
        bit_identical=identical,
        shm_bytes=parallel_result.info["shm_bytes"],
        reduced_serial_seconds=reduced_wall,
        full_member_seconds=serial_wall / ENSEMBLE_MEMBERS,
        reduced_member_seconds=reduced_wall / ENSEMBLE_MEMBERS,
        reduced_units=reduced_mor.get("reduced_units", 0),
        reduced_bound=reduced_mor.get("bound"),
        reduced_max_abs_dev=reduced_dev,
        enforced=enforced,
        claim=f">= {ENSEMBLE_CLAIM}x on >= {ENSEMBLE_MIN_CORES} cores, "
        "bit-identical to serial",
    )
    assert identical, "parallel ensemble deviates from the serial baseline"
    assert serial_result.info["factorisations"] == ENSEMBLE_MEMBERS
    assert parallel_result.info["shm_bytes"] > 0, (
        "dense pencils should ship through shared memory"
    )
    assert reduced_mor.get("reduced_units") == ENSEMBLE_MEMBERS, (
        "every ensemble member should solve on its certified reduced model"
    )
    assert reduced_dev <= 1e-6, (
        f"reduced ensemble deviates by {reduced_dev:.2e} (over certified rtol)"
    )
    if enforced:
        assert speedup >= ENSEMBLE_CLAIM, (
            f"parallel ensemble speedup only {speedup:.2f}x on {cores} cores"
        )


def test_fractional_vs_first_order_same_size(benchmark):
    n, m = 400 * bench_scale(), 1200

    def run():
        first = _best_wall(chain_system(n), m, repeats=1)
        frac = _best_wall(chain_system(n, alpha=0.5), m, repeats=1)
        return first, frac

    first, frac = benchmark.pedantic(run, rounds=1, iterations=1)
    register_row(
        TABLE,
        COLUMNS,
        [
            f"alpha=1/2 vs alpha=1 cost ratio (n={n}, m={m})",
            f"{frac / first:.1f}x",
            "-",
            "> 1 (history term)",
        ],
    )
    assert frac > 1.5 * first


# ----------------------------------------------------------------------
# Cross-basis accuracy-per-m sweep (the basis-generic engine claim)
# ----------------------------------------------------------------------

BASES_TABLE = "BASES (smooth RLC, accuracy per coefficient)"
BASES_COLUMNS = ["Basis", "m", "RMS error", "CPU time"]

BASES_JSON = Path(__file__).parent / "out" / "BENCH_bases.json"

#: spectral accuracy target of the CI smoke assertion
SPECTRAL_TARGET = 1e-8
SPECTRAL_M = 32
BLOCK_PULSE_M = 512


def _smooth_rlc():
    """Underdamped series RLC (R=0.4, L=C=1): smooth oscillatory decay."""
    E = np.diag([1.0, 1.0])
    A = np.array([[-0.4, -1.0], [1.0, 0.0]])
    B = np.array([[1.0], [0.0]])
    return DescriptorSystem(E, A, B)


def _rlc_reference(t):
    """Matrix-exponential step response (the analytic solution)."""
    import scipy.linalg

    E = np.diag([1.0, 1.0])
    A = np.array([[-0.4, -1.0], [1.0, 0.0]])
    B = np.array([[1.0], [0.0]])
    As = np.linalg.solve(E, A)
    Bs = np.linalg.solve(E, B)[:, 0]
    shift = np.linalg.solve(As, Bs)
    return np.stack(
        [(scipy.linalg.expm(As * ti) - np.eye(2)) @ shift for ti in t], axis=1
    )


def test_cross_basis_accuracy_per_m(benchmark):
    """Spectral bases reach 1e-8 RMS with >=10x fewer coefficients.

    Emits ``benchmarks/out/BENCH_bases.json`` (consumed by the README
    accuracy table and uploaded as a CI artifact) and asserts the
    engine-level claim: Chebyshev at m <= 32 beats 1e-8 RMS on the
    smooth RLC step response, where block pulses are still above it at
    m = 512 -- and the coefficient count for *equal* accuracy differs
    by at least 10x.
    """
    system = _smooth_rlc()
    t_end = 10.0
    t = np.linspace(0.05, 9.95, 199)
    ref = _rlc_reference(t)

    sweep_spec = {
        "block-pulse": [64, 128, 256, BLOCK_PULSE_M, 1024],
        "chebyshev": [8, 12, 16, 24, SPECTRAL_M],
        "legendre": [8, 12, 16, 24, SPECTRAL_M],
    }

    def rms(delta):
        return float(np.sqrt(np.mean(delta**2)))

    entries = []

    def run():
        entries.clear()
        for name, ms in sweep_spec.items():
            for m in ms:
                basis = None if name == "block-pulse" else name
                sim = Simulator(system, (t_end, m), basis=basis)
                start = time.perf_counter()
                res = sim.run(1.0)
                wall = time.perf_counter() - start
                sampler = res.states_smooth if name == "block-pulse" else res.states
                entries.append(
                    {
                        "basis": name,
                        "m": m,
                        "rms": rms(sampler(t) - ref),
                        "wall_s": wall,
                    }
                )
        return entries

    benchmark.pedantic(run, rounds=1, iterations=1)

    for e in entries:
        register_row(
            BASES_TABLE,
            BASES_COLUMNS,
            [e["basis"], e["m"], f"{e['rms']:.3e}", f"{e['wall_s'] * 1e3:.2f} ms"],
        )

    by = lambda name: {e["m"]: e for e in entries if e["basis"] == name}
    bpf, cheb = by("block-pulse"), by("chebyshev")
    bpf_err = bpf[BLOCK_PULSE_M]["rms"]
    cheb_err = cheb[SPECTRAL_M]["rms"]
    # smallest Chebyshev m matching block-pulse accuracy at m=512
    m_equal = min(
        (m for m, e in sorted(cheb.items()) if e["rms"] <= bpf_err),
        default=None,
    )
    ratio = None if m_equal is None else BLOCK_PULSE_M / m_equal

    payload = {
        "workload": "smooth RLC step response (R=0.4, L=C=1, t_end=10)",
        "rms_reference": "matrix-exponential analytic solution, 199 samples",
        "entries": entries,
        "claims": {
            "spectral_target_rms": SPECTRAL_TARGET,
            "chebyshev_m": SPECTRAL_M,
            "chebyshev_rms": cheb_err,
            "block_pulse_m": BLOCK_PULSE_M,
            "block_pulse_rms": bpf_err,
            "equal_accuracy_chebyshev_m": m_equal,
            "coefficient_ratio": ratio,
        },
    }
    BASES_JSON.parent.mkdir(exist_ok=True)
    BASES_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    register_metric(
        "cross_basis_coefficient_ratio",
        ratio,
        chebyshev_rms_at_32=cheb_err,
        block_pulse_rms_at_512=bpf_err,
    )

    # CI smoke assertions: the basis-generic engine's headline claim
    assert cheb_err <= SPECTRAL_TARGET, (
        f"Chebyshev m={SPECTRAL_M} RMS {cheb_err:.2e} > {SPECTRAL_TARGET:.0e}"
    )
    assert bpf_err > SPECTRAL_TARGET, (
        f"block pulse already reaches {SPECTRAL_TARGET:.0e} at m={BLOCK_PULSE_M}"
    )
    assert m_equal is not None and ratio >= 10.0, (
        f"equal-accuracy coefficient ratio {ratio} < 10x"
    )


#: Floor for the hierarchy front-end throughput claim.  A 1000-instance
#: subcircuit deck flattens + graph-lints at ~30k instances/s on a dev
#: box; 5k/s leaves a wide margin for loaded shared CI runners while
#: still catching an accidentally quadratic parser or lint pass.
HIERARCHY_FLOOR = 5_000.0


def test_hierarchy_flatten_lint_throughput(benchmark):
    """Parse+flatten+lint a 1000-instance hierarchical deck, end to end.

    The deck is a generated RC filter cascade: one ``.subckt`` with a
    ``{param}`` placeholder, instantiated 1000 times (scaled by
    REPRO_BENCH_SCALE) in one chain.  The measured rate covers the
    whole front door -- tokenising, hierarchy expansion with parameter
    substitution, duplicate detection, and the circuit-graph lint --
    so it is the deck-ingest throughput a service sees before any
    factorisation.
    """
    from repro.circuits import CircuitGraph, Netlist

    n_instances = 1000 * bench_scale()
    lines = [
        "* generated filter cascade",
        ".subckt rcsec in out r=1k c=1u",
        "R1 in out {r}",
        "C1 out 0 {c}",
        ".ends",
        "V1 drive 0 SIN(0 1 200)",
    ]
    previous = "drive"
    for k in range(n_instances):
        lines.append(f"X{k} {previous} n{k} rcsec r={1 + k % 7}k")
        previous = f"n{k}"
    lines.append(f"Rload {previous} 0 1k")
    lines.extend([".tran 50u 10m", ".end"])
    text = "\n".join(lines)

    def ingest():
        best = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            netlist = Netlist.from_spice(text, title="cascade")
            report = CircuitGraph(netlist).lint()
            best = min(best, time.perf_counter() - t0)
            assert not report, f"generated deck must lint clean: {report}"
            assert netlist.n_instances == n_instances
        return best

    wall = benchmark.pedantic(ingest, rounds=1, iterations=1)
    rate = n_instances / wall
    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"hierarchy ingest ({n_instances} instances)",
            f"{wall * 1e3:.1f} ms",
            f"{rate:,.0f} inst/s",
            "-",
            f">= {HIERARCHY_FLOOR:,.0f} inst/s",
        ],
    )
    register_metric(
        "hierarchy_flatten_throughput",
        rate,
        wall_seconds=wall,
        n_instances=n_instances,
        n_elements=2 * n_instances + 2,
        claim=f">= {HIERARCHY_FLOOR:,.0f} instances/s",
    )
    assert rate >= HIERARCHY_FLOOR, (
        f"hierarchy ingest only {rate:,.0f} instances/s"
    )

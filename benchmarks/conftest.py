"""Benchmark-harness infrastructure.

Each benchmark file registers paper-style table rows (method, timing,
accuracy) in :data:`REGISTRY`; at session end the tables are rendered
to stdout and written under ``benchmarks/out/`` so EXPERIMENTS.md can
embed them verbatim.

Run with::

    pytest benchmarks/ --benchmark-only

Besides the human-readable tables, every run of
``benchmarks/bench_scaling.py`` emits a machine-readable
``benchmarks/out/BENCH_scaling.json`` (schema below) so the perf
trajectory -- timings, speedup ratios, model sizes -- can be tracked
across PRs; CI uploads it as an artifact.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- integer multiplier on workload sizes
  (default 1, CI-scale; larger values approach paper-scale runs).
"""

from __future__ import annotations

import json
import os
import platform
import time
from collections import defaultdict
from pathlib import Path

import pytest

from repro.io import Table

#: table name -> (columns, list of rows); populated by bench tests.
REGISTRY: dict[str, dict] = defaultdict(lambda: {"columns": None, "rows": []})

#: metric name -> {"value": ..., **metadata}; populated by bench tests
#: via :func:`register_metric` and dumped to ``BENCH_scaling.json``.
METRICS: dict[str, dict] = {}

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_scaling.json"


def register_row(table: str, columns, row) -> None:
    """Append a row to a named output table (creating it on first use)."""
    entry = REGISTRY[table]
    if entry["columns"] is None:
        entry["columns"] = list(columns)
    elif entry["columns"] != list(columns):
        raise ValueError(f"table {table!r} column mismatch")
    entry["rows"].append([str(c) for c in row])


def register_metric(name: str, value, **meta) -> None:
    """Record one machine-readable metric for ``BENCH_scaling.json``.

    ``value`` should be a plain number (seconds, ratio, count);
    ``meta`` carries context such as model sizes or claim thresholds.
    """
    METRICS[name] = {"value": value, **meta}


def bench_scale() -> int:
    """Workload multiplier from REPRO_BENCH_SCALE (default 1)."""
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def format_db(value: float) -> str:
    return "-" if value is None else f"{value:.1f} dB"


@pytest.fixture(scope="session", autouse=True)
def _write_tables_at_exit():
    yield
    OUT_DIR.mkdir(exist_ok=True)
    for name, entry in sorted(REGISTRY.items()):
        if not entry["rows"]:
            continue
        table = Table(entry["columns"], title=name)
        for row in entry["rows"]:
            table.add_row(row)
        text = table.render()
        (OUT_DIR / f"{name.lower().replace(' ', '_').replace('/', '-')}.txt").write_text(
            text + "\n"
        )
        print(f"\n{text}")
    if METRICS or REGISTRY:
        import numpy
        import scipy

        payload = {
            "schema": 1,
            "generated_unix": time.time(),
            "env": {
                "python": platform.python_version(),
                "numpy": numpy.__version__,
                "scipy": scipy.__version__,
                "platform": platform.platform(),
                "bench_scale": bench_scale(),
            },
            "metrics": METRICS,
            "tables": {
                name: {"columns": entry["columns"], "rows": entry["rows"]}
                for name, entry in sorted(REGISTRY.items())
                if entry["rows"]
            },
        }
        JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {JSON_PATH}")

"""Table II reproduction: 3-D power grid, OPM vs classical transient schemes.

Paper section V-B / Table II: a 3-D RLC power grid is simulated two
ways -- the *second-order* nodal-analysis model (size ``n_nodes``) with
OPM, and the *first-order* MNA DAE (size ``n_nodes + n_vias``) with
backward Euler (at h = 10/5/1 ps), Gear's method, and the trapezoidal
rule (at h = 10 ps).  Errors are the eq. (30) dB metric averaged over
outputs, with OPM as the reference row.

Paper numbers (75 K-node grid, 2012 MATLAB testbed):

    b-Euler  h=10ps  334.7 s   -91 dB
    b-Euler  h=5ps   691.7 s   -92 dB
    b-Euler  h=1ps   3198 s    -127 dB
    Gear     h=10ps  359.1 s   -134 dB
    Trapezoidal 10ps 347.2 s   -137 dB
    OPM      h=10ps  314.6 s   -

Expected reproduced shape: backward-Euler errors improve monotonically
as h shrinks while runtime grows ~1/h; Gear and trapezoidal sit far
below backward Euler at the same step with trapezoidal closest to OPM;
OPM's runtime is competitive with one trapezoidal sweep.  The default
grid is CI-scale (set REPRO_BENCH_SCALE to enlarge it toward the
paper's 75 K nodes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import average_relative_error_db, sample_outputs
from repro.baselines import simulate_transient
from repro.core import simulate_opm
from repro.experiments import table2_workload

from conftest import bench_scale, format_db, format_ms, register_row

TABLE = "TABLE II (3-D power grid)"
COLUMNS = ["Method", "Step", "Runtime", "Average Relative Error vs OPM"]


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    wl = table2_workload(nx=5 * scale, ny=5 * scale, nz=2 if scale == 1 else 3)
    opm = simulate_opm(wl["na"], wl["du"], (wl["t_end"], wl["base_steps"]))
    wl["y_opm"] = sample_outputs(opm, wl["sample_times"])
    return wl


def test_opm_na_row(benchmark, workload):
    wl = workload

    def run():
        return simulate_opm(wl["na"], wl["du"], (wl["t_end"], wl["base_steps"]))

    result = benchmark(run)
    assert result.info["method"] == "opm-multiterm"
    register_row(
        TABLE,
        COLUMNS,
        [
            f"OPM (NA model, n={wl['na'].n_states})",
            "10 ps",
            format_ms(benchmark.stats.stats.mean),
            "-",
        ],
    )


@pytest.mark.parametrize(
    "label,steps",
    [("h = 10 ps", 100), ("h = 5 ps", 200), ("h = 1 ps", 1000)],
)
def test_backward_euler_rows(benchmark, workload, label, steps):
    wl = workload

    def run():
        return simulate_transient(
            wl["mna"], wl["u"], wl["t_end"], steps, method="backward-euler"
        )

    result = benchmark(run)
    err = average_relative_error_db(
        wl["y_opm"], sample_outputs(result, wl["sample_times"])
    )
    register_row(
        TABLE,
        COLUMNS,
        [
            f"b-Euler (MNA model, n={wl['mna'].n_states})",
            label,
            format_ms(benchmark.stats.stats.mean),
            format_db(err),
        ],
    )


@pytest.mark.parametrize("method,label", [("gear2", "Gear"), ("trapezoidal", "Trapezoidal")])
def test_second_order_scheme_rows(benchmark, workload, method, label):
    wl = workload

    def run():
        return simulate_transient(
            wl["mna"], wl["u"], wl["t_end"], wl["base_steps"], method=method
        )

    result = benchmark(run)
    err = average_relative_error_db(
        wl["y_opm"], sample_outputs(result, wl["sample_times"])
    )
    assert err < -30.0  # second-order schemes track OPM closely
    register_row(
        TABLE,
        COLUMNS,
        [
            f"{label} (MNA model, n={wl['mna'].n_states})",
            "10 ps",
            format_ms(benchmark.stats.stats.mean),
            format_db(err),
        ],
    )

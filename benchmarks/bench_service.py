"""Service load benchmark: coalesced throughput and tail latency.

Boots a real :class:`~repro.engine.service.SimulationService` on an
ephemeral port and replays a mixed request stream -- mostly repeat
transients of one RC-ladder deck at different drive scales, salted
with multi-scale *sweep requests* and two smaller decks -- from
concurrent client connections.  The baseline is the honest
serial-per-request cost: a fresh parse + MNA assembly + operator
build + factorisation + solve for every request, which is exactly
what a stateless one-shot runner (``python -m repro --netlist ...``)
pays, measured in-process without any socket overhead.

Every request asks for a Chebyshev spectral session (``basis`` +
``grid`` override in the request schema): for these smooth drives a
24-term spectral solve matches the deck's 400-step staircase to
~1e-2, and it puts the workload in the regime the daemon is built
for -- almost all of the per-request cost is the session build
(parse, MNA assembly, Kronecker operator, factorisation), which the
session LRU amortises across requests, while the coalescing
scheduler folds concurrent same-fingerprint arrivals into one
batched multi-RHS sweep against the cached factorisation.

The benchmark asserts the combined effect -- coalesced service
throughput >= ``SERVICE_CLAIM`` x the serial-per-request rate -- and
records p50/p99 request latency from the daemon's own stats endpoint
into ``BENCH_scaling.json`` (merged into ``BENCH_trajectory.json``
by ``trajectory.py``).

The serial baseline rate is measured over an evenly-strided
subsample of the stream (the stride is kept coprime with the
stream's generating period, so the subsample preserves the workload
mix) -- rates are stationary per request class, and replaying every
request cold would only re-measure the same number hundreds of times
over.

Run standalone against a live daemon for the CI smoke test::

    python -m repro serve --port 7777 &
    python benchmarks/bench_service.py --burst --port 7777 --shutdown
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine import Simulator
from repro.engine.service import ServiceClient, serve

SERVICE_TABLE = "SERVICE (coalesced daemon vs serial-per-request)"
SERVICE_COLUMNS = [
    "Workload",
    "Serial rate",
    "Service rate",
    "Speedup",
    "p50 / p99",
    "Claim",
]

#: Enforced floor on coalesced-throughput over serial-per-request.
SERVICE_CLAIM = 3.0

#: Concurrent client connections (coalescing happens *across*
#: connections: each thread owns one socket).
CLIENTS = 8

#: Requests per client at REPRO_BENCH_SCALE=1.
REQUESTS_PER_CLIENT = 125

#: Scales carried by one sweep request.
SWEEP_SCALES = [0.5, 0.8, 1.25, 2.0]

#: The stream pattern repeats with this period (see request_stream).
STREAM_PERIOD = 12

#: Serial-baseline subsample size (strided over the stream).
BASELINE_SAMPLE = 48


def ladder_deck(sections: int, m: int = 400, t_end: float = 1e-3) -> str:
    """An RC-ladder deck: ``sections`` states, ``m`` time steps."""
    lines = ["* RC ladder", "I1 0 n1 SIN(0 1m 2k)"]
    for i in range(1, sections + 1):
        tail = f"n{i + 1}" if i < sections else "0"
        lines.append(f"R{i} n{i} {tail} 1k")
        lines.append(f"C{i} n{i} 0 1u")
    lines.append(f".tran {t_end / m:g} {t_end:g}")
    return "\n".join(lines) + "\n"


DECK_MAIN = ladder_deck(280)
DECK_MID = ladder_deck(140)
DECK_SMALL = ladder_deck(70)

#: Per-request session override: a 24-term Chebyshev spectral grid,
#: observing the driven node only (the default -- every node voltage
#: -- would spend the bench serialising 280-column waveforms).
GRID = [1e-3, 24]
BASIS = "chebyshev"
OUTPUTS = ["n1"]


def request_stream(total: int) -> list[dict]:
    """The mixed request stream: a fixed periodic pattern.

    Per period of ``STREAM_PERIOD`` (12): nine single-scale requests
    on the main deck (the coalescable bulk), one four-scale sweep
    request, and one request each on the two smaller decks
    (session-LRU churn).
    """
    stream = []
    for i in range(total):
        base = {"grid": GRID, "basis": BASIS, "outputs": OUTPUTS, "samples": 8}
        slot = i % STREAM_PERIOD
        if slot == 9:
            base.update(netlist=DECK_MAIN, scales=SWEEP_SCALES)
        elif slot == 10:
            base.update(netlist=DECK_MID, scale=0.5 + (i % 8) / 4.0)
        elif slot == 11:
            base.update(netlist=DECK_SMALL, scale=0.5 + (i % 8) / 4.0)
        else:
            base.update(netlist=DECK_MAIN, scale=0.5 + (i % 16) / 8.0)
        stream.append(base)
    return stream


def baseline_subsample(stream: list[dict]) -> list[dict]:
    """An evenly-strided subsample preserving the workload mix.

    The stride is pushed up until coprime with ``STREAM_PERIOD`` so
    the strided indices cycle through *every* pattern slot instead of
    resonating with a subset of them.
    """
    stride = max(1, len(stream) // BASELINE_SAMPLE)
    while math.gcd(stride, STREAM_PERIOD) != 1:
        stride += 1
    return stream[::stride]


def run_count(request: dict) -> int:
    return len(request.get("scales") or [0])


def serve_request_cold(request: dict) -> None:
    """What a stateless runner pays: fresh session, serial runs."""
    sim = Simulator.from_netlist(
        request["netlist"],
        tuple(request["grid"]),
        outputs=request.get("outputs"),
        basis=request["basis"],
    )
    u = sim.bound_input
    for scale in request.get("scales") or [request.get("scale", 1.0)]:
        if scale == 1.0:
            sim.run(u)
        else:
            sim.run(lambda t, _s=scale: _s * np.asarray(u(t)))


class DaemonHandle:
    """A live service daemon in a background thread, plus cleanup."""

    def __init__(self, **kwargs):
        import threading

        self._started = threading.Event()
        self.service = None

        def announce(svc):
            self.service = svc
            self._started.set()

        self.thread = threading.Thread(
            target=serve,
            kwargs={"announce": announce, "port": 0, **kwargs},
            daemon=True,
        )
        self.thread.start()
        assert self._started.wait(30), "service failed to start"

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.service.port, **kwargs)

    def stop(self) -> None:
        try:
            with self.client(timeout=10) as c:
                c.shutdown()
        except OSError:
            pass
        self.thread.join(timeout=30)


def fire_stream(
    stream: list[dict], clients: int, make_client, timeout: float = 300.0
) -> float:
    """Replay the stream from ``clients`` concurrent connections.

    Returns the wall time from first send to last response.  Requests
    are interleaved round-robin so every connection carries the full
    workload mix concurrently.
    """

    def worker(shard: list[dict]) -> None:
        with make_client(timeout=timeout) as c:
            for request in shard:
                c.simulate(**request)

    shards = [stream[k::clients] for k in range(clients)]
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(worker, shards))
    return time.perf_counter() - start


def test_service_coalesced_throughput(benchmark):
    from conftest import bench_scale, register_metric, register_row

    stream = request_stream(CLIENTS * REQUESTS_PER_CLIENT * bench_scale())
    total_runs = sum(run_count(r) for r in stream)

    # -- serial-per-request baseline (mix-preserving subsample) --------
    subsample = baseline_subsample(stream)
    sub_runs = sum(run_count(r) for r in subsample)
    start = time.perf_counter()
    for request in subsample:
        serve_request_cold(request)
    serial_wall = time.perf_counter() - start
    serial_rate = sub_runs / serial_wall

    # -- the coalescing daemon -----------------------------------------
    handle = DaemonHandle(coalesce_ms=10.0, max_batch=96, workers=2)
    try:
        service_wall = benchmark.pedantic(
            lambda: fire_stream(stream, CLIENTS, handle.client),
            rounds=1,
            iterations=1,
        )
        with handle.client() as c:
            stats = c.stats()

            # warm-bank responses are bit-identical to a cold solve
            out = c.simulate(
                netlist=DECK_MAIN, grid=GRID, basis=BASIS, outputs=OUTPUTS
            )
        cold = Simulator.from_netlist(
            DECK_MAIN, tuple(GRID), outputs=OUTPUTS, basis=BASIS
        )
        res = cold.run(cold.bound_input)
        t_cold = res.sample_times()
        np.testing.assert_array_equal(np.asarray(out["t"]), t_cold)
        np.testing.assert_array_equal(
            np.asarray(out["values"]), res.outputs(t_cold)
        )
    finally:
        handle.stop()

    service_rate = total_runs / service_wall
    speedup = service_rate / serial_rate
    p50 = stats["latency_ms"]["p50"]
    p99 = stats["latency_ms"]["p99"]

    assert stats["requests"] == len(stream)
    assert stats["errors"] == 0
    assert stats["coalesced_batches"] >= 1, "no batch ever coalesced"
    assert stats["coalesce_ratio"] > 1.0
    assert stats["sessions"]["hits"] > stats["sessions"]["misses"]

    register_metric(
        "service_coalesced_throughput",
        speedup,
        serial_rate_runs_per_s=serial_rate,
        service_rate_runs_per_s=service_rate,
        requests=len(stream),
        runs=total_runs,
        clients=CLIENTS,
        p50_ms=p50,
        p99_ms=p99,
        coalesce_ratio=stats["coalesce_ratio"],
        largest_batch=stats["largest_batch"],
        session_hit_rate=stats["sessions"]["hits"]
        / max(1, stats["sessions"]["hits"] + stats["sessions"]["misses"]),
        claim=f">= {SERVICE_CLAIM:g}x serial-per-request",
    )
    register_row(
        SERVICE_TABLE,
        SERVICE_COLUMNS,
        [
            f"{len(stream)} req / {total_runs} runs, {CLIENTS} clients",
            f"{serial_rate:.1f} runs/s",
            f"{service_rate:.1f} runs/s",
            f"{speedup:.2f}x",
            f"{p50:.1f} / {p99:.1f} ms",
            f">= {SERVICE_CLAIM:g}x",
        ],
    )
    assert speedup >= SERVICE_CLAIM, (
        f"coalesced throughput {speedup:.2f}x below the {SERVICE_CLAIM:g}x claim"
    )


# ----------------------------------------------------------------------
# standalone burst mode: the CI service smoke test
# ----------------------------------------------------------------------
def burst(host: str, port: int, requests: int, clients: int) -> dict:
    """Fire a small mixed burst at a live daemon; return its stats."""
    stream = request_stream(requests)

    def make_client(timeout: float = 300.0) -> ServiceClient:
        return ServiceClient(host, port, timeout=timeout)

    wall = fire_stream(stream, clients, make_client)
    with make_client() as c:
        stats = c.stats()
    stats["burst_wall_s"] = wall
    stats["burst_requests"] = len(stream)
    return stats


def main(argv=None) -> int:
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="Service smoke: fire a mixed burst at a live daemon "
        "and assert it coalesced work and hit its caches."
    )
    parser.add_argument("--burst", action="store_true", required=True,
                        help="run the burst smoke (the only standalone mode)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to stop afterwards")
    args = parser.parse_args(argv)

    stats = burst(args.host, args.port, args.requests, args.clients)
    print(json.dumps(stats, indent=2, sort_keys=True))

    failures = []
    if stats["errors"]:
        failures.append(f"{stats['errors']} request(s) errored")
    if stats["coalesced_batches"] < 1:
        failures.append("no batch ever coalesced")
    if stats["sessions"]["hits"] < 1:
        failures.append("no session-cache hit")
    if stats["bank"]["hits"] < 1:
        failures.append("no pencil-bank hit")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)

    if args.shutdown:
        with ServiceClient(args.host, args.port) as c:
            c.shutdown()
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Model-reduction ablation (extension beyond the paper).

Power-grid transient analysis is typically run many times (load
patterns, corners); reducing the MNA model once with Krylov moment
matching and simulating the small model amortises dramatically.  This
bench reports reduction cost, per-simulation runtime, and accuracy for
the Table II grid -- full MNA vs reduced model, both solved with OPM.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import average_relative_error_db, sample_outputs
from repro.core import krylov_reduce, simulate_opm
from repro.experiments import table2_workload

from conftest import bench_scale, format_db, format_ms, register_row

TABLE = "MOR ABLATION (power grid, OPM on full vs reduced model)"
COLUMNS = ["Model", "Size", "Per-simulation time", "Error vs full (eq. 30)"]


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    wl = table2_workload(nx=8 * scale, ny=8 * scale, nz=3)
    full_run = simulate_opm(wl["mna"], wl["u"], (wl["t_end"], wl["base_steps"]))
    wl["y_full"] = sample_outputs(full_run, wl["sample_times"])
    return wl


def test_full_model_row(benchmark, workload):
    wl = workload

    def run():
        return simulate_opm(wl["mna"], wl["u"], (wl["t_end"], wl["base_steps"]))

    benchmark(run)
    register_row(
        TABLE,
        COLUMNS,
        [
            "Full MNA",
            wl["mna"].n_states,
            format_ms(benchmark.stats.stats.mean),
            "-",
        ],
    )


@pytest.mark.parametrize("q", [8, 16])
def test_reduced_model_rows(benchmark, workload, q):
    wl = workload
    t0 = time.perf_counter()
    reduced = krylov_reduce(wl["mna"], q, expansion_point=1e9)
    reduce_time = time.perf_counter() - t0

    def run():
        return simulate_opm(reduced, wl["u"], (wl["t_end"], wl["base_steps"]))

    result = benchmark(run)
    err = average_relative_error_db(
        wl["y_full"], sample_outputs(result, wl["sample_times"])
    )
    register_row(
        TABLE,
        COLUMNS,
        [
            f"Reduced (q={q}, build {reduce_time * 1e3:.1f} ms)",
            reduced.n_states,
            format_ms(benchmark.stats.stats.mean),
            format_db(err),
        ],
    )
    assert err < -25.0  # reduced model reproduces the grid waveform

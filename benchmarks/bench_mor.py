"""Model-reduction ablation (extension beyond the paper).

Power-grid transient analysis is typically run many times (load
patterns, corners); reducing the MNA model once with Krylov moment
matching and simulating the small model amortises dramatically.  This
bench reports reduction cost, per-simulation runtime, and accuracy for
the Table II grid -- full MNA vs reduced model, both solved with OPM.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import average_relative_error_db, sample_outputs
from repro.core import Simulator, krylov_reduce, simulate_opm
from repro.engine.reduction import ReductionPlan, clear_model_cache
from repro.experiments import table2_workload

from conftest import bench_scale, format_db, format_ms, register_metric, register_row

TABLE = "MOR ABLATION (power grid, OPM on full vs reduced model)"
COLUMNS = ["Model", "Size", "Per-simulation time", "Error vs full (eq. 30)"]

ENGINE_TABLE = "MOR ENGINE (certified reduced sessions)"
ENGINE_COLUMNS = ["Workload", "Full engine", "Reduced engine", "Speedup", "Claim"]


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    wl = table2_workload(nx=8 * scale, ny=8 * scale, nz=3)
    full_run = simulate_opm(wl["mna"], wl["u"], (wl["t_end"], wl["base_steps"]))
    wl["y_full"] = sample_outputs(full_run, wl["sample_times"])
    return wl


def test_full_model_row(benchmark, workload):
    wl = workload

    def run():
        return simulate_opm(wl["mna"], wl["u"], (wl["t_end"], wl["base_steps"]))

    benchmark(run)
    register_row(
        TABLE,
        COLUMNS,
        [
            "Full MNA",
            wl["mna"].n_states,
            format_ms(benchmark.stats.stats.mean),
            "-",
        ],
    )


@pytest.mark.parametrize("q", [8, 16])
def test_reduced_model_rows(benchmark, workload, q):
    wl = workload
    t0 = time.perf_counter()
    reduced = krylov_reduce(wl["mna"], q, expansion_point=1e9)
    reduce_time = time.perf_counter() - t0

    def run():
        return simulate_opm(reduced, wl["u"], (wl["t_end"], wl["base_steps"]))

    result = benchmark(run)
    err = average_relative_error_db(
        wl["y_full"], sample_outputs(result, wl["sample_times"])
    )
    register_row(
        TABLE,
        COLUMNS,
        [
            f"Reduced (q={q}, build {reduce_time * 1e3:.1f} ms)",
            reduced.n_states,
            format_ms(benchmark.stats.stats.mean),
            format_db(err),
        ],
    )
    assert err < -25.0  # reduced model reproduces the grid waveform


# ----------------------------------------------------------------------
# MOR-in-the-loop claim (engine/reduction.py: certified reduced plans)
# ----------------------------------------------------------------------

#: moments matched by the claim's reduction (order 40 of ~4000 states;
#: measured output error 4.4e-7 <= rtol on this workload)
MOR_SWEEP_MOMENTS = 40
MOR_SWEEP_AMPS = 96
MOR_SWEEP_RTOL = 1e-6
MOR_SWEEP_CLAIM = 5.0


def test_reduced_sweep_claim(benchmark):
    """Certified reduced session beats the full engine by >= 5x.

    A 96-corner amplitude sweep of the deep (5-layer) Table II power
    grid, full engine vs ``Simulator(..., reduce=ReductionPlan(40))``.
    The reduced side pays *everything* in the timed region -- Arnoldi
    build, bind-time certification, calibration, the reduced sweep, the
    per-run residual guard, and the lift back to full-order
    coefficients -- so the recorded ratio is the honest bind+run
    speedup a cold session observes.  The reduced coefficients must
    stay within the certified ``rtol`` of the full solve (measured and
    recorded, not just bounded).
    """
    wl = table2_workload(nx=26, ny=26, nz=5)
    mna = wl["mna"]
    n = mna.n_states
    assert n >= 2000, "acceptance requires a >=2000-state grid"
    grid = (wl["t_end"], wl["base_steps"])
    amps = np.linspace(0.25, 2.0, MOR_SWEEP_AMPS)
    plan = ReductionPlan(n_moments=MOR_SWEEP_MOMENTS, rtol=MOR_SWEEP_RTOL)
    results = {}

    def run():
        full_wall = np.inf
        for _ in range(3):
            start = time.perf_counter()
            results["full"] = Simulator(mna, grid).sweep(amps)
            full_wall = min(full_wall, time.perf_counter() - start)
        reduced_wall = np.inf
        for _ in range(3):
            clear_model_cache()  # time a genuinely cold Arnoldi build
            start = time.perf_counter()
            results["reduced"] = Simulator(mna, grid, reduce=plan).sweep(amps)
            reduced_wall = min(reduced_wall, time.perf_counter() - start)
        return full_wall, reduced_wall

    full_wall, reduced_wall = benchmark.pedantic(run, rounds=1, iterations=1)
    full_res, red_res = results["full"], results["reduced"]
    mor = red_res.info["mor"]
    worst = max(
        float(np.max(np.abs(r.coefficients - f.coefficients)))
        for r, f in zip(red_res, full_res)
    )
    scale = max(float(np.max(np.abs(f.coefficients))) for f in full_res)
    rel_error = worst / scale
    speedup = full_wall / reduced_wall

    register_row(
        ENGINE_TABLE,
        ENGINE_COLUMNS,
        [
            f"{MOR_SWEEP_AMPS}-corner sweep (MNA n={n}, "
            f"order {mor['order']}, m={wl['base_steps']})",
            f"{full_wall * 1e3:.1f} ms",
            f"{reduced_wall * 1e3:.1f} ms (build {mor['reduce_seconds'] * 1e3:.1f} ms)",
            f"{speedup:.1f}x",
            f">= {MOR_SWEEP_CLAIM}x at rtol {MOR_SWEEP_RTOL:g}",
        ],
    )
    register_metric(
        "mor_reduced_sweep",
        speedup,
        full_seconds=full_wall,
        reduced_seconds=reduced_wall,
        reduce_seconds=mor["reduce_seconds"],
        n_states=n,
        order=mor["order"],
        moments=MOR_SWEEP_MOMENTS,
        batch=MOR_SWEEP_AMPS,
        m=wl["base_steps"],
        bound=mor["bound"],
        rtol=mor["rtol"],
        certified=mor["certified"],
        observed_rel_error=rel_error,
        claim=f">= {MOR_SWEEP_CLAIM}x bind+run speedup at certified "
        f"rtol <= {MOR_SWEEP_RTOL:g}",
    )
    assert mor["reduced"] and not mor["fallback"]
    assert mor["certified"] and mor["bound"] <= MOR_SWEEP_RTOL
    assert rel_error <= MOR_SWEEP_RTOL, (
        f"reduced sweep deviates by {rel_error:.2e} relative (> rtol)"
    )
    assert speedup >= MOR_SWEEP_CLAIM, (
        f"reduced-sweep speedup only {speedup:.2f}x"
    )

"""Basis-choice ablation (paper section I discussion).

The paper argues OPM "can readily switch to using other basis
functions, each having its own merits".  This benchmark solves one RC
interconnect problem with every basis family and reports cost and
accuracy against the analytic solution:

* block pulse -- the paper's default, triangular fast path;
* Walsh / Haar -- exact transforms of the block-pulse solution
  (identical accuracy, extra transform cost, coefficient spectra with
  different truncation behaviour);
* Legendre / Chebyshev -- spectral integral-form OPM: far higher
  accuracy per degree of freedom on smooth problems at dense-solve cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import (
    BlockPulseBasis,
    ChebyshevBasis,
    HaarBasis,
    LegendreBasis,
    TimeGrid,
    WalshBasis,
)
from repro.circuits import Constant, assemble_mna, rc_ladder_netlist
from repro.core import simulate_opm, simulate_opm_integral, simulate_opm_transformed

from conftest import format_ms, register_row

TABLE = "BASIS ABLATION (RC ladder step response)"
COLUMNS = ["Basis", "Terms", "CPU time", "Max error vs analytic"]

T_END = 0.05
M_PIECEWISE = 256
M_SPECTRAL = 24


@pytest.fixture(scope="module")
def problem():
    nl = rc_ladder_netlist(6, r=1.0, c=1e-3, drive_waveform=Constant(1.0))
    system = assemble_mna(nl, outputs=["v6"])
    u = nl.input_function()
    # converged reference from a very fine OPM run
    ref = simulate_opm(system, u, (T_END, 8192))
    t = np.linspace(0.05 * T_END, 0.95 * T_END, 33)
    return {"system": system, "u": u, "t": t, "y_ref": ref.outputs_smooth(t)[0]}


def _error(result, problem) -> float:
    sampler = getattr(result, "outputs_smooth", result.outputs)
    return float(np.max(np.abs(sampler(problem["t"])[0] - problem["y_ref"])))


def test_block_pulse_row(benchmark, problem):
    def run():
        return simulate_opm(problem["system"], problem["u"], (T_END, M_PIECEWISE))

    result = benchmark(run)
    register_row(
        TABLE,
        COLUMNS,
        [
            "Block pulse",
            M_PIECEWISE,
            format_ms(benchmark.stats.stats.mean),
            f"{_error(result, problem):.2e}",
        ],
    )


@pytest.mark.parametrize("family", ["walsh", "haar"])
def test_transformed_rows(benchmark, problem, family):
    basis = (
        WalshBasis(T_END, M_PIECEWISE)
        if family == "walsh"
        else HaarBasis(T_END, M_PIECEWISE)
    )

    def run():
        return simulate_opm_transformed(problem["system"], problem["u"], basis)

    result = benchmark(run)
    err = float(
        np.max(np.abs(result.outputs(problem["t"])[0] - problem["y_ref"]))
    )
    register_row(
        TABLE,
        COLUMNS,
        [
            basis.name,
            M_PIECEWISE,
            format_ms(benchmark.stats.stats.mean),
            f"{err:.2e}",
        ],
    )


@pytest.mark.parametrize("family", ["legendre", "chebyshev"])
def test_spectral_rows(benchmark, problem, family):
    basis = (
        LegendreBasis(T_END, M_SPECTRAL)
        if family == "legendre"
        else ChebyshevBasis(T_END, M_SPECTRAL)
    )

    def run():
        return simulate_opm_integral(problem["system"], problem["u"], basis)

    result = benchmark(run)
    err = float(np.max(np.abs(result.outputs(problem["t"])[0] - problem["y_ref"])))
    register_row(
        TABLE,
        COLUMNS,
        [
            basis.name,
            M_SPECTRAL,
            format_ms(benchmark.stats.stats.mean),
            f"{err:.2e}",
        ],
    )
    # spectral accuracy per dof: 24 terms beat 256 block pulses (the
    # measured floor is the fine-OPM reference itself, ~1e-5)
    assert err < 5e-5

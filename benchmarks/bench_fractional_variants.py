"""Ablation of fractional-solver constructions (DESIGN.md section 4).

Same scalar half-order FDE ``d^{1/2}x = -x + 1`` (analytic solution via
Mittag-Leffler) solved four ways at equal resolution:

* OPM differential form -- the paper's ``D^alpha`` Tustin power series;
* OPM integral form, Tustin construction -- exact inverse of the above;
* OPM integral form, Riemann-Liouville construction -- the classical
  block-pulse operational matrix (paper refs [2], [4]);
* Grünwald-Letnikov stepping -- the classical time-domain scheme.

Reports runtime and exact error for each, quantifying the paper's
design choice of the Tustin-power construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import BlockPulseBasis, TimeGrid
from repro.core import FractionalDescriptorSystem, simulate_opm, simulate_opm_integral
from repro.fractional import fde_step_response, simulate_grunwald_letnikov

from conftest import format_ms, register_row

TABLE = "FRACTIONAL VARIANTS (scalar FDE, exact reference)"
COLUMNS = ["Construction", "m", "CPU time", "Max error vs Mittag-Leffler"]

T_END = 2.0
M = 800


@pytest.fixture(scope="module")
def problem():
    system = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
    t = np.linspace(0.1, 1.9, 37)
    return {"system": system, "t": t, "exact": fde_step_response(0.5, 1.0, t)}


def _err(values, problem) -> float:
    return float(np.max(np.abs(values - problem["exact"])))


def test_opm_differential_row(benchmark, problem):
    def run():
        return simulate_opm(problem["system"], 1.0, (T_END, M))

    result = benchmark(run)
    err = _err(result.states_smooth(problem["t"])[0], problem)
    register_row(
        TABLE,
        COLUMNS,
        ["OPM D^alpha (Tustin series)", M, format_ms(benchmark.stats.stats.mean), f"{err:.2e}"],
    )
    assert err < 1e-2


@pytest.mark.parametrize("construction", ["tustin", "rl"])
def test_opm_integral_rows(benchmark, problem, construction):
    basis = BlockPulseBasis(TimeGrid.uniform(T_END, M))

    def run():
        return simulate_opm_integral(
            problem["system"], 1.0, basis, construction=construction
        )

    result = benchmark(run)
    err = _err(result.states_smooth(problem["t"])[0], problem)
    register_row(
        TABLE,
        COLUMNS,
        [
            f"OPM integral form ({construction.upper()} matrix)",
            M,
            format_ms(benchmark.stats.stats.mean),
            f"{err:.2e}",
        ],
    )
    assert err < 1e-2


def test_grunwald_letnikov_row(benchmark, problem):
    def run():
        return simulate_grunwald_letnikov(problem["system"], 1.0, T_END, M)

    result = benchmark(run)
    err = _err(result.states(problem["t"])[0], problem)
    register_row(
        TABLE,
        COLUMNS,
        ["Grünwald-Letnikov stepping", M, format_ms(benchmark.stats.stats.mean), f"{err:.2e}"],
    )
    assert err < 1e-2

"""Adaptive-step ablation (paper section III-B).

"Adaptive time step can be utilized in OPM to provide a more flexible
simulation with low CPU time."  Workload: a stiff two-time-scale RC
circuit (fast 10 us transient, slow 10 ms settle).  The benchmark
compares, at matched accuracy:

* fixed-step OPM (must resolve the fast transient everywhere), and
* adaptive OPM (small steps early, large steps late),

reporting step counts, runtime, and achieved error -- plus the
pilot-equidistribution route for a fractional variant of the same
circuit (eq. (25) needs the steps up front).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basis import TimeGrid
from repro.core import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    equidistributed_steps,
    simulate_opm,
    simulate_opm_adaptive,
)

from conftest import format_ms, register_row

TABLE = "ADAPTIVE ABLATION (stiff two-time-scale circuit)"
COLUMNS = ["Method", "Steps", "CPU time", "Max error"]

T_END = 10e-3


@pytest.fixture(scope="module")
def stiff_problem():
    # poles at 1e5 (10 us) and 1e2 (10 ms)
    E = np.eye(2)
    A = np.diag([-1e5, -1e2])
    B = np.array([[1e5], [1e2]])  # unit DC gain on both states
    system = DescriptorSystem(E, A, B)
    t = np.geomspace(1e-6, 0.95 * T_END, 60)
    exact = 1.0 - np.exp(np.outer([-1e5, -1e2], t))
    return {"system": system, "t": t, "exact": exact}


def _max_err(result, problem) -> float:
    values = result.states_smooth(problem["t"])
    return float(np.max(np.abs(values - problem["exact"])))


def test_fixed_step_row(benchmark, stiff_problem):
    m = 20000  # needed to resolve the 10 us transient over 10 ms

    def run():
        return simulate_opm(stiff_problem["system"], 1.0, (T_END, m))

    result = benchmark(run)
    err = _max_err(result, stiff_problem)
    register_row(
        TABLE,
        COLUMNS,
        ["OPM fixed step", m, format_ms(benchmark.stats.stats.mean), f"{err:.2e}"],
    )


def test_adaptive_row(benchmark, stiff_problem):
    def run():
        return simulate_opm_adaptive(
            stiff_problem["system"], 1.0, T_END, rtol=1e-5
        )

    result = benchmark(run)
    err = _max_err(result, stiff_problem)
    register_row(
        TABLE,
        COLUMNS,
        [
            "OPM adaptive (rtol=1e-5)",
            result.m,
            format_ms(benchmark.stats.stats.mean),
            f"{err:.2e}",
        ],
    )
    # the flexibility claim: far fewer steps than the fixed grid needs
    assert result.m < 5000
    assert err < 5e-3


def test_fractional_equidistribution_row(benchmark, stiff_problem):
    system = FractionalDescriptorSystem(
        0.5, np.eye(2), np.diag([-1e2, -1e1]), np.array([[1e2], [1e1]])
    )
    pilot = simulate_opm(system, 1.0, (T_END, 64))
    steps = equidistributed_steps(pilot, 96)

    def run():
        return simulate_opm(system, 1.0, TimeGrid.from_steps(steps))

    result = benchmark(run)
    uniform = simulate_opm(system, 1.0, (T_END, 96))
    fine = simulate_opm(system, 1.0, (T_END, 4096))
    t = np.geomspace(T_END / 500.0, 0.95 * T_END, 40)
    ref = fine.states_smooth(t)
    err_adapt = float(np.max(np.abs(result.states_smooth(t) - ref)))
    err_unif = float(np.max(np.abs(uniform.states_smooth(t) - ref)))
    register_row(
        TABLE,
        COLUMNS,
        [
            "OPM fractional, equidistributed steps (m=96)",
            96,
            format_ms(benchmark.stats.stats.mean),
            f"{err_adapt:.2e} (uniform: {err_unif:.2e})",
        ],
    )
    assert err_adapt < err_unif  # adapted grid beats uniform at equal m

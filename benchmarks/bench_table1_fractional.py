"""Table I reproduction: fractional transmission line, OPM vs FFT.

Paper section V-A / Table I: simulate the 7-state, 2-port,
``alpha = 1/2`` transmission-line model over ``[0, 2.7 ns)`` with
``m = 8`` block pulses; compare the FFT frequency-domain method with 8
(``FFT-1``) and 100 (``FFT-2``) sampling points against OPM using the
eq. (30) dB metric (OPM is the reference row, shown as "-").

A Grünwald-Letnikov row is added beyond the paper as the classical
time-domain fractional baseline.

Expected shape (paper: FFT-1 -29.2 dB / 6.09 ms, FFT-2 -46.5 dB /
40.7 ms, OPM - / 3.56 ms): FFT-2 closer to OPM than FFT-1, OPM cheapest,
FFT cost growing with its sample count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import relative_error_db, sample_outputs
from repro.baselines import simulate_fft
from repro.core import simulate_opm
from repro.experiments import table1_workload
from repro.fractional import simulate_grunwald_letnikov

from conftest import format_db, format_ms, register_row

TABLE = "TABLE I (fractional transmission line)"
COLUMNS = ["Method", "CPU time", "Relative Error vs OPM (eq. 30)"]


@pytest.fixture(scope="module")
def workload():
    wl = table1_workload()
    opm = simulate_opm(wl["model"], wl["u"], (wl["t_end"], wl["m"]))
    wl["y_opm"] = sample_outputs(opm, wl["sample_times"])
    return wl


def test_opm_row(benchmark, workload):
    wl = workload

    def run():
        return simulate_opm(wl["model"], wl["u"], (wl["t_end"], wl["m"]))

    result = benchmark(run)
    assert result.coefficients.shape == (7, wl["m"])
    register_row(
        TABLE, COLUMNS, ["OPM (m=8)", format_ms(benchmark.stats.stats.mean), "-"]
    )


@pytest.mark.parametrize("label,points", [("FFT-1 (8 pts)", 8), ("FFT-2 (100 pts)", 100)])
def test_fft_rows(benchmark, workload, label, points):
    wl = workload

    def run():
        return simulate_fft(wl["model"], wl["u"], wl["t_end"], points)

    result = benchmark(run)
    err = relative_error_db(wl["y_opm"], sample_outputs(result, wl["sample_times"]))
    assert err < -5.0
    register_row(
        TABLE, COLUMNS, [label, format_ms(benchmark.stats.stats.mean), format_db(err)]
    )


def test_grunwald_letnikov_row(benchmark, workload):
    """Extra row (not in the paper): the classical GL stepper at m=8."""
    wl = workload

    def run():
        return simulate_grunwald_letnikov(wl["model"], wl["u"], wl["t_end"], wl["m"])

    result = benchmark(run)
    err = relative_error_db(wl["y_opm"], sample_outputs(result, wl["sample_times"]))
    register_row(
        TABLE,
        COLUMNS,
        ["GL (m=8, extra)", format_ms(benchmark.stats.stats.mean), format_db(err)],
    )

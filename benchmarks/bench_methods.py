"""Cross-method validation battery (the method-zoo CI leg).

Runs :func:`repro.fractional.run_method_battery` -- every registered
fractional method (the native OPM route included) against the
Mittag-Leffler analytic reference battery -- and:

* writes the full machine-readable payload to
  ``benchmarks/out/BENCH_methods.json`` (records + per-method summary);
* registers one ``method_zoo_<name>_digits`` metric per method, which
  ``benchmarks/trajectory.py`` enforces as a trajectory claim (the
  floor is the worst-case fine-resolution accuracy the battery must
  reach -- target equals floor, as for every claim);
* renders a human-readable accuracy/cost table.

``REPRO_BENCH_SCALE >= 2`` (the nightly leg) widens the battery with
extreme orders (``alpha = 0.3``, ``alpha = 1.5``) and a stiffer pair;
the floors below hold at both scales (accuracy claims are
deterministic, unlike timing ratios).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.fractional import run_method_battery
from repro.fractional.battery import reference_battery

from conftest import OUT_DIR, bench_scale, register_metric, register_row

TABLE = "METHOD ZOO (worst-case digits vs Mittag-Leffler battery)"
COLUMNS = [
    "Method",
    "fine m",
    "cases",
    "worst case",
    "digits (worst)",
    "digits / 100 coeffs",
    "wall",
    "floor",
]

JSON_PATH = OUT_DIR / "BENCH_methods.json"

#: Enforced worst-case correct digits at the fine resolution, per
#: method.  Measured headroom (both scales): opm 3.18, gl 2.79,
#: jacobi 3.27, oustaloup 1.65 -- floors sit ~0.15-0.3 digits below
#: the measured worst so numerical jitter cannot flake the claim,
#: while any real regression (a wrong operator, a broken sweep) loses
#: far more than that.
FLOORS = {"opm": 3.0, "gl": 2.5, "jacobi": 3.0, "oustaloup": 1.5}


@pytest.fixture(scope="module")
def battery_payload():
    """Run the full battery once and persist BENCH_methods.json."""
    payload = run_method_battery(scale=bench_scale())
    payload["generated_unix"] = time.time()
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.mark.parametrize("method", sorted(FLOORS))
def test_method_zoo_accuracy(benchmark, battery_payload, method):
    summary = battery_payload["summary"][method]
    floor = FLOORS[method]

    # time one representative solve (the worst fine-resolution case)
    # so the benchmark column reflects a real run, not the battery
    cases = {c.name: c for c in reference_battery(battery_payload["scale"])}
    worst = cases[summary["worst_case"]]

    def run():
        from repro.fractional import evaluate_method

        return evaluate_method(method, worst, summary["fine_m"])

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    assert record["supported"], record.get("reason")

    register_metric(
        f"method_zoo_{method}_digits",
        summary["digits"],
        floor=floor,
        worst_case=summary["worst_case"],
        fine_m=summary["fine_m"],
        cases_validated=summary["cases_validated"],
        digits_per_100_coefficients=summary["digits_per_100_coefficients"],
        claim=f">= {floor:g} digits",
    )
    register_row(
        TABLE,
        COLUMNS,
        [
            method,
            summary["fine_m"],
            summary["cases_validated"],
            summary["worst_case"],
            f"{summary['digits']:.2f}",
            f"{summary['digits_per_100_coefficients']:.2f}",
            f"{summary['wall_s'] * 1e3:.1f} ms",
            f">= {floor:g}",
        ],
    )
    assert summary["digits"] >= floor, (
        f"method {method!r} dropped to {summary['digits']:.2f} correct digits "
        f"on {summary['worst_case']!r} (floor {floor:g})"
    )


def test_method_zoo_every_method_validated(benchmark, battery_payload):
    """Every registered method must validate and carry a floor."""

    def check():
        return set(battery_payload["summary"])

    names = benchmark.pedantic(check, rounds=1, iterations=1)
    assert names == set(FLOORS)
    for row in battery_payload["summary"].values():
        assert row["cases_validated"] >= 1

"""Perf-trajectory guard: merge benchmark artifacts, verify the claims.

Merges ``benchmarks/out/BENCH_scaling.json``,
``benchmarks/out/BENCH_bases.json`` and
``benchmarks/out/BENCH_methods.json`` into one
``benchmarks/out/BENCH_trajectory.json`` stamped with the commit SHA
and date, and *fails* (exit code 1) when any recorded speedup claim is
missing -- so a silently-skipped benchmark can never look green in CI.

Required claims (the engine's headline numbers across PRs):

* ``warm_session_speedup``    >= 5.0   (PR 1: cached sessions)
* ``batched_sweep_speedup``   >= 3.0   (PR 1: batched multi-RHS sweeps)
* ``windowed_march_speedup``  >= 1.8   (PR 2: windowed marching,
  recalibrated twice -- see WINDOWED_MARCH_FLOOR in bench_scaling.py)
* ``parallel_ensemble_speedup`` >= 2.5 (PR 5: parallel ensembles)
* ``cross_basis_coefficient_ratio`` >= 10.0 (PR 3: spectral bases)
* ``mor_reduced_sweep``       >= 5.0   (PR 6: certified reduced plans)
* ``service_coalesced_throughput`` >= 3.0 (PR 7: the coalescing daemon)
* ``soe_long_march``          >= 3.0   (PR 8: compressed fractional
  memory -- sum-of-exponentials tail with certified error)
* ``method_zoo_*_digits``     (PR 10: the fractional method zoo --
  worst-case correct digits of each registered method, the native OPM
  route included, against the Mittag-Leffler reference battery; see
  ``bench_methods.py``.  Accuracy floors, not timing ratios, so they
  are deterministic.)

With ``--enforce``, claims must also reach their *enforcement floor*
-- exactly the ratio the owning benchmark asserts itself, so the guard
never flakes where the bench would pass (see ``REQUIRED_CLAIMS``;
since the windowed-march recalibration every claim's target equals
its floor -- a claimed number is an enforced number).  A
metric may record ``"enforced": false`` when its environment cannot
support the claim (the parallel-ensemble benchmark does so on
single-core machines -- the value is still recorded, distinguishing
"ran but unenforceable here" from "silently skipped"); such claims are
reported but do not fail the enforcing run.

Usage (what CI runs after the benchmark smoke)::

    python benchmarks/trajectory.py --sha "$GITHUB_SHA" --enforce

Standard library only: the guard must be runnable in a bare CI step
before (or without) installing the package.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: (metric name, claimed trajectory value, enforcement floor) -- every
#: entry must be *present* in the merged trajectory; under --enforce
#: the measured value must also reach the floor (unless its record
#: says ``enforced: false``).  The floor mirrors exactly what each
#: benchmark itself asserts, so the guard never flakes where the bench
#: would pass, and every target now equals its floor: the windowed
#: march claims 1.8x over a 30x horizon, recalibrated after the PR 8
#: per-column kernel fast path sped the single giant-window baseline
#: past the old 10x-horizon shape (five measured runs span
#: 2.33-2.50x -- see WINDOWED_MARCH_FLOOR in bench_scaling.py); the
#: others claim the ratios their benchmarks assert.
REQUIRED_CLAIMS = (
    ("warm_session_speedup", 5.0, 5.0),
    ("batched_sweep_speedup", 3.0, 3.0),
    ("windowed_march_speedup", 1.8, 1.8),
    ("parallel_ensemble_speedup", 2.5, 2.5),
    ("cross_basis_coefficient_ratio", 10.0, 10.0),
    ("mor_reduced_sweep", 5.0, 5.0),
    ("service_coalesced_throughput", 3.0, 3.0),
    ("soe_long_march", 3.0, 3.0),
    ("hierarchy_flatten_throughput", 5000.0, 5000.0),
    ("method_zoo_opm_digits", 3.0, 3.0),
    ("method_zoo_gl_digits", 2.5, 2.5),
    ("method_zoo_jacobi_digits", 3.0, 3.0),
    ("method_zoo_oustaloup_digits", 1.5, 1.5),
)


def load_json(path: Path) -> dict | None:
    """Parse a benchmark artifact, ``None`` when absent."""
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def build_trajectory(
    scaling: dict | None,
    bases: dict | None,
    methods: dict | None = None,
    *,
    sha: str = "unknown",
    date: str | None = None,
) -> dict:
    """Merge the benchmark artifacts into one trajectory payload.

    Every required claim becomes an entry with ``present`` /
    ``meets_threshold`` / ``enforced`` flags; the full source metric
    records ride along for cross-PR diffing.  The method-zoo claims
    are satisfied either by metrics registered in the scaling payload
    (the CI smoke runs one pytest session) or derived directly from
    the ``BENCH_methods.json`` summary.
    """
    metrics = dict((scaling or {}).get("metrics", {}))
    for name, row in ((methods or {}).get("summary") or {}).items():
        metrics.setdefault(
            f"method_zoo_{name}_digits",
            {
                "value": row.get("digits"),
                "worst_case": row.get("worst_case"),
                "fine_m": row.get("fine_m"),
                "cases_validated": row.get("cases_validated"),
            },
        )
    claims = []
    for name, threshold, floor in REQUIRED_CLAIMS:
        record = metrics.get(name)
        value = record.get("value") if isinstance(record, dict) else None
        claims.append(
            {
                "name": name,
                "threshold": threshold,
                "floor": floor,
                "value": value,
                "present": record is not None,
                "meets_threshold": value is not None and value >= threshold,
                "meets_floor": value is not None and value >= floor,
                "enforced": (record or {}).get("enforced", True),
                "claim": (record or {}).get("claim"),
            }
        )
    if date is None:
        date = datetime.date.today().isoformat()
    return {
        "schema": 1,
        "commit": sha,
        "date": date,
        "claims": claims,
        "scaling": scaling,
        "bases": bases,
        "methods": methods,
    }


def check(trajectory: dict, *, enforce: bool) -> list[str]:
    """Return the list of failure messages (empty when green)."""
    failures = []
    for claim in trajectory["claims"]:
        name = claim["name"]
        if not claim["present"]:
            failures.append(
                f"claim {name!r} is missing: its benchmark did not run "
                "(or did not register its metric)"
            )
            continue
        if enforce and claim["enforced"] and not claim["meets_floor"]:
            failures.append(
                f"claim {name!r} below its enforcement floor: measured "
                f"{claim['value']:.3g}, required >= {claim['floor']:g} "
                f"(trajectory target {claim['threshold']:g})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge benchmark artifacts into BENCH_trajectory.json "
        "and fail on missing (or, with --enforce, unmet) speedup claims."
    )
    parser.add_argument(
        "--scaling", type=Path, default=OUT_DIR / "BENCH_scaling.json",
        help="path to BENCH_scaling.json",
    )
    parser.add_argument(
        "--bases", type=Path, default=OUT_DIR / "BENCH_bases.json",
        help="path to BENCH_bases.json",
    )
    parser.add_argument(
        "--methods", type=Path, default=OUT_DIR / "BENCH_methods.json",
        help="path to BENCH_methods.json (the method-zoo battery)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_DIR / "BENCH_trajectory.json",
        help="merged artifact to write",
    )
    parser.add_argument("--sha", default="unknown", help="commit SHA to stamp")
    parser.add_argument(
        "--enforce", action="store_true",
        help="also fail when a present claim misses its threshold "
        "(claims recorded with enforced=false are exempt)",
    )
    args = parser.parse_args(argv)

    scaling = load_json(args.scaling)
    bases = load_json(args.bases)
    methods = load_json(args.methods)
    if scaling is None:
        print(f"error: {args.scaling} not found; run the benchmark smoke first",
              file=sys.stderr)
        return 1

    trajectory = build_trajectory(scaling, bases, methods, sha=args.sha)
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} (commit {trajectory['commit']})")

    for claim in trajectory["claims"]:
        status = "MISSING"
        if claim["present"]:
            if claim["meets_threshold"]:
                status = "ok"
            elif not claim["enforced"]:
                status = "unenforced-here"
            elif claim["meets_floor"]:
                status = "below-target"
            else:
                status = "below-floor"
        value = "-" if claim["value"] is None else f"{claim['value']:.3g}"
        print(f"  {claim['name']:32s} {value:>8s}  (>= {claim['threshold']:g})  "
              f"[{status}]")

    failures = check(trajectory, enforce=args.enforce)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

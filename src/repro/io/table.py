"""Minimal ASCII table renderer.

The benchmark harness prints tables in the same row layout as the
paper's Table I / Table II; this renderer keeps that output dependency
free and stable for the EXPERIMENTS.md transcripts.
"""

from __future__ import annotations

__all__ = ["Table"]


class Table:
    """Column-aligned text table.

    Examples
    --------
    >>> t = Table(["Method", "CPU time", "Relative Error"], title="TABLE I")
    >>> t.add_row(["FFT-1", "6.09 ms", "-29.2 dB"])
    >>> t.add_row(["OPM", "3.56 ms", "-"])
    >>> print(t.render())
    TABLE I
    Method | CPU time | Relative Error
    ------ | -------- | --------------
    FFT-1  | 6.09 ms  | -29.2 dB
    OPM    | 3.56 ms  | -
    """

    def __init__(self, columns, *, title: str = "") -> None:
        self.columns = [str(c) for c in columns]
        if not self.columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, cells) -> None:
        """Append a row; cell count must match the column count."""
        cells = [str(c) for c in cells]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        return widths

    def render(self) -> str:
        """Plain text rendering with a dashed header separator."""
        widths = self._widths()
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip())
        lines.append(" | ".join("-" * w for w in widths).rstrip())
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

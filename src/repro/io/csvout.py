"""CSV writing for benchmark sweeps."""

from __future__ import annotations

import csv
from pathlib import Path

__all__ = ["write_csv"]


def write_csv(path, columns, rows) -> Path:
    """Write rows (iterable of sequences) with a header line.

    Returns the path written, for logging.

    Examples
    --------
    >>> import tempfile, os
    >>> p = write_csv(os.path.join(tempfile.mkdtemp(), "t.csv"),
    ...               ["n", "time"], [[10, 0.5], [20, 1.9]])
    >>> p.read_text().splitlines()[0]
    'n,time'
    """
    path = Path(path)
    columns = [str(c) for c in columns]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            cells = list(row)
            if len(cells) != len(columns):
                raise ValueError(
                    f"row has {len(cells)} cells, header has {len(columns)}"
                )
            writer.writerow(cells)
    return path

"""Reporting helpers: ASCII tables and CSV output for benches/examples."""

from .table import Table
from .csvout import write_csv

__all__ = ["Table", "write_csv"]

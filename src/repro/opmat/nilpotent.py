"""The nilpotent shift matrix ``Q`` and truncated polynomial arithmetic.

Paper eq. (6) defines the index-``m`` nilpotent matrix

.. math::

    Q_m = \\begin{bmatrix} 0_{(m-1)\\times 1} & I_{m-1} \\\\
                            0 & 0_{1\\times(m-1)} \\end{bmatrix},

i.e. ones on the first superdiagonal.  Every operational matrix in the
paper is a polynomial in ``Q_m``; since ``Q_m^m = 0``, the algebra of
such polynomials is the truncated power-series ring
``R[q] / (q^m)``, and a polynomial ``sum_k c_k Q^k`` is exactly the
upper-triangular Toeplitz matrix with first row ``(c_0, ..., c_{m-1})``.

This module provides that correspondence in both directions plus ring
multiplication (truncated convolution) and inversion, which are what the
rest of :mod:`repro.opmat` is built from.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int

__all__ = [
    "shift_matrix",
    "upper_toeplitz",
    "toeplitz_coefficients",
    "toeplitz_multiply",
    "toeplitz_inverse",
]


def shift_matrix(m: int) -> np.ndarray:
    """Return the index-``m`` nilpotent shift matrix ``Q_m`` (paper eq. (6)).

    Parameters
    ----------
    m:
        Matrix dimension (number of block-pulse terms).

    Returns
    -------
    numpy.ndarray
        An ``m x m`` matrix with ones on the first superdiagonal and
        zeros elsewhere.  Satisfies ``Q_m ** m == 0``.

    Examples
    --------
    >>> shift_matrix(3)
    array([[0., 1., 0.],
           [0., 0., 1.],
           [0., 0., 0.]])
    """
    m = check_positive_int(m, "m")
    q = np.zeros((m, m))
    idx = np.arange(m - 1)
    q[idx, idx + 1] = 1.0
    return q


def upper_toeplitz(first_row) -> np.ndarray:
    """Build the upper-triangular Toeplitz matrix with the given first row.

    ``upper_toeplitz(c)`` equals ``sum_k c[k] Q^k`` where ``Q`` is the
    shift matrix of matching size: entry ``(i, j)`` is ``c[j - i]`` for
    ``j >= i`` and zero below the diagonal.

    Parameters
    ----------
    first_row:
        Coefficients ``(c_0, ..., c_{m-1})`` of the polynomial in ``Q``.

    Returns
    -------
    numpy.ndarray
        The ``m x m`` upper-triangular Toeplitz matrix.
    """
    c = np.asarray(first_row, dtype=float)
    if c.ndim != 1 or c.size == 0:
        raise ValueError(f"first_row must be a non-empty 1-D sequence, got shape {c.shape}")
    m = c.size
    out = np.zeros((m, m))
    for k in range(m):
        idx = np.arange(m - k)
        out[idx, idx + k] = c[k]
    return out


def toeplitz_coefficients(matrix: np.ndarray, *, rtol: float = 1e-10) -> np.ndarray:
    """Extract the first-row coefficients of an upper-triangular Toeplitz matrix.

    This is the inverse of :func:`upper_toeplitz`.  The matrix is checked
    to actually *be* upper-triangular Toeplitz to the relative tolerance
    ``rtol`` (measured against the largest magnitude entry); operational
    matrices on non-uniform grids are not Toeplitz and are rejected.

    Raises
    ------
    ValueError
        If the matrix is not square or not upper-triangular Toeplitz.
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got shape {a.shape}")
    m = a.shape[0]
    coeffs = a[0].copy()
    reconstructed = upper_toeplitz(coeffs)
    scale = max(np.max(np.abs(a)), 1.0)
    if not np.allclose(a, reconstructed, rtol=0.0, atol=rtol * scale):
        raise ValueError("matrix is not upper-triangular Toeplitz")
    return coeffs


def toeplitz_multiply(coeffs_a, coeffs_b) -> np.ndarray:
    """Multiply two polynomials in ``Q`` (truncated convolution).

    Both inputs are first-row coefficient vectors of the same length
    ``m``; the result is the coefficient vector of the product truncated
    at ``q^{m-1}``, matching the matrix identity
    ``upper_toeplitz(a) @ upper_toeplitz(b) == upper_toeplitz(conv(a, b)[:m])``.
    """
    a = np.asarray(coeffs_a, dtype=float)
    b = np.asarray(coeffs_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(
            f"coefficient vectors must be 1-D with equal length, got {a.shape} and {b.shape}"
        )
    m = a.size
    return np.convolve(a, b)[:m]


def toeplitz_inverse(coeffs) -> np.ndarray:
    """Invert a polynomial in ``Q`` (truncated power-series inversion).

    Requires a nonzero constant term ``c_0`` (otherwise the Toeplitz
    matrix is singular).  Uses the standard recurrence

    ``d_0 = 1 / c_0``, ``d_k = -(1 / c_0) * sum_{j=1..k} c_j d_{k-j}``.

    Raises
    ------
    ValueError
        If ``c_0 == 0``.
    """
    c = np.asarray(coeffs, dtype=float)
    if c.ndim != 1 or c.size == 0:
        raise ValueError(f"coeffs must be a non-empty 1-D sequence, got shape {c.shape}")
    if c[0] == 0.0:
        raise ValueError("cannot invert: constant term c_0 is zero (singular matrix)")
    m = c.size
    d = np.zeros(m)
    d[0] = 1.0 / c[0]
    for k in range(1, m):
        acc = np.dot(c[1 : k + 1], d[:k][::-1])
        d[k] = -acc / c[0]
    return d

"""Classical Riemann-Liouville block-pulse fractional-integration matrix.

The operational-matrix literature the paper builds on (its refs [2] and
[4]) derives fractional *integration* matrices by projecting the
Riemann-Liouville integral

.. math::

    (I^{\\alpha} f)(t) = \\frac{1}{\\Gamma(\\alpha)}
        \\int_0^t (t - \\tau)^{\\alpha - 1} f(\\tau)\\, d\\tau

of each block-pulse function back onto the basis.  The result is the
upper-triangular Toeplitz matrix

.. math::

    F^{\\alpha} = \\frac{h^{\\alpha}}{\\Gamma(\\alpha + 2)}
        \\,\\mathrm{Toeplitz}(1, \\xi_1, \\xi_2, \\dots, \\xi_{m-1}),
    \\qquad
    \\xi_k = (k+1)^{\\alpha+1} - 2k^{\\alpha+1} + (k-1)^{\\alpha+1}.

For ``alpha = 1`` this reproduces the integer matrix ``H_(m)`` of paper
eq. (4) exactly.  It differs from the Tustin-power construction of
:func:`repro.opmat.integral.fractional_integration_matrix` at finite
``m`` (the two agree as ``m -> inf``); the benchmark
``benchmarks/bench_fractional_variants.py`` compares the two as an
ablation of the paper's design choice.

Exact projection (not an approximation): the entries are the exact
averages of ``I^alpha phi_i`` over each interval, so ``F^alpha`` is the
best piecewise-constant representation of the RL integral operator.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from .._validation import check_fractional_order, check_positive_float, check_positive_int
from .nilpotent import upper_toeplitz

__all__ = ["rl_integration_coefficients", "rl_integration_matrix"]


def rl_integration_coefficients(alpha: float, m: int, h: float) -> np.ndarray:
    """First-row coefficients of the RL fractional-integration matrix.

    Parameters
    ----------
    alpha:
        Integration order, ``alpha > 0``.
    m:
        Number of block-pulse terms.
    h:
        Uniform interval width.

    Returns
    -------
    numpy.ndarray
        ``h^alpha / Gamma(alpha + 2) * (1, xi_1, ..., xi_{m-1})``.
    """
    alpha = check_fractional_order(alpha)
    m = check_positive_int(m, "m")
    h = check_positive_float(h, "h")

    k = np.arange(1, m, dtype=float)
    xi = np.empty(m)
    xi[0] = 1.0
    if m > 1:
        xi[1:] = (k + 1.0) ** (alpha + 1.0) - 2.0 * k ** (alpha + 1.0) + (k - 1.0) ** (alpha + 1.0)
    scale = h**alpha * np.exp(-gammaln(alpha + 2.0))
    return scale * xi


def rl_integration_matrix(alpha: float, m: int, h: float) -> np.ndarray:
    """Riemann-Liouville block-pulse fractional-integration matrix ``F^alpha``.

    See the module docstring for the closed form.  ``F^1`` equals the
    integer integral matrix ``H_(m)`` of paper eq. (4).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.opmat import integration_matrix
    >>> np.allclose(rl_integration_matrix(1.0, 5, 0.25), integration_matrix(5, 0.25))
    True
    """
    return upper_toeplitz(rl_integration_coefficients(alpha, m, h))

"""Differential operational matrices for block-pulse functions.

Implements paper eqs. (7)-(8) and the adaptive-step variant of
eq. (17):

.. math::

    D_{(m)} = \\frac{2}{h} (I - Q_m)(I + Q_m)^{-1}
            = \\frac{2}{h}\\,\\mathrm{Toeplitz}(1, -2, 2, -2, \\dots),

the exact inverse of the integral matrix ``H_(m)``.  If
``f(t) = f_vec . phi(t)`` then ``df/dt`` has block-pulse coefficient
vector ``D^T f_vec`` (paper eq. (8)).

For an adaptive grid with steps ``(h_0, ..., h_{m-1})``:

``D~ = 2 * Toeplitz(1, -2, 2, ...) * diag(1/h_0, ..., 1/h_{m-1})``,

i.e. *column* ``j`` carries the factor ``1/h_j``; this is the exact
inverse of ``H~`` from :func:`repro.opmat.integral.integration_matrix_adaptive`
and reduces to ``D_(m)`` on a uniform grid.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float, check_positive_int, check_steps
from .nilpotent import upper_toeplitz
from .series import tustin_power_coefficients

__all__ = [
    "differentiation_matrix",
    "differentiation_matrix_adaptive",
    "differentiation_coefficients",
]


def differentiation_coefficients(m: int, h: float) -> np.ndarray:
    """First-row coefficients of ``D_(m)``: ``(2/h) * (1, -2, 2, -2, ...)``.

    This O(m) representation is what the column-by-column OPM solver
    consumes; :func:`differentiation_matrix` materialises the full
    matrix from it.
    """
    m = check_positive_int(m, "m")
    h = check_positive_float(h, "h")
    return (2.0 / h) * tustin_power_coefficients(1.0, m)


def differentiation_matrix(m: int, h: float) -> np.ndarray:
    """Return the block-pulse differential operational matrix ``D_(m)`` (eq. (7)).

    Parameters
    ----------
    m:
        Number of block-pulse terms (time intervals).
    h:
        Uniform interval width ``T / m``.

    Returns
    -------
    numpy.ndarray
        Upper-triangular Toeplitz matrix with first row
        ``(2/h) * (1, -2, 2, -2, ...)``; exact inverse of
        :func:`repro.opmat.integral.integration_matrix`.

    Examples
    --------
    >>> differentiation_matrix(3, 2.0)
    array([[ 1., -2.,  2.],
           [ 0.,  1., -2.],
           [ 0.,  0.,  1.]])
    """
    return upper_toeplitz(differentiation_coefficients(m, h))


def differentiation_matrix_adaptive(steps) -> np.ndarray:
    """Adaptive-step differential matrix ``D~`` (paper eq. (17), second display).

    Parameters
    ----------
    steps:
        Interval widths ``(h_0, ..., h_{m-1})`` of the non-uniform grid
        (paper eq. (16)).

    Returns
    -------
    numpy.ndarray
        Upper-triangular matrix with entries
        ``D~[i, j] = (-1)^{j-i} * 2 * c / h_j`` where ``c = 1`` on the
        diagonal and ``2`` above it.  Exact inverse of the adaptive
        integral matrix; reduces to ``D_(m)`` for equal steps.

    Note
    ----
    As with the integral variant, the paper's display indexes the step
    diagonal ``h_1 ... h_{m-1}``; the consistent matrix (verified as the
    inverse of ``H~`` in the test suite) uses all ``m`` steps.
    """
    steps = check_steps(steps)
    m = steps.size
    pattern = upper_toeplitz(tustin_power_coefficients(1.0, m))
    return 2.0 * pattern / steps[None, :]

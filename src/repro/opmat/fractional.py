"""Fractional differential operational matrices (paper section IV).

Two constructions are provided, matching the paper:

* **Uniform grid** (eqs. (20)-(24)): ``D^alpha`` is the truncated
  binomial series of ``((2/h)(1-q)/(1+q))^alpha`` evaluated at the
  nilpotent shift ``Q_m``.  The paper stresses that naive matrix
  powering fails here because ``D`` has a single eigenvalue ``2/h``
  with multiplicity ``m`` and is not diagonalisable; the series
  construction sidesteps eigendecomposition entirely and produces an
  upper-triangular Toeplitz matrix directly.

* **Adaptive grid** (eq. (25)): when no two steps are equal, ``D~`` has
  ``m`` distinct eigenvalues ``2/h_j`` and ``D~^alpha`` can be computed
  by eigendecomposition; a Schur-based fallback
  (:func:`scipy.linalg.fractional_matrix_power`) is provided for grids
  with nearly equal steps where the eigenvector matrix becomes
  ill-conditioned.

Both satisfy the semigroup property ``D^a D^b = D^{a+b}`` in the
truncated ring; in particular ``(D^{3/2})^2 = D^3`` (the paper's text
below eq. (24) misprints this as ``D^2``).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .._validation import (
    check_fractional_order,
    check_positive_float,
    check_positive_int,
    check_steps,
)
from ..errors import OperationalMatrixError
from .nilpotent import upper_toeplitz
from .series import tustin_power_coefficients

__all__ = [
    "fractional_differentiation_coefficients",
    "fractional_differentiation_matrix",
    "fractional_differentiation_matrix_adaptive",
]


def fractional_differentiation_coefficients(alpha: float, m: int, h: float) -> np.ndarray:
    """First-row coefficients of ``D^alpha_(m)`` on a uniform grid.

    Returns ``(2/h)^alpha * rho_{alpha,m}`` where ``rho_{alpha,m}`` is
    the truncated series of ``((1-q)/(1+q))^alpha`` (paper eq. (22)).
    The OPM column solver consumes this O(m) vector directly.

    Examples
    --------
    Paper eq. (23) with ``alpha = 3/2``, ``m = 4``:

    >>> fractional_differentiation_coefficients(1.5, 4, 2.0)
    array([ 1. , -3. ,  4.5, -5.5])
    """
    alpha = check_fractional_order(alpha, allow_zero=True)
    m = check_positive_int(m, "m")
    h = check_positive_float(h, "h")
    return (2.0 / h) ** alpha * tustin_power_coefficients(alpha, m)


def fractional_differentiation_matrix(alpha: float, m: int, h: float) -> np.ndarray:
    """Fractional differential matrix ``D^alpha_(m)`` (paper eq. (22)).

    Parameters
    ----------
    alpha:
        Differentiation order; any ``alpha >= 0`` (``alpha = 0`` gives
        the identity, integers give the truncated integer powers of
        ``D_(m)``).
    m:
        Number of block-pulse terms.
    h:
        Uniform interval width.

    Examples
    --------
    Paper eq. (24) (``alpha = 3/2``, ``m = 4``, prefactor divided out):

    >>> fractional_differentiation_matrix(1.5, 4, 2.0)
    array([[ 1. , -3. ,  4.5, -5.5],
           [ 0. ,  1. , -3. ,  4.5],
           [ 0. ,  0. ,  1. , -3. ],
           [ 0. ,  0. ,  0. ,  1. ]])
    """
    return upper_toeplitz(fractional_differentiation_coefficients(alpha, m, h))


def _eig_fractional_power(matrix: np.ndarray, alpha: float) -> np.ndarray:
    """Fractional power of an upper-triangular matrix via eigendecomposition.

    This is the route paper eq. (25) describes.  It is only *numerically*
    viable when the eigenvalues (here ``2/h_j``) are well separated: for
    nearly equal steps the eigenvector matrix is exponentially
    ill-conditioned in ``m``.  The decomposition is therefore validated
    by its reconstruction residual and rejected when unreliable (the
    ``auto`` policy then falls back to the Schur-Pade route).
    """
    eigvals, eigvecs = np.linalg.eig(matrix)
    try:
        inv_vecs = np.linalg.inv(eigvecs)
    except np.linalg.LinAlgError as exc:
        raise OperationalMatrixError(
            "eigenvector matrix is singular; use method='schur'"
        ) from exc
    scale = float(np.max(np.abs(matrix)))
    reconstruction = eigvecs @ np.diag(eigvals) @ inv_vecs
    residual = float(np.max(np.abs(reconstruction - matrix)))
    if residual > 1e-9 * max(scale, 1.0):
        raise OperationalMatrixError(
            "eigendecomposition of the adaptive differential matrix is too "
            f"ill-conditioned (reconstruction residual {residual:.2e}); the "
            "steps are too close together -- use method='schur'"
        )
    powered = eigvals.astype(complex) ** alpha
    out = eigvecs @ np.diag(powered) @ inv_vecs
    if np.max(np.abs(out.imag)) > 1e-8 * max(np.max(np.abs(out.real)), 1.0):
        raise OperationalMatrixError(
            "eigendecomposition-based fractional power produced a significantly "
            "complex result; use method='schur' instead"
        )
    return out.real


def fractional_differentiation_matrix_adaptive(
    alpha: float, steps, *, method: str = "auto"
) -> np.ndarray:
    """Adaptive-grid fractional differential matrix ``D~^alpha`` (eq. (25)).

    Parameters
    ----------
    alpha:
        Differentiation order (``alpha > 0``).
    steps:
        Interval widths ``(h_0, ..., h_{m-1})``.
    method:
        ``'eig'`` -- eigendecomposition, requires all steps pairwise
        distinct (the situation eq. (25) assumes); raises when the
        eigenvector matrix is too ill-conditioned to trust;
        ``'schur'`` -- Schur-Pade via
        :func:`scipy.linalg.fractional_matrix_power`, works for any grid
        including uniform ones;
        ``'auto'`` (default) -- try ``'eig'`` on small well-separated
        grids, falling back to ``'schur'`` whenever the decomposition
        fails its reconstruction-residual check.

    Returns
    -------
    numpy.ndarray
        Upper-triangular ``m x m`` matrix whose diagonal is
        ``(2/h_j)^alpha``.

    Raises
    ------
    OperationalMatrixError
        If ``method='eig'`` is forced on a grid with (nearly) repeated
        steps.
    """
    alpha = check_fractional_order(alpha)
    steps = check_steps(steps)
    if method not in ("auto", "eig", "schur"):
        raise ValueError(f"method must be 'auto', 'eig' or 'schur', got {method!r}")

    from .differential import differentiation_matrix_adaptive

    d1 = differentiation_matrix_adaptive(steps)

    sorted_steps = np.sort(steps)
    if sorted_steps.size > 1:
        min_gap = np.min(np.diff(sorted_steps) / sorted_steps[:-1])
    else:
        min_gap = np.inf
    if method == "eig" and min_gap <= 1e-12:
        raise OperationalMatrixError(
            "method='eig' requires pairwise-distinct steps (paper eq. (25)); "
            "got a grid with repeated steps -- use method='schur'"
        )
    if method == "auto":
        if steps.size <= 24 and min_gap > 1e-3:
            try:
                return np.triu(_eig_fractional_power(d1, alpha))
            except OperationalMatrixError:
                pass  # fall through to the robust Schur route
        method = "schur"

    if method == "eig":
        powered = _eig_fractional_power(d1, alpha)
    else:
        powered = scipy.linalg.fractional_matrix_power(d1, alpha)
        if np.iscomplexobj(powered):
            if np.max(np.abs(powered.imag)) > 1e-8 * max(np.max(np.abs(powered.real)), 1.0):
                raise OperationalMatrixError(
                    "fractional_matrix_power returned a significantly complex matrix"
                )
            powered = powered.real
    # The result must be upper triangular (the paper exploits this to
    # solve column by column); clip round-off noise below the diagonal.
    return np.triu(powered)

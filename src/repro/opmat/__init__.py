"""Operational matrices over block-pulse functions.

This subpackage implements section II and section IV of the paper: the
integral operational matrix ``H`` (eq. (4)), the differential matrix
``D`` (eq. (7)), their adaptive-step variants (eq. (17)), and the
fractional power ``D^alpha`` built from a truncated binomial series in
the nilpotent shift matrix ``Q`` (eqs. (20)-(25)).

All matrices act on coefficient vectors of block-pulse expansions: if
``f(t) = f_vec . phi(t)`` then ``integral of f`` has coefficient vector
``H^T f_vec`` and ``d f/dt`` has coefficient vector ``D^T f_vec``
(paper eq. (8)).

The module exposes both *matrix* constructors (small, dense, convenient
for inspection and tests) and *coefficient* constructors (the first row
of the upper-triangular Toeplitz matrix, which is all the OPM solver
needs and is O(m) instead of O(m^2) storage).
"""

from .nilpotent import (
    shift_matrix,
    upper_toeplitz,
    toeplitz_coefficients,
    toeplitz_multiply,
    toeplitz_inverse,
)
from .series import (
    binomial_series,
    tustin_power_coefficients,
)
from .integral import (
    integration_matrix,
    integration_matrix_adaptive,
    fractional_integration_matrix,
)
from .differential import (
    differentiation_matrix,
    differentiation_matrix_adaptive,
    differentiation_coefficients,
)
from .fractional import (
    fractional_differentiation_coefficients,
    fractional_differentiation_matrix,
    fractional_differentiation_matrix_adaptive,
)
from .rl_integral import rl_integration_matrix, rl_integration_coefficients

__all__ = [
    "shift_matrix",
    "upper_toeplitz",
    "toeplitz_coefficients",
    "toeplitz_multiply",
    "toeplitz_inverse",
    "binomial_series",
    "tustin_power_coefficients",
    "integration_matrix",
    "integration_matrix_adaptive",
    "fractional_integration_matrix",
    "differentiation_matrix",
    "differentiation_matrix_adaptive",
    "differentiation_coefficients",
    "fractional_differentiation_coefficients",
    "fractional_differentiation_matrix",
    "fractional_differentiation_matrix_adaptive",
    "rl_integration_matrix",
    "rl_integration_coefficients",
]

"""Integral operational matrices for block-pulse functions.

Implements paper eqs. (3)-(5): for a block-pulse basis vector
``phi(t)`` on a uniform grid of ``m`` intervals of width ``h``,

.. math::

    \\int_0^t \\phi(\\tau) d\\tau \\approx H_{(m)} \\phi(t),
    \\qquad
    H_{(m)} = \\frac{h}{2}(I + Q_m)(I - Q_m)^{-1}
            = h\\left(\\tfrac12 I + Q_m + \\dots + Q_m^{m-1}\\right),

an upper-triangular Toeplitz matrix with first row
``(h/2, h, h, ..., h)``.  The adaptive-grid variant (paper
eq. (17), first display) scales row ``i`` by the step ``h_i``:
``H~ = diag(h) (I/2 + Q + ... + Q^{m-1})``.

Fractional *integration* is the ``alpha -> -alpha`` flavour of the
Tustin power construction; see also :mod:`repro.opmat.rl_integral` for
the classical Riemann-Liouville block-pulse matrix, which this package
offers as an alternative construction for comparison.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_fractional_order, check_positive_float, check_positive_int, check_steps
from .nilpotent import upper_toeplitz
from .series import tustin_power_coefficients

__all__ = [
    "integration_matrix",
    "integration_matrix_adaptive",
    "fractional_integration_matrix",
]


def integration_matrix(m: int, h: float) -> np.ndarray:
    """Return the block-pulse integral operational matrix ``H_(m)`` (eq. (4)).

    Parameters
    ----------
    m:
        Number of block-pulse terms (time intervals).
    h:
        Uniform interval width ``T / m``.

    Returns
    -------
    numpy.ndarray
        Upper-triangular Toeplitz matrix with first row
        ``(h/2, h, ..., h)``.

    Examples
    --------
    >>> integration_matrix(3, 2.0)
    array([[1., 2., 2.],
           [0., 1., 2.],
           [0., 0., 1.]])
    """
    m = check_positive_int(m, "m")
    h = check_positive_float(h, "h")
    first_row = np.full(m, h)
    first_row[0] = h / 2.0
    return upper_toeplitz(first_row)


def integration_matrix_adaptive(steps) -> np.ndarray:
    """Adaptive-step integral matrix ``H~`` (paper eq. (17), first display).

    ``steps`` is the sequence ``(h_0, ..., h_{m-1})`` of interval widths
    (paper eq. (16)).  Row ``i`` of the unit pattern
    ``(1/2, 1, 1, ...)`` is scaled by ``h_i``:

    ``H~[i, i] = h_i / 2`` and ``H~[i, j] = h_i`` for ``j > i``.

    Note
    ----
    The paper's display (17) writes the diagonal factor with entries
    ``h_1 ... h_{m-1}`` (only ``m - 1`` of them); the dimensionally
    consistent matrix uses all ``m`` steps, which is what this function
    builds and what the adaptive solver relies on.  With equal steps it
    reduces exactly to :func:`integration_matrix`.
    """
    steps = check_steps(steps)
    m = steps.size
    pattern = np.triu(np.ones((m, m)), k=1) + 0.5 * np.eye(m)
    return steps[:, None] * pattern


def fractional_integration_matrix(alpha: float, m: int, h: float) -> np.ndarray:
    """Fractional integration matrix ``H^alpha`` via the Tustin power series.

    Built as ``(h/2)^alpha * ((1+q)/(1-q))^alpha`` truncated at
    ``q^{m-1}`` and evaluated at the shift matrix -- i.e. the exact
    inverse (in the truncated ring) of the fractional differentiation
    matrix of :func:`repro.opmat.fractional.fractional_differentiation_matrix`
    with the same order.

    ``alpha = 1`` reproduces :func:`integration_matrix` exactly.
    """
    alpha = check_fractional_order(alpha, allow_zero=True)
    m = check_positive_int(m, "m")
    h = check_positive_float(h, "h")
    coeffs = tustin_power_coefficients(-alpha, m)
    return (h / 2.0) ** alpha * upper_toeplitz(coeffs)

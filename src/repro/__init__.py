"""repro -- operational-matrix (OPM) circuit simulation.

A complete reproduction of *"An Operational Matrix-Based Algorithm for
Simulating Linear and Fractional Differential Circuits"* (Wang, Liu,
Pang, Wong -- DATE 2012): the OPM time-domain simulation algorithm for
ODE / DAE / high-order / fractional circuit models, the operational
matrices it is built from, the classical baselines it is evaluated
against, and the circuit substrate (netlists, MNA/NA assembly,
power-grid and fractional-line generators) its experiments run on.

Quick start::

    import numpy as np
    from repro import DescriptorSystem, simulate_opm

    system = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])   # x' = -x + u
    result = simulate_opm(system, 1.0, (5.0, 500))           # step input
    t = result.grid.midpoints
    x = result.states(t)[0]                                  # -> 1 - e^{-t}

Package map (see DESIGN.md for the full inventory):

============ ==========================================================
subpackage   contents
============ ==========================================================
``opmat``    integral/differential/fractional operational matrices
``basis``    block-pulse, Walsh, Haar, Legendre, Chebyshev, Laguerre
``core``     system models, OPM solvers, result containers
``engine``   cached Simulator sessions, dense/sparse backends, sweeps
``fractional`` Mittag-Leffler, Grünwald-Letnikov, analytic solutions
``baselines`` backward Euler / trapezoidal / Gear, FFT method, expm
``circuits`` netlists, MNA/NA assembly, power grid, transmission line
``analysis`` eq. (30) error metric, convergence/complexity fitting
``io``       table/CSV reporting
============ ==========================================================
"""

from .basis import (
    BasisSet,
    BlockPulseBasis,
    ChebyshevBasis,
    HaarBasis,
    LaguerreBasis,
    LegendreBasis,
    TimeGrid,
    WalshBasis,
)
from .core import (
    SIMULATION_METHODS,
    DescriptorSystem,
    Ensemble,
    EnsembleMember,
    EnsembleResult,
    Event,
    FractionalDescriptorSystem,
    MarchingResult,
    MultiTermSystem,
    SecondOrderSystem,
    ParallelExecutor,
    SimulationResult,
    Simulator,
    SweepResult,
    equidistributed_steps,
    krylov_reduce,
    simulate,
    simulate_multiterm,
    simulate_opm,
    simulate_opm_adaptive,
    simulate_opm_integral,
    simulate_opm_kron,
    simulate_opm_transformed,
)
from .core.result import SampledResult
from .baselines import simulate_expm, simulate_fft, simulate_transient
from .fractional import (
    fde_impulse_response,
    fde_relaxation,
    fde_step_response,
    mittag_leffler,
    simulate_grunwald_letnikov,
)
from .errors import (
    BasisError,
    ConvergenceError,
    EnsembleError,
    MemoryCompressionError,
    ModelError,
    NetlistError,
    OperationalMatrixError,
    ReproError,
    ServiceError,
    SingularPencilError,
    SolverError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # grids and bases
    "TimeGrid",
    "BasisSet",
    "BlockPulseBasis",
    "WalshBasis",
    "HaarBasis",
    "LegendreBasis",
    "ChebyshevBasis",
    "LaguerreBasis",
    # system models
    "DescriptorSystem",
    "FractionalDescriptorSystem",
    "MultiTermSystem",
    "SecondOrderSystem",
    # engine sessions
    "Simulator",
    "SweepResult",
    "Event",
    "MarchingResult",
    "Ensemble",
    "EnsembleMember",
    "EnsembleResult",
    "ParallelExecutor",
    # solvers
    "simulate",
    "SIMULATION_METHODS",
    "simulate_opm",
    "simulate_opm_adaptive",
    "simulate_opm_integral",
    "simulate_opm_kron",
    "simulate_opm_transformed",
    "simulate_multiterm",
    "equidistributed_steps",
    "krylov_reduce",
    # results
    "SimulationResult",
    "SampledResult",
    # baselines
    "simulate_transient",
    "simulate_fft",
    "simulate_expm",
    "simulate_grunwald_letnikov",
    # fractional references
    "mittag_leffler",
    "fde_relaxation",
    "fde_step_response",
    "fde_impulse_response",
    # errors
    "ReproError",
    "BasisError",
    "OperationalMatrixError",
    "ModelError",
    "SolverError",
    "SingularPencilError",
    "ConvergenceError",
    "NetlistError",
    "EnsembleError",
    "MemoryCompressionError",
    "ServiceError",
    # netlist front end (served lazily, see __getattr__)
    "Netlist",
    "simulate_netlist",
    "NetlistRun",
    "AcScan",
]

#: Netlist front-end names served lazily (PEP 562): they pull in
#: :mod:`repro.circuits`, which is not part of the eager import graph.
_NETLIST_EXPORTS = ("simulate_netlist", "NetlistRun", "AcScan", "Netlist")


def __getattr__(name: str):
    if name in _NETLIST_EXPORTS:
        if name == "Netlist":
            from .circuits.netlist import Netlist

            return Netlist
        from .engine import netlist_session

        return getattr(netlist_session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Internal argument-validation helpers shared across the package.

These helpers centralise the error messages so tests can rely on stable
wording, and keep the public modules free of repetitive checking code.
They are private: the public API never requires users to import them.
"""

from __future__ import annotations

import numbers

import numpy as np
import scipy.sparse as sp

from .errors import ModelError, OperationalMatrixError

__all__ = [
    "check_positive_int",
    "check_positive_float",
    "check_fractional_order",
    "check_square_matrix",
    "check_matrix_shape",
    "check_steps",
    "as_2d_array",
    "is_sparse",
]


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as ``int`` after checking it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive_float(value, name: str) -> float:
    """Return ``value`` as ``float`` after checking it is finite and > 0."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_fractional_order(alpha, *, allow_zero: bool = False) -> float:
    """Validate a fractional differentiation/integration order ``alpha``.

    The operational-matrix constructions in the paper are stated for
    positive real orders; ``allow_zero`` admits ``alpha == 0`` (the
    identity operator) where that degenerate case is meaningful.
    """
    if isinstance(alpha, bool) or not isinstance(alpha, numbers.Real):
        raise TypeError(f"alpha must be a real number, got {type(alpha).__name__}")
    alpha = float(alpha)
    if not np.isfinite(alpha):
        raise OperationalMatrixError(f"alpha must be finite, got {alpha}")
    if alpha < 0.0 or (alpha == 0.0 and not allow_zero):
        bound = "non-negative" if allow_zero else "positive"
        raise OperationalMatrixError(f"alpha must be {bound}, got {alpha}")
    return alpha


def is_sparse(matrix) -> bool:
    """Return True when ``matrix`` is any scipy sparse container."""
    return sp.issparse(matrix)


def check_square_matrix(matrix, name: str):
    """Validate that ``matrix`` is a square 2-D array (dense or sparse)."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ModelError(f"{name} must be square, got shape {matrix.shape}")
    return matrix


def check_matrix_shape(matrix, shape: tuple, name: str):
    """Validate that ``matrix`` has exactly the given ``shape``."""
    if tuple(matrix.shape) != tuple(shape):
        raise ModelError(f"{name} must have shape {tuple(shape)}, got {tuple(matrix.shape)}")
    return matrix


def check_steps(steps) -> np.ndarray:
    """Validate an adaptive step-size sequence (paper eq. (16)).

    Returns the steps as a 1-D float array.  Every step must be positive
    and finite; an empty sequence is rejected.
    """
    steps = np.asarray(steps, dtype=float)
    if steps.ndim != 1 or steps.size == 0:
        raise ValueError(f"steps must be a non-empty 1-D sequence, got shape {steps.shape}")
    if not np.all(np.isfinite(steps)) or np.any(steps <= 0.0):
        raise ValueError("all steps must be positive and finite")
    return steps


def as_2d_array(matrix, name: str) -> np.ndarray:
    """Coerce ``matrix`` to a dense 2-D float (or complex) ndarray."""
    if sp.issparse(matrix):
        out = matrix.toarray()
    else:
        out = np.asarray(matrix)
    if out.ndim == 1:
        out = out.reshape(1, -1) if out.size else out.reshape(0, 0)
    if out.ndim != 2:
        raise ModelError(f"{name} must be 2-D, got ndim={out.ndim}")
    if not np.issubdtype(out.dtype, np.number):
        raise ModelError(f"{name} must be numeric, got dtype {out.dtype}")
    if np.issubdtype(out.dtype, np.complexfloating):
        return out.astype(complex)
    return out.astype(float)

"""Unified simulation entry point.

:func:`simulate` routes one call signature to every solver in the
package -- the OPM variants and the classical baselines -- so scripts
and benchmarks can switch methods with a string:

>>> import numpy as np
>>> from repro.core import DescriptorSystem
>>> from repro.core.dispatch import simulate
>>> rc = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
>>> opm = simulate(rc, 1.0, 5.0, 500)                      # OPM (default)
>>> trap = simulate(rc, 1.0, 5.0, 500, method="trapezoidal")
>>> bool(abs(opm.states_smooth([3.0])[0, 0] - trap.states([3.0])[0, 0]) < 1e-4)
True
"""

from __future__ import annotations

import sys

from ..basis.base import BasisSet
from ..engine.bundle import validate_basis_name
from ..engine.executor import Ensemble, ParallelExecutor
from ..errors import SolverError
from ..fractional.methods import (
    FRACTIONAL_METHODS,
    unknown_method_message,
)
from .opm_solver import simulate_opm
from .opm_adaptive import simulate_opm_adaptive
from .kron_solver import simulate_opm_kron

__all__ = ["simulate", "SIMULATION_METHODS", "FRACTIONAL_ZOO_METHODS"]

#: The pluggable fractional-operator discretisations (the method zoo);
#: each runs on a warm :class:`~repro.engine.session.Simulator` through
#: the same cached-pencil machinery as ``'opm'``.
FRACTIONAL_ZOO_METHODS = tuple(sorted(FRACTIONAL_METHODS))

#: Method names accepted by :func:`simulate`.
SIMULATION_METHODS = (
    "opm",
    "opm-windowed",
    "opm-adaptive",
    "opm-kron",
    "backward-euler",
    "trapezoidal",
    "gear2",
    "fft",
    "grunwald-letnikov",
    "expm",
) + FRACTIONAL_ZOO_METHODS

#: Methods restricted to first-order (``alpha == 1``) systems.
_FIRST_ORDER_ONLY = ("backward-euler", "trapezoidal", "gear2", "expm")


#: Methods that accept a ``basis=`` argument (the basis-generic engine).
_BASIS_GENERIC = ("opm", "opm-windowed") + FRACTIONAL_ZOO_METHODS


def simulate(
    system,
    u,
    t_end: float,
    steps: int | None = None,
    *,
    method: str = "opm",
    basis=None,
    jobs: int | None = None,
    parallel: str = "process",
    **kwargs,
):
    """Simulate ``system`` driven by ``u`` over ``[0, t_end)``.

    Parameters
    ----------
    system:
        Any model from :mod:`repro.core.lti`, a
        :class:`~repro.circuits.netlist.Netlist` -- netlists are
        assembled on the fly through
        :func:`repro.engine.netlist_session.build_system` (honouring
        their ``.ic`` card), and ``u=None`` then means "drive with the
        deck's own source waveforms" -- or an
        :class:`~repro.engine.executor.Ensemble` of ``(system, u)``
        members, executed across ``jobs`` workers and returning an
        :class:`~repro.engine.executor.EnsembleResult`.  (Method
        support varies: the classical one-step schemes need
        ``alpha == 1``; the FFT and Grünwald-Letnikov baselines accept
        fractional orders; ensembles require the default ``'opm'``.)
    u:
        Input specification (callable, scalar, or -- for the OPM
        fixed-grid methods -- a coefficient array).  ``None`` is only
        meaningful for netlist systems (see above).
    t_end:
        Horizon.
    steps:
        Resolution: basis terms for OPM methods, time steps for the
        one-step schemes, sampling points for the FFT method.  Not used
        by ``'opm-adaptive'`` (pass ``rtol``/``atol`` instead).
    method:
        One of :data:`SIMULATION_METHODS`: the OPM variants, the
        classical baselines, or a fractional zoo method from
        :data:`FRACTIONAL_ZOO_METHODS` (``'gl'``, ``'oustaloup'``,
        ``'jacobi'`` -- alternative discretisations of the fractional
        operator solved on a :class:`~repro.engine.session.Simulator`
        through the cached-pencil machinery; see
        :mod:`repro.fractional.methods`).  Unknown names raise with a
        typo suggestion and the full registered list.
    jobs:
        Worker count for ensemble execution (default: the usable CPU
        count).  Only meaningful when ``system`` is an
        :class:`~repro.engine.executor.Ensemble`; batched multi-input
        sharding on a single system lives on
        :meth:`repro.Simulator.sweep`.
    parallel:
        Ensemble executor backend: ``'process'`` (default),
        ``'thread'``, or ``'serial'``.
    basis:
        Basis family for the basis-generic OPM methods (``'opm'`` and
        ``'opm-windowed'``): ``None`` (block pulse), a name from
        :func:`repro.engine.bundle.basis_names`, or a
        :class:`~repro.basis.base.BasisSet` instance.  Unknown names
        raise with a typo suggestion and the list of valid families.
    **kwargs:
        Forwarded to the underlying solver.  Notably, the OPM methods
        (``'opm'``, ``'opm-windowed'``, and ensembles) accept
        ``reduce='auto' | int | ReductionPlan`` for certified
        reduce-then-sweep (see :mod:`repro.engine.reduction`).

    Returns
    -------
    SimulationResult | SampledResult
        Coefficient-based for OPM methods, node-based for the baselines;
        both expose ``outputs(times)`` /
        :func:`repro.analysis.sample_outputs`.
    """
    if method not in SIMULATION_METHODS:
        raise SolverError(unknown_method_message(method, SIMULATION_METHODS))
    if isinstance(system, Ensemble):
        return _simulate_ensemble(
            system, u, t_end, steps, method=method, basis=basis,
            jobs=jobs, parallel=parallel, **kwargs,
        )
    if jobs is not None:
        raise SolverError(
            "jobs= is only meaningful when simulating an Ensemble; for "
            "many inputs on one system use Simulator.sweep(inputs, jobs=...)"
        )
    # netlists assemble on the fly; repro.circuits sits above the
    # core/engine layers, so detect instances via sys.modules instead of
    # importing it (a Netlist can only exist once its module is loaded)
    netlist_module = sys.modules.get("repro.circuits.netlist")
    if netlist_module is not None and isinstance(system, netlist_module.Netlist):
        from ..engine.netlist_session import build_system

        netlist = system
        system = build_system(netlist)
        if u is None:
            u = netlist.input_function()
    elif u is None:
        raise SolverError(
            "u=None is only valid for Netlist systems (whose decks carry "
            "their own source waveforms)"
        )
    if basis is not None:
        if method not in _BASIS_GENERIC:
            raise SolverError(
                f"method {method!r} does not take a basis; only "
                f"{_BASIS_GENERIC} are basis-generic"
            )
        if not isinstance(basis, BasisSet):
            basis = validate_basis_name(basis)  # raises with suggestions
    if method in _FIRST_ORDER_ONLY:
        alpha = getattr(system, "alpha", 1.0)
        if alpha != 1.0:
            raise SolverError(
                f"method {method!r} requires a first-order system (alpha=1), "
                f"got alpha={alpha:g}; use 'opm', 'fft' or 'grunwald-letnikov' "
                "for fractional orders"
            )
    if method == "opm-adaptive":
        return simulate_opm_adaptive(system, u, t_end, **kwargs)
    if steps is None:
        raise SolverError(f"method {method!r} requires steps")
    if method in FRACTIONAL_ZOO_METHODS:
        from ..engine import Simulator

        sim = Simulator(system, (t_end, steps), basis=basis, method=method, **kwargs)
        return sim.run(u)
    if method == "opm":
        return simulate_opm(system, u, (t_end, steps), basis=basis, **kwargs)
    if method == "opm-windowed":
        return _simulate_windowed(system, u, t_end, steps, basis=basis, **kwargs)
    if method == "opm-kron":
        return simulate_opm_kron(system, u, (t_end, steps), **kwargs)
    if method in ("backward-euler", "trapezoidal", "gear2"):
        from ..baselines.transient import simulate_transient

        return simulate_transient(system, u, t_end, steps, method=method, **kwargs)
    if method == "fft":
        from ..baselines.fft_method import simulate_fft

        return simulate_fft(system, u, t_end, steps, **kwargs)
    if method == "grunwald-letnikov":
        from ..fractional.grunwald import simulate_grunwald_letnikov

        return simulate_grunwald_letnikov(system, u, t_end, steps, **kwargs)
    # method == "expm"
    from ..baselines.expm import simulate_expm

    return simulate_expm(system, u, t_end, steps, **kwargs)


def _simulate_ensemble(
    ensemble: Ensemble,
    u,
    t_end: float,
    steps: int | None,
    *,
    method: str,
    basis,
    jobs: int | None,
    parallel: str,
    **kwargs,
):
    """Ensemble dispatch (``system`` was an :class:`Ensemble`).

    Shards the members across ``jobs`` workers; ``u`` (if given) is the
    default input for members that carry none.
    """
    if method != "opm":
        raise SolverError(
            f"ensembles support method='opm' only, got {method!r}"
        )
    if steps is None:
        raise SolverError("ensemble simulation requires steps")
    executor = ParallelExecutor(parallel, jobs=jobs)
    backend = kwargs.pop("backend", "auto")
    return executor.run(
        ensemble,
        (t_end, steps),
        basis=basis,
        u=u,
        solver_backend=backend,
        **kwargs,
    )


def _simulate_windowed(
    system,
    u,
    t_end: float,
    steps: int,
    *,
    windows: int = 1,
    events=(),
    basis=None,
    **kwargs,
):
    """One-shot windowed marching (``method='opm-windowed'``).

    ``steps`` is the *total* number of basis terms over ``[0, t_end]``;
    it must divide evenly into ``windows`` windows.  Repeated-march
    workloads should hold a :class:`~repro.engine.session.Simulator`
    bound to one window grid and call :meth:`march` directly.  With a
    spectral ``basis`` this is hybrid-function marching: ``steps /
    windows`` spectral coefficients per window.
    """
    from ..engine import Simulator

    windows = int(windows)
    if windows < 1:
        raise SolverError(f"windows must be >= 1, got {windows}")
    if steps % windows:
        raise SolverError(
            f"steps={steps} must be divisible by windows={windows} "
            "(every window carries the same number of basis terms)"
        )
    sim = Simulator(system, (t_end / windows, steps // windows), basis=basis, **kwargs)
    return sim.march(u, t_end, events=events)

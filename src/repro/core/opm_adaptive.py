"""Adaptive-time-step OPM (paper section III-B).

The paper extends OPM to adaptive steps by redefining the block pulses
on a non-uniform partition (eq. (16)) and scaling the operational
matrix columns by ``1/h_j`` (eq. (17)); "the time step h_i can be
determined on the fly by some error control mechanism".  This module
supplies that mechanism for first-order systems:

* :func:`simulate_opm_adaptive` -- an on-the-fly step-doubling
  controller.  Each trial step is solved once with step ``h`` and once
  as two ``h/2`` sub-steps; the difference is a local error estimate.
  Accepted steps keep the O(n) alternating-tail recurrence (the
  adaptive differential matrix column ``j`` is
  ``(-1)^{j-i} * 4 / h_j`` off the diagonal, so the alternating sum of
  history is step-independent), and pencil factorisations are cached
  per distinct step size -- a halving/doubling ladder costs only a few
  LUs.

* :func:`equidistributed_steps` -- converts a coarse *pilot* solution
  into a step sequence that equidistributes the solution increment, the
  practical route to adaptive grids for fractional systems where the
  paper's eq. (25) needs the whole step sequence up front (and pairwise
  distinct steps for its eigendecomposition).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .._validation import check_positive_float
from ..basis.block_pulse import BlockPulseBasis
from ..basis.grid import TimeGrid
from ..engine.backends import PencilBank, select_backend
from ..errors import ConvergenceError, ModelError, SolverError
from .lti import DescriptorSystem
from .result import SimulationResult

__all__ = ["simulate_opm_adaptive", "equidistributed_steps"]

_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(5)


def _interval_average(u_fn: Callable, n_inputs: int, t0: float, h: float) -> np.ndarray:
    """Average of the input over ``[t0, t0 + h]`` by 5-point Gauss-Legendre."""
    times = t0 + 0.5 * h * (_GL_NODES + 1.0)
    values = np.asarray(u_fn(times), dtype=float)
    if values.ndim == 1:
        values = values.reshape(1, -1)
    if values.shape != (n_inputs, times.size):
        raise ModelError(
            f"input callable must return ({n_inputs}, nt) values, got {values.shape}"
        )
    return values @ (_GL_WEIGHTS / 2.0)


def simulate_opm_adaptive(
    system: DescriptorSystem,
    u,
    t_end: float,
    *,
    rtol: float = 1e-4,
    atol: float = 1e-10,
    h_init: float | None = None,
    h_min: float | None = None,
    h_max: float | None = None,
    max_steps: int = 200_000,
) -> SimulationResult:
    """Simulate ``E x' = A x + B u`` with on-the-fly adaptive steps.

    Parameters
    ----------
    system:
        First-order :class:`DescriptorSystem` (``alpha == 1``); for
        fractional systems build a step sequence with
        :func:`equidistributed_steps` and pass it to
        :func:`~repro.core.opm_solver.simulate_opm`.
    u:
        Callable ``u(times)`` (vectorised) or a scalar constant.
    t_end:
        Simulation horizon.
    rtol, atol:
        Local error control: a trial step ``h`` is accepted when
        ``||x_h - x_{h/2 pair}||_inf <= atol + rtol * ||x||_inf``.
    h_init, h_min, h_max:
        Initial/minimum/maximum step (defaults ``t_end/100``,
        ``t_end * 1e-12``, ``t_end/4``).
    max_steps:
        Safety bound on accepted steps.

    Returns
    -------
    SimulationResult
        On the accepted non-uniform grid; ``info`` records accepted and
        rejected step counts and pencil factorisations.

    Raises
    ------
    ConvergenceError
        If the controller drives the step below ``h_min``.
    """
    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    if system.alpha != 1.0:
        raise SolverError(
            "on-the-fly adaptive stepping is first-order only; for fractional "
            "systems precompute steps (equidistributed_steps) and call simulate_opm"
        )
    t_end = check_positive_float(t_end, "t_end")
    h_init = t_end / 100.0 if h_init is None else check_positive_float(h_init, "h_init")
    h_min = t_end * 1e-12 if h_min is None else check_positive_float(h_min, "h_min")
    h_max = t_end / 4.0 if h_max is None else check_positive_float(h_max, "h_max")
    h_init = min(h_init, h_max)

    n = system.n_states
    if np.isscalar(u):
        value = float(u)
        p = system.n_inputs

        def u_fn(times, _v=value, _p=p):
            times = np.atleast_1d(times)
            return np.full((_p, times.size), _v)

    elif callable(u):
        u_fn = u
    else:
        raise ModelError("adaptive OPM requires a callable or scalar input")

    offset = system.shifted_input_offset()
    # engine backend: factorisations are cached per distinct step size,
    # so the controller's halving/doubling ladder costs only a few LUs
    cache = PencilBank(select_backend(system.E, system.A))
    E = system.E

    start = time.perf_counter()

    def rhs_for(t0: float, h: float, t_alt: np.ndarray) -> np.ndarray:
        # Tail of the adaptive column equation: with the history sum
        # t_alt_j = x_{j-1} - x_{j-2} + ... the off-diagonal contribution
        # is sum_{i<j} (-1)^{j-i} (4/h_j) x_i = -(4/h_j) t_alt_j, moved to
        # the right-hand side with a + sign.
        r = system.B @ _interval_average(u_fn, system.n_inputs, t0, h)
        if offset is not None:
            r = r + offset
        return r + (4.0 / h) * (E @ t_alt)

    def solve_column(t0: float, h: float, t_alt: np.ndarray) -> np.ndarray:
        return cache.solve(2.0 / h, rhs_for(t0, h, t_alt))

    steps: list[float] = []
    columns: list[np.ndarray] = []
    t_alt = np.zeros(n)  # alternating history sum Sum_{i<j} (-1)^{j-i} x_i
    t_now = 0.0
    h = h_init
    rejected = 0
    x_scale = 0.0

    while t_now < t_end * (1.0 - 1e-14):
        h = min(h, t_end - t_now, h_max)
        if h < h_min:
            raise ConvergenceError(
                f"adaptive step underflow: h={h:.3e} < h_min={h_min:.3e} at t={t_now:.3e}"
            )
        if len(steps) >= max_steps:
            raise ConvergenceError(f"exceeded max_steps={max_steps}")

        x_full = solve_column(t_now, h, t_alt)
        # two half steps from the same history
        x_h1 = solve_column(t_now, h / 2.0, t_alt)
        t_alt_half = x_h1 - t_alt
        x_h2 = solve_column(t_now + h / 2.0, h / 2.0, t_alt_half)
        fine = 0.5 * (x_h1 + x_h2)

        err = float(np.max(np.abs(x_full - fine)))
        scale = atol + rtol * max(
            x_scale, float(np.max(np.abs(x_full))), float(np.max(np.abs(fine)))
        )
        if err <= scale:
            steps.append(h)
            columns.append(x_full)
            t_alt = x_full - t_alt
            t_now += h
            x_scale = max(x_scale, float(np.max(np.abs(x_full))))
            if err <= 0.25 * scale:
                h = min(2.0 * h, h_max)
        else:
            rejected += 1
            h = 0.5 * h

    grid = TimeGrid.from_steps(np.asarray(steps))
    basis = BlockPulseBasis(grid)
    X = np.stack(columns, axis=1)
    if system.x0 is not None:
        X = X + system.x0[:, None]
    U = np.stack(
        [
            _interval_average(u_fn, system.n_inputs, t0, hstep)
            for t0, hstep in zip(grid.edges[:-1], grid.steps)
        ],
        axis=1,
    )
    wall = time.perf_counter() - start

    return SimulationResult(
        basis,
        X,
        system,
        U,
        wall_time=wall,
        info={
            "method": "opm-adaptive",
            "accepted": len(steps),
            "rejected": rejected,
            "factorisations": cache.factorisations,
            "backend": cache.backend.name,
        },
    )


def equidistributed_steps(
    pilot: SimulationResult,
    m_new: int,
    *,
    jitter: float = 1e-9,
    min_fraction: float = 1e-3,
) -> np.ndarray:
    """Step sequence equidistributing the pilot solution's increments.

    Given a coarse (typically uniform) pilot run, computes per-interval
    activity ``a_i = ||x_{i+1} - x_i||_inf`` and chooses ``m_new`` steps
    whose cumulative activity is equal -- small steps where the response
    moves fast, large steps where it settles.  A deterministic relative
    ``jitter`` makes all steps pairwise distinct, the precondition of
    the eigendecomposition-based fractional power (paper eq. (25)).

    Parameters
    ----------
    pilot:
        Result of a coarse OPM run on the same system/input.
    m_new:
        Number of steps in the new grid.
    jitter:
        Relative magnitude of the distinctness perturbation.
    min_fraction:
        Floor on per-interval activity as a fraction of the maximum, so
        quiescent regions still receive steps.

    Returns
    -------
    numpy.ndarray
        Steps summing to the pilot horizon, all pairwise distinct.
    """
    grid = pilot.grid
    if grid is None:
        raise SolverError("equidistributed_steps requires a block-pulse pilot result")
    if m_new < 2:
        raise ValueError(f"m_new must be >= 2, got {m_new}")
    X = pilot.coefficients
    # activity of interval i: change entering it (first interval: from 0)
    deltas = np.diff(X, axis=1, prepend=np.zeros((X.shape[0], 1)))
    activity = np.max(np.abs(deltas), axis=0)
    floor = min_fraction * max(float(activity.max()), 1e-300)
    density = np.maximum(activity, floor) / grid.steps  # activity per unit time
    # cumulative activity as a piecewise-linear function of time
    cum = np.concatenate([[0.0], np.cumsum(density * grid.steps)])
    targets = np.linspace(0.0, cum[-1], m_new + 1)
    edges = np.interp(targets, cum, grid.edges)
    edges[0], edges[-1] = 0.0, grid.t_end
    steps = np.diff(edges)
    # enforce positivity and pairwise distinctness
    steps = np.maximum(steps, grid.t_end * 1e-12)
    steps *= 1.0 + jitter * np.arange(m_new)
    steps *= grid.t_end / steps.sum()
    # final distinctness check: nudge any residual duplicates
    for _ in range(3):
        order = np.argsort(steps)
        dup = np.nonzero(np.diff(steps[order]) == 0.0)[0]
        if dup.size == 0:
            break
        steps[order[dup + 1]] *= 1.0 + 10 * jitter
        steps *= grid.t_end / steps.sum()
    return steps

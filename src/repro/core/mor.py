"""Krylov-subspace model-order reduction (PRIMA-style block Arnoldi).

Power-grid-scale models (the paper's 75 K-node workload) are routinely
*reduced* before repeated transient analysis.  This module provides the
standard congruence-transform reduction used in the interconnect
literature: project the descriptor model

.. math::  E \\dot{x} = A x + B u, \\qquad y = C x

onto the block Krylov subspace

.. math::

    \\mathcal{K}_q = \\mathrm{span}\\{ M B_s, M E M B_s, \\dots \\},
    \\qquad M = (s_0 E - A)^{-1}, \\; B_s = M B,

with an orthonormal basis ``V``:

``E_r = V^T E V``, ``A_r = V^T A V``, ``B_r = V^T B``, ``C_r = C V``.

The reduced model matches the first ``q`` block moments of the transfer
function at the expansion point ``s_0`` (and, for the symmetric
RC/RLC-structured matrices produced by MNA, the congruence transform
preserves passivity -- the PRIMA property).

Reduced models are ordinary dense :class:`DescriptorSystem` objects, so
the entire OPM/baseline toolchain applies to them unchanged.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .._validation import check_positive_int
from ..errors import SolverError
from .lti import DescriptorSystem

__all__ = ["krylov_reduce", "krylov_reduce_with_basis"]

#: Columns whose orthogonal component falls below this *fraction* of
#: their own norm deflate (scale-invariant: badly scaled but linearly
#: independent directions survive -- circuit E matrices routinely mix
#: 1e-12 F capacitances with unit conductances).
_DEFLATION_TOL = 1e-8


def _orthonormalise_against(block: np.ndarray, basis: list[np.ndarray]) -> np.ndarray:
    """Two-pass modified Gram-Schmidt of ``block`` against ``basis``.

    Columns are normalised first so the deflation decision measures
    genuine linear dependence rather than magnitude.
    """
    norms = np.linalg.norm(block, axis=0)
    nonzero = norms > 0.0
    block = block[:, nonzero] / norms[nonzero]
    for _ in range(2):
        for v in basis:
            block = block - v @ (v.T @ block)
    q, r = np.linalg.qr(block)
    keep = np.abs(np.diag(r)) > _DEFLATION_TOL
    return q[:, keep]


def krylov_reduce(
    system: DescriptorSystem,
    n_moments: int,
    *,
    expansion_point: float = 0.0,
) -> DescriptorSystem:
    """Reduce a descriptor system by block-Arnoldi moment matching.

    Parameters
    ----------
    system:
        First-order :class:`DescriptorSystem` (``alpha == 1``); sparse
        ``E``/``A`` are handled with a single sparse factorisation.
    n_moments:
        Number of block moments to match at the expansion point; the
        reduced size is at most ``n_moments * n_inputs`` (less if the
        Krylov blocks deflate).
    expansion_point:
        Laplace-domain expansion point ``s_0``.  ``0.0`` matches the DC
        behaviour (requires ``A`` nonsingular); positive values
        emphasise transient time scales around ``1/s_0``.

    Returns
    -------
    DescriptorSystem
        Dense reduced model with the same input/output dimensions.

    Raises
    ------
    SolverError
        If ``(s_0 E - A)`` is singular, or every Krylov direction
        deflates.

    Examples
    --------
    >>> import numpy as np
    >>> import scipy.sparse as sps
    >>> n = 50
    >>> A = sps.diags([np.ones(n - 1), -2 * np.ones(n), np.ones(n - 1)],
    ...               [-1, 0, 1], format='csc')
    >>> full = DescriptorSystem(sps.identity(n), A,
    ...                         np.eye(n)[:, :1], C=np.eye(n)[:1])
    >>> red = krylov_reduce(full, 6)
    >>> red.n_states <= 6 and red.n_inputs == 1
    True
    """
    reduced, _ = krylov_reduce_with_basis(
        system, n_moments, expansion_point=expansion_point
    )
    return reduced


def krylov_reduce_with_basis(
    system: DescriptorSystem,
    n_moments: int,
    *,
    expansion_point: float = 0.0,
) -> tuple[DescriptorSystem, np.ndarray]:
    """:func:`krylov_reduce` returning the projection basis too.

    Returns ``(reduced, V)`` where ``V`` is the orthonormal ``n x r``
    congruence basis: reduced states lift back to full coordinates as
    ``x ~= V x_r``.  The engine's reduction-aware plans
    (:mod:`repro.engine.reduction`) use ``V`` both to lift solved
    coefficients and to evaluate a-posteriori residual bounds in the
    full space.
    """
    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    if system.alpha != 1.0:
        raise SolverError("krylov_reduce supports first-order systems only")
    n_moments = check_positive_int(n_moments, "n_moments")
    s0 = float(expansion_point)

    sparse_mode = system.is_sparse
    if sparse_mode:
        pencil = (s0 * sp.csc_matrix(system.E) - sp.csc_matrix(system.A)).tocsc()
        try:
            lu = spla.splu(pencil)
        except RuntimeError as exc:
            raise SolverError(f"(s0 E - A) singular at s0={s0:g}") from exc

        def solve(rhs):
            return lu.solve(rhs)

        e_mat = sp.csr_matrix(system.E)
    else:
        import warnings

        import scipy.linalg

        pencil = s0 * np.asarray(system.E) - np.asarray(system.A)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", scipy.linalg.LinAlgWarning)
                lu = scipy.linalg.lu_factor(pencil)
        except (
            ValueError,
            np.linalg.LinAlgError,
            scipy.linalg.LinAlgWarning,
        ) as exc:
            raise SolverError(f"(s0 E - A) singular at s0={s0:g}") from exc

        def solve(rhs):
            import scipy.linalg

            return scipy.linalg.lu_solve(lu, rhs)

        e_mat = np.asarray(system.E)

    basis: list[np.ndarray] = []
    block = solve(system.B)
    if not np.all(np.isfinite(block)):
        raise SolverError(f"(s0 E - A) singular at s0={s0:g}")
    for _ in range(n_moments):
        block = _orthonormalise_against(np.atleast_2d(block), basis)
        if block.shape[1] == 0:
            break  # Krylov space exhausted (fully deflated)
        basis.append(block)
        block = solve(e_mat @ block)
    if not basis:
        raise SolverError("all Krylov directions deflated; nothing to reduce to")

    V = np.hstack(basis)
    e_red = V.T @ (e_mat @ V)
    a_red = V.T @ (system.A @ V)
    b_red = V.T @ system.B
    if system.C is None:
        # identity outputs: reconstruct the full state, x ~= V x_r
        c_red = V
    else:
        c_red = system.C @ V
    d_red = system.D
    return DescriptorSystem(e_red, a_red, b_red, C=c_red, D=d_red), V

"""The paper's primary contribution: the OPM simulation algorithm.

Public surface:

* system models -- :class:`DescriptorSystem` (eq. (9)),
  :class:`FractionalDescriptorSystem` (eq. (19)),
  :class:`MultiTermSystem` / :class:`SecondOrderSystem` (section V-B);
* the engine session -- :class:`Simulator` binds a system + grid once
  and caches the basis, fractional coefficients, backend choice, and
  pencil LU factorisations across calls; ``sim.sweep([...])`` solves
  many inputs in one batched multi-RHS column sweep, returning a
  :class:`SweepResult`;
* one-shot solvers -- :func:`simulate_opm` (sections III-IV, column
  sweep), :func:`simulate_opm_adaptive` (section III-B, on-the-fly step
  control), :func:`simulate_opm_kron` (the explicit Kronecker reference
  of eqs. (15)/(27)), :func:`simulate_opm_integral` (classical
  integral-form OPM on any basis), :func:`simulate_opm_transformed`
  (Walsh/Haar change of basis), :func:`simulate_multiterm` -- all thin
  wrappers over throwaway sessions;
* :class:`SimulationResult` -- coefficient container with waveform
  sampling.
"""

from ..engine import (
    DenseBackend,
    Ensemble,
    EnsembleMember,
    EnsembleResult,
    Event,
    ParallelExecutor,
    PencilBank,
    Simulator,
    SparseBackend,
    SweepResult,
    select_backend,
)
from .column_solver import PencilCache, solve_columns_general, solve_columns_toeplitz
from .dispatch import SIMULATION_METHODS, simulate
from .highorder import simulate_multiterm
from .kron_solver import simulate_opm_kron
from .mor import krylov_reduce
from .lti import (
    DescriptorSystem,
    FractionalDescriptorSystem,
    MultiTermSystem,
    SecondOrderSystem,
)
from .opm_adaptive import equidistributed_steps, simulate_opm_adaptive
from .opm_integral import simulate_opm_integral
from .opm_solver import project_input, simulate_opm, simulate_opm_transformed
from .result import MarchingResult, SimulationResult

__all__ = [
    "DescriptorSystem",
    "FractionalDescriptorSystem",
    "MultiTermSystem",
    "SecondOrderSystem",
    "SimulationResult",
    "MarchingResult",
    "Simulator",
    "SweepResult",
    "Event",
    "Ensemble",
    "EnsembleMember",
    "EnsembleResult",
    "ParallelExecutor",
    "simulate",
    "SIMULATION_METHODS",
    "simulate_opm",
    "simulate_opm_adaptive",
    "simulate_opm_integral",
    "simulate_opm_kron",
    "simulate_opm_transformed",
    "simulate_multiterm",
    "equidistributed_steps",
    "krylov_reduce",
    "project_input",
    "PencilCache",
    "PencilBank",
    "DenseBackend",
    "SparseBackend",
    "select_backend",
    "solve_columns_toeplitz",
    "solve_columns_general",
    "simulate_netlist",
    "NetlistRun",
    "AcScan",
]

#: Netlist-front-end names served lazily (PEP 562): the netlist session
#: layer imports :mod:`repro.circuits`, which imports this package --
#: an eager import here would bite its own tail during start-up.
_NETLIST_EXPORTS = ("simulate_netlist", "NetlistRun", "AcScan")


def __getattr__(name: str):
    if name in _NETLIST_EXPORTS:
        from ..engine import netlist_session

        return getattr(netlist_session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

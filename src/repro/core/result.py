"""Simulation result container.

OPM produces the coefficient matrix ``X`` of the state expansion
``x(t) = X phi(t)`` (paper eq. (10)/(26)).  :class:`SimulationResult`
wraps ``X`` together with the basis so users can sample waveforms,
evaluate outputs ``y = C x + D u``, and compare runs on different grids
via resampling.
"""

from __future__ import annotations

import numpy as np

from ..basis.base import BasisSet
from ..basis.block_pulse import BlockPulseBasis
from ..basis.pwconst import PiecewiseConstantBasis

__all__ = [
    "SimulationResult",
    "SampledResult",
    "MarchingResult",
    "terminal_state_estimate",
]


def _natural_sample_times(basis, grid, n_points: int | None) -> np.ndarray:
    """Shared natural-sampling rule of result containers.

    Grid midpoints when a block-pulse grid is available and no count was
    requested (Walsh/Haar results expose their underlying block-pulse
    grid), otherwise ``n_points`` (default 256) equispaced midpoints on
    ``[0, t_end)``.
    """
    if grid is None and isinstance(basis, PiecewiseConstantBasis):
        grid = basis.block_pulse.grid
    if n_points is None and grid is not None:
        return grid.midpoints
    n_points = 256 if n_points is None else int(n_points)
    t_end = basis.t_end
    if not np.isfinite(t_end):
        raise ValueError(
            "a semi-infinite basis has no natural sample times; evaluate "
            "states()/outputs() at explicit times instead"
        )
    step = t_end / n_points
    return (np.arange(n_points) + 0.5) * step


def terminal_state_estimate(coefficients: np.ndarray) -> np.ndarray:
    """Endpoint value ``x(t_end)`` from block-pulse coefficients, to ``O(h^2)``.

    Block-pulse coefficients are interval averages; linear extrapolation
    of the last two gives the right-edge value to second order.  Shared
    by :meth:`MarchingResult.terminal_state` and the marching engine's
    flux rebuild across ``E``-changing events.
    """
    if coefficients.shape[1] == 1:
        return coefficients[:, -1].copy()
    return 1.5 * coefficients[:, -1] - 0.5 * coefficients[:, -2]


class SampledResult:
    """Node-based trajectory from a time-stepping baseline.

    Classical transient schemes (backward Euler, trapezoidal, Gear) and
    the Grünwald-Letnikov fractional stepper produce state values at
    discrete time nodes rather than basis coefficients.  This container
    mirrors the sampling API of :class:`SimulationResult` (via linear
    interpolation) so error metrics can compare the two uniformly.

    Attributes
    ----------
    times:
        1-D array of ``K`` time nodes (monotonically increasing).
    state_values:
        Array ``(n_states, K)`` of states at the nodes.
    system:
        The simulated system (for the ``C``/``D`` output map).
    input_values:
        Optional ``(n_inputs, K)`` input samples at the nodes (needed
        only when the system has a feedthrough ``D``).
    """

    def __init__(
        self,
        times,
        state_values,
        system,
        input_values=None,
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        self.times = np.asarray(times, dtype=float)
        self.state_values = np.asarray(state_values, dtype=float)
        if self.times.ndim != 1 or self.state_values.ndim != 2:
            raise ValueError("times must be 1-D and state_values 2-D")
        if self.state_values.shape[1] != self.times.size:
            raise ValueError(
                f"state_values must have {self.times.size} columns, "
                f"got {self.state_values.shape[1]}"
            )
        self.system = system
        self.input_values = None if input_values is None else np.asarray(input_values, float)
        self.wall_time = wall_time
        self.info = dict(info or {})

    @property
    def n_states(self) -> int:
        return self.state_values.shape[0]

    @property
    def output_values(self) -> np.ndarray:
        """Outputs at the nodes, ``y = C x + D u``."""
        y = self.state_values if self.system.C is None else self.system.C @ self.state_values
        if self.system.D is not None:
            if self.input_values is None:
                raise ValueError("system has feedthrough D but no input samples stored")
            y = y + self.system.D @ self.input_values
        return y

    def states(self, times) -> np.ndarray:
        """Linear interpolation of the states at arbitrary times."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((self.n_states, times.size))
        for i in range(self.n_states):
            out[i] = np.interp(times, self.times, self.state_values[i])
        return out

    def outputs(self, times) -> np.ndarray:
        """Linear interpolation of the outputs at arbitrary times."""
        values = self.output_values
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((values.shape[0], times.size))
        for i in range(values.shape[0]):
            out[i] = np.interp(times, self.times, values[i])
        return out

    def __repr__(self) -> str:
        return (
            f"SampledResult(n={self.n_states}, K={self.times.size}, "
            f"wall_time={self.wall_time})"
        )


class SimulationResult:
    """State trajectory in coefficient form plus evaluation helpers.

    Attributes
    ----------
    basis:
        The basis the expansion lives in (block-pulse for the standard
        solvers; Walsh/Haar/polynomial for the basis-agnostic ones).
    coefficients:
        State coefficient matrix ``X`` of shape ``(n_states, m)``.
    input_coefficients:
        Input coefficient matrix ``U`` of shape ``(n_inputs, m)``.
    system:
        The simulated system (used for ``C``/``D`` output mapping).
    wall_time:
        Solver wall-clock seconds (populated by the solvers).
    info:
        Free-form solver metadata: method name, factorisation count,
        accepted/rejected steps for the adaptive controller, ...
    """

    def __init__(
        self,
        basis: BasisSet,
        coefficients: np.ndarray,
        system,
        input_coefficients: np.ndarray,
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        coefficients = np.asarray(coefficients, dtype=float)
        input_coefficients = np.asarray(input_coefficients, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[1] != basis.size:
            raise ValueError(
                f"coefficients must be (n, {basis.size}), got {coefficients.shape}"
            )
        if input_coefficients.ndim != 2 or input_coefficients.shape[1] != basis.size:
            raise ValueError(
                f"input_coefficients must be (p, {basis.size}), got {input_coefficients.shape}"
            )
        self.basis = basis
        self.coefficients = coefficients
        self.input_coefficients = input_coefficients
        self.system = system
        self.wall_time = wall_time
        self.info = dict(info or {})

    # ------------------------------------------------------------------
    # shape properties
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.coefficients.shape[0]

    @property
    def m(self) -> int:
        """Number of basis terms (time intervals for block pulses)."""
        return self.basis.size

    @property
    def grid(self):
        """The time grid when the basis is block-pulse, else ``None``."""
        if isinstance(self.basis, BlockPulseBasis):
            return self.basis.grid
        return None

    @property
    def output_coefficients(self) -> np.ndarray:
        """Output coefficient matrix ``Y = C X + D U``."""
        return self.system.output_coefficients(self.coefficients, self.input_coefficients)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def states(self, times) -> np.ndarray:
        """Sample the state trajectory, shape ``(n_states, len(times))``."""
        return self.basis.synthesize(self.coefficients, np.atleast_1d(times))

    def outputs(self, times) -> np.ndarray:
        """Sample the output trajectory ``y = C x + D u``."""
        return self.basis.synthesize(self.output_coefficients, np.atleast_1d(times))

    def _interpolate_coefficients(self, coeffs: np.ndarray, times) -> np.ndarray:
        """Linear interpolation of block-pulse coefficients at midpoints.

        Block-pulse coefficients are interval averages, which agree with
        midpoint values to second order; interpolating them linearly
        gives a continuous second-order reconstruction, removing the
        O(h) half-cell offset of raw piecewise-constant sampling.  Used
        for cross-method waveform comparisons.  Walsh/Haar results are
        exact transforms of block pulses, so they convert and take the
        same second-order path.
        """
        grid = self.grid
        if grid is None and isinstance(self.basis, PiecewiseConstantBasis):
            grid = self.basis.block_pulse.grid
            coeffs = self.basis.to_block_pulse_coefficients(coeffs)
        if grid is None:
            return self.basis.synthesize(coeffs, np.atleast_1d(times))
        times = np.atleast_1d(np.asarray(times, dtype=float))
        mids = grid.midpoints
        out = np.empty((coeffs.shape[0], times.size))
        for i in range(coeffs.shape[0]):
            out[i] = np.interp(times, mids, coeffs[i])
        return out

    def states_smooth(self, times) -> np.ndarray:
        """Second-order (midpoint-linear) state reconstruction.

        Falls back to basis synthesis for non-block-pulse results.
        """
        return self._interpolate_coefficients(self.coefficients, times)

    def outputs_smooth(self, times) -> np.ndarray:
        """Second-order (midpoint-linear) output reconstruction."""
        return self._interpolate_coefficients(self.output_coefficients, times)

    def inputs(self, times) -> np.ndarray:
        """Sample the (projected) input trajectory."""
        return self.basis.synthesize(self.input_coefficients, np.atleast_1d(times))

    def sample_times(self, n_points: int | None = None) -> np.ndarray:
        """Natural sampling times: interval midpoints for block pulses.

        For block-pulse results with ``n_points is None`` this returns
        the grid midpoints -- the points where the piecewise-constant
        expansion best represents the trajectory (paper's
        "roughly, f_i = f(ih)").  Otherwise returns ``n_points`` equally
        spaced times on ``[0, t_end)``.
        """
        return _natural_sample_times(self.basis, self.grid, n_points)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(n={self.n_states}, m={self.m}, "
            f"basis={self.basis.name}, wall_time={self.wall_time})"
        )


class MarchingResult:
    """Stitched per-window results of a windowed time-marching run.

    :meth:`repro.engine.session.Simulator.march` solves ``[0, t_end]``
    as ``K`` consecutive windows on one shared window grid; this
    container stitches the per-window :class:`SimulationResult` objects
    back into a single global-time trajectory.  Every window result
    lives in *local* window time ``[0, W)``; the sampling methods here
    translate global times and expose the same accessor surface as
    :class:`SimulationResult` (``states`` / ``outputs`` /
    ``states_smooth`` / ``outputs_smooth`` / ``sample_times``).

    Indexing yields the per-window results (in local time, with
    ``info['window_index']`` / ``info['t_offset']`` recording their
    place in the march), so all existing per-run analysis and IO
    machinery consumes marched windows unchanged.

    Attributes
    ----------
    windows:
        The per-window :class:`SimulationResult` list, in order.  Note
        that windows may carry *different* systems when mid-run events
        re-stamped the model.
    window_length:
        Duration ``W`` of each window (all windows share one grid).
    wall_time:
        Wall-clock seconds of the whole march.
    info:
        March metadata: method, window count, events applied, pencil
        stamps/factorisations, backend, ...
    """

    def __init__(
        self,
        windows,
        window_length: float,
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        windows = list(windows)
        if not windows:
            raise ValueError("MarchingResult needs at least one window")
        first = windows[0]
        for res in windows:
            if res.coefficients.shape != first.coefficients.shape:
                raise ValueError("all windows must share one grid and state size")
        self.windows = windows
        self.window_length = float(window_length)
        self.wall_time = wall_time
        self.info = dict(info or {})
        self._coefficients: np.ndarray | None = None
        self._output_coefficients: np.ndarray | None = None

    # ------------------------------------------------------------------
    # shape properties
    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def n_states(self) -> int:
        return self.windows[0].n_states

    @property
    def window_m(self) -> int:
        """Block pulses per window."""
        return self.windows[0].m

    @property
    def m(self) -> int:
        """Total block pulses over the whole horizon."""
        return self.n_windows * self.window_m

    @property
    def t_end(self) -> float:
        return self.n_windows * self.window_length

    @property
    def system(self):
        """The system of the *first* window (events may re-stamp later ones)."""
        return self.windows[0].system

    @property
    def offsets(self) -> np.ndarray:
        """Global start time of each window."""
        return self.window_length * np.arange(self.n_windows)

    @property
    def _window_grid(self):
        """The shared per-window :class:`TimeGrid`, if the windows have one.

        Block-pulse windows carry it directly; Walsh/Haar windows are
        exact transforms of block pulses and expose the underlying
        grid.  ``None`` for spectral windows.
        """
        first = self.windows[0]
        if first.grid is not None:
            return first.grid
        if isinstance(first.basis, PiecewiseConstantBasis):
            return first.basis.block_pulse.grid
        return None

    @property
    def midpoints(self) -> np.ndarray:
        """Global sample times of the stitched trajectory.

        Interval midpoints of the stitched grid for (possibly
        transformed) block-pulse windows; the windows' natural sample
        times (equispaced midpoints) for spectral bases.
        """
        grid = self._window_grid
        local = grid.midpoints if grid is not None else self.windows[0].sample_times()
        return (self.offsets[:, None] + local[None, :]).reshape(-1)

    def _stitched_block_pulse(self, coeffs: np.ndarray) -> np.ndarray:
        """Stitched coefficients converted to block-pulse coordinates."""
        basis = self.windows[0].basis
        if not isinstance(basis, PiecewiseConstantBasis):
            return coeffs
        m = self.window_m
        return np.concatenate(
            [
                basis.to_block_pulse_coefficients(coeffs[:, k * m : (k + 1) * m])
                for k in range(self.n_windows)
            ],
            axis=1,
        )

    # ------------------------------------------------------------------
    # stitched coefficients
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> np.ndarray:
        """Stitched state coefficients, shape ``(n_states, K * window_m)``."""
        if self._coefficients is None:
            self._coefficients = np.concatenate(
                [res.coefficients for res in self.windows], axis=1
            )
        return self._coefficients

    @property
    def output_coefficients(self) -> np.ndarray:
        """Stitched output coefficients (per-window ``C``/``D`` respected)."""
        if self._output_coefficients is None:
            self._output_coefficients = np.concatenate(
                [res.output_coefficients for res in self.windows], axis=1
            )
        return self._output_coefficients

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_windows

    def __getitem__(self, index) -> SimulationResult:
        return self.windows[index]

    def __iter__(self):
        return iter(self.windows)

    # ------------------------------------------------------------------
    # sampling (global time)
    # ------------------------------------------------------------------
    def _locate(self, times) -> tuple[np.ndarray, np.ndarray]:
        """Split global times into (window index, local time) pairs."""
        t = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(t < 0.0) or np.any(t > self.t_end * (1 + 1e-12)):
            raise ValueError(f"times must lie in [0, {self.t_end}]")
        idx = np.clip(
            (t / self.window_length).astype(int), 0, self.n_windows - 1
        )
        # clamp round-off overshoot (an accepted global t slightly past
        # t_end must not exceed the last window's own bound check)
        local = np.minimum(t - idx * self.window_length, self.window_length)
        return idx, local

    def _sample(self, method: str, times) -> np.ndarray:
        idx, local = self._locate(times)
        if idx.size == 0:
            return getattr(self.windows[0], method)(local)
        out = None
        for k in np.unique(idx):
            mask = idx == k
            values = getattr(self.windows[k], method)(local[mask])
            if out is None:
                out = np.empty((values.shape[0], idx.size))
            out[:, mask] = values
        return out

    def states(self, times) -> np.ndarray:
        """Sample the stitched state trajectory at global times."""
        return self._sample("states", times)

    def outputs(self, times) -> np.ndarray:
        """Sample the stitched output trajectory at global times."""
        return self._sample("outputs", times)

    def _interpolate_global(self, coeffs: np.ndarray, times) -> np.ndarray:
        """Midpoint-linear reconstruction over the *stitched* grid.

        Interpolating across the global midpoint sequence (rather than
        window by window) keeps the reconstruction continuous across
        window boundaries, matching what a single-window solve of the
        full horizon would produce.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        mids = self.midpoints
        out = np.empty((coeffs.shape[0], times.size))
        for i in range(coeffs.shape[0]):
            out[i] = np.interp(times, mids, coeffs[i])
        return out

    def states_smooth(self, times) -> np.ndarray:
        """Smooth state reconstruction at global times.

        Midpoint-linear (second-order) interpolation over the stitched
        grid for block-pulse windows (Walsh/Haar windows convert to
        block-pulse coordinates and take the same path); exact
        per-window basis synthesis for spectral window bases.
        """
        if self._window_grid is None:
            return self._sample("states", times)
        return self._interpolate_global(
            self._stitched_block_pulse(self.coefficients), times
        )

    def outputs_smooth(self, times) -> np.ndarray:
        """Smooth output reconstruction at global times (see :meth:`states_smooth`)."""
        if self._window_grid is None:
            return self._sample("outputs", times)
        return self._interpolate_global(
            self._stitched_block_pulse(self.output_coefficients), times
        )

    def sample_times(self, n_points: int | None = None) -> np.ndarray:
        """Global midpoints (default) or ``n_points`` equispaced times."""
        if n_points is None:
            return self.midpoints
        n_points = int(n_points)
        step = self.t_end / n_points
        return (np.arange(n_points) + 0.5) * step

    def terminal_state(self) -> np.ndarray:
        """Estimate of ``x(t_end)`` from the last window.

        Second-order extrapolation of the block-pulse averages (see
        :func:`terminal_state_estimate`); exact basis synthesis at the
        window edge for smooth window bases.  Useful for chaining
        marches or seeding a follow-on simulation.
        """
        last = self.windows[-1]
        if isinstance(last.basis, PiecewiseConstantBasis):
            return terminal_state_estimate(
                last.basis.to_block_pulse_coefficients(last.coefficients)
            )
        if last.grid is None:
            return last.states([last.basis.t_end])[:, 0]
        return terminal_state_estimate(last.coefficients)

    def __repr__(self) -> str:
        return (
            f"MarchingResult(K={self.n_windows}, n={self.n_states}, "
            f"m={self.window_m}/window, t_end={self.t_end:g}, "
            f"wall_time={self.wall_time})"
        )

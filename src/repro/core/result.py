"""Simulation result container.

OPM produces the coefficient matrix ``X`` of the state expansion
``x(t) = X phi(t)`` (paper eq. (10)/(26)).  :class:`SimulationResult`
wraps ``X`` together with the basis so users can sample waveforms,
evaluate outputs ``y = C x + D u``, and compare runs on different grids
via resampling.
"""

from __future__ import annotations

import numpy as np

from ..basis.base import BasisSet
from ..basis.block_pulse import BlockPulseBasis

__all__ = ["SimulationResult", "SampledResult"]


class SampledResult:
    """Node-based trajectory from a time-stepping baseline.

    Classical transient schemes (backward Euler, trapezoidal, Gear) and
    the Grünwald-Letnikov fractional stepper produce state values at
    discrete time nodes rather than basis coefficients.  This container
    mirrors the sampling API of :class:`SimulationResult` (via linear
    interpolation) so error metrics can compare the two uniformly.

    Attributes
    ----------
    times:
        1-D array of ``K`` time nodes (monotonically increasing).
    state_values:
        Array ``(n_states, K)`` of states at the nodes.
    system:
        The simulated system (for the ``C``/``D`` output map).
    input_values:
        Optional ``(n_inputs, K)`` input samples at the nodes (needed
        only when the system has a feedthrough ``D``).
    """

    def __init__(
        self,
        times,
        state_values,
        system,
        input_values=None,
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        self.times = np.asarray(times, dtype=float)
        self.state_values = np.asarray(state_values, dtype=float)
        if self.times.ndim != 1 or self.state_values.ndim != 2:
            raise ValueError("times must be 1-D and state_values 2-D")
        if self.state_values.shape[1] != self.times.size:
            raise ValueError(
                f"state_values must have {self.times.size} columns, "
                f"got {self.state_values.shape[1]}"
            )
        self.system = system
        self.input_values = None if input_values is None else np.asarray(input_values, float)
        self.wall_time = wall_time
        self.info = dict(info or {})

    @property
    def n_states(self) -> int:
        return self.state_values.shape[0]

    @property
    def output_values(self) -> np.ndarray:
        """Outputs at the nodes, ``y = C x + D u``."""
        y = self.state_values if self.system.C is None else self.system.C @ self.state_values
        if self.system.D is not None:
            if self.input_values is None:
                raise ValueError("system has feedthrough D but no input samples stored")
            y = y + self.system.D @ self.input_values
        return y

    def states(self, times) -> np.ndarray:
        """Linear interpolation of the states at arbitrary times."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((self.n_states, times.size))
        for i in range(self.n_states):
            out[i] = np.interp(times, self.times, self.state_values[i])
        return out

    def outputs(self, times) -> np.ndarray:
        """Linear interpolation of the outputs at arbitrary times."""
        values = self.output_values
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((values.shape[0], times.size))
        for i in range(values.shape[0]):
            out[i] = np.interp(times, self.times, values[i])
        return out

    def __repr__(self) -> str:
        return (
            f"SampledResult(n={self.n_states}, K={self.times.size}, "
            f"wall_time={self.wall_time})"
        )


class SimulationResult:
    """State trajectory in coefficient form plus evaluation helpers.

    Attributes
    ----------
    basis:
        The basis the expansion lives in (block-pulse for the standard
        solvers; Walsh/Haar/polynomial for the basis-agnostic ones).
    coefficients:
        State coefficient matrix ``X`` of shape ``(n_states, m)``.
    input_coefficients:
        Input coefficient matrix ``U`` of shape ``(n_inputs, m)``.
    system:
        The simulated system (used for ``C``/``D`` output mapping).
    wall_time:
        Solver wall-clock seconds (populated by the solvers).
    info:
        Free-form solver metadata: method name, factorisation count,
        accepted/rejected steps for the adaptive controller, ...
    """

    def __init__(
        self,
        basis: BasisSet,
        coefficients: np.ndarray,
        system,
        input_coefficients: np.ndarray,
        *,
        wall_time: float | None = None,
        info: dict | None = None,
    ) -> None:
        coefficients = np.asarray(coefficients, dtype=float)
        input_coefficients = np.asarray(input_coefficients, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[1] != basis.size:
            raise ValueError(
                f"coefficients must be (n, {basis.size}), got {coefficients.shape}"
            )
        if input_coefficients.ndim != 2 or input_coefficients.shape[1] != basis.size:
            raise ValueError(
                f"input_coefficients must be (p, {basis.size}), got {input_coefficients.shape}"
            )
        self.basis = basis
        self.coefficients = coefficients
        self.input_coefficients = input_coefficients
        self.system = system
        self.wall_time = wall_time
        self.info = dict(info or {})

    # ------------------------------------------------------------------
    # shape properties
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.coefficients.shape[0]

    @property
    def m(self) -> int:
        """Number of basis terms (time intervals for block pulses)."""
        return self.basis.size

    @property
    def grid(self):
        """The time grid when the basis is block-pulse, else ``None``."""
        if isinstance(self.basis, BlockPulseBasis):
            return self.basis.grid
        return None

    @property
    def output_coefficients(self) -> np.ndarray:
        """Output coefficient matrix ``Y = C X + D U``."""
        return self.system.output_coefficients(self.coefficients, self.input_coefficients)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def states(self, times) -> np.ndarray:
        """Sample the state trajectory, shape ``(n_states, len(times))``."""
        return self.basis.synthesize(self.coefficients, np.atleast_1d(times))

    def outputs(self, times) -> np.ndarray:
        """Sample the output trajectory ``y = C x + D u``."""
        return self.basis.synthesize(self.output_coefficients, np.atleast_1d(times))

    def _interpolate_coefficients(self, coeffs: np.ndarray, times) -> np.ndarray:
        """Linear interpolation of block-pulse coefficients at midpoints.

        Block-pulse coefficients are interval averages, which agree with
        midpoint values to second order; interpolating them linearly
        gives a continuous second-order reconstruction, removing the
        O(h) half-cell offset of raw piecewise-constant sampling.  Used
        for cross-method waveform comparisons.
        """
        grid = self.grid
        if grid is None:
            return self.basis.synthesize(coeffs, np.atleast_1d(times))
        times = np.atleast_1d(np.asarray(times, dtype=float))
        mids = grid.midpoints
        out = np.empty((coeffs.shape[0], times.size))
        for i in range(coeffs.shape[0]):
            out[i] = np.interp(times, mids, coeffs[i])
        return out

    def states_smooth(self, times) -> np.ndarray:
        """Second-order (midpoint-linear) state reconstruction.

        Falls back to basis synthesis for non-block-pulse results.
        """
        return self._interpolate_coefficients(self.coefficients, times)

    def outputs_smooth(self, times) -> np.ndarray:
        """Second-order (midpoint-linear) output reconstruction."""
        return self._interpolate_coefficients(self.output_coefficients, times)

    def inputs(self, times) -> np.ndarray:
        """Sample the (projected) input trajectory."""
        return self.basis.synthesize(self.input_coefficients, np.atleast_1d(times))

    def sample_times(self, n_points: int | None = None) -> np.ndarray:
        """Natural sampling times: interval midpoints for block pulses.

        For block-pulse results with ``n_points is None`` this returns
        the grid midpoints -- the points where the piecewise-constant
        expansion best represents the trajectory (paper's
        "roughly, f_i = f(ih)").  Otherwise returns ``n_points`` equally
        spaced times on ``[0, t_end)``.
        """
        grid = self.grid
        if n_points is None and grid is not None:
            return grid.midpoints
        n_points = 256 if n_points is None else int(n_points)
        t_end = self.basis.t_end
        if not np.isfinite(t_end):
            raise ValueError("sample_times requires a finite-horizon basis or n_points")
        step = t_end / n_points
        return (np.arange(n_points) + 0.5) * step

    def __repr__(self) -> str:
        return (
            f"SimulationResult(n={self.n_states}, m={self.m}, "
            f"basis={self.basis.name}, wall_time={self.wall_time})"
        )

"""OPM for multi-term (high-order / multi-order fractional) systems.

Section IV of the paper observes that high-order differential systems
are special cases of fractional systems and can be simulated with the
same machinery.  The general multi-term form

.. math::

    \\sum_k M_k \\frac{d^{\\alpha_k}}{dt^{\\alpha_k}} x(t) = B u(t)

becomes, in block-pulse coefficients,

.. math::  \\sum_k M_k X D^{\\alpha_k} = B U .

Every ``D^{alpha_k}`` is upper-triangular Toeplitz with first-row
coefficients ``c^{(k)}``, so column ``j`` reads

.. math::

    \\Big( \\sum_k c^{(k)}_0 M_k \\Big) x_j
    = r_j - \\sum_k M_k \\sum_{i<j} c^{(k)}_{j-i} x_i ,

one factorisation of the *pencil sum* plus ``O(K n m)`` accumulation
per column -- the natural generalisation of the paper's complexity
argument.  The paper's section V-B power-grid example is the
three-term integer instance ``M2 x'' + M1 x' + M0 x = B u`` solved on
the (smaller) NA model, versus classical transient analysis on the
(larger) first-order MNA model.

Since the engine refactor the sweep lives in
:func:`repro.engine.kernels.sweep_multiterm` (where it additionally
accepts batched right-hand sides) and this function is a thin wrapper
over a throwaway :class:`~repro.engine.session.Simulator`; reuse a
session directly for repeated multi-term solves.

(The blocked-FFT history of
:func:`repro.engine.kernels.sweep_toeplitz` currently accelerates
single-term fractional systems only; extending it to the per-term
tails here is mechanical but not implemented.)
"""

from __future__ import annotations

import time

from ..engine.session import Simulator, resolve_grid
from .lti import MultiTermSystem
from .result import SimulationResult

__all__ = ["simulate_multiterm"]


def simulate_multiterm(
    system: MultiTermSystem,
    u,
    grid,
    *,
    projection: str = "average",
    backend: str = "auto",
) -> SimulationResult:
    """Simulate a :class:`~repro.core.lti.MultiTermSystem` with OPM.

    Parameters
    ----------
    system:
        The multi-term model; zero initial conditions are assumed
        (paper convention -- nonzero high-order ICs would require
        derivative data).
    u:
        Input specification (see
        :func:`repro.engine.inputs.project_input`).
    grid:
        Uniform :class:`TimeGrid` or ``(t_end, m)`` tuple.  Adaptive
        grids are rejected: the per-term matrices would lose their
        shared Toeplitz structure (use the companion form plus
        :func:`~repro.core.opm_adaptive.simulate_opm_adaptive` instead).
    projection:
        Input projection rule, ``'average'`` or ``'midpoint'``.
    backend:
        Linear-algebra backend selection for the pencil-sum
        factorisation (``'auto'`` / ``'dense'`` / ``'sparse'``).

    Returns
    -------
    SimulationResult
        ``info['method'] == 'opm-multiterm'``.

    Examples
    --------
    Fractional oscillator ``x'' + 0.5 d^{1/2}x + x = u`` (a classical
    multi-term FDE, here just exercised for shape):

    >>> import numpy as np
    >>> from repro.core.lti import MultiTermSystem
    >>> msys = MultiTermSystem(
    ...     [(2.0, np.eye(1)), (0.5, 0.5 * np.eye(1)), (0.0, np.eye(1))],
    ...     [[1.0]])
    >>> res = simulate_multiterm(msys, 1.0, (10.0, 64))
    >>> res.coefficients.shape
    (1, 64)
    """
    grid = resolve_grid(grid)
    if not isinstance(system, MultiTermSystem):
        raise TypeError(f"system must be a MultiTermSystem, got {type(system).__name__}")

    start = time.perf_counter()
    sim = Simulator(system, grid, projection=projection, backend=backend)
    result = sim.run(u)
    # one-shot call: charge session assembly + factorisation to the run
    result.wall_time = time.perf_counter() - start
    return result

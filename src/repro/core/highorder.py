"""OPM for multi-term (high-order / multi-order fractional) systems.

Section IV of the paper observes that high-order differential systems
are special cases of fractional systems and can be simulated with the
same machinery.  The general multi-term form

.. math::

    \\sum_k M_k \\frac{d^{\\alpha_k}}{dt^{\\alpha_k}} x(t) = B u(t)

becomes, in block-pulse coefficients,

.. math::  \\sum_k M_k X D^{\\alpha_k} = B U .

Every ``D^{alpha_k}`` is upper-triangular Toeplitz with first-row
coefficients ``c^{(k)}``, so column ``j`` reads

.. math::

    \\Big( \\sum_k c^{(k)}_0 M_k \\Big) x_j
    = r_j - \\sum_k M_k \\sum_{i<j} c^{(k)}_{j-i} x_i ,

one factorisation of the *pencil sum* plus ``O(K n m)`` accumulation
per column -- the natural generalisation of the paper's complexity
argument.  The paper's section V-B power-grid example is the
three-term integer instance ``M2 x'' + M1 x' + M0 x = B u`` solved on
the (smaller) NA model, versus classical transient analysis on the
(larger) first-order MNA model.

(The blocked-FFT history of
:func:`repro.core.column_solver.solve_columns_toeplitz` currently
accelerates single-term fractional systems only; extending it to the
per-term tails here is mechanical but not implemented.)
"""

from __future__ import annotations

import time

import numpy as np

from ..basis.block_pulse import BlockPulseBasis
from ..basis.grid import TimeGrid
from ..errors import SolverError
from ..opmat.fractional import fractional_differentiation_coefficients
from .column_solver import PencilCache
from .lti import MultiTermSystem
from .result import SimulationResult

__all__ = ["simulate_multiterm"]


def simulate_multiterm(
    system: MultiTermSystem,
    u,
    grid,
    *,
    projection: str = "average",
) -> SimulationResult:
    """Simulate a :class:`~repro.core.lti.MultiTermSystem` with OPM.

    Parameters
    ----------
    system:
        The multi-term model; zero initial conditions are assumed
        (paper convention -- nonzero high-order ICs would require
        derivative data).
    u:
        Input specification (see
        :func:`repro.core.opm_solver.project_input`).
    grid:
        Uniform :class:`TimeGrid` or ``(t_end, m)`` tuple.  Adaptive
        grids are rejected: the per-term matrices would lose their
        shared Toeplitz structure (use the companion form plus
        :func:`~repro.core.opm_adaptive.simulate_opm_adaptive` instead).

    Returns
    -------
    SimulationResult
        ``info['method'] == 'opm-multiterm'``.

    Examples
    --------
    Fractional oscillator ``x'' + 0.5 d^{1/2}x + x = u`` (a classical
    multi-term FDE, here just exercised for shape):

    >>> import numpy as np
    >>> from repro.core.lti import MultiTermSystem
    >>> msys = MultiTermSystem(
    ...     [(2.0, np.eye(1)), (0.5, 0.5 * np.eye(1)), (0.0, np.eye(1))],
    ...     [[1.0]])
    >>> res = simulate_multiterm(msys, 1.0, (10.0, 64))
    >>> res.coefficients.shape
    (1, 64)
    """
    from .opm_solver import project_input, resolve_grid

    grid = resolve_grid(grid)
    if not isinstance(system, MultiTermSystem):
        raise TypeError(f"system must be a MultiTermSystem, got {type(system).__name__}")
    if not grid.is_uniform:
        raise SolverError(
            "multi-term OPM requires a uniform grid; convert to first order "
            "for adaptive stepping"
        )

    basis = BlockPulseBasis(grid, projection=projection)
    U = project_input(u, basis, system.n_inputs)
    R = system.B @ U
    m, h = grid.m, grid.h
    n = system.n_states

    start = time.perf_counter()
    term_coeffs = [
        (alpha_k, matrix, fractional_differentiation_coefficients(alpha_k, m, h))
        for alpha_k, matrix in system.terms
    ]
    # Pencil sum P = sum_k c0^{(k)} M_k, factorised once.
    pencil = None
    for _, matrix, coeffs in term_coeffs:
        contrib = coeffs[0] * matrix
        pencil = contrib if pencil is None else pencil + contrib
    # Reuse PencilCache with A = 0: solve(1.0) factorises 1*P - 0 = P.
    zero = pencil * 0.0
    cache = PencilCache(pencil, zero)

    # Integer orders 1 and 2 admit O(n)-per-column tail recurrences.
    # With the alternating history sums (over the solved columns
    # x_0 .. x_{j-1})
    #
    #   A_{j-1} = sum_{k>=1} (-1)^{k-1} x_{j-k}      (A_j = x_j - A_{j-1})
    #   B_j     = sum_{k>=1} (-1)^k k x_{j-k}        (B_j = -(B_{j-1} + A_{j-1}))
    #
    # the order-1 tail coefficients c_k = (2/h) 2 (-1)^k give
    #   s_j^(1) = -(4/h) A_{j-1},
    # and the order-2 coefficients c_k = (2/h)^2 4 k (-1)^k give
    #   s_j^(2) = 4 (2/h)^2 B_j.
    # Other orders fall back to the O(m)-per-column dot product the
    # paper's complexity analysis describes for fractional systems.
    first_terms = []  # matrices of order-1 terms
    second_terms = []  # matrices of order-2 terms
    slow_terms = []  # (matrix, coeffs) for every other positive order
    for alpha_k, matrix, coeffs in term_coeffs:
        if alpha_k == 0.0:
            continue  # algebraic: no history tail
        if alpha_k == 1.0:
            first_terms.append(matrix)
        elif alpha_k == 2.0:
            second_terms.append(matrix)
        else:
            slow_terms.append((matrix, coeffs))
    uses_alt = bool(first_terms or second_terms)
    scale1 = 4.0 / h
    scale2 = 4.0 * (2.0 / h) ** 2

    X = np.empty((n, m))
    alt_a = np.zeros(n)  # A_{j-1}
    alt_b = np.zeros(n)  # B_{j-1}
    for j in range(m):
        rhs = R[:, j].copy()
        if uses_alt:
            b_j = -(alt_b + alt_a)  # B_j, from history only
        if j > 0:
            for matrix in first_terms:
                # rhs -= M s^(1) with s^(1) = -(4/h) A_{j-1}
                rhs += scale1 * (matrix @ alt_a)
            for matrix in second_terms:
                rhs -= scale2 * (matrix @ b_j)
            for matrix, coeffs in slow_terms:
                s = X[:, :j] @ coeffs[j:0:-1]
                rhs -= matrix @ s
        X[:, j] = cache.solve(1.0, rhs)
        if uses_alt:
            alt_b = b_j
            alt_a = X[:, j] - alt_a
    wall = time.perf_counter() - start

    return SimulationResult(
        basis,
        X,
        system,
        U,
        wall_time=wall,
        info={
            "method": "opm-multiterm",
            "orders": [alpha_k for alpha_k, _ in system.terms],
            "factorisations": cache.factorisations,
        },
    )

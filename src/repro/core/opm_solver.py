"""The OPM simulation algorithm (paper sections III and IV).

Main entry point: :func:`simulate_opm`.  Given a system model, an input,
and a time grid, the solver

1. projects the input onto the block-pulse basis (eq. (11)),
2. forms the operational-matrix equation ``E X D^alpha = A X + B U``
   (eq. (14) for ``alpha = 1``, eq. (27) for fractional orders,
   eq. (18) for adaptive grids),
3. solves it column by column exploiting the triangular structure
   (never assembling the Kronecker system), and
4. returns a :class:`~repro.core.result.SimulationResult` whose
   piecewise-constant expansion is the response ``x(t) = X phi(t)``.

Multi-term systems (the paper's high-order case) are dispatched to
:func:`repro.core.highorder.simulate_multiterm`.

:func:`simulate_opm_transformed` runs the same algorithm in a Walsh or
Haar basis using the exact change-of-basis (section I's "switch to
other basis functions"), and :func:`project_input` is the shared input
projection helper.
"""

from __future__ import annotations

import time
from typing import Callable, Union

import numpy as np

from ..basis.base import BasisSet
from ..basis.block_pulse import BlockPulseBasis
from ..basis.grid import TimeGrid
from ..basis.pwconst import PiecewiseConstantBasis
from ..errors import ModelError, SolverError
from ..opmat.differential import differentiation_matrix_adaptive
from ..opmat.fractional import (
    fractional_differentiation_coefficients,
    fractional_differentiation_matrix_adaptive,
)
from .column_solver import solve_columns_general, solve_columns_toeplitz
from .lti import DescriptorSystem, MultiTermSystem
from .result import SimulationResult

__all__ = ["simulate_opm", "simulate_opm_transformed", "project_input", "resolve_grid"]

InputLike = Union[Callable, np.ndarray, list, tuple, float, int]


def resolve_grid(grid) -> TimeGrid:
    """Accept a :class:`TimeGrid` or an ``(t_end, m)`` convenience tuple."""
    if isinstance(grid, TimeGrid):
        return grid
    if isinstance(grid, tuple) and len(grid) == 2:
        return TimeGrid.uniform(float(grid[0]), int(grid[1]))
    raise TypeError(
        "grid must be a TimeGrid or a (t_end, m) tuple, "
        f"got {type(grid).__name__}"
    )


def project_input(u: InputLike, basis: BasisSet, n_inputs: int) -> np.ndarray:
    """Project an input specification onto the basis (paper eq. (11)).

    Accepted forms:

    * a callable ``u(times) -> (p, len(times))`` array (or
      ``(len(times),)`` for single-input systems), projected with the
      basis' quadrature rule;
    * an array of coefficients with shape ``(p, m)`` (or ``(m,)`` for
      ``p = 1``), taken as-is;
    * a scalar, meaning a constant (step) input on every channel.

    Returns the coefficient matrix ``U`` of shape ``(p, m)``.
    """
    m = basis.size
    if callable(u):
        if n_inputs == 1:
            sample = np.atleast_2d(np.asarray(u(np.array([0.0]))))
            if sample.shape == (1, 1):
                # accept both (nt,) and (1, nt) return shapes
                def scalar_u(times, _u=u):
                    return np.asarray(_u(times), dtype=float).reshape(np.shape(times))

                return basis.project(scalar_u).reshape(1, m)
        return basis.project_vector(u, n_inputs)
    if np.isscalar(u):
        # constants project exactly in every basis here; block pulses and
        # Walsh/Haar in particular represent them without quadrature noise
        value = float(u)
        if isinstance(basis, BlockPulseBasis):
            return np.full((n_inputs, m), value)
        const = basis.project(lambda t: np.full_like(t, value, dtype=float))
        return np.tile(const, (n_inputs, 1))
    u_arr = np.asarray(u, dtype=float)
    if u_arr.ndim == 1:
        if n_inputs != 1:
            raise ModelError(
                f"1-D input coefficients require a single-input system, got p={n_inputs}"
            )
        u_arr = u_arr.reshape(1, -1)
    if u_arr.shape != (n_inputs, m):
        raise ModelError(
            f"input coefficients must have shape ({n_inputs}, {m}), got {u_arr.shape}"
        )
    return u_arr


def _right_hand_side(system: DescriptorSystem, U: np.ndarray) -> np.ndarray:
    """``R = B U`` plus the constant zero-IC shift term ``A x0`` (if any)."""
    R = system.B @ U
    offset = system.shifted_input_offset()
    if offset is not None:
        R = R + offset[:, None]
    return R


def simulate_opm(
    system,
    u: InputLike,
    grid,
    *,
    projection: str = "average",
    adaptive_method: str = "auto",
    history: str = "direct",
) -> SimulationResult:
    """Simulate a system with the OPM algorithm on a block-pulse basis.

    Parameters
    ----------
    system:
        :class:`~repro.core.lti.DescriptorSystem` (eq. (9)),
        :class:`~repro.core.lti.FractionalDescriptorSystem` (eq. (19))
        or :class:`~repro.core.lti.MultiTermSystem` /
        :class:`~repro.core.lti.SecondOrderSystem` (section V-B).
    u:
        Input specification; see :func:`project_input`.
    grid:
        :class:`TimeGrid` or ``(t_end, m)`` tuple.  Uniform grids use
        the Toeplitz fast path; adaptive grids the general triangular
        sweep (fractional adaptive grids additionally require pairwise
        distinct steps for the eigendecomposition route, paper eq. (25)).
    projection:
        Input projection rule, ``'average'`` (eq. (2)) or ``'midpoint'``.
    adaptive_method:
        Construction of ``D~^alpha`` on adaptive grids: ``'auto'``,
        ``'eig'``, ``'schur'`` (see
        :func:`repro.opmat.fractional.fractional_differentiation_matrix_adaptive`).
    history:
        Fractional-tail accumulation on uniform grids: ``'direct'``
        (the paper's ``O(n m^2)`` sweep) or ``'fft'`` (blocked online
        convolution, ``O(n m^{1.5} sqrt(log m))``, identical solution
        to round-off -- an extension beyond the paper; see
        :func:`repro.core.column_solver.solve_columns_toeplitz`).
        Ignored on the first-order fast path and adaptive grids.

    Returns
    -------
    SimulationResult
        With ``info['method']`` one of ``'opm-toeplitz'``,
        ``'opm-alternating'``, ``'opm-general'`` and
        ``info['factorisations']`` the number of pencil LUs performed.

    Examples
    --------
    Unit-step response of the scalar ODE ``x' = -x + u``:

    >>> import numpy as np
    >>> from repro.core.lti import DescriptorSystem
    >>> sys1 = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_opm(sys1, 1.0, (5.0, 200))
    >>> float(np.abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0)))) < 1e-3
    True
    """
    grid = resolve_grid(grid)
    if isinstance(system, MultiTermSystem):
        from .highorder import simulate_multiterm

        return simulate_multiterm(system, u, grid, projection=projection)
    if not isinstance(system, DescriptorSystem):
        raise TypeError(
            "system must be a DescriptorSystem, FractionalDescriptorSystem "
            f"or MultiTermSystem, got {type(system).__name__}"
        )

    basis = BlockPulseBasis(grid, projection=projection)
    U = project_input(u, basis, system.n_inputs)
    R = _right_hand_side(system, U)
    alpha = system.alpha

    start = time.perf_counter()
    if grid.is_uniform:
        coeffs = fractional_differentiation_coefficients(alpha, grid.m, grid.h)
        first_order = alpha == 1.0
        X, cache = solve_columns_toeplitz(
            system.E,
            system.A,
            R,
            coeffs,
            alternating_tail=first_order,
            history=history,
        )
        if first_order:
            method = "opm-alternating"
        else:
            method = "opm-toeplitz" if history == "direct" else "opm-toeplitz-fft"
    else:
        if alpha == 1.0:
            D = differentiation_matrix_adaptive(grid.steps)
        else:
            D = fractional_differentiation_matrix_adaptive(
                alpha, grid.steps, method=adaptive_method
            )
        X, cache = solve_columns_general(system.E, system.A, R, D)
        method = "opm-general"
    if system.x0 is not None:
        X = X + system.x0[:, None]
    wall = time.perf_counter() - start

    return SimulationResult(
        basis,
        X,
        system,
        U,
        wall_time=wall,
        info={
            "method": method,
            "alpha": alpha,
            "factorisations": cache.factorisations,
        },
    )


def simulate_opm_transformed(
    system,
    u: InputLike,
    basis: PiecewiseConstantBasis,
    *,
    projection: str = "average",
) -> SimulationResult:
    """Run OPM in a Walsh or Haar basis via the exact change of basis.

    Walsh and Haar families are invertible linear images of the
    block-pulse basis (``psi = W phi``), so the OPM solution in those
    bases equals the block-pulse solution with coefficients transformed
    by ``W^{-T}``.  This function performs the block-pulse solve (fast,
    triangular) and transforms -- mathematically identical to solving
    ``E X_psi D_psi = A X_psi + B U_psi`` with the conjugated
    operational matrix, but without giving up triangularity.

    Returns a result whose ``basis`` is the given Walsh/Haar family, so
    truncating its coefficient spectrum exposes the low-pass behaviour
    the paper describes for Walsh functions.
    """
    if not isinstance(basis, PiecewiseConstantBasis):
        raise TypeError(
            "basis must be a Walsh/Haar PiecewiseConstantBasis, "
            f"got {type(basis).__name__}"
        )
    bpf_result = simulate_opm(
        system, u, basis.block_pulse.grid, projection=projection
    )
    w = basis.transform
    m = basis.size
    # coefficients transform contravariantly: c_psi = W^{-T} c_B = W c_B / m
    X = bpf_result.coefficients @ w.T / m
    U = bpf_result.input_coefficients @ w.T / m
    info = dict(bpf_result.info)
    info["method"] = f"opm-transformed[{basis.name}]"
    return SimulationResult(
        basis, X, system, U, wall_time=bpf_result.wall_time, info=info
    )

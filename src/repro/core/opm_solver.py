"""The OPM simulation algorithm (paper sections III and IV).

Main entry point: :func:`simulate_opm`.  Given a system model, an input,
and a time grid, the solver

1. projects the input onto the block-pulse basis (eq. (11)),
2. forms the operational-matrix equation ``E X D^alpha = A X + B U``
   (eq. (14) for ``alpha = 1``, eq. (27) for fractional orders,
   eq. (18) for adaptive grids),
3. solves it column by column exploiting the triangular structure
   (never assembling the Kronecker system), and
4. returns a :class:`~repro.core.result.SimulationResult` whose
   piecewise-constant expansion is the response ``x(t) = X phi(t)``.

Since the engine refactor this is a thin wrapper over
:class:`repro.engine.session.Simulator`: each call builds a throwaway
session and runs it once.  Repeated-solve workloads (parameter sweeps,
many input waveforms) should construct a ``Simulator`` directly and
reuse it -- a warm session skips basis assembly, coefficient
construction, and the pencil LU factorisation.

Multi-term systems (the paper's high-order case) are dispatched to
:func:`repro.core.highorder.simulate_multiterm`.

:func:`simulate_opm_transformed` runs the same algorithm in a Walsh or
Haar basis using the exact change-of-basis (section I's "switch to
other basis functions"), and :func:`project_input` (re-exported from
:mod:`repro.engine.inputs`) is the shared input projection helper.
"""

from __future__ import annotations

import time

import numpy as np

from ..basis.base import BasisSet
from ..basis.pwconst import PiecewiseConstantBasis
from ..engine.inputs import project_input
from ..engine.session import InputLike, Simulator, resolve_grid
from .lti import MultiTermSystem
from .result import SimulationResult

__all__ = ["simulate_opm", "simulate_opm_transformed", "project_input", "resolve_grid"]


def _right_hand_side(system, U: np.ndarray) -> np.ndarray:
    """``R = B U`` plus the constant zero-IC shift term ``A x0`` (if any)."""
    R = system.B @ U
    offset = system.shifted_input_offset()
    if offset is not None:
        R = R + offset[:, None]
    return R


def simulate_opm(
    system,
    u: InputLike,
    grid,
    *,
    basis=None,
    projection: str | None = None,
    adaptive_method: str = "auto",
    history: str = "direct",
    backend: str = "auto",
    reduce=None,
    memory="exact",
    memory_rtol: float | None = None,
) -> SimulationResult:
    """Simulate a system with the OPM algorithm (block-pulse by default).

    Parameters
    ----------
    system:
        :class:`~repro.core.lti.DescriptorSystem` (eq. (9)),
        :class:`~repro.core.lti.FractionalDescriptorSystem` (eq. (19))
        or :class:`~repro.core.lti.MultiTermSystem` /
        :class:`~repro.core.lti.SecondOrderSystem` (section V-B).
    u:
        Input specification; see :func:`repro.engine.inputs.project_input`.
    grid:
        :class:`TimeGrid`, ``(t_end, m)`` tuple, or a ready
        :class:`~repro.basis.base.BasisSet` instance.  Uniform grids use
        the Toeplitz fast path; adaptive grids the general triangular
        sweep (fractional adaptive grids additionally require pairwise
        distinct steps for the eigendecomposition route, paper eq. (25)).
    basis:
        Basis family to solve in -- ``None`` (block pulse), a name from
        :func:`repro.engine.bundle.basis_names` (``'chebyshev'``,
        ``'legendre'``, ``'haar'``, ...), or a
        :class:`~repro.basis.base.BasisSet` instance.  See
        :class:`~repro.engine.session.Simulator`.
    projection:
        Input projection rule, ``'average'`` (eq. (2)) or
        ``'midpoint'``; ``None`` keeps the basis' own rule.
    adaptive_method:
        Construction of ``D~^alpha`` on adaptive grids: ``'auto'``,
        ``'eig'``, ``'schur'`` (see
        :func:`repro.opmat.fractional.fractional_differentiation_matrix_adaptive`).
    history:
        Fractional-tail accumulation on uniform grids: ``'direct'``
        (the paper's ``O(n m^2)`` sweep) or ``'fft'`` (blocked online
        convolution, ``O(n m^{1.5} sqrt(log m))``, identical solution
        to round-off -- an extension beyond the paper; see
        :func:`repro.engine.kernels.sweep_toeplitz`).
        Ignored on the first-order fast path and adaptive grids.
    backend:
        Linear-algebra backend selection, ``'auto'`` / ``'dense'`` /
        ``'sparse'`` (see :func:`repro.engine.backends.select_backend`).
    reduce:
        Certified model-order reduction at bind: ``None`` (off),
        ``'auto'``, a moment count, or a
        :class:`~repro.engine.reduction.ReductionPlan` (see
        :mod:`repro.engine.reduction`).  First-order systems only.
    memory, memory_rtol:
        Fractional-memory compression: ``'exact'`` (default),
        ``'soe'``, or a :class:`~repro.fractional.soe.SoePlan`; see
        :class:`~repro.engine.session.Simulator` and
        :mod:`repro.fractional.soe`.

    Returns
    -------
    SimulationResult
        With ``info['method']`` one of ``'opm-toeplitz'``,
        ``'opm-alternating'``, ``'opm-general'`` and
        ``info['factorisations']`` the number of pencil LUs performed.

    Examples
    --------
    Unit-step response of the scalar ODE ``x' = -x + u``:

    >>> import numpy as np
    >>> from repro.core.lti import DescriptorSystem
    >>> sys1 = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_opm(sys1, 1.0, (5.0, 200))
    >>> float(np.abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0)))) < 1e-3
    True
    """
    if not isinstance(grid, BasisSet):
        grid = resolve_grid(grid)
    if isinstance(system, MultiTermSystem) and basis is None and not isinstance(grid, BasisSet):
        from .highorder import simulate_multiterm

        return simulate_multiterm(
            system, u, grid, projection=projection or "average", backend=backend
        )

    start = time.perf_counter()
    sim = Simulator(
        system,
        grid,
        basis=basis,
        projection=projection,
        adaptive_method=adaptive_method,
        history=history,
        backend=backend,
        reduce=reduce,
        memory=memory,
        memory_rtol=memory_rtol,
    )
    result = sim.run(u)
    # one-shot call: charge session assembly + factorisation to the run
    result.wall_time = time.perf_counter() - start
    return result


def simulate_opm_transformed(
    system,
    u: InputLike,
    basis: PiecewiseConstantBasis,
    *,
    projection: str | None = None,
) -> SimulationResult:
    """Run OPM in a Walsh or Haar basis via the exact change of basis.

    Walsh and Haar families are invertible linear images of the
    block-pulse basis (``psi = W phi``), so the OPM solution in those
    bases equals the block-pulse solution with coefficients transformed
    by ``W^{-T}``.  This function performs the block-pulse solve (fast,
    triangular) and transforms -- mathematically identical to solving
    ``E X_psi D_psi = A X_psi + B U_psi`` with the conjugated
    operational matrix, but without giving up triangularity.

    Returns a result whose ``basis`` is the given Walsh/Haar family, so
    truncating its coefficient spectrum exposes the low-pass behaviour
    the paper describes for Walsh functions.

    Since the basis-generic engine refactor this is a pure alias for
    ``simulate_opm(system, u, basis)``: the session itself performs the
    block-pulse solve and the exact change of basis (no more reaching
    through ``basis.block_pulse.grid``).
    """
    if not isinstance(basis, PiecewiseConstantBasis):
        raise TypeError(
            "basis must be a Walsh/Haar PiecewiseConstantBasis, "
            f"got {type(basis).__name__}"
        )
    return simulate_opm(system, u, basis, projection=projection)

"""Dense Kronecker-product reference solver (paper eqs. (15), (18), (27)).

The paper writes the OPM equation in vectorised form

.. math::

    \\left( (D^{\\alpha})^T \\otimes E - I_m \\otimes A \\right)
    \\mathrm{vec}(X) = (I_m \\otimes B)\\, \\mathrm{vec}(U)

and then immediately notes it never needs to be solved directly.  This
module solves it directly anyway: an ``nm x nm`` dense solve that is
exponentially more expensive but algebraically transparent.  It exists
to cross-validate the production column sweep (the test suite asserts
bitwise-close agreement on random systems) and to make the cost gap
measurable in the benchmarks.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from ..basis.block_pulse import BlockPulseBasis
from ..engine.assembly import dense_operator
from ..errors import SolverError
from .lti import DescriptorSystem, MultiTermSystem
from .result import SimulationResult

__all__ = ["simulate_opm_kron"]

#: Refuse dense Kronecker systems larger than this (rows).
MAX_KRON_SIZE = 6000


def _dense(matrix) -> np.ndarray:
    return matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)


def simulate_opm_kron(system, u, grid, *, projection: str = "average") -> SimulationResult:
    """Solve the OPM equation via the explicit Kronecker system.

    Accepts the same system types and inputs as
    :func:`repro.core.opm_solver.simulate_opm`; refuses problems with
    ``n * m > MAX_KRON_SIZE`` (this is a reference implementation).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.lti import DescriptorSystem
    >>> from repro.core.opm_solver import simulate_opm
    >>> sys1 = DescriptorSystem([[1.0]], [[-2.0]], [[1.0]])
    >>> fast = simulate_opm(sys1, 1.0, (1.0, 16))
    >>> ref = simulate_opm_kron(sys1, 1.0, (1.0, 16))
    >>> bool(np.allclose(fast.coefficients, ref.coefficients))
    True
    """
    from .opm_solver import _right_hand_side, project_input, resolve_grid

    grid = resolve_grid(grid)
    basis = BlockPulseBasis(grid, projection=projection)
    m = grid.m

    if isinstance(system, MultiTermSystem):
        n = system.n_states
        if n * m > MAX_KRON_SIZE:
            raise SolverError(
                f"Kronecker system of size {n * m} exceeds MAX_KRON_SIZE={MAX_KRON_SIZE}"
            )
        U = project_input(u, basis, system.n_inputs)
        R = system.B @ U
        start = time.perf_counter()
        big = np.zeros((n * m, n * m))
        for alpha_k, matrix in system.terms:
            d_alpha = dense_operator(grid, alpha_k)
            big += np.kron(d_alpha.T, _dense(matrix))
        vec_x = np.linalg.solve(big, R.T.reshape(-1))
        X = vec_x.reshape(m, n).T
        wall = time.perf_counter() - start
        return SimulationResult(
            basis, X, system, U, wall_time=wall,
            info={"method": "opm-kron", "size": n * m},
        )

    if not isinstance(system, DescriptorSystem):
        raise TypeError(
            f"system must be a DescriptorSystem or MultiTermSystem, "
            f"got {type(system).__name__}"
        )
    n = system.n_states
    if n * m > MAX_KRON_SIZE:
        raise SolverError(
            f"Kronecker system of size {n * m} exceeds MAX_KRON_SIZE={MAX_KRON_SIZE}"
        )
    U = project_input(u, basis, system.n_inputs)
    R = _right_hand_side(system, U)
    alpha = system.alpha

    start = time.perf_counter()
    d_alpha = dense_operator(grid, alpha)
    big = np.kron(d_alpha.T, _dense(system.E)) - np.kron(np.eye(m), _dense(system.A))
    # vec(X) stacks columns of X: vec_x[j*n:(j+1)*n] = x_j = X[:, j]
    vec_x = np.linalg.solve(big, R.T.reshape(-1))
    X = vec_x.reshape(m, n).T
    if system.x0 is not None:
        X = X + system.x0[:, None]
    wall = time.perf_counter() - start

    return SimulationResult(
        basis, X, system, U, wall_time=wall,
        info={"method": "opm-kron", "size": n * m},
    )

"""Column-by-column solution of the OPM matrix equation.

The paper's key computational observation (end of sections III-A and
IV) is that the operational matrix is upper triangular, so the matrix
equation

.. math::  E X D = A X + R    \\qquad (R = B U)

never needs the ``nm x nm`` Kronecker solve of eq. (15)/(27).  Writing
``d_{ij}`` for the entries of ``D``, column ``j`` of the equation reads

.. math::

    (d_{jj} E - A)\\, x_j = r_j - E \\sum_{i<j} d_{ij}\\, x_i ,

a sequence of ``m`` shifted-pencil solves.  Three accumulation
strategies are available:

* ``toeplitz`` -- uniform grids: ``d_{ij} = c_{j-i}`` with ``c`` the
  first-row coefficients; tail accumulated by an O(n j) dot product per
  column, total ``O(n^beta m + n m^2)`` -- the paper's fractional cost;
* ``alternating`` -- first order (``alpha = 1``): the tail
  ``sum_{i<j} (-1)^{j-i} 2 x_i`` obeys the O(n) recurrence
  ``t_j = x_{j-1} - t_{j-1}``, total ``O(n^beta m)`` -- the paper's
  linear-system cost, on par with trapezoidal/Gear;
* ``general`` -- adaptive grids: arbitrary upper-triangular ``D`` with
  per-column diagonal, LU factorisations cached per distinct diagonal
  value.

Since the engine refactor the actual sweeps live in
:mod:`repro.engine.kernels` (where they additionally accept *batched*
right-hand sides) and the factorisation cache in
:mod:`repro.engine.backends`; this module keeps the historical
functional API as a thin wrapper.  A pencil factorisation cache keyed
by the shift ``sigma = d_{jj}`` is shared by all strategies; with a
constant step there is exactly one factorisation, matching the paper's
claim that OPM costs roughly one transient-analysis sweep.
"""

from __future__ import annotations

import numpy as np

from ..engine import kernels
from ..engine.backends import PencilBank, select_backend

__all__ = ["PencilCache", "solve_columns_toeplitz", "solve_columns_general"]


class PencilCache(PencilBank):
    """Factorisation cache for shifted pencils ``sigma E - A``.

    Parameters
    ----------
    E, A:
        System matrices (dense ndarray or scipy sparse).
    backend:
        Backend selection mode forwarded to
        :func:`~repro.engine.backends.select_backend`: ``'auto'``
        (default; sparse SuperLU for large sparse systems, dense LAPACK
        otherwise), ``'dense'``, or ``'sparse'``.

    Notes
    -----
    The cache key is the exact float value of ``sigma``; adaptive
    controllers that reuse a ladder of step sizes (h, h/2, 2h, ...) hit
    the cache on every revisited step size.
    """

    def __init__(self, E, A, *, backend: str = "auto") -> None:
        super().__init__(select_backend(E, A, mode=backend))


def solve_columns_toeplitz(
    E,
    A,
    R: np.ndarray,
    coeffs: np.ndarray,
    *,
    alternating_tail: bool = False,
    history: str = "direct",
    block_size: int | None = None,
    cache: PencilCache | None = None,
) -> tuple[np.ndarray, PencilCache]:
    """Solve ``E X T = A X + R`` for upper-triangular Toeplitz ``T``.

    Parameters
    ----------
    E, A:
        ``n x n`` system matrices (used to build the cache when none is
        supplied).
    R:
        Right-hand side ``n x m`` (``B U`` plus any initial-condition
        shift term), or batched ``(n, m, k)``.
    coeffs:
        First-row coefficients ``(c_0, ..., c_{m-1})`` of ``T`` -- e.g.
        :func:`repro.opmat.fractional.fractional_differentiation_coefficients`.
    alternating_tail:
        Activate the O(n)-per-column recurrence valid when the tail
        coefficients satisfy ``c_k = -c_{k-1}`` for ``k >= 2`` (the
        first-order pattern ``c = (2/h)(1, -2, 2, -2, ...)``).  The
        caller asserts the pattern; it is cheap to verify and is checked
        defensively.
    history:
        Tail-accumulation strategy when ``alternating_tail`` is off:
        ``'direct'`` -- the paper's O(n j) dot product per column
        (total ``O(n m^2)``); ``'fft'`` -- blocked online convolution:
        contributions of completed column blocks to future columns are
        applied with FFT segment convolutions, reducing the history
        cost to ``O(n m^{1.5} sqrt(log m))`` while producing the same
        solution to round-off.  An extension beyond the paper.
    block_size:
        Block length for ``history='fft'`` (default
        ``~sqrt(m log2 m)``).
    cache:
        Optional pre-existing :class:`PencilCache` (shared across
        windows by the adaptive controller, and across calls by
        :class:`~repro.engine.session.Simulator` sessions).

    Returns
    -------
    (X, cache):
        Solution coefficients (same shape as ``R``) and the
        factorisation cache (exposes the factorisation count for
        complexity reporting).
    """
    if cache is None:
        cache = PencilCache(E, A)
    X = kernels.sweep_toeplitz(
        cache,
        R,
        coeffs,
        alternating_tail=alternating_tail,
        history=history,
        block_size=block_size,
    )
    return X, cache


def solve_columns_general(
    E,
    A,
    R: np.ndarray,
    D: np.ndarray,
    *,
    cache: PencilCache | None = None,
) -> tuple[np.ndarray, PencilCache]:
    """Solve ``E X D = A X + R`` for a general upper-triangular ``D``.

    Used for adaptive grids where ``D`` is triangular but not Toeplitz
    (paper eqs. (18), (25)-(27)).  Factorisations are cached per
    distinct diagonal entry, so a grid built from a small ladder of step
    sizes costs only a few factorisations.  ``R`` may be batched
    (``(n, m, k)``) like the Toeplitz variant.

    Raises
    ------
    SolverError
        If ``D`` has nonzero entries below the diagonal (the column
        sweep would be invalid).
    """
    if cache is None:
        cache = PencilCache(E, A)
    X = kernels.sweep_general(cache, R, D)
    return X, cache

"""Column-by-column solution of the OPM matrix equation.

The paper's key computational observation (end of sections III-A and
IV) is that the operational matrix is upper triangular, so the matrix
equation

.. math::  E X D = A X + R    \\qquad (R = B U)

never needs the ``nm x nm`` Kronecker solve of eq. (15)/(27).  Writing
``d_{ij}`` for the entries of ``D``, column ``j`` of the equation reads

.. math::

    (d_{jj} E - A)\\, x_j = r_j - E \\sum_{i<j} d_{ij}\\, x_i ,

a sequence of ``m`` shifted-pencil solves.  This module implements that
sweep with three accumulation strategies:

* ``toeplitz`` -- uniform grids: ``d_{ij} = c_{j-i}`` with ``c`` the
  first-row coefficients; tail accumulated by an O(n j) dot product per
  column, total ``O(n^beta m + n m^2)`` -- the paper's fractional cost;
* ``alternating`` -- first order (``alpha = 1``): the tail
  ``sum_{i<j} (-1)^{j-i} 2 x_i`` obeys the O(n) recurrence
  ``t_j = x_{j-1} - t_{j-1}``, total ``O(n^beta m)`` -- the paper's
  linear-system cost, on par with trapezoidal/Gear;
* ``general`` -- adaptive grids: arbitrary upper-triangular ``D`` with
  per-column diagonal, LU factorisations cached per distinct diagonal
  value.

A pencil factorisation cache keyed by the shift ``sigma = d_{jj}`` is
shared by all strategies; with a constant step there is exactly one
factorisation, matching the paper's claim that OPM costs roughly one
transient-analysis sweep.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError

__all__ = ["PencilCache", "solve_columns_toeplitz", "solve_columns_general"]


class PencilCache:
    """Factorisation cache for shifted pencils ``sigma E - A``.

    Parameters
    ----------
    E, A:
        System matrices (dense ndarray or scipy sparse).
    prefer_sparse:
        Use sparse LU (:func:`scipy.sparse.linalg.splu`) when the inputs
        are sparse; dense LU otherwise.

    Notes
    -----
    The cache key is the exact float value of ``sigma``; adaptive
    controllers that reuse a ladder of step sizes (h, h/2, 2h, ...) hit
    the cache on every revisited step size.
    """

    def __init__(self, E, A) -> None:
        self._sparse = sp.issparse(E) or sp.issparse(A)
        if self._sparse:
            self._e = sp.csc_matrix(E)
            self._a = sp.csc_matrix(A)
        else:
            self._e = np.asarray(E, dtype=float)
            self._a = np.asarray(A, dtype=float)
        self._cache: dict[float, object] = {}

    @property
    def factorisations(self) -> int:
        """Number of distinct pencil factorisations performed."""
        return len(self._cache)

    def solve(self, sigma: float, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(sigma E - A) x = rhs``, factorising at most once per sigma."""
        solver = self._cache.get(sigma)
        if solver is None:
            pencil = sigma * self._e - self._a
            try:
                with warnings.catch_warnings():
                    # scipy only *warns* on an exactly singular LU; turn
                    # that into the typed error the finite-check would
                    # raise anyway
                    warnings.simplefilter("error", scipy.linalg.LinAlgWarning)
                    if self._sparse:
                        solver = spla.splu(pencil.tocsc())
                    else:
                        solver = scipy.linalg.lu_factor(pencil)
            except (
                RuntimeError,
                ValueError,
                scipy.linalg.LinAlgError,
                scipy.linalg.LinAlgWarning,
            ) as exc:
                raise SolverError(
                    f"shifted pencil sigma*E - A is singular at sigma={sigma:g}"
                ) from exc
            self._cache[sigma] = solver
        if self._sparse:
            out = self._cache[sigma].solve(rhs)
        else:
            out = scipy.linalg.lu_solve(self._cache[sigma], rhs)
        if not np.all(np.isfinite(out)):
            raise SolverError(
                f"pencil solve at sigma={sigma:g} produced non-finite values "
                "(singular or extremely ill-conditioned pencil)"
            )
        return out


def solve_columns_toeplitz(
    E,
    A,
    R: np.ndarray,
    coeffs: np.ndarray,
    *,
    alternating_tail: bool = False,
    history: str = "direct",
    block_size: int | None = None,
    cache: PencilCache | None = None,
) -> tuple[np.ndarray, PencilCache]:
    """Solve ``E X T = A X + R`` for upper-triangular Toeplitz ``T``.

    Parameters
    ----------
    E, A:
        ``n x n`` system matrices.
    R:
        Right-hand side ``n x m`` (``B U`` plus any initial-condition
        shift term).
    coeffs:
        First-row coefficients ``(c_0, ..., c_{m-1})`` of ``T`` -- e.g.
        :func:`repro.opmat.fractional.fractional_differentiation_coefficients`.
    alternating_tail:
        Activate the O(n)-per-column recurrence valid when the tail
        coefficients satisfy ``c_k = -c_{k-1}`` for ``k >= 2`` (the
        first-order pattern ``c = (2/h)(1, -2, 2, -2, ...)``).  The
        caller asserts the pattern; it is cheap to verify and is checked
        here defensively.
    history:
        Tail-accumulation strategy when ``alternating_tail`` is off:
        ``'direct'`` -- the paper's O(n j) dot product per column
        (total ``O(n m^2)``); ``'fft'`` -- blocked online convolution:
        contributions of completed column blocks to future columns are
        applied with FFT segment convolutions, reducing the history
        cost to ``O(n m^{1.5} sqrt(log m))`` while producing the same
        solution to round-off.  An extension beyond the paper.
    block_size:
        Block length for ``history='fft'`` (default
        ``~sqrt(m log2 m)``).
    cache:
        Optional pre-existing :class:`PencilCache` (shared across
        windows by the adaptive controller).

    Returns
    -------
    (X, cache):
        Solution coefficients ``n x m`` and the factorisation cache
        (exposes the factorisation count for complexity reporting).
    """
    coeffs = np.asarray(coeffs, dtype=float)
    m = coeffs.size
    n = R.shape[0]
    if R.shape != (n, m):
        raise SolverError(f"R must be (n, {m}), got {R.shape}")
    if history not in ("direct", "fft"):
        raise SolverError(f"history must be 'direct' or 'fft', got {history!r}")
    if alternating_tail and m > 2:
        tail = coeffs[1:]
        if not np.allclose(tail[1:], -tail[:-1], rtol=1e-12, atol=0.0):
            raise SolverError(
                "alternating_tail requested but coefficients do not alternate"
            )
    if cache is None:
        cache = PencilCache(E, A)
    sigma = float(coeffs[0])

    X = np.empty((n, m))
    if alternating_tail:
        # tail_j = sum_{i<j} c_{j-i} x_i = c_1 * t_j,
        # t_j = x_{j-1} - t_{j-1}  (paper's first-order pattern)
        c1 = coeffs[1] if m > 1 else 0.0
        t = np.zeros(n)
        for j in range(m):
            if j == 0:
                rhs = R[:, 0]
            else:
                t = X[:, j - 1] - t
                rhs = R[:, j] - c1 * (E @ t)
            X[:, j] = cache.solve(sigma, rhs)
    elif history == "fft" and m > 8:
        _solve_columns_fft(E, cache, sigma, R, coeffs, X, block_size)
    else:
        for j in range(m):
            if j == 0:
                rhs = R[:, 0]
            else:
                # s_j = sum_{k=1..j} c_k x_{j-k}
                s = X[:, :j] @ coeffs[j:0:-1]
                rhs = R[:, j] - (E @ s)
            X[:, j] = cache.solve(sigma, rhs)
    return X, cache


def _solve_columns_fft(
    E,
    cache: PencilCache,
    sigma: float,
    R: np.ndarray,
    coeffs: np.ndarray,
    X: np.ndarray,
    block_size: int | None,
) -> None:
    """Blocked online-convolution column sweep (``history='fft'``).

    Columns are processed in blocks of ``B``.  Before a block starts,
    the tail contributions of every *completed* block are added with an
    FFT segment convolution (all ``n`` state rows transformed at once);
    inside the block only the short within-block history remains, paid
    directly.  Each column's tail therefore equals
    ``sum_k c_k x_{j-k}`` exactly (up to FFT round-off), and the
    asymptotic history cost drops from ``O(n m^2)`` to
    ``O(n (m/B) m log B + n m B)``, minimised near
    ``B ~ sqrt(m log m)``.
    """
    n, m = R.shape
    if block_size is None:
        block_size = max(8, int(np.sqrt(m * max(np.log2(m), 1.0))))
    B = int(block_size)

    tail = np.zeros((n, m))  # accumulated cross-block contributions
    for start in range(0, m, B):
        end = min(start + B, m)
        # cross contributions of this block to ALL later columns are
        # added as soon as the block completes (see end of loop body);
        # here we only sweep within the block.
        for j in range(start, end):
            s = tail[:, j].copy()
            if j > start:
                s += X[:, start:j] @ coeffs[j - start : 0 : -1]
            rhs = R[:, j] - (E @ s) if j > 0 else R[:, 0]
            X[:, j] = cache.solve(sigma, rhs)
        if end >= m:
            break
        # FFT segment convolution: contribution of x_i (i in [start,end))
        # to s_j (j in [end, m)) is sum_i c_{j-i} x_i with lags
        # j - i in [1, m - 1 - start].
        length = end - start
        lags = coeffs[1 : m - start]  # c_1 ... c_{m-1-start}
        n_fft = int(2 ** np.ceil(np.log2(length + lags.size - 1)))
        fx = np.fft.rfft(X[:, start:end], n=n_fft, axis=1)
        fc = np.fft.rfft(lags, n=n_fft)
        conv = np.fft.irfft(fx * fc[None, :], n=n_fft, axis=1)
        # conv[:, t] = sum_i x_{start+i} c_{1+t-i} -> lands on column
        # j = start + 1 + t.  Columns inside this block (j < end) were
        # already served by the direct within-block sweep, so only
        # j >= end receives the convolution (t >= length - 1).
        n_cols = min(m - (start + 1), length + lags.size - 1)
        first_t = length - 1  # first t with start + 1 + t >= end
        tail[:, end : start + 1 + n_cols] += conv[:, first_t:n_cols]


def solve_columns_general(
    E,
    A,
    R: np.ndarray,
    D: np.ndarray,
    *,
    cache: PencilCache | None = None,
) -> tuple[np.ndarray, PencilCache]:
    """Solve ``E X D = A X + R`` for a general upper-triangular ``D``.

    Used for adaptive grids where ``D`` is triangular but not Toeplitz
    (paper eqs. (18), (25)-(27)).  Factorisations are cached per
    distinct diagonal entry, so a grid built from a small ladder of step
    sizes costs only a few factorisations.

    Raises
    ------
    SolverError
        If ``D`` has nonzero entries below the diagonal (the column
        sweep would be invalid).
    """
    D = np.asarray(D, dtype=float)
    m = D.shape[0]
    n = R.shape[0]
    if D.shape != (m, m):
        raise SolverError(f"D must be square, got {D.shape}")
    if R.shape != (n, m):
        raise SolverError(f"R must be (n, {m}), got {R.shape}")
    lower = D[np.tril_indices(m, -1)]
    if lower.size and np.max(np.abs(lower)) > 1e-10 * max(np.max(np.abs(D)), 1.0):
        raise SolverError("D must be upper triangular for the column sweep")
    if cache is None:
        cache = PencilCache(E, A)

    X = np.empty((n, m))
    for j in range(m):
        if j == 0:
            rhs = R[:, 0]
        else:
            s = X[:, :j] @ D[:j, j]
            rhs = R[:, j] - (E @ s)
        X[:, j] = cache.solve(float(D[j, j]), rhs)
    return X, cache

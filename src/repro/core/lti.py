"""System models: descriptor DAEs, fractional systems, multi-term systems.

Paper eq. (9) is the descriptor (DAE) state-space form

.. math::  E \\dot{x}(t) = A x(t) + B u(t), \\qquad y = C x + D_f u,

eq. (19) its fractional generalisation ``E d^alpha x/dt^alpha = A x + B u``,
and section V-B simulates a *second-order* model -- a special case of the
multi-term form ``sum_k M_k d^{alpha_k} x / dt^{alpha_k} = B u`` that OPM
handles by summing operational matrices.

``E`` and ``A`` may be dense numpy arrays or scipy sparse matrices; large
circuit models (power grids) should use sparse storage, which the OPM
solver exploits (the paper's complexity analysis assumes ``O(n)``
nonzeros).  ``B``, ``C``, ``D`` are small and always stored dense.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import check_fractional_order
from ..errors import ModelError

__all__ = [
    "DescriptorSystem",
    "FractionalDescriptorSystem",
    "MultiTermSystem",
    "SecondOrderSystem",
]


def _normalise_operator(matrix, name: str):
    """Return ``matrix`` as CSR (if sparse) or 2-D float ndarray (if dense)."""
    if sp.issparse(matrix):
        out = matrix.tocsr().astype(float)
    else:
        out = np.asarray(matrix, dtype=float)
        if out.ndim != 2:
            raise ModelError(f"{name} must be 2-D, got ndim={out.ndim}")
    if out.shape[0] != out.shape[1]:
        raise ModelError(f"{name} must be square, got shape {tuple(out.shape)}")
    return out


def _normalise_tall(matrix, rows: int, name: str) -> np.ndarray:
    """Return a dense 2-D array with ``rows`` rows (B/C/D handling)."""
    if sp.issparse(matrix):
        matrix = matrix.toarray()
    out = np.asarray(matrix, dtype=float)
    if out.ndim == 1:
        out = out.reshape(-1, 1)
    if out.ndim != 2 or out.shape[0] != rows:
        raise ModelError(f"{name} must have {rows} rows, got shape {tuple(out.shape)}")
    return out


class DescriptorSystem:
    """Linear time-invariant descriptor system ``E x' = A x + B u`` (eq. (9)).

    Parameters
    ----------
    E, A:
        Square ``n x n`` matrices (dense or scipy sparse).  ``E`` may be
        singular -- that is precisely the DAE case the paper targets
        with MNA models.
    B:
        Input matrix, ``n x p`` (a 1-D vector is treated as ``n x 1``).
    C:
        Output matrix ``q x n``; default identity (outputs = states).
    D:
        Feedthrough ``q x p``; default zero.
    x0:
        Initial state; default zero, the paper's convention.

    Examples
    --------
    >>> import numpy as np
    >>> sys1 = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)))
    >>> sys1.n_states, sys1.n_inputs, sys1.n_outputs
    (2, 1, 2)
    """

    #: Differentiation order; overridden by the fractional subclass.
    alpha: float = 1.0

    def __init__(self, E, A, B, C=None, D=None, x0=None) -> None:
        self.E = _normalise_operator(E, "E")
        self.A = _normalise_operator(A, "A")
        n = self.E.shape[0]
        if self.A.shape[0] != n:
            raise ModelError(
                f"E and A must have equal size, got {self.E.shape} and {self.A.shape}"
            )
        self.B = _normalise_tall(B, n, "B")

        if C is None:
            self.C = None  # identity, handled lazily to avoid n x n dense
        else:
            if sp.issparse(C):
                C = C.toarray()
            C = np.asarray(C, dtype=float)
            if C.ndim == 1:
                C = C.reshape(1, -1)
            if C.ndim != 2 or C.shape[1] != n:
                raise ModelError(f"C must have {n} columns, got shape {tuple(C.shape)}")
            self.C = C

        q = n if self.C is None else self.C.shape[0]
        if D is None:
            self.D = None
        else:
            self.D = _normalise_tall(D, q, "D")
            if self.D.shape[1] != self.B.shape[1]:
                raise ModelError(
                    f"D must have {self.B.shape[1]} columns, got {self.D.shape[1]}"
                )

        if x0 is None:
            self.x0 = None
        else:
            x0 = np.asarray(x0, dtype=float).reshape(-1)
            if x0.size != n:
                raise ModelError(f"x0 must have length {n}, got {x0.size}")
            self.x0 = None if not np.any(x0) else x0

    # ------------------------------------------------------------------
    # shape properties
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.E.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.B.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.n_states if self.C is None else self.C.shape[0]

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.E) or sp.issparse(self.A)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_state_space(cls, A, B, C=None, D=None, x0=None) -> "DescriptorSystem":
        """Ordinary ODE system ``x' = A x + B u`` (``E = I``)."""
        A = _normalise_operator(A, "A")
        n = A.shape[0]
        E = sp.identity(n, format="csr") if sp.issparse(A) else np.eye(n)
        return cls(E, A, B, C=C, D=D, x0=x0)

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------
    def output_coefficients(self, X: np.ndarray, U: np.ndarray) -> np.ndarray:
        """Map state/input coefficient matrices to output coefficients.

        ``Y = C X + D U`` column-wise; identity ``C`` and zero ``D`` are
        handled without materialising them.
        """
        Y = X if self.C is None else self.C @ X
        if self.D is not None:
            Y = Y + self.D @ U
        return Y

    def shifted_input_offset(self) -> np.ndarray | None:
        """Constant forcing term ``A x0`` used by the zero-IC shift.

        OPM assumes a zero initial state; a nonzero ``x0`` is handled by
        simulating ``z = x - x0`` which obeys
        ``E d^alpha z = A z + (B u + A x0)`` (valid for ``alpha = 1`` and,
        under the Caputo interpretation, for ``0 < alpha <= 1``).
        Returns ``None`` when ``x0`` is zero.
        """
        if self.x0 is None:
            return None
        return np.asarray(self.A @ self.x0).reshape(-1)

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"{type(self).__name__}(n={self.n_states}, p={self.n_inputs}, "
            f"q={self.n_outputs}, alpha={self.alpha:g}, {kind})"
        )


class FractionalDescriptorSystem(DescriptorSystem):
    """Fractional descriptor system ``E d^alpha x/dt^alpha = A x + B u`` (eq. (19)).

    ``alpha`` may be any positive real; integer values recover ordinary
    (high-order) systems.  Zero initial conditions are assumed for
    ``alpha > 1`` (the paper's setting); for ``0 < alpha <= 1`` a nonzero
    ``x0`` is interpreted in the Caputo sense and handled by the constant
    shift (see :meth:`DescriptorSystem.shifted_input_offset`).

    Examples
    --------
    >>> import numpy as np
    >>> sys_f = FractionalDescriptorSystem(0.5, np.eye(1), -np.eye(1), [[1.0]])
    >>> sys_f.alpha
    0.5
    """

    def __init__(self, alpha: float, E, A, B, C=None, D=None, x0=None) -> None:
        alpha = check_fractional_order(alpha)
        super().__init__(E, A, B, C=C, D=D, x0=x0)
        self.alpha = alpha
        if self.x0 is not None and alpha > 1.0:
            raise ModelError(
                "nonzero initial conditions require alpha <= 1 "
                "(higher orders would need derivative initial data)"
            )


class MultiTermSystem:
    """Multi-term (fractional or integer) system
    ``sum_k M_k d^{alpha_k} x / dt^{alpha_k} = B u``, ``y = C x + D u``.

    The paper's high-order example (section V-B) is the two-plus-one-term
    integer case ``M2 x'' + M1 x' + M0 x = B u``; OPM simulates the
    general form by replacing each ``d^{alpha_k}/dt^{alpha_k}`` with the
    operational matrix ``D^{alpha_k}`` and summing:
    ``sum_k M_k X D^{alpha_k} = B U``.

    Parameters
    ----------
    terms:
        Iterable of ``(alpha_k, M_k)`` pairs; ``alpha_k >= 0`` (the
        ``alpha = 0`` term is the algebraic part), each ``M_k`` a square
        ``n x n`` matrix (dense or sparse).  Orders must be distinct.
    B, C, D:
        As in :class:`DescriptorSystem`.  Zero initial conditions are
        assumed (the multi-term shift would require derivative data).

    Examples
    --------
    >>> import numpy as np
    >>> msys = MultiTermSystem(
    ...     [(2.0, np.eye(1)), (1.0, 0.2 * np.eye(1)), (0.0, np.eye(1))],
    ...     [[1.0]])
    >>> msys.max_order
    2.0
    """

    def __init__(self, terms, B, C=None, D=None) -> None:
        term_list = []
        for item in terms:
            try:
                alpha_k, matrix = item
            except (TypeError, ValueError) as exc:
                raise ModelError(
                    "terms must be an iterable of (order, matrix) pairs"
                ) from exc
            if not np.isscalar(alpha_k) and not isinstance(alpha_k, (int, float)):
                raise ModelError(
                    "terms must be (order, matrix) pairs with a scalar order, "
                    f"got order of type {type(alpha_k).__name__}"
                )
            alpha_k = check_fractional_order(alpha_k, allow_zero=True)
            term_list.append((alpha_k, _normalise_operator(matrix, f"M[{alpha_k:g}]")))
        if not term_list:
            raise ModelError("terms must contain at least one (order, matrix) pair")
        orders = [alpha_k for alpha_k, _ in term_list]
        if len(set(orders)) != len(orders):
            raise ModelError(f"term orders must be distinct, got {orders}")
        n = term_list[0][1].shape[0]
        for alpha_k, matrix in term_list:
            if matrix.shape[0] != n:
                raise ModelError(
                    f"all term matrices must be {n}x{n}, got {matrix.shape} "
                    f"for order {alpha_k:g}"
                )
        # Sort by descending order: leading term first.
        term_list.sort(key=lambda pair: -pair[0])
        self.terms = term_list
        self.B = _normalise_tall(B, n, "B")

        if C is None:
            self.C = None
        else:
            if sp.issparse(C):
                C = C.toarray()
            C = np.asarray(C, dtype=float)
            if C.ndim == 1:
                C = C.reshape(1, -1)
            if C.ndim != 2 or C.shape[1] != n:
                raise ModelError(f"C must have {n} columns, got shape {tuple(C.shape)}")
            self.C = C
        q = n if self.C is None else self.C.shape[0]
        self.D = None if D is None else _normalise_tall(D, q, "D")
        if self.D is not None and self.D.shape[1] != self.B.shape[1]:
            raise ModelError(f"D must have {self.B.shape[1]} columns, got {self.D.shape[1]}")

    @property
    def n_states(self) -> int:
        return self.terms[0][1].shape[0]

    @property
    def n_inputs(self) -> int:
        return self.B.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.n_states if self.C is None else self.C.shape[0]

    @property
    def max_order(self) -> float:
        return self.terms[0][0]

    @property
    def is_sparse(self) -> bool:
        return any(sp.issparse(matrix) for _, matrix in self.terms)

    def output_coefficients(self, X: np.ndarray, U: np.ndarray) -> np.ndarray:
        """``Y = C X + D U`` (identity/zero defaults not materialised)."""
        Y = X if self.C is None else self.C @ X
        if self.D is not None:
            Y = Y + self.D @ U
        return Y

    def to_first_order(self) -> DescriptorSystem:
        """Companion linearisation of an *integer-order* multi-term system.

        ``M_K x^(K) + ... + M_1 x' + M_0 x = B u`` becomes the descriptor
        pair on the stacked state ``(x, x', ..., x^(K-1))``:

        ``E = blkdiag(I, ..., I, M_K)``, with the last block row carrying
        ``-M_0 ... -M_{K-1}``.  This is the standard MNA-style reduction
        the paper compares against in section V-B (where treating
        inductor currents as states converts the second-order NA model
        into a first-order DAE of larger size).

        Raises
        ------
        ModelError
            If any order is non-integer.
        """
        orders = [alpha_k for alpha_k, _ in self.terms]
        if any(abs(a - round(a)) > 1e-12 for a in orders):
            raise ModelError(
                f"companion form requires integer orders, got {orders}"
            )
        top = int(round(self.max_order))
        if top < 1:
            raise ModelError("companion form requires maximum order >= 1")
        n = self.n_states
        coeff = {int(round(a)): matrix for a, matrix in self.terms}
        sparse_mode = self.is_sparse
        eye = sp.identity(n, format="csr") if sparse_mode else np.eye(n)
        zero = sp.csr_matrix((n, n)) if sparse_mode else np.zeros((n, n))

        def blk(rows):
            if sparse_mode:
                return sp.bmat(rows, format="csr")
            return np.block(rows)

        size = top * n
        # E = diag(I, ..., I, M_top)
        e_blocks = [[eye if i == j else zero for j in range(top)] for i in range(top)]
        e_blocks[top - 1][top - 1] = coeff[top]
        # A: super-identity chain; last block row = -M_0 ... -M_{top-1}
        a_blocks = [[zero for _ in range(top)] for _ in range(top)]
        for i in range(top - 1):
            a_blocks[i][i + 1] = eye
        for j in range(top):
            if j in coeff:
                a_blocks[top - 1][j] = -coeff[j]
        E = blk(e_blocks)
        A = blk(a_blocks)
        B_full = np.zeros((size, self.n_inputs))
        B_full[(top - 1) * n :, :] = self.B
        C_full = np.zeros((self.n_outputs, size))
        if self.C is None:
            C_full[:, :n] = np.eye(n)
        else:
            C_full[:, :n] = self.C
        return DescriptorSystem(E, A, B_full, C=C_full, D=self.D)

    def __repr__(self) -> str:
        orders = ", ".join(f"{alpha_k:g}" for alpha_k, _ in self.terms)
        return (
            f"MultiTermSystem(n={self.n_states}, orders=[{orders}], "
            f"p={self.n_inputs}, q={self.n_outputs})"
        )


class SecondOrderSystem(MultiTermSystem):
    """Second-order system ``M x'' + Cd x' + K x = B u`` (section V-B NA model).

    Convenience wrapper over :class:`MultiTermSystem` with the
    mass/damping/stiffness naming used for nodal-analysis circuit models
    (``M`` capacitive, ``Cd`` conductive, ``K`` inductive).

    Examples
    --------
    >>> import numpy as np
    >>> so = SecondOrderSystem(np.eye(1), 0.1 * np.eye(1), np.eye(1), [[1.0]])
    >>> so.max_order
    2.0
    """

    def __init__(self, M, Cd, K, B, C=None, D=None) -> None:
        super().__init__([(2.0, M), (1.0, Cd), (0.0, K)], B, C=C, D=D)

    @property
    def M(self):
        return self.terms[0][1]

    @property
    def Cd(self):
        return self.terms[1][1]

    @property
    def K(self):
        return self.terms[2][1]

"""Integral-formulation OPM solver (basis-agnostic).

The differential form ``E X D = A X + B U`` needs an invertible
differentiation operational matrix, which only the piecewise-constant
families (block pulse, Walsh, Haar) and the Laguerre functions possess.
The classical operational-matrix literature (the paper's refs [1]-[6])
instead applies the *integration* matrix: integrating
``E d^alpha x = A x + B u`` once (fractionally) gives, with
``Z`` the coefficients of ``d^alpha x`` and ``F`` the (fractional)
integration matrix,

.. math::

    X = Z F + x_0 c_1^T, \\qquad
    E Z = A Z F + (A x_0) c_1^T + B U,

where ``c_1`` is the coefficient vector of the constant function 1.
The unknown ``Z`` solves a Sylvester-type equation that is

* triangular for block pulse / Laguerre (solved column by column with
  a cached pencil factorisation of ``E - F_jj A``),
* dense-small for polynomial spectral bases, in which case this
  function delegates to the engine's
  :class:`~repro.engine.session.Simulator` spectral plan -- the same
  Kronecker integral-form solve, with sparse support and a cached
  factorisation (one implementation of that math, not two), and
* dense-small for Walsh/Haar (conjugated ``F``), solved here in
  Kronecker form on purpose: the engine's pwconst plan is the
  *differential* formulation, and this function is the integral-form
  ablation axis.

This gives the paper's "other basis functions" a working solver and an
ablation axis: Tustin-inverse vs Riemann-Liouville integration matrices
on block pulses (``construction=`` parameter).
"""

from __future__ import annotations

import time

import numpy as np

from ..basis.base import BasisSet
from ..basis.block_pulse import BlockPulseBasis
from ..basis.pwconst import PiecewiseConstantBasis
from ..errors import SolverError
from .column_solver import PencilCache
from .lti import DescriptorSystem
from .result import SimulationResult

__all__ = ["simulate_opm_integral"]

#: Refuse dense Kronecker fallbacks larger than this (rows).
MAX_DENSE_SIZE = 6000


def _integration_matrix(basis: BasisSet, alpha: float, construction: str) -> np.ndarray:
    if alpha == 1.0:
        if isinstance(basis, BlockPulseBasis) and construction == "rl":
            # RL and the classical matrix coincide at alpha = 1.
            return basis.integration_matrix()
        return basis.integration_matrix()
    if isinstance(basis, BlockPulseBasis):
        return basis.fractional_integration_matrix(alpha, construction=construction)
    return basis.fractional_integration_matrix(alpha)


def _is_upper_triangular(matrix: np.ndarray) -> bool:
    lower = matrix[np.tril_indices(matrix.shape[0], -1)]
    if lower.size == 0:
        return True
    return float(np.max(np.abs(lower))) <= 1e-12 * max(float(np.max(np.abs(matrix))), 1.0)


def simulate_opm_integral(
    system: DescriptorSystem,
    u,
    basis: BasisSet,
    *,
    construction: str = "tustin",
) -> SimulationResult:
    """Simulate ``E d^alpha x = A x + B u`` in integral form on any basis.

    Parameters
    ----------
    system:
        :class:`DescriptorSystem` or
        :class:`~repro.core.lti.FractionalDescriptorSystem`.  Nonzero
        ``x0`` is supported for ``alpha <= 1`` via the constant-shift
        terms shown in the module docstring.
    u:
        Input specification (see
        :func:`repro.core.opm_solver.project_input`).
    basis:
        Any :class:`BasisSet` providing an integration matrix (all the
        families in :mod:`repro.basis`).
    construction:
        For block-pulse bases, the fractional integration matrix to
        use: ``'tustin'`` (inverse of the paper's ``D^alpha``) or
        ``'rl'`` (classical Riemann-Liouville projection).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.basis import LegendreBasis
    >>> from repro.core.lti import DescriptorSystem
    >>> sys1 = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_opm_integral(sys1, 1.0, LegendreBasis(2.0, 12))
    >>> bool(abs(res.states([1.0])[0, 0] - (1 - np.exp(-1.0))) < 1e-6)
    True
    """
    from .opm_solver import project_input

    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    if not isinstance(basis, BasisSet):
        raise TypeError(f"basis must be a BasisSet, got {type(basis).__name__}")

    start = time.perf_counter()
    F = _integration_matrix(basis, system.alpha, construction)

    if not _is_upper_triangular(F) and not isinstance(basis, PiecewiseConstantBasis):
        # polynomial spectral basis: one implementation of the Kronecker
        # integral-form math lives in the engine's spectral plan
        from ..engine.session import Simulator

        result = Simulator(system, basis).run(u)
        result.wall_time = time.perf_counter() - start
        result.info["method"] = "opm-integral[spectral]"
        return result

    m = basis.size
    n = system.n_states
    U = project_input(u, basis, system.n_inputs)
    R = system.B @ U

    # constant-function coefficients (exact for every basis here)
    ones_coeffs = basis.project(lambda t: np.ones_like(t))
    offset = system.shifted_input_offset()
    if offset is not None:
        R = R + np.outer(offset, ones_coeffs)

    if _is_upper_triangular(F):
        # Column sweep: (E - F_jj A) z_j = r_j + A sum_{i<j} F_ij z_i.
        # PencilCache solves sigma*E' - A'; with E' = -A, A' = -E the
        # pencil at sigma = F_jj is exactly E - F_jj A.
        A_mat, E_mat = system.A, system.E
        cache = PencilCache(-1.0 * A_mat, -1.0 * E_mat)
        Z = np.empty((n, m))
        for j in range(m):
            rhs = R[:, j].copy()
            if j > 0:
                rhs = rhs + A_mat @ (Z[:, :j] @ F[:j, j])
            Z[:, j] = cache.solve(float(F[j, j]), rhs)
        factorisations = cache.factorisations
        method = f"opm-integral[{construction}]"
    else:
        # Walsh/Haar: the conjugated F is dense, so solve the (small)
        # Kronecker form directly -- this IS the integral-form ablation
        # in the transformed basis, deliberately not delegated to the
        # engine's (differential-form) pwconst plan
        if n * m > MAX_DENSE_SIZE:
            raise SolverError(
                f"dense integral-form system of size {n * m} exceeds "
                f"MAX_DENSE_SIZE={MAX_DENSE_SIZE}; use a block-pulse basis"
            )
        import scipy.sparse as sp

        E_d = system.E.toarray() if sp.issparse(system.E) else np.asarray(system.E)
        A_d = system.A.toarray() if sp.issparse(system.A) else np.asarray(system.A)
        big = np.kron(np.eye(m), E_d) - np.kron(F.T, A_d)
        vec_z = np.linalg.solve(big, R.T.reshape(-1))
        Z = vec_z.reshape(m, n).T
        factorisations = 1
        method = "opm-integral[dense]"

    X = Z @ F
    if system.x0 is not None:
        X = X + np.outer(system.x0, ones_coeffs)
    wall = time.perf_counter() - start

    return SimulationResult(
        basis,
        X,
        system,
        U,
        wall_time=wall,
        info={
            "method": method,
            "alpha": system.alpha,
            "factorisations": factorisations,
        },
    )

"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError` raised by numpy.

The hierarchy mirrors the package layout:

* :class:`BasisError` -- invalid basis construction or projection
  (``repro.basis``).
* :class:`OperationalMatrixError` -- invalid operational-matrix requests
  (``repro.opmat``), e.g. a non-positive fractional order.
* :class:`ModelError` -- ill-formed system models (``repro.core.lti``,
  ``repro.circuits``), e.g. dimension mismatches or a singular pencil.
* :class:`SolverError` -- runtime failures inside a solver
  (``repro.core``/``repro.baselines``), e.g. a singular shifted matrix
  or an adaptive-step controller that cannot meet its tolerance.
* :class:`SingularPencilError` -- the MNA pencil ``sigma E - A`` is
  singular (``repro.engine.backends``), typically a structural circuit
  defect the graph lint can name (floating node, no ground reference).
* :class:`NetlistError` -- malformed circuit descriptions
  (``repro.circuits.netlist``).
* :class:`EnsembleError` -- invalid ensemble specifications or failed
  ensemble members (``repro.engine.executor``).
* :class:`ServiceError` -- malformed simulation-service requests or
  daemon failures (``repro.engine.service``).
* :class:`MemoryCompressionError` -- a sum-of-exponentials memory fit
  missed its certified tolerance and the plan forbids falling back to
  exact memory (``repro.fractional.soe``).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BasisError",
    "OperationalMatrixError",
    "ModelError",
    "SolverError",
    "SingularPencilError",
    "NetlistError",
    "ConvergenceError",
    "EnsembleError",
    "ServiceError",
    "MemoryCompressionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class BasisError(ReproError):
    """Raised for invalid basis-set construction or use.

    Examples: a non-positive number of terms, a Walsh/Haar basis whose
    size is not a power of two, or projecting onto a mismatched grid.
    """


class OperationalMatrixError(ReproError):
    """Raised when an operational matrix cannot be constructed.

    Examples: fractional order ``alpha <= 0`` where a strictly positive
    order is required, or an adaptive grid with repeated steps passed to
    the eigendecomposition-based fractional power.
    """


class ModelError(ReproError):
    """Raised for structurally invalid system models.

    Examples: ``E``/``A`` shape mismatch, a non-square descriptor pair,
    input matrix with the wrong number of rows, or a high-order model
    whose coefficient list is empty.
    """


class SolverError(ReproError):
    """Raised when a simulation algorithm fails at run time.

    Examples: the shifted pencil ``d_jj E - A`` is singular, the FFT
    baseline is given a DC-singular model, or a baseline scheme receives
    an unsupported step specification.
    """


class SingularPencilError(SolverError):
    """Raised when a shifted MNA pencil ``sigma E - A`` cannot be factorised.

    A singular pencil is almost always a *structural* circuit defect --
    a floating node, a component with no conductive path to ground, or
    a deck with no ground reference at all -- rather than a numerical
    accident.  The message therefore points at the circuit-graph lint
    (:meth:`repro.circuits.graph.CircuitGraph.lint`, or the CLI's
    ``--lint`` flag), which names the offending nodes and elements
    instead of reporting a bare linear-algebra failure.
    """


class ConvergenceError(SolverError):
    """Raised when an iterative procedure fails to reach its tolerance.

    Used by the adaptive-step controller when the step size underflows
    ``min_step`` and by the Mittag-Leffler evaluator when neither the
    series nor the asymptotic regime applies at the requested precision.
    """


class NetlistError(ReproError):
    """Raised for malformed netlists.

    Examples: two-terminal element with both terminals on the same node,
    a non-positive element value, an unknown node name referenced by an
    element, or a card with the wrong number of fields.
    """


class EnsembleError(ReproError):
    """Raised for invalid ensemble specifications or failed members.

    When raised by a :class:`~repro.engine.executor.ParallelExecutor`
    run, :attr:`member_indices` lists the failing ensemble members (and
    :attr:`member_index` the first of them), ``__cause__`` chains the
    original worker exception, and :attr:`chunks` carries the chunks
    that completed successfully -- a failing member never discards its
    siblings' finished work.
    """

    def __init__(
        self,
        message: str,
        *,
        member_indices: tuple[int, ...] = (),
        chunks=None,
    ) -> None:
        super().__init__(message)
        self.member_indices = tuple(member_indices)
        self.chunks = chunks

    @property
    def member_index(self) -> int | None:
        """Index of the first failing ensemble member (or ``None``)."""
        return self.member_indices[0] if self.member_indices else None


class ServiceError(ReproError):
    """Raised for malformed simulation-service requests or daemon failures.

    Examples: a request naming neither a netlist nor a system spec, an
    unknown operation, a malformed system matrix payload, or a client
    protocol violation (``repro.engine.service``).
    """


class MemoryCompressionError(SolverError):
    """Raised when a certified memory compression cannot be honoured.

    The sum-of-exponentials fitter (``repro.fractional.soe``) always
    computes an exact approximation bound after fitting; consumers fall
    back to exact memory when the bound exceeds the requested ``rtol``.
    A plan with ``fallback=False`` demands the compression instead, and
    a miss raises this error (carrying the achieved bound in the
    message) rather than silently paying the quadratic exact tail.
    """

"""Canonical workload configurations for the paper's experiments.

Both the test suite (``tests/integration/test_paper_claims.py``) and the
benchmark harness (``benchmarks/``) run the *same* workloads; this
module pins their parameters in one place so EXPERIMENTS.md numbers are
traceable.

Table I (section V-A)
    7-state, 2-port, ``alpha = 1/2`` fractional transmission line
    simulated over ``[0, 2.7 ns)`` with ``m = 8`` block pulses; compared
    against the FFT method at 8 and 100 sampling points.  The drive is a
    smooth current pulse into port 1 that settles within the window
    (the FFT method periodises the waveform, so a non-settling input
    would measure the window artifact rather than the method).

Table II (section V-B)
    3-D RLC power grid; OPM on the second-order NA model, baselines on
    the first-order MNA DAE.  Element values are chosen so the grid's
    natural timescales (via-inductance resonance, mesh RC) are resolved
    by the paper's ``h = 10 ps`` base step -- the regime in which the
    paper's error ordering (trapezoidal ~ Gear << backward Euler, all
    improving with ``h``) is observable.  The default size is CI-scale
    (50 NA unknowns); pass larger ``nx, ny, nz`` for paper-scale runs
    (75 K needs roughly ``160 x 160 x 3``).
"""

from __future__ import annotations

import numpy as np

from .circuits.power_grid import power_grid_models
from .circuits.sources import RaisedCosinePulse
from .circuits.transmission_line import fractional_line_model

__all__ = ["table1_workload", "table2_workload"]

#: Table I horizon (the paper's 2.7 ns) and block-pulse count.
TABLE1_T = 2.7e-9
TABLE1_M = 8
#: Table I FFT sampling points (the paper's FFT-1 and FFT-2).
TABLE1_FFT_POINTS = (8, 100)

#: Table II horizon and base step (the paper's h = 10 ps rows).
TABLE2_T = 1.0e-9
TABLE2_BASE_STEPS = 100  # h = 10 ps
TABLE2_STEP_VARIANTS = {"10 ps": 100, "5 ps": 200, "1 ps": 1000}


def table1_workload(n_sections: int = 7):
    """Model, input, and comparison grid for the Table I experiment.

    Returns a dict with the fractional line ``model``, vectorised input
    ``u`` (pulse into port 1, port 2 quiet), horizon ``t_end``, OPM
    block count ``m``, FFT sample counts, and the comparison times.

    Protocol note: waveforms are compared at the OPM grid *midpoints*
    (``sample_times``), where block-pulse coefficients represent the
    trajectory to second order -- comparing on a dense grid instead
    would measure the piecewise-constant staircase of the m = 8
    expansion rather than the methods.  The line's per-section
    pseudo-capacitance is reduced relative to the library default so the
    response roughly tracks the input within the window, the regime in
    which the FFT method's sample count (and not its periodisation
    artifact) dominates its error -- matching the paper's FFT-1 vs
    FFT-2 separation direction; see EXPERIMENTS.md for the residual
    quantitative gap.
    """
    model = fractional_line_model(n_sections=n_sections, q_section=2e-8)
    pulse = RaisedCosinePulse(level=1e-3, width=1.2e-9)

    def u(times):
        times = np.atleast_1d(times)
        return np.vstack([pulse(times), np.zeros_like(times)])

    h = TABLE1_T / TABLE1_M
    sample_times = (np.arange(TABLE1_M) + 0.5) * h
    return {
        "model": model,
        "u": u,
        "t_end": TABLE1_T,
        "m": TABLE1_M,
        "fft_points": TABLE1_FFT_POINTS,
        "sample_times": sample_times,
    }


def table2_workload(nx: int = 5, ny: int = 5, nz: int = 2, *, seed: int = 2012):
    """Power-grid models and input for the Table II experiment.

    Element values place the grid's resonances at the 0.1-1 ns scale so
    the ``h = 10 ps`` base step resolves them (see module docstring);
    the load is a smooth 0.6 ns current pulse.

    Returns the :func:`~repro.circuits.power_grid.power_grid_models`
    bundle extended with ``t_end``, the step-variant map, and the common
    comparison times.
    """
    bundle = power_grid_models(
        nx,
        ny,
        nz,
        via_pitch=2,
        pad_pitch=4,
        load_pitch=2,
        r_wire=0.2,
        c_node=1e-12,
        l_via=1e-8,
        load_waveform=RaisedCosinePulse(level=1.0, width=0.6e-9),
        load_scale=1e-3,
        seed=seed,
    )
    bundle["t_end"] = TABLE2_T
    bundle["step_variants"] = dict(TABLE2_STEP_VARIANTS)
    bundle["base_steps"] = TABLE2_BASE_STEPS
    bundle["sample_times"] = np.linspace(0.02e-9, 0.98e-9, 49)
    return bundle

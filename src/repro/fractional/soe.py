"""Sum-of-exponentials (SOE) compression of fractional memory kernels.

Every fractional solve in this package is a discrete convolution with a
power-law kernel: the windowed march GEMMs the *entire* solved history
against the block-pulse Toeplitz coefficients
(:class:`~repro.fractional.history.HistoryTail`), the GL stepper dots
every past state against the binomial weights, and the spectral march
convolves per-lag Riemann-Liouville operators over all previous
windows.  A horizon of ``W`` windows therefore costs ``O(W^2)``.

This module removes that quadratic wall the way the rational-
approximation literature treats ``s^alpha`` (Oustaloup / CFE filters),
applied at the *memory* level: the smooth far part of the kernel is
fitted by a short exponential mixture

.. math::  w_d \\approx \\sum_p c_p \\lambda_p^d
           \\qquad (|\\lambda_p| < 1),

so the contribution of all sufficiently old history collapses into one
``(n, P)`` matrix of *mode states* updated by a geometric (AXPY-style)
recurrence -- constant work per window/step, linear work overall.

The compression is **certified, not trusted** (the same contract PR 6's
model-order reduction established): after every fit the *exact*
approximation error is evaluated over the full compressed lag range and
summarised as the relative ``l1`` bound

.. math::  \\mathrm{bound} = \\frac{\\sum_d |w_d - \\hat w_d|}
                                   {\\sum_d |w_d|},

which bounds the induced ``l_\\infty \\to l_\\infty`` operator error of
the compressed memory term relative to the exact one.  A fit whose
bound exceeds the requested ``rtol`` is *not used*: consumers fall back
to exact memory (recording why), or raise
:class:`~repro.errors.MemoryCompressionError` when the plan says
``fallback=False``.

Two kernel flavours are supported:

* :func:`fit_discrete_kernel` -- lag-indexed coefficients (GL weights,
  block-pulse Tustin/Toeplitz coefficients).  The dictionary carries
  decay rates of *both signs* (``lambda = +-exp(-theta)``) because the
  Tustin tail mixes a monotone ``d^{-1-alpha}`` branch with an
  alternating ``(-1)^d d^{alpha-1}`` branch.
* :func:`fit_continuous_kernel` -- the Riemann-Liouville kernel
  ``t^{alpha-1}/Gamma(alpha)`` on a window-scaled interval
  ``[W, K W]``, used by the spectral (hybrid-function) march, where the
  separability ``e^{-theta(tau + lW - sigma)} = mu^l e^{-theta tau}
  e^{theta sigma}`` turns every lag operator into a rank-one update.

Fits are cached process-wide (content-keyed, LRU) so repeated marches
on the same horizon re-fit nothing.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MemoryCompressionError, SolverError
from .history import history_weights

__all__ = [
    "SoePlan",
    "SoeFit",
    "SoeTail",
    "fit_discrete_kernel",
    "fit_continuous_kernel",
    "resolve_memory",
    "clear_fit_cache",
    "fit_cache_stats",
]

#: Default certification tolerance for ``memory='soe'``.
DEFAULT_MEMORY_RTOL = 1e-10

#: Rate-ladder densities (dictionary nodes per decade of decay rates);
#: the fitter escalates through these until the certificate meets the
#: requested tolerance or the mode cap is hit.
_NODE_DENSITIES = (3, 4, 6, 8, 10, 14)

#: Fastest dimensionless decay rate in the dictionary:
#: ``exp(-_THETA_MAX)`` is below double precision, so faster modes
#: cannot contribute anywhere in the fitted range.
_THETA_MAX = 36.0

#: Largest number of least-squares rows; longer lag ranges are fitted
#: on a log-spaced subsample (the certificate is still evaluated on
#: every lag).
_MAX_FIT_ROWS = 3000


@dataclass(frozen=True)
class SoePlan:
    """User-facing memory-compression settings (``memory=`` knob).

    Parameters
    ----------
    rtol:
        Certification tolerance: a fit is only used when its exact
        relative ``l1`` bound is ``<= rtol``.
    max_modes:
        Cap on the exponential dictionary size (both signs counted).
    exact_lags:
        Width of the exact near window kept by *stepper* consumers (the
        GL scheme); the windowed march keeps its own window width
        exact, so this knob does not affect it.
    fallback:
        ``True`` (default): an uncertified fit silently falls back to
        exact memory, recording the reason.  ``False``: raise
        :class:`~repro.errors.MemoryCompressionError` instead.
    """

    rtol: float = DEFAULT_MEMORY_RTOL
    max_modes: int = 192
    exact_lags: int = 64
    fallback: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < float(self.rtol) < 1.0):
            raise SolverError(
                f"memory rtol must be in (0, 1), got {self.rtol!r}"
            )
        if int(self.max_modes) < 2:
            raise SolverError(
                f"max_modes must be >= 2, got {self.max_modes!r}"
            )
        if int(self.exact_lags) < 1:
            raise SolverError(
                f"exact_lags must be >= 1, got {self.exact_lags!r}"
            )

    def fingerprint(self) -> tuple:
        """Content key (joins the session fingerprint: SOE memory
        changes the arithmetic, so compressed sessions must never unify
        with exact ones in a fingerprint-keyed cache)."""
        return (
            "soe",
            float(self.rtol),
            int(self.max_modes),
            int(self.exact_lags),
            bool(self.fallback),
        )


def resolve_memory(memory, memory_rtol=None) -> Optional[SoePlan]:
    """Normalise the ``memory=`` knob to ``None`` (exact) or a plan.

    Accepts ``None`` / ``'exact'`` (exact memory), ``'soe'`` (default
    plan, tolerance overridable through ``memory_rtol``), or a ready
    :class:`SoePlan` (which ``memory_rtol`` must not contradict).
    """
    if memory is None:
        plan = None
    elif isinstance(memory, SoePlan):
        plan = memory
    elif isinstance(memory, str):
        name = memory.strip().lower()
        if name in ("", "exact", "off", "none", "false"):
            plan = None
        elif name == "soe":
            plan = SoePlan()
        else:
            raise SolverError(
                f"memory must be 'exact', 'soe', or an SoePlan, got {memory!r}"
            )
    else:
        raise SolverError(
            f"memory must be 'exact', 'soe', or an SoePlan, got "
            f"{type(memory).__name__}"
        )
    if memory_rtol is not None:
        rtol = float(memory_rtol)
        if plan is None:
            raise SolverError(
                "memory_rtol is only meaningful with memory='soe' "
                "(exact memory has no approximation tolerance)"
            )
        if rtol != plan.rtol:
            plan = SoePlan(
                rtol=rtol,
                max_modes=plan.max_modes,
                exact_lags=plan.exact_lags,
                fallback=plan.fallback,
            )
    return plan


@dataclass(frozen=True)
class SoeFit:
    """A fitted exponential mixture with its certified error bound.

    ``weights[p] * rates[p]**d`` summed over ``p`` approximates the
    kernel at lag ``d`` for every ``d`` in ``[lag_start, lag_stop]``
    (discrete fits) or ``weights[p] * exp(-rates[p] * t)`` approximates
    the continuous kernel on ``[t_min, t_max]`` (continuous fits, where
    ``rates`` are decay rates, not ratios).

    ``bound`` is the *exact* relative ``l1`` error over the certified
    range -- no extrapolation: it is computed by evaluating the fitted
    mixture at every certified lag (discrete) or on the dense
    certification grid (continuous) after the fit.
    """

    weights: np.ndarray
    rates: np.ndarray
    bound: float
    rtol: float
    lag_start: int
    lag_stop: int
    kind: str = "discrete"

    @property
    def n_modes(self) -> int:
        """Number of exponential modes in the mixture."""
        return int(self.weights.size)

    @property
    def certified(self) -> bool:
        """Whether the exact bound meets the requested tolerance."""
        return bool(self.bound <= self.rtol)

    def evaluate(self, lags: np.ndarray) -> np.ndarray:
        """Fitted kernel values at ``lags`` (discrete) / times (continuous)."""
        lags = np.asarray(lags, dtype=float)
        if self.kind == "continuous":
            return _exp_design(lags, self.rates) @ self.weights
        return _power_design(lags, self.rates) @ self.weights

    def info(self) -> dict:
        """Result-metadata payload (mirrors the MOR ``info`` contract)."""
        return {
            "mode": "soe",
            "modes": self.n_modes,
            "bound": float(self.bound),
            "rtol": float(self.rtol),
            "certified": self.certified,
            "lag_start": int(self.lag_start),
            "lag_stop": int(self.lag_stop),
        }


def _power_design(lags: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Design matrix ``M[d, p] = rates[p]**lags[d]`` for ``|rates| < 1``.

    Evaluated as ``sign**d * exp(d * log|rate|)`` so huge lags underflow
    cleanly to zero instead of tripping ``pow`` overflow paths.
    """
    lags = np.asarray(lags, dtype=float)
    mags = np.abs(rates)
    with np.errstate(divide="ignore"):
        log_mags = np.log(mags)
    M = np.exp(np.outer(lags, log_mags))
    neg = rates < 0.0
    if np.any(neg):
        parity = np.where(np.asarray(lags).astype(np.int64) % 2 == 0, 1.0, -1.0)
        M[:, neg] *= parity[:, None]
    return M


def _exp_design(times: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Design matrix ``M[t, p] = exp(-rates[p] * times[t])``."""
    return np.exp(-np.outer(np.asarray(times, dtype=float), rates))


def _weighted_lstsq(
    M: np.ndarray, y: np.ndarray, row_weights: np.ndarray
) -> np.ndarray:
    """Row-weighted, column-equilibrated least squares (SVD, rank-safe)."""
    Mw = M * row_weights[:, None]
    yw = y * row_weights
    col_scale = np.linalg.norm(Mw, axis=0)
    col_scale[col_scale == 0.0] = 1.0
    sol, *_ = np.linalg.lstsq(Mw / col_scale[None, :], yw, rcond=None)
    return sol / col_scale


def _fit_rows(lo: float, hi: float) -> np.ndarray:
    """Log-spaced least-squares sample of ``[lo, hi]`` (unique values)."""
    count = int(hi - lo) + 1
    if count <= _MAX_FIT_ROWS:
        return np.arange(lo, hi + 1.0)
    # keep every lag near the (hardest) lower end, log-thin the far tail
    dense_hi = min(hi, lo + _MAX_FIT_ROWS // 2)
    dense = np.arange(lo, dense_hi + 1.0)
    sparse = np.unique(
        np.round(np.geomspace(dense_hi + 1.0, hi, _MAX_FIT_ROWS // 2))
    )
    return np.unique(np.concatenate([dense, sparse]))


def _rate_ladder(theta_min: float, theta_max: float, density: int) -> np.ndarray:
    """Log-spaced decay rates, ``density`` nodes per decade."""
    decades = math.log10(theta_max / theta_min)
    count = max(2, int(math.ceil(decades * density)) + 1)
    return np.geomspace(theta_min, theta_max, count)


def fit_discrete_kernel(
    coeffs: np.ndarray,
    lag_start: int,
    lag_stop: int,
    plan: SoePlan | None = None,
) -> SoeFit:
    """Fit ``coeffs[d] ~ sum_p c_p lambda_p^d`` over ``d in [lag_start, lag_stop]``.

    The dictionary holds signed geometric ratios
    ``lambda = +-exp(-theta)`` with ``theta`` log-spaced, fitted by
    row-weighted least squares (relative weighting, so the slowly
    decaying far tail is not drowned by the near lags); the node
    density escalates until the exact certificate meets ``plan.rtol``
    or the ``plan.max_modes`` cap stops it.  The returned fit carries
    the exact bound either way -- the *caller* decides between
    fallback and raising (see :func:`resolve_memory` consumers).

    Results are cached process-wide on the kernel content and the plan.
    """
    plan = plan or SoePlan()
    coeffs = np.ascontiguousarray(coeffs, dtype=float)
    lag_start, lag_stop = int(lag_start), int(lag_stop)
    if lag_start < 1 or lag_stop < lag_start:
        raise SolverError(
            f"need 1 <= lag_start <= lag_stop, got ({lag_start}, {lag_stop})"
        )
    if coeffs.size <= lag_stop:
        raise SolverError(
            f"kernel provides {coeffs.size} coefficients but certification "
            f"needs lag {lag_stop}; build coefficients for the full horizon"
        )
    key = (
        "discrete",
        coeffs[: lag_stop + 1].tobytes(),
        lag_start,
        lag_stop,
        plan.fingerprint(),
    )
    hit = _fit_cache_get(key)
    if hit is not None:
        return hit

    all_lags = np.arange(lag_start, lag_stop + 1, dtype=float)
    target_all = coeffs[lag_start : lag_stop + 1]
    fit_lags = _fit_rows(float(lag_start), float(lag_stop))
    target = coeffs[fit_lags.astype(np.int64)]
    # relative row weighting with an absolute floor: the certificate is
    # an l1 *ratio*, so lags whose coefficient is orders of magnitude
    # below the kernel scale need no pointwise accuracy
    scale = float(np.max(np.abs(target_all)))
    if scale == 0.0:
        fit = SoeFit(
            weights=np.zeros(1),
            rates=np.zeros(1),
            bound=0.0,
            rtol=plan.rtol,
            lag_start=lag_start,
            lag_stop=lag_stop,
        )
        _fit_cache_put(key, fit)
        return fit
    row_w = 1.0 / (np.abs(target) + 1e-8 * scale)
    denom = float(np.sum(np.abs(target_all)))

    theta_max = _THETA_MAX / lag_start
    theta_min = 1.0 / (20.0 * lag_stop)
    theta_min = min(theta_min, theta_max / 10.0)

    best: SoeFit | None = None
    for density in _NODE_DENSITIES:
        theta = _rate_ladder(theta_min, theta_max, density)
        rates = np.concatenate([np.exp(-theta), -np.exp(-theta)])
        if rates.size > plan.max_modes:
            rates = np.concatenate(
                [
                    np.exp(-_rate_ladder(theta_min, theta_max, density))[
                        : plan.max_modes // 2
                    ],
                    -np.exp(-_rate_ladder(theta_min, theta_max, density))[
                        : plan.max_modes // 2
                    ],
                ]
            )
        c = _weighted_lstsq(_power_design(fit_lags, rates), target, row_w)
        # prune modes that cannot move the certificate, then certify
        # EXACTLY over every lag in the compressed range
        keep = np.abs(c) * np.abs(rates) ** lag_start > 1e-3 * plan.rtol * scale
        if not np.any(keep):
            keep = np.abs(c) == np.max(np.abs(c))
        c, kept_rates = c[keep], rates[keep]
        err = _power_design(all_lags, kept_rates) @ c - target_all
        bound = float(np.sum(np.abs(err)) / denom)
        fit = SoeFit(
            weights=c,
            rates=kept_rates,
            bound=bound,
            rtol=plan.rtol,
            lag_start=lag_start,
            lag_stop=lag_stop,
        )
        if best is None or fit.bound < best.bound:
            best = fit
        if fit.certified:
            break
        if rates.size >= plan.max_modes:
            break
    _fit_cache_put(key, best)
    return best


def fit_continuous_kernel(
    alpha: float,
    horizon_windows: int,
    window: float,
    plan: SoePlan | None = None,
) -> SoeFit:
    """Fit ``t^{alpha-1}/Gamma(alpha) ~ sum_p c_p exp(-theta_p t)`` on
    ``[W, K W]`` (``W = window``, ``K = horizon_windows``).

    Used by the spectral (hybrid-function) march, which keeps the
    singular adjacent-window operator (lag 1) exact and compresses
    every older lag: separability of the exponential makes each
    compressed lag operator rank-one (see
    :func:`repro.engine.marching._march_spectral`).

    The fit is performed in the dimensionless variable ``s = t / W``
    (so it caches per ``(alpha, K, plan)`` across window lengths) and
    rescaled; the certificate is the exact relative ``l1`` error on a
    dense log-linear grid of ``s in [1, K]`` with trapezoidal measure.
    """
    plan = plan or SoePlan()
    alpha = float(alpha)
    K = int(horizon_windows)
    window = float(window)
    if K < 2:
        raise SolverError(f"continuous SOE fit needs >= 2 windows, got {K}")
    if window <= 0.0:
        raise SolverError(f"window length must be positive, got {window}")
    key = ("continuous", alpha, K, plan.fingerprint())
    hit = _fit_cache_get(key)
    if hit is None:
        hit = _fit_continuous_dimensionless(alpha, K, plan)
        _fit_cache_put(key, hit)
    # rescale t = W s: rates theta/W, weights absorb W^(alpha-1)/Gamma
    scale = window ** (alpha - 1.0) / math.gamma(alpha)
    return SoeFit(
        weights=hit.weights * scale,
        rates=hit.rates / window,
        bound=hit.bound,
        rtol=hit.rtol,
        lag_start=hit.lag_start,
        lag_stop=hit.lag_stop,
        kind="continuous",
    )


def _fit_continuous_dimensionless(alpha: float, K: int, plan: SoePlan) -> SoeFit:
    """Fit ``s^{alpha-1}`` on ``s in [1, K]`` (dimensionless core)."""
    # dense certification grid: linear near the curved left end, log
    # thinning beyond; the certificate integrates |error| against the
    # trapezoidal measure of this grid
    left = np.linspace(1.0, min(4.0, float(K)), 257)
    grid = np.unique(
        np.concatenate([left, np.geomspace(1.0, float(K), 1025)])
    )
    target = grid ** (alpha - 1.0)
    measure = np.gradient(grid)
    denom = float(np.sum(np.abs(target) * measure))
    row_w = 1.0 / (np.abs(target) + 1e-8)

    theta_max = _THETA_MAX  # exp(-36) at s = 1: below double precision
    theta_min = 1.0 / (20.0 * K)
    best: SoeFit | None = None
    for density in _NODE_DENSITIES:
        rates = _rate_ladder(theta_min, theta_max, density)
        if rates.size > plan.max_modes:
            rates = rates[: plan.max_modes]
        c = _weighted_lstsq(_exp_design(grid, rates), target, row_w)
        keep = np.abs(c) * np.exp(-rates) > 1e-3 * plan.rtol
        if not np.any(keep):
            keep = np.abs(c) == np.max(np.abs(c))
        c, kept = c[keep], rates[keep]
        err = _exp_design(grid, kept) @ c - target
        bound = float(np.sum(np.abs(err) * measure) / denom)
        fit = SoeFit(
            weights=c,
            rates=kept,
            bound=bound,
            rtol=plan.rtol,
            lag_start=1,
            lag_stop=K,
            kind="continuous",
        )
        if best is None or fit.bound < best.bound:
            best = fit
        if fit.certified or rates.size >= plan.max_modes:
            break
    return best


def require_certified(fit: SoeFit, plan: SoePlan, what: str) -> bool:
    """Gate a fit: ``True`` when usable, ``False`` for recorded fallback.

    Raises :class:`~repro.errors.MemoryCompressionError` when the plan
    forbids falling back (``fallback=False``).
    """
    if fit.certified:
        return True
    if plan.fallback:
        return False
    raise MemoryCompressionError(
        f"SOE compression of the {what} memory kernel missed its certified "
        f"tolerance (bound {fit.bound:.3e} > rtol {fit.rtol:.3e} with "
        f"{fit.n_modes} modes); raise memory_rtol, raise max_modes, or use "
        "memory='exact'"
    )


class SoeTail:
    """Drop-in for :class:`~repro.fractional.history.HistoryTail` with
    compressed far memory.

    The most recent appended block is served **exactly** (its lags are
    below the fitted range, where the kernel is most curved); all older
    blocks live in the ``(n, P)`` mode-state matrix ``M`` with

    .. math::  M_{:,p} = \\sum_{i < N - w} \\lambda_p^{N - i} x_i

    (``N`` columns appended, ``w`` the recent block's width), updated on
    every :meth:`append` by one scaled GEMM:
    ``M <- (M + R @ Lambda_w) * lambda^b``.  :meth:`tail` then costs
    ``O(n (w + P) count)`` independent of the marched horizon, against
    the exact tail's ``O(n N count)``.

    The fit must be certified for every lag the tail will touch: lag
    ``recent_width + 1`` (the oldest compressed column is always at
    least one full block behind) through
    ``columns + count - 1`` at the final :meth:`tail` call -- both are
    validated, never extrapolated.
    """

    def __init__(self, coeffs: np.ndarray, fit: SoeFit) -> None:
        self.coeffs = np.asarray(coeffs, dtype=float)
        if self.coeffs.ndim != 1 or self.coeffs.size == 0:
            raise SolverError("coeffs must be a non-empty 1-D array")
        if fit.kind != "discrete":
            raise SolverError("SoeTail requires a discrete-kernel SoeFit")
        self.fit = fit
        self._rates = np.asarray(fit.rates, dtype=float)
        self._weights = np.asarray(fit.weights, dtype=float)
        self._columns = 0
        self._recent: np.ndarray | None = None
        self._modes: np.ndarray | None = None

    @property
    def columns(self) -> int:
        """Total number of solved columns appended so far."""
        return self._columns

    @property
    def n_modes(self) -> int:
        """Size of the exponential mode state."""
        return int(self._rates.size)

    def _powers(self, exponents: np.ndarray) -> np.ndarray:
        """``rates**exponents`` as a ``(len(exponents), P)`` matrix."""
        return _power_design(np.asarray(exponents, dtype=float), self._rates)

    def append(self, block: np.ndarray) -> None:
        """Record a solved coefficient block of shape ``(n, m_block)``.

        The previous recent block graduates into the mode states.
        """
        block = np.asarray(block, dtype=float)
        if block.ndim != 2:
            raise SolverError(f"history blocks must be 2-D, got ndim={block.ndim}")
        b = block.shape[1]
        if self._recent is not None:
            w = self._recent.shape[1]
            if self._modes is None:
                self._modes = np.zeros((self._recent.shape[0], self.n_modes))
            # absorb the graduating block at its pre-append lags
            # (1..w columns back), then age everything by b columns
            graduate = self._recent @ self._powers(np.arange(w, 0, -1.0))
            self._modes = (self._modes + graduate) * self._powers(
                np.array([float(b)])
            )
        self._recent = block
        self._columns += b

    def tail(self, count: int) -> np.ndarray | None:
        """Memory contribution of every appended block to the next
        ``count`` columns: exact for the recent block, mode recurrence
        for everything older.  ``None`` before the first append
        (matching the :class:`HistoryTail` contract)."""
        if self._recent is None:
            return None
        count = int(count)
        w = self._recent.shape[1]
        # exact near part: the recent block's lags are 1 .. w+count-1
        W = history_weights(self.coeffs, w, count)
        H = self._recent @ W
        if self._modes is not None:
            oldest = self._columns + count - 1
            if w + 1 < self.fit.lag_start or oldest > self.fit.lag_stop:
                raise SolverError(
                    f"SOE fit certified for lags [{self.fit.lag_start}, "
                    f"{self.fit.lag_stop}] cannot serve lags "
                    f"[{w + 1}, {oldest}]; fit the full marching horizon"
                )
            # H_far[:, j] = sum_p c_p lambda_p^j M[:, p]
            H += (self._modes * self._weights[None, :]) @ self._powers(
                np.arange(count, dtype=float)
            ).T
        return H


# ----------------------------------------------------------------------
# process-wide fit cache (content-keyed, LRU) -- repeated marches and
# warm service sessions re-fit nothing; ``reuses`` mirrors the
# BasisSet.cached_operator build counter so tests can assert reuse
# ----------------------------------------------------------------------
_FIT_CACHE: OrderedDict[tuple, SoeFit] = OrderedDict()
_FIT_CACHE_SIZE = 32
_FIT_CACHE_REUSES = 0


def _fit_cache_get(key: tuple) -> SoeFit | None:
    global _FIT_CACHE_REUSES
    fit = _FIT_CACHE.get(key)
    if fit is not None:
        _FIT_CACHE.move_to_end(key)
        _FIT_CACHE_REUSES += 1
    return fit


def _fit_cache_put(key: tuple, fit: SoeFit) -> None:
    _FIT_CACHE[key] = fit
    while len(_FIT_CACHE) > _FIT_CACHE_SIZE:
        _FIT_CACHE.popitem(last=False)


def clear_fit_cache() -> None:
    """Drop all cached fits and reset the reuse counter (testing hook)."""
    global _FIT_CACHE_REUSES
    _FIT_CACHE.clear()
    _FIT_CACHE_REUSES = 0


def fit_cache_stats() -> dict:
    """Cache telemetry: ``{'entries': ..., 'reuses': ...}``."""
    return {"entries": len(_FIT_CACHE), "reuses": _FIT_CACHE_REUSES}

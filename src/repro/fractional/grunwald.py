"""Grünwald-Letnikov time-stepping solver for fractional systems.

This is the classical *time-domain* method for
``E d^alpha x = A x + B u`` that the paper's introduction describes as
"extremely inefficient if not impossible" for traditional transient
analysis: every step must convolve the entire state history with the GL
weights, giving ``O(n^beta m + n m^2)`` work -- the same asymptotic
cost the paper derives for fractional OPM, which makes GL the natural
accuracy/runtime baseline for the fractional benchmarks.

Scheme (implicit, zero initial state at ``t_0 = 0``):

.. math::

    h^{-\\alpha} E \\sum_{j=0}^{k} w_j x_{k-j} = A x_k + B u(t_k)
    \\;\\Longrightarrow\\;
    (h^{-\\alpha} E - A) x_k
        = B u(t_k) - h^{-\\alpha} E \\sum_{j=1}^{k} w_j x_{k-j},

with ``w_j`` the GL weights.  One pencil factorisation, reused for all
steps.

**Nonzero initial state.**  The raw GL operator applied to ``x`` itself
would be wrong for ``x(0) != 0``: the RL/GL fractional derivative of
the constant ``x0`` is *nonzero* (``t^{-alpha} x0 / Gamma(1-alpha)``),
so the classical "shift the solution by ``x0``" trick of first-order
solvers does not carry over verbatim.  The proper forcing correction --
the shifted-GL / Caputo scheme -- applies the GL operator to the
*deviation* ``z = x - x0``, which turns ``E D^alpha_C x = A x + B u``
into the zero-initial-state problem
``E D^alpha_GL z = A z + B u + A x0`` with ``x = z + x0``.  That is
exactly what this solver implements (the ``A x0`` term via
:meth:`~repro.core.lti.DescriptorSystem.shifted_input_offset`, the
final un-shift at the end); it is validated against the analytic
Mittag-Leffler relaxation ``x0 E_alpha(-lam t^alpha)`` in the test
suite, converging at the expected ``O(h^alpha)`` rate near the ``t = 0``
singularity.  Orders ``alpha > 1`` with nonzero ``x0`` are rejected at
model construction (they would need derivative initial data).
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import check_positive_int
from ..core.column_solver import PencilCache
from ..core.lti import DescriptorSystem
from ..core.result import SampledResult
from ..errors import ModelError
from .definitions import cached_gl_weights
from .history import history_dot
from .soe import fit_discrete_kernel, require_certified, resolve_memory

__all__ = ["simulate_grunwald_letnikov"]


def simulate_grunwald_letnikov(
    system: DescriptorSystem,
    u,
    t_end: float,
    n_steps: int,
    *,
    memory="exact",
    memory_rtol: float | None = None,
) -> SampledResult:
    """Simulate ``E d^alpha x = A x + B u`` with implicit GL stepping.

    Parameters
    ----------
    system:
        :class:`DescriptorSystem` or
        :class:`~repro.core.lti.FractionalDescriptorSystem`; ``alpha``
        is read from the model (``1.0`` turns this into backward
        Euler).  Zero initial state (paper convention); nonzero ``x0``
        with ``alpha <= 1`` uses the same constant shift as OPM.
    u:
        Callable ``u(times)`` (vectorised, shape ``(p, nt)`` or
        ``(nt,)`` for single input) or a scalar constant.
    t_end:
        Horizon; nodes are ``t_k = k h`` with ``h = t_end / n_steps``.
    n_steps:
        Number of time steps.
    memory:
        ``'exact'`` (default: the full per-step history convolution),
        ``'soe'``, or an :class:`~repro.fractional.soe.SoePlan`.
        Compressed memory keeps the most recent ``exact_lags`` lags
        exact and folds everything older into a certified
        sum-of-exponentials mode recurrence, making the whole solve
        linear in ``n_steps``; an uncertified fit falls back to exact
        memory (recorded in ``info['memory']``).
    memory_rtol:
        Certification tolerance override for ``memory='soe'``.

    Returns
    -------
    SampledResult
        States at the ``n_steps + 1`` nodes (including ``t = 0``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.lti import FractionalDescriptorSystem
    >>> sysf = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_grunwald_letnikov(sysf, 1.0, 1.0, 200)
    >>> res.state_values.shape
    (1, 201)
    """
    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    n_steps = check_positive_int(n_steps, "n_steps")
    t_end = float(t_end)
    if t_end <= 0.0:
        raise ValueError(f"t_end must be positive, got {t_end}")
    h = t_end / n_steps
    alpha = system.alpha
    n, p = system.n_states, system.n_inputs

    times = np.linspace(0.0, t_end, n_steps + 1)
    if np.isscalar(u):
        u_vals = np.full((p, times.size), float(u))
    elif callable(u):
        u_vals = np.asarray(u(times), dtype=float)
        if u_vals.ndim == 1:
            u_vals = u_vals.reshape(1, -1)
        if u_vals.shape != (p, times.size):
            raise ModelError(
                f"input callable must return ({p}, {times.size}) values, got {u_vals.shape}"
            )
    else:
        raise ModelError("GL stepping requires a callable or scalar input")

    offset = system.shifted_input_offset()
    weights = cached_gl_weights(alpha, n_steps + 1)
    scale = h**-alpha
    cache = PencilCache(system.E, system.A)
    E = system.E

    # optional SOE memory compression: keep L recent lags exact, fold
    # older history into P mode states updated by one AXPY per step
    mem_plan = resolve_memory(memory, memory_rtol)
    memory_info: dict = {"mode": "exact"}
    fit = None
    if mem_plan is not None:
        L = int(mem_plan.exact_lags)
        if n_steps > 2 * L:
            fit = fit_discrete_kernel(weights, L + 1, n_steps, mem_plan)
            memory_info = fit.info()
            if not require_certified(fit, mem_plan, "Grünwald-Letnikov"):
                memory_info.update(mode="exact", fallback=True)
                fit = None
            else:
                memory_info["fallback"] = False
                memory_info["exact_lags"] = L
        else:
            memory_info = {"mode": "exact", "reason": "short-horizon"}

    start = time.perf_counter()
    X = np.zeros((n, n_steps + 1))
    if fit is not None:
        lam, c = fit.rates, fit.weights
        # integer exponent keeps negative (alternating) ratios exact
        lam_entry = lam ** (L + 1)
        near = weights[L:0:-1]
        S = np.zeros((n, lam.size))  # S[:, p] = sum_{i<k-L} lam_p^{k-i} x_i
        for k in range(1, n_steps + 1):
            rhs = system.B @ u_vals[:, k]
            if offset is not None:
                rhs = rhs + offset
            if k <= L:
                hist = history_dot(X, weights, k)
            else:
                hist = X[:, k - L : k] @ near + S @ c
            rhs = rhs - scale * (E @ hist)
            X[:, k] = cache.solve(scale, rhs)
            if k >= L:
                S = S * lam[None, :] + np.outer(X[:, k - L], lam_entry)
    else:
        for k in range(1, n_steps + 1):
            rhs = system.B @ u_vals[:, k]
            if offset is not None:
                rhs = rhs + offset
            # GL memory convolution sum_{j=1..k} w_j z_{k-j} (shared with
            # the marching engine's cross-window tail -- see
            # fractional.history)
            hist = history_dot(X, weights, k)
            rhs = rhs - scale * (E @ hist)
            X[:, k] = cache.solve(scale, rhs)
    wall = time.perf_counter() - start

    if system.x0 is not None:
        # un-shift the Caputo deviation variable: x = z + x0
        X = X + system.x0[:, None]
    return SampledResult(
        times,
        X,
        system,
        input_values=u_vals,
        wall_time=wall,
        info={
            "method": "grunwald-letnikov",
            "alpha": alpha,
            "h": h,
            "memory": memory_info,
        },
    )

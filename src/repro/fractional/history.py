"""Fractional memory-tail evaluation shared by GL stepping and marching.

A fractional operator on a uniform grid is a discrete convolution: the
equation at column/step ``k`` involves ``sum_{j>=1} c_j x_{k-j}`` over
the *entire* solved history.  Two consumers in this package need that
sum:

* the Grünwald-Letnikov baseline (:mod:`repro.fractional.grunwald`),
  which pays it once per time step (:func:`history_dot`);
* the windowed marching engine (:mod:`repro.engine.marching`), which
  pays it once per *window*: the contribution of all previous windows
  to the ``m`` columns of the current one is a block of the same
  convolution, evaluated here as a small number of GEMMs
  (:class:`HistoryTail`) instead of ``m`` separate dot products.

Both views use identical weight indexing -- ``weights[d]`` multiplies
the solved column ``d`` lags in the past -- so the marching engine's
cross-window tail is algebraically the same memory term the GL stepper
accumulates, just batched.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import SolverError

__all__ = ["history_dot", "history_weights", "HistoryTail"]


def history_dot(X: np.ndarray, weights: np.ndarray, k: int) -> np.ndarray:
    """Memory sum ``sum_{j=1..k} weights[j] X[:, k-j]`` at step ``k``.

    ``X`` holds the solved columns ``x_0 .. x_{k-1}`` (and possibly
    more; only the first ``k`` are read), ``weights`` the convolution
    coefficients indexed by lag.  This is the per-step history term of
    the GL scheme and of the paper's fractional OPM sweep.
    """
    if k <= 0:
        return np.zeros(X.shape[0])
    return X[:, :k] @ weights[k:0:-1]


def history_weights(
    coeffs: np.ndarray, start: int, count: int, rows: int | None = None
) -> np.ndarray:
    """Lag-weight block for ``count`` columns following ``start`` solved ones.

    Returns ``W`` of shape ``(start, count)`` with
    ``W[i, j] = coeffs[start + j - i]``: the contribution of solved
    column ``i`` to future column ``start + j`` is ``W[i, j] x_i``, so
    the whole cross-block tail is the single product ``X_past @ W``.

    ``rows`` limits the result to the *first* ``rows`` weight rows
    (columns ``0 .. rows-1``) without materialising the rest -- the
    chunked evaluation in :meth:`HistoryTail.tail` relies on this to
    keep its working set independent of the marched horizon.

    ``coeffs`` must provide at least ``start + count`` entries (i.e. be
    built for the full horizon, not one window).
    """
    start, count = int(start), int(count)
    if start < 0 or count <= 0:
        raise SolverError(
            f"history_weights needs start >= 0 and count > 0, got ({start}, {count})"
        )
    if coeffs.size < start + count:
        raise SolverError(
            f"need {start + count} convolution coefficients, got {coeffs.size}; "
            "build the coefficients for the full marching horizon"
        )
    rows = start if rows is None else min(int(rows), start)
    if rows <= 0:
        return np.zeros((0, count))
    # rows are lagged slices of coeffs: row i = coeffs[start-i : start-i+count]
    return sliding_window_view(coeffs, count)[start - np.arange(rows)]


class HistoryTail:
    """Accumulates solved coefficient blocks and evaluates their memory tail.

    Parameters
    ----------
    coeffs:
        Convolution coefficients of the fractional operator over the
        *full* horizon (``K * m`` entries for ``K`` windows of ``m``
        columns); windowed prefixes of the paper's Toeplitz first row
        are prefix-stable, so these agree with every per-window
        operator.
    block_columns:
        GEMM chunk size for :meth:`tail`.  The weight block handed to
        one GEMM is at most ``block_columns x count`` floats, keeping
        the per-window working set ``O(n m + m^2)`` regardless of how
        many windows have been marched (default: the requested window
        width).
    """

    def __init__(self, coeffs: np.ndarray, *, block_columns: int | None = None) -> None:
        self.coeffs = np.asarray(coeffs, dtype=float)
        if self.coeffs.ndim != 1 or self.coeffs.size == 0:
            raise SolverError("coeffs must be a non-empty 1-D array")
        self._blocks: list[np.ndarray] = []
        self._columns = 0
        self._block_columns = block_columns

    @property
    def columns(self) -> int:
        """Total number of solved columns appended so far."""
        return self._columns

    def append(self, block: np.ndarray) -> None:
        """Record a solved coefficient block of shape ``(n, m_block)``."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 2:
            raise SolverError(f"history blocks must be 2-D, got ndim={block.ndim}")
        self._blocks.append(block)
        self._columns += block.shape[1]

    def tail(self, count: int) -> np.ndarray | None:
        """Memory contribution of every appended block to the next ``count`` columns.

        Returns ``H`` of shape ``(n, count)`` with
        ``H[:, j] = sum_{i < columns} coeffs[columns + j - i] x_i``,
        or ``None`` when no history has been appended yet.  Evaluated
        in chunks of ``block_columns`` past columns so the temporary
        weight block never scales with the marched horizon.
        """
        if not self._blocks:
            return None
        count = int(count)
        chunk = self._block_columns or count
        n = self._blocks[0].shape[0]
        H = np.zeros((n, count))
        start = 0
        for block in self._blocks:
            width = block.shape[1]
            for lo in range(0, width, chunk):
                hi = min(lo + chunk, width)
                # past column g = start+lo+i contributes with lag
                # columns - g, i.e. weight row i of the block whose
                # "start" is columns - (start+lo)
                W = history_weights(
                    self.coeffs, self._columns - (start + lo), count, rows=hi - lo
                )
                H += block[:, lo:hi] @ W
            start += width
        return H

"""Closed-form reference solutions for validation.

Scalar fractional relaxation and forced responses in terms of the
Mittag-Leffler function, plus the classical damped second-order step
response used to validate the high-order OPM path (section V-B).

All fractional formulas assume the Caputo derivative with zero (or the
stated) initial data on ``t >= 0`` -- the same setting as the paper's
zero-initial-condition OPM.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float
from .mittag_leffler import mittag_leffler

__all__ = [
    "fde_relaxation",
    "fde_step_response",
    "fde_impulse_response",
    "second_order_step_response",
]


def fde_relaxation(alpha: float, lam: float, times, x0: float = 1.0) -> np.ndarray:
    """Solution of ``d^alpha x/dt^alpha = -lam x``, ``x(0) = x0`` (0 < alpha <= 1).

    ``x(t) = x0 * E_alpha(-lam t^alpha)``.

    Examples
    --------
    >>> import numpy as np
    >>> t = np.array([0.0, 1.0])
    >>> np.round(fde_relaxation(1.0, 2.0, t), 10)  # reduces to exp(-2t)
    array([1.        , 0.13533528])
    """
    lam = check_positive_float(lam, "lam")
    t = np.asarray(times, dtype=float)
    return x0 * mittag_leffler(alpha, 1.0, -lam * t**alpha)


def fde_step_response(alpha: float, lam: float, times, b: float = 1.0) -> np.ndarray:
    """Solution of ``d^alpha x = -lam x + b`` with ``x(0) = 0``.

    ``x(t) = b t^alpha E_{alpha, alpha+1}(-lam t^alpha)``; for
    ``alpha = 1`` this reduces to ``(b/lam)(1 - exp(-lam t))``.

    Examples
    --------
    >>> import numpy as np
    >>> float(np.round(fde_step_response(1.0, 1.0, np.array([1.0]))[0], 10))
    0.6321205588
    """
    lam = check_positive_float(lam, "lam")
    t = np.asarray(times, dtype=float)
    return b * t**alpha * mittag_leffler(alpha, alpha + 1.0, -lam * t**alpha)


def fde_impulse_response(alpha: float, lam: float, times, b: float = 1.0) -> np.ndarray:
    """Impulse response of ``d^alpha x = -lam x + b delta(t)``.

    ``x(t) = b t^{alpha-1} E_{alpha,alpha}(-lam t^alpha)``; singular at
    ``t = 0`` for ``alpha < 1`` (the fractional memory kernel), so pass
    strictly positive times there.
    """
    lam = check_positive_float(lam, "lam")
    t = np.asarray(times, dtype=float)
    return b * t ** (alpha - 1.0) * mittag_leffler(alpha, alpha, -lam * t**alpha)


def second_order_step_response(omega_n: float, zeta: float, times) -> np.ndarray:
    """Unit-step response of ``x'' + 2 zeta omega_n x' + omega_n^2 x = omega_n^2 u``.

    Underdamped (``zeta < 1``) closed form; validates the direct
    second-order OPM solve of section V-B against textbook dynamics.

    Examples
    --------
    >>> import numpy as np
    >>> float(np.round(second_order_step_response(1.0, 1e-9, np.array([np.pi]))[0], 6))
    2.0
    """
    omega_n = check_positive_float(omega_n, "omega_n")
    zeta = float(zeta)
    if not 0.0 <= zeta < 1.0:
        raise ValueError(f"zeta must be in [0, 1) for the underdamped form, got {zeta}")
    t = np.asarray(times, dtype=float)
    omega_d = omega_n * np.sqrt(1.0 - zeta**2)
    decay = np.exp(-zeta * omega_n * t)
    return 1.0 - decay * (np.cos(omega_d * t) + zeta * omega_n / omega_d * np.sin(omega_d * t))

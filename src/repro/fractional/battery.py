"""Cross-method validation battery against Mittag-Leffler references.

The method zoo (:mod:`repro.fractional.methods`) turns the fractional
core into a family of competing discretisations; this module is the
harness that validates *all* of them -- the native operational-matrix
route included -- against closed-form Mittag-Leffler solutions:

* step response of ``d^alpha x = -lambda x + u``:
  ``x(t) = t^alpha E_{alpha, alpha+1}(-lambda t^alpha)``,
* relaxation from ``x(0) = 1`` (``alpha <= 1``, Caputo):
  ``x(t) = E_{alpha, 1}(-lambda t^alpha)``,

across varying orders ``alpha``, stiffness ratios, and drive kinds.
:func:`run_method_battery` sweeps every method over the battery at two
resolutions, recording relative accuracy, accuracy *per coefficient*,
and wall time into one machine-readable payload --
``benchmarks/bench_methods.py`` writes it to ``BENCH_methods.json``
and ``benchmarks/trajectory.py`` enforces the per-method accuracy
floors as trajectory claims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.lti import FractionalDescriptorSystem
from ..errors import SolverError
from .methods import method_names
from .mittag_leffler import mittag_leffler

__all__ = [
    "ReferenceCase",
    "reference_battery",
    "evaluate_method",
    "run_method_battery",
    "DEFAULT_RESOLUTIONS",
]

#: Per-method (coarse, fine) resolutions: the convolution methods
#: refine the grid, the spectral collocation method refines the
#: polynomial order -- "fine" is what the summary accuracy (and the
#: trajectory claim) is measured at.
DEFAULT_RESOLUTIONS: dict = {
    "opm": (128, 512),
    "gl": (128, 512),
    "oustaloup": (128, 512),
    "jacobi": (12, 24),
}


@dataclass(frozen=True)
class ReferenceCase:
    """One analytic reference problem with a Mittag-Leffler solution.

    A diagonal relaxation bank ``d^alpha x_i = -rates[i] x_i + u``:
    diagonal, so every state has a closed form, while the *solvers* see
    an ordinary coupled descriptor pencil (nothing in the engine
    exploits diagonality).  ``drive='step'`` is the unit-step response
    from rest; ``drive='decay'`` relaxes ``x(0) = 1`` with no input
    (Caputo initial data, so ``alpha <= 1`` only).
    """

    name: str
    alpha: float
    rates: tuple
    drive: str = "step"
    t_end: float = 1.0

    def __post_init__(self):
        if self.drive not in ("step", "decay"):
            raise SolverError(f"drive must be 'step' or 'decay', got {self.drive!r}")
        if self.drive == "decay" and self.alpha > 1.0:
            raise SolverError(
                "decay references use Caputo initial data (alpha <= 1), "
                f"got alpha={self.alpha:g}"
            )

    def build_system(self) -> FractionalDescriptorSystem:
        """The diagonal fractional test system for this case."""
        n = len(self.rates)
        E = np.eye(n)
        A = -np.diag(np.asarray(self.rates, dtype=float))
        B = np.ones((n, 1))
        x0 = np.ones(n) if self.drive == "decay" else None
        return FractionalDescriptorSystem(self.alpha, E, A, B, x0=x0)

    def input(self) -> float:
        """The constant drive amplitude (1 for step, 0 for decay)."""
        return 1.0 if self.drive == "step" else 0.0

    def exact(self, times: np.ndarray) -> np.ndarray:
        """Closed-form states, shape ``(n_states, len(times))``."""
        t = np.asarray(times, dtype=float)
        a = self.alpha
        rows = []
        for lam in self.rates:
            z = -float(lam) * t**a
            if self.drive == "step":
                rows.append(t**a * mittag_leffler(a, a + 1.0, z))
            else:
                rows.append(mittag_leffler(a, 1.0, z))
        return np.asarray(rows)


def reference_battery(scale: int = 1) -> tuple:
    """The Mittag-Leffler reference problems, ordered easy to hard.

    ``scale >= 2`` (the nightly leg) widens the alpha range and adds a
    stiffer pair; the smoke battery stays small enough for CI.
    """
    cases = [
        ReferenceCase("half-order-step", 0.5, (1.0,)),
        ReferenceCase("subdiffusive-step", 0.8, (1.0,)),
        ReferenceCase("classical-step", 1.0, (1.0,)),
        ReferenceCase("half-order-decay", 0.5, (1.0,), drive="decay"),
        ReferenceCase("stiff-pair-step", 0.6, (1.0, 50.0)),
    ]
    if scale >= 2:
        cases += [
            ReferenceCase("strong-memory-step", 0.3, (1.0,)),
            ReferenceCase("superdiffusive-step", 1.5, (1.0,)),
            ReferenceCase("subdiffusive-decay", 0.8, (2.0,), drive="decay"),
            ReferenceCase("stiffer-pair-step", 0.4, (1.0, 200.0)),
        ]
    return tuple(cases)


def _sample_times(case: ReferenceCase) -> np.ndarray:
    # clear of both the t=0 startup singularity and the horizon edge
    return np.linspace(0.1 * case.t_end, 0.95 * case.t_end, 33)


def evaluate_method(
    method_name: str, case: ReferenceCase, m: int, *, backend: str = "auto"
) -> dict:
    """Run one method on one reference case at resolution ``m``.

    Returns a record dict with relative errors against the closed
    form (``rel_rms`` / ``rel_max``), correct ``digits``
    (``-log10(rel_rms)``), wall time, and coefficient count -- or a
    ``supported: False`` record when the method cannot express the
    case (it is reported, never silently dropped).
    """
    from ..engine import Simulator

    record = {
        "method": method_name,
        "case": case.name,
        "alpha": case.alpha,
        "drive": case.drive,
        "m": int(m),
        "supported": True,
    }
    try:
        sim = Simulator(
            case.build_system(),
            (case.t_end, int(m)),
            method=method_name,
            backend=backend,
        )
        start = time.perf_counter()
        result = sim.run(case.input())
        wall = time.perf_counter() - start
        times = _sample_times(case)
        approx = result.states(times)
        exact = case.exact(times)
    except SolverError as exc:
        record["supported"] = False
        record["reason"] = str(exc)
        return record
    scale = np.abs(exact).max(axis=1, keepdims=True)
    err = (approx - exact) / np.where(scale > 0.0, scale, 1.0)
    rel_rms = float(np.sqrt(np.mean(err**2)))
    record.update(
        {
            "basis": sim.basis.name,
            "rel_rms": rel_rms,
            "rel_max": float(np.abs(err).max()),
            "digits": float(-np.log10(max(rel_rms, 1e-16))),
            "wall_s": float(wall),
            "coefficients": int(m) * len(case.rates),
        }
    )
    return record


def run_method_battery(
    methods=None,
    cases=None,
    *,
    scale: int = 1,
    resolutions: dict | None = None,
) -> dict:
    """Sweep every method over the reference battery.

    Returns the ``BENCH_methods.json`` payload: all per-run records
    plus a per-method summary whose ``digits`` is the *worst* case at
    the fine resolution -- the number the trajectory guard enforces
    (a method is only as accurate as its hardest validated problem).
    """
    if methods is None:
        methods = method_names()
    if cases is None:
        cases = reference_battery(scale)
    resolutions = dict(DEFAULT_RESOLUTIONS, **(resolutions or {}))
    records = []
    summary = {}
    for name in methods:
        coarse, fine = resolutions[name]
        worst = None
        wall = 0.0
        validated = 0
        for case in cases:
            for m in (coarse, fine):
                record = evaluate_method(name, case, m)
                records.append(record)
                if not record["supported"]:
                    continue
                if m == fine:
                    validated += 1
                    wall += record["wall_s"]
                    if worst is None or record["rel_rms"] > worst["rel_rms"]:
                        worst = record
        if worst is None:
            raise SolverError(
                f"method {name!r} validated no reference case -- the "
                "battery would silently vouch for nothing"
            )
        summary[name] = {
            "digits": worst["digits"],
            "worst_rel_rms": worst["rel_rms"],
            "worst_case": worst["case"],
            "fine_m": resolutions[name][1],
            "cases_validated": validated,
            "wall_s": wall,
            "digits_per_100_coefficients": 100.0
            * worst["digits"]
            / worst["coefficients"],
        }
    return {
        "schema": 1,
        "scale": int(scale),
        "methods": list(methods),
        "records": records,
        "summary": summary,
    }

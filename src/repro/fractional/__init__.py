"""Fractional-calculus utilities and reference solutions.

The paper simulates fractional differential equations through
operational matrices; this subpackage provides everything needed to
*validate* that machinery:

* :mod:`~repro.fractional.definitions` -- Grünwald-Letnikov weights and
  fractional-operator notes;
* :mod:`~repro.fractional.grunwald` -- the classical GL time-stepping
  solver for FDEs, the "traditional time-domain method" whose cost the
  paper contrasts with OPM;
* :mod:`~repro.fractional.mittag_leffler` -- the two-parameter
  Mittag-Leffler function ``E_{alpha,beta}(z)``;
* :mod:`~repro.fractional.analytic` -- closed-form scalar FDE solutions
  (relaxation, step, impulse) built on Mittag-Leffler;
* :mod:`~repro.fractional.history` -- memory-tail evaluation shared by
  the GL stepper and the windowed marching engine;
* :mod:`~repro.fractional.soe` -- certified sum-of-exponentials
  compression of the memory kernels (the ``memory='soe'`` knob behind
  linear-time long-horizon fractional marching);
* :mod:`~repro.fractional.methods` -- the pluggable method zoo
  (Grünwald-Letnikov operational matrices, Oustaloup/CFE rational
  approximations, Jacobi spectral collocation) behind the engine's
  ``method=`` knob;
* :mod:`~repro.fractional.battery` -- the cross-method validation
  battery sweeping every method against Mittag-Leffler analytic
  references (what ``benchmarks/bench_methods.py`` enforces in CI).
"""

from .analytic import (
    fde_impulse_response,
    fde_relaxation,
    fde_step_response,
    second_order_step_response,
)
from .battery import (
    ReferenceCase,
    evaluate_method,
    reference_battery,
    run_method_battery,
)
from .definitions import cached_gl_weights, gl_weights
from .grunwald import simulate_grunwald_letnikov
from .history import HistoryTail, history_dot, history_weights
from .methods import (
    FRACTIONAL_METHODS,
    FractionalMethod,
    GrunwaldLetnikovMethod,
    JacobiMethod,
    OustaloupMethod,
    describe_methods,
    method_names,
    resolve_method,
    validate_method_name,
)
from .mittag_leffler import mittag_leffler
from .soe import (
    SoeFit,
    SoePlan,
    SoeTail,
    fit_continuous_kernel,
    fit_discrete_kernel,
    resolve_memory,
)

__all__ = [
    "gl_weights",
    "cached_gl_weights",
    "simulate_grunwald_letnikov",
    "mittag_leffler",
    "fde_relaxation",
    "fde_step_response",
    "fde_impulse_response",
    "second_order_step_response",
    "HistoryTail",
    "history_dot",
    "history_weights",
    "SoePlan",
    "SoeFit",
    "SoeTail",
    "fit_discrete_kernel",
    "fit_continuous_kernel",
    "resolve_memory",
    "FractionalMethod",
    "GrunwaldLetnikovMethod",
    "OustaloupMethod",
    "JacobiMethod",
    "FRACTIONAL_METHODS",
    "method_names",
    "describe_methods",
    "resolve_method",
    "validate_method_name",
    "ReferenceCase",
    "reference_battery",
    "evaluate_method",
    "run_method_battery",
]

"""Pluggable fractional-operator discretisations (the method zoo).

The paper's operational-matrix route is one of several competing
discretisations of the fractional integral ``I^alpha``.  This module
implements the alternatives ROADMAP calls for as *pluggable methods*:
each :class:`FractionalMethod` builds, for one
:class:`~repro.engine.bundle.OperatorBundle` and one order ``alpha``,
the ``m x m`` coefficient-space operator ``F`` with

.. math::  \\text{coeffs}(I^\\alpha f) = c\\, F

(the row-vector convention of the engine's integral formulation, so a
causal operator is *upper* triangular under right-multiplication).
The engine then solves ``E Z = A Z F + R F`` through exactly the same
cached-pencil machinery as the native route (see
:class:`repro.engine.session._MethodPlan`): a triangular column sweep
when ``F`` is upper triangular, the Kronecker integral form otherwise.

Registered methods
------------------
``'gl'``
    Grünwald-Letnikov convolution quadrature (Podlubny 1999, ch. 7):
    ``F`` is the upper-triangular Toeplitz matrix of the binomial
    weights of ``(1 - z)^{-alpha}`` scaled by ``h^alpha``.  First-order
    accurate; block-pulse/Walsh/Haar coordinates.
``'oustaloup'``
    Band-limited Oustaloup recursive rational approximation of
    ``s^{-alpha}`` (Oustaloup et al. 2000; the CFE/rational family of
    Dorčák & Petráš), Tustin-discretised on the session grid: ``F`` is
    the Toeplitz matrix of the cascade's impulse response, with integer
    parts split off exactly (``F = F_frac M^n`` for ``alpha = n +
    frac``).  Accuracy is set by the section count and fit band, not
    the grid -- the classic controls-community route.
``'jacobi'``
    Jacobi-Gauss *collocation* fractional integration matrix in the
    spirit of Zeng & Li's spectral differentiation matrices: the
    fractional integral of each Lagrange cardinal polynomial on the
    Jacobi-Gauss nodes is evaluated exactly (inner Gauss-Jacobi rule
    with weight ``(1-s)^{alpha-1}``), then re-expanded in the session's
    spectral basis.  Distinct from the engine's native Galerkin
    ``fractional_integration_matrix`` (an L2 projection): this is the
    nodal/interpolatory construction.

``'opm'`` names the engine's native operational-matrix route and is
accepted everywhere a method name is; :func:`resolve_method` maps it to
``None`` (no zoo plan).

:func:`validate_method_name` gives every front door (``Simulator``,
``dispatch.simulate``, deck ``.options method=``, CLI ``--method``,
service requests) the same typo-suggesting validation UX as basis
names (see :func:`repro.engine.bundle.validate_basis_name`).
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING

import numpy as np
from scipy.signal import lfilter
from scipy.special import gamma as gamma_function, roots_jacobi

from ..errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> here)
    from ..engine.bundle import OperatorBundle

__all__ = [
    "FractionalMethod",
    "GrunwaldLetnikovMethod",
    "OustaloupMethod",
    "JacobiMethod",
    "FRACTIONAL_METHODS",
    "NATIVE_METHOD",
    "method_names",
    "describe_methods",
    "normalise_method_name",
    "unknown_method_message",
    "validate_method_name",
    "resolve_method",
    "gl_integration_weights",
]

#: The engine's own operational-matrix route (not a zoo entry).
NATIVE_METHOD = "opm"


def gl_integration_weights(alpha: float, m: int) -> np.ndarray:
    """First ``m`` Grünwald-Letnikov *integration* weights.

    The coefficients ``w_k`` of ``(1 - z)^{-alpha}``: ``w_0 = 1`` and
    ``w_k = w_{k-1} (alpha + k - 1) / k``, so that ``(I^alpha f)(t_j)
    ~= h^alpha sum_k w_k f(t_{j-k})``.

    >>> gl_integration_weights(1.0, 4).tolist()  # plain summation
    [1.0, 1.0, 1.0, 1.0]
    """
    if m < 1:
        raise SolverError(f"need at least one GL weight, got m={m}")
    w = np.empty(int(m))
    w[0] = 1.0
    if m > 1:
        k = np.arange(1, int(m), dtype=float)
        w[1:] = np.cumprod((float(alpha) + k - 1.0) / k)
    return w


def _upper_toeplitz(g: np.ndarray) -> np.ndarray:
    """Upper-triangular Toeplitz ``F[i, j] = g[j - i]`` (causal kernel)."""
    m = g.size
    F = np.zeros((m, m))
    i, j = np.triu_indices(m)
    F[i, j] = g[j - i]
    return F


class FractionalMethod:
    """One pluggable discretisation of the fractional integral.

    Subclasses set the identifying attributes and implement
    :meth:`integration_operator`.  Instances are stateless apart from
    their construction parameters, which enter :meth:`fingerprint` so
    differently parameterised methods never unify in a keyed cache.
    """

    #: registry key (also what ``info['method']`` reports)
    name: str = ""
    #: one-line description for tables / error messages
    summary: str = ""
    #: literature origin
    citation: str = ""
    #: solver-bundle kinds the construction supports
    routes: tuple = ("block-pulse",)
    #: basis family bound when the caller leaves ``basis=None``
    #: (``None``: the engine's block-pulse default)
    default_basis: str | None = None

    def params(self) -> tuple:
        """Construction parameters (the method's fingerprint payload)."""
        return ()

    def fingerprint(self) -> tuple:
        """Content key: name plus construction parameters."""
        return (self.name, *self.params())

    def check_bundle(self, bundle: "OperatorBundle") -> None:
        """Reject solver bundles the construction does not support."""
        if bundle.kind not in self.routes:
            if "spectral" in self.routes:
                fix = (
                    f"use basis={self.default_basis!r} (the default) or "
                    "another spectral family"
                )
            else:
                fix = "use the block-pulse default (or walsh/haar)"
            raise SolverError(
                f"method {self.name!r} solves on {self.routes} bundles, not "
                f"the {bundle.name} basis ({bundle.kind!r}); {fix}"
            )

    def integration_operator(
        self, bundle: "OperatorBundle", alpha: float
    ) -> np.ndarray:
        """The ``m x m`` coefficient-space operator of ``I^alpha``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params())
        return f"{type(self).__name__}({params})"


def _uniform_grid(bundle: "OperatorBundle", name: str):
    grid = bundle.grid
    if grid is None or not grid.is_uniform:
        raise SolverError(
            f"method {name!r} builds a Toeplitz convolution operator and "
            "requires a uniform grid"
        )
    return grid


class GrunwaldLetnikovMethod(FractionalMethod):
    """Grünwald-Letnikov convolution-quadrature integration operator.

    The same quadrature the ``'grunwald-letnikov'`` *time stepper*
    baseline uses, but assembled as an operational matrix and solved
    through the engine's cached-pencil column sweep -- so warm-session
    reuse, batched sweeps, and the service cache all apply.
    """

    name = "gl"
    summary = "Grünwald-Letnikov convolution quadrature (Toeplitz F)"
    citation = "Podlubny (1999), ch. 7"
    routes = ("block-pulse",)

    def integration_operator(self, bundle, alpha: float) -> np.ndarray:
        self.check_bundle(bundle)
        grid = _uniform_grid(bundle, self.name)
        g = grid.h ** float(alpha) * gl_integration_weights(alpha, grid.m)
        return _upper_toeplitz(g)


class OustaloupMethod(FractionalMethod):
    """Band-limited Oustaloup rational approximation of ``s^{-alpha}``.

    ``N`` first-order sections with zeros/poles log-spaced over
    ``[w_b, w_h]`` approximate ``s^{-frac}`` (Oustaloup et al. 2000);
    the cascade is Tustin-discretised on the session grid and its
    impulse response becomes the Toeplitz operator.  Integer parts are
    split off exactly: ``F = F_frac M^n`` with ``M`` the bundle's exact
    integration matrix.  Parameters:

    sections:
        Section count ``N`` (default 12); in-band ripple shrinks as
        ``N`` grows.
    band:
        ``(w_b, w_h)`` fit band in rad/s.  Default: ``2 pi / (50
        t_end)`` up to the grid Nyquist rate ``pi / h`` -- covering the
        frequencies the session grid can represent.
    """

    name = "oustaloup"
    summary = "Oustaloup/CFE band-limited rational fit of s^-alpha"
    citation = "Oustaloup et al. (2000); Dorčák & Petráš"
    routes = ("block-pulse",)

    def __init__(self, sections: int = 12, band: tuple | None = None) -> None:
        self.sections = int(sections)
        if self.sections < 1:
            raise SolverError(
                f"oustaloup needs at least one section, got {sections}"
            )
        if band is not None:
            lo, hi = float(band[0]), float(band[1])
            if not (0.0 < lo < hi):
                raise SolverError(
                    f"oustaloup band must satisfy 0 < w_b < w_h, got {band}"
                )
            band = (lo, hi)
        self.band = band

    def params(self) -> tuple:
        return (self.sections, self.band)

    def integration_operator(self, bundle, alpha: float) -> np.ndarray:
        self.check_bundle(bundle)
        grid = _uniform_grid(bundle, self.name)
        n_int = int(np.floor(float(alpha)))
        frac = float(alpha) - n_int
        if frac == 0.0:
            # pure integer order: the exact operational matrix
            return np.linalg.matrix_power(
                np.asarray(bundle.integration_matrix(), dtype=float), n_int
            )
        F = _upper_toeplitz(self._impulse_response(frac, grid.m, grid.h))
        if n_int:
            F = F @ np.linalg.matrix_power(
                np.asarray(bundle.integration_matrix(), dtype=float), n_int
            )
        return F

    def _impulse_response(self, frac: float, m: int, h: float) -> np.ndarray:
        """Impulse response of the Tustin-discretised section cascade."""
        if self.band is not None:
            w_lo, w_hi = self.band
        else:
            w_lo = 2.0 * np.pi / (50.0 * m * h)
            w_hi = np.pi / h
        gamma = -frac  # the approximated exponent of s^gamma
        N = self.sections
        k = np.arange(1, N + 1, dtype=float)
        ratio = w_hi / w_lo
        zeros = w_lo * ratio ** ((2.0 * k - 1.0 - gamma) / (2.0 * N))
        poles = w_lo * ratio ** ((2.0 * k - 1.0 + gamma) / (2.0 * N))
        signal = np.zeros(m)
        signal[0] = w_hi**gamma
        c = 2.0 / h  # Tustin: s -> c (1 - q) / (1 + q)
        for z, p in zip(zeros, poles):
            signal = lfilter([c + z, z - c], [c + p, p - c], signal)
        return signal


class JacobiMethod(FractionalMethod):
    """Jacobi-Gauss collocation fractional integration matrix.

    Nodal construction on the Jacobi-Gauss points ``x_q`` of
    ``P_m^{(a,b)}`` mapped to ``(0, t_end)``: the fractional integral
    of each Lagrange cardinal polynomial,

    .. math::  (I^\\alpha \\ell_r)(x_q) = \\frac{x_q^\\alpha}
        {\\Gamma(\\alpha)} \\int_0^1 (1-s)^{\\alpha-1}
        \\ell_r(x_q s)\\, ds,

    is evaluated *exactly* by an inner Gauss-Jacobi rule with weight
    ``(1-s)^{alpha-1}``, and the nodal map is conjugated into the
    session basis's coefficient space: ``F = V L^T V^{-1}`` with
    ``V[i, q] = psi_i(x_q)``.  This is the interpolatory analogue of
    Zeng & Li's fractional differentiation matrices -- deliberately
    distinct from the engine's native Galerkin (L2-projected)
    fractional integration matrix, which is what makes it a genuine
    cross-check.
    """

    name = "jacobi"
    summary = "Jacobi-Gauss spectral collocation integration matrix"
    citation = "Zeng & Li (2015), fractional differentiation matrices"
    routes = ("spectral",)
    default_basis = "legendre"

    def __init__(self, jacobi_a: float = 0.0, jacobi_b: float = 0.0) -> None:
        if jacobi_a <= -1.0 or jacobi_b <= -1.0:
            raise SolverError(
                f"Jacobi parameters must exceed -1, got ({jacobi_a}, {jacobi_b})"
            )
        self.jacobi_a = float(jacobi_a)
        self.jacobi_b = float(jacobi_b)

    def params(self) -> tuple:
        return (self.jacobi_a, self.jacobi_b)

    def integration_operator(self, bundle, alpha: float) -> np.ndarray:
        from numpy.polynomial import legendre as npleg

        self.check_bundle(bundle)
        alpha = float(alpha)
        if alpha <= 0.0:
            raise SolverError(f"alpha must be positive, got {alpha:g}")
        basis = bundle.basis
        m = bundle.size
        t_end = float(basis.t_end)
        # collocation nodes: Jacobi-Gauss points mapped to (0, t_end)
        x_ref = roots_jacobi(m, self.jacobi_a, self.jacobi_b)[0]
        nodes = 0.5 * t_end * (x_ref + 1.0)
        # inner rule: exact for the degree-(m-1) cardinal polynomials
        n_inner = m + 2
        t_ref, w_ref = roots_jacobi(n_inner, alpha - 1.0, 0.0)
        s = 0.5 * (t_ref + 1.0)
        w = w_ref * 2.0**-alpha
        # Lagrange cardinals through a Legendre modal representation
        # (well conditioned at Gauss nodes); ref() maps to [-1, 1]
        ref = lambda t: 2.0 * t / t_end - 1.0
        V_nodes = npleg.legvander(ref(nodes), m - 1)  # (m, m)
        pts = nodes[:, None] * s[None, :]  # (m, n_inner)
        V_pts = npleg.legvander(ref(pts.ravel()), m - 1)
        cardinals = np.linalg.solve(V_nodes.T, V_pts.T).T  # ell_r(pts)
        L = np.einsum(
            "qjr,j->qr", cardinals.reshape(m, n_inner, m), w
        ) * (nodes**alpha / gamma_function(alpha))[:, None]
        # conjugate the nodal map into coefficient space: c -> c V L^T V^-1
        V = np.asarray(basis.evaluate(nodes), dtype=float)  # (m, m)
        return np.linalg.solve(V.T, (V @ L.T).T).T


#: Registered zoo methods, by name (``'opm'`` is the native route and
#: deliberately not an entry -- see :data:`NATIVE_METHOD`).
FRACTIONAL_METHODS: dict = {
    method.name: method
    for method in (GrunwaldLetnikovMethod(), OustaloupMethod(), JacobiMethod())
}


def method_names(*, include_native: bool = True) -> tuple:
    """Method names accepted by ``Simulator(method=...)`` (sorted zoo
    names, with the native ``'opm'`` first by default)."""
    names = tuple(sorted(FRACTIONAL_METHODS))
    return ((NATIVE_METHOD,) + names) if include_native else names


def describe_methods() -> tuple:
    """One summary row per method (name / summary / citation / basis),
    for the CLI help text and the README method table."""
    rows = [
        {
            "name": NATIVE_METHOD,
            "summary": "native operational-matrix route (the paper's)",
            "citation": "Wang, Liu, Pan & Wang (DATE 2012)",
            "basis": "any family",
        }
    ]
    for name in sorted(FRACTIONAL_METHODS):
        method = FRACTIONAL_METHODS[name]
        rows.append(
            {
                "name": name,
                "summary": method.summary,
                "citation": method.citation,
                "basis": method.default_basis or "block-pulse / walsh / haar",
            }
        )
    return tuple(rows)


def normalise_method_name(name) -> str:
    """Canonical key form of a method name (case/space/underscore-blind)."""
    return str(name).strip().lower().replace("_", "-").replace(" ", "-")


def unknown_method_message(name, valid, *, context: str = "method") -> str:
    """The shared unknown-method diagnostic: did-you-mean plus the full
    registered list (mirroring basis-name validation)."""
    valid = tuple(valid)
    close = difflib.get_close_matches(normalise_method_name(name), valid, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return f"unknown {context} {name!r}{hint}; choose from {valid}"


def validate_method_name(
    name, valid=None, *, context: str = "method", error=SolverError
) -> str:
    """Normalise a method name against ``valid`` (default: ``'opm'``
    plus the registered zoo), raising ``error`` with a typo suggestion
    and the full list on unknown names."""
    allowed = tuple(valid) if valid is not None else method_names()
    key = normalise_method_name(name)
    if key in allowed:
        return key
    raise error(unknown_method_message(name, allowed, context=context))


def resolve_method(spec):
    """Resolve a ``method=`` specification for the engine session.

    ``None`` / ``'opm'`` -> ``None`` (the native route); a registered
    name -> its :class:`FractionalMethod`; a ready instance is passed
    through (custom parameterisations); anything else raises with the
    shared did-you-mean diagnostic.
    """
    if spec is None:
        return None
    if isinstance(spec, FractionalMethod):
        return spec
    key = validate_method_name(spec)
    if key == NATIVE_METHOD:
        return None
    return FRACTIONAL_METHODS[key]

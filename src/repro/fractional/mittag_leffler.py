"""Two-parameter Mittag-Leffler function ``E_{alpha,beta}(z)``.

.. math::

    E_{\\alpha,\\beta}(z) = \\sum_{k=0}^{\\infty}
        \\frac{z^k}{\\Gamma(\\alpha k + \\beta)}

is to fractional linear systems what the exponential is to ordinary
ones: the relaxation ``D^alpha x = -lam x`` has solution
``x(t) = x_0 E_alpha(-lam t^alpha)``.  The implementation targets the
arguments arising from stable circuits -- real ``z`` with emphasis on
the negative axis -- and uses:

* the defining power series, with terms computed in log space (no
  overflow) and Kahan-compensated summation, for ``|z|`` below an
  alpha-dependent radius;
* beyond it, the asymptotic expansion: the algebraic tail
  ``-sum_{k>=1} z^{-k}/Gamma(beta - alpha k)`` truncated at its
  smallest term plus, for ``1 < alpha < 2``, the conjugate pair of
  exponentially decaying oscillatory branch terms.

The crossover radius ``|z|* = CROSSOVER^alpha`` balances the two error
sources, both of order ``exp(+-|z|^{1/alpha})``: series cancellation
grows and the asymptotic truncation error shrinks with the same
exponent.  Worst-case *absolute* error near the crossover is about
1e-6 for small ``alpha`` (e.g. ``alpha = 0.5``; verified against
``erfcx`` in the test suite) and far better elsewhere -- ample for
validating simulators whose own errors are >= 1e-6.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln, rgamma

from .._validation import check_positive_float
from ..errors import ConvergenceError

__all__ = ["mittag_leffler"]

#: Crossover: series for |z| <= CROSSOVER**alpha, asymptotic beyond.
#: The value balances series cancellation (~eps * exp(w)) against
#: asymptotic truncation (~exp(-w)) at w = |z|**(1/alpha):
#: w* = -0.5 * ln(C * eps) ~= 17.
_CROSSOVER = 17.0
#: For alpha near 2 the asymptotic sector closes; the series stays
#: accurate much further out (cancellation ~ exp(|z|**(1/alpha))).
_ALPHA_SERIES_ONLY = 1.8
_SERIES_RADIUS_LARGE_ALPHA = 90.0
#: Hard cap on series terms.
_MAX_TERMS = 2000


def _series_radius(alpha: float) -> float:
    if alpha >= _ALPHA_SERIES_ONLY:
        return _SERIES_RADIUS_LARGE_ALPHA
    return _CROSSOVER**alpha


def _ml_series(alpha: float, beta: float, z: np.ndarray) -> np.ndarray:
    """Power series; log-space terms, Kahan summation."""
    out = np.zeros_like(z, dtype=float)
    comp = np.zeros_like(out)
    with np.errstate(divide="ignore"):  # log(0) = -inf is the z = 0 case
        log_abs_z = np.log(np.abs(z))
    negative = z < 0.0
    prev_log = np.full(z.shape, np.inf)
    for k in range(_MAX_TERMS):
        with np.errstate(invalid="ignore"):  # 0 * -inf at k = 0, overwritten
            log_term = k * log_abs_z - gammaln(alpha * k + beta)
        term = np.exp(log_term)
        if k == 0:
            log_term = np.zeros_like(log_abs_z)
            term = np.full(z.shape, rgamma(beta))  # z^0 even for z = 0
        else:
            term = np.where(negative & (k % 2 == 1), -term, term)
        # Kahan step
        y = term - comp
        t = out + y
        comp = (t - out) - y
        out = t
        decreasing = np.all(log_term <= prev_log)
        prev_log = log_term
        if (
            k > 4
            and decreasing
            and np.all(np.abs(term) <= 1e-18 * np.maximum(np.abs(out), 1e-300))
        ):
            return out
    raise ConvergenceError(
        f"Mittag-Leffler series did not converge within {_MAX_TERMS} terms "
        f"(alpha={alpha}, beta={beta}, max|z|={np.max(np.abs(z)):.3g})"
    )


def _ml_asymptotic_negative(alpha: float, beta: float, z: np.ndarray) -> np.ndarray:
    """Asymptotic expansion for large negative real ``z`` (0 < alpha < 2).

    Algebraic part truncated optimally (exact zero terms from gamma
    poles are skipped without ending the series) plus, for
    ``1 < alpha < 2``, the oscillatory branch pair
    ``(2/alpha) Re[zeta^{1-beta} e^zeta]``,
    ``zeta = |z|^{1/alpha} exp(i pi / alpha)``, which decays like
    ``exp(|z|^{1/alpha} cos(pi/alpha))`` and is *not* negligible at
    moderate ``|z|``.  For ``alpha <= 1`` the branch lies outside the
    admissible sector (its magnitude is below the documented accuracy
    past the series radius) and is omitted.
    """
    out = np.zeros_like(z, dtype=float)
    inv = 1.0 / z
    power = inv.copy()
    last_mag = np.full(z.shape, np.inf)
    frozen = np.zeros(z.shape, dtype=bool)
    for k in range(1, 80):
        coeff = rgamma(beta - alpha * k)
        contrib = power * coeff
        power = power * inv
        if coeff == 0.0:
            continue  # gamma pole: exact zero term, series continues
        mag = np.abs(contrib)
        frozen |= mag >= last_mag
        if np.all(frozen):
            break
        out -= np.where(frozen, 0.0, contrib)
        last_mag = np.where(frozen, last_mag, mag)
    if alpha > 1.0:
        zeta = np.abs(z) ** (1.0 / alpha) * np.exp(1j * np.pi / alpha)
        branch = (2.0 / alpha) * (zeta ** (1.0 - beta) * np.exp(zeta)).real
        out += branch
    return out


def mittag_leffler(alpha: float, beta: float, z) -> np.ndarray:
    """Evaluate ``E_{alpha,beta}(z)`` for real arguments.

    Parameters
    ----------
    alpha:
        Order, ``0 < alpha <= 2``.
    beta:
        ``beta > 0``.
    z:
        Real scalar or array.  Large *positive* ``z`` beyond the series
        radius is rejected (the exponentially growing branch is not
        needed for stable circuits and would require Hankel-contour
        machinery); for ``alpha >= 1.8`` the negative axis is likewise
        capped at the series radius because the asymptotic sector
        closes as ``alpha -> 2``.

    Returns
    -------
    numpy.ndarray
        Same shape as ``z`` (0-d inputs give a Python float).

    Examples
    --------
    >>> float(np.round(mittag_leffler(1.0, 1.0, 1.0), 10))  # e
    2.7182818285
    >>> float(np.round(mittag_leffler(2.0, 1.0, -4.0), 10))  # cos(2)
    -0.4161468365
    """
    alpha = check_positive_float(alpha, "alpha")
    beta = check_positive_float(beta, "beta")
    if alpha > 2.0:
        raise ValueError(f"alpha must be in (0, 2], got {alpha}")
    z_arr = np.asarray(z, dtype=float)
    scalar = z_arr.ndim == 0
    z_flat = np.atleast_1d(z_arr).astype(float)

    radius = _series_radius(alpha)
    if np.any(z_flat > radius):
        raise ValueError(
            f"z > {radius:.3g} on the growing branch is unsupported "
            "(stable-system arguments are non-positive)"
        )
    if alpha >= _ALPHA_SERIES_ONLY and np.any(np.abs(z_flat) > radius):
        raise ValueError(
            f"|z| > {radius:.3g} with alpha >= {_ALPHA_SERIES_ONLY} is outside "
            "the asymptotic sector; reduce |z| or the order"
        )

    out = np.empty_like(z_flat)
    near = np.abs(z_flat) <= radius
    if np.any(near):
        out[near] = _ml_series(alpha, beta, z_flat[near])
    far = ~near
    if np.any(far):
        out[far] = _ml_asymptotic_negative(alpha, beta, z_flat[far])
    if scalar:
        return float(out[0])
    return out.reshape(z_arr.shape)

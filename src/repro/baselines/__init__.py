"""Comparison solvers used in the paper's evaluation.

* :mod:`~repro.baselines.transient` -- the "advanced transient analysis
  methods" of Table II: backward Euler, trapezoidal rule, Gear's
  (BDF2) method for descriptor systems;
* :mod:`~repro.baselines.fft_method` -- the frequency-domain FFT/IFFT
  method of Table I for fractional systems;
* :mod:`~repro.baselines.expm` -- matrix-exponential stepping, the
  high-accuracy ODE reference used by the test suite.

(The Grünwald-Letnikov fractional baseline lives in
:mod:`repro.fractional.grunwald` next to its weight generator.)
"""

from .expm import simulate_expm
from .fft_method import simulate_fft
from .transient import simulate_transient

__all__ = ["simulate_transient", "simulate_fft", "simulate_expm"]

"""Frequency-domain FFT/IFFT baseline for fractional systems (Table I).

The paper's section V-A comparison method: the input is transformed to
the frequency domain with an FFT, the fractional transfer relation

.. math::

    \\big( (j\\omega)^{\\alpha} E - A \\big) X(j\\omega) = B\\, U(j\\omega)

is solved at every frequency sample, and the response is transformed
back with an inverse FFT.  ``FFT-1`` and ``FFT-2`` in Table I are this
method with 8 and 100 sampling points.

Properties the paper highlights (and the benchmarks reproduce):

* accuracy is hard to control -- the method implicitly periodises the
  waveform over the window and the sampling grid fixes the frequency
  resolution;
* CPU time is high relative to OPM *at comparable sample counts*
  because every frequency point requires a **complex** sparse solve,
  whereas OPM works entirely in real arithmetic.

Implementation notes: real inputs use the half-spectrum (``rfft``) and
conjugate symmetry, which charges the method only ``N/2 + 1`` complex
solves -- a *favourable* treatment of the baseline.  The DC sample
needs ``A`` nonsingular (``(j 0)^alpha = 0``); a singular ``A`` raises
:class:`~repro.errors.SolverError`.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .._validation import check_positive_float, check_positive_int
from ..core.lti import DescriptorSystem
from ..core.result import SampledResult
from ..errors import ModelError, SolverError

__all__ = ["simulate_fft"]


def _sample_input(u, p: int, times: np.ndarray) -> np.ndarray:
    if np.isscalar(u):
        return np.full((p, times.size), float(u))
    if callable(u):
        vals = np.asarray(u(times), dtype=float)
        if vals.ndim == 1:
            vals = vals.reshape(1, -1)
        if vals.shape != (p, times.size):
            raise ModelError(
                f"input callable must return ({p}, {times.size}) values, got {vals.shape}"
            )
        return vals
    raise ModelError("the FFT method requires a callable or scalar input")


def simulate_fft(
    system: DescriptorSystem,
    u,
    t_end: float,
    n_samples: int,
) -> SampledResult:
    """Simulate ``E d^alpha x = A x + B u`` by FFT / frequency solve / IFFT.

    Parameters
    ----------
    system:
        :class:`DescriptorSystem` or
        :class:`~repro.core.lti.FractionalDescriptorSystem` (any
        ``alpha > 0``).  Zero initial state (the method has no notion
        of initial conditions -- another limitation versus OPM).
    u:
        Callable ``u(times)`` (vectorised) or scalar.
    t_end:
        Window length; the method implicitly assumes ``t_end``-periodic
        signals.
    n_samples:
        Number of time samples (the paper's "frequency sampling
        points": 8 for FFT-1, 100 for FFT-2).

    Returns
    -------
    SampledResult
        States at the ``n_samples`` sample times ``k * t_end / N``;
        ``info`` records the number of complex solves.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.lti import FractionalDescriptorSystem
    >>> sysf = FractionalDescriptorSystem(0.5, [[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_fft(sysf, lambda t: np.sin(2 * np.pi * t), 1.0, 64)
    >>> res.state_values.shape
    (1, 64)
    """
    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    if system.x0 is not None:
        raise SolverError("the FFT method supports zero initial conditions only")
    t_end = check_positive_float(t_end, "t_end")
    n_samples = check_positive_int(n_samples, "n_samples")

    n, p = system.n_states, system.n_inputs
    alpha = system.alpha
    times = np.arange(n_samples) * (t_end / n_samples)
    u_vals = _sample_input(u, p, times)

    sparse_mode = system.is_sparse
    if sparse_mode:
        E = sp.csc_matrix(system.E, dtype=complex)
        A = sp.csc_matrix(system.A, dtype=complex)
    else:
        E = np.asarray(system.E, dtype=complex)
        A = np.asarray(system.A, dtype=complex)
    B = system.B

    start = time.perf_counter()
    U_half = np.fft.rfft(u_vals, axis=1)  # (p, N//2 + 1)
    n_freq = U_half.shape[1]
    omegas = 2.0 * np.pi * np.fft.rfftfreq(n_samples, d=t_end / n_samples)

    X_half = np.empty((n, n_freq), dtype=complex)
    for k in range(n_freq):
        s_alpha = (1j * omegas[k]) ** alpha  # 0 at DC
        pencil = s_alpha * E - A
        rhs = B @ U_half[:, k]
        try:
            if sparse_mode:
                X_half[:, k] = spla.splu(pencil).solve(rhs)
            else:
                X_half[:, k] = np.linalg.solve(pencil, rhs)
        except (RuntimeError, np.linalg.LinAlgError) as exc:
            detail = "A is singular at DC" if omegas[k] == 0.0 else f"omega={omegas[k]:g}"
            raise SolverError(f"FFT method: singular frequency pencil ({detail})") from exc
        if not np.all(np.isfinite(X_half[:, k])):
            detail = "A is singular at DC" if omegas[k] == 0.0 else f"omega={omegas[k]:g}"
            raise SolverError(
                f"FFT method: non-finite frequency response ({detail}); "
                "the model has no DC path (e.g. unterminated CPE network)"
            )

    X = np.fft.irfft(X_half, n=n_samples, axis=1)
    wall = time.perf_counter() - start

    return SampledResult(
        times,
        X,
        system,
        input_values=u_vals,
        wall_time=wall,
        info={
            "method": "fft",
            "n_samples": n_samples,
            "complex_solves": n_freq,
            "alpha": alpha,
        },
    )

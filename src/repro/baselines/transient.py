"""Classical transient-analysis schemes for descriptor systems.

These are the comparison methods of the paper's Table II: backward
Euler (``b-Euler``), the trapezoidal rule, and Gear's second-order BDF
-- the workhorses of SPICE-class circuit simulators.  All three solve

.. math::  E \\dot{x} = A x + B u

on a uniform step ``h`` with one pencil factorisation reused across all
steps (same cost structure the paper assumes when comparing against
OPM):

* backward Euler:  ``(E/h - A) x_{k+1} = (E/h) x_k + B u_{k+1}``
* trapezoidal:     ``(2E/h - A) x_{k+1} = (2E/h + A) x_k + B (u_k + u_{k+1})``
* Gear (BDF2):     ``(3E/(2h) - A) x_{k+1} = (E/(2h)) (4 x_k - x_{k-1}) + B u_{k+1}``
  (bootstrapped with one backward-Euler step)

Initial conditions are taken directly as the node value ``x_0`` -- no
shift is needed for node-based schemes.  For DAEs the caller must
supply a consistent ``x0`` (zero is consistent whenever ``u(0) = 0``).
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..core.column_solver import PencilCache
from ..core.lti import DescriptorSystem
from ..core.result import SampledResult
from ..errors import ModelError, SolverError

__all__ = ["simulate_transient", "TRANSIENT_METHODS"]

#: Supported scheme names.
TRANSIENT_METHODS = ("backward-euler", "trapezoidal", "gear2")


def _sample_input(u, p: int, times: np.ndarray) -> np.ndarray:
    if np.isscalar(u):
        return np.full((p, times.size), float(u))
    if callable(u):
        vals = np.asarray(u(times), dtype=float)
        if vals.ndim == 1:
            vals = vals.reshape(1, -1)
        if vals.shape != (p, times.size):
            raise ModelError(
                f"input callable must return ({p}, {times.size}) values, got {vals.shape}"
            )
        return vals
    raise ModelError("transient baselines require a callable or scalar input")


def simulate_transient(
    system: DescriptorSystem,
    u,
    t_end: float,
    n_steps: int,
    *,
    method: str = "trapezoidal",
) -> SampledResult:
    """Simulate ``E x' = A x + B u`` with a classical one-step scheme.

    Parameters
    ----------
    system:
        First-order :class:`DescriptorSystem` (``alpha == 1``).
    u:
        Callable ``u(times)`` (vectorised) or a scalar constant.
    t_end:
        Horizon; nodes are ``t_k = k h``, ``h = t_end / n_steps``.
    n_steps:
        Number of steps.
    method:
        One of ``'backward-euler'``, ``'trapezoidal'``, ``'gear2'``.

    Returns
    -------
    SampledResult
        States at all ``n_steps + 1`` nodes;
        ``info`` records the method, step and factorisation count.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.lti import DescriptorSystem
    >>> sys1 = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_transient(sys1, 1.0, 5.0, 500, method='trapezoidal')
    >>> bool(abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0))) < 1e-5)
    True
    """
    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    if system.alpha != 1.0:
        raise SolverError(
            f"transient schemes are first-order only (alpha=1), got alpha={system.alpha}; "
            "use simulate_grunwald_letnikov or OPM for fractional systems"
        )
    if method not in TRANSIENT_METHODS:
        raise SolverError(f"method must be one of {TRANSIENT_METHODS}, got {method!r}")
    t_end = check_positive_float(t_end, "t_end")
    n_steps = check_positive_int(n_steps, "n_steps")

    h = t_end / n_steps
    n, p = system.n_states, system.n_inputs
    times = np.linspace(0.0, t_end, n_steps + 1)
    u_vals = _sample_input(u, p, times)
    Bu = system.B @ u_vals

    cache = PencilCache(system.E, system.A)
    E, A = system.E, system.A
    X = np.zeros((n, n_steps + 1))
    if system.x0 is not None:
        X[:, 0] = system.x0

    start = time.perf_counter()
    if method == "backward-euler":
        sigma = 1.0 / h
        for k in range(n_steps):
            rhs = sigma * (E @ X[:, k]) + Bu[:, k + 1]
            X[:, k + 1] = cache.solve(sigma, rhs)
    elif method == "trapezoidal":
        sigma = 2.0 / h
        for k in range(n_steps):
            rhs = sigma * (E @ X[:, k]) + (A @ X[:, k]) + Bu[:, k] + Bu[:, k + 1]
            X[:, k + 1] = cache.solve(sigma, rhs)
    else:  # gear2 (BDF2), bootstrapped with backward Euler
        sigma_be = 1.0 / h
        rhs = sigma_be * (E @ X[:, 0]) + Bu[:, 1]
        X[:, 1] = cache.solve(sigma_be, rhs)
        sigma = 1.5 / h
        for k in range(1, n_steps):
            rhs = (E @ (4.0 * X[:, k] - X[:, k - 1])) / (2.0 * h) + Bu[:, k + 1]
            X[:, k + 1] = cache.solve(sigma, rhs)
    wall = time.perf_counter() - start

    return SampledResult(
        times,
        X,
        system,
        input_values=u_vals,
        wall_time=wall,
        info={"method": method, "h": h, "factorisations": cache.factorisations},
    )

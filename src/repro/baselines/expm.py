"""Matrix-exponential stepping: the high-accuracy ODE reference.

For ``E x' = A x + B u`` with invertible ``E`` the exact propagator
over a step ``h`` with input held constant at its interval average is
obtained from one exponential of the augmented matrix

.. math::

    \\exp\\!\\left( h \\begin{bmatrix} M & N \\bar u_k \\\\ 0 & 0
    \\end{bmatrix} \\right), \\qquad M = E^{-1} A, \\; N = E^{-1} B,

(the standard Van Loan block trick, robust to singular ``M``).  The
only error is the piecewise-constant treatment of the input -- zero for
step inputs, ``O(h^2)`` otherwise -- which makes this the reference the
test suite validates OPM and the transient baselines against.

Dense only, intended for ``n`` up to a few hundred.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from .._validation import check_positive_float, check_positive_int
from ..core.lti import DescriptorSystem
from ..core.result import SampledResult
from ..errors import ModelError, SolverError

__all__ = ["simulate_expm"]

_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(5)

#: Refuse dense exponentials above this state count.
MAX_EXPM_STATES = 600


def simulate_expm(
    system: DescriptorSystem,
    u,
    t_end: float,
    n_steps: int,
) -> SampledResult:
    """Propagate ``E x' = A x + B u`` with per-step matrix exponentials.

    Parameters
    ----------
    system:
        First-order :class:`DescriptorSystem` with invertible ``E``.
    u:
        Callable ``u(times)`` (vectorised) or scalar.  Inputs are
        averaged over each step with 5-point Gauss-Legendre; constant
        inputs are therefore propagated *exactly*.
    t_end, n_steps:
        Uniform grid ``t_k = k h``, ``h = t_end / n_steps``.

    Returns
    -------
    SampledResult
        States at all nodes.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.lti import DescriptorSystem
    >>> sys1 = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])
    >>> res = simulate_expm(sys1, 1.0, 5.0, 50)
    >>> bool(abs(res.states([3.0])[0, 0] - (1 - np.exp(-3.0))) < 1e-12)
    True
    """
    if not isinstance(system, DescriptorSystem):
        raise TypeError(f"system must be a DescriptorSystem, got {type(system).__name__}")
    if system.alpha != 1.0:
        raise SolverError("simulate_expm is first-order only")
    t_end = check_positive_float(t_end, "t_end")
    n_steps = check_positive_int(n_steps, "n_steps")
    n, p = system.n_states, system.n_inputs
    if n > MAX_EXPM_STATES:
        raise SolverError(
            f"simulate_expm is a dense reference (n <= {MAX_EXPM_STATES}), got n={n}"
        )

    E = system.E.toarray() if sp.issparse(system.E) else np.asarray(system.E, dtype=float)
    A = system.A.toarray() if sp.issparse(system.A) else np.asarray(system.A, dtype=float)
    try:
        M = np.linalg.solve(E, A)
        N = np.linalg.solve(E, system.B)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            "simulate_expm requires invertible E (a true ODE); "
            "use a transient scheme for DAEs"
        ) from exc

    h = t_end / n_steps
    times = np.linspace(0.0, t_end, n_steps + 1)

    if np.isscalar(u):
        u_avg = np.full((p, n_steps), float(u))
        u_nodes = np.full((p, n_steps + 1), float(u))
    elif callable(u):
        mids = 0.5 * (times[:-1] + times[1:])
        quad_t = mids[:, None] + 0.5 * h * _GL_NODES[None, :]
        vals = np.asarray(u(quad_t.ravel()), dtype=float)
        if vals.ndim == 1:
            vals = vals.reshape(1, -1)
        if vals.shape != (p, quad_t.size):
            raise ModelError(
                f"input callable must return ({p}, nt) values, got {vals.shape}"
            )
        u_avg = vals.reshape(p, n_steps, _GL_NODES.size) @ (_GL_WEIGHTS / 2.0)
        node_vals = np.asarray(u(times), dtype=float)
        u_nodes = node_vals.reshape(1, -1) if node_vals.ndim == 1 else node_vals
    else:
        raise ModelError("simulate_expm requires a callable or scalar input")

    start = time.perf_counter()
    X = np.zeros((n, n_steps + 1))
    if system.x0 is not None:
        X[:, 0] = system.x0

    constant_input = bool(np.all(u_avg == u_avg[:, :1]))
    if constant_input:
        aug = np.zeros((n + 1, n + 1))
        aug[:n, :n] = M
        aug[:n, n] = N @ u_avg[:, 0]
        phi = scipy.linalg.expm(h * aug)
        prop, forced = phi[:n, :n], phi[:n, n]
        for k in range(n_steps):
            X[:, k + 1] = prop @ X[:, k] + forced
    else:
        for k in range(n_steps):
            aug = np.zeros((n + 1, n + 1))
            aug[:n, :n] = M
            aug[:n, n] = N @ u_avg[:, k]
            phi = scipy.linalg.expm(h * aug)
            X[:, k + 1] = phi[:n, :n] @ X[:, k] + phi[:n, n]
    wall = time.perf_counter() - start

    return SampledResult(
        times,
        X,
        system,
        input_values=u_nodes,
        wall_time=wall,
        info={"method": "expm", "h": h, "constant_input": constant_input},
    )

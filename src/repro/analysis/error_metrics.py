"""Error metrics, including the paper's eq. (30).

The paper measures global accuracy as

.. math::

    \\mathrm{err} = 20 \\log_{10}
        \\frac{\\| y_{test}(t) - y_{ref}(t) \\|_2}{\\| y_{ref}(t) \\|_2}
    \\; \\mathrm{dB},

with the OPM waveform as the reference in both tables (the OPM row
shows "--").  ``-20 dB`` means 10 % relative deviation, ``-120 dB``
means one part in ``10^6``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "l2_norm",
    "linf_error",
    "relative_error_db",
    "average_relative_error_db",
]


def l2_norm(values) -> float:
    """Discrete 2-norm of a sampled waveform (flattens its input)."""
    return float(np.linalg.norm(np.asarray(values, dtype=float).ravel()))


def linf_error(reference, test) -> float:
    """Maximum absolute deviation between two equally sampled waveforms."""
    ref = np.asarray(reference, dtype=float)
    tst = np.asarray(test, dtype=float)
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    return float(np.max(np.abs(ref - tst)))


def relative_error_db(reference, test) -> float:
    """Paper eq. (30): ``20 log10(||test - ref||_2 / ||ref||_2)`` in dB.

    Parameters
    ----------
    reference, test:
        Equally sampled waveforms (any matching shape; flattened).
        The *reference* appears in the denominator -- pass the OPM
        waveform there to reproduce the tables.

    Returns
    -------
    float
        Negative for errors below 100 %; ``-inf`` for identical
        waveforms.

    Examples
    --------
    >>> float(np.round(relative_error_db([1.0, 0.0], [1.1, 0.0]), 6))  # 10% off
    -20.0
    """
    ref = np.asarray(reference, dtype=float)
    tst = np.asarray(test, dtype=float)
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    denom = np.linalg.norm(ref.ravel())
    if denom == 0.0:
        raise ValueError("reference waveform is identically zero")
    num = np.linalg.norm((tst - ref).ravel())
    if num == 0.0:
        return -np.inf
    return float(20.0 * np.log10(num / denom))


def average_relative_error_db(reference, test) -> float:
    """Row-wise eq. (30) averaged over outputs (Table II's metric).

    ``reference`` and ``test`` are ``(q, nt)`` output matrices; each
    output's dB error is computed separately and averaged, so one
    large-amplitude output cannot mask errors on the others.
    """
    ref = np.atleast_2d(np.asarray(reference, dtype=float))
    tst = np.atleast_2d(np.asarray(test, dtype=float))
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    values = [relative_error_db(ref[i], tst[i]) for i in range(ref.shape[0])]
    return float(np.mean(values))

"""Waveform post-processing shared by examples, tests and benchmarks."""

from __future__ import annotations

import numpy as np

__all__ = ["sample_outputs", "overshoot", "settling_time"]


def sample_outputs(result, times, *, smooth: bool = True) -> np.ndarray:
    """Sample any result type's outputs on a common grid.

    Accepts both :class:`~repro.core.result.SimulationResult`
    (coefficient-based) and :class:`~repro.core.result.SampledResult`
    (node-based) -- anything exposing ``outputs(times)`` -- making
    cross-method comparisons one-liners.

    ``smooth=True`` (default) uses the second-order midpoint-linear
    reconstruction for block-pulse results (``outputs_smooth``) so that
    cross-method error metrics measure the *methods*, not the O(h)
    half-cell offset of raw piecewise-constant evaluation; node-based
    results already interpolate linearly.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if smooth:
        smooth_fn = getattr(result, "outputs_smooth", None)
        if callable(smooth_fn):
            return np.atleast_2d(smooth_fn(times))
    outputs = getattr(result, "outputs", None)
    if outputs is None or not callable(outputs):
        raise TypeError(f"{type(result).__name__} does not expose outputs(times)")
    return np.atleast_2d(outputs(times))


def overshoot(values, final_value: float | None = None) -> float:
    """Fractional overshoot of a step-like waveform.

    ``(peak - final) / |final|``; the final value defaults to the last
    sample.  Returns 0 for monotone responses.
    """
    y = np.asarray(values, dtype=float).ravel()
    if y.size < 2:
        raise ValueError("waveform must have at least 2 samples")
    final = float(y[-1]) if final_value is None else float(final_value)
    if final == 0.0:
        raise ValueError("final value is zero; overshoot undefined")
    peak = float(np.max(y * np.sign(final)))
    return max(0.0, (peak - abs(final)) / abs(final))


def settling_time(times, values, *, tolerance: float = 0.02, final_value: float | None = None) -> float:
    """First time after which the waveform stays within ``tolerance`` of final.

    Returns ``times[0]`` if always settled, ``times[-1]`` if never.
    """
    t = np.asarray(times, dtype=float).ravel()
    y = np.asarray(values, dtype=float).ravel()
    if t.shape != y.shape or t.size < 2:
        raise ValueError("need matching 1-D times/values with >= 2 samples")
    final = float(y[-1]) if final_value is None else float(final_value)
    band = tolerance * max(abs(final), 1e-300)
    outside = np.abs(y - final) > band
    if not np.any(outside):
        return float(t[0])
    last_outside = int(np.max(np.nonzero(outside)[0]))
    if last_outside + 1 >= t.size:
        return float(t[-1])
    return float(t[last_outside + 1])

"""Frequency-domain evaluation of descriptor and fractional models.

The transfer function of the paper's model classes:

* eq. (9):  ``H(s) = C (s E - A)^{-1} B + D_f``
* eq. (19): ``H(s) = C (s^alpha E - A)^{-1} B + D_f``
* multi-term: ``H(s) = C (sum_k s^{alpha_k} M_k)^{-1} B + D_f``

Used to validate the FFT baseline (which is exactly "evaluate H on the
jw grid and inverse-transform"), for ablation plots of the fractional
half-order magnitude slope (-10 dB/decade instead of the integer
-20 dB/decade), and to compute DC gains for steady-state checks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.lti import DescriptorSystem, MultiTermSystem
from ..errors import SolverError

__all__ = ["transfer_function", "frequency_response", "dc_gain"]


def _dense(matrix) -> np.ndarray:
    return matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)


def _pencil_at(system, s: complex):
    """``s^alpha E - A`` (descriptor) or ``sum s^alpha_k M_k`` (multi-term)."""
    if isinstance(system, MultiTermSystem):
        acc = None
        for alpha_k, matrix in system.terms:
            factor = s**alpha_k if alpha_k != 0.0 else 1.0
            term = factor * (matrix.astype(complex) if sp.issparse(matrix) else np.asarray(matrix, dtype=complex))
            acc = term if acc is None else acc + term
        return acc
    if isinstance(system, DescriptorSystem):
        E = system.E.astype(complex) if sp.issparse(system.E) else np.asarray(system.E, complex)
        A = system.A.astype(complex) if sp.issparse(system.A) else np.asarray(system.A, complex)
        return (s**system.alpha) * E - A
    raise TypeError(f"unsupported system type {type(system).__name__}")


def transfer_function(system, s: complex) -> np.ndarray:
    """Evaluate ``H(s)`` (a ``q x p`` complex matrix) at one point.

    For multi-term systems the convention matches the OPM equation
    ``sum_k M_k X D^{alpha_k} = B U``: ``H(s) = C (sum s^a_k M_k)^{-1} B``.

    Raises
    ------
    SolverError
        If the pencil is singular at ``s``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import DescriptorSystem
    >>> rc = DescriptorSystem([[1.0]], [[-1.0]], [[1.0]])  # H(s) = 1/(s+1)
    >>> complex(np.round(transfer_function(rc, 1j)[0, 0], 6))
    (0.5-0.5j)
    """
    pencil = _pencil_at(system, complex(s))
    B = system.B.astype(complex)
    try:
        if sp.issparse(pencil):
            x = spla.splu(pencil.tocsc()).solve(B)
        else:
            x = np.linalg.solve(pencil, B)
    except (RuntimeError, np.linalg.LinAlgError) as exc:
        raise SolverError(f"transfer function singular at s={s}") from exc
    if not np.all(np.isfinite(x)):
        raise SolverError(f"transfer function singular at s={s}")
    y = x if system.C is None else system.C.astype(complex) @ x
    if system.D is not None:
        y = y + system.D
    return np.atleast_2d(y)


def frequency_response(system, omegas) -> np.ndarray:
    """``H(j omega)`` over an array of angular frequencies.

    Returns a complex array of shape ``(len(omegas), q, p)``.  The
    fractional power uses the principal branch of ``(j omega)^alpha``,
    matching :func:`repro.baselines.fft_method.simulate_fft`.
    """
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    out = np.empty(
        (omegas.size, system.n_outputs, system.n_inputs), dtype=complex
    )
    for k, w in enumerate(omegas):
        out[k] = transfer_function(system, 1j * w)
    return out


def dc_gain(system) -> np.ndarray:
    """Steady-state gain ``H(0) = -C A^{-1} B + D_f`` (real ``q x p``).

    Requires the algebraic part to be nonsingular (a DC path must
    exist -- e.g. unterminated CPE networks have none).
    """
    h0 = transfer_function(system, 0.0)
    return h0.real

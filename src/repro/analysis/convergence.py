"""Empirical order-of-accuracy estimation.

Used by the test suite to confirm the convergence behaviour the paper
claims ("similar performance to trapezoidal or Gear's method in terms
of complexity and accuracy"): OPM on first-order systems is second
order in the step size; backward Euler is first order.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["estimate_order", "refinement_errors"]


def estimate_order(step_sizes, errors) -> float:
    """Least-squares slope of ``log(error)`` against ``log(h)``.

    Parameters
    ----------
    step_sizes:
        Step sizes (or any resolution parameter proportional to them).
    errors:
        Corresponding error norms; zeros are rejected (they would mean
        the refinement study bottomed out at machine precision).

    Returns
    -------
    float
        The empirical order ``p`` with ``error ~ h^p``.

    Examples
    --------
    >>> float(np.round(estimate_order([0.1, 0.05, 0.025], [1e-2, 2.5e-3, 6.25e-4]), 6))
    2.0
    """
    h = np.asarray(step_sizes, dtype=float)
    e = np.asarray(errors, dtype=float)
    if h.shape != e.shape or h.ndim != 1 or h.size < 2:
        raise ValueError("need matching 1-D arrays with at least 2 entries")
    if np.any(h <= 0.0) or np.any(e <= 0.0):
        raise ValueError("step sizes and errors must be positive")
    slope, _ = np.polyfit(np.log(h), np.log(e), 1)
    return float(slope)


def refinement_errors(
    solve_at: Callable[[int], np.ndarray],
    reference: Callable[[np.ndarray], np.ndarray] | np.ndarray,
    ms,
    sample_times,
) -> np.ndarray:
    """Errors of a family of runs against a reference.

    Parameters
    ----------
    solve_at:
        Callable mapping a resolution ``m`` to sampled output values at
        ``sample_times``.
    reference:
        Either exact values at ``sample_times`` or a callable producing
        them.
    ms:
        The resolutions to test.
    sample_times:
        Common comparison grid.

    Returns
    -------
    numpy.ndarray
        Max-norm errors, one per resolution.
    """
    sample_times = np.asarray(sample_times, dtype=float)
    if callable(reference):
        ref_vals = np.asarray(reference(sample_times), dtype=float)
    else:
        ref_vals = np.asarray(reference, dtype=float)
    errors = []
    for m in ms:
        values = np.asarray(solve_at(int(m)), dtype=float)
        if values.shape != ref_vals.shape:
            raise ValueError(
                f"solver output shape {values.shape} != reference {ref_vals.shape}"
            )
        errors.append(float(np.max(np.abs(values - ref_vals))))
    return np.asarray(errors)

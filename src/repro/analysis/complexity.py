"""Complexity measurement: power-law fits for the section IV claims.

The paper derives the OPM cost ``O(n^beta m + n m^2)`` with
``1 < beta < 2`` the sparse-solve exponent.  The scaling benchmark
measures wall time over sweeps of ``n`` (fixed ``m``) and ``m`` (fixed
``n``) and fits the exponents with :func:`fit_power_law`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["fit_power_law", "predicted_cost", "sparsity_stats"]


def fit_power_law(sizes, times) -> tuple[float, float, float]:
    """Fit ``time ~= prefactor * size^exponent``.

    Returns
    -------
    (exponent, prefactor, r_squared):
        Log-log least-squares fit quality; ``r_squared`` near 1 means
        the power law describes the data well.

    Examples
    --------
    >>> exp, pre, r2 = fit_power_law([10, 100, 1000], [0.02, 2.0, 200.0])
    >>> float(np.round(exp, 6)), float(np.round(r2, 6))
    (2.0, 1.0)
    """
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("need matching 1-D arrays with at least 2 entries")
    if np.any(x <= 0.0) or np.any(y <= 0.0):
        raise ValueError("sizes and times must be positive")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    fitted = slope * lx + intercept
    ss_res = float(np.sum((ly - fitted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return float(slope), float(np.exp(intercept)), r2


def predicted_cost(n: int, m: int, *, alpha: float = 1.0, beta: float = 1.3) -> float:
    """Evaluate the paper's cost model (section IV, "Complexity").

    First-order systems pay ``n^beta m`` (one factorisation amortised,
    O(n) tail recurrence); fractional orders add the ``n m^2`` history
    accumulation.  Unit-free -- use for *ratios* between configurations.
    """
    base = float(n) ** beta * m
    if alpha != 1.0:
        base += float(n) * m * m
    return base


def sparsity_stats(matrix) -> dict:
    """Nonzero count, density, and average nonzeros per row.

    Works for dense arrays and scipy sparse matrices; the paper's
    complexity model assumes ``O(n)`` nonzeros, i.e. bounded
    ``nnz_per_row``.
    """
    if sp.issparse(matrix):
        nnz = int(matrix.nnz)
        rows, cols = matrix.shape
    else:
        arr = np.asarray(matrix)
        nnz = int(np.count_nonzero(arr))
        rows, cols = arr.shape
    total = rows * cols
    return {
        "shape": (rows, cols),
        "nnz": nnz,
        "density": nnz / total if total else 0.0,
        "nnz_per_row": nnz / rows if rows else 0.0,
    }

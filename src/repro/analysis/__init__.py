"""Measurement utilities: error metrics, convergence, complexity fitting.

* :mod:`~repro.analysis.error_metrics` -- the paper's dB relative-error
  metric (eq. (30)) and friends;
* :mod:`~repro.analysis.convergence` -- empirical order-of-accuracy
  estimation for refinement studies;
* :mod:`~repro.analysis.complexity` -- power-law fitting for the
  ``O(n^beta m + n m^2)`` complexity claims of section IV;
* :mod:`~repro.analysis.waveform` -- waveform post-processing
  (overshoot, settling time, uniform resampling of mixed result types).
"""

from .complexity import fit_power_law, predicted_cost, sparsity_stats
from .convergence import estimate_order, refinement_errors
from .error_metrics import (
    average_relative_error_db,
    l2_norm,
    linf_error,
    relative_error_db,
)
from .frequency import dc_gain, frequency_response, transfer_function
from .waveform import overshoot, sample_outputs, settling_time

__all__ = [
    "relative_error_db",
    "average_relative_error_db",
    "l2_norm",
    "linf_error",
    "estimate_order",
    "refinement_errors",
    "fit_power_law",
    "predicted_cost",
    "sparsity_stats",
    "sample_outputs",
    "overshoot",
    "settling_time",
    "transfer_function",
    "frequency_response",
    "dc_gain",
]

"""Block-pulse function (BPF) basis -- the paper's working basis.

Paper eq. (1) defines the BPFs on a uniform grid; eq. (16) generalises
to adaptive steps.  ``phi_i`` is the indicator of interval ``i``, so

* projection coefficients are interval averages
  ``f_i = (1/h_i) * integral_{t_i}^{t_{i+1}} f`` (paper eq. (2)),
* synthesis is piecewise-constant reconstruction,
* the operational matrices are those of :mod:`repro.opmat`.

Projection supports two rules: exact interval averages via per-interval
Gauss-Legendre quadrature (the definition in eq. (2)) and the cheaper
midpoint rule (the paper's "roughly, f_i = f(ih)" remark).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._validation import check_fractional_order
from ..errors import BasisError
from ..opmat import (
    differentiation_matrix,
    differentiation_matrix_adaptive,
    fractional_differentiation_matrix,
    fractional_differentiation_matrix_adaptive,
    fractional_integration_matrix,
    integration_matrix,
    integration_matrix_adaptive,
    rl_integration_matrix,
)
from .base import BasisSet, cached_operator
from .grid import TimeGrid

__all__ = ["BlockPulseBasis"]

# Gauss-Legendre nodes/weights on [-1, 1] used for interval averages.
_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(5)


class BlockPulseBasis(BasisSet):
    """Block-pulse functions on a :class:`~repro.basis.grid.TimeGrid`.

    Parameters
    ----------
    grid:
        The time partition; uniform grids activate the Toeplitz
        closed forms of the operational matrices, adaptive grids the
        diagonal-scaled variants (paper eqs. (16)-(17)).
    projection:
        ``'average'`` (default) -- exact interval averages by 5-point
        Gauss-Legendre quadrature per interval, the definition in
        eq. (2); ``'midpoint'`` -- sample at interval midpoints.

    Examples
    --------
    >>> import numpy as np
    >>> basis = BlockPulseBasis(TimeGrid.uniform(1.0, 4))
    >>> coeffs = basis.project(lambda t: t)
    >>> np.round(coeffs, 4)
    array([0.125, 0.375, 0.625, 0.875])
    """

    def __init__(self, grid: TimeGrid, *, projection: str = "average") -> None:
        if not isinstance(grid, TimeGrid):
            raise TypeError(f"grid must be a TimeGrid, got {type(grid).__name__}")
        if projection not in ("average", "midpoint"):
            raise BasisError(f"projection must be 'average' or 'midpoint', got {projection!r}")
        self._grid = grid
        self._projection = projection

    # ------------------------------------------------------------------
    # identification
    # ------------------------------------------------------------------
    @property
    def grid(self) -> TimeGrid:
        return self._grid

    @property
    def projection(self) -> str:
        """The input projection rule (``'average'`` or ``'midpoint'``)."""
        return self._projection

    def with_projection(self, projection: str) -> "BlockPulseBasis":
        """A copy of this basis using the given projection rule."""
        if projection == self._projection:
            return self
        return BlockPulseBasis(self._grid, projection=projection)

    @property
    def size(self) -> int:
        return self._grid.m

    @property
    def t_end(self) -> float:
        return self._grid.t_end

    @property
    def name(self) -> str:
        return "BlockPulse"

    # ------------------------------------------------------------------
    # function-space <-> coefficient-space
    # ------------------------------------------------------------------
    def evaluate(self, times) -> np.ndarray:
        times = np.atleast_1d(np.asarray(times, dtype=float))
        idx = self._grid.locate(times)
        out = np.zeros((self.size, times.size))
        out[idx, np.arange(times.size)] = 1.0
        return out

    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        if self._projection == "midpoint":
            return np.asarray(func(self._grid.midpoints), dtype=float)
        mids = self._grid.midpoints
        half = 0.5 * self._grid.steps
        # times[i, q] = midpoint_i + half_i * node_q; average over each cell
        times = mids[:, None] + half[:, None] * _GL_NODES[None, :]
        values = np.asarray(func(times.ravel()), dtype=float).reshape(times.shape)
        return values @ (_GL_WEIGHTS / 2.0)

    def project_vector(self, func: Callable[[np.ndarray], np.ndarray], width: int) -> np.ndarray:
        """Project a vector-valued function in one evaluation pass.

        Overrides the row-by-row base implementation: ``func`` (which
        must return ``(width, len(times))`` values) is evaluated once at
        all quadrature times, so a ``width``-channel input costs the
        same number of function evaluations as a scalar one -- the hot
        path of warm :class:`~repro.engine.session.Simulator` runs.
        """
        if self._projection == "midpoint":
            values = np.asarray(func(self._grid.midpoints), dtype=float)
            if values.shape != (width, self.size):
                raise BasisError(
                    f"vector function must return ({width}, {self.size}) "
                    f"midpoint values, got {values.shape}"
                )
            return values
        mids = self._grid.midpoints
        half = 0.5 * self._grid.steps
        times = (mids[:, None] + half[:, None] * _GL_NODES[None, :]).ravel()
        values = np.asarray(func(times), dtype=float)
        if values.shape != (width, times.size):
            raise BasisError(
                f"vector function must return ({width}, {times.size}) "
                f"quadrature values, got {values.shape}"
            )
        return values.reshape(width, self.size, _GL_NODES.size) @ (_GL_WEIGHTS / 2.0)

    def project_samples(self, samples) -> np.ndarray:
        """Coefficients from per-interval samples (identity layout check).

        ``samples`` of shape ``(size,)`` or ``(k, size)`` are taken as
        the block-pulse coefficients directly; this merely validates the
        trailing dimension.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.shape[-1] != self.size:
            raise BasisError(
                f"trailing dimension {samples.shape[-1]} != basis size {self.size}"
            )
        return samples

    # ------------------------------------------------------------------
    # operational matrices
    # ------------------------------------------------------------------
    @cached_operator
    def integration_matrix(self) -> np.ndarray:
        if self._grid.is_uniform:
            return integration_matrix(self.size, self._grid.h)
        return integration_matrix_adaptive(self._grid.steps)

    @cached_operator
    def differentiation_matrix(self) -> np.ndarray:
        if self._grid.is_uniform:
            return differentiation_matrix(self.size, self._grid.h)
        return differentiation_matrix_adaptive(self._grid.steps)

    @cached_operator
    def fractional_differentiation_matrix(self, alpha: float, *, method: str = "auto") -> np.ndarray:
        """``D^alpha`` -- series form on uniform grids (paper eq. (22)),
        eigendecomposition/Schur form on adaptive grids (paper eq. (25))."""
        alpha = check_fractional_order(alpha, allow_zero=True)
        if self._grid.is_uniform:
            return fractional_differentiation_matrix(alpha, self.size, self._grid.h)
        if alpha == 0.0:
            return np.eye(self.size)
        return fractional_differentiation_matrix_adaptive(alpha, self._grid.steps, method=method)

    @cached_operator
    def fractional_integration_matrix(self, alpha: float, *, construction: str = "tustin") -> np.ndarray:
        """Fractional integration matrix.

        ``construction='tustin'`` inverts the paper's ``D^alpha`` in the
        truncated ring; ``construction='rl'`` uses the classical
        Riemann-Liouville projection matrix (see
        :mod:`repro.opmat.rl_integral`).  Uniform grids only.
        """
        alpha = check_fractional_order(alpha, allow_zero=True)
        if not self._grid.is_uniform:
            raise BasisError("fractional integration matrices require a uniform grid")
        if construction == "tustin":
            return fractional_integration_matrix(alpha, self.size, self._grid.h)
        if construction == "rl":
            if alpha == 0.0:
                return np.eye(self.size)
            return rl_integration_matrix(alpha, self.size, self._grid.h)
        raise BasisError(f"construction must be 'tustin' or 'rl', got {construction!r}")

"""Shared machinery for piecewise-constant orthogonal bases (Walsh, Haar).

Walsh functions and Haar wavelets with ``m = 2^k`` terms are exact
linear combinations of the ``m`` block-pulse functions on the uniform
grid: ``psi(t) = W phi(t)`` for an invertible transform matrix ``W``
with ``W W^T = m I``.  Every operational matrix therefore transfers by
conjugation:

.. math::

    \\int \\psi = W H W^{-1} \\psi, \\qquad
    \\frac{d}{dt}\\psi = W D W^{-1} \\psi, \\qquad
    D^{\\alpha}_{\\psi} = W D^{\\alpha} W^{-1},

with ``H``, ``D``, ``D^alpha`` the block-pulse matrices of
:mod:`repro.opmat`.  This realises the paper's remark (section I) that
OPM "can readily switch to using other basis functions": the solver is
unchanged, only the operational matrix and the projection change.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._validation import check_fractional_order, check_positive_float, check_positive_int
from ..errors import BasisError
from .base import BasisSet, cached_operator
from .block_pulse import BlockPulseBasis
from .grid import TimeGrid

__all__ = ["PiecewiseConstantBasis", "is_power_of_two"]


def is_power_of_two(m: int) -> bool:
    """True when ``m`` is a positive power of two (includes ``1``)."""
    return m >= 1 and (m & (m - 1)) == 0


class PiecewiseConstantBasis(BasisSet):
    """Base class: an orthogonal transform ``W`` of the block-pulse basis.

    Subclasses supply the transform matrix through
    :meth:`_build_transform`; it must satisfy ``W W^T = m I`` (rows are
    orthogonal with squared norm ``m``), which both the Hadamard-Walsh
    and the scaled Haar constructions do.
    """

    def __init__(self, t_end: float, m: int, *, projection: str = "average") -> None:
        t_end = check_positive_float(t_end, "t_end")
        m = check_positive_int(m, "m")
        if not is_power_of_two(m):
            raise BasisError(f"{type(self).__name__} requires m to be a power of two, got {m}")
        self._bpf = BlockPulseBasis(TimeGrid.uniform(t_end, m), projection=projection)
        self._w = self._build_transform(m)
        if self._w.shape != (m, m):
            raise BasisError(
                f"transform must be {m}x{m}, got {self._w.shape}"
            )

    def _build_transform(self, m: int) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # identification
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._bpf.size

    @property
    def t_end(self) -> float:
        return self._bpf.t_end

    @property
    def transform(self) -> np.ndarray:
        """The matrix ``W`` with ``psi(t) = W phi(t)``."""
        return self._w

    @property
    def block_pulse(self) -> BlockPulseBasis:
        """The underlying block-pulse basis."""
        return self._bpf

    @property
    def projection(self) -> str:
        """Input projection rule of the underlying block-pulse basis."""
        return self._bpf.projection

    def with_projection(self, projection: str) -> "PiecewiseConstantBasis":
        """A copy of this basis using the given projection rule.

        Returns ``self`` when the rule already matches; subclasses with
        extra construction state override this to preserve it.
        """
        if projection == self.projection:
            return self
        return type(self)(self.t_end, self.size, projection=projection)

    # ------------------------------------------------------------------
    # function-space <-> coefficient-space
    # ------------------------------------------------------------------
    def evaluate(self, times) -> np.ndarray:
        return self._w @ self._bpf.evaluate(times)

    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        # f ~ f_B . phi = f_B . (W^{-1} psi)  =>  c = W^{-T} f_B = W f_B / m
        return self._w @ self._bpf.project(func) / self.size

    def to_block_pulse_coefficients(self, coeffs) -> np.ndarray:
        """Convert coefficients in this basis to block-pulse coefficients."""
        coeffs = np.asarray(coeffs, dtype=float)
        return coeffs @ self._w  # f_B = W^T c, applied to trailing axis

    def from_block_pulse_coefficients(self, coeffs) -> np.ndarray:
        """Convert block-pulse coefficients to this basis (trailing axis).

        The exact inverse of :meth:`to_block_pulse_coefficients`:
        ``c = W^{-T} f_B = W f_B / m``.
        """
        coeffs = np.asarray(coeffs, dtype=float)
        return coeffs @ self._w.T / self.size

    # ------------------------------------------------------------------
    # operational matrices (conjugation)
    # ------------------------------------------------------------------
    def _conjugate(self, bpf_matrix: np.ndarray) -> np.ndarray:
        # W M W^{-1} with W^{-1} = W^T / m
        return self._w @ bpf_matrix @ self._w.T / self.size

    @cached_operator
    def integration_matrix(self) -> np.ndarray:
        return self._conjugate(self._bpf.integration_matrix())

    @cached_operator
    def differentiation_matrix(self) -> np.ndarray:
        return self._conjugate(self._bpf.differentiation_matrix())

    @cached_operator
    def fractional_differentiation_matrix(self, alpha: float) -> np.ndarray:
        alpha = check_fractional_order(alpha, allow_zero=True)
        return self._conjugate(self._bpf.fractional_differentiation_matrix(alpha))

    @cached_operator
    def fractional_integration_matrix(self, alpha: float) -> np.ndarray:
        alpha = check_fractional_order(alpha, allow_zero=True)
        return self._conjugate(self._bpf.fractional_integration_matrix(alpha))
